#include "core/demand_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hxsim::core {

void write_demands(std::ostream& out, const DemandMatrix& demands) {
  out << "# hxsim communication demand file (src dst demand)\n";
  out << demands.num_nodes() << "\n";
  for (topo::NodeId src = 0; src < demands.num_nodes(); ++src) {
    for (topo::NodeId dst = 0; dst < demands.num_nodes(); ++dst) {
      const std::uint8_t d = demands.at(src, dst);
      if (d == 0) continue;
      out << src << ' ' << dst << ' ' << static_cast<int>(d) << '\n';
    }
  }
}

void write_demands_file(const std::string& path,
                        const DemandMatrix& demands) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_demands_file: cannot open " + path);
  write_demands(out, demands);
  if (!out.flush())
    throw std::runtime_error("write_demands_file: write failed: " + path);
}

namespace {

[[noreturn]] void fail(std::int64_t line, const std::string& what) {
  throw std::invalid_argument("demand file line " + std::to_string(line) +
                              ": " + what);
}

}  // namespace

DemandMatrix read_demands(std::istream& in) {
  std::string line;
  std::int64_t line_no = 0;
  std::int32_t num_nodes = -1;
  DemandMatrix demands;

  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;

    std::istringstream fields(line);
    if (num_nodes < 0) {
      if (!(fields >> num_nodes) || num_nodes < 0)
        fail(line_no, "expected a non-negative node count");
      std::string trailing;
      if (fields >> trailing) fail(line_no, "trailing junk after node count");
      demands = DemandMatrix(num_nodes);
      continue;
    }

    std::int64_t src = 0;
    std::int64_t dst = 0;
    std::int64_t demand = 0;
    if (!(fields >> src >> dst >> demand))
      fail(line_no, "expected 'src dst demand'");
    std::string trailing;
    if (fields >> trailing) fail(line_no, "trailing junk after triple");
    if (src < 0 || src >= num_nodes || dst < 0 || dst >= num_nodes)
      fail(line_no, "node id out of range");
    if (demand < 1 || demand > kDemandMax)
      fail(line_no, "demand must be in 1..255");
    demands.set(static_cast<topo::NodeId>(src),
                static_cast<topo::NodeId>(dst),
                static_cast<std::uint8_t>(demand));
  }
  if (num_nodes < 0) fail(line_no, "missing node count header");
  return demands;
}

DemandMatrix read_demands_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_demands_file: cannot open " + path);
  return read_demands(in);
}

}  // namespace hxsim::core
