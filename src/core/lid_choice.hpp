// Table 1 of the paper: which virtual destination LIDx a message uses.
//
// Given the quadrants of source and destination and the message class
// (small = minimal paths wanted, large = bandwidth wanted), the table lists
// one or two valid LID indices; when two are listed the transport picks one
// at random (Section 3.2.4).  The encodings below are verbatim Table 1a/1b.
#pragma once

#include <array>
#include <cstdint>

#include "stats/rng.hpp"

namespace hxsim::core {

enum class MsgClass : std::int8_t { kSmall, kLarge };

/// Message-size threshold separating small from large (Section 3.2.4:
/// 512 bytes, calibrated with Multi-PingPong / mpiGraph).
inline constexpr std::int64_t kParxSmallLargeThreshold = 512;

[[nodiscard]] constexpr MsgClass classify_message(std::int64_t bytes) noexcept {
  return bytes <= kParxSmallLargeThreshold ? MsgClass::kSmall
                                           : MsgClass::kLarge;
}

struct LidChoice {
  std::array<std::int8_t, 2> options{};
  std::int8_t count = 0;

  [[nodiscard]] bool contains(std::int8_t x) const noexcept {
    for (std::int8_t i = 0; i < count; ++i)
      if (options[static_cast<std::size_t>(i)] == x) return true;
    return false;
  }
};

/// Valid LID indices for a (source quadrant, destination quadrant, class)
/// triple; quadrants in 0..3.
[[nodiscard]] LidChoice parx_lid_options(std::int32_t src_q,
                                         std::int32_t dst_q, MsgClass cls);

/// Uniform pick among the valid options (the paper's random tie-break).
[[nodiscard]] std::int8_t pick_parx_lid(std::int32_t src_q, std::int32_t dst_q,
                                        MsgClass cls, stats::Rng& rng);

}  // namespace hxsim::core
