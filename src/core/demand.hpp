// Communication-demand profiles (paper Section 3.2.2/3.2.3).
//
// The paper records the absolute bytes exchanged between every pair of MPI
// ranks with a low-level InfiniBand profiler, then normalises them to
// integers in [0, 255]: 0 = no traffic, 1 = lowest recorded traffic,
// 255 = the heaviest pair.  PARX ingests the *node-based* matrix (ranks are
// resolved to nodes through the job's placement by the SAR-style interface,
// Section 4.4.3).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "topo/topology.hpp"

namespace hxsim::core {

inline constexpr std::int32_t kDemandMax = 255;

class DemandMatrix {
 public:
  DemandMatrix() = default;
  explicit DemandMatrix(std::int32_t num_nodes);

  /// Normalises a raw byte matrix (row-major num_nodes^2): zero stays zero,
  /// positive entries map to [1, 255] proportionally to the maximum.
  [[nodiscard]] static DemandMatrix from_bytes(
      std::int32_t num_nodes, std::span<const std::int64_t> byte_matrix);

  [[nodiscard]] std::int32_t num_nodes() const noexcept { return nodes_; }
  [[nodiscard]] bool empty() const noexcept { return nodes_ == 0; }

  void set(topo::NodeId src, topo::NodeId dst, std::uint8_t demand);
  [[nodiscard]] std::uint8_t at(topo::NodeId src, topo::NodeId dst) const {
    return cells_[index(src, dst)];
  }

  /// True if any source lists traffic toward `dst` -- such destinations are
  /// optimised first by Algorithm 1.
  [[nodiscard]] bool is_listed_destination(topo::NodeId dst) const {
    return listed_dst_[static_cast<std::size_t>(dst)] != 0;
  }

  /// Total demand toward dst (used by tests and diagnostics).
  [[nodiscard]] std::int64_t column_sum(topo::NodeId dst) const;

 private:
  [[nodiscard]] std::size_t index(topo::NodeId src, topo::NodeId dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(nodes_) +
           static_cast<std::size_t>(dst);
  }

  std::int32_t nodes_ = 0;
  std::vector<std::uint8_t> cells_;
  std::vector<std::uint8_t> listed_dst_;
};

}  // namespace hxsim::core
