// PARX: Pattern-Aware Routing for 2-D HyperX topologies (paper Section
// 3.2.3, Algorithm 1) -- the paper's primary contribution.
//
// PARX provides every destination port with four virtual destination LIDs
// (LMC = 2) and routes each LIDx on a *pruned* copy of the fabric according
// to rules R1-R4 (see core/quadrant.hpp), so that minimal and non-minimal
// path sets coexist in one static, destination-based routing.  Path
// calculation is the DFSSSP modified Dijkstra; edge-weight updates are
// demand-weighted (+w from the ingested communication profile for listed
// destinations, +1 otherwise), which separates high-traffic paths and
// reduces "dark fiber".  Finally all paths are layered onto virtual lanes
// for deadlock freedom; the paper observes 5-8 VLs on the 12x8 HyperX.
#pragma once

#include "core/demand.hpp"
#include "core/quadrant.hpp"
#include "routing/delta.hpp"
#include "routing/engine.hpp"

namespace hxsim::core {

struct ParxOptions {
  /// Hardware virtual-lane budget (QDR InfiniBand: 8).
  std::int32_t max_vls = 8;
  /// Ablation switch: when false the engine skips the demand-weighted edge
  /// updates and balances globally (+1 per path) like plain DFSSSP.
  bool use_demand_weights = true;
  /// Ablation switch: when false rules R1-R4 are not applied and all four
  /// LIDs route minimally (isolates the effect of forced detours).
  bool use_link_pruning = true;
};

class ParxEngine final : public routing::RoutingEngine,
                         public routing::DeltaCapable {
 public:
  /// The HyperX must outlive the engine.  An empty demand matrix routes
  /// all destinations with the +1 fallback (last loop of Algorithm 1).
  explicit ParxEngine(const topo::HyperX& hx, DemandMatrix demands = {},
                      ParxOptions options = {});

  /// Re-routing trigger: ingest a new communication profile before the next
  /// compute() (the paper's OpenSM interface re-routes the fabric prior to
  /// job start).  Invalidates any tracked delta state: the destination
  /// order and weight evolution both depend on the profile.
  void set_demands(DemandMatrix demands) {
    demands_ = std::move(demands);
    track_.valid = false;
  }

  [[nodiscard]] std::string name() const override { return "parx"; }

  /// `lids` must be the quadrant-grouped LMC=2 space from
  /// make_parx_lid_space() -- the rules are indexed by LID offset.
  [[nodiscard]] routing::RouteResult compute(const topo::Topology& topo,
                                             const routing::LidSpace& lids)
      override;

  // DeltaCapable.  Algorithm 1's weight evolution is strictly sequential
  // (batch 1), so an update replays the weight contributions of the
  // columns before the first membership-dirty (destination rank, LIDx)
  // column from the cached trees and recomputes every column from there
  // on; the VL placement re-runs iff any LFT column changed.
  [[nodiscard]] routing::RouteResult compute_tracked(
      const topo::Topology& topo, const routing::LidSpace& lids) override;
  routing::DeltaStats update_tracked(const topo::Topology& topo,
                                     const routing::LidSpace& lids,
                                     const routing::DeltaUpdate& update,
                                     routing::RouteResult& io) override;
  void invalidate_tracking() noexcept override { track_.valid = false; }

 private:
  routing::RouteResult compute_impl(const topo::Topology& topo,
                                    const routing::LidSpace& lids,
                                    routing::TreeTrackState* track);

  const topo::HyperX* hx_;
  DemandMatrix demands_;
  ParxOptions options_;
  routing::TreeTrackState track_;
};

}  // namespace hxsim::core
