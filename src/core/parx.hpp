// PARX: Pattern-Aware Routing for 2-D HyperX topologies (paper Section
// 3.2.3, Algorithm 1) -- the paper's primary contribution.
//
// PARX provides every destination port with four virtual destination LIDs
// (LMC = 2) and routes each LIDx on a *pruned* copy of the fabric according
// to rules R1-R4 (see core/quadrant.hpp), so that minimal and non-minimal
// path sets coexist in one static, destination-based routing.  Path
// calculation is the DFSSSP modified Dijkstra; edge-weight updates are
// demand-weighted (+w from the ingested communication profile for listed
// destinations, +1 otherwise), which separates high-traffic paths and
// reduces "dark fiber".  Finally all paths are layered onto virtual lanes
// for deadlock freedom; the paper observes 5-8 VLs on the 12x8 HyperX.
#pragma once

#include "core/demand.hpp"
#include "core/quadrant.hpp"
#include "routing/engine.hpp"

namespace hxsim::core {

struct ParxOptions {
  /// Hardware virtual-lane budget (QDR InfiniBand: 8).
  std::int32_t max_vls = 8;
  /// Ablation switch: when false the engine skips the demand-weighted edge
  /// updates and balances globally (+1 per path) like plain DFSSSP.
  bool use_demand_weights = true;
  /// Ablation switch: when false rules R1-R4 are not applied and all four
  /// LIDs route minimally (isolates the effect of forced detours).
  bool use_link_pruning = true;
};

class ParxEngine final : public routing::RoutingEngine {
 public:
  /// The HyperX must outlive the engine.  An empty demand matrix routes
  /// all destinations with the +1 fallback (last loop of Algorithm 1).
  explicit ParxEngine(const topo::HyperX& hx, DemandMatrix demands = {},
                      ParxOptions options = {});

  /// Re-routing trigger: ingest a new communication profile before the next
  /// compute() (the paper's OpenSM interface re-routes the fabric prior to
  /// job start).
  void set_demands(DemandMatrix demands) { demands_ = std::move(demands); }

  [[nodiscard]] std::string name() const override { return "parx"; }

  /// `lids` must be the quadrant-grouped LMC=2 space from
  /// make_parx_lid_space() -- the rules are indexed by LID offset.
  [[nodiscard]] routing::RouteResult compute(const topo::Topology& topo,
                                             const routing::LidSpace& lids)
      override;

 private:
  const topo::HyperX* hx_;
  DemandMatrix demands_;
  ParxOptions options_;
};

}  // namespace hxsim::core
