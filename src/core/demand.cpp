#include "core/demand.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hxsim::core {

DemandMatrix::DemandMatrix(std::int32_t num_nodes)
    : nodes_(num_nodes),
      cells_(static_cast<std::size_t>(num_nodes) *
                 static_cast<std::size_t>(num_nodes),
             0),
      listed_dst_(static_cast<std::size_t>(num_nodes), 0) {}

void DemandMatrix::set(topo::NodeId src, topo::NodeId dst,
                       std::uint8_t demand) {
  if (src < 0 || src >= nodes_ || dst < 0 || dst >= nodes_)
    throw std::out_of_range("DemandMatrix::set: node out of range");
  cells_[index(src, dst)] = demand;
  if (demand > 0) listed_dst_[static_cast<std::size_t>(dst)] = 1;
}

DemandMatrix DemandMatrix::from_bytes(
    std::int32_t num_nodes, std::span<const std::int64_t> byte_matrix) {
  if (byte_matrix.size() != static_cast<std::size_t>(num_nodes) *
                                static_cast<std::size_t>(num_nodes))
    throw std::invalid_argument("DemandMatrix::from_bytes: size mismatch");

  std::int64_t max_bytes = 0;
  for (std::int64_t b : byte_matrix) max_bytes = std::max(max_bytes, b);

  DemandMatrix m(num_nodes);
  if (max_bytes == 0) return m;
  for (topo::NodeId src = 0; src < num_nodes; ++src) {
    for (topo::NodeId dst = 0; dst < num_nodes; ++dst) {
      const std::int64_t b = byte_matrix[m.index(src, dst)];
      if (b <= 0) continue;
      // Proportional scale into [1, 255]: any traffic is at least 1.
      const double scaled = std::round(
          static_cast<double>(b) / static_cast<double>(max_bytes) * kDemandMax);
      const auto demand = static_cast<std::uint8_t>(
          std::clamp<double>(scaled, 1.0, kDemandMax));
      m.set(src, dst, demand);
    }
  }
  return m;
}

std::int64_t DemandMatrix::column_sum(topo::NodeId dst) const {
  std::int64_t sum = 0;
  for (topo::NodeId src = 0; src < nodes_; ++src) sum += at(src, dst);
  return sum;
}

}  // namespace hxsim::core
