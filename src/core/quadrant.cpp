#include "core/quadrant.hpp"

#include <stdexcept>

namespace hxsim::core {

void validate_parx_topology(const topo::HyperX& hx) {
  if (hx.num_dims() != 2)
    throw std::invalid_argument("PARX prototype requires a 2-D HyperX");
  if (hx.dim_size(0) % 2 != 0 || hx.dim_size(1) % 2 != 0)
    throw std::invalid_argument("PARX prototype requires even dimensions");
}

bool in_half(const topo::HyperX& hx, topo::SwitchId sw, Half half) {
  const std::int32_t x = hx.coord(sw, 0);
  const std::int32_t y = hx.coord(sw, 1);
  switch (half) {
    case Half::kLeft:
      return x < hx.dim_size(0) / 2;
    case Half::kRight:
      return x >= hx.dim_size(0) / 2;
    case Half::kTop:
      return y < hx.dim_size(1) / 2;
    case Half::kBottom:
      return y >= hx.dim_size(1) / 2;
  }
  return false;
}

std::int32_t quadrant_of_switch(const topo::HyperX& hx, topo::SwitchId sw) {
  const bool left = in_half(hx, sw, Half::kLeft);
  const bool top = in_half(hx, sw, Half::kTop);
  if (left && top) return 0;
  if (left && !top) return 1;
  if (!left && !top) return 2;
  return 3;
}

std::int32_t quadrant_of_node(const topo::HyperX& hx, topo::NodeId n) {
  return quadrant_of_switch(hx, hx.topo().attach_switch(n));
}

std::vector<std::vector<topo::NodeId>> quadrant_groups(const topo::HyperX& hx) {
  std::vector<std::vector<topo::NodeId>> groups(kNumQuadrants);
  for (topo::NodeId n = 0; n < hx.topo().num_terminals(); ++n)
    groups[static_cast<std::size_t>(quadrant_of_node(hx, n))].push_back(n);
  return groups;
}

Half removed_half_for_lid_index(std::int32_t x) {
  switch (x) {
    case 0:
      return Half::kLeft;
    case 1:
      return Half::kRight;
    case 2:
      return Half::kTop;
    case 3:
      return Half::kBottom;
    default:
      throw std::out_of_range("removed_half_for_lid_index: x must be 0..3");
  }
}

routing::ChannelFilter parx_prune_filter(const topo::HyperX& hx,
                                         std::int32_t x) {
  const Half half = removed_half_for_lid_index(x);
  return [&hx, half](topo::ChannelId ch) {
    const topo::Channel& c = hx.topo().channel(ch);
    if (!c.src.is_switch() || !c.dst.is_switch()) return true;
    return !(in_half(hx, c.src.index, half) && in_half(hx, c.dst.index, half));
  };
}

routing::LidSpace make_parx_lid_space(const topo::HyperX& hx) {
  validate_parx_topology(hx);
  const auto groups = quadrant_groups(hx);
  return routing::LidSpace::grouped(groups, kParxLmc, kQuadrantLidStride);
}

}  // namespace hxsim::core
