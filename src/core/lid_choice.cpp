#include "core/lid_choice.hpp"

#include <stdexcept>

namespace hxsim::core {

namespace {

struct Cell {
  std::int8_t a;
  std::int8_t b;  // -1 when the table lists a single option
};

// Table 1a: x for small messages (rows: source quadrant, cols: destination).
constexpr Cell kSmall[4][4] = {
    /* Q0 */ {{1, 3}, {1, -1}, {0, 2}, {3, -1}},
    /* Q1 */ {{1, -1}, {1, 2}, {2, -1}, {0, 3}},
    /* Q2 */ {{1, 3}, {2, -1}, {0, 2}, {0, -1}},
    /* Q3 */ {{3, -1}, {1, 2}, {0, -1}, {0, 3}},
};

// Table 1b: x for large messages.
constexpr Cell kLarge[4][4] = {
    /* Q0 */ {{0, 2}, {0, -1}, {0, 2}, {2, -1}},
    /* Q1 */ {{0, -1}, {0, 3}, {3, -1}, {0, 3}},
    /* Q2 */ {{1, 3}, {3, -1}, {1, 3}, {1, -1}},
    /* Q3 */ {{2, -1}, {1, 2}, {1, -1}, {1, 2}},
};

}  // namespace

LidChoice parx_lid_options(std::int32_t src_q, std::int32_t dst_q,
                           MsgClass cls) {
  if (src_q < 0 || src_q > 3 || dst_q < 0 || dst_q > 3)
    throw std::out_of_range("parx_lid_options: quadrant must be 0..3");
  const Cell cell = (cls == MsgClass::kSmall)
                        ? kSmall[src_q][dst_q]
                        : kLarge[src_q][dst_q];
  LidChoice choice;
  choice.options[0] = cell.a;
  choice.count = 1;
  if (cell.b >= 0) {
    choice.options[1] = cell.b;
    choice.count = 2;
  }
  return choice;
}

std::int8_t pick_parx_lid(std::int32_t src_q, std::int32_t dst_q, MsgClass cls,
                          stats::Rng& rng) {
  const LidChoice choice = parx_lid_options(src_q, dst_q, cls);
  if (choice.count == 1) return choice.options[0];
  return choice.options[static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint64_t>(choice.count)))];
}

}  // namespace hxsim::core
