// Quadrant partitioning of a 2-D HyperX (paper Section 3.2.1, Figure 3).
//
// PARX virtually divides the switch lattice into four quadrants.  Dimension
// 0 is "x" (left/right), dimension 1 is "y" (top/bottom, y = 0 is top):
//
//        x <  X/2     x >= X/2
//   y <  Y/2   Q0        Q3
//   y >= Y/2   Q1        Q2
//
// This orientation is the unique one consistent with the paper's Table 1:
// e.g. intra-Q0 small messages may use LID1 (right half pruned) or LID3
// (bottom half pruned), so Q0 must lie in the left-top corner.
//
// The four link-removal rules attach to the LID index, not the quadrant:
//   R1: LID0 -> remove all links within the left half
//   R2: LID1 -> remove all links within the right half
//   R3: LID2 -> remove all links within the top half
//   R4: LID3 -> remove all links within the bottom half
// ("within" = both endpoints inside the half).
//
// Quadrants are encoded in the LID value itself via the guid2lid policy the
// paper describes in footnote 9: nodes of quadrant q get LIDs in
// [q*1000, q*1000 + 999], so the MPI layer recovers q = lid / 1000.
#pragma once

#include <vector>

#include "routing/lid_space.hpp"
#include "routing/spf.hpp"
#include "topo/hyperx.hpp"

namespace hxsim::core {

inline constexpr std::int32_t kNumQuadrants = 4;
inline constexpr routing::Lid kQuadrantLidStride = 1000;
inline constexpr std::int32_t kParxLmc = 2;  // 4 destination LIDs per port

enum class Half : std::int8_t { kLeft, kRight, kTop, kBottom };

/// Throws std::invalid_argument unless hx is 2-D with even dimensions
/// (the prototype's stated scope, Section 3.2.1).
void validate_parx_topology(const topo::HyperX& hx);

/// True if the switch lies inside the given half of the lattice.
[[nodiscard]] bool in_half(const topo::HyperX& hx, topo::SwitchId sw,
                           Half half);

/// Quadrant (0..3) of a switch / node.
[[nodiscard]] std::int32_t quadrant_of_switch(const topo::HyperX& hx,
                                              topo::SwitchId sw);
[[nodiscard]] std::int32_t quadrant_of_node(const topo::HyperX& hx,
                                            topo::NodeId n);

/// Nodes grouped by quadrant (input for LidSpace::grouped).
[[nodiscard]] std::vector<std::vector<topo::NodeId>> quadrant_groups(
    const topo::HyperX& hx);

/// Rule R(x+1): the half whose internal links are pruned when routing LIDx.
[[nodiscard]] Half removed_half_for_lid_index(std::int32_t x);

/// Channel filter enforcing the rule for LID index x: rejects
/// switch-to-switch channels whose both endpoints lie in the removed half.
[[nodiscard]] routing::ChannelFilter parx_prune_filter(const topo::HyperX& hx,
                                                       std::int32_t x);

/// The paper's PARX LID layout: LMC = 2, quadrant-grouped, stride 1000.
[[nodiscard]] routing::LidSpace make_parx_lid_space(const topo::HyperX& hx);

}  // namespace hxsim::core
