#include "core/parx.hpp"

#include <stdexcept>

#include "routing/dfsssp.hpp"
#include "routing/spf.hpp"

namespace hxsim::core {

ParxEngine::ParxEngine(const topo::HyperX& hx, DemandMatrix demands,
                       ParxOptions options)
    : hx_(&hx), demands_(std::move(demands)), options_(options) {
  validate_parx_topology(hx);
}

routing::RouteResult ParxEngine::compute(const topo::Topology& topo,
                                         const routing::LidSpace& lids) {
  if (&hx_->topo() != &topo)
    throw std::invalid_argument("ParxEngine: topology is not the HyperX");
  if (lids.lmc() != kParxLmc)
    throw std::invalid_argument("ParxEngine: LID space must have LMC=2");
  if (!demands_.empty() && demands_.num_nodes() != topo.num_terminals())
    throw std::invalid_argument("ParxEngine: demand matrix size mismatch");

  routing::RouteResult res;
  res.tables = routing::ForwardingTables(topo.num_switches(), lids.max_lid());

  // Destination processing order: demand-listed nodes first (they get the
  // freshest weight landscape), then all remaining nodes (Algorithm 1's
  // "not processed before" loop).
  std::vector<topo::NodeId> order;
  order.reserve(static_cast<std::size_t>(topo.num_terminals()));
  if (!demands_.empty()) {
    for (topo::NodeId n = 0; n < topo.num_terminals(); ++n)
      if (demands_.is_listed_destination(n)) order.push_back(n);
  }
  const std::size_t listed = order.size();
  for (topo::NodeId n = 0; n < topo.num_terminals(); ++n) {
    if (!demands_.empty() && demands_.is_listed_destination(n)) continue;
    order.push_back(n);
  }

  std::vector<double> weight(static_cast<std::size_t>(topo.num_channels()),
                             1.0);

  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const topo::NodeId nd = order[rank];
    const bool is_listed = rank < listed;
    const topo::SwitchId dest_sw = topo.attach_switch(nd);

    for (std::int32_t x = 0; x < lids.lids_per_terminal(); ++x) {
      // Create the temporary graph I* by removing links per rules R1-R4.
      routing::ChannelFilter filter;
      if (options_.use_link_pruning) filter = parx_prune_filter(*hx_, x);
      const routing::SpfResult tree =
          routing::spf_to(topo, dest_sw, weight, filter);
      res.unreachable_entries += routing::apply_tree_to_tables(
          topo, tree, nd, lids.lid(nd, x), res.tables);

      // Edge-weight update before the next round: demand-weighted for
      // listed destinations, +1 per path otherwise.
      for (topo::SwitchId s = 0; s < topo.num_switches(); ++s) {
        if (s == dest_sw || !tree.reachable(s)) continue;
        double delta = 0.0;
        for (const topo::NodeId nx : topo.switch_terminals(s)) {
          if (is_listed && options_.use_demand_weights) {
            delta += static_cast<double>(demands_.at(nx, nd));
          } else {
            delta += 1.0;
          }
        }
        if (delta == 0.0) continue;
        topo::SwitchId at = s;
        while (at != dest_sw) {
          const topo::ChannelId out =
              tree.out_channel[static_cast<std::size_t>(at)];
          weight[static_cast<std::size_t>(out)] += delta;
          at = topo.channel(out).dst.index;
        }
      }
    }
  }

  // Deadlock-free configuration: assign every calculated path (incl. all
  // virtual LIDs) to a virtual lane without creating a CDG cycle.
  routing::DfssspEngine::assign_vls(topo, lids, res.tables, options_.max_vls,
                                    res);
  return res;
}

}  // namespace hxsim::core
