#include "core/parx.hpp"

#include <stdexcept>
#include <utility>

#include "routing/dfsssp.hpp"
#include "routing/spf.hpp"

namespace hxsim::core {

namespace {

/// Destination processing order: demand-listed nodes first (they get the
/// freshest weight landscape), then all remaining nodes (Algorithm 1's
/// "not processed before" loop).  Returns the order and the listed count.
std::pair<std::vector<topo::NodeId>, std::size_t> parx_dest_order(
    const topo::Topology& topo, const DemandMatrix& demands) {
  std::vector<topo::NodeId> order;
  order.reserve(static_cast<std::size_t>(topo.num_terminals()));
  if (!demands.empty()) {
    for (topo::NodeId n = 0; n < topo.num_terminals(); ++n)
      if (demands.is_listed_destination(n)) order.push_back(n);
  }
  const std::size_t listed = order.size();
  for (topo::NodeId n = 0; n < topo.num_terminals(); ++n) {
    if (!demands.empty() && demands.is_listed_destination(n)) continue;
    order.push_back(n);
  }
  return {std::move(order), listed};
}

/// Edge-weight update after routing one (destination, LIDx) column:
/// demand-weighted for listed destinations, +1 per path otherwise.  Shared
/// by compute and the delta prefix replay, which re-derives the sequential
/// weight evolution from cached trees without re-running any Dijkstra.
void add_parx_load(const topo::Topology& topo, const DemandMatrix& demands,
                   const ParxOptions& options, const routing::SpfResult& tree,
                   topo::SwitchId dest_sw, topo::NodeId nd, bool is_listed,
                   std::vector<double>& weight) {
  for (topo::SwitchId s = 0; s < topo.num_switches(); ++s) {
    if (s == dest_sw || !tree.reachable(s)) continue;
    double delta = 0.0;
    for (const topo::NodeId nx : topo.switch_terminals(s)) {
      if (is_listed && options.use_demand_weights) {
        delta += static_cast<double>(demands.at(nx, nd));
      } else {
        delta += 1.0;
      }
    }
    if (delta == 0.0) continue;
    topo::SwitchId at = s;
    while (at != dest_sw) {
      const topo::ChannelId out =
          tree.out_channel[static_cast<std::size_t>(at)];
      weight[static_cast<std::size_t>(out)] += delta;
      at = topo.channel(out).dst.index;
    }
  }
}

}  // namespace

ParxEngine::ParxEngine(const topo::HyperX& hx, DemandMatrix demands,
                       ParxOptions options)
    : hx_(&hx), demands_(std::move(demands)), options_(options) {
  validate_parx_topology(hx);
}

routing::RouteResult ParxEngine::compute_impl(const topo::Topology& topo,
                                              const routing::LidSpace& lids,
                                              routing::TreeTrackState* track) {
  if (&hx_->topo() != &topo)
    throw std::invalid_argument("ParxEngine: topology is not the HyperX");
  if (lids.lmc() != kParxLmc)
    throw std::invalid_argument("ParxEngine: LID space must have LMC=2");
  if (!demands_.empty() && demands_.num_nodes() != topo.num_terminals())
    throw std::invalid_argument("ParxEngine: demand matrix size mismatch");

  routing::RouteResult res;
  res.tables = routing::ForwardingTables(topo.num_switches(), lids.max_lid());

  const auto [order, listed] = parx_dest_order(topo, demands_);
  const auto lids_per = static_cast<std::size_t>(lids.lids_per_terminal());
  if (track != nullptr) {
    track->valid = false;
    track->columns.resize(order.size() * lids_per);
  }

  std::vector<double> weight(static_cast<std::size_t>(topo.num_channels()),
                             1.0);
  routing::SpfScratch scratch;
  routing::SpfResult local_tree;

  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const topo::NodeId nd = order[rank];
    const bool is_listed = rank < listed;
    const topo::SwitchId dest_sw = topo.attach_switch(nd);

    for (std::int32_t x = 0;
         x < static_cast<std::int32_t>(lids_per); ++x) {
      // Create the temporary graph I* by removing links per rules R1-R4.
      routing::ChannelFilter filter;
      if (options_.use_link_pruning) filter = parx_prune_filter(*hx_, x);
      const routing::Lid dlid = lids.lid(nd, x);

      routing::SpfResult* tree = &local_tree;
      routing::ChannelBitmap* member = nullptr;
      if (track != nullptr) {
        routing::TreeColumnState& col =
            track->columns[rank * lids_per + static_cast<std::size_t>(x)];
        col.dlid = dlid;
        tree = &col.tree;
        member = &col.member;
      }
      routing::spf_to(topo, dest_sw, weight, filter, scratch, *tree, member);
      const std::int64_t unreachable = routing::apply_tree_to_tables(
          topo, *tree, nd, dlid, res.tables);
      res.unreachable_entries += unreachable;
      if (track != nullptr)
        track->columns[rank * lids_per + static_cast<std::size_t>(x)]
            .unreachable = unreachable;

      add_parx_load(topo, demands_, options_, *tree, dest_sw, nd, is_listed,
                    weight);
    }
  }

  // Deadlock-free configuration: assign every calculated path (incl. all
  // virtual LIDs) to a virtual lane without creating a CDG cycle.
  routing::DfssspEngine::assign_vls(topo, lids, res.tables, options_.max_vls,
                                    res);
  if (track != nullptr) track->valid = true;
  return res;
}

routing::RouteResult ParxEngine::compute(const topo::Topology& topo,
                                         const routing::LidSpace& lids) {
  return compute_impl(topo, lids, nullptr);
}

routing::RouteResult ParxEngine::compute_tracked(
    const topo::Topology& topo, const routing::LidSpace& lids) {
  return compute_impl(topo, lids, &track_);
}

routing::DeltaStats ParxEngine::update_tracked(
    const topo::Topology& topo, const routing::LidSpace& lids,
    const routing::DeltaUpdate& update, routing::RouteResult& io) {
  routing::DeltaStats stats;
  if (!track_.valid || !update.enabled.empty()) {
    stats.full_recompute = true;
    io = compute_tracked(topo, lids);
    stats.columns_total = static_cast<std::int64_t>(track_.columns.size());
    stats.columns_recomputed = stats.columns_total;
    stats.columns_changed = stats.columns_total;
    return stats;
  }

  const auto n = track_.columns.size();
  stats.columns_total = static_cast<std::int64_t>(n);
  std::size_t first = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (track_.columns[i].member.intersects(update.disabled)) {
      first = i;
      break;
    }
  }
  if (first == n) return stats;  // no tree used a disabled channel

  const auto [order, listed] = parx_dest_order(topo, demands_);
  const auto lids_per = static_cast<std::size_t>(lids.lids_per_terminal());

  // Algorithm 1 updates weights after every single column (batch 1), so
  // the clean-reuse window ends exactly at the first dirty column: replay
  // the weight evolution of [0, first) from the cached trees, then rerun
  // the sequential loop from there.
  std::vector<double> weight(static_cast<std::size_t>(topo.num_channels()),
                             1.0);
  routing::SpfScratch scratch;
  routing::SpfResult tree;
  routing::ChannelBitmap member;

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t rank = i / lids_per;
    const auto x = static_cast<std::int32_t>(i % lids_per);
    const topo::NodeId nd = order[rank];
    const bool is_listed = rank < listed;
    const topo::SwitchId dest_sw = topo.attach_switch(nd);
    routing::TreeColumnState& col = track_.columns[i];

    if (i >= first) {
      ++stats.columns_recomputed;
      routing::ChannelFilter filter;
      if (options_.use_link_pruning) filter = parx_prune_filter(*hx_, x);
      routing::spf_to(topo, dest_sw, weight, filter, scratch, tree, &member);
      const bool changed = tree.out_channel != col.tree.out_channel;
      std::swap(col.tree, tree);
      std::swap(col.member, member);
      if (changed) {
        col.unreachable = routing::apply_tree_to_tables(topo, col.tree, nd,
                                                        col.dlid, io.tables);
        stats.dirty_lids.push_back(col.dlid);
        ++stats.columns_changed;
      }
    }
    add_parx_load(topo, demands_, options_, col.tree, dest_sw, nd, is_listed,
                  weight);
  }
  io.unreachable_entries = track_.total_unreachable();
  if (stats.columns_changed > 0)
    routing::DfssspEngine::assign_vls(topo, lids, io.tables, options_.max_vls,
                                      io);
  return stats;
}

}  // namespace hxsim::core
