// Text (de)serialization of communication-demand files.
//
// The paper's PARX-OpenSM ingests "a communication demand file with one
// line per source node: D := [(<destination>, <send demand>), ...]"
// (Algorithm 1 input), produced by the SAR-style interface from a stored
// profile and the job's node allocation.  This module implements that file
// format so demand matrices can be stored, inspected, and replayed:
//
//   # comment lines and blank lines are ignored
//   <num_nodes>
//   <src> <dst> <demand>      # demand in 1..255, one triple per line
//
// Only non-zero entries are written.  Parsing is strict: out-of-range
// nodes or demands raise std::invalid_argument with a line number.
#pragma once

#include <iosfwd>
#include <string>

#include "core/demand.hpp"

namespace hxsim::core {

/// Writes the matrix in the format above.
void write_demands(std::ostream& out, const DemandMatrix& demands);
void write_demands_file(const std::string& path, const DemandMatrix& demands);

/// Parses a demand file; throws std::invalid_argument on malformed input.
[[nodiscard]] DemandMatrix read_demands(std::istream& in);
[[nodiscard]] DemandMatrix read_demands_file(const std::string& path);

}  // namespace hxsim::core
