// Parallel execution layer: a work-stealing-free thread pool with a
// deterministic-by-construction parallel_for, plus per-worker scratch
// storage.
//
// Design rules (see DESIGN.md "Execution layer"):
//  - parallel_for(count, body) invokes body(index, worker) exactly once for
//    every index in [0, count); indices are claimed dynamically from a
//    shared counter, so *scheduling* is non-deterministic but a body that
//    only writes to per-index slots (and per-worker scratch) produces
//    output independent of thread count and interleaving.  All engines
//    follow this discipline and merge per-index results serially, so their
//    RouteResult is bit-identical from 1 to N threads.
//  - The calling thread participates as worker 0; a pool with
//    num_threads() == 1 owns no OS threads and runs everything inline,
//    which keeps 1-thread timings honest (no synchronisation overhead).
//  - Exceptions thrown by a body cancel the remaining indices and the
//    first captured exception is rethrown from parallel_for.
//  - parallel_for does not nest: calling it from inside a body throws
//    std::logic_error.  Engines parallelise exactly one level.
#pragma once

#include <cstdint>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hxsim::exec {

/// Threads the hardware offers (>= 1 even when the runtime reports 0).
[[nodiscard]] std::int32_t hardware_threads();

/// Process-wide default used whenever a component takes `threads = 0`.
/// Starts at hardware_threads(); the bench layer sets it from --threads.
[[nodiscard]] std::int32_t default_threads();
void set_default_threads(std::int32_t threads);

class ThreadPool {
 public:
  /// threads == 0 picks default_threads(); threads == 1 runs inline with
  /// no OS threads.  Worker threads are spawned lazily by the first
  /// parallel_for with more than one index and live until destruction, so
  /// pools that end up doing tiny jobs (a delta reroute with an empty
  /// dirty set) never pay the thread-spawn cost.
  explicit ThreadPool(std::int32_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::int32_t num_threads() const noexcept {
    return num_threads_;
  }

  /// body(index, worker): worker is in [0, num_threads()); worker 0 is the
  /// calling thread.  Blocks until every index ran (or an exception
  /// cancelled the rest); rethrows the first body exception.
  void parallel_for(std::int64_t count,
                    const std::function<void(std::int64_t, std::int32_t)>& body);

 private:
  /// Spawns the num_threads()-1 worker threads if not yet running.  Only
  /// called from parallel_for on the owning thread (the pool is not
  /// reentrant), so no lock is needed around the check.
  void ensure_workers();
  void worker_main(std::int32_t worker);
  /// Claims and runs indices of the current job; returns when none remain.
  void run_indices(const std::function<void(std::int64_t, std::int32_t)>& body,
                   std::int32_t worker);

  const std::int32_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable job_posted_;
  std::condition_variable job_drained_;
  std::uint64_t job_id_ = 0;  // bumped per parallel_for; workers track it
  const std::function<void(std::int64_t, std::int32_t)>* body_ = nullptr;
  std::int64_t count_ = 0;
  std::int32_t active_workers_ = 0;  // workers inside run_indices
  bool stop_ = false;

  std::atomic<std::int64_t> next_{0};  // next index to claim
  std::atomic<bool> cancelled_{false};
  std::exception_ptr error_;  // first body exception (guarded by mutex_)
};

/// One default-constructed T per pool worker.  Engines keep Dijkstra /
/// solver scratch here so hot loops stop reallocating; slots are handed
/// out by the worker id parallel_for provides, so no locking is needed.
template <typename T>
class ScratchArena {
 public:
  explicit ScratchArena(std::int32_t workers)
      : slots_(static_cast<std::size_t>(workers)) {}
  explicit ScratchArena(const ThreadPool& pool)
      : ScratchArena(pool.num_threads()) {}

  [[nodiscard]] T& local(std::int32_t worker) {
    return slots_[static_cast<std::size_t>(worker)];
  }
  [[nodiscard]] std::int32_t size() const noexcept {
    return static_cast<std::int32_t>(slots_.size());
  }

 private:
  std::vector<T> slots_;
};

}  // namespace hxsim::exec
