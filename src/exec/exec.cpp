#include "exec/exec.hpp"

#include <stdexcept>

namespace hxsim::exec {

namespace {

std::atomic<std::int32_t> g_default_threads{0};  // 0: not yet initialised

/// Set while a thread is executing a parallel_for body; used to reject
/// nested parallelism (worker threads would deadlock waiting on a job
/// that can never be posted to them).
thread_local bool tl_in_parallel_region = false;

}  // namespace

std::int32_t hardware_threads() {
  const auto n = static_cast<std::int32_t>(std::thread::hardware_concurrency());
  return n > 0 ? n : 1;
}

std::int32_t default_threads() {
  const std::int32_t n = g_default_threads.load(std::memory_order_relaxed);
  return n > 0 ? n : hardware_threads();
}

void set_default_threads(std::int32_t threads) {
  if (threads < 0)
    throw std::invalid_argument("set_default_threads: negative count");
  g_default_threads.store(threads, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::int32_t threads)
    : num_threads_(threads == 0 ? default_threads() : threads) {
  if (num_threads_ < 1)
    throw std::invalid_argument("ThreadPool: thread count must be >= 1");
  // Workers spawn lazily in ensure_workers(): per-stage delta reroutes
  // routinely run parallel_for over a handful of dirty trees (or none),
  // and must not pay num_threads-1 thread spawns for it.
}

void ThreadPool::ensure_workers() {
  if (num_threads_ <= 1 || !workers_.empty()) return;
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (std::int32_t w = 1; w < num_threads_; ++w)
    workers_.emplace_back([this, w] { worker_main(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  job_posted_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_indices(
    const std::function<void(std::int64_t, std::int32_t)>& body,
    std::int32_t worker) {
  tl_in_parallel_region = true;
  while (!cancelled_.load(std::memory_order_relaxed)) {
    const std::int64_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_) break;
    try {
      body(i, worker);
    } catch (...) {
      cancelled_.store(true, std::memory_order_relaxed);
      std::lock_guard lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }
  tl_in_parallel_region = false;
}

void ThreadPool::worker_main(std::int32_t worker) {
  std::uint64_t seen_job = 0;
  for (;;) {
    const std::function<void(std::int64_t, std::int32_t)>* body = nullptr;
    {
      std::unique_lock lock(mutex_);
      job_posted_.wait(lock, [&] { return stop_ || job_id_ != seen_job; });
      if (stop_) return;
      seen_job = job_id_;
      if (body_ == nullptr) continue;  // woke after the job already drained
      body = body_;
      ++active_workers_;  // under mutex: the drain wait counts us from here
    }
    run_indices(*body, worker);
    {
      std::lock_guard lock(mutex_);
      --active_workers_;
    }
    job_drained_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::int64_t count,
    const std::function<void(std::int64_t, std::int32_t)>& body) {
  if (tl_in_parallel_region)
    throw std::logic_error(
        "ThreadPool::parallel_for: nested parallel regions are not "
        "supported");
  if (count <= 0) return;
  if (count > 1) ensure_workers();

  {
    std::lock_guard lock(mutex_);
    body_ = &body;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    cancelled_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    ++job_id_;
  }
  job_posted_.notify_all();

  // The caller is worker 0.
  run_indices(body, 0);

  // Wait until no worker is still inside run_indices, then close the job:
  // workers that wake afterwards see body_ == nullptr and go back to
  // sleep, so they can never claim indices from a stale or future job.
  std::unique_lock lock(mutex_);
  job_drained_.wait(lock, [&] { return active_workers_ == 0; });
  body_ = nullptr;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace hxsim::exec
