#include "sim/flowsim.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "exec/exec.hpp"

namespace hxsim::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

FlowSim::FlowSim(const topo::Topology& topo, LinkModel link)
    : topo_(&topo),
      link_(link),
      capacity_(static_cast<std::size_t>(topo.num_channels()),
                link.bandwidth) {}

void FlowSim::set_capacity(topo::ChannelId ch, double bytes_per_s) {
  if (bytes_per_s <= 0.0)
    throw std::invalid_argument("FlowSim::set_capacity: non-positive");
  capacity_.at(static_cast<std::size_t>(ch)) = bytes_per_s;
}

void FlowSim::solve(std::span<const Flow> flows, std::span<const char> active,
                    std::span<double> rate, SolveScratch& scratch,
                    obs::FlowSolveRecord* record) const {
  // Progressive filling: all unfrozen flows share one common rate level
  // that rises until some channel saturates; flows crossing a saturated
  // channel freeze at the level, and the level keeps rising for the rest.
  //
  // Only channels actually crossed by an active flow matter, so the state
  // is kept compact (full-fabric channel vectors would dominate the cost
  // on large fat-trees).  The full-width local_of map persists in the
  // scratch and is un-dirtied via the used list on the way out, so reusing
  // a scratch keeps every solve allocation-free after warm-up.
  auto& local_of = scratch.local_of;
  auto& used = scratch.used;
  auto& frozen = scratch.frozen;
  if (local_of.size() != capacity_.size()) local_of.assign(capacity_.size(), -1);
  used.clear();
  frozen.assign(flows.size(), 0);

  std::size_t remaining = 0;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (!active[f]) continue;
    if (flows[f].channels.empty()) {
      rate[f] = kInf;  // self-send: no network resource consumed
      continue;
    }
    ++remaining;
    for (topo::ChannelId ch : flows[f].channels) {
      auto& idx = local_of[static_cast<std::size_t>(ch)];
      if (idx < 0) {
        idx = static_cast<std::int32_t>(used.size());
        used.push_back(ch);
      }
    }
  }

  const std::size_t nused = used.size();
  auto& frozen_load = scratch.frozen_load;
  auto& unfrozen_count = scratch.unfrozen_count;
  auto& saturated = scratch.saturated;
  frozen_load.assign(nused, 0.0);
  unfrozen_count.assign(nused, 0);
  saturated.assign(nused, 0);
  // Solver-metric recording is off the hot path: `ever_saturated` lives in
  // the scratch and is only (re)sized when this solve actually traces, so
  // traced solves are allocation-free after warm-up too.
  auto& ever_saturated = scratch.ever_saturated;
  if (record != nullptr) {
    record->active_flows = static_cast<std::int32_t>(remaining);
    ever_saturated.assign(nused, 0);
  }
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (!active[f] || flows[f].channels.empty()) continue;
    for (topo::ChannelId ch : flows[f].channels)
      ++unfrozen_count[static_cast<std::size_t>(
          local_of[static_cast<std::size_t>(ch)])];
  }
  // Worklist of channels still carrying unfrozen flows.  Every used
  // channel starts with unfrozen_count >= 1 (it got into `used` via an
  // active flow's path); the list is compacted after each level so the
  // late, sparse filling rounds scan only the few still-live channels
  // instead of all nused.  Dropped channels are never consulted again:
  // a flow is skipped once frozen, and an *unfrozen* flow's channels all
  // have unfrozen_count >= 1 by definition, so stale `saturated` flags on
  // compacted channels are unreachable.
  auto& worklist = scratch.worklist;
  worklist.clear();
  for (std::size_t c = 0; c < nused; ++c)
    worklist.push_back(static_cast<std::int32_t>(c));
  while (remaining > 0) {
    // The common level can rise to min over loaded channels of
    // (capacity - frozen_load) / unfrozen_count.
    double level = kInf;
    for (const std::int32_t ci : worklist) {
      const auto c = static_cast<std::size_t>(ci);
      if (unfrozen_count[c] == 0) continue;
      const double cap = std::max(
          0.0, capacity_[static_cast<std::size_t>(used[c])] - frozen_load[c]);
      level = std::min(level, cap / unfrozen_count[c]);
    }
    if (level == kInf) {
      // Defensive: no loaded channel left although flows remain unfrozen.
      // Mark the survivors explicitly so their rates are never stale
      // values from a previous solve of the same scratch/rate buffer.
      for (std::size_t f = 0; f < flows.size(); ++f) {
        if (!active[f] || frozen[f] || flows[f].channels.empty()) continue;
        frozen[f] = 1;
        rate[f] = 0.0;
      }
      remaining = 0;
      break;
    }

    // Freeze every unfrozen flow that crosses a (now) saturated channel.
    //
    // Epsilon note: `cap` is the same max(0, capacity - frozen_load)
    // clamp the level minimisation used, so cap / unfrozen_count >= 0
    // always.  Within one solve, frozen_load on a channel with unfrozen
    // flows left can never exceed capacity (each freeze adds exactly
    // `level` per flow, and level <= (capacity - frozen_load) /
    // unfrozen_count for every live channel by the minimisation above) --
    // the clamp guards only inert channels whose last unfrozen flow
    // already froze, where ulp-level overshoot of frozen_load is possible
    // but unobservable.  The (1 + 1e-12) relative slack therefore only
    // widens the equality test `cap / unfrozen_count == level` against
    // one ulp of division rounding; since level is the minimum of those
    // quotients, the slack can re-include the minimising channels but can
    // never freeze a flow at a "negative-capacity" channel or below 0:
    // rates out of this solver are always >= 0 (asserted by sim_test's
    // FlowSim.SaturationEpsilon* regression cases).
    for (const std::int32_t ci : worklist) {
      const auto c = static_cast<std::size_t>(ci);
      saturated[c] = 0;
      if (unfrozen_count[c] == 0) continue;
      const double cap = std::max(
          0.0, capacity_[static_cast<std::size_t>(used[c])] - frozen_load[c]);
      if (cap / unfrozen_count[c] <= level * (1.0 + 1e-12)) saturated[c] = 1;
    }
    bool froze_any = false;
    std::int32_t froze_count = 0;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (!active[f] || frozen[f] || flows[f].channels.empty()) continue;
      bool hit = false;
      for (topo::ChannelId ch : flows[f].channels) {
        if (saturated[static_cast<std::size_t>(
                local_of[static_cast<std::size_t>(ch)])]) {
          hit = true;
          break;
        }
      }
      if (!hit) continue;
      frozen[f] = 1;
      froze_any = true;
      ++froze_count;
      rate[f] = level;
      --remaining;
      for (topo::ChannelId ch : flows[f].channels) {
        const auto c = static_cast<std::size_t>(
            local_of[static_cast<std::size_t>(ch)]);
        --unfrozen_count[c];
        frozen_load[c] += level;
      }
    }
    if (!froze_any) {
      // Numerical guard: freeze everything at the current level.
      for (std::size_t f = 0; f < flows.size(); ++f) {
        if (!active[f] || frozen[f] || flows[f].channels.empty()) continue;
        frozen[f] = 1;
        ++froze_count;
        rate[f] = level;
      }
      remaining = 0;
    }
    if (record != nullptr) {
      record->levels.push_back(level);
      record->freezes_per_level.push_back(froze_count);
      // A channel saturates for the first time in a round where it still
      // carries unfrozen flows, i.e. while still on the worklist -- so
      // scanning the (pre-compaction) worklist sees every first
      // saturation exactly once.
      for (const std::int32_t ci : worklist) {
        const auto c = static_cast<std::size_t>(ci);
        if (saturated[c] && !ever_saturated[c]) {
          ever_saturated[c] = 1;
          record->saturated.push_back(used[c]);
        }
      }
    }
    worklist.erase(
        std::remove_if(worklist.begin(), worklist.end(),
                       [&](std::int32_t ci) {
                         return unfrozen_count[static_cast<std::size_t>(ci)] ==
                                0;
                       }),
        worklist.end());
  }

  // Un-dirty the persistent channel map for the next solve on this scratch.
  for (topo::ChannelId ch : used) local_of[static_cast<std::size_t>(ch)] = -1;
}

void FlowSim::validate(std::span<const Flow> flows) const {
  validate_active(flows, {});
}

void FlowSim::validate_active(std::span<const Flow> flows,
                              std::span<const char> active) const {
  // Degraded-fabric guard: a flow routed before fault injection can carry a
  // stale path over a now-disabled cable.  Solving over it would silently
  // grant bandwidth a broken cable cannot carry, so reject the flow set the
  // same way PktSim rejects invalid static paths at injection.  Inactive
  // slots are exempt: a campaign parks lost pairs there precisely because
  // their stale paths are no longer solvable.
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (!active.empty() && !active[f]) continue;
    for (const topo::ChannelId ch : flows[f].channels) {
      if (ch < 0 || ch >= topo_->num_channels())
        throw std::invalid_argument("FlowSim: flow " + std::to_string(f) +
                                    " names unknown channel " +
                                    std::to_string(ch));
      if (!topo_->channel(ch).enabled)
        throw std::invalid_argument("FlowSim: flow " + std::to_string(f) +
                                    " crosses disabled channel " +
                                    std::to_string(ch) +
                                    " (stale path on a degraded fabric?)");
    }
  }
}

std::vector<double> FlowSim::fair_rates(std::span<const Flow> flows,
                                        obs::FlowSolveTrace* trace) const {
  validate(flows);
  SolveScratch scratch;
  std::vector<double> rate(flows.size(), 0.0);
  scratch.active.assign(flows.size(), 1);
  solve(flows, scratch.active, rate, scratch,
        trace != nullptr ? &trace->solves.emplace_back() : nullptr);
  return rate;
}

void FlowSim::solve_active(std::span<const Flow> flows,
                           std::span<const char> active,
                           std::span<double> rate, SolveScratch& scratch,
                           obs::FlowSolveRecord* record) const {
  if (active.size() != flows.size() || rate.size() != flows.size())
    throw std::invalid_argument("FlowSim::solve_active: size mismatch");
  validate_active(flows, active);
  solve(flows, active, rate, scratch, record);
}

std::vector<std::vector<double>> FlowSim::solve_batch(
    std::span<const std::vector<Flow>> flow_sets, std::int32_t threads) const {
  std::vector<std::vector<double>> rates(flow_sets.size());
  exec::ThreadPool pool(threads);
  exec::ScratchArena<SolveScratch> arena(pool);
  pool.parallel_for(
      static_cast<std::int64_t>(flow_sets.size()),
      [&](std::int64_t s, std::int32_t worker) {
        SolveScratch& scratch = arena.local(worker);
        const std::vector<Flow>& flows = flow_sets[static_cast<std::size_t>(s)];
        validate(flows);
        auto& rate = rates[static_cast<std::size_t>(s)];
        rate.assign(flows.size(), 0.0);
        scratch.active.assign(flows.size(), 1);
        solve(flows, scratch.active, rate, scratch);
      });
  return rates;
}

std::vector<double> FlowSim::completion_times(
    std::span<const Flow> flows, obs::FlowSolveTrace* trace) const {
  validate(flows);
  std::vector<double> done(flows.size(), 0.0);
  std::vector<double> remaining_bytes(flows.size());
  std::vector<char> active(flows.size(), 0);
  std::size_t live = 0;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    remaining_bytes[f] = static_cast<double>(flows[f].bytes);
    if (flows[f].channels.empty() || flows[f].bytes <= 0) {
      // Self-sends (empty path, any byte count) and zero-byte flows move
      // no data over the network: they complete at injection, t = 0 --
      // the defined semantics matching PktSim's self-send handling.
      done[f] = 0.0;
      continue;
    }
    active[f] = 1;
    ++live;
  }

  double now = 0.0;
  SolveScratch scratch;
  std::vector<double> rate(flows.size(), 0.0);
  while (live > 0) {
    std::fill(rate.begin(), rate.end(), 0.0);
    solve(flows, active, rate, scratch,
          trace != nullptr ? &trace->solves.emplace_back() : nullptr);

    // Advance to the earliest completion under the current allocation.
    double dt = kInf;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (!active[f]) continue;
      if (rate[f] <= 0.0) continue;  // fully starved (cannot happen normally)
      dt = std::min(dt, remaining_bytes[f] / rate[f]);
    }
    if (dt == kInf)
      throw std::runtime_error("FlowSim: starved flows cannot complete");

    now += dt;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (!active[f]) continue;
      remaining_bytes[f] -= rate[f] * dt;
      if (remaining_bytes[f] <= 1e-6) {  // sub-byte residue: complete
        active[f] = 0;
        done[f] = now;
        --live;
      }
    }
  }
  return done;
}

std::vector<double> FlowSim::channel_utilisation(
    std::span<const Flow> flows, obs::FlowSolveTrace* trace) const {
  const std::vector<double> rate = fair_rates(flows, trace);
  std::vector<double> load(capacity_.size(), 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (flows[f].channels.empty()) continue;
    for (topo::ChannelId ch : flows[f].channels)
      load[static_cast<std::size_t>(ch)] += rate[f];
  }
  for (std::size_t ch = 0; ch < load.size(); ++ch) load[ch] /= capacity_[ch];
  return load;
}

}  // namespace hxsim::sim
