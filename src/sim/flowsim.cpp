#include "sim/flowsim.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "exec/exec.hpp"

namespace hxsim::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

FlowSim::FlowSim(const topo::Topology& topo, LinkModel link,
                 SolverEngine engine)
    : topo_(&topo),
      link_(link),
      capacity_(static_cast<std::size_t>(topo.num_channels()),
                link.bandwidth),
      engine_(engine) {}

void FlowSim::solve(std::span<const Flow> flows, std::span<const char> active,
                    std::span<double> rate, SolveScratch& scratch,
                    obs::FlowSolveRecord* record) const {
  if (engine_ == SolverEngine::kReference)
    solve_reference(flows, active, rate, scratch, record);
  else
    solve_indexed(flows, active, rate, scratch, record);
}

void FlowSim::set_capacity(topo::ChannelId ch, double bytes_per_s) {
  if (bytes_per_s <= 0.0)
    throw std::invalid_argument("FlowSim::set_capacity: non-positive");
  capacity_.at(static_cast<std::size_t>(ch)) = bytes_per_s;
}

void FlowSim::solve_reference(std::span<const Flow> flows,
                              std::span<const char> active,
                              std::span<double> rate, SolveScratch& scratch,
                              obs::FlowSolveRecord* record) const {
  // Progressive filling: all unfrozen flows share one common rate level
  // that rises until some channel saturates; flows crossing a saturated
  // channel freeze at the level, and the level keeps rising for the rest.
  //
  // Only channels actually crossed by an active flow matter, so the state
  // is kept compact (full-fabric channel vectors would dominate the cost
  // on large fat-trees).  The full-width local_of map persists in the
  // scratch and is un-dirtied via the used list on the way out, so reusing
  // a scratch keeps every solve allocation-free after warm-up.
  auto& local_of = scratch.local_of;
  auto& used = scratch.used;
  auto& frozen = scratch.frozen;
  if (local_of.size() != capacity_.size()) local_of.assign(capacity_.size(), -1);
  used.clear();
  frozen.assign(flows.size(), 0);

  std::size_t remaining = 0;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (!active[f]) continue;
    if (flows[f].channels.empty()) {
      rate[f] = kInf;  // self-send: no network resource consumed
      continue;
    }
    ++remaining;
    for (topo::ChannelId ch : flows[f].channels) {
      auto& idx = local_of[static_cast<std::size_t>(ch)];
      if (idx < 0) {
        idx = static_cast<std::int32_t>(used.size());
        used.push_back(ch);
      }
    }
  }

  const std::size_t nused = used.size();
  auto& frozen_load = scratch.frozen_load;
  auto& unfrozen_count = scratch.unfrozen_count;
  auto& saturated = scratch.saturated;
  frozen_load.assign(nused, 0.0);
  unfrozen_count.assign(nused, 0);
  saturated.assign(nused, 0);
  // Solver-metric recording is off the hot path: `ever_saturated` lives in
  // the scratch and is only (re)sized when this solve actually traces, so
  // traced solves are allocation-free after warm-up too.
  auto& ever_saturated = scratch.ever_saturated;
  if (record != nullptr) {
    record->active_flows = static_cast<std::int32_t>(remaining);
    ever_saturated.assign(nused, 0);
  }
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (!active[f] || flows[f].channels.empty()) continue;
    for (topo::ChannelId ch : flows[f].channels)
      ++unfrozen_count[static_cast<std::size_t>(
          local_of[static_cast<std::size_t>(ch)])];
  }
  // Worklist of channels still carrying unfrozen flows.  Every used
  // channel starts with unfrozen_count >= 1 (it got into `used` via an
  // active flow's path); the list is compacted after each level so the
  // late, sparse filling rounds scan only the few still-live channels
  // instead of all nused.  Dropped channels are never consulted again:
  // a flow is skipped once frozen, and an *unfrozen* flow's channels all
  // have unfrozen_count >= 1 by definition, so stale `saturated` flags on
  // compacted channels are unreachable.
  auto& worklist = scratch.worklist;
  worklist.clear();
  for (std::size_t c = 0; c < nused; ++c)
    worklist.push_back(static_cast<std::int32_t>(c));
  while (remaining > 0) {
    // The common level can rise to min over loaded channels of
    // (capacity - frozen_load) / unfrozen_count.
    double level = kInf;
    for (const std::int32_t ci : worklist) {
      const auto c = static_cast<std::size_t>(ci);
      if (unfrozen_count[c] == 0) continue;
      const double cap = std::max(
          0.0, capacity_[static_cast<std::size_t>(used[c])] - frozen_load[c]);
      level = std::min(level, cap / unfrozen_count[c]);
    }
    if (level == kInf) {
      // Defensive: no loaded channel left although flows remain unfrozen.
      // Mark the survivors explicitly so their rates are never stale
      // values from a previous solve of the same scratch/rate buffer.
      for (std::size_t f = 0; f < flows.size(); ++f) {
        if (!active[f] || frozen[f] || flows[f].channels.empty()) continue;
        frozen[f] = 1;
        rate[f] = 0.0;
      }
      remaining = 0;
      break;
    }

    // Freeze every unfrozen flow that crosses a (now) saturated channel.
    //
    // Epsilon note: `cap` is the same max(0, capacity - frozen_load)
    // clamp the level minimisation used, so cap / unfrozen_count >= 0
    // always.  Within one solve, frozen_load on a channel with unfrozen
    // flows left can never exceed capacity (each freeze adds exactly
    // `level` per flow, and level <= (capacity - frozen_load) /
    // unfrozen_count for every live channel by the minimisation above) --
    // the clamp guards only inert channels whose last unfrozen flow
    // already froze, where ulp-level overshoot of frozen_load is possible
    // but unobservable.  The (1 + 1e-12) relative slack therefore only
    // widens the equality test `cap / unfrozen_count == level` against
    // one ulp of division rounding; since level is the minimum of those
    // quotients, the slack can re-include the minimising channels but can
    // never freeze a flow at a "negative-capacity" channel or below 0:
    // rates out of this solver are always >= 0 (asserted by sim_test's
    // FlowSim.SaturationEpsilon* regression cases).
    for (const std::int32_t ci : worklist) {
      const auto c = static_cast<std::size_t>(ci);
      saturated[c] = 0;
      if (unfrozen_count[c] == 0) continue;
      const double cap = std::max(
          0.0, capacity_[static_cast<std::size_t>(used[c])] - frozen_load[c]);
      if (cap / unfrozen_count[c] <= level * (1.0 + 1e-12)) saturated[c] = 1;
    }
    bool froze_any = false;
    std::int32_t froze_count = 0;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (!active[f] || frozen[f] || flows[f].channels.empty()) continue;
      bool hit = false;
      for (topo::ChannelId ch : flows[f].channels) {
        if (saturated[static_cast<std::size_t>(
                local_of[static_cast<std::size_t>(ch)])]) {
          hit = true;
          break;
        }
      }
      if (!hit) continue;
      frozen[f] = 1;
      froze_any = true;
      ++froze_count;
      rate[f] = level;
      --remaining;
      for (topo::ChannelId ch : flows[f].channels) {
        const auto c = static_cast<std::size_t>(
            local_of[static_cast<std::size_t>(ch)]);
        --unfrozen_count[c];
        frozen_load[c] += level;
      }
    }
    if (!froze_any) {
      // Numerical guard: freeze everything at the current level.
      for (std::size_t f = 0; f < flows.size(); ++f) {
        if (!active[f] || frozen[f] || flows[f].channels.empty()) continue;
        frozen[f] = 1;
        ++froze_count;
        rate[f] = level;
      }
      remaining = 0;
    }
    if (record != nullptr) {
      record->levels.push_back(level);
      record->freezes_per_level.push_back(froze_count);
      // A channel saturates for the first time in a round where it still
      // carries unfrozen flows, i.e. while still on the worklist -- so
      // scanning the (pre-compaction) worklist sees every first
      // saturation exactly once.
      for (const std::int32_t ci : worklist) {
        const auto c = static_cast<std::size_t>(ci);
        if (saturated[c] && !ever_saturated[c]) {
          ever_saturated[c] = 1;
          record->saturated.push_back(used[c]);
        }
      }
    }
    worklist.erase(
        std::remove_if(worklist.begin(), worklist.end(),
                       [&](std::int32_t ci) {
                         return unfrozen_count[static_cast<std::size_t>(ci)] ==
                                0;
                       }),
        worklist.end());
  }

  // Un-dirty the persistent channel map for the next solve on this scratch.
  for (topo::ChannelId ch : used) local_of[static_cast<std::size_t>(ch)] = -1;
}

namespace {

/// Heap tags pack (local channel, version): the version makes stale
/// entries detectable after a lazy re-key, and the whole tag doubles as
/// the deterministic tie-break among equal quotients.
[[nodiscard]] constexpr std::uint64_t quotient_tag(std::int32_t channel,
                                                   std::uint32_t version) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(channel))
          << 32) |
         version;
}
[[nodiscard]] constexpr std::int32_t tag_channel(std::uint64_t tag) {
  return static_cast<std::int32_t>(tag >> 32);
}
[[nodiscard]] constexpr std::uint32_t tag_version(std::uint64_t tag) {
  return static_cast<std::uint32_t>(tag);
}

}  // namespace

void FlowSim::solve_indexed(std::span<const Flow> flows,
                            std::span<const char> active,
                            std::span<double> rate, SolveScratch& scratch,
                            obs::FlowSolveRecord* record) const {
  // Same progressive filling as solve_reference, restructured so a round
  // costs O(saturated-incident work) instead of O(flows x path):
  //
  //  - CSR incidence both ways (flow -> local channel in path order,
  //    channel -> flow in ascending flow order) is built once per solve;
  //  - every live channel keeps its current fill quotient
  //    (capacity - frozen_load) / unfrozen_count in a keyed lazy min-heap
  //    (FlatKeyHeap: the FlatEventHeap 4-ary layout, no clock).  A
  //    quotient change bumps the channel's version and pushes a fresh
  //    entry; entries whose tag version is stale are discarded at pop, so
  //    every live entry's key is the channel's *current* quotient;
  //  - a round pops the heap minimum (the reference's level -- min over
  //    live channels of the identical division), then keeps popping live
  //    entries while key <= level * (1 + 1e-12), which is exactly the set
  //    the reference's saturation rescan marks;
  //  - only flows incident to those newly saturated channels are visited.
  //
  // Bit-identity with the reference is by construction, not accident:
  // quotients are computed by the same expression on the same operands,
  // min over doubles is order-independent, the saturation test compares
  // the same two values, and the freeze loop visits hit flows in
  // ascending flow index (the candidate list is sorted) walking each
  // path in order -- so frozen_load accumulates through the identical
  // sequence of additions and every level/rate/record field matches the
  // reference bit for bit.  tests/flowsim_golden_test.cpp and the
  // flowsim_engine_identity fuzz oracle hold both engines to that.
  auto& local_of = scratch.local_of;
  auto& used = scratch.used;
  auto& frozen = scratch.frozen;
  if (local_of.size() != capacity_.size()) local_of.assign(capacity_.size(), -1);
  used.clear();
  frozen.assign(flows.size(), 0);

  std::size_t remaining = 0;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (!active[f]) continue;
    if (flows[f].channels.empty()) {
      rate[f] = kInf;  // self-send: no network resource consumed
      continue;
    }
    ++remaining;
    for (topo::ChannelId ch : flows[f].channels) {
      auto& idx = local_of[static_cast<std::size_t>(ch)];
      if (idx < 0) {
        idx = static_cast<std::int32_t>(used.size());
        used.push_back(ch);
      }
    }
  }

  const std::size_t nused = used.size();
  auto& frozen_load = scratch.frozen_load;
  auto& unfrozen_count = scratch.unfrozen_count;
  frozen_load.assign(nused, 0.0);
  unfrozen_count.assign(nused, 0);
  auto& ever_saturated = scratch.ever_saturated;
  if (record != nullptr) {
    record->active_flows = static_cast<std::int32_t>(remaining);
    ever_saturated.assign(nused, 0);
  }

  // CSR incidence.  flow_ch carries local channel indices in path order
  // (multiplicity preserved -- the reference counts a repeated channel
  // once per occurrence); chan_flow is filled by an ascending flow scan,
  // so each channel's flow list comes out sorted.
  auto& flow_off = scratch.flow_off;
  auto& flow_ch = scratch.flow_ch;
  auto& chan_off = scratch.chan_off;
  auto& chan_flow = scratch.chan_flow;
  auto& chan_cursor = scratch.chan_cursor;
  flow_off.assign(flows.size() + 1, 0);
  std::size_t total_hops = 0;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (active[f] && !flows[f].channels.empty())
      total_hops += flows[f].channels.size();
    flow_off[f + 1] = static_cast<std::int32_t>(total_hops);
  }
  flow_ch.resize(total_hops);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (!active[f] || flows[f].channels.empty()) continue;
    std::int32_t* out = flow_ch.data() + flow_off[f];
    for (topo::ChannelId ch : flows[f].channels) {
      const auto c = local_of[static_cast<std::size_t>(ch)];
      ++unfrozen_count[static_cast<std::size_t>(c)];
      *out++ = c;
    }
  }
  chan_off.assign(nused + 1, 0);
  for (const std::int32_t c : flow_ch) ++chan_off[static_cast<std::size_t>(c) + 1];
  for (std::size_t c = 0; c < nused; ++c) chan_off[c + 1] += chan_off[c];
  chan_flow.resize(total_hops);
  chan_cursor.assign(chan_off.begin(), chan_off.end());
  for (std::size_t f = 0; f < flows.size(); ++f) {
    for (std::int32_t i = flow_off[f]; i < flow_off[f + 1]; ++i)
      chan_flow[static_cast<std::size_t>(
          chan_cursor[static_cast<std::size_t>(flow_ch[static_cast<std::size_t>(
              i)])]++)] = static_cast<std::int32_t>(f);
  }

  // Seed the quotient heap: one live entry per used channel.  The key is
  // the reference's exact level expression on the same operands.
  auto& version = scratch.version;
  auto& quotients = scratch.quotients;
  version.assign(nused, 0);
  quotients.clear();
  const auto quotient_of = [&](std::size_t c) {
    const double cap = std::max(
        0.0, capacity_[static_cast<std::size_t>(used[c])] - frozen_load[c]);
    return cap / unfrozen_count[c];
  };
  for (std::size_t c = 0; c < nused; ++c)
    quotients.push(quotient_of(c), quotient_tag(static_cast<std::int32_t>(c), 0));

  auto& dirty = scratch.dirty;
  auto& dirty_mark = scratch.dirty_mark;
  auto& sat_chans = scratch.sat_chans;
  auto& candidates = scratch.candidates;
  auto& candidate_mark = scratch.candidate_mark;
  dirty.clear();
  dirty_mark.assign(nused, 0);
  candidate_mark.assign(flows.size(), 0);

  while (remaining > 0) {
    // The common level: the minimum current quotient.  Stale heap entries
    // (version mismatch) are popped and discarded until a live one tops.
    double level = kInf;
    while (!quotients.empty()) {
      const FlatKeyHeap::Entry top = quotients.top();
      const auto c = static_cast<std::size_t>(tag_channel(top.tag));
      if (tag_version(top.tag) != version[c]) {
        (void)quotients.pop();
        continue;
      }
      level = top.key;
      break;
    }
    if (level == kInf) {
      // Defensive: no loaded channel left although flows remain unfrozen
      // (same branch, same ascending sweep as the reference).
      for (std::size_t f = 0; f < flows.size(); ++f) {
        if (!active[f] || frozen[f] || flows[f].channels.empty()) continue;
        frozen[f] = 1;
        rate[f] = 0.0;
      }
      remaining = 0;
      break;
    }

    // Saturated set: every live channel whose current quotient is within
    // the reference's (1 + 1e-12) relative slack of the level.  Live keys
    // are current quotients, so popping while key <= threshold collects
    // exactly the channels the reference's rescan marks.  A saturated
    // channel's unfrozen flows all freeze this round, so it leaves the
    // live set: retire its version here, no re-push later.
    const double threshold = level * (1.0 + 1e-12);
    sat_chans.clear();
    while (!quotients.empty() && quotients.top().key <= threshold) {
      const FlatKeyHeap::Entry e = quotients.pop();
      const auto c = static_cast<std::size_t>(tag_channel(e.tag));
      if (tag_version(e.tag) != version[c]) continue;
      ++version[c];
      sat_chans.push_back(static_cast<std::int32_t>(c));
    }
    // Ascending local index = the reference's worklist order (its
    // compaction preserves the initial ascending layout), so the record's
    // first-saturation stream matches.
    std::sort(sat_chans.begin(), sat_chans.end());

    // Flows incident to the newly saturated channels -- the only flows
    // this round can freeze.  Sorted ascending so freezes (and the
    // frozen_load additions below) replay the reference's flow order.
    candidates.clear();
    for (const std::int32_t ci : sat_chans) {
      const auto c = static_cast<std::size_t>(ci);
      for (std::int32_t i = chan_off[c]; i < chan_off[c + 1]; ++i) {
        const std::int32_t f = chan_flow[static_cast<std::size_t>(i)];
        if (frozen[static_cast<std::size_t>(f)] ||
            candidate_mark[static_cast<std::size_t>(f)])
          continue;
        candidate_mark[static_cast<std::size_t>(f)] = 1;
        candidates.push_back(f);
      }
    }
    std::sort(candidates.begin(), candidates.end());

    std::int32_t froze_count = 0;
    for (const std::int32_t fi : candidates) {
      const auto f = static_cast<std::size_t>(fi);
      candidate_mark[f] = 0;
      frozen[f] = 1;
      ++froze_count;
      rate[f] = level;
      --remaining;
      for (std::int32_t i = flow_off[f]; i < flow_off[f + 1]; ++i) {
        const auto c =
            static_cast<std::size_t>(flow_ch[static_cast<std::size_t>(i)]);
        --unfrozen_count[c];
        frozen_load[c] += level;
        if (!dirty_mark[c]) {
          dirty_mark[c] = 1;
          dirty.push_back(static_cast<std::int32_t>(c));
        }
      }
    }
    if (froze_count == 0) {
      // Numerical guard: freeze everything at the current level (the
      // reference's ascending sweep; unreachable in practice -- the
      // minimising channel always saturates).
      for (std::size_t f = 0; f < flows.size(); ++f) {
        if (!active[f] || frozen[f] || flows[f].channels.empty()) continue;
        frozen[f] = 1;
        ++froze_count;
        rate[f] = level;
      }
      remaining = 0;
    }
    if (record != nullptr) {
      record->levels.push_back(level);
      record->freezes_per_level.push_back(froze_count);
      for (const std::int32_t ci : sat_chans) {
        const auto c = static_cast<std::size_t>(ci);
        if (!ever_saturated[c]) {
          ever_saturated[c] = 1;
          record->saturated.push_back(used[c]);
        }
      }
    }
    // Re-key the channels the freezes touched: bump the version (stale
    // entries die lazily) and push the fresh quotient while the channel
    // still carries unfrozen flows.
    for (const std::int32_t ci : dirty) {
      const auto c = static_cast<std::size_t>(ci);
      dirty_mark[c] = 0;
      ++version[c];
      if (unfrozen_count[c] > 0)
        quotients.push(quotient_of(c),
                       quotient_tag(ci, version[c]));
    }
    dirty.clear();
  }

  // Un-dirty the persistent channel map for the next solve on this scratch.
  for (topo::ChannelId ch : used) local_of[static_cast<std::size_t>(ch)] = -1;
}

void FlowSim::validate(std::span<const Flow> flows) const {
  validate_active(flows, {});
}

void FlowSim::validate_active(std::span<const Flow> flows,
                              std::span<const char> active) const {
  // Degraded-fabric guard: a flow routed before fault injection can carry a
  // stale path over a now-disabled cable.  Solving over it would silently
  // grant bandwidth a broken cable cannot carry, so reject the flow set the
  // same way PktSim rejects invalid static paths at injection.  Inactive
  // slots are exempt: a campaign parks lost pairs there precisely because
  // their stale paths are no longer solvable.
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (!active.empty() && !active[f]) continue;
    for (const topo::ChannelId ch : flows[f].channels) {
      if (ch < 0 || ch >= topo_->num_channels())
        throw std::invalid_argument("FlowSim: flow " + std::to_string(f) +
                                    " names unknown channel " +
                                    std::to_string(ch));
      if (!topo_->channel(ch).enabled)
        throw std::invalid_argument("FlowSim: flow " + std::to_string(f) +
                                    " crosses disabled channel " +
                                    std::to_string(ch) +
                                    " (stale path on a degraded fabric?)");
    }
  }
}

std::vector<double> FlowSim::fair_rates(std::span<const Flow> flows,
                                        obs::FlowSolveTrace* trace) const {
  validate(flows);
  // Solve on the engine-owned warm scratch (not a fresh one per call), so
  // sweep loops that call fair_rates in a loop allocate only the returned
  // rate vector once the scratch is sized.
  std::vector<double> rate(flows.size(), 0.0);
  scratch_.active.assign(flows.size(), 1);
  solve(flows, scratch_.active, rate, scratch_,
        trace != nullptr ? &trace->solves.emplace_back() : nullptr);
  return rate;
}

void FlowSim::solve_active(std::span<const Flow> flows,
                           std::span<const char> active,
                           std::span<double> rate, SolveScratch& scratch,
                           obs::FlowSolveRecord* record) const {
  if (active.size() != flows.size() || rate.size() != flows.size())
    throw std::invalid_argument("FlowSim::solve_active: size mismatch");
  validate_active(flows, active);
  solve(flows, active, rate, scratch, record);
}

std::vector<std::vector<double>> FlowSim::solve_batch(
    std::span<const std::vector<Flow>> flow_sets, std::int32_t threads) const {
  std::vector<std::vector<double>> rates(flow_sets.size());
  exec::ThreadPool pool(threads);
  exec::ScratchArena<SolveScratch> arena(pool);
  pool.parallel_for(
      static_cast<std::int64_t>(flow_sets.size()),
      [&](std::int64_t s, std::int32_t worker) {
        SolveScratch& scratch = arena.local(worker);
        const std::vector<Flow>& flows = flow_sets[static_cast<std::size_t>(s)];
        validate(flows);
        auto& rate = rates[static_cast<std::size_t>(s)];
        rate.assign(flows.size(), 0.0);
        scratch.active.assign(flows.size(), 1);
        solve(flows, scratch.active, rate, scratch);
      });
  return rates;
}

std::vector<double> FlowSim::completion_times(
    std::span<const Flow> flows, obs::FlowSolveTrace* trace) const {
  validate(flows);
  std::vector<double> done(flows.size(), 0.0);
  std::vector<double> remaining_bytes(flows.size());
  std::vector<char> active(flows.size(), 0);
  std::size_t live = 0;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    remaining_bytes[f] = static_cast<double>(flows[f].bytes);
    if (flows[f].channels.empty() || flows[f].bytes <= 0) {
      // Self-sends (empty path, any byte count) and zero-byte flows move
      // no data over the network: they complete at injection, t = 0 --
      // the defined semantics matching PktSim's self-send handling.
      done[f] = 0.0;
      continue;
    }
    active[f] = 1;
    ++live;
  }

  double now = 0.0;
  std::vector<double> rate(flows.size(), 0.0);
  while (live > 0) {
    std::fill(rate.begin(), rate.end(), 0.0);
    // Reallocation rounds reuse the engine-owned warm scratch: the flow
    // set's incidence footprint is sized on round one, later rounds solve
    // allocation-free.
    solve(flows, active, rate, scratch_,
          trace != nullptr ? &trace->solves.emplace_back() : nullptr);

    // Advance to the earliest completion under the current allocation.
    double dt = kInf;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (!active[f]) continue;
      if (rate[f] <= 0.0) continue;  // fully starved (cannot happen normally)
      dt = std::min(dt, remaining_bytes[f] / rate[f]);
    }
    if (dt == kInf)
      throw std::runtime_error("FlowSim: starved flows cannot complete");

    now += dt;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (!active[f]) continue;
      remaining_bytes[f] -= rate[f] * dt;
      if (remaining_bytes[f] <= 1e-6) {  // sub-byte residue: complete
        active[f] = 0;
        done[f] = now;
        --live;
      }
    }
  }
  return done;
}

std::vector<double> FlowSim::channel_utilisation(
    std::span<const Flow> flows, obs::FlowSolveTrace* trace) const {
  const std::vector<double> rate = fair_rates(flows, trace);
  std::vector<double> load(capacity_.size(), 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (flows[f].channels.empty()) continue;
    for (topo::ChannelId ch : flows[f].channels)
      load[static_cast<std::size_t>(ch)] += rate[f];
  }
  for (std::size_t ch = 0; ch < load.size(); ++ch) load[ch] /= capacity_[ch];
  return load;
}

}  // namespace hxsim::sim
