#include "sim/online.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace hxsim::sim {

std::vector<PktTimedFault> timed_faults(const topo::Topology& topo,
                                        const topo::FaultSchedule& schedule) {
  std::vector<PktTimedFault> feed;
  for (std::int32_t s = 0; s < schedule.num_stages(); ++s) {
    const topo::FaultStage& stage = schedule.stage(s);
    if (stage.at_time < 0.0) continue;  // untimed: between-runs damage
    PktTimedFault fault;
    fault.time = stage.at_time;
    for (const topo::FaultEvent& ev : stage.events)
      for (const topo::ChannelId ch : ev.cables) {
        fault.channels.push_back(ch);
        fault.channels.push_back(topo.channel(ch).reverse);
      }
    if (!fault.channels.empty()) feed.push_back(std::move(fault));
  }
  return feed;
}

namespace {

[[noreturn]] void bad(const std::string& why) {
  throw std::invalid_argument("PktOnlineConfig: " + why);
}

}  // namespace

void validate_online(const topo::Topology& topo, const PktOnlineConfig& online,
                     std::int32_t num_vls) {
  const auto nch = static_cast<std::int64_t>(topo.num_channels());
  for (const PktTimedFault& f : online.faults) {
    if (!std::isfinite(f.time) || f.time < 0.0)
      bad("fault time must be finite and non-negative");
    for (const topo::ChannelId ch : f.channels)
      if (ch < 0 || ch >= nch) bad("fault channel id out of range");
  }
  if (!online.epochs.empty()) {
    if (online.lids == nullptr) bad("epochs require a LidSpace");
    const auto nsw = static_cast<std::size_t>(topo.num_switches());
    for (std::size_t e = 0; e < online.epochs.size(); ++e) {
      const PktRoutingEpoch& ep = online.epochs[e];
      if (ep.tables == nullptr)
        bad("epoch " + std::to_string(e) + " has no forwarding tables");
      if (e == 0 && !ep.install_time.empty())
        bad("epoch 0 must be installed from t = 0 (empty install_time)");
      if (!ep.install_time.empty() && ep.install_time.size() != nsw)
        bad("epoch " + std::to_string(e) +
            " install_time must be empty or one entry per switch");
      for (const double t : ep.install_time)
        if (std::isnan(t)) bad("epoch install time is NaN");
      if (ep.vls != nullptr && ep.vls->max_vl() >= num_vls)
        bad("epoch " + std::to_string(e) +
            " VL map exceeds the configured lane count");
    }
  }
  if (online.ttl_hops < 1) bad("ttl_hops must be >= 1");
  if (online.retry.enabled) {
    const PktRetryConfig& r = online.retry;
    if (!std::isfinite(r.timeout) || r.timeout <= 0.0)
      bad("retry timeout must be finite and positive");
    if (!std::isfinite(r.backoff_base) || r.backoff_base <= 0.0)
      bad("retry backoff_base must be finite and positive");
    if (!std::isfinite(r.jitter) || r.jitter < 0.0)
      bad("retry jitter must be finite and non-negative");
    if (r.max_retries < 0) bad("retry max_retries must be >= 0");
  }
}

}  // namespace hxsim::sim
