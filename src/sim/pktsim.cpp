#include "sim/pktsim.hpp"

#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>
#include <string>

namespace hxsim::sim {

namespace {

struct Packet {
  std::int32_t msg = -1;
  std::int32_t size = 0;  // bytes in this segment
  std::int32_t hop = 0;   // index into the message path (static routing)
  std::int8_t vl = 0;
  bool adaptive = false;
  /// Channel whose downstream buffer the packet currently occupies (credit
  /// held), and the VL it was crossed on.
  topo::ChannelId held = topo::kInvalidChannel;
  std::int8_t held_vl = 0;
  AdaptiveState astate;
};

struct ChannelState {
  bool busy = false;
  std::int8_t busy_vl = 0;                      // VL of the in-flight packet
  std::int32_t rr_next = 0;                     // VL arbitration pointer
  std::vector<std::deque<std::int32_t>> queue;  // per VL: waiting packets
  std::vector<std::int32_t> credits;            // per VL: downstream slots
  bool downstream_is_switch = false;

  /// Congestion score of one VL: its waiting queue plus the in-flight
  /// packet *iff* that packet is serialising on this VL.  Charging `busy`
  /// to every VL (the old behaviour) double-penalised channels in
  /// choose_adaptive regardless of which lane actually held the wire.
  [[nodiscard]] std::int32_t occupancy(std::int8_t vl) const {
    return static_cast<std::int32_t>(queue[static_cast<std::size_t>(vl)]
                                         .size()) +
           ((busy && busy_vl == vl) ? 1 : 0);
  }
};

class Engine {
 public:
  Engine(const topo::Topology& topo, const PktSimConfig& config,
         std::span<const PktMessage> messages)
      : topo_(topo), config_(config), messages_(messages),
        trace_(config.trace) {
    channels_.resize(static_cast<std::size_t>(topo.num_channels()));
    for (topo::ChannelId ch = 0; ch < topo.num_channels(); ++ch) {
      ChannelState& st = channels_[static_cast<std::size_t>(ch)];
      st.queue.resize(static_cast<std::size_t>(config.num_vls));
      st.downstream_is_switch = topo.channel(ch).dst.is_switch();
      st.credits.assign(static_cast<std::size_t>(config.num_vls),
                        st.downstream_is_switch ? config.vc_buffer_packets
                                                : 0 /* unused */);
    }
    if (trace_ != nullptr)
      trace_->reset(topo.num_channels(), config.num_vls);

    result_.completion.assign(messages.size(),
                              std::numeric_limits<double>::quiet_NaN());
    remaining_packets_.assign(messages.size(), 0);

    for (std::size_t m = 0; m < messages.size(); ++m) {
      const PktMessage& msg = messages[m];
      if (msg.vl < 0 || msg.vl >= config.num_vls)
        throw std::invalid_argument("PktSim: message VL out of range");
      if (msg.src < 0 || msg.src >= topo.num_terminals() || msg.dst < 0 ||
          msg.dst >= topo.num_terminals())
        fail(m, "src/dst is not a terminal of this topology");
      const bool adaptive = msg.path.empty() && msg.src != msg.dst;
      if (adaptive && config_.adaptive == nullptr)
        throw std::invalid_argument(
            "PktSim: path-less message without an adaptive router");
      if (msg.path.empty() && msg.src == msg.dst) {
        result_.completion[m] = msg.inject_time;  // self-send
        continue;
      }
      if (!msg.path.empty()) validate_path(m, msg);
      const std::int64_t segments =
          std::max<std::int64_t>(1, (msg.bytes + config.link.mtu - 1) /
                                        config.link.mtu);
      remaining_packets_[m] = segments;
      result_.packets_total += segments;
      events_.schedule(msg.inject_time, [this, m] { inject(m); });
    }
  }

  PktSim::Result run(std::size_t max_events) {
    events_.run(max_events);
    result_.end_time = events_.now();
    // Pending events mean the run was truncated by max_events -- progress
    // was still possible, so it is NOT a deadlock; a drained queue with
    // undelivered packets is one.
    result_.truncated = !events_.empty();
    result_.deadlock =
        events_.empty() && result_.packets_delivered < result_.packets_total;
    if (result_.deadlock) result_.deadlock_report = post_mortem();
    if (trace_ != nullptr) {
      trace_->finalize(result_.end_time);
      for (topo::ChannelId ch = 0; ch < topo_.num_channels(); ++ch) {
        const ChannelState& st = channels_[static_cast<std::size_t>(ch)];
        if (!st.downstream_is_switch) continue;
        for (std::int8_t vl = 0; vl < config_.num_vls; ++vl)
          trace_->set_final_credits(ch, vl,
                                    st.credits[static_cast<std::size_t>(vl)]);
      }
    }
    return std::move(result_);
  }

 private:
  [[noreturn]] static void fail(std::size_t m, const char* why) {
    throw std::invalid_argument("PktSim: message " + std::to_string(m) + ": " +
                                why);
  }

  /// Static paths are walked blindly by arrive() (`++p.hop`), so anything
  /// not ending in the destination's switch->terminal channel used to
  /// index past the end of the path.  Reject malformed paths up front.
  void validate_path(std::size_t m, const PktMessage& msg) const {
    for (const topo::ChannelId ch : msg.path)
      if (ch < 0 || ch >= topo_.num_channels())
        fail(m, "path channel id out of range");
    if (msg.path.front() != topo_.terminal_up(msg.src))
      fail(m, "path must start with the source terminal's up channel");
    for (std::size_t i = 0; i + 1 < msg.path.size(); ++i) {
      const topo::Channel& c = topo_.channel(msg.path[i]);
      if (!c.dst.is_switch())
        fail(m, "path reaches a terminal before its final channel");
      if (topo_.channel(msg.path[i + 1]).src != c.dst)
        fail(m, "path is disconnected (consecutive channels do not meet)");
    }
    if (msg.path.back() != topo_.terminal_down(msg.dst))
      fail(m, "path must end with the destination terminal's down channel");
  }

  /// Re-derives the credit-stall state of (ch, vl) after any queue or
  /// credit mutation; no-op unless tracing.
  void sync_stall(topo::ChannelId ch, std::int8_t vl) {
    if (trace_ == nullptr) return;
    const ChannelState& st = channels_[static_cast<std::size_t>(ch)];
    const bool blocked =
        st.downstream_is_switch &&
        st.credits[static_cast<std::size_t>(vl)] <= 0 &&
        !st.queue[static_cast<std::size_t>(vl)].empty();
    trace_->on_blocked(ch, vl, blocked, events_.now());
  }

  /// Runs after deadlock detection: every queued packet becomes a wait
  /// edge (holds its upstream buffer, wants a credit of the channel it is
  /// queued on), and the cycle is extracted from the resource graph.
  obs::DeadlockReport post_mortem() const {
    std::vector<obs::CreditWaitEdge> blocked;
    for (topo::ChannelId ch = 0; ch < topo_.num_channels(); ++ch) {
      const ChannelState& st = channels_[static_cast<std::size_t>(ch)];
      for (std::int8_t vl = 0; vl < config_.num_vls; ++vl) {
        for (const std::int32_t pkt :
             st.queue[static_cast<std::size_t>(vl)]) {
          const Packet& p = packets_[static_cast<std::size_t>(pkt)];
          blocked.push_back(obs::CreditWaitEdge{pkt, p.msg, p.held, p.held_vl,
                                                ch, vl});
        }
      }
    }
    return obs::build_deadlock_report(std::move(blocked), config_.num_vls);
  }

  void inject(std::size_t m) {
    const PktMessage& msg = messages_[m];
    const bool adaptive = msg.path.empty();
    const topo::ChannelId first =
        adaptive ? topo_.terminal_up(msg.src) : msg.path[0];
    std::int64_t left = std::max<std::int64_t>(msg.bytes, 1);
    while (left > 0) {
      const auto seg = static_cast<std::int32_t>(
          std::min<std::int64_t>(left, config_.link.mtu));
      left -= seg;
      const auto pkt = static_cast<std::int32_t>(packets_.size());
      Packet p;
      p.msg = static_cast<std::int32_t>(m);
      p.size = seg;
      p.vl = adaptive ? 0 : msg.vl;
      p.adaptive = adaptive;
      packets_.push_back(p);
      enqueue(first, pkt);
    }
    try_start(first);
  }

  void enqueue(topo::ChannelId ch, std::int32_t pkt) {
    const std::int8_t vl = packets_[static_cast<std::size_t>(pkt)].vl;
    auto& q =
        channels_[static_cast<std::size_t>(ch)].queue[static_cast<std::size_t>(
            vl)];
    q.push_back(pkt);
    if (trace_ != nullptr) {
      trace_->on_queue_depth(ch, vl, static_cast<std::int32_t>(q.size()),
                             events_.now());
      sync_stall(ch, vl);
    }
  }

  /// Round-robin arbitration: start the next eligible packet on `ch`.
  void try_start(topo::ChannelId ch) {
    ChannelState& st = channels_[static_cast<std::size_t>(ch)];
    if (st.busy) return;
    const std::int32_t vls = config_.num_vls;
    for (std::int32_t i = 0; i < vls; ++i) {
      const std::int32_t vl = (st.rr_next + i) % vls;
      auto& q = st.queue[static_cast<std::size_t>(vl)];
      if (q.empty()) continue;
      if (st.downstream_is_switch &&
          st.credits[static_cast<std::size_t>(vl)] <= 0) {
        if (trace_ != nullptr)
          trace_->on_arb_skip(ch, static_cast<std::int8_t>(vl));
        continue;  // head blocked on credits; try another VL
      }
      const std::int32_t pkt = q.front();
      q.pop_front();
      if (trace_ != nullptr)
        trace_->on_queue_depth(ch, static_cast<std::int8_t>(vl),
                               static_cast<std::int32_t>(q.size()),
                               events_.now());
      st.rr_next = (vl + 1) % vls;
      start_crossing(ch, pkt);
      return;
    }
  }

  void start_crossing(topo::ChannelId ch, std::int32_t pkt) {
    ChannelState& st = channels_[static_cast<std::size_t>(ch)];
    Packet& p = packets_[static_cast<std::size_t>(pkt)];

    if (st.downstream_is_switch) {
      --st.credits[static_cast<std::size_t>(p.vl)];
      sync_stall(ch, p.vl);
    }
    if (trace_ != nullptr) trace_->on_cross(ch, p.vl, p.size);

    // Starting to cross vacates the upstream input buffer: return the
    // held credit and wake that channel's arbiter.
    if (p.held != topo::kInvalidChannel) {
      ChannelState& hst = channels_[static_cast<std::size_t>(p.held)];
      if (hst.downstream_is_switch) {
        ++hst.credits[static_cast<std::size_t>(p.held_vl)];
        sync_stall(p.held, p.held_vl);
        try_start(p.held);
      }
    }
    p.held = ch;
    p.held_vl = p.vl;

    st.busy = true;
    st.busy_vl = p.vl;
    const double ser = serialization_time(config_.link, p.size);
    events_.schedule_in(ser, [this, ch] {
      channels_[static_cast<std::size_t>(ch)].busy = false;
      try_start(ch);
    });
    events_.schedule_in(ser + config_.link.hop_latency,
                        [this, ch, pkt] { arrive(ch, pkt); });
  }

  /// Picks the adaptive candidate with the lowest congestion score:
  /// output occupancy on the packet's next VL, plus the deroute penalty
  /// for non-minimal hops, plus a large penalty when no credit is
  /// immediately available.
  topo::ChannelId choose_adaptive(topo::SwitchId sw, Packet& p) {
    const PktMessage& msg = messages_[static_cast<std::size_t>(p.msg)];
    scratch_candidates_.clear();
    config_.adaptive->candidates(sw, msg.dst, p.astate, scratch_candidates_);
    if (scratch_candidates_.empty())
      throw std::runtime_error("PktSim: adaptive router returned no route");

    const auto vl = static_cast<std::int8_t>(std::min<std::int32_t>(
        p.astate.hops_taken, config_.num_vls - 1));
    const RouteCandidate* best = nullptr;
    std::int64_t best_score = std::numeric_limits<std::int64_t>::max();
    for (const RouteCandidate& cand : scratch_candidates_) {
      const ChannelState& st =
          channels_[static_cast<std::size_t>(cand.channel)];
      std::int64_t score = st.occupancy(vl);
      if (!cand.minimal) score += config_.deroute_penalty;
      if (st.downstream_is_switch &&
          st.credits[static_cast<std::size_t>(vl)] <= 0)
        score += 1000;
      if (score < best_score ||
          (score == best_score && best && cand.channel < best->channel)) {
        best_score = score;
        best = &cand;
      }
    }
    p.vl = vl;
    config_.adaptive->on_hop(*best, p.astate);
    return best->channel;
  }

  void arrive(topo::ChannelId ch, std::int32_t pkt) {
    Packet& p = packets_[static_cast<std::size_t>(pkt)];
    const PktMessage& msg = messages_[static_cast<std::size_t>(p.msg)];
    const topo::Channel& c = topo_.channel(ch);

    if (c.dst.is_terminal()) {
      ++result_.packets_delivered;
      auto& left = remaining_packets_[static_cast<std::size_t>(p.msg)];
      if (--left == 0)
        result_.completion[static_cast<std::size_t>(p.msg)] = events_.now();
      return;
    }

    const topo::SwitchId sw = c.dst.index;
    topo::ChannelId next;
    if (p.adaptive) {
      if (sw == topo_.attach_switch(msg.dst)) {
        next = topo_.terminal_down(msg.dst);
      } else {
        next = choose_adaptive(sw, p);
      }
    } else {
      ++p.hop;
      next = msg.path[static_cast<std::size_t>(p.hop)];
    }
    enqueue(next, pkt);
    try_start(next);
  }

  const topo::Topology& topo_;
  PktSimConfig config_;
  std::span<const PktMessage> messages_;
  EventQueue events_;
  std::vector<Packet> packets_;
  std::vector<ChannelState> channels_;
  std::vector<std::int64_t> remaining_packets_;
  std::vector<RouteCandidate> scratch_candidates_;
  obs::PktTrace* trace_ = nullptr;  // nullptr: tracing off (the default)
  PktSim::Result result_;
};

}  // namespace

PktSim::PktSim(const topo::Topology& topo, PktSimConfig config)
    : topo_(&topo), config_(config) {
  if (config.num_vls < 1 || config.num_vls > 15)
    throw std::invalid_argument("PktSim: num_vls out of range");
  if (config.vc_buffer_packets < 1)
    throw std::invalid_argument("PktSim: need at least one buffer slot");
  if (config.adaptive != nullptr &&
      config.adaptive->max_hops() > config.num_vls)
    throw std::invalid_argument(
        "PktSim: adaptive max_hops exceeds the VL budget (escalation "
        "would not be deadlock-free)");
}

PktSim::Result PktSim::run(std::span<const PktMessage> messages,
                           std::size_t max_events) {
  Engine engine(*topo_, config_, messages);
  return engine.run(max_events);
}

}  // namespace hxsim::sim
