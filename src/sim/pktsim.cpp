#include "sim/pktsim.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>
#include <string>

#include "exec/exec.hpp"

namespace hxsim::sim {

namespace detail {

/// Typed POD event record.  `a` is the message index for
/// kInject/kTimeout/kRetry, the channel for kXmitDone/kArrive, and the
/// fault-feed index for kFault; `b` is the packet-pool index for kArrive.
/// kind and a share one word (kind in the low 3 bits) so a full heap entry
/// {when, seq, Ev} packs into 24 bytes -- the heap shuffles entries on
/// every sift, so entry size is directly memory traffic.
enum class EvKind : std::int8_t {
  kInject,
  kXmitDone,
  kArrive,
  kFault,    // online: a fault feed entry fires
  kTimeout,  // online: a message attempt's end-host timer expires
  kRetry,    // online: backoff elapsed, retransmit the remainder
};
struct Ev {
  std::uint32_t kind_a;  // a << 3 | kind
  std::int32_t b;

  static Ev make(EvKind kind, std::int32_t a, std::int32_t b) noexcept {
    return Ev{(static_cast<std::uint32_t>(a) << 3) |
                  static_cast<std::uint32_t>(kind),
              b};
  }
  [[nodiscard]] EvKind kind() const noexcept {
    return static_cast<EvKind>(kind_a & 7u);
  }
  [[nodiscard]] std::int32_t a() const noexcept {
    return static_cast<std::int32_t>(kind_a >> 3);
  }
};

/// One pooled packet.  `next` threads the intrusive per-channel x VL FIFO
/// the packet currently waits in (-1: tail / not queued).
struct PktNode {
  std::int32_t msg;
  std::int32_t size;  // bytes in this segment
  std::int32_t hop;   // path index (static) / switch visits (table: TTL)
  std::int32_t next;
  std::int32_t attempt;  // transmission attempt the segment belongs to
  topo::ChannelId held;  // channel whose downstream buffer the packet holds
  std::int8_t held_vl;
  std::int8_t vl;
  bool adaptive;
  bool table;  // forwarded hop-by-hop through the online epochs' LFTs
  AdaptiveState astate;
};

/// One VL's intrusive FIFO: head/tail pool indices (-1: empty) plus the
/// depth.  The three fields are always touched together, so they share a
/// record (one cache line per queue op) instead of three parallel arrays.
struct VlFifo {
  std::int32_t head;
  std::int32_t tail;
  std::int32_t len;
};

/// Engine scratch, reused across runs: the event heap and every flat array
/// keep their capacity, so a warm run() allocates nothing per event (and
/// only the returned Result per run).  Channel state is split SoA-style:
/// per-channel arrays (busy/rr/q_mask) and per-channel x VL arrays
/// (credits, FIFOs) are contiguous, so try_start/arrive touch a handful of
/// cache lines instead of a vector-of-deques forest.
struct PktScratch {
  FlatEventHeap<Ev> events;
  std::vector<PktNode> pool;  // pre-sized: segments are countable up front

  // Per channel.
  std::vector<std::uint8_t> busy;
  std::vector<std::int8_t> busy_vl;  // VL of the in-flight packet
  std::vector<std::int32_t> rr_next;  // VL arbitration pointer
  std::vector<std::uint8_t> down_switch;
  /// Bit vl set: that VL's FIFO is non-empty.  try_start's round-robin
  /// scan walks only set bits, so an idle channel costs one load.
  std::vector<std::uint16_t> q_mask;

  // Per channel x VL, flat index ch * num_vls + vl.
  std::vector<std::int32_t> credits;
  std::vector<VlFifo> fifo;

  std::vector<std::int64_t> remaining;  // per message: undelivered segments
  std::vector<RouteCandidate> candidates;  // adaptive scratch

  // Online-fault state (sized per run; capacity reused like everything
  // else, so the inert-config warm path stays allocation-free).
  std::vector<std::uint8_t> chan_down;     // per channel: died mid-run
  std::vector<std::int32_t> cur_epoch;     // per switch (table mode)
  std::vector<routing::Lid> dlid;          // per message (table mode)
  std::vector<std::int32_t> attempt;       // per message (retry)
  std::vector<std::int32_t> retries_left;  // per message (retry)
};

}  // namespace detail

namespace {

using detail::Ev;
using detail::EvKind;
using detail::PktNode;
using detail::PktScratch;
using detail::VlFifo;

[[noreturn]] void fail(std::size_t m, const char* why) {
  throw std::invalid_argument("PktSim: message " + std::to_string(m) + ": " +
                              why);
}

/// Seed for the engine-owned adaptive-candidate rng.  Replication 0 maps
/// to the router's base seed unchanged, so a plain run() reproduces the
/// historical ValiantRouter stream bit-for-bit; every other replication
/// gets an independent golden-ratio-offset stream derived from its index
/// alone, which is what makes randomized routers replicable under
/// run_batch (no shared mutable state, no order dependence).
std::uint64_t candidate_rng_seed(const PktSimConfig& config,
                                 std::uint64_t replication) {
  const std::uint64_t base =
      config.adaptive != nullptr ? config.adaptive->rng_seed() : 0;
  return base ^ (0x9e3779b97f4a7c15ULL * replication);
}

/// Seed for the engine-owned retry-jitter rng, derived exactly like the
/// adaptive-candidate seed: replication 0 uses the configured base seed
/// unchanged and every other replication an independent golden-ratio-offset
/// stream, so retransmission timelines are bit-identical across run_batch
/// thread counts and across engines.
std::uint64_t retry_rng_seed(const PktSimConfig& config,
                             std::uint64_t replication) {
  const std::uint64_t base =
      config.online != nullptr ? config.online->retry.seed : 0;
  return base ^ (0x9e3779b97f4a7c15ULL * replication);
}

/// Exponential backoff with seeded jitter before retry attempt `attempt`
/// (1-based): base * 2^(attempt-1) * (1 + jitter * u).  `u` is drawn by
/// the caller in event order so both engines consume the stream
/// identically.
double backoff_delay(const PktRetryConfig& retry, std::int32_t attempt,
                     double u) {
  const double scale = static_cast<double>(
      1ULL << static_cast<std::uint32_t>(std::min(attempt - 1, 62)));
  return retry.backoff_base * scale * (1.0 + retry.jitter * u);
}

/// Static paths are walked blindly by arrive() (`++p.hop`), so anything
/// not ending in the destination's switch->terminal channel used to
/// index past the end of the path.  Reject malformed paths up front.
/// Shared verbatim by both engines so they throw identically.
void validate_path(const topo::Topology& topo, std::size_t m,
                   const PktMessage& msg) {
  for (const topo::ChannelId ch : msg.path)
    if (ch < 0 || ch >= topo.num_channels())
      fail(m, "path channel id out of range");
  if (msg.path.front() != topo.terminal_up(msg.src))
    fail(m, "path must start with the source terminal's up channel");
  for (std::size_t i = 0; i + 1 < msg.path.size(); ++i) {
    const topo::Channel& c = topo.channel(msg.path[i]);
    if (!c.dst.is_switch())
      fail(m, "path reaches a terminal before its final channel");
    if (topo.channel(msg.path[i + 1]).src != c.dst)
      fail(m, "path is disconnected (consecutive channels do not meet)");
  }
  if (msg.path.back() != topo.terminal_down(msg.dst))
    fail(m, "path must end with the destination terminal's down channel");
}

// ---------------------------------------------------------------------------
// ReferenceEngine: the seed implementation, preserved for golden
// bit-identity testing and old-vs-new benchmarking.  Type-erased callbacks
// on a binary heap, per-VL std::deques, one heap-allocated Packet record
// per segment.  Behaviour is frozen; only the config copy was replaced by
// a reference (the config outlives the engine in every call path).
// ---------------------------------------------------------------------------

struct RefPacket {
  std::int32_t msg = -1;
  std::int32_t size = 0;  // bytes in this segment
  std::int32_t hop = 0;   // path index (static) / switch visits (table: TTL)
  std::int32_t attempt = 0;  // transmission attempt the segment belongs to
  std::int8_t vl = 0;
  bool adaptive = false;
  bool table = false;  // forwarded hop-by-hop through the online epochs
  /// Channel whose downstream buffer the packet currently occupies (credit
  /// held), and the VL it was crossed on.
  topo::ChannelId held = topo::kInvalidChannel;
  std::int8_t held_vl = 0;
  AdaptiveState astate;
};

struct RefChannelState {
  bool busy = false;
  bool down = false;  // online fault: died mid-run
  std::int8_t busy_vl = 0;                      // VL of the in-flight packet
  std::int32_t rr_next = 0;                     // VL arbitration pointer
  std::vector<std::deque<std::int32_t>> queue;  // per VL: waiting packets
  std::vector<std::int32_t> credits;            // per VL: downstream slots
  bool downstream_is_switch = false;

  /// Congestion score of one VL: its waiting queue plus the in-flight
  /// packet *iff* that packet is serialising on this VL.
  [[nodiscard]] std::int32_t occupancy(std::int8_t vl) const {
    return static_cast<std::int32_t>(queue[static_cast<std::size_t>(vl)]
                                         .size()) +
           ((busy && busy_vl == vl) ? 1 : 0);
  }
};

class ReferenceEngine {
 public:
  ReferenceEngine(const topo::Topology& topo, const PktSimConfig& config,
                  obs::PktTrace* trace, std::span<const PktMessage> messages,
                  std::uint64_t replication = 0)
      : topo_(topo), config_(config), messages_(messages), trace_(trace),
        rng_(candidate_rng_seed(config, replication)),
        retry_rng_(retry_rng_seed(config, replication)) {
    online_ = config.online;
    table_mode_ = online_ != nullptr && !online_->epochs.empty();
    retry_on_ = online_ != nullptr && online_->retry.enabled;
    track_status_ = online_ != nullptr && online_->active();

    channels_.resize(static_cast<std::size_t>(topo.num_channels()));
    for (topo::ChannelId ch = 0; ch < topo.num_channels(); ++ch) {
      RefChannelState& st = channels_[static_cast<std::size_t>(ch)];
      st.queue.resize(static_cast<std::size_t>(config.num_vls));
      st.downstream_is_switch = topo.channel(ch).dst.is_switch();
      st.credits.assign(static_cast<std::size_t>(config.num_vls),
                        st.downstream_is_switch ? config.vc_buffer_packets
                                                : 0 /* unused */);
    }
    if (trace_ != nullptr)
      trace_->reset(topo.num_channels(), config.num_vls);

    result_.completion.assign(messages.size(),
                              std::numeric_limits<double>::quiet_NaN());
    remaining_packets_.assign(messages.size(), 0);
    if (track_status_)
      result_.message_status.assign(messages.size(),
                                    PktMessageStatus::kUndelivered);
    if (table_mode_) {
      cur_epoch_.assign(static_cast<std::size_t>(topo.num_switches()), 0);
      dlid_.assign(messages.size(), routing::kInvalidLid);
    }
    if (retry_on_) {
      attempt_.assign(messages.size(), 0);
      retries_left_.assign(messages.size(), online_->retry.max_retries);
    }

    // Fault events are scheduled before any inject so they carry lower
    // sequence numbers: at an equal timestamp the channel dies first, then
    // traffic routes around it -- identically in both engines.
    if (online_ != nullptr)
      for (std::size_t f = 0; f < online_->faults.size(); ++f)
        events_.schedule(online_->faults[f].time, [this, f] { fault(f); });

    for (std::size_t m = 0; m < messages.size(); ++m) {
      const PktMessage& msg = messages[m];
      if (msg.vl < 0 || msg.vl >= config.num_vls)
        throw std::invalid_argument("PktSim: message VL out of range");
      if (msg.src < 0 || msg.src >= topo.num_terminals() || msg.dst < 0 ||
          msg.dst >= topo.num_terminals())
        fail(m, "src/dst is not a terminal of this topology");
      const bool pathless = msg.path.empty() && msg.src != msg.dst;
      // Path-less routing: an adaptive router wins when both are
      // configured; otherwise the online epochs' tables forward hop by
      // hop (table mode).
      if (pathless && config_.adaptive == nullptr && !table_mode_)
        throw std::invalid_argument(
            "PktSim: path-less message without an adaptive router");
      if (msg.path.empty() && msg.src == msg.dst) {
        result_.completion[m] = msg.inject_time;  // self-send
        if (track_status_)
          result_.message_status[m] = PktMessageStatus::kDelivered;
        continue;
      }
      if (!msg.path.empty()) validate_path(topo_, m, msg);
      if (pathless && config_.adaptive == nullptr)
        dlid_[m] = online_->lids->base_lid(msg.dst);
      const std::int64_t segments =
          std::max<std::int64_t>(1, (msg.bytes + config.link.mtu - 1) /
                                        config.link.mtu);
      remaining_packets_[m] = segments;
      result_.packets_total += segments;
      events_.schedule(msg.inject_time, [this, m] { inject(m); });
    }
  }

  PktSim::Result run(std::size_t max_events) {
    result_.events_executed =
        static_cast<std::int64_t>(events_.run(max_events));
    result_.end_time = events_.now();
    // Pending events mean the run was truncated by max_events -- progress
    // was still possible, so it is NOT a deadlock; a drained queue with
    // packets neither delivered nor dropped is one.
    result_.truncated = !events_.empty();
    result_.deadlock =
        events_.empty() && result_.packets_delivered + result_.packets_dropped <
                               result_.packets_total;
    if (result_.deadlock) result_.deadlock_report = post_mortem();
    if (trace_ != nullptr) {
      trace_->finalize(result_.end_time);
      for (topo::ChannelId ch = 0; ch < topo_.num_channels(); ++ch) {
        const RefChannelState& st = channels_[static_cast<std::size_t>(ch)];
        if (!st.downstream_is_switch) continue;
        for (std::int8_t vl = 0; vl < config_.num_vls; ++vl)
          trace_->set_final_credits(ch, vl,
                                    st.credits[static_cast<std::size_t>(vl)]);
      }
    }
    return std::move(result_);
  }

 private:
  /// Re-derives the credit-stall state of (ch, vl) after any queue or
  /// credit mutation; no-op unless tracing.
  void sync_stall(topo::ChannelId ch, std::int8_t vl) {
    if (trace_ == nullptr) return;
    const RefChannelState& st = channels_[static_cast<std::size_t>(ch)];
    const bool blocked =
        st.downstream_is_switch &&
        st.credits[static_cast<std::size_t>(vl)] <= 0 &&
        !st.queue[static_cast<std::size_t>(vl)].empty();
    trace_->on_blocked(ch, vl, blocked, events_.now());
  }

  /// Runs after deadlock detection: every queued packet becomes a wait
  /// edge (holds its upstream buffer, wants a credit of the channel it is
  /// queued on), and the cycle is extracted from the resource graph.
  obs::DeadlockReport post_mortem() const {
    std::vector<obs::CreditWaitEdge> blocked;
    for (topo::ChannelId ch = 0; ch < topo_.num_channels(); ++ch) {
      const RefChannelState& st = channels_[static_cast<std::size_t>(ch)];
      for (std::int8_t vl = 0; vl < config_.num_vls; ++vl) {
        for (const std::int32_t pkt :
             st.queue[static_cast<std::size_t>(vl)]) {
          const RefPacket& p = packets_[static_cast<std::size_t>(pkt)];
          blocked.push_back(obs::CreditWaitEdge{pkt, p.msg, p.held, p.held_vl,
                                                ch, vl});
        }
      }
    }
    return obs::build_deadlock_report(std::move(blocked), config_.num_vls);
  }

  void inject(std::size_t m) { inject_segments(m, remaining_packets_[m]); }

  /// Injects the last `count` segments of message `m`'s segmentation --
  /// all of them on first injection, the unacknowledged remainder on a
  /// retransmission.  Sizes are count-1 full-MTU fills plus the message's
  /// tail segment, reproducing the historical forward walk bit-for-bit.
  void inject_segments(std::size_t m, std::int64_t count) {
    const PktMessage& msg = messages_[m];
    const bool pathless = msg.path.empty();
    const bool adaptive = pathless && config_.adaptive != nullptr;
    const bool table = pathless && !adaptive;
    const topo::ChannelId first =
        pathless ? topo_.terminal_up(msg.src) : msg.path[0];
    const std::int64_t mtu = config_.link.mtu;
    const std::int64_t total =
        std::max<std::int64_t>(1, (msg.bytes + mtu - 1) / mtu);
    const auto tail = static_cast<std::int32_t>(
        std::max<std::int64_t>(1, msg.bytes - (total - 1) * mtu));
    const std::int8_t vl = table ? table_vl(m) : (adaptive ? 0 : msg.vl);
    for (std::int64_t i = 0; i < count; ++i) {
      const std::int32_t seg =
          i + 1 == count ? tail : static_cast<std::int32_t>(mtu);
      const auto pkt = static_cast<std::int32_t>(packets_.size());
      RefPacket p;
      p.msg = static_cast<std::int32_t>(m);
      p.size = seg;
      p.attempt = retry_on_ ? attempt_[m] : 0;
      p.vl = vl;
      p.adaptive = adaptive;
      p.table = table;
      packets_.push_back(p);
      if (channels_[static_cast<std::size_t>(first)].down) {
        // The NIC's uplink (or the path's first channel) is already dead.
        drop(pkt, obs::PktDropCause::kBlackhole);
      } else {
        enqueue(first, pkt);
      }
    }
    try_start(first);
    if (retry_on_)
      events_.schedule_in(online_->retry.timeout, [this, m] { timeout(m); });
  }

  /// Injection VL of a table-routed message: the active epoch's VL
  /// assignment at the source switch, clamped to the configured lanes.
  std::int8_t table_vl(std::size_t m) {
    const PktMessage& msg = messages_[m];
    const topo::SwitchId sw = topo_.attach_switch(msg.src);
    const PktRoutingEpoch& ep =
        online_->epochs[static_cast<std::size_t>(epoch_at(sw))];
    if (ep.vls == nullptr) return msg.vl;
    const std::int8_t vl = ep.vls->vl(sw, dlid_[m]);
    return (vl >= 0 && vl < config_.num_vls) ? vl : msg.vl;
  }

  /// Lazily advances switch `sw` to the highest epoch whose per-switch
  /// install time has passed (monotone: tables never roll back).
  std::int32_t epoch_at(topo::SwitchId sw) {
    std::int32_t e = cur_epoch_[static_cast<std::size_t>(sw)];
    const auto n = static_cast<std::int32_t>(online_->epochs.size());
    const double now = events_.now();
    while (e + 1 < n) {
      const std::vector<double>& inst =
          online_->epochs[static_cast<std::size_t>(e + 1)].install_time;
      const double t = inst.empty() ? 0.0 : inst[static_cast<std::size_t>(sw)];
      if (!(t <= now)) break;  // NaN-safe: unreachable installs never pass
      ++e;
    }
    cur_epoch_[static_cast<std::size_t>(sw)] = e;
    return e;
  }

  /// Next hop of a table-routed packet at `sw` by the switch's active
  /// epoch; kInvalidChannel when the LFT has no (usable) entry.
  topo::ChannelId table_next(topo::SwitchId sw, std::int32_t m) {
    const PktRoutingEpoch& ep =
        online_->epochs[static_cast<std::size_t>(epoch_at(sw))];
    const topo::ChannelId ch =
        ep.tables->next(sw, dlid_[static_cast<std::size_t>(m)]);
    return (ch >= 0 && ch < topo_.num_channels()) ? ch
                                                  : topo::kInvalidChannel;
  }

  /// The fault instant: the channels stop accepting and transmitting.
  /// Packets queued on them are re-arbitrated through the live fabric
  /// (channel feed order, VLs ascending, FIFO within a VL); packets on
  /// the wire are dropped when their arrival fires (kInFlight).
  void fault(std::size_t f) {
    for (const topo::ChannelId ch : online_->faults[f].channels) {
      RefChannelState& st = channels_[static_cast<std::size_t>(ch)];
      if (st.down) continue;  // overlapping faults: already dead
      st.down = true;
      for (std::int8_t vl = 0; vl < config_.num_vls; ++vl) {
        auto& q = st.queue[static_cast<std::size_t>(vl)];
        while (!q.empty()) {
          const std::int32_t pkt = q.front();
          q.pop_front();
          if (trace_ != nullptr) {
            trace_->on_queue_depth(ch, vl,
                                   static_cast<std::int32_t>(q.size()),
                                   events_.now());
            sync_stall(ch, vl);
          }
          redirect(ch, pkt);
        }
      }
    }
  }

  /// A packet queued on `dead` lost its output: route it again from the
  /// switch upstream of the dead channel, or drop it as blackholed
  /// (static paths cannot be re-planned; neither can terminal uplinks).
  void redirect(topo::ChannelId dead, std::int32_t pkt) {
    RefPacket& p = packets_[static_cast<std::size_t>(pkt)];
    const topo::Channel& c = topo_.channel(dead);
    topo::ChannelId next = topo::kInvalidChannel;
    if (c.src.is_switch()) {
      const topo::SwitchId sw = c.src.index;
      if (p.adaptive) {
        next = choose_adaptive(sw, p);
      } else if (p.table) {
        next = table_next(sw, p.msg);
      }
    }
    if (next == topo::kInvalidChannel ||
        channels_[static_cast<std::size_t>(next)].down) {
      drop(pkt, obs::PktDropCause::kBlackhole);
      return;
    }
    enqueue(next, pkt);
    try_start(next);
  }

  /// Drops a segment with cause accounting and vacates the upstream input
  /// buffer it still holds, waking that channel's arbiter.
  void drop(std::int32_t pkt, obs::PktDropCause cause) {
    RefPacket& p = packets_[static_cast<std::size_t>(pkt)];
    ++result_.packets_dropped;
    ++result_.dropped_by_cause[static_cast<std::size_t>(cause)];
    if (trace_ != nullptr) trace_->on_drop(cause);
    if (p.held != topo::kInvalidChannel) {
      RefChannelState& hst = channels_[static_cast<std::size_t>(p.held)];
      if (hst.downstream_is_switch) {
        ++hst.credits[static_cast<std::size_t>(p.held_vl)];
        sync_stall(p.held, p.held_vl);
        try_start(p.held);
      }
    }
    p.held = topo::kInvalidChannel;
  }

  /// End-host timer of one transmission attempt.  Stale (the message
  /// completed) => no-op; retries exhausted => the flow gives up; else
  /// bump the attempt (superseding every outstanding segment) and
  /// schedule the retransmission after backoff.
  void timeout(std::size_t m) {
    if (remaining_packets_[m] == 0) return;
    if (result_.message_status[m] == PktMessageStatus::kAbandoned) return;
    if (retries_left_[m] == 0) {
      result_.message_status[m] = PktMessageStatus::kAbandoned;
      ++result_.messages_abandoned;
      if (trace_ != nullptr) trace_->on_abandon();
      return;
    }
    --retries_left_[m];
    const std::int32_t attempt = ++attempt_[m];
    ++result_.retries;
    if (trace_ != nullptr) trace_->on_retry();
    const double delay =
        backoff_delay(online_->retry, attempt, retry_rng_.uniform());
    events_.schedule_in(delay, [this, m] { retry(m); });
  }

  void retry(std::size_t m) {
    if (remaining_packets_[m] == 0) return;  // defensive; mirrored
    result_.packets_total += remaining_packets_[m];
    inject_segments(m, remaining_packets_[m]);
  }

  void enqueue(topo::ChannelId ch, std::int32_t pkt) {
    const std::int8_t vl = packets_[static_cast<std::size_t>(pkt)].vl;
    auto& q =
        channels_[static_cast<std::size_t>(ch)].queue[static_cast<std::size_t>(
            vl)];
    q.push_back(pkt);
    if (trace_ != nullptr) {
      trace_->on_queue_depth(ch, vl, static_cast<std::int32_t>(q.size()),
                             events_.now());
      sync_stall(ch, vl);
    }
  }

  /// Round-robin arbitration: start the next eligible packet on `ch`.
  void try_start(topo::ChannelId ch) {
    RefChannelState& st = channels_[static_cast<std::size_t>(ch)];
    if (st.busy) return;
    if (st.down) return;  // online fault: the channel transmits nothing
    const std::int32_t vls = config_.num_vls;
    for (std::int32_t i = 0; i < vls; ++i) {
      const std::int32_t vl = (st.rr_next + i) % vls;
      auto& q = st.queue[static_cast<std::size_t>(vl)];
      if (q.empty()) continue;
      if (st.downstream_is_switch &&
          st.credits[static_cast<std::size_t>(vl)] <= 0) {
        if (trace_ != nullptr)
          trace_->on_arb_skip(ch, static_cast<std::int8_t>(vl));
        continue;  // head blocked on credits; try another VL
      }
      const std::int32_t pkt = q.front();
      q.pop_front();
      if (trace_ != nullptr)
        trace_->on_queue_depth(ch, static_cast<std::int8_t>(vl),
                               static_cast<std::int32_t>(q.size()),
                               events_.now());
      st.rr_next = (vl + 1) % vls;
      start_crossing(ch, pkt);
      return;
    }
  }

  void start_crossing(topo::ChannelId ch, std::int32_t pkt) {
    RefChannelState& st = channels_[static_cast<std::size_t>(ch)];
    RefPacket& p = packets_[static_cast<std::size_t>(pkt)];

    if (st.downstream_is_switch) {
      --st.credits[static_cast<std::size_t>(p.vl)];
      sync_stall(ch, p.vl);
    }
    if (trace_ != nullptr) trace_->on_cross(ch, p.vl, p.size);

    // Starting to cross vacates the upstream input buffer: return the
    // held credit and wake that channel's arbiter.
    if (p.held != topo::kInvalidChannel) {
      RefChannelState& hst = channels_[static_cast<std::size_t>(p.held)];
      if (hst.downstream_is_switch) {
        ++hst.credits[static_cast<std::size_t>(p.held_vl)];
        sync_stall(p.held, p.held_vl);
        try_start(p.held);
      }
    }
    p.held = ch;
    p.held_vl = p.vl;

    st.busy = true;
    st.busy_vl = p.vl;
    const double ser = serialization_time(config_.link, p.size);
    events_.schedule_in(ser, [this, ch] {
      channels_[static_cast<std::size_t>(ch)].busy = false;
      try_start(ch);
    });
    events_.schedule_in(ser + config_.link.hop_latency,
                        [this, ch, pkt] { arrive(ch, pkt); });
  }

  /// Picks the adaptive candidate with the lowest congestion score:
  /// output occupancy on the packet's next VL, plus the deroute penalty
  /// for non-minimal hops, plus a large penalty when no credit is
  /// immediately available.  Candidates on channels that died mid-run are
  /// skipped (the adaptive escape); kInvalidChannel when none is alive.
  topo::ChannelId choose_adaptive(topo::SwitchId sw, RefPacket& p) {
    const PktMessage& msg = messages_[static_cast<std::size_t>(p.msg)];
    scratch_candidates_.clear();
    config_.adaptive->candidates(sw, msg.dst, p.astate, scratch_candidates_,
                                 rng_);
    if (scratch_candidates_.empty())
      throw std::runtime_error("PktSim: adaptive router returned no route");

    const auto vl = static_cast<std::int8_t>(std::min<std::int32_t>(
        p.astate.hops_taken, config_.num_vls - 1));
    const RouteCandidate* best = nullptr;
    std::int64_t best_score = std::numeric_limits<std::int64_t>::max();
    for (const RouteCandidate& cand : scratch_candidates_) {
      const RefChannelState& st =
          channels_[static_cast<std::size_t>(cand.channel)];
      if (st.down) continue;
      std::int64_t score = st.occupancy(vl);
      if (!cand.minimal) score += config_.deroute_penalty;
      if (st.downstream_is_switch &&
          st.credits[static_cast<std::size_t>(vl)] <= 0)
        score += 1000;
      if (score < best_score ||
          (score == best_score && best && cand.channel < best->channel)) {
        best_score = score;
        best = &cand;
      }
    }
    if (best == nullptr) return topo::kInvalidChannel;  // every escape dead
    p.vl = vl;
    config_.adaptive->on_hop(*best, p.astate);
    return best->channel;
  }

  void arrive(topo::ChannelId ch, std::int32_t pkt) {
    RefPacket& p = packets_[static_cast<std::size_t>(pkt)];
    const PktMessage& msg = messages_[static_cast<std::size_t>(p.msg)];
    const topo::Channel& c = topo_.channel(ch);

    if (channels_[static_cast<std::size_t>(ch)].down) {
      // The channel died while the packet was on the wire.
      drop(pkt, obs::PktDropCause::kInFlight);
      return;
    }

    if (c.dst.is_terminal()) {
      if (retry_on_ &&
          (p.attempt != attempt_[static_cast<std::size_t>(p.msg)] ||
           result_.message_status[static_cast<std::size_t>(p.msg)] ==
               PktMessageStatus::kAbandoned)) {
        // The end host already retransmitted or gave up on this flow.
        drop(pkt, obs::PktDropCause::kSuperseded);
        return;
      }
      ++result_.packets_delivered;
      auto& left = remaining_packets_[static_cast<std::size_t>(p.msg)];
      if (--left == 0) {
        result_.completion[static_cast<std::size_t>(p.msg)] = events_.now();
        if (track_status_)
          result_.message_status[static_cast<std::size_t>(p.msg)] =
              PktMessageStatus::kDelivered;
      }
      return;
    }

    const topo::SwitchId sw = c.dst.index;
    topo::ChannelId next;
    if (p.adaptive) {
      if (sw == topo_.attach_switch(msg.dst)) {
        next = topo_.terminal_down(msg.dst);
      } else {
        next = choose_adaptive(sw, p);
        if (next == topo::kInvalidChannel) {
          drop(pkt, obs::PktDropCause::kBlackhole);
          return;
        }
      }
    } else if (p.table) {
      ++p.hop;
      if (p.hop > online_->ttl_hops) {
        // Transient routing loop between epochs: hop budget exhausted.
        drop(pkt, obs::PktDropCause::kTtl);
        return;
      }
      next = table_next(sw, p.msg);
      if (next == topo::kInvalidChannel) {
        drop(pkt, obs::PktDropCause::kBlackhole);
        return;
      }
    } else {
      ++p.hop;
      next = msg.path[static_cast<std::size_t>(p.hop)];
    }
    if (channels_[static_cast<std::size_t>(next)].down) {
      // Stale table, static path, or chosen hop onto a dead channel.
      drop(pkt, obs::PktDropCause::kBlackhole);
      return;
    }
    enqueue(next, pkt);
    try_start(next);
  }

  const topo::Topology& topo_;
  const PktSimConfig& config_;
  std::span<const PktMessage> messages_;
  EventQueue events_;
  std::vector<RefPacket> packets_;
  std::vector<RefChannelState> channels_;
  std::vector<std::int64_t> remaining_packets_;
  std::vector<RouteCandidate> scratch_candidates_;
  obs::PktTrace* trace_ = nullptr;  // nullptr: tracing off (the default)
  stats::Rng rng_;  // per-run adaptive-candidate stream
  stats::Rng retry_rng_;  // per-run retry-jitter stream (event order)
  // Online-fault state (see sim/online.hpp); all inert when online_ is
  // null or inactive.
  const PktOnlineConfig* online_ = nullptr;
  bool table_mode_ = false;
  bool retry_on_ = false;
  bool track_status_ = false;
  std::vector<std::int32_t> cur_epoch_;     // per switch (table mode)
  std::vector<routing::Lid> dlid_;          // per message (table mode)
  std::vector<std::int32_t> attempt_;       // per message (retry)
  std::vector<std::int32_t> retries_left_;  // per message (retry)
  PktSim::Result result_;
};

// ---------------------------------------------------------------------------
// TypedEngine: the allocation-free data-oriented engine.  Control flow is a
// line-for-line mirror of ReferenceEngine -- same handler structure, same
// scheduling order inside every handler, same tie-breaks -- so the strict
// (when, seq) event order, and therefore every result bit, is identical.
// What changed is purely representational: POD events dispatched by a
// switch, an intrusive FIFO per channel x VL threaded through the pre-sized
// packet pool, and flat SoA channel arrays.
// ---------------------------------------------------------------------------

class TypedEngine {
 public:
  TypedEngine(const topo::Topology& topo, const PktSimConfig& config,
              obs::PktTrace* trace, std::span<const PktMessage> messages,
              PktScratch& s, std::uint64_t replication = 0)
      : topo_(topo), config_(config), messages_(messages), s_(s),
        trace_(trace), num_vls_(config.num_vls),
        rng_(candidate_rng_seed(config, replication)),
        retry_rng_(retry_rng_seed(config, replication)) {
    online_ = config.online;
    table_mode_ = online_ != nullptr && !online_->epochs.empty();
    retry_on_ = online_ != nullptr && online_->retry.enabled;
    track_status_ = online_ != nullptr && online_->active();

    const auto nch = static_cast<std::size_t>(topo.num_channels());
    const std::size_t nchvl = nch * static_cast<std::size_t>(num_vls_);
    s_.events.reset();
    s_.busy.assign(nch, 0);
    s_.busy_vl.assign(nch, 0);
    s_.rr_next.assign(nch, 0);
    s_.chan_down.assign(nch, 0);
    s_.down_switch.resize(nch);
    s_.credits.resize(nchvl);
    for (topo::ChannelId ch = 0; ch < topo.num_channels(); ++ch) {
      const bool down_switch = topo.channel(ch).dst.is_switch();
      s_.down_switch[static_cast<std::size_t>(ch)] = down_switch ? 1 : 0;
      const std::int32_t credit = down_switch ? config.vc_buffer_packets : 0;
      for (std::int32_t vl = 0; vl < num_vls_; ++vl)
        s_.credits[static_cast<std::size_t>(ch) *
                       static_cast<std::size_t>(num_vls_) +
                   static_cast<std::size_t>(vl)] = credit;
    }
    s_.q_mask.assign(nch, 0);
    s_.fifo.assign(nchvl, VlFifo{-1, -1, 0});
    if (trace_ != nullptr)
      trace_->reset(topo.num_channels(), config.num_vls);

    result_.completion.assign(messages.size(),
                              std::numeric_limits<double>::quiet_NaN());
    s_.remaining.assign(messages.size(), 0);
    if (track_status_)
      result_.message_status.assign(messages.size(),
                                    PktMessageStatus::kUndelivered);
    if (table_mode_) {
      s_.cur_epoch.assign(static_cast<std::size_t>(topo.num_switches()), 0);
      s_.dlid.assign(messages.size(), routing::kInvalidLid);
    }
    if (retry_on_) {
      s_.attempt.assign(messages.size(), 0);
      s_.retries_left.assign(messages.size(), online_->retry.max_retries);
    }

    // Fault events are scheduled before any inject so they carry lower
    // sequence numbers: at an equal timestamp the channel dies first, then
    // traffic routes around it -- identically in both engines.
    if (online_ != nullptr)
      for (std::size_t f = 0; f < online_->faults.size(); ++f)
        s_.events.schedule(
            online_->faults[f].time,
            Ev::make(EvKind::kFault, static_cast<std::int32_t>(f), -1));

    std::int64_t total_segments = 0;
    for (std::size_t m = 0; m < messages.size(); ++m) {
      const PktMessage& msg = messages[m];
      if (msg.vl < 0 || msg.vl >= config.num_vls)
        throw std::invalid_argument("PktSim: message VL out of range");
      if (msg.src < 0 || msg.src >= topo.num_terminals() || msg.dst < 0 ||
          msg.dst >= topo.num_terminals())
        fail(m, "src/dst is not a terminal of this topology");
      const bool pathless = msg.path.empty() && msg.src != msg.dst;
      // Path-less routing: an adaptive router wins when both are
      // configured; otherwise the online epochs' tables forward hop by
      // hop (table mode).
      if (pathless && config_.adaptive == nullptr && !table_mode_)
        throw std::invalid_argument(
            "PktSim: path-less message without an adaptive router");
      if (msg.path.empty() && msg.src == msg.dst) {
        result_.completion[m] = msg.inject_time;  // self-send
        if (track_status_)
          result_.message_status[m] = PktMessageStatus::kDelivered;
        continue;
      }
      if (!msg.path.empty()) validate_path(topo_, m, msg);
      if (pathless && config_.adaptive == nullptr)
        s_.dlid[m] = online_->lids->base_lid(msg.dst);
      const std::int64_t segments =
          std::max<std::int64_t>(1, (msg.bytes + config.link.mtu - 1) /
                                        config.link.mtu);
      s_.remaining[m] = segments;
      result_.packets_total += segments;
      total_segments += segments;
      s_.events.schedule(
          msg.inject_time,
          Ev::make(EvKind::kInject, static_cast<std::int32_t>(m), -1));
    }
    // Segments are countable up front, so the pool is sized exactly once
    // for the first transmission attempts; nodes are fully initialised at
    // inject time.  Retransmissions (and only they) grow it later.
    s_.pool.resize(static_cast<std::size_t>(total_segments));
    pool_used_ = 0;
    // Reserve-ahead for the event heap: pending events are bounded by the
    // not-yet-injected messages plus the in-flight window of every channel
    // (one xmit-done and a short arrival pipeline each).  The bound is
    // heuristic -- the heap grows amortised if exceeded -- but a warm
    // scratch keeps whatever capacity the workload actually needed.
    s_.events.reserve(messages.size() + 4 * nch + 64);
  }

  PktSim::Result run(std::size_t max_events) {
    std::size_t executed = 0;
    while (executed < max_events && !s_.events.empty()) {
      const Ev ev = s_.events.pop();
      const std::int32_t a = ev.a();
      switch (ev.kind()) {
        case EvKind::kInject:
          inject(static_cast<std::size_t>(a));
          break;
        case EvKind::kXmitDone:
          s_.busy[static_cast<std::size_t>(a)] = 0;
          try_start(a);
          break;
        case EvKind::kArrive:
          arrive(a, ev.b);
          break;
        case EvKind::kFault:
          fault(static_cast<std::size_t>(a));
          break;
        case EvKind::kTimeout:
          timeout(static_cast<std::size_t>(a));
          break;
        case EvKind::kRetry:
          retry(static_cast<std::size_t>(a));
          break;
      }
      ++executed;
    }
    result_.events_executed = static_cast<std::int64_t>(executed);
    result_.end_time = s_.events.now();
    result_.truncated = !s_.events.empty();
    result_.deadlock =
        s_.events.empty() && result_.packets_delivered + result_.packets_dropped <
                                 result_.packets_total;
    if (result_.deadlock) result_.deadlock_report = post_mortem();
    if (trace_ != nullptr) {
      trace_->finalize(result_.end_time);
      for (topo::ChannelId ch = 0; ch < topo_.num_channels(); ++ch) {
        if (!s_.down_switch[static_cast<std::size_t>(ch)]) continue;
        for (std::int8_t vl = 0; vl < config_.num_vls; ++vl)
          trace_->set_final_credits(ch, vl, s_.credits[idx(ch, vl)]);
      }
    }
    return std::move(result_);
  }

 private:
  [[nodiscard]] std::size_t idx(topo::ChannelId ch,
                                std::int32_t vl) const noexcept {
    return static_cast<std::size_t>(ch) * static_cast<std::size_t>(num_vls_) +
           static_cast<std::size_t>(vl);
  }

  void sync_stall(topo::ChannelId ch, std::int8_t vl) {
    if (trace_ == nullptr) return;
    const std::size_t i = idx(ch, vl);
    const bool blocked = s_.down_switch[static_cast<std::size_t>(ch)] != 0 &&
                         s_.credits[i] <= 0 && s_.fifo[i].len > 0;
    trace_->on_blocked(ch, vl, blocked, s_.events.now());
  }

  obs::DeadlockReport post_mortem() const {
    std::vector<obs::CreditWaitEdge> blocked;
    for (topo::ChannelId ch = 0; ch < topo_.num_channels(); ++ch) {
      for (std::int8_t vl = 0; vl < config_.num_vls; ++vl) {
        for (std::int32_t pkt = s_.fifo[idx(ch, vl)].head; pkt >= 0;
             pkt = s_.pool[static_cast<std::size_t>(pkt)].next) {
          const PktNode& p = s_.pool[static_cast<std::size_t>(pkt)];
          blocked.push_back(obs::CreditWaitEdge{pkt, p.msg, p.held, p.held_vl,
                                                ch, vl});
        }
      }
    }
    return obs::build_deadlock_report(std::move(blocked), config_.num_vls);
  }

  void inject(std::size_t m) { inject_segments(m, s_.remaining[m]); }

  /// Injects the last `count` segments of message `m`'s segmentation --
  /// all of them on first injection, the unacknowledged remainder on a
  /// retransmission.  Sizes are count-1 full-MTU fills plus the message's
  /// tail segment, reproducing the historical forward walk bit-for-bit.
  void inject_segments(std::size_t m, std::int64_t count) {
    const PktMessage& msg = messages_[m];
    const bool pathless = msg.path.empty();
    const bool adaptive = pathless && config_.adaptive != nullptr;
    const bool table = pathless && !adaptive;
    const topo::ChannelId first =
        pathless ? topo_.terminal_up(msg.src) : msg.path[0];
    const std::int64_t mtu = config_.link.mtu;
    const std::int64_t total =
        std::max<std::int64_t>(1, (msg.bytes + mtu - 1) / mtu);
    const auto tail = static_cast<std::int32_t>(
        std::max<std::int64_t>(1, msg.bytes - (total - 1) * mtu));
    const std::int8_t vl = table ? table_vl(m) : (adaptive ? 0 : msg.vl);
    // The pool is pre-sized for every first attempt, so this grows it only
    // on a retransmission -- the warm no-retry path stays allocation-free.
    const std::size_t need =
        static_cast<std::size_t>(pool_used_) + static_cast<std::size_t>(count);
    if (need > s_.pool.size()) s_.pool.resize(need);
    for (std::int64_t i = 0; i < count; ++i) {
      const std::int32_t seg =
          i + 1 == count ? tail : static_cast<std::int32_t>(mtu);
      const std::int32_t pkt = pool_used_++;
      PktNode& p = s_.pool[static_cast<std::size_t>(pkt)];
      p.msg = static_cast<std::int32_t>(m);
      p.size = seg;
      p.hop = 0;
      p.next = -1;
      p.attempt = retry_on_ ? s_.attempt[m] : 0;
      p.held = topo::kInvalidChannel;
      p.held_vl = 0;
      p.vl = vl;
      p.adaptive = adaptive;
      p.table = table;
      p.astate = AdaptiveState{};
      if (s_.chan_down[static_cast<std::size_t>(first)]) {
        // The NIC's uplink (or the path's first channel) is already dead.
        drop(pkt, obs::PktDropCause::kBlackhole);
      } else {
        enqueue(first, pkt);
      }
    }
    try_start(first);
    if (retry_on_)
      s_.events.schedule_in(
          online_->retry.timeout,
          Ev::make(EvKind::kTimeout, static_cast<std::int32_t>(m), -1));
  }

  /// Injection VL of a table-routed message: the active epoch's VL
  /// assignment at the source switch, clamped to the configured lanes.
  std::int8_t table_vl(std::size_t m) {
    const PktMessage& msg = messages_[m];
    const topo::SwitchId sw = topo_.attach_switch(msg.src);
    const PktRoutingEpoch& ep =
        online_->epochs[static_cast<std::size_t>(epoch_at(sw))];
    if (ep.vls == nullptr) return msg.vl;
    const std::int8_t vl = ep.vls->vl(sw, s_.dlid[m]);
    return (vl >= 0 && vl < config_.num_vls) ? vl : msg.vl;
  }

  /// Lazily advances switch `sw` to the highest epoch whose per-switch
  /// install time has passed (monotone: tables never roll back).
  std::int32_t epoch_at(topo::SwitchId sw) {
    std::int32_t e = s_.cur_epoch[static_cast<std::size_t>(sw)];
    const auto n = static_cast<std::int32_t>(online_->epochs.size());
    const double now = s_.events.now();
    while (e + 1 < n) {
      const std::vector<double>& inst =
          online_->epochs[static_cast<std::size_t>(e + 1)].install_time;
      const double t = inst.empty() ? 0.0 : inst[static_cast<std::size_t>(sw)];
      if (!(t <= now)) break;  // NaN-safe: unreachable installs never pass
      ++e;
    }
    s_.cur_epoch[static_cast<std::size_t>(sw)] = e;
    return e;
  }

  /// Next hop of a table-routed packet at `sw` by the switch's active
  /// epoch; kInvalidChannel when the LFT has no (usable) entry.
  topo::ChannelId table_next(topo::SwitchId sw, std::int32_t m) {
    const PktRoutingEpoch& ep =
        online_->epochs[static_cast<std::size_t>(epoch_at(sw))];
    const topo::ChannelId ch =
        ep.tables->next(sw, s_.dlid[static_cast<std::size_t>(m)]);
    return (ch >= 0 && ch < topo_.num_channels()) ? ch
                                                  : topo::kInvalidChannel;
  }

  /// The fault instant: the channels stop accepting and transmitting.
  /// Packets queued on them are re-arbitrated through the live fabric
  /// (channel feed order, VLs ascending, FIFO within a VL); packets on
  /// the wire are dropped when their arrival fires (kInFlight).
  void fault(std::size_t f) {
    for (const topo::ChannelId ch : online_->faults[f].channels) {
      if (s_.chan_down[static_cast<std::size_t>(ch)])
        continue;  // overlapping faults: already dead
      s_.chan_down[static_cast<std::size_t>(ch)] = 1;
      for (std::int8_t vl = 0; vl < config_.num_vls; ++vl) {
        VlFifo& q = s_.fifo[idx(ch, vl)];
        while (q.head >= 0) {
          const std::int32_t pkt = q.head;
          q.head = s_.pool[static_cast<std::size_t>(pkt)].next;
          if (q.head < 0) {
            q.tail = -1;
            s_.q_mask[static_cast<std::size_t>(ch)] &=
                static_cast<std::uint16_t>(~(1u << vl));
          }
          const std::int32_t depth = --q.len;
          if (trace_ != nullptr) {
            trace_->on_queue_depth(ch, vl, depth, s_.events.now());
            sync_stall(ch, vl);
          }
          redirect(ch, pkt);
        }
      }
    }
  }

  /// A packet queued on `dead` lost its output: route it again from the
  /// switch upstream of the dead channel, or drop it as blackholed
  /// (static paths cannot be re-planned; neither can terminal uplinks).
  void redirect(topo::ChannelId dead, std::int32_t pkt) {
    PktNode& p = s_.pool[static_cast<std::size_t>(pkt)];
    const topo::Channel& c = topo_.channel(dead);
    topo::ChannelId next = topo::kInvalidChannel;
    if (c.src.is_switch()) {
      const topo::SwitchId sw = c.src.index;
      if (p.adaptive) {
        next = choose_adaptive(sw, p);
      } else if (p.table) {
        next = table_next(sw, p.msg);
      }
    }
    if (next == topo::kInvalidChannel ||
        s_.chan_down[static_cast<std::size_t>(next)]) {
      drop(pkt, obs::PktDropCause::kBlackhole);
      return;
    }
    enqueue(next, pkt);
    try_start(next);
  }

  /// Drops a segment with cause accounting and vacates the upstream input
  /// buffer it still holds, waking that channel's arbiter.
  void drop(std::int32_t pkt, obs::PktDropCause cause) {
    PktNode& p = s_.pool[static_cast<std::size_t>(pkt)];
    ++result_.packets_dropped;
    ++result_.dropped_by_cause[static_cast<std::size_t>(cause)];
    if (trace_ != nullptr) trace_->on_drop(cause);
    if (p.held != topo::kInvalidChannel) {
      if (s_.down_switch[static_cast<std::size_t>(p.held)]) {
        ++s_.credits[idx(p.held, p.held_vl)];
        sync_stall(p.held, p.held_vl);
        try_start(p.held);
      }
    }
    p.held = topo::kInvalidChannel;
  }

  /// End-host timer of one transmission attempt.  Stale (the message
  /// completed) => no-op; retries exhausted => the flow gives up; else
  /// bump the attempt (superseding every outstanding segment) and
  /// schedule the retransmission after backoff.
  void timeout(std::size_t m) {
    if (s_.remaining[m] == 0) return;
    if (result_.message_status[m] == PktMessageStatus::kAbandoned) return;
    if (s_.retries_left[m] == 0) {
      result_.message_status[m] = PktMessageStatus::kAbandoned;
      ++result_.messages_abandoned;
      if (trace_ != nullptr) trace_->on_abandon();
      return;
    }
    --s_.retries_left[m];
    const std::int32_t attempt = ++s_.attempt[m];
    ++result_.retries;
    if (trace_ != nullptr) trace_->on_retry();
    const double delay =
        backoff_delay(online_->retry, attempt, retry_rng_.uniform());
    s_.events.schedule_in(
        delay, Ev::make(EvKind::kRetry, static_cast<std::int32_t>(m), -1));
  }

  void retry(std::size_t m) {
    if (s_.remaining[m] == 0) return;  // defensive; mirrored
    result_.packets_total += s_.remaining[m];
    inject_segments(m, s_.remaining[m]);
  }

  void enqueue(topo::ChannelId ch, std::int32_t pkt) {
    PktNode& p = s_.pool[static_cast<std::size_t>(pkt)];
    const std::int8_t vl = p.vl;
    VlFifo& f = s_.fifo[idx(ch, vl)];
    p.next = -1;
    if (f.tail < 0) {
      f.head = pkt;
      s_.q_mask[static_cast<std::size_t>(ch)] |=
          static_cast<std::uint16_t>(1u << vl);
    } else {
      s_.pool[static_cast<std::size_t>(f.tail)].next = pkt;
    }
    f.tail = pkt;
    const std::int32_t depth = ++f.len;
    if (trace_ != nullptr) {
      trace_->on_queue_depth(ch, vl, depth, s_.events.now());
      sync_stall(ch, vl);
    }
  }

  /// Round-robin arbitration: start the next eligible packet on `ch`.
  /// The scan visits only non-empty VLs (q_mask rotated to rr order), so
  /// the overwhelmingly common cases -- channel busy, channel idle with
  /// nothing queued -- cost a load or two, and a loaded channel pays one
  /// iteration per *queued* VL instead of num_vls.  Identical visit order
  /// to the reference scan: empty VLs have no observable effect there.
  void try_start(topo::ChannelId ch) {
    if (s_.busy[static_cast<std::size_t>(ch)]) return;
    if (s_.chan_down[static_cast<std::size_t>(ch)])
      return;  // online fault: the channel transmits nothing
    const std::uint32_t mask = s_.q_mask[static_cast<std::size_t>(ch)];
    if (mask == 0) return;
    const std::int32_t vls = num_vls_;
    const std::int32_t rr = s_.rr_next[static_cast<std::size_t>(ch)];
    const std::size_t base =
        static_cast<std::size_t>(ch) * static_cast<std::size_t>(vls);
    const bool down_switch = s_.down_switch[static_cast<std::size_t>(ch)] != 0;
    // Rotate the mask so bit 0 is VL rr; countr_zero then yields VLs in
    // round-robin order.
    std::uint32_t rot =
        ((mask >> rr) | (mask << (vls - rr))) & ((1u << vls) - 1u);
    while (rot != 0) {
      std::int32_t vl = rr + std::countr_zero(rot);
      if (vl >= vls) vl -= vls;
      const std::size_t qi = base + static_cast<std::size_t>(vl);
      if (down_switch && s_.credits[qi] <= 0) {
        if (trace_ != nullptr)
          trace_->on_arb_skip(ch, static_cast<std::int8_t>(vl));
        rot &= rot - 1;  // head blocked on credits; try the next queued VL
        continue;
      }
      VlFifo& f = s_.fifo[qi];
      const std::int32_t pkt = f.head;
      f.head = s_.pool[static_cast<std::size_t>(pkt)].next;
      if (f.head < 0) {
        f.tail = -1;
        s_.q_mask[static_cast<std::size_t>(ch)] &=
            static_cast<std::uint16_t>(~(1u << vl));
      }
      const std::int32_t depth = --f.len;
      if (trace_ != nullptr)
        trace_->on_queue_depth(ch, static_cast<std::int8_t>(vl), depth,
                               s_.events.now());
      std::int32_t next_rr = vl + 1;
      if (next_rr == vls) next_rr = 0;
      s_.rr_next[static_cast<std::size_t>(ch)] = next_rr;
      start_crossing(ch, pkt);
      return;
    }
  }

  void start_crossing(topo::ChannelId ch, std::int32_t pkt) {
    PktNode& p = s_.pool[static_cast<std::size_t>(pkt)];

    if (s_.down_switch[static_cast<std::size_t>(ch)]) {
      --s_.credits[idx(ch, p.vl)];
      sync_stall(ch, p.vl);
    }
    if (trace_ != nullptr) trace_->on_cross(ch, p.vl, p.size);

    // Starting to cross vacates the upstream input buffer: return the
    // held credit and wake that channel's arbiter.
    if (p.held != topo::kInvalidChannel) {
      if (s_.down_switch[static_cast<std::size_t>(p.held)]) {
        ++s_.credits[idx(p.held, p.held_vl)];
        sync_stall(p.held, p.held_vl);
        try_start(p.held);
      }
    }
    p.held = ch;
    p.held_vl = p.vl;

    s_.busy[static_cast<std::size_t>(ch)] = 1;
    s_.busy_vl[static_cast<std::size_t>(ch)] = p.vl;
    const double ser = serialization_time(config_.link, p.size);
    s_.events.schedule_in(ser, Ev::make(EvKind::kXmitDone, ch, -1));
    s_.events.schedule_in(ser + config_.link.hop_latency,
                          Ev::make(EvKind::kArrive, ch, pkt));
  }

  /// Picks the adaptive candidate with the lowest congestion score; ties
  /// fall to the lowest channel id, independent of candidate order (the
  /// determinism contract tested across permuted candidate lists).
  /// Candidates on channels that died mid-run are skipped (the adaptive
  /// escape); kInvalidChannel when none is alive.
  topo::ChannelId choose_adaptive(topo::SwitchId sw, PktNode& p) {
    const PktMessage& msg = messages_[static_cast<std::size_t>(p.msg)];
    s_.candidates.clear();
    config_.adaptive->candidates(sw, msg.dst, p.astate, s_.candidates, rng_);
    if (s_.candidates.empty())
      throw std::runtime_error("PktSim: adaptive router returned no route");

    const auto vl = static_cast<std::int8_t>(std::min<std::int32_t>(
        p.astate.hops_taken, config_.num_vls - 1));
    const RouteCandidate* best = nullptr;
    std::int64_t best_score = std::numeric_limits<std::int64_t>::max();
    for (const RouteCandidate& cand : s_.candidates) {
      if (s_.chan_down[static_cast<std::size_t>(cand.channel)]) continue;
      const std::size_t ci = idx(cand.channel, vl);
      std::int64_t score =
          s_.fifo[ci].len +
          ((s_.busy[static_cast<std::size_t>(cand.channel)] &&
            s_.busy_vl[static_cast<std::size_t>(cand.channel)] == vl)
               ? 1
               : 0);
      if (!cand.minimal) score += config_.deroute_penalty;
      if (s_.down_switch[static_cast<std::size_t>(cand.channel)] &&
          s_.credits[ci] <= 0)
        score += 1000;
      if (score < best_score ||
          (score == best_score && best && cand.channel < best->channel)) {
        best_score = score;
        best = &cand;
      }
    }
    if (best == nullptr) return topo::kInvalidChannel;  // every escape dead
    p.vl = vl;
    config_.adaptive->on_hop(*best, p.astate);
    return best->channel;
  }

  void arrive(topo::ChannelId ch, std::int32_t pkt) {
    PktNode& p = s_.pool[static_cast<std::size_t>(pkt)];
    const PktMessage& msg = messages_[static_cast<std::size_t>(p.msg)];
    const topo::Channel& c = topo_.channel(ch);

    if (s_.chan_down[static_cast<std::size_t>(ch)]) {
      // The channel died while the packet was on the wire.
      drop(pkt, obs::PktDropCause::kInFlight);
      return;
    }

    if (c.dst.is_terminal()) {
      if (retry_on_ &&
          (p.attempt != s_.attempt[static_cast<std::size_t>(p.msg)] ||
           result_.message_status[static_cast<std::size_t>(p.msg)] ==
               PktMessageStatus::kAbandoned)) {
        // The end host already retransmitted or gave up on this flow.
        drop(pkt, obs::PktDropCause::kSuperseded);
        return;
      }
      ++result_.packets_delivered;
      auto& left = s_.remaining[static_cast<std::size_t>(p.msg)];
      if (--left == 0) {
        result_.completion[static_cast<std::size_t>(p.msg)] =
            s_.events.now();
        if (track_status_)
          result_.message_status[static_cast<std::size_t>(p.msg)] =
              PktMessageStatus::kDelivered;
      }
      return;
    }

    const topo::SwitchId sw = c.dst.index;
    topo::ChannelId next;
    if (p.adaptive) {
      if (sw == topo_.attach_switch(msg.dst)) {
        next = topo_.terminal_down(msg.dst);
      } else {
        next = choose_adaptive(sw, p);
        if (next == topo::kInvalidChannel) {
          drop(pkt, obs::PktDropCause::kBlackhole);
          return;
        }
      }
    } else if (p.table) {
      ++p.hop;
      if (p.hop > online_->ttl_hops) {
        // Transient routing loop between epochs: hop budget exhausted.
        drop(pkt, obs::PktDropCause::kTtl);
        return;
      }
      next = table_next(sw, p.msg);
      if (next == topo::kInvalidChannel) {
        drop(pkt, obs::PktDropCause::kBlackhole);
        return;
      }
    } else {
      ++p.hop;
      next = msg.path[static_cast<std::size_t>(p.hop)];
    }
    if (s_.chan_down[static_cast<std::size_t>(next)]) {
      // Stale table, static path, or chosen hop onto a dead channel.
      drop(pkt, obs::PktDropCause::kBlackhole);
      return;
    }
    enqueue(next, pkt);
    try_start(next);
  }

  const topo::Topology& topo_;
  const PktSimConfig& config_;
  std::span<const PktMessage> messages_;
  PktScratch& s_;
  obs::PktTrace* trace_ = nullptr;
  std::int32_t num_vls_;
  stats::Rng rng_;  // per-run adaptive-candidate stream
  stats::Rng retry_rng_;  // per-run retry-jitter stream (event order)
  std::int32_t pool_used_ = 0;
  // Online-fault state (see sim/online.hpp); all inert when online_ is
  // null or inactive.
  const PktOnlineConfig* online_ = nullptr;
  bool table_mode_ = false;
  bool retry_on_ = false;
  bool track_status_ = false;
  PktSim::Result result_;
};

}  // namespace

PktSim::PktSim(const topo::Topology& topo, PktSimConfig config)
    : topo_(&topo), config_(config),
      scratch_(std::make_unique<detail::PktScratch>()) {
  if (config.num_vls < 1 || config.num_vls > 15)
    throw std::invalid_argument("PktSim: num_vls out of range");
  if (config.vc_buffer_packets < 1)
    throw std::invalid_argument("PktSim: need at least one buffer slot");
  if (config.adaptive != nullptr &&
      config.adaptive->max_hops() > config.num_vls)
    throw std::invalid_argument(
        "PktSim: adaptive max_hops exceeds the VL budget (escalation "
        "would not be deadlock-free)");
  if (config.online != nullptr)
    validate_online(topo, *config.online, config.num_vls);
}

PktSim::~PktSim() = default;
PktSim::PktSim(PktSim&&) noexcept = default;
PktSim& PktSim::operator=(PktSim&&) noexcept = default;

PktSim::Result PktSim::run(std::span<const PktMessage> messages,
                           std::size_t max_events,
                           std::uint64_t replication) {
  if (config_.engine == PktSimConfig::Engine::kReference) {
    ReferenceEngine engine(*topo_, config_, config_.trace, messages,
                           replication);
    return engine.run(max_events);
  }
  TypedEngine engine(*topo_, config_, config_.trace, messages, *scratch_,
                     replication);
  return engine.run(max_events);
}

std::vector<PktSim::Result> PktSim::run_batch(
    std::span<const std::vector<PktMessage>> replications,
    std::int32_t threads, std::span<obs::PktTrace* const> traces,
    std::size_t max_events) {
  if (config_.trace != nullptr)
    throw std::invalid_argument(
        "PktSim::run_batch: a shared PktSimConfig::trace would race across "
        "replications; pass per-replication sinks via `traces`");
  if (!traces.empty() && traces.size() != replications.size())
    throw std::invalid_argument(
        "PktSim::run_batch: traces must be empty or match replications");
  if (config_.adaptive != nullptr && !config_.adaptive->replicable())
    throw std::invalid_argument(
        "PktSim::run_batch: adaptive router reports replicable() == false "
        "(mutable router state would make results depend on execution "
        "order); draw randomness from the engine-supplied rng via "
        "rng_seed() instead, or run each replication through run() with "
        "its own router instance");

  exec::ThreadPool pool(threads);
  const auto workers = static_cast<std::size_t>(pool.num_threads());
  if (batch_scratch_.size() < workers) batch_scratch_.resize(workers);
  for (std::size_t w = 0; w < workers; ++w)
    if (!batch_scratch_[w])
      batch_scratch_[w] = std::make_unique<detail::PktScratch>();

  std::vector<Result> results(replications.size());
  pool.parallel_for(
      static_cast<std::int64_t>(replications.size()),
      [&](std::int64_t i, std::int32_t worker) {
        obs::PktTrace* trace =
            traces.empty() ? nullptr : traces[static_cast<std::size_t>(i)];
        const auto& messages = replications[static_cast<std::size_t>(i)];
        const auto replication = static_cast<std::uint64_t>(i);
        if (config_.engine == PktSimConfig::Engine::kReference) {
          ReferenceEngine engine(*topo_, config_, trace, messages,
                                 replication);
          results[static_cast<std::size_t>(i)] = engine.run(max_events);
        } else {
          TypedEngine engine(*topo_, config_, trace, messages,
                             *batch_scratch_[static_cast<std::size_t>(worker)],
                             replication);
          results[static_cast<std::size_t>(i)] = engine.run(max_events);
        }
      });
  return results;
}

}  // namespace hxsim::sim
