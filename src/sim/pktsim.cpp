#include "sim/pktsim.hpp"

#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

namespace hxsim::sim {

namespace {

struct Packet {
  std::int32_t msg = -1;
  std::int32_t size = 0;  // bytes in this segment
  std::int32_t hop = 0;   // index into the message path (static routing)
  std::int8_t vl = 0;
  bool adaptive = false;
  /// Channel whose downstream buffer the packet currently occupies (credit
  /// held), and the VL it was crossed on.
  topo::ChannelId held = topo::kInvalidChannel;
  std::int8_t held_vl = 0;
  AdaptiveState astate;
};

struct ChannelState {
  bool busy = false;
  std::int32_t rr_next = 0;                     // VL arbitration pointer
  std::vector<std::deque<std::int32_t>> queue;  // per VL: waiting packets
  std::vector<std::int32_t> credits;            // per VL: downstream slots
  bool downstream_is_switch = false;

  [[nodiscard]] std::int32_t occupancy(std::int8_t vl) const {
    return static_cast<std::int32_t>(queue[static_cast<std::size_t>(vl)]
                                         .size()) +
           (busy ? 1 : 0);
  }
};

class Engine {
 public:
  Engine(const topo::Topology& topo, const PktSimConfig& config,
         std::span<const PktMessage> messages)
      : topo_(topo), config_(config), messages_(messages) {
    channels_.resize(static_cast<std::size_t>(topo.num_channels()));
    for (topo::ChannelId ch = 0; ch < topo.num_channels(); ++ch) {
      ChannelState& st = channels_[static_cast<std::size_t>(ch)];
      st.queue.resize(static_cast<std::size_t>(config.num_vls));
      st.downstream_is_switch = topo.channel(ch).dst.is_switch();
      st.credits.assign(static_cast<std::size_t>(config.num_vls),
                        st.downstream_is_switch ? config.vc_buffer_packets
                                                : 0 /* unused */);
    }

    result_.completion.assign(messages.size(),
                              std::numeric_limits<double>::quiet_NaN());
    remaining_packets_.assign(messages.size(), 0);

    for (std::size_t m = 0; m < messages.size(); ++m) {
      const PktMessage& msg = messages[m];
      if (msg.vl < 0 || msg.vl >= config.num_vls)
        throw std::invalid_argument("PktSim: message VL out of range");
      const bool adaptive = msg.path.empty() && msg.src != msg.dst;
      if (adaptive && config_.adaptive == nullptr)
        throw std::invalid_argument(
            "PktSim: path-less message without an adaptive router");
      if (msg.path.empty() && msg.src == msg.dst) {
        result_.completion[m] = msg.inject_time;  // self-send
        continue;
      }
      const std::int64_t segments =
          std::max<std::int64_t>(1, (msg.bytes + config.link.mtu - 1) /
                                        config.link.mtu);
      remaining_packets_[m] = segments;
      result_.packets_total += segments;
      events_.schedule(msg.inject_time, [this, m] { inject(m); });
    }
  }

  PktSim::Result run(std::size_t max_events) {
    events_.run(max_events);
    result_.end_time = events_.now();
    result_.deadlock =
        events_.empty() && result_.packets_delivered < result_.packets_total;
    return std::move(result_);
  }

 private:
  void inject(std::size_t m) {
    const PktMessage& msg = messages_[m];
    const bool adaptive = msg.path.empty();
    const topo::ChannelId first =
        adaptive ? topo_.terminal_up(msg.src) : msg.path[0];
    std::int64_t left = std::max<std::int64_t>(msg.bytes, 1);
    while (left > 0) {
      const auto seg = static_cast<std::int32_t>(
          std::min<std::int64_t>(left, config_.link.mtu));
      left -= seg;
      const auto pkt = static_cast<std::int32_t>(packets_.size());
      Packet p;
      p.msg = static_cast<std::int32_t>(m);
      p.size = seg;
      p.vl = adaptive ? 0 : msg.vl;
      p.adaptive = adaptive;
      packets_.push_back(p);
      enqueue(first, pkt);
    }
    try_start(first);
  }

  void enqueue(topo::ChannelId ch, std::int32_t pkt) {
    channels_[static_cast<std::size_t>(ch)]
        .queue[static_cast<std::size_t>(
            packets_[static_cast<std::size_t>(pkt)].vl)]
        .push_back(pkt);
  }

  /// Round-robin arbitration: start the next eligible packet on `ch`.
  void try_start(topo::ChannelId ch) {
    ChannelState& st = channels_[static_cast<std::size_t>(ch)];
    if (st.busy) return;
    const std::int32_t vls = config_.num_vls;
    for (std::int32_t i = 0; i < vls; ++i) {
      const std::int32_t vl = (st.rr_next + i) % vls;
      auto& q = st.queue[static_cast<std::size_t>(vl)];
      if (q.empty()) continue;
      if (st.downstream_is_switch &&
          st.credits[static_cast<std::size_t>(vl)] <= 0)
        continue;  // head blocked on credits; try another VL
      const std::int32_t pkt = q.front();
      q.pop_front();
      st.rr_next = (vl + 1) % vls;
      start_crossing(ch, pkt);
      return;
    }
  }

  void start_crossing(topo::ChannelId ch, std::int32_t pkt) {
    ChannelState& st = channels_[static_cast<std::size_t>(ch)];
    Packet& p = packets_[static_cast<std::size_t>(pkt)];

    if (st.downstream_is_switch)
      --st.credits[static_cast<std::size_t>(p.vl)];

    // Starting to cross vacates the upstream input buffer: return the
    // held credit and wake that channel's arbiter.
    if (p.held != topo::kInvalidChannel) {
      ChannelState& hst = channels_[static_cast<std::size_t>(p.held)];
      if (hst.downstream_is_switch) {
        ++hst.credits[static_cast<std::size_t>(p.held_vl)];
        try_start(p.held);
      }
    }
    p.held = ch;
    p.held_vl = p.vl;

    st.busy = true;
    const double ser = serialization_time(config_.link, p.size);
    events_.schedule_in(ser, [this, ch] {
      channels_[static_cast<std::size_t>(ch)].busy = false;
      try_start(ch);
    });
    events_.schedule_in(ser + config_.link.hop_latency,
                        [this, ch, pkt] { arrive(ch, pkt); });
  }

  /// Picks the adaptive candidate with the lowest congestion score:
  /// output occupancy on the packet's next VL, plus the deroute penalty
  /// for non-minimal hops, plus a large penalty when no credit is
  /// immediately available.
  topo::ChannelId choose_adaptive(topo::SwitchId sw, Packet& p) {
    const PktMessage& msg = messages_[static_cast<std::size_t>(p.msg)];
    scratch_candidates_.clear();
    config_.adaptive->candidates(sw, msg.dst, p.astate, scratch_candidates_);
    if (scratch_candidates_.empty())
      throw std::runtime_error("PktSim: adaptive router returned no route");

    const auto vl = static_cast<std::int8_t>(std::min<std::int32_t>(
        p.astate.hops_taken, config_.num_vls - 1));
    const RouteCandidate* best = nullptr;
    std::int64_t best_score = std::numeric_limits<std::int64_t>::max();
    for (const RouteCandidate& cand : scratch_candidates_) {
      const ChannelState& st =
          channels_[static_cast<std::size_t>(cand.channel)];
      std::int64_t score = st.occupancy(vl);
      if (!cand.minimal) score += config_.deroute_penalty;
      if (st.downstream_is_switch &&
          st.credits[static_cast<std::size_t>(vl)] <= 0)
        score += 1000;
      if (score < best_score ||
          (score == best_score && best && cand.channel < best->channel)) {
        best_score = score;
        best = &cand;
      }
    }
    p.vl = vl;
    config_.adaptive->on_hop(*best, p.astate);
    return best->channel;
  }

  void arrive(topo::ChannelId ch, std::int32_t pkt) {
    Packet& p = packets_[static_cast<std::size_t>(pkt)];
    const PktMessage& msg = messages_[static_cast<std::size_t>(p.msg)];
    const topo::Channel& c = topo_.channel(ch);

    if (c.dst.is_terminal()) {
      ++result_.packets_delivered;
      auto& left = remaining_packets_[static_cast<std::size_t>(p.msg)];
      if (--left == 0)
        result_.completion[static_cast<std::size_t>(p.msg)] = events_.now();
      return;
    }

    const topo::SwitchId sw = c.dst.index;
    topo::ChannelId next;
    if (p.adaptive) {
      if (sw == topo_.attach_switch(msg.dst)) {
        next = topo_.terminal_down(msg.dst);
      } else {
        next = choose_adaptive(sw, p);
      }
    } else {
      ++p.hop;
      next = msg.path[static_cast<std::size_t>(p.hop)];
    }
    enqueue(next, pkt);
    try_start(next);
  }

  const topo::Topology& topo_;
  PktSimConfig config_;
  std::span<const PktMessage> messages_;
  EventQueue events_;
  std::vector<Packet> packets_;
  std::vector<ChannelState> channels_;
  std::vector<std::int64_t> remaining_packets_;
  std::vector<RouteCandidate> scratch_candidates_;
  PktSim::Result result_;
};

}  // namespace

PktSim::PktSim(const topo::Topology& topo, PktSimConfig config)
    : topo_(&topo), config_(config) {
  if (config.num_vls < 1 || config.num_vls > 15)
    throw std::invalid_argument("PktSim: num_vls out of range");
  if (config.vc_buffer_packets < 1)
    throw std::invalid_argument("PktSim: need at least one buffer slot");
  if (config.adaptive != nullptr &&
      config.adaptive->max_hops() > config.num_vls)
    throw std::invalid_argument(
        "PktSim: adaptive max_hops exceeds the VL budget (escalation "
        "would not be deadlock-free)");
}

PktSim::Result PktSim::run(std::span<const PktMessage> messages,
                           std::size_t max_events) {
  Engine engine(*topo_, config_, messages);
  return engine.run(max_events);
}

}  // namespace hxsim::sim
