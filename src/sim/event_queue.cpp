#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace hxsim::sim {

void EventQueue::schedule(double when, Callback cb) {
  if (when < now_)
    throw std::invalid_argument("EventQueue::schedule: event in the past");
  heap_.push(Entry{when, next_seq_++, std::move(cb)});
}

bool EventQueue::run_one() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the callback handle (cheap: std::function) and pop.
  Entry e = heap_.top();
  heap_.pop();
  now_ = e.when;
  e.cb();
  return true;
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events && run_one()) ++count;
  return count;
}

}  // namespace hxsim::sim
