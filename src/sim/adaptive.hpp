// Per-hop adaptive routing for the packet simulator.
//
// The paper could not evaluate adaptive routing -- its QDR InfiniBand only
// forwards by static destination tables -- and names that the HyperX's
// missing piece: "The realistic choice for HyperX are adaptive routings,
// such as Valiant's algorithm (VAL) or UGAL, or the Dimensionally-Adaptive,
// Load-balanced (DAL) algorithm" (Section 6), and "future HyperX
// deployments use AR, making our static routing prototype obsolete"
// (footnote 3).  This module supplies that future-work piece in simulation:
//
//  - AdaptiveRouter: a per-hop candidate provider; the switch picks the
//    candidate with credits available and the shortest output queue
//    (congestion-look-ahead, as adaptive switches do);
//  - DalRouter: DAL for HyperX (Ahn et al.) -- per dimension, a packet may
//    take one non-minimal "deroute" hop when the minimal channel is
//    congested, at most one deroute per dimension;
//  - MinimalAdaptiveRouter: chooses adaptively among the minimal
//    dimension orders only (the UGAL-L "minimal" arm).
//
// Deadlock freedom uses VL escalation: a packet entering hop h travels on
// VL h.  Dependencies then only point from lower to higher VLs, so every
// lane's channel dependency graph is trivially acyclic; the longest DAL
// path in a 2-D HyperX is 4 hops, well within the 8 QDR lanes.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.hpp"
#include "topo/hyperx.hpp"
#include "topo/topology.hpp"

namespace hxsim::sim {

/// One routing option at a switch.
struct RouteCandidate {
  topo::ChannelId channel = topo::kInvalidChannel;
  /// True if the hop reduces the remaining distance (minimal direction).
  bool minimal = true;
};

/// Per-packet adaptive routing state carried across hops.
struct AdaptiveState {
  std::int8_t hops_taken = 0;
  /// Bit d set: the packet has already derouted in dimension d.
  std::uint8_t deroute_mask = 0;
  /// Router-private scratch (e.g. Valiant's intermediate switch).
  std::int32_t scratch = -1;
};

class AdaptiveRouter {
 public:
  virtual ~AdaptiveRouter() = default;
  AdaptiveRouter() = default;
  AdaptiveRouter(const AdaptiveRouter&) = delete;
  AdaptiveRouter& operator=(const AdaptiveRouter&) = delete;

  /// Appends the admissible out-channels at `sw` for a packet destined to
  /// terminal `dst`.  Never called when dst is attached to `sw` (ejection
  /// is unconditional).  `state` is the packet's history; routers may use
  /// its scratch field for per-packet decisions (e.g. VAL's intermediate).
  /// `rng` is the *engine-owned* per-run generator (seeded from rng_seed()
  /// and the replication index): randomized routers draw from it instead of
  /// holding mutable state, which keeps the router itself immutable and
  /// every replication reproducible from its seed alone.
  virtual void candidates(topo::SwitchId sw, topo::NodeId dst,
                          AdaptiveState& state,
                          std::vector<RouteCandidate>& out,
                          stats::Rng& rng) const = 0;

  /// Called when a candidate was chosen; updates the packet state.
  virtual void on_hop(const RouteCandidate& chosen,
                      AdaptiveState& state) const = 0;

  /// Upper bound on hops (for VL escalation); must be <= available VLs.
  [[nodiscard]] virtual std::int32_t max_hops() const = 0;

  /// Base seed for the engine's per-run candidate rng.  A run with
  /// replication index r draws from Rng(rng_seed() ^ (r * golden-ratio)),
  /// so run() (r = 0) reproduces the historical Rng(seed) stream exactly
  /// and every run_batch replication gets an independent, index-derived
  /// stream.  Deterministic routers may leave the default.
  [[nodiscard]] virtual std::uint64_t rng_seed() const noexcept { return 0; }

  /// True when candidates()/on_hop() leave the router itself unchanged, so
  /// many engine instances may drive one router concurrently and replication
  /// results are independent of execution order.  PktSim::run_batch and the
  /// workloads packet sweep require this.  All in-tree routers qualify
  /// (ValiantRouter draws from the engine-supplied rng); a custom router
  /// with mutable internal state must return false.
  [[nodiscard]] virtual bool replicable() const noexcept { return true; }
};

/// DAL (Dimensionally-Adaptive, Load-balanced) for an n-D HyperX.
/// Minimal candidates: the direct channel in every unaligned dimension.
/// Non-minimal candidates: any other channel of an unaligned dimension the
/// packet has not derouted in yet; after a deroute the dimension still
/// needs its minimal hop, so path length grows by one per deroute.
class DalRouter final : public AdaptiveRouter {
 public:
  /// The HyperX must outlive the router.  allow_deroute=false degrades
  /// DAL to minimal-adaptive (the ablation arm).
  explicit DalRouter(const topo::HyperX& hx, bool allow_deroute = true);

  void candidates(topo::SwitchId sw, topo::NodeId dst,
                  AdaptiveState& state,
                  std::vector<RouteCandidate>& out,
                  stats::Rng& rng) const override;
  void on_hop(const RouteCandidate& chosen,
              AdaptiveState& state) const override;
  [[nodiscard]] std::int32_t max_hops() const override;

 private:
  const topo::HyperX* hx_;
  bool allow_deroute_;
  /// channel -> (dimension, minimal per destination is dynamic); we keep
  /// the dimension of every switch-to-switch channel for on_hop().
  std::vector<std::int8_t> channel_dim_;
};

/// Minimal-adaptive router: DAL without the deroute arm.
[[nodiscard]] inline DalRouter make_minimal_adaptive(const topo::HyperX& hx) {
  return DalRouter(hx, /*allow_deroute=*/false);
}

/// Valiant's algorithm (VAL): every packet routes minimally to a uniformly
/// random intermediate switch, then minimally to the destination.  The
/// classic worst-case-oblivious load balancer the paper lists next to UGAL
/// and DAL -- it converts any traffic pattern into two uniform-random
/// phases at the price of doubling the average path length.
class ValiantRouter final : public AdaptiveRouter {
 public:
  explicit ValiantRouter(const topo::HyperX& hx, std::uint64_t seed = 1);

  void candidates(topo::SwitchId sw, topo::NodeId dst,
                  AdaptiveState& state,
                  std::vector<RouteCandidate>& out,
                  stats::Rng& rng) const override;
  void on_hop(const RouteCandidate& chosen,
              AdaptiveState& state) const override;
  [[nodiscard]] std::int32_t max_hops() const override;
  /// Intermediate draws come from the engine-owned per-run rng seeded from
  /// this value, so the router is immutable and replications independent.
  [[nodiscard]] std::uint64_t rng_seed() const noexcept override {
    return seed_;
  }

 private:
  /// Minimal candidates from `sw` toward `target` (per unaligned dim).
  void minimal_toward(topo::SwitchId sw, topo::SwitchId target,
                      std::vector<RouteCandidate>& out) const;

  const topo::HyperX* hx_;
  std::uint64_t seed_;  // base seed for per-packet intermediate draws
};

}  // namespace hxsim::sim
