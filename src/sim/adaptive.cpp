#include "sim/adaptive.hpp"

#include <stdexcept>

namespace hxsim::sim {

DalRouter::DalRouter(const topo::HyperX& hx, bool allow_deroute)
    : hx_(&hx), allow_deroute_(allow_deroute) {
  if (hx.num_dims() > 8)
    throw std::invalid_argument("DalRouter: deroute mask supports <= 8 dims");
  // Record each switch-to-switch channel's dimension for on_hop().
  channel_dim_.assign(static_cast<std::size_t>(hx.topo().num_channels()), -1);
  for (topo::SwitchId sw = 0; sw < hx.topo().num_switches(); ++sw) {
    for (std::int8_t d = 0; d < hx.num_dims(); ++d) {
      for (std::int32_t v = 0; v < hx.dim_size(d); ++v) {
        const topo::ChannelId ch = hx.dim_channel(sw, d, v);
        if (ch != topo::kInvalidChannel)
          channel_dim_[static_cast<std::size_t>(ch)] = d;
      }
    }
  }
}

void DalRouter::candidates(topo::SwitchId sw, topo::NodeId dst,
                           AdaptiveState& state,
                           std::vector<RouteCandidate>& out,
                           stats::Rng& /*rng*/) const {
  const topo::SwitchId target = hx_->topo().attach_switch(dst);
  for (std::int8_t d = 0; d < hx_->num_dims(); ++d) {
    const std::int32_t own = hx_->coord(sw, d);
    const std::int32_t want = hx_->coord(target, d);
    if (own == want) continue;  // dimension aligned

    // Minimal: straight to the target coordinate.
    const topo::ChannelId direct = hx_->dim_channel(sw, d, want);
    if (direct != topo::kInvalidChannel &&
        hx_->topo().channel(direct).enabled)
      out.push_back(RouteCandidate{direct, true});

    // Non-minimal: any other coordinate of this dimension, once per
    // dimension (DAL's derouting rule).
    if (!allow_deroute_ || (state.deroute_mask & (1U << d)) != 0) continue;
    for (std::int32_t v = 0; v < hx_->dim_size(d); ++v) {
      if (v == own || v == want) continue;
      const topo::ChannelId ch = hx_->dim_channel(sw, d, v);
      if (ch != topo::kInvalidChannel && hx_->topo().channel(ch).enabled)
        out.push_back(RouteCandidate{ch, false});
    }
  }
}

void DalRouter::on_hop(const RouteCandidate& chosen,
                       AdaptiveState& state) const {
  ++state.hops_taken;
  if (!chosen.minimal) {
    const std::int8_t d =
        channel_dim_[static_cast<std::size_t>(chosen.channel)];
    state.deroute_mask |= static_cast<std::uint8_t>(1U << d);
  }
}

std::int32_t DalRouter::max_hops() const {
  // One minimal hop per dimension plus at most one deroute per dimension.
  return hx_->num_dims() * (allow_deroute_ ? 2 : 1);
}

ValiantRouter::ValiantRouter(const topo::HyperX& hx, std::uint64_t seed)
    : hx_(&hx), seed_(seed) {}

void ValiantRouter::minimal_toward(topo::SwitchId sw, topo::SwitchId target,
                                   std::vector<RouteCandidate>& out) const {
  for (std::int8_t d = 0; d < hx_->num_dims(); ++d) {
    const std::int32_t own = hx_->coord(sw, d);
    const std::int32_t want = hx_->coord(target, d);
    if (own == want) continue;
    const topo::ChannelId ch = hx_->dim_channel(sw, d, want);
    if (ch != topo::kInvalidChannel && hx_->topo().channel(ch).enabled)
      out.push_back(RouteCandidate{ch, true});
  }
}

void ValiantRouter::candidates(topo::SwitchId sw, topo::NodeId dst,
                               AdaptiveState& state,
                               std::vector<RouteCandidate>& out,
                               stats::Rng& rng) const {
  constexpr std::int32_t kPhaseTwo = -2;
  if (state.scratch == -1) {
    // First switch: draw the intermediate uniformly over all switches.
    state.scratch = static_cast<std::int32_t>(rng.next_below(
        static_cast<std::uint64_t>(hx_->topo().num_switches())));
  }
  if (state.scratch >= 0 && state.scratch == sw)
    state.scratch = kPhaseTwo;  // reached the intermediate
  const topo::SwitchId target =
      state.scratch >= 0 ? state.scratch : hx_->topo().attach_switch(dst);
  minimal_toward(sw, target, out);
  if (out.empty() && state.scratch >= 0) {
    // The intermediate became unreachable (faults): fall through to the
    // destination phase.
    state.scratch = kPhaseTwo;
    minimal_toward(sw, hx_->topo().attach_switch(dst), out);
  }
}

void ValiantRouter::on_hop(const RouteCandidate& /*chosen*/,
                           AdaptiveState& state) const {
  ++state.hops_taken;
}

std::int32_t ValiantRouter::max_hops() const {
  // Two minimal segments of at most num_dims hops each.
  return 2 * hx_->num_dims();
}

}  // namespace hxsim::sim
