// Link and switch timing constants for the QDR InfiniBand substrate.
//
// QDR 4X signals at 40 Gb/s; 8b/10b coding leaves 32 Gb/s of data rate, and
// transport/framing overhead brings the observable payload bandwidth to
// ~3 GiB/s -- consistent with the 0-3 GiB/s scale of the paper's Figure 1
// heatmaps.  Per-hop latency bundles the switch crossing (~100 ns on the
// Voltaire gear) with wire propagation.
#pragma once

#include <cstdint>

namespace hxsim::sim {

struct LinkModel {
  /// Effective payload bandwidth per channel direction [bytes/s].
  double bandwidth = 3.2e9;
  /// Per switch-hop latency (switch crossing + cable) [s].
  double hop_latency = 140e-9;
  /// Maximum transfer unit for packet segmentation [bytes].
  std::int32_t mtu = 2048;
};

/// Serialization time of `bytes` on one channel.
[[nodiscard]] constexpr double serialization_time(const LinkModel& link,
                                                  std::int64_t bytes) noexcept {
  return static_cast<double>(bytes) / link.bandwidth;
}

}  // namespace hxsim::sim
