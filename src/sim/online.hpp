// Online-fault configuration for the packet engine: mid-run link failures,
// routing-epoch swaps, and end-host timeout/retry.
//
// The resilience pipeline historically modelled faults *between* runs:
// apply a FaultSchedule stage, recompute LFTs, re-solve -- no packet was
// ever in flight when a link died.  Camarero et al. (arXiv:2404.04315)
// show the interesting degradation happens in the transient: stale tables
// blackhole or loop traffic until updated routes propagate.  This header
// is the data model for that transient, consumed by both PktSim engines
// (bit-identically -- the typed/reference differential applies to every
// online feature):
//
//  - PktTimedFault: a set of directed channels that die at one instant.
//    At the fault time the channel stops accepting and transmitting:
//    packets on the wire are dropped (PktDropCause::kInFlight), queued
//    packets are re-arbitrated through the live fabric, and held credits
//    are returned so upstream arbitration continues.
//  - PktRoutingEpoch: one generation of forwarding state.  Epoch 0 is
//    installed everywhere from t = 0; each later epoch carries a
//    *per-switch* install time (the repaired LFT propagating through the
//    subnet manager's sweep), so between the fault and the install a
//    switch still forwards by the stale table -- the blackhole / transient
//    loop window, bounded by PktOnlineConfig::ttl_hops.
//  - PktRetryConfig: the end-host reliability model.  Each message arms a
//    timeout per transmission attempt; on expiry the unacknowledged
//    remainder is retransmitted after exponential backoff with seeded
//    jitter (stats::Rng -- replicable across run_batch threads), up to
//    max_retries, after which the flow gives up (kAbandoned).
//
// The off switch is a contract: a PktOnlineConfig with no faults, no
// epochs, and retry disabled -- or no config at all -- leaves every run
// bit-identical to the pre-online engine and allocation-free on warm runs.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/forwarding.hpp"
#include "routing/lid_space.hpp"
#include "topo/fault_injector.hpp"
#include "topo/topology.hpp"

namespace hxsim::sim {

/// Channels that die mid-run at `time`.  Both directions of a failing
/// cable must be listed (timed_faults() derives them from a FaultReport's
/// disabled_channels shape).
struct PktTimedFault {
  double time = 0.0;
  std::vector<topo::ChannelId> channels;
};

/// One generation of forwarding state.  Tables/VLs are borrowed (the
/// caller keeps the RouteResult alive for the run).
struct PktRoutingEpoch {
  const routing::ForwardingTables* tables = nullptr;
  /// Optional: per-destination VL assignment; packets fall back to their
  /// message VL when null.
  const routing::VlMap* vls = nullptr;
  /// Per-switch install timestamp [s]; empty = installed from t = 0
  /// (mandatory for epoch 0).  A switch forwards by the highest epoch
  /// whose install time has passed.
  std::vector<double> install_time;
};

/// End-host timeout/retry model.
struct PktRetryConfig {
  bool enabled = false;
  /// Time after an attempt's injection before the unacknowledged
  /// remainder is declared lost [s].
  double timeout = 1e-3;
  /// Backoff before retry k (1-based) is base * 2^(k-1) * (1 + jitter*u),
  /// u drawn uniformly from the engine's retry Rng in event order.
  double backoff_base = 1e-5;
  double jitter = 0.5;
  /// Attempts beyond the first; exhausted => the flow is abandoned.
  std::int32_t max_retries = 4;
  /// Base seed of the retry jitter stream; replication r draws from
  /// Rng(seed ^ (r * golden-ratio)), mirroring the adaptive-router rule,
  /// so run_batch replications are independent and thread-count invariant.
  std::uint64_t seed = 1;
};

struct PktOnlineConfig {
  /// Time-ordered is not required; the engine schedules each fault as an
  /// event at its timestamp.  Fault events sort before same-time injects.
  std::vector<PktTimedFault> faults;
  /// Forwarding epochs for *table-routed* messages (path-less messages
  /// without an adaptive router are forwarded hop-by-hop through the
  /// active epoch's LFT).  Empty: no table routing, faults and retry
  /// still apply to static-path and adaptive traffic.
  std::vector<PktRoutingEpoch> epochs;
  /// Required when epochs are present: destination terminal -> LID.
  const routing::LidSpace* lids = nullptr;
  /// Switch-visit budget for table-routed packets; exceeded => dropped
  /// with PktDropCause::kTtl (bounds transient routing loops).
  std::int32_t ttl_hops = 64;
  PktRetryConfig retry;

  /// True when attaching this config can change any simulation result.
  [[nodiscard]] bool active() const noexcept {
    return !faults.empty() || !epochs.empty() || retry.enabled;
  }
  [[nodiscard]] bool table_routed() const noexcept { return !epochs.empty(); }
};

/// Converts the schedule's *timed* stages (at_time >= 0) into the engine's
/// fault feed: one PktTimedFault per timed stage, listing both directions
/// of every cable the stage disables.  Untimed stages are skipped (they
/// remain the between-runs campaign model).
[[nodiscard]] std::vector<PktTimedFault> timed_faults(
    const topo::Topology& topo, const topo::FaultSchedule& schedule);

/// Validates `online` against the run's fabric; throws std::invalid_argument
/// on out-of-range channels, missing tables/lids, non-finite or negative
/// times, or nonsensical retry parameters.  PktSim's constructor calls this.
void validate_online(const topo::Topology& topo, const PktOnlineConfig& online,
                     std::int32_t num_vls);

}  // namespace hxsim::sim
