// NetworkModel: the facade the MPI layer drives.
//
// A transport round is a set of routed messages that start simultaneously;
// the model returns each message's network completion time (software
// overheads are the MPI layer's business).  Two implementations:
//  - FlowModel: max-min fluid bandwidth sharing + per-hop latency; exact
//    for the bandwidth-dominated regime and very fast.
//  - PacketModel: full packet simulation (VLs, credits, arbitration);
//    captures latency effects and deadlocks, slower.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "sim/flowsim.hpp"
#include "sim/pktsim.hpp"
#include "topo/topology.hpp"

namespace hxsim::sim {

struct NetMessage {
  topo::NodeId src = topo::kInvalidNode;
  topo::NodeId dst = topo::kInvalidNode;
  std::int64_t bytes = 0;
  /// Routed path (terminal-up ... switch-terminal); empty for self-sends.
  std::vector<topo::ChannelId> path;
  std::int8_t vl = 0;
};

class NetworkModel {
 public:
  virtual ~NetworkModel() = default;
  NetworkModel() = default;
  NetworkModel(const NetworkModel&) = delete;
  NetworkModel& operator=(const NetworkModel&) = delete;

  /// Completion time [s] per message, all starting at t = 0.
  [[nodiscard]] virtual std::vector<double> run(
      std::span<const NetMessage> messages) = 0;

  [[nodiscard]] virtual const LinkModel& link() const = 0;
};

class FlowModel final : public NetworkModel {
 public:
  explicit FlowModel(const topo::Topology& topo, LinkModel link = {});

  [[nodiscard]] std::vector<double> run(
      std::span<const NetMessage> messages) override;
  [[nodiscard]] const LinkModel& link() const override {
    return flows_.link();
  }

  [[nodiscard]] FlowSim& flow_sim() noexcept { return flows_; }

 private:
  FlowSim flows_;
};

class PacketModel final : public NetworkModel {
 public:
  explicit PacketModel(const topo::Topology& topo, PktSimConfig config = {});

  /// Throws std::runtime_error on deadlock (callers wanting to *observe*
  /// deadlocks use PktSim directly).
  [[nodiscard]] std::vector<double> run(
      std::span<const NetMessage> messages) override;
  [[nodiscard]] const LinkModel& link() const override {
    return config_.link;
  }

 private:
  const topo::Topology* topo_;
  PktSimConfig config_;
  /// Warm engine: scratch (event heap, pool, channel arrays) persists
  /// across transport rounds, so repeated run() calls are allocation-free
  /// in the engine steady state.
  PktSim sim_;
  std::vector<PktMessage> pkts_;  // per-round message buffer, reused
};

}  // namespace hxsim::sim
