#include "sim/network_model.hpp"

#include <stdexcept>

namespace hxsim::sim {

FlowModel::FlowModel(const topo::Topology& topo, LinkModel link)
    : flows_(topo, link) {}

std::vector<double> FlowModel::run(std::span<const NetMessage> messages) {
  std::vector<Flow> flows;
  flows.reserve(messages.size());
  for (const NetMessage& m : messages)
    flows.push_back(Flow{m.path, m.bytes});
  std::vector<double> done = flows_.completion_times(flows);
  // Add pipeline latency: the tail of the flow arrives one path traversal
  // after the last byte left the source.
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const auto hops = static_cast<double>(messages[i].path.size());
    done[i] += hops * flows_.link().hop_latency;
  }
  return done;
}

PacketModel::PacketModel(const topo::Topology& topo, PktSimConfig config)
    : topo_(&topo), config_(config), sim_(topo, config) {}

std::vector<double> PacketModel::run(std::span<const NetMessage> messages) {
  pkts_.clear();
  pkts_.reserve(messages.size());
  for (const NetMessage& m : messages)
    pkts_.push_back(PktMessage{m.src, m.dst, m.bytes, m.path, m.vl, 0.0});
  PktSim::Result result = sim_.run(pkts_);
  if (result.deadlock)
    throw std::runtime_error("PacketModel: routing deadlock detected\n" +
                             result.deadlock_report.to_string(topo_));
  return std::move(result.completion);
}

}  // namespace hxsim::sim
