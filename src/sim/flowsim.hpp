// Max-min fair flow-level network simulator.
//
// Statically routed InfiniBand traffic under sustained load converges to a
// per-link fair share; FlowSim computes the exact max-min allocation by
// progressive filling and advances the flow set through completion events,
// yielding per-flow completion times.  This is the engine behind the
// bandwidth-dominated experiments (Figure 1 heatmaps, eBB, large-message
// collectives): congestion arises purely from routed paths sharing
// channels, which is the effect the paper studies.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "obs/flow_trace.hpp"
#include "sim/link_model.hpp"
#include "topo/topology.hpp"

namespace hxsim::sim {

struct Flow {
  /// Channels traversed in order (terminal and switch channels alike share
  /// capacity).
  ///
  /// An empty path is a *self-send*: the flow consumes no network resource
  /// regardless of `bytes`.  Defined semantics (matching PktSim, which
  /// completes self-send messages at their inject_time): fair_rates()
  /// reports +inf, completion_times() reports completion at injection,
  /// i.e. t = 0.  Zero-byte flows likewise complete at t = 0.
  std::vector<topo::ChannelId> channels;
  std::int64_t bytes = 0;
};

class FlowSim {
 public:
  explicit FlowSim(const topo::Topology& topo, LinkModel link = {});

  /// Override one channel's capacity [bytes/s].
  void set_capacity(topo::ChannelId ch, double bytes_per_s);

  [[nodiscard]] const LinkModel& link() const noexcept { return link_; }

  /// Reusable progressive-filling state.  One per worker thread; passing
  /// the same scratch to repeated solves removes every per-call heap
  /// allocation except the returned rate vector.
  struct SolveScratch {
    std::vector<std::int32_t> local_of;
    std::vector<topo::ChannelId> used;
    std::vector<char> frozen;
    std::vector<double> frozen_load;
    std::vector<std::int32_t> unfrozen_count;
    std::vector<char> saturated;
    /// Local indices of channels still carrying unfrozen flows; compacted
    /// after each filling level so late levels scan only live channels.
    std::vector<std::int32_t> worklist;
    /// First-saturation marks for trace recording (sized only when a solve
    /// actually traces, but persistent so traced solves stay
    /// allocation-free too).
    std::vector<char> ever_saturated;
    std::vector<char> active;  // used by the batch driver
  };

  /// Steady-state max-min fair rates [bytes/s] for the given flow set
  /// (bytes fields are ignored; zero-length paths get +inf).  When `trace`
  /// is given, one obs::FlowSolveRecord is appended describing the solve
  /// (levels, freezes, saturated channels); tracing never changes the
  /// rates.
  [[nodiscard]] std::vector<double> fair_rates(
      std::span<const Flow> flows,
      obs::FlowSolveTrace* trace = nullptr) const;

  /// fair_rates() for many *independent* flow sets (mpiGraph shift
  /// rounds, eBB permutation samples), solved concurrently on `threads`
  /// workers (0: exec::default_threads()) with per-worker scratch.  Each
  /// set's allocation is computed in isolation, exactly as a fair_rates()
  /// loop would, so the output is thread-count-invariant.  solve_batch
  /// does not take a solver trace (a shared sink would race across
  /// workers); trace individual sets through fair_rates() instead.
  [[nodiscard]] std::vector<std::vector<double>> solve_batch(
      std::span<const std::vector<Flow>> flow_sets,
      std::int32_t threads = 0) const;

  /// fair_rates() restricted to the `active` subset of `flows` (same
  /// length; rate entries of inactive flows are left untouched and their
  /// paths are neither validated nor inspected).  This is the fault-stage
  /// reuse entry point: a campaign keeps one Flow vector per traffic set
  /// alive across stages, deactivates pairs whose destination became
  /// unreachable (their slots may hold stale paths over dead cables), and
  /// re-solves in place.  Rates over the active subset are bit-identical
  /// to fair_rates() on a compacted copy.  `scratch` is caller-owned and
  /// reusable across solves and stages.
  void solve_active(std::span<const Flow> flows, std::span<const char> active,
                    std::span<double> rate, SolveScratch& scratch,
                    obs::FlowSolveRecord* record = nullptr) const;

  /// Completion time of each flow when all start at t = 0 and rates are
  /// re-allocated max-min fairly whenever a flow finishes.  Self-send and
  /// zero-byte flows complete at injection (t = 0; see Flow::channels).
  /// When `trace` is given, one record is appended per reallocation round.
  [[nodiscard]] std::vector<double> completion_times(
      std::span<const Flow> flows,
      obs::FlowSolveTrace* trace = nullptr) const;

  /// Utilisation [0, 1] per channel under the steady-state allocation
  /// (diagnostics; same flow-set semantics as fair_rates).
  [[nodiscard]] std::vector<double> channel_utilisation(
      std::span<const Flow> flows,
      obs::FlowSolveTrace* trace = nullptr) const;

  /// Capacity (bytes/s) of one channel -- the denominator of the max-min
  /// invariants (sum of rates on a channel may not exceed this).
  [[nodiscard]] double capacity(topo::ChannelId ch) const {
    return capacity_[static_cast<std::size_t>(ch)];
  }

 private:
  /// Degraded-fabric guard shared by the public entry points: throws
  /// std::invalid_argument (naming the flow index) when a flow crosses a
  /// disabled or unknown channel -- a stale path routed before fault
  /// injection must be re-routed, not solved.
  void validate(std::span<const Flow> flows) const;
  /// validate() over the active subset only (inactive slots may carry
  /// stale paths by design; see solve_active).
  void validate_active(std::span<const Flow> flows,
                       std::span<const char> active) const;

  /// Max-min over a subset of flows (active[i] selects), writing rates.
  /// `record`, when non-null, captures the solve's convergence trace.
  void solve(std::span<const Flow> flows, std::span<const char> active,
             std::span<double> rate, SolveScratch& scratch,
             obs::FlowSolveRecord* record = nullptr) const;

  const topo::Topology* topo_;
  LinkModel link_;
  std::vector<double> capacity_;
};

}  // namespace hxsim::sim
