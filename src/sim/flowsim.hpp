// Max-min fair flow-level network simulator.
//
// Statically routed InfiniBand traffic under sustained load converges to a
// per-link fair share; FlowSim computes the exact max-min allocation by
// progressive filling and advances the flow set through completion events,
// yielding per-flow completion times.  This is the engine behind the
// bandwidth-dominated experiments (Figure 1 heatmaps, eBB, large-message
// collectives): congestion arises purely from routed paths sharing
// channels, which is the effect the paper studies.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "obs/flow_trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/link_model.hpp"
#include "topo/topology.hpp"

namespace hxsim::sim {

struct Flow {
  /// Channels traversed in order (terminal and switch channels alike share
  /// capacity).
  ///
  /// An empty path is a *self-send*: the flow consumes no network resource
  /// regardless of `bytes`.  Defined semantics (matching PktSim, which
  /// completes self-send messages at their inject_time): fair_rates()
  /// reports +inf, completion_times() reports completion at injection,
  /// i.e. t = 0.  Zero-byte flows likewise complete at t = 0.
  std::vector<topo::ChannelId> channels;
  std::int64_t bytes = 0;
};

class FlowSim {
 public:
  /// Max-min core selection.  kIndexed (default) propagates saturation
  /// through CSR flow<->channel incidence and a keyed lazy min-heap of
  /// channel fill quotients, touching only flows incident to newly
  /// saturated channels per filling round; kReference is the original
  /// full-rescan progressive filler, kept verbatim as the always-verified
  /// oracle.  The two are *bitwise* identical -- rates and FlowSolveRecord
  /// output alike -- a contract pinned by tests/flowsim_golden_test.cpp,
  /// the fuzz-audit flowsim_engine_identity oracle, and the
  /// bench/flowsim_scaling check mode.
  enum class SolverEngine : std::int8_t { kIndexed, kReference };

  explicit FlowSim(const topo::Topology& topo, LinkModel link = {},
                   SolverEngine engine = SolverEngine::kIndexed);

  /// Override one channel's capacity [bytes/s].
  void set_capacity(topo::ChannelId ch, double bytes_per_s);

  [[nodiscard]] const LinkModel& link() const noexcept { return link_; }

  [[nodiscard]] SolverEngine engine() const noexcept { return engine_; }
  void set_engine(SolverEngine engine) noexcept { engine_ = engine; }

  /// Reusable progressive-filling state.  One per worker thread; passing
  /// the same scratch to repeated solves removes every per-call heap
  /// allocation: a warm kIndexed solve through solve_active performs ZERO
  /// heap allocations (enforced by tests/flowsim_alloc_test.cpp with a
  /// counting global operator new).
  struct SolveScratch {
    std::vector<std::int32_t> local_of;
    std::vector<topo::ChannelId> used;
    std::vector<char> frozen;
    std::vector<double> frozen_load;
    std::vector<std::int32_t> unfrozen_count;
    std::vector<char> saturated;
    /// Local indices of channels still carrying unfrozen flows; compacted
    /// after each filling level so late levels scan only live channels
    /// (kReference only; kIndexed tracks liveness through the heap).
    std::vector<std::int32_t> worklist;
    /// First-saturation marks for trace recording (sized only when a solve
    /// actually traces, but persistent so traced solves stay
    /// allocation-free too).
    std::vector<char> ever_saturated;
    std::vector<char> active;  // used by the batch driver

    // --- kIndexed state (see "Flow-solver internals" in ARCHITECTURE.md).
    /// CSR flow -> local-channel incidence: flow f's channels (as local
    /// indices, in path order) live in flow_ch[flow_off[f]..flow_off[f+1]).
    std::vector<std::int32_t> flow_off;
    std::vector<std::int32_t> flow_ch;
    /// CSR local-channel -> flow incidence: channel c's incident flows (in
    /// ascending flow order, with multiplicity) live in
    /// chan_flow[chan_off[c]..chan_off[c+1]).
    std::vector<std::int32_t> chan_off;
    std::vector<std::int32_t> chan_flow;
    std::vector<std::int32_t> chan_cursor;  // CSR fill cursors
    /// Heap-entry invalidation: an entry is live iff its tag's version
    /// matches; every quotient change bumps the version and pushes a fresh
    /// entry, stale ones are discarded at pop time.
    std::vector<std::uint32_t> version;
    std::vector<std::int32_t> dirty;  // channels touched this round
    std::vector<char> dirty_mark;
    std::vector<std::int32_t> sat_chans;    // channels saturated this round
    std::vector<std::int32_t> candidates;   // flows incident to them
    std::vector<char> candidate_mark;
    /// Channel fill quotients (capacity - frozen_load) / unfrozen_count in
    /// a keyed lazy min-heap (the FlatEventHeap 4-ary layout).
    FlatKeyHeap quotients;
  };

  /// Steady-state max-min fair rates [bytes/s] for the given flow set
  /// (bytes fields are ignored; zero-length paths get +inf).  When `trace`
  /// is given, one obs::FlowSolveRecord is appended describing the solve
  /// (levels, freezes, saturated channels); tracing never changes the
  /// rates.
  ///
  /// Solves on the engine-owned warm scratch (like completion_times and
  /// channel_utilisation), so sweep loops stop re-warming per call; these
  /// convenience entry points therefore must not run concurrently on one
  /// FlowSim -- concurrent callers go through solve_batch (per-worker
  /// scratch) or solve_active (caller-owned scratch).
  [[nodiscard]] std::vector<double> fair_rates(
      std::span<const Flow> flows,
      obs::FlowSolveTrace* trace = nullptr) const;

  /// fair_rates() for many *independent* flow sets (mpiGraph shift
  /// rounds, eBB permutation samples), solved concurrently on `threads`
  /// workers (0: exec::default_threads()) with per-worker scratch.  Each
  /// set's allocation is computed in isolation, exactly as a fair_rates()
  /// loop would, so the output is thread-count-invariant.  solve_batch
  /// does not take a solver trace (a shared sink would race across
  /// workers); trace individual sets through fair_rates() instead.
  [[nodiscard]] std::vector<std::vector<double>> solve_batch(
      std::span<const std::vector<Flow>> flow_sets,
      std::int32_t threads = 0) const;

  /// fair_rates() restricted to the `active` subset of `flows` (same
  /// length; rate entries of inactive flows are left untouched and their
  /// paths are neither validated nor inspected).  This is the fault-stage
  /// reuse entry point: a campaign keeps one Flow vector per traffic set
  /// alive across stages, deactivates pairs whose destination became
  /// unreachable (their slots may hold stale paths over dead cables), and
  /// re-solves in place.  Rates over the active subset are bit-identical
  /// to fair_rates() on a compacted copy.  `scratch` is caller-owned and
  /// reusable across solves and stages.
  void solve_active(std::span<const Flow> flows, std::span<const char> active,
                    std::span<double> rate, SolveScratch& scratch,
                    obs::FlowSolveRecord* record = nullptr) const;

  /// Completion time of each flow when all start at t = 0 and rates are
  /// re-allocated max-min fairly whenever a flow finishes.  Self-send and
  /// zero-byte flows complete at injection (t = 0; see Flow::channels).
  /// When `trace` is given, one record is appended per reallocation round.
  [[nodiscard]] std::vector<double> completion_times(
      std::span<const Flow> flows,
      obs::FlowSolveTrace* trace = nullptr) const;

  /// Utilisation [0, 1] per channel under the steady-state allocation
  /// (diagnostics; same flow-set semantics as fair_rates).
  [[nodiscard]] std::vector<double> channel_utilisation(
      std::span<const Flow> flows,
      obs::FlowSolveTrace* trace = nullptr) const;

  /// Capacity (bytes/s) of one channel -- the denominator of the max-min
  /// invariants (sum of rates on a channel may not exceed this).
  [[nodiscard]] double capacity(topo::ChannelId ch) const {
    return capacity_[static_cast<std::size_t>(ch)];
  }

 private:
  /// Degraded-fabric guard shared by the public entry points: throws
  /// std::invalid_argument (naming the flow index) when a flow crosses a
  /// disabled or unknown channel -- a stale path routed before fault
  /// injection must be re-routed, not solved.
  void validate(std::span<const Flow> flows) const;
  /// validate() over the active subset only (inactive slots may carry
  /// stale paths by design; see solve_active).
  void validate_active(std::span<const Flow> flows,
                       std::span<const char> active) const;

  /// Max-min over a subset of flows (active[i] selects), writing rates.
  /// `record`, when non-null, captures the solve's convergence trace.
  /// Dispatches on engine(); both paths produce bit-identical output.
  void solve(std::span<const Flow> flows, std::span<const char> active,
             std::span<double> rate, SolveScratch& scratch,
             obs::FlowSolveRecord* record = nullptr) const;

  /// The seed progressive filler: every filling round rescans all flows
  /// (and every hop of each flow) -- O(rounds x flows x path).  Oracle.
  void solve_reference(std::span<const Flow> flows,
                       std::span<const char> active, std::span<double> rate,
                       SolveScratch& scratch,
                       obs::FlowSolveRecord* record) const;

  /// The indexed engine: saturation propagated through CSR incidence, fill
  /// quotients in a keyed lazy min-heap, per round touching only flows
  /// incident to newly saturated channels.  Bit-identical to the
  /// reference; see the .cpp for the FP-order argument.
  void solve_indexed(std::span<const Flow> flows,
                     std::span<const char> active, std::span<double> rate,
                     SolveScratch& scratch,
                     obs::FlowSolveRecord* record) const;

  const topo::Topology* topo_;
  LinkModel link_;
  std::vector<double> capacity_;
  SolverEngine engine_ = SolverEngine::kIndexed;
  /// Warm scratch backing the serial convenience entry points
  /// (fair_rates / completion_times / channel_utilisation); persists
  /// across calls so sweep loops stop re-warming every iteration.
  mutable SolveScratch scratch_;
};

}  // namespace hxsim::sim
