// Discrete-event cores.
//
// Two implementations share the same ordering contract -- events at equal
// timestamps run in scheduling order (a monotone sequence number breaks
// ties), which keeps simulations deterministic:
//
//  - EventQueue: a time-ordered queue of type-erased callbacks.  Flexible
//    (any lambda), but every entry carries a std::function and the binary
//    heap shuffles those fat entries around.  Kept as the reference core
//    for the seed packet engine and for tests.
//  - FlatEventHeap<Payload>: a typed core for hot simulators.  Entries are
//    {when, seq, Payload} PODs in one flat 4-ary implicit heap; the owner
//    dispatches the popped payload itself (a switch over an event-kind
//    tag).  reserve() ahead of a run and the steady state performs zero
//    heap allocations per event; capacity persists across reset(), so a
//    warm engine never re-reserves.  The 4-ary layout trades slightly more
//    comparisons per level for half the levels and contiguous child
//    groups, which is a clear win once entries are small PODs.
#pragma once

#include <cstdint>
#include <cstddef>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

namespace hxsim::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `when` (must be >= now()).
  void schedule(double when, Callback cb);

  /// Convenience: schedule at now() + delay.
  void schedule_in(double delay, Callback cb) { schedule(now_ + delay, std::move(cb)); }

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Pops and runs the earliest event; returns false when idle.
  bool run_one();

  /// Runs until the queue drains or `max_events` fire; returns events run.
  std::size_t run(std::size_t max_events = SIZE_MAX);

 private:
  struct Entry {
    double when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

namespace detail {

/// The shared flat 4-ary implicit-heap core: contiguous `Entry` records
/// ordered by `Earlier` (a strict total order -- every user breaks key
/// ties with a monotone or caller-controlled secondary field, so pops are
/// deterministic).  FlatEventHeap adds simulation-clock semantics on top;
/// FlatKeyHeap adds re-keyable priorities (the flow solver's channel
/// quotients).  Storage is reserved ahead and kept across clear(), so a
/// warm heap performs zero allocations per push/pop in the steady state.
template <typename Entry, typename Earlier>
class Flat4Heap {
 public:
  void reserve(std::size_t entries) { heap_.reserve(entries); }
  void clear() noexcept { heap_.clear(); }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return heap_.capacity();
  }

  /// The earliest entry.  Precondition: !empty().
  [[nodiscard]] const Entry& top() const noexcept { return heap_.front(); }

  void push(const Entry& e) {
    heap_.push_back(e);
    sift_up(heap_.size() - 1);
  }

  /// Removes and returns the earliest entry.  Precondition: !empty().
  Entry pop() {
    const Entry top = heap_.front();
    const Entry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = last;
      sift_down(0);
    }
    return top;
  }

 private:
  [[nodiscard]] static bool earlier(const Entry& a, const Entry& b) noexcept {
    return Earlier{}(a, b);
  }

  void sift_up(std::size_t i) noexcept {
    const Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void sift_down(std::size_t i) noexcept {
    const Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < last; ++c)
        if (earlier(heap_[c], heap_[best])) best = c;
      if (!earlier(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  std::vector<Entry> heap_;
};

}  // namespace detail

/// Typed allocation-free event core (see the header comment).  Payload must
/// be cheaply copyable (a small POD event record).  Ordering is identical
/// to EventQueue: strictly by (when, seq), so any two cores fed the same
/// schedule() sequence pop in the same order -- the property the packet
/// engine's golden bit-identity suite rests on.
template <typename Payload>
class FlatEventHeap {
 public:
  /// Pre-sizes the entry store; with `events` >= the peak pending count,
  /// schedule() never allocates.
  void reserve(std::size_t events) { heap_.reserve(events); }

  /// Drops all pending events and rewinds the clock; capacity is kept, so
  /// a reset heap is warm for the next run.
  void reset() noexcept {
    heap_.clear();
    now_ = 0.0;
    next_seq_ = 0;
  }

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return heap_.capacity();
  }

  /// Schedules `payload` at absolute time `when`.  Enforces the contract
  /// the callback queue documents: `when` must be >= now().  The negated
  /// comparison also rejects NaN timestamps, which would silently corrupt
  /// the heap order.
  void schedule(double when, const Payload& payload) {
    if (!(when >= now_))
      throw std::invalid_argument(
          "FlatEventHeap::schedule: event in the past (or NaN time)");
    heap_.push(Entry{when, next_seq_++, payload});
  }

  /// Convenience: schedule at now() + delay.
  void schedule_in(double delay, const Payload& payload) {
    schedule(now_ + delay, payload);
  }

  /// Pops the earliest event, advances now() to its timestamp, and returns
  /// its payload.  Precondition: !empty().
  Payload pop() {
    const Entry top = heap_.pop();
    now_ = top.when;
    return top.payload;
  }

 private:
  struct Entry {
    double when;
    std::uint64_t seq;
    Payload payload;
  };
  struct EarlierEntry {
    [[nodiscard]] bool operator()(const Entry& a,
                                  const Entry& b) const noexcept {
      if (a.when != b.when) return a.when < b.when;
      return a.seq < b.seq;
    }
  };

  detail::Flat4Heap<Entry, EarlierEntry> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

/// Keyed min-heap on the same flat 4-ary core as FlatEventHeap, ordered by
/// (key, tag).  No clock, no monotonicity requirement: unlike event
/// timestamps, keys may go up as well as down across pushes -- the flow
/// solver's channel fill quotients do exactly that as freezes land.  The
/// 64-bit tag carries the caller's payload *and* is the deterministic
/// tie-break (the role seq plays in FlatEventHeap); re-keying is done
/// lazily by pushing a fresh entry under a new tag and discarding stale
/// tags at pop time (the caller owns the validity test).
class FlatKeyHeap {
 public:
  struct Entry {
    double key;
    std::uint64_t tag;
  };

  void reserve(std::size_t entries) { heap_.reserve(entries); }
  void clear() noexcept { heap_.clear(); }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return heap_.capacity();
  }

  /// The minimum entry.  Precondition: !empty().
  [[nodiscard]] const Entry& top() const noexcept { return heap_.top(); }

  void push(double key, std::uint64_t tag) { heap_.push(Entry{key, tag}); }

  /// Removes and returns the minimum entry.  Precondition: !empty().
  Entry pop() { return heap_.pop(); }

 private:
  struct EarlierEntry {
    [[nodiscard]] bool operator()(const Entry& a,
                                  const Entry& b) const noexcept {
      if (a.key != b.key) return a.key < b.key;
      return a.tag < b.tag;
    }
  };

  detail::Flat4Heap<Entry, EarlierEntry> heap_;
};

}  // namespace hxsim::sim
