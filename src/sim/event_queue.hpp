// Discrete-event core: a time-ordered queue of callbacks.
//
// Events at equal timestamps run in scheduling order (a monotone sequence
// number breaks ties), which keeps simulations deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hxsim::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `when` (must be >= now()).
  void schedule(double when, Callback cb);

  /// Convenience: schedule at now() + delay.
  void schedule_in(double delay, Callback cb) { schedule(now_ + delay, std::move(cb)); }

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Pops and runs the earliest event; returns false when idle.
  bool run_one();

  /// Runs until the queue drains or `max_events` fire; returns events run.
  std::size_t run(std::size_t max_events = SIZE_MAX);

 private:
  struct Entry {
    double when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hxsim::sim
