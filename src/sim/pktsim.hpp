// Packet-granularity discrete-event network simulator.
//
// Models what the flow-level simulator abstracts away: virtual-lane queues,
// credit-based flow control, round-robin output arbitration, and cut-through
// timing.  Its two jobs in the reproduction are (a) latency-dominated
// small-message experiments and (b) demonstrating that cyclically-dependent
// routes really deadlock -- and that the DFSSSP/PARX VL layering removes
// the deadlock (Section 3.2, criteria (4)).
//
// Model summary:
//  - messages are segmented into MTU packets injected back-to-back;
//  - each channel serializes one packet at a time (bytes/bandwidth), then
//    the packet arrives at the downstream buffer hop_latency later;
//  - a packet needs a credit (a buffer slot at the downstream input, per
//    channel x VL) before it may start crossing; the credit of the
//    *previous* hop returns when the packet starts crossing the next one;
//  - per-channel arbitration: round-robin over VLs, FIFO within a VL;
//  - switch->terminal channels have unbounded credits (the HCA drains);
//  - if the event queue drains while packets remain buffered, those packets
//    form a circular wait: the run reports deadlock and a post-mortem
//    (Result::deadlock_report) naming the credit-wait cycle;
//  - static paths are validated at injection (connected, starting at the
//    source's terminal-up and ending at the destination's terminal-down
//    channel); malformed paths throw instead of walking out of bounds.
//
// Engines: the default engine is the typed zero-allocation core -- POD
// event records ({kInject, kXmitDone, kArrive}) on a flat 4-ary heap,
// packets in a pool pre-sized from message bytes/MTU, per-VL FIFOs threaded
// intrusively through that pool, and channel state split into flat
// per-channel / per-channel-x-VL arrays.  All of that scratch lives in the
// PktSim object and is reused across run() calls, so a warm engine performs
// zero heap allocations per event.  The seed std::function engine is kept
// as Engine::kReference, bit-identical by construction; the golden suite in
// tests/pktsim_golden_test.cpp and bench/pktsim_scaling hold the two to
// byte equality.
//
// Replication: run_batch() fans independent message sets across an
// exec::ThreadPool, one engine instance (and scratch) per worker, results
// bit-identical to a serial run() loop at any thread count.  Shared-state
// hazards are rejected up front: a shared PktSimConfig::trace and
// non-replicable adaptive routers (AdaptiveRouter::replicable()) both
// throw.
//
// Observability: attach an obs::PktTrace via PktSimConfig::trace to collect
// per-channel x VL counters (packets/bytes crossed, credit-stall time,
// arbitration skips, queue depths, final credits).  Tracing is off by
// default, allocation-free per event, and strictly observational -- results
// are bit-identical with tracing on or off.
// Online faults: attach a sim::PktOnlineConfig (sim/online.hpp) via
// PktSimConfig::online to inject mid-run link failures, forwarding-table
// epochs with per-switch install delays, and end-host timeout/retry.
// Packets lost to the transient are dropped with per-cause accounting
// (Result::dropped_by_cause, obs::PktDropCause); a config that is absent
// or inert leaves every run bit-identical and allocation-free.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "obs/deadlock.hpp"
#include "obs/pkt_trace.hpp"
#include "sim/adaptive.hpp"
#include "sim/event_queue.hpp"
#include "sim/link_model.hpp"
#include "sim/online.hpp"
#include "topo/topology.hpp"

namespace hxsim::sim {

namespace detail {
struct PktScratch;  // engine scratch (pktsim.cpp); reused across runs
}

/// Per-message outcome under the online-fault layer.
enum class PktMessageStatus : std::int8_t {
  /// All segments of the final attempt reached the destination.
  kDelivered = 0,
  /// The run ended (deadlock/truncation or drops with retry disabled)
  /// before the message completed.
  kUndelivered = 1,
  /// The end host exhausted max_retries and gave up on the flow.
  kAbandoned = 2,
};

struct PktMessage {
  topo::NodeId src = topo::kInvalidNode;
  topo::NodeId dst = topo::kInvalidNode;
  std::int64_t bytes = 0;
  /// Full channel path: terminal-up, switch..., switch-terminal.
  /// Leave empty (with src != dst) to route per hop: adaptively when
  /// PktSimConfig::adaptive is set, else by the online config's active
  /// forwarding epoch (PktOnlineConfig::epochs); one of the two is
  /// required for path-less messages.
  std::vector<topo::ChannelId> path;
  /// Virtual lane for statically routed messages; adaptive packets use
  /// VL escalation (lane = switch hops taken) instead.
  std::int8_t vl = 0;
  double inject_time = 0.0;
};

struct PktSimConfig {
  LinkModel link;
  std::int32_t num_vls = 8;
  /// Input-buffer depth in packets, per channel x VL.
  std::int32_t vc_buffer_packets = 8;
  /// Per-hop router for path-less messages (e.g. DalRouter).  Not owned;
  /// must outlive the simulator.  Its max_hops() must fit num_vls so that
  /// VL escalation stays deadlock-free.
  const AdaptiveRouter* adaptive = nullptr;
  /// Adaptive choice policy: queue-length penalty of a non-minimal hop
  /// (the UGAL-style bias toward minimal paths).
  std::int32_t deroute_penalty = 2;
  /// Optional counter sink (not owned; must outlive run()).  When set, the
  /// simulator resets it at the start of every run and fills per-channel x
  /// VL counters; simulation results are unaffected.  run_batch() rejects a
  /// shared trace -- pass per-replication sinks there instead.
  obs::PktTrace* trace = nullptr;
  /// Optional online-fault layer (not owned; must outlive the simulator):
  /// timed mid-run channel failures, forwarding epochs, end-host retry.
  /// nullptr or an inert config (no faults/epochs, retry disabled) is the
  /// bit-identity off switch.
  const PktOnlineConfig* online = nullptr;
  /// Engine selection.  kTyped is the allocation-free data-oriented engine
  /// (the default); kReference is the seed std::function/deque engine,
  /// kept for golden bit-identity testing and old-vs-new benchmarking.
  enum class Engine : std::int8_t { kTyped, kReference };
  Engine engine = Engine::kTyped;
};

class PktSim {
 public:
  explicit PktSim(const topo::Topology& topo, PktSimConfig config = {});
  ~PktSim();
  PktSim(PktSim&&) noexcept;
  PktSim& operator=(PktSim&&) noexcept;

  struct Result {
    /// Per-message delivery time of the last packet; NaN if undelivered.
    std::vector<double> completion;
    /// The event queue drained with packets still buffered -- a circular
    /// credit wait.  Mutually exclusive with `truncated`.
    bool deadlock = false;
    /// run() stopped at `max_events` with events still pending; the run is
    /// incomplete but NOT deadlocked (rerun with a higher budget).
    bool truncated = false;
    double end_time = 0.0;
    std::int64_t packets_delivered = 0;
    std::int64_t packets_total = 0;
    /// Discrete events dispatched by the run (inject + xmit-done + arrive,
    /// plus fault/timeout/retry under an online config); the denominator
    /// of the engine's events/sec throughput.
    std::int64_t events_executed = 0;
    // --- online-fault accounting (all zero without an active config) ----
    /// Segments dropped by the online layer, total and by cause (indexed
    /// by obs::PktDropCause).
    std::int64_t packets_dropped = 0;
    std::array<std::int64_t, obs::kNumPktDropCauses> dropped_by_cause{};
    /// End-host retransmission attempts performed / flows given up.
    std::int64_t retries = 0;
    std::int64_t messages_abandoned = 0;
    /// Per-message outcome; sized only when an online config is attached
    /// (empty otherwise, preserving pre-online result comparisons).
    std::vector<PktMessageStatus> message_status;
    /// Populated when deadlock: every buffered packet and one extracted
    /// credit-wait cycle (see obs/deadlock.hpp).
    obs::DeadlockReport deadlock_report;
  };

  /// Runs all messages to completion (or deadlock).  `max_events` guards
  /// against runaway simulations.  Engine scratch (event heap, packet
  /// pool, channel arrays) persists in this PktSim, so repeated runs on a
  /// warm instance allocate only the returned Result.  `replication` picks
  /// the randomized-router stream: the engine owns a per-run stats::Rng
  /// seeded from AdaptiveRouter::rng_seed() and this index, so
  /// run(msgs, n, r) reproduces run_batch replication r exactly and the
  /// default index 0 reproduces the historical single-run stream.
  [[nodiscard]] Result run(std::span<const PktMessage> messages,
                           std::size_t max_events = SIZE_MAX,
                           std::uint64_t replication = 0);

  /// Runs each replication's message set on its own engine instance,
  /// fanned across `threads` workers (0: exec::default_threads()).  Every
  /// replication i is simulated exactly as run(replications[i], max_events,
  /// i) would be, with per-worker scratch, so the result vector is
  /// bit-identical to a serial run() loop at any thread count -- including
  /// randomized routers, whose per-replication rng stream is derived from
  /// the index, not drawn from shared state.  `traces`, when non-empty,
  /// supplies one obs::PktTrace* per replication (entries may be nullptr).
  /// Throws std::invalid_argument when config.trace is set (a shared sink
  /// would race across workers) or when the adaptive router reports
  /// replicable() == false (mutable router state would make results depend
  /// on execution order).
  [[nodiscard]] std::vector<Result> run_batch(
      std::span<const std::vector<PktMessage>> replications,
      std::int32_t threads = 0,
      std::span<obs::PktTrace* const> traces = {},
      std::size_t max_events = SIZE_MAX);

 private:
  const topo::Topology* topo_;
  PktSimConfig config_;
  /// Warm-path scratch for run(); lazily sized to the topology/messages.
  std::unique_ptr<detail::PktScratch> scratch_;
  /// Per-worker scratch for run_batch(); grown to the pool width on use.
  std::vector<std::unique_ptr<detail::PktScratch>> batch_scratch_;
};

}  // namespace hxsim::sim
