// Packet-granularity discrete-event network simulator.
//
// Models what the flow-level simulator abstracts away: virtual-lane queues,
// credit-based flow control, round-robin output arbitration, and cut-through
// timing.  Its two jobs in the reproduction are (a) latency-dominated
// small-message experiments and (b) demonstrating that cyclically-dependent
// routes really deadlock -- and that the DFSSSP/PARX VL layering removes
// the deadlock (Section 3.2, criteria (4)).
//
// Model summary:
//  - messages are segmented into MTU packets injected back-to-back;
//  - each channel serializes one packet at a time (bytes/bandwidth), then
//    the packet arrives at the downstream buffer hop_latency later;
//  - a packet needs a credit (a buffer slot at the downstream input, per
//    channel x VL) before it may start crossing; the credit of the
//    *previous* hop returns when the packet starts crossing the next one;
//  - per-channel arbitration: round-robin over VLs, FIFO within a VL;
//  - switch->terminal channels have unbounded credits (the HCA drains);
//  - if the event queue drains while packets remain buffered, those packets
//    form a circular wait: the run reports deadlock and a post-mortem
//    (Result::deadlock_report) naming the credit-wait cycle;
//  - static paths are validated at injection (connected, starting at the
//    source's terminal-up and ending at the destination's terminal-down
//    channel); malformed paths throw instead of walking out of bounds.
//
// Observability: attach an obs::PktTrace via PktSimConfig::trace to collect
// per-channel x VL counters (packets/bytes crossed, credit-stall time,
// arbitration skips, queue depths, final credits).  Tracing is off by
// default, allocation-free per event, and strictly observational -- results
// are bit-identical with tracing on or off.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "obs/deadlock.hpp"
#include "obs/pkt_trace.hpp"
#include "sim/adaptive.hpp"
#include "sim/event_queue.hpp"
#include "sim/link_model.hpp"
#include "topo/topology.hpp"

namespace hxsim::sim {

struct PktMessage {
  topo::NodeId src = topo::kInvalidNode;
  topo::NodeId dst = topo::kInvalidNode;
  std::int64_t bytes = 0;
  /// Full channel path: terminal-up, switch..., switch-terminal.
  /// Leave empty (with src != dst) to route adaptively per hop; requires
  /// PktSimConfig::adaptive.
  std::vector<topo::ChannelId> path;
  /// Virtual lane for statically routed messages; adaptive packets use
  /// VL escalation (lane = switch hops taken) instead.
  std::int8_t vl = 0;
  double inject_time = 0.0;
};

struct PktSimConfig {
  LinkModel link;
  std::int32_t num_vls = 8;
  /// Input-buffer depth in packets, per channel x VL.
  std::int32_t vc_buffer_packets = 8;
  /// Per-hop router for path-less messages (e.g. DalRouter).  Not owned;
  /// must outlive the simulator.  Its max_hops() must fit num_vls so that
  /// VL escalation stays deadlock-free.
  const AdaptiveRouter* adaptive = nullptr;
  /// Adaptive choice policy: queue-length penalty of a non-minimal hop
  /// (the UGAL-style bias toward minimal paths).
  std::int32_t deroute_penalty = 2;
  /// Optional counter sink (not owned; must outlive run()).  When set, the
  /// simulator resets it at the start of every run and fills per-channel x
  /// VL counters; simulation results are unaffected.
  obs::PktTrace* trace = nullptr;
};

class PktSim {
 public:
  explicit PktSim(const topo::Topology& topo, PktSimConfig config = {});

  struct Result {
    /// Per-message delivery time of the last packet; NaN if undelivered.
    std::vector<double> completion;
    /// The event queue drained with packets still buffered -- a circular
    /// credit wait.  Mutually exclusive with `truncated`.
    bool deadlock = false;
    /// run() stopped at `max_events` with events still pending; the run is
    /// incomplete but NOT deadlocked (rerun with a higher budget).
    bool truncated = false;
    double end_time = 0.0;
    std::int64_t packets_delivered = 0;
    std::int64_t packets_total = 0;
    /// Populated when deadlock: every buffered packet and one extracted
    /// credit-wait cycle (see obs/deadlock.hpp).
    obs::DeadlockReport deadlock_report;
  };

  /// Runs all messages to completion (or deadlock).  `max_events` guards
  /// against runaway simulations.
  [[nodiscard]] Result run(std::span<const PktMessage> messages,
                           std::size_t max_events = SIZE_MAX);

 private:
  const topo::Topology* topo_;
  PktSimConfig config_;
};

}  // namespace hxsim::sim
