#include "routing/forwarding.hpp"

#include <stdexcept>

namespace hxsim::routing {

ForwardingTables::ForwardingTables(std::int32_t num_switches, Lid max_lid)
    : switches_(num_switches),
      max_lid_(max_lid),
      table_(static_cast<std::size_t>(num_switches) *
                 (static_cast<std::size_t>(max_lid) + 1),
             topo::kInvalidChannel) {}

void ForwardingTables::set(topo::SwitchId sw, Lid dlid, topo::ChannelId out) {
  if (sw < 0 || sw >= switches_ || dlid < 0 || dlid > max_lid_)
    throw std::out_of_range("ForwardingTables::set: out of range");
  table_[index(sw, dlid)] = out;
}

namespace {

/// Shared walker for path() and reachable().  Invokes `on_channel` per hop;
/// returns success.
template <typename OnChannel>
bool walk(const topo::Topology& topo, const ForwardingTables& lft,
          const LidSpace& lids, topo::NodeId src, Lid dlid,
          OnChannel&& on_channel) {
  const LidSpace::Owner owner = lids.owner(dlid);
  if (!owner.valid()) return false;
  if (owner.node == src) return true;

  const topo::ChannelId up = topo.terminal_up(src);
  if (!topo.channel(up).enabled) return false;
  on_channel(up);

  topo::SwitchId sw = topo.attach_switch(src);
  // A valid route visits each switch at most once; anything longer loops.
  for (std::int32_t hops = 0; hops <= topo.num_switches(); ++hops) {
    const topo::ChannelId out = lft.next(sw, dlid);
    if (out == topo::kInvalidChannel) return false;
    const topo::Channel& c = topo.channel(out);
    if (!c.enabled || !c.src.is_switch() || c.src.index != sw) return false;
    on_channel(out);
    if (c.dst.is_terminal()) return c.dst.index == owner.node;
    sw = c.dst.index;
  }
  return false;  // forwarding loop
}

}  // namespace

ForwardingTables::Path ForwardingTables::path(const topo::Topology& topo,
                                              const LidSpace& lids,
                                              topo::NodeId src,
                                              Lid dlid) const {
  Path p;
  p.ok = walk(topo, *this, lids, src, dlid,
              [&p](topo::ChannelId ch) { p.channels.push_back(ch); });
  if (!p.ok) p.channels.clear();
  return p;
}

bool ForwardingTables::reachable(const topo::Topology& topo,
                                 const LidSpace& lids, topo::NodeId src,
                                 Lid dlid) const {
  return walk(topo, *this, lids, src, dlid, [](topo::ChannelId) {});
}

VlMap::VlMap(std::int32_t num_switches, Lid max_lid)
    : max_lid_(max_lid),
      table_(static_cast<std::size_t>(num_switches) *
                 (static_cast<std::size_t>(max_lid) + 1),
             0) {}

void VlMap::set(topo::SwitchId sw, Lid dlid, std::int8_t vl) {
  table_.at(static_cast<std::size_t>(sw) *
                (static_cast<std::size_t>(max_lid_) + 1) +
            static_cast<std::size_t>(dlid)) = vl;
  if (vl > max_vl_) max_vl_ = vl;
}

}  // namespace hxsim::routing
