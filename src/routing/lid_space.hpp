// InfiniBand LID address space with LMC multi-pathing.
//
// Every terminal (HCA port) owns 2^LMC consecutive "virtual destination"
// LIDs (paper Section 3.2.1).  Routing engines compute a forwarding entry
// per LID, so a higher LMC buys path diversity at the cost of bigger tables.
//
// Two assignment policies are provided:
//  - consecutive(): base LIDs packed from 0 upward (OpenSM default);
//  - grouped(): the paper's PARX guid2lid policy, where nodes of quadrant q
//    live in the LID range [q*stride, (q+1)*stride) so that the MPI layer
//    can recover the quadrant as q = lid / stride (paper footnote 9 uses
//    stride 1000).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "topo/topology.hpp"

namespace hxsim::routing {

using Lid = std::int32_t;
inline constexpr Lid kInvalidLid = -1;

class LidSpace {
 public:
  /// OpenSM-style packed assignment: node n owns [n*2^lmc, (n+1)*2^lmc).
  [[nodiscard]] static LidSpace consecutive(std::int32_t num_terminals,
                                            std::int32_t lmc);

  /// Group-based assignment: the i-th node of group g owns
  /// [g*stride + i*2^lmc, g*stride + (i+1)*2^lmc).  Every terminal must
  /// appear in exactly one group; a group must fit within the stride.
  [[nodiscard]] static LidSpace grouped(
      std::span<const std::vector<topo::NodeId>> groups, std::int32_t lmc,
      Lid group_stride);

  [[nodiscard]] std::int32_t lmc() const noexcept { return lmc_; }
  [[nodiscard]] std::int32_t lids_per_terminal() const noexcept {
    return 1 << lmc_;
  }
  [[nodiscard]] std::int32_t num_terminals() const noexcept {
    return static_cast<std::int32_t>(base_.size());
  }
  /// Largest assigned LID.
  [[nodiscard]] Lid max_lid() const noexcept { return max_lid_; }

  [[nodiscard]] Lid base_lid(topo::NodeId n) const {
    return base_[static_cast<std::size_t>(n)];
  }
  /// LIDx of a node, x in [0, 2^lmc).
  [[nodiscard]] Lid lid(topo::NodeId n, std::int32_t x = 0) const {
    return base_[static_cast<std::size_t>(n)] + x;
  }

  struct Owner {
    topo::NodeId node = topo::kInvalidNode;
    std::int32_t index = -1;  // x of LIDx

    [[nodiscard]] bool valid() const noexcept {
      return node != topo::kInvalidNode;
    }
  };
  /// Reverse lookup; Owner{kInvalidNode, -1} for unassigned LIDs.
  [[nodiscard]] Owner owner(Lid lid) const;

  /// Group of a node (grouped policy); 0 for consecutive policy.
  [[nodiscard]] std::int32_t group_of(topo::NodeId n) const {
    return group_.empty() ? 0 : group_[static_cast<std::size_t>(n)];
  }
  /// Group recovered from a LID value (the paper's q = lid/1000 trick);
  /// 0 for the consecutive policy.
  [[nodiscard]] std::int32_t group_of_lid(Lid lid) const {
    return group_stride_ > 0 ? lid / group_stride_ : 0;
  }
  [[nodiscard]] Lid group_stride() const noexcept { return group_stride_; }

  /// All assigned LIDs in increasing order (the routing iteration order).
  [[nodiscard]] std::vector<Lid> all_lids() const;

 private:
  LidSpace() = default;
  void build_reverse();

  std::int32_t lmc_ = 0;
  Lid max_lid_ = kInvalidLid;
  Lid group_stride_ = 0;                 // 0: consecutive policy
  std::vector<Lid> base_;                // per terminal
  std::vector<std::int32_t> group_;      // per terminal (grouped only)
  std::vector<topo::NodeId> lid_owner_;  // per lid, kInvalidNode if unassigned
};

}  // namespace hxsim::routing
