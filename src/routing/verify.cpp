#include "routing/verify.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>

#include "exec/exec.hpp"
#include "routing/cdg.hpp"
#include "routing/forwarding.hpp"

namespace hxsim::routing {

CdgReport verify_deadlock_freedom(const topo::Topology& topo,
                                  const LidSpace& lids,
                                  const RouteResult& route) {
  CdgReport report;
  report.num_vls = std::max<std::int32_t>(1, route.num_vls_used);
  // Dependency edges keyed u * num_channels + v, deduplicated per VL.
  std::vector<std::unordered_set<std::int64_t>> edges(
      static_cast<std::size_t>(report.num_vls));
  const std::int64_t nch = topo.num_channels();
  const std::vector<Lid> all = lids.all_lids();

  for (topo::NodeId src = 0; src < topo.num_terminals(); ++src) {
    const topo::SwitchId src_sw = topo.attach_switch(src);
    for (const Lid dlid : all) {
      const auto path = route.tables.path(topo, lids, src, dlid);
      if (!path.ok) continue;
      std::int8_t vl = route.vls.vl(src_sw, dlid);
      if (vl < 0 || vl >= report.num_vls) vl = 0;
      auto& layer = edges[static_cast<std::size_t>(vl)];
      for (std::size_t i = 0; i + 1 < path.channels.size(); ++i) {
        if (!topo.is_switch_channel(path.channels[i]) ||
            !topo.is_switch_channel(path.channels[i + 1]))
          continue;
        layer.insert(static_cast<std::int64_t>(path.channels[i]) * nch +
                     path.channels[i + 1]);
      }
    }
  }

  report.edges_per_vl.resize(static_cast<std::size_t>(report.num_vls), 0);
  for (std::int32_t vl = 0; vl < report.num_vls; ++vl) {
    const auto& layer = edges[static_cast<std::size_t>(vl)];
    report.edges_per_vl[static_cast<std::size_t>(vl)] =
        static_cast<std::int64_t>(layer.size());
    std::vector<std::pair<std::int32_t, std::int32_t>> list;
    list.reserve(layer.size());
    for (const std::int64_t key : layer)
      list.emplace_back(static_cast<std::int32_t>(key / nch),
                        static_cast<std::int32_t>(key % nch));
    if (!acyclic(topo.num_channels(), list)) {
      report.acyclic = false;
      if (report.first_cyclic_vl < 0)
        report.first_cyclic_vl = static_cast<std::int8_t>(vl);
    }
  }
  return report;
}

PathCensus route_census(const topo::Topology& topo, const LidSpace& lids,
                        const ForwardingTables& tables,
                        std::span<const char> terminals,
                        std::int32_t threads) {
  const std::int32_t n = topo.num_terminals();
  if (!terminals.empty() &&
      terminals.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument(
        "route_census: terminal mask must be empty or one entry per "
        "terminal");
  const std::int32_t per_terminal = lids.lids_per_terminal();

  exec::ThreadPool pool(threads);
  exec::ScratchArena<PathCensus> partials(pool);
  pool.parallel_for(n, [&](std::int64_t src64, std::int32_t worker) {
    const auto src = static_cast<topo::NodeId>(src64);
    if (!terminals.empty() && !terminals[static_cast<std::size_t>(src)])
      return;
    PathCensus& c = partials.local(worker);
    for (topo::NodeId dst = 0; dst < n; ++dst) {
      if (dst == src) continue;
      if (!terminals.empty() && !terminals[static_cast<std::size_t>(dst)])
        continue;
      ++c.pairs;
      std::int32_t best_hops = -1;
      for (std::int32_t x = 0; x < per_terminal; ++x) {
        ++c.lid_paths;
        const auto path = tables.path(topo, lids, src, lids.lid(dst, x));
        if (!path.ok) {
          ++c.lost_lid_paths;
          continue;
        }
        const std::int32_t hops = path.switch_hops();
        if (best_hops < 0 || hops < best_hops) best_hops = hops;
      }
      if (best_hops < 0) {
        ++c.lost_pairs;
      } else {
        ++c.routable_pairs;
        c.total_switch_hops += best_hops;
        c.max_switch_hops = std::max(c.max_switch_hops, best_hops);
      }
    }
  });

  // Integer sums and a max: the merge is order-independent, so the census
  // is identical at any thread count.
  PathCensus total;
  for (std::int32_t w = 0; w < partials.size(); ++w) {
    const PathCensus& c = partials.local(w);
    total.pairs += c.pairs;
    total.routable_pairs += c.routable_pairs;
    total.lost_pairs += c.lost_pairs;
    total.lid_paths += c.lid_paths;
    total.lost_lid_paths += c.lost_lid_paths;
    total.total_switch_hops += c.total_switch_hops;
    total.max_switch_hops = std::max(total.max_switch_hops, c.max_switch_hops);
  }

  // Blackhole columns: serial full-LFT scan (cheap next() lookups, no path
  // walks), deliberately independent of the terminal mask -- a stale entry
  // is a hazard even when its destination is excluded from the census.
  const std::vector<Lid> all = lids.all_lids();
  for (topo::SwitchId sw = 0; sw < topo.num_switches(); ++sw)
    for (const Lid dlid : all) {
      const topo::ChannelId ch = tables.next(sw, dlid);
      if (ch != topo::kInvalidChannel && !topo.channel(ch).enabled)
        ++total.blackhole_entries;
    }
  return total;
}

PathCensus route_census(const topo::Topology& topo, const LidSpace& lids,
                        const ForwardingTables& tables,
                        std::int32_t threads) {
  return route_census(topo, lids, tables, {}, threads);
}

RouteAudit audit_route(const topo::Topology& topo, const LidSpace& lids,
                       const RouteResult& route, std::int32_t threads) {
  RouteAudit audit;
  audit.cdg = verify_deadlock_freedom(topo, lids, route);
  audit.census = route_census(topo, lids, route.tables, threads);
  return audit;
}

RerouteOutcome reroute_and_verify(RoutingEngine& engine,
                                  const topo::Topology& topo,
                                  const LidSpace& lids, std::int32_t threads) {
  RerouteOutcome out;
  out.route = engine.compute(topo, lids);
  RouteAudit audit = audit_route(topo, lids, out.route, threads);
  out.cdg = std::move(audit.cdg);
  out.census = audit.census;
  if (out.census.blackhole_entries != 0)
    throw std::runtime_error(
        "reroute_and_verify: engine shipped " +
        std::to_string(out.census.blackhole_entries) +
        " LFT entries forwarding onto disabled channels (blackhole columns)");
  return out;
}

}  // namespace hxsim::routing
