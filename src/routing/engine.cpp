#include "routing/engine.hpp"

#include "routing/spf.hpp"

namespace hxsim::routing {

std::int64_t apply_tree_to_tables(const topo::Topology& topo,
                                  const SpfResult& tree,
                                  topo::NodeId dest_node, Lid dlid,
                                  ForwardingTables& tables) {
  const topo::SwitchId dest_sw = topo.attach_switch(dest_node);
  std::int64_t unreachable = 0;
  for (topo::SwitchId sw = 0; sw < topo.num_switches(); ++sw) {
    if (sw == dest_sw) {
      tables.set(sw, dlid, topo.terminal_down(dest_node));
      continue;
    }
    const auto out = tree.out_channel[static_cast<std::size_t>(sw)];
    if (out == topo::kInvalidChannel) ++unreachable;
    // Write kInvalidChannel explicitly: the delta-rerouting layer patches
    // columns of a *populated* table in place, and a switch that just lost
    // its route must not keep last stage's stale entry.
    tables.set(sw, dlid, out);
  }
  return unreachable;
}

}  // namespace hxsim::routing
