#include "routing/updown.hpp"

#include <deque>
#include <stdexcept>

#include "exec/exec.hpp"
#include "routing/spf.hpp"

namespace hxsim::routing {

std::vector<std::int32_t> UpDownEngine::compute_ranks(
    const topo::Topology& topo) const {
  topo::SwitchId root = root_;
  if (root < 0) {
    std::size_t best_degree = 0;
    root = 0;
    for (topo::SwitchId sw = 0; sw < topo.num_switches(); ++sw) {
      const std::size_t degree = topo.switch_neighbors(sw).size();
      if (degree > best_degree) {
        best_degree = degree;
        root = sw;
      }
    }
  }
  if (root >= topo.num_switches())
    throw std::out_of_range("UpDownEngine: root out of range");

  // BFS ranks over enabled switch links.
  std::vector<std::int32_t> ranks(
      static_cast<std::size_t>(topo.num_switches()), -1);
  std::deque<topo::SwitchId> queue{root};
  ranks[static_cast<std::size_t>(root)] = 0;
  while (!queue.empty()) {
    const topo::SwitchId sw = queue.front();
    queue.pop_front();
    for (topo::SwitchId nb : topo.switch_neighbors(sw)) {
      auto& r = ranks[static_cast<std::size_t>(nb)];
      if (r < 0) {
        r = ranks[static_cast<std::size_t>(sw)] + 1;
        queue.push_back(nb);
      }
    }
  }
  // Unreachable switches (disconnected fabrics) sink below everything.
  for (auto& r : ranks)
    if (r < 0) r = topo.num_switches();
  return ranks;
}

RouteResult UpDownEngine::compute_impl(const topo::Topology& topo,
                                       const LidSpace& lids,
                                       TreeTrackState* track) {
  ranks_ = compute_ranks(topo);

  RouteResult res;
  res.tables = ForwardingTables(topo.num_switches(), lids.max_lid());
  res.num_vls_used = 1;

  // Destinations are independent (unit weights, shared read-only ranks):
  // each index writes only its own LFT column and unreachable slot.
  const std::vector<Lid> all = lids.all_lids();
  std::vector<std::int64_t> unreachable(all.size(), 0);
  if (track != nullptr) {
    track->valid = false;
    track->columns.resize(all.size());
  }

  struct Scratch {
    SpfScratch spf;
    SpfResult tree;
  };
  exec::ThreadPool pool(threads_);
  exec::ScratchArena<Scratch> arena(pool);
  pool.parallel_for(
      static_cast<std::int64_t>(all.size()),
      [&](std::int64_t d, std::int32_t worker) {
        Scratch& sc = arena.local(worker);
        const Lid dlid = all[static_cast<std::size_t>(d)];
        const LidSpace::Owner owner = lids.owner(dlid);
        if (track != nullptr) {
          TreeColumnState& col = track->columns[static_cast<std::size_t>(d)];
          col.dlid = dlid;
          updown_spf_to(topo, topo.attach_switch(owner.node), ranks_, {}, {},
                        sc.spf, col.tree, &col.member);
          col.unreachable = apply_tree_to_tables(topo, col.tree, owner.node,
                                                 dlid, res.tables);
          unreachable[static_cast<std::size_t>(d)] = col.unreachable;
        } else {
          updown_spf_to(topo, topo.attach_switch(owner.node), ranks_, {}, {},
                        sc.spf, sc.tree);
          unreachable[static_cast<std::size_t>(d)] = apply_tree_to_tables(
              topo, sc.tree, owner.node, dlid, res.tables);
        }
      });
  for (const std::int64_t u : unreachable) res.unreachable_entries += u;
  if (track != nullptr) track->valid = true;
  return res;
}

RouteResult UpDownEngine::compute(const topo::Topology& topo,
                                  const LidSpace& lids) {
  return compute_impl(topo, lids, nullptr);
}

RouteResult UpDownEngine::compute_tracked(const topo::Topology& topo,
                                          const LidSpace& lids) {
  RouteResult res = compute_impl(topo, lids, &track_);
  track_ranks_ = ranks_;
  return res;
}

DeltaStats UpDownEngine::update_tracked(const topo::Topology& topo,
                                        const LidSpace& lids,
                                        const DeltaUpdate& update,
                                        RouteResult& io) {
  std::vector<std::int32_t> fresh = compute_ranks(topo);
  // Rank changes confined to switches with no enabled switch links are
  // harmless: updown_spf_to only reads the ranks of endpoints of enabled
  // channels, so an isolated switch's (sink) rank is never consulted and
  // every surviving column's tree is unaffected.  Rank shifts at any
  // still-connected switch (root migration, BFS distance change) genuinely
  // reorient up/down legality and force the full fallback.
  bool ranks_compatible = track_.valid && update.enabled.empty();
  if (ranks_compatible) {
    for (topo::SwitchId sw = 0; sw < topo.num_switches(); ++sw) {
      if (fresh[static_cast<std::size_t>(sw)] ==
          track_ranks_[static_cast<std::size_t>(sw)])
        continue;
      if (!topo.switch_neighbors(sw).empty()) {
        ranks_compatible = false;
        break;
      }
    }
  }
  if (!ranks_compatible) {
    DeltaStats stats;
    stats.full_recompute = true;
    io = compute_tracked(topo, lids);
    stats.columns_total = static_cast<std::int64_t>(track_.columns.size());
    stats.columns_recomputed = stats.columns_total;
    stats.columns_changed = stats.columns_total;
    return stats;
  }
  // Adopt the fresh ranks (they differ only at isolated switches) so dirty
  // columns recompute under exactly the rank vector a full compute() would
  // use -- keeping delta tables bit-identical to a from-scratch run.
  track_ranks_ = std::move(fresh);
  ranks_ = track_ranks_;

  const std::int32_t nthreads =
      threads_ == 0 ? exec::default_threads() : threads_;
  exec::ScratchArena<SpfScratch> arena(nthreads);
  return delta_detail::update_independent_columns(
      topo, lids, update, io, track_, threads_,
      [&](const TreeColumnState& col, std::int32_t worker, SpfResult& tree,
          ChannelBitmap& member) {
        const LidSpace::Owner owner = lids.owner(col.dlid);
        updown_spf_to(topo, topo.attach_switch(owner.node), track_ranks_, {},
                      {}, arena.local(worker), tree, &member);
      });
}

}  // namespace hxsim::routing
