#include "routing/updown.hpp"

#include <deque>
#include <stdexcept>

#include "exec/exec.hpp"
#include "routing/spf.hpp"

namespace hxsim::routing {

RouteResult UpDownEngine::compute(const topo::Topology& topo,
                                  const LidSpace& lids) {
  topo::SwitchId root = root_;
  if (root < 0) {
    std::size_t best_degree = 0;
    root = 0;
    for (topo::SwitchId sw = 0; sw < topo.num_switches(); ++sw) {
      const std::size_t degree = topo.switch_neighbors(sw).size();
      if (degree > best_degree) {
        best_degree = degree;
        root = sw;
      }
    }
  }
  if (root >= topo.num_switches())
    throw std::out_of_range("UpDownEngine: root out of range");

  // BFS ranks over enabled switch links.
  ranks_.assign(static_cast<std::size_t>(topo.num_switches()), -1);
  std::deque<topo::SwitchId> queue{root};
  ranks_[static_cast<std::size_t>(root)] = 0;
  while (!queue.empty()) {
    const topo::SwitchId sw = queue.front();
    queue.pop_front();
    for (topo::SwitchId nb : topo.switch_neighbors(sw)) {
      auto& r = ranks_[static_cast<std::size_t>(nb)];
      if (r < 0) {
        r = ranks_[static_cast<std::size_t>(sw)] + 1;
        queue.push_back(nb);
      }
    }
  }
  // Unreachable switches (disconnected fabrics) sink below everything.
  for (auto& r : ranks_)
    if (r < 0) r = topo.num_switches();

  RouteResult res;
  res.tables = ForwardingTables(topo.num_switches(), lids.max_lid());
  res.num_vls_used = 1;

  // Destinations are independent (unit weights, shared read-only ranks):
  // each index writes only its own LFT column and unreachable slot.
  const std::vector<Lid> all = lids.all_lids();
  std::vector<std::int64_t> unreachable(all.size(), 0);

  struct Scratch {
    SpfScratch spf;
    SpfResult tree;
  };
  exec::ThreadPool pool(threads_);
  exec::ScratchArena<Scratch> arena(pool);
  pool.parallel_for(
      static_cast<std::int64_t>(all.size()),
      [&](std::int64_t d, std::int32_t worker) {
        Scratch& sc = arena.local(worker);
        const Lid dlid = all[static_cast<std::size_t>(d)];
        const LidSpace::Owner owner = lids.owner(dlid);
        updown_spf_to(topo, topo.attach_switch(owner.node), ranks_, {}, {},
                      sc.spf, sc.tree);
        unreachable[static_cast<std::size_t>(d)] = apply_tree_to_tables(
            topo, sc.tree, owner.node, dlid, res.tables);
      });
  for (const std::int64_t u : unreachable) res.unreachable_entries += u;
  return res;
}

}  // namespace hxsim::routing
