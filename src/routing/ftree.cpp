#include "routing/ftree.hpp"

#include <stdexcept>

#include "exec/exec.hpp"
#include "routing/spf.hpp"

namespace hxsim::routing {

namespace {

/// Per-worker state: the per-destination weight vector (reset after each
/// destination via the touched list) plus Dijkstra scratch.
struct FtreeScratch {
  std::vector<double> weight;
  std::vector<topo::ChannelId> touched;
  SpfScratch spf;
  SpfResult tree;
};

}  // namespace

RouteResult FtreeEngine::compute(const topo::Topology& topo,
                                 const LidSpace& lids) {
  if (&tree_->topo() != &topo)
    throw std::invalid_argument("FtreeEngine: topology is not the tree");

  RouteResult res;
  res.tables = ForwardingTables(topo.num_switches(), lids.max_lid());
  res.vls = VlMap();  // all zero: up/down needs a single VL
  res.num_vls_used = 1;

  const std::int32_t k = tree_->arity();
  const std::int32_t n = tree_->levels();

  // rank = distance from the top level (updown_spf_to ascends toward
  // rank 0).
  std::vector<std::int32_t> rank(static_cast<std::size_t>(topo.num_switches()));
  for (topo::SwitchId sw = 0; sw < topo.num_switches(); ++sw)
    rank[static_cast<std::size_t>(sw)] = (n - 1) - tree_->level_of(sw);

  // With a leaf taper only roots whose digit 0 survives are usable.
  const std::int32_t root_digit0_bound =
      tree_->arity() / tree_->params().taper;

  // Destinations are fully independent here (the weight vector is rebuilt
  // per destination), so the loop parallelises without batching: each
  // index touches only its own LFT column and unreachable slot, making the
  // output identical for any thread count.
  const std::vector<Lid> all = lids.all_lids();
  std::vector<std::int64_t> unreachable(all.size(), 0);

  exec::ThreadPool pool(threads_);
  exec::ScratchArena<FtreeScratch> arena(pool);
  constexpr double kDetourPenalty = 1.0 + 1.0 / 64.0;

  pool.parallel_for(
      static_cast<std::int64_t>(all.size()),
      [&](std::int64_t d, std::int32_t worker) {
        FtreeScratch& sc = arena.local(worker);
        if (sc.weight.empty())
          sc.weight.assign(static_cast<std::size_t>(topo.num_channels()), 1.0);

        const Lid dlid = all[static_cast<std::size_t>(d)];
        const LidSpace::Owner owner = lids.owner(dlid);
        std::int32_t root_word = dlid % tree_->switches_per_level();
        if (tree_->digit(root_word, 0) >= root_digit0_bound)
          root_word = tree_->with_digit(
              root_word, 0, tree_->digit(root_word, 0) % root_digit0_bound);

        // Per-destination channel weights: canonical up channels (those
        // matching the destination's root digits) get 1.0, the rest
        // 1 + 1/64, so intact fabrics reproduce exact D-mod-K paths and
        // faulty ones detour minimally.
        sc.touched.clear();
        for (topo::SwitchId sw = 0; sw < topo.num_switches(); ++sw) {
          const std::int32_t l = tree_->level_of(sw);
          if (l == n - 1) continue;  // top level has no up channels
          for (std::int32_t v = 0; v < k; ++v) {
            if (v == tree_->digit(root_word, l)) continue;
            const topo::ChannelId up = tree_->up_channel(sw, v);
            if (up == topo::kInvalidChannel) continue;  // tapered-away uplink
            sc.weight[static_cast<std::size_t>(up)] = kDetourPenalty;
            sc.touched.push_back(up);
          }
        }

        updown_spf_to(topo, topo.attach_switch(owner.node), rank, sc.weight,
                      {}, sc.spf, sc.tree);
        unreachable[static_cast<std::size_t>(d)] = apply_tree_to_tables(
            topo, sc.tree, owner.node, dlid, res.tables);

        for (topo::ChannelId ch : sc.touched)
          sc.weight[static_cast<std::size_t>(ch)] = 1.0;
      });

  for (const std::int64_t u : unreachable) res.unreachable_entries += u;
  return res;
}

}  // namespace hxsim::routing
