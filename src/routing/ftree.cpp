#include "routing/ftree.hpp"

#include <stdexcept>

#include "exec/exec.hpp"
#include "routing/spf.hpp"

namespace hxsim::routing {

namespace {

/// Per-worker state: the per-destination weight vector (reset after each
/// destination via the touched list) plus Dijkstra scratch.
struct FtreeScratch {
  std::vector<double> weight;
  std::vector<topo::ChannelId> touched;
  SpfScratch spf;
  SpfResult tree;
};

constexpr double kDetourPenalty = 1.0 + 1.0 / 64.0;

/// rank = distance from the top level (updown_spf_to ascends toward 0).
std::vector<std::int32_t> tree_ranks(const topo::FatTree& tree) {
  const topo::Topology& topo = tree.topo();
  const std::int32_t n = tree.levels();
  std::vector<std::int32_t> rank(static_cast<std::size_t>(topo.num_switches()));
  for (topo::SwitchId sw = 0; sw < topo.num_switches(); ++sw)
    rank[static_cast<std::size_t>(sw)] = (n - 1) - tree.level_of(sw);
  return rank;
}

/// Installs the destination's weight profile into sc.weight (recording
/// touched channels): canonical up channels (those matching the
/// destination's root digits) keep 1.0, the rest get 1 + 1/64, so intact
/// fabrics reproduce exact D-mod-K paths and faulty ones detour minimally.
void set_dest_weights(const topo::FatTree& tree, Lid dlid,
                      std::int32_t root_digit0_bound, FtreeScratch& sc) {
  const topo::Topology& topo = tree.topo();
  if (sc.weight.empty())
    sc.weight.assign(static_cast<std::size_t>(topo.num_channels()), 1.0);

  std::int32_t root_word = dlid % tree.switches_per_level();
  // With a leaf taper only roots whose digit 0 survives are usable.
  if (tree.digit(root_word, 0) >= root_digit0_bound)
    root_word = tree.with_digit(root_word, 0,
                                tree.digit(root_word, 0) % root_digit0_bound);

  const std::int32_t k = tree.arity();
  const std::int32_t n = tree.levels();
  sc.touched.clear();
  for (topo::SwitchId sw = 0; sw < topo.num_switches(); ++sw) {
    const std::int32_t l = tree.level_of(sw);
    if (l == n - 1) continue;  // top level has no up channels
    for (std::int32_t v = 0; v < k; ++v) {
      if (v == tree.digit(root_word, l)) continue;
      const topo::ChannelId up = tree.up_channel(sw, v);
      if (up == topo::kInvalidChannel) continue;  // tapered-away uplink
      sc.weight[static_cast<std::size_t>(up)] = kDetourPenalty;
      sc.touched.push_back(up);
    }
  }
}

void clear_dest_weights(FtreeScratch& sc) {
  for (topo::ChannelId ch : sc.touched)
    sc.weight[static_cast<std::size_t>(ch)] = 1.0;
}

}  // namespace

RouteResult FtreeEngine::compute_impl(const topo::Topology& topo,
                                      const LidSpace& lids,
                                      TreeTrackState* track) {
  if (&tree_->topo() != &topo)
    throw std::invalid_argument("FtreeEngine: topology is not the tree");

  RouteResult res;
  res.tables = ForwardingTables(topo.num_switches(), lids.max_lid());
  res.vls = VlMap();  // all zero: up/down needs a single VL
  res.num_vls_used = 1;

  const std::vector<std::int32_t> rank = tree_ranks(*tree_);
  const std::int32_t root_digit0_bound =
      tree_->arity() / tree_->params().taper;

  // Destinations are fully independent here (the weight vector is rebuilt
  // per destination), so the loop parallelises without batching: each
  // index touches only its own LFT column and unreachable slot, making the
  // output identical for any thread count.
  const std::vector<Lid> all = lids.all_lids();
  std::vector<std::int64_t> unreachable(all.size(), 0);
  if (track != nullptr) {
    track->valid = false;
    track->columns.resize(all.size());
  }

  exec::ThreadPool pool(threads_);
  exec::ScratchArena<FtreeScratch> arena(pool);

  pool.parallel_for(
      static_cast<std::int64_t>(all.size()),
      [&](std::int64_t d, std::int32_t worker) {
        FtreeScratch& sc = arena.local(worker);
        const Lid dlid = all[static_cast<std::size_t>(d)];
        const LidSpace::Owner owner = lids.owner(dlid);
        set_dest_weights(*tree_, dlid, root_digit0_bound, sc);

        if (track != nullptr) {
          TreeColumnState& col = track->columns[static_cast<std::size_t>(d)];
          col.dlid = dlid;
          updown_spf_to(topo, topo.attach_switch(owner.node), rank, sc.weight,
                        {}, sc.spf, col.tree, &col.member);
          col.unreachable = apply_tree_to_tables(topo, col.tree, owner.node,
                                                 dlid, res.tables);
          unreachable[static_cast<std::size_t>(d)] = col.unreachable;
        } else {
          updown_spf_to(topo, topo.attach_switch(owner.node), rank, sc.weight,
                        {}, sc.spf, sc.tree);
          unreachable[static_cast<std::size_t>(d)] = apply_tree_to_tables(
              topo, sc.tree, owner.node, dlid, res.tables);
        }

        clear_dest_weights(sc);
      });

  for (const std::int64_t u : unreachable) res.unreachable_entries += u;
  if (track != nullptr) track->valid = true;
  return res;
}

RouteResult FtreeEngine::compute(const topo::Topology& topo,
                                 const LidSpace& lids) {
  return compute_impl(topo, lids, nullptr);
}

RouteResult FtreeEngine::compute_tracked(const topo::Topology& topo,
                                         const LidSpace& lids) {
  return compute_impl(topo, lids, &track_);
}

DeltaStats FtreeEngine::update_tracked(const topo::Topology& topo,
                                       const LidSpace& lids,
                                       const DeltaUpdate& update,
                                       RouteResult& io) {
  if (&tree_->topo() != &topo)
    throw std::invalid_argument("FtreeEngine: topology is not the tree");
  if (!track_.valid || !update.enabled.empty()) {
    DeltaStats stats;
    stats.full_recompute = true;
    io = compute_tracked(topo, lids);
    stats.columns_total = static_cast<std::int64_t>(track_.columns.size());
    stats.columns_recomputed = stats.columns_total;
    stats.columns_changed = stats.columns_total;
    return stats;
  }

  const std::vector<std::int32_t> rank = tree_ranks(*tree_);
  const std::int32_t root_digit0_bound =
      tree_->arity() / tree_->params().taper;
  const std::int32_t nthreads =
      threads_ == 0 ? exec::default_threads() : threads_;
  exec::ScratchArena<FtreeScratch> arena(nthreads);

  return delta_detail::update_independent_columns(
      topo, lids, update, io, track_, threads_,
      [&](const TreeColumnState& col, std::int32_t worker, SpfResult& tree,
          ChannelBitmap& member) {
        FtreeScratch& sc = arena.local(worker);
        const LidSpace::Owner owner = lids.owner(col.dlid);
        set_dest_weights(*tree_, col.dlid, root_digit0_bound, sc);
        updown_spf_to(topo, topo.attach_switch(owner.node), rank, sc.weight,
                      {}, sc.spf, tree, &member);
        clear_dest_weights(sc);
      });
}

}  // namespace hxsim::routing
