#include "routing/ftree.hpp"

#include <stdexcept>

#include "routing/spf.hpp"

namespace hxsim::routing {

RouteResult FtreeEngine::compute(const topo::Topology& topo,
                                 const LidSpace& lids) {
  if (&tree_->topo() != &topo)
    throw std::invalid_argument("FtreeEngine: topology is not the tree");

  RouteResult res;
  res.tables = ForwardingTables(topo.num_switches(), lids.max_lid());
  res.vls = VlMap();  // all zero: up/down needs a single VL
  res.num_vls_used = 1;

  const std::int32_t k = tree_->arity();
  const std::int32_t n = tree_->levels();

  // rank = distance from the top level (updown_spf_to ascends toward
  // rank 0).
  std::vector<std::int32_t> rank(static_cast<std::size_t>(topo.num_switches()));
  for (topo::SwitchId sw = 0; sw < topo.num_switches(); ++sw)
    rank[static_cast<std::size_t>(sw)] = (n - 1) - tree_->level_of(sw);

  // Per-destination channel weights: canonical up channels (those matching
  // the destination's root digits) get 1.0, the rest 1 + 1/64, so intact
  // fabrics reproduce exact D-mod-K paths and faulty ones detour minimally.
  constexpr double kDetourPenalty = 1.0 + 1.0 / 64.0;
  std::vector<double> weight(static_cast<std::size_t>(topo.num_channels()),
                             1.0);
  std::vector<topo::ChannelId> touched;

  // With a leaf taper only roots whose digit 0 survives are usable.
  const std::int32_t root_digit0_bound =
      tree_->arity() / tree_->params().taper;
  for (const Lid dlid : lids.all_lids()) {
    const LidSpace::Owner owner = lids.owner(dlid);
    std::int32_t root_word = dlid % tree_->switches_per_level();
    if (tree_->digit(root_word, 0) >= root_digit0_bound)
      root_word = tree_->with_digit(
          root_word, 0, tree_->digit(root_word, 0) % root_digit0_bound);

    touched.clear();
    for (topo::SwitchId sw = 0; sw < topo.num_switches(); ++sw) {
      const std::int32_t l = tree_->level_of(sw);
      if (l == n - 1) continue;  // top level has no up channels
      for (std::int32_t v = 0; v < k; ++v) {
        if (v == tree_->digit(root_word, l)) continue;
        const topo::ChannelId up = tree_->up_channel(sw, v);
        if (up == topo::kInvalidChannel) continue;  // tapered-away uplink
        weight[static_cast<std::size_t>(up)] = kDetourPenalty;
        touched.push_back(up);
      }
    }

    const SpfResult tree = updown_spf_to(
        topo, topo.attach_switch(owner.node), rank, weight);
    res.unreachable_entries +=
        apply_tree_to_tables(topo, tree, owner.node, dlid, res.tables);

    for (topo::ChannelId ch : touched) weight[static_cast<std::size_t>(ch)] = 1.0;
  }
  return res;
}

}  // namespace hxsim::routing
