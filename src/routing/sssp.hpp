// OpenSM SSSP routing (Hoefler, Schneider, Lumsdaine [31 in the paper]).
//
// Globally balanced shortest-path routing: destinations are processed one
// LID at a time; each destination gets a Dijkstra tree over the current
// edge weights, and every path routed through a channel increments that
// channel's weight, steering later destinations away from already-loaded
// channels.  SSSP alone is *not* deadlock-free on non-tree topologies;
// DfssspEngine layers its paths onto virtual lanes.
#pragma once

#include "routing/engine.hpp"

namespace hxsim::routing {

class SsspEngine : public RoutingEngine {
 public:
  SsspEngine() = default;

  [[nodiscard]] std::string name() const override { return "sssp"; }
  [[nodiscard]] RouteResult compute(const topo::Topology& topo,
                                    const LidSpace& lids) override;
};

}  // namespace hxsim::routing
