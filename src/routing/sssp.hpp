// OpenSM SSSP routing (Hoefler, Schneider, Lumsdaine [31 in the paper]).
//
// Globally balanced shortest-path routing: each destination gets a Dijkstra
// tree over the current edge weights, and every path routed through a
// channel increments that channel's weight, steering later destinations
// away from already-loaded channels.  SSSP alone is *not* deadlock-free on
// non-tree topologies; DfssspEngine layers its paths onto virtual lanes.
//
// Parallel execution: destinations are processed in fixed-size batches.
// All trees of a batch are computed concurrently against the weight
// snapshot taken at the batch boundary; tables and weight updates are then
// applied serially in LID order.  The batch size is a constant independent
// of the thread count, so the result is *bit-identical* for any number of
// threads (weights are merely stale by at most batch-1 destinations, which
// preserves the global balancing property the tests assert).  batch == 1
// reproduces OpenSM's strictly sequential weight evolution.
//
// Paper cross-reference: Section 2.1 (routing survey) and the DFSSSP base
// pass of [17].  SSSP is what PARX's Algorithm 1 runs *inside each pruned
// per-LID fabric*: rules R1-R4 (core/quadrant.hpp, Section 3.2.3) first
// delete the quadrant's forbidden links, then this weighted-Dijkstra
// balancing routes the survivors.  Run bare on the HyperX it produces the
// CDG cycles bench/resilience_campaign flags as "CYCLE".
#pragma once

#include "obs/phase_clock.hpp"
#include "routing/delta.hpp"
#include "routing/engine.hpp"

namespace hxsim::routing {

class SsspEngine : public RoutingEngine, public DeltaCapable {
 public:
  /// Destinations per weight snapshot; chosen small enough that the
  /// balancing quality is indistinguishable from the sequential update on
  /// the paper fabrics, large enough to feed 8-16 threads.
  static constexpr std::int32_t kDefaultBatch = 8;

  /// threads == 0 uses exec::default_threads().
  explicit SsspEngine(std::int32_t threads = 0,
                      std::int32_t batch = kDefaultBatch)
      : threads_(threads), batch_(batch) {}

  [[nodiscard]] std::string name() const override { return "sssp"; }
  [[nodiscard]] RouteResult compute(const topo::Topology& topo,
                                    const LidSpace& lids) override;

  // DeltaCapable.  Weights evolve across destinations, so an update cannot
  // recompute dirty columns in isolation: it replays the weight evolution
  // of the clean prefix from the cached trees (a serial table walk, no
  // Dijkstras), recomputes only the membership-dirty columns of the first
  // dirty batch (their weight snapshot is unchanged), and recomputes
  // everything after that batch because the weight landscape may have
  // diverged.  Post-divergence re-runs frequently reproduce the cached
  // tree; only genuinely changed columns are patched and reported.
  [[nodiscard]] RouteResult compute_tracked(const topo::Topology& topo,
                                            const LidSpace& lids) override;
  DeltaStats update_tracked(const topo::Topology& topo, const LidSpace& lids,
                            const DeltaUpdate& update,
                            RouteResult& io) override;
  void invalidate_tracking() noexcept override { track_.valid = false; }

  /// Attaches a phase-timer sink (not owned; may be nullptr to detach).
  /// compute() then accumulates wall time under "spf_trees" (parallel
  /// Dijkstra batches) and "table_merge" (serial table + weight merge).
  /// Purely observational: the RouteResult is identical either way.
  void set_timings(obs::PhaseTimings* timings) noexcept {
    timings_ = timings;
  }

 private:
  RouteResult compute_impl(const topo::Topology& topo, const LidSpace& lids,
                           TreeTrackState* track);

  std::int32_t threads_;
  std::int32_t batch_;
  obs::PhaseTimings* timings_ = nullptr;
  TreeTrackState track_;
};

}  // namespace hxsim::routing
