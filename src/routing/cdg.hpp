// Channel dependency graph (CDG) machinery for deadlock-free routing.
//
// A routing function is deadlock-free on a virtual lane iff the dependency
// graph whose vertices are channels and whose edges connect consecutive
// channels of some path is acyclic (Dally & Towles [13 in the paper]).
//
//  - IncrementalDag: an online DAG with cycle rejection, implementing the
//    Pearce-Kelly dynamic topological-order algorithm.  add_edge() refuses
//    (and leaves the DAG unchanged) when the edge would close a cycle.
//  - VlLayering: greedy path-to-layer assignment used by DFSSSP and PARX --
//    a path goes to the lowest virtual lane whose CDG stays acyclic.
//  - acyclic(): batch oracle used by tests to independently verify the
//    layering (Kahn's algorithm).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

namespace hxsim::routing {

class IncrementalDag {
 public:
  explicit IncrementalDag(std::int32_t num_nodes);

  /// Adds edge u -> v unless it would create a cycle.
  /// Returns false (and changes nothing) when rejected.
  /// Adding an existing edge succeeds trivially.
  bool add_edge(std::int32_t u, std::int32_t v);

  /// Removes an edge if present (removals never create cycles).
  void remove_edge(std::int32_t u, std::int32_t v);

  [[nodiscard]] bool has_edge(std::int32_t u, std::int32_t v) const;
  [[nodiscard]] std::int64_t num_edges() const noexcept {
    return static_cast<std::int64_t>(edge_set_.size());
  }

  /// Current topological position of a node (tests assert consistency).
  [[nodiscard]] std::int32_t order_of(std::int32_t node) const {
    return ord_[static_cast<std::size_t>(node)];
  }

 private:
  [[nodiscard]] std::int64_t key(std::int32_t u, std::int32_t v) const {
    return static_cast<std::int64_t>(u) * n_ + v;
  }
  /// DFS forward from `v` over nodes with ord < ub, collecting visits;
  /// returns true if the node at position ub (i.e. u) is reachable.
  bool dfs_forward(std::int32_t v, std::int32_t ub,
                   std::vector<std::int32_t>& visited);
  /// DFS backward from `u` over nodes with ord > lb, collecting visits.
  void dfs_backward(std::int32_t u, std::int32_t lb,
                    std::vector<std::int32_t>& visited);
  /// Pearce-Kelly reorder: place delta_b before delta_f in the union of
  /// their current positions.
  void reorder(std::vector<std::int32_t>& delta_b,
               std::vector<std::int32_t>& delta_f);

  std::int32_t n_;
  std::vector<std::vector<std::int32_t>> out_;
  std::vector<std::vector<std::int32_t>> in_;
  std::vector<std::int32_t> ord_;       // node -> topological position
  std::vector<std::int32_t> node_at_;   // position -> node
  std::vector<char> mark_;              // DFS scratch
  std::unordered_set<std::int64_t> edge_set_;
};

/// Greedy assignment of paths (channel sequences) to virtual lanes.
class VlLayering {
 public:
  VlLayering(std::int32_t num_channels, std::int32_t max_layers);

  /// Places all consecutive dependencies of `channel_path` into the lowest
  /// layer that stays acyclic.  Returns the layer, or -1 if no layer fits
  /// (the paper's "PARX may exceed a VL hardware limit" case).
  std::int32_t place_path(std::span<const std::int32_t> channel_path);

  [[nodiscard]] std::int32_t layers_used() const noexcept {
    return layers_used_;
  }
  [[nodiscard]] std::int32_t max_layers() const noexcept {
    return static_cast<std::int32_t>(layers_.size());
  }

 private:
  std::vector<IncrementalDag> layers_;
  std::int32_t layers_used_ = 0;
};

/// Batch acyclicity test over dependency edges (pairs u -> v).
[[nodiscard]] bool acyclic(
    std::int32_t num_nodes,
    std::span<const std::pair<std::int32_t, std::int32_t>> edges);

}  // namespace hxsim::routing
