#include "routing/dfsssp.hpp"

#include <stdexcept>

#include "routing/cdg.hpp"

namespace hxsim::routing {

void DfssspEngine::assign_vls(const topo::Topology& topo, const LidSpace& lids,
                              const ForwardingTables& tables,
                              std::int32_t max_vls, RouteResult& result) {
  result.vls = VlMap(topo.num_switches(), lids.max_lid());
  VlLayering layering(topo.num_channels(), max_vls);

  // Walk every (source switch, destination LID) path once; terminal
  // channels cannot participate in dependency cycles and are skipped.
  std::vector<std::int32_t> path;
  for (const Lid dlid : lids.all_lids()) {
    const LidSpace::Owner owner = lids.owner(dlid);
    const topo::SwitchId dest_sw = topo.attach_switch(owner.node);
    for (topo::SwitchId src = 0; src < topo.num_switches(); ++src) {
      if (src == dest_sw) continue;
      path.clear();
      topo::SwitchId at = src;
      bool ok = true;
      while (at != dest_sw) {
        const topo::ChannelId out = tables.next(at, dlid);
        if (out == topo::kInvalidChannel ||
            static_cast<std::int32_t>(path.size()) > topo.num_switches()) {
          ok = false;
          break;
        }
        const topo::Channel& c = topo.channel(out);
        if (!c.dst.is_switch()) {
          ok = false;  // reached a terminal that is not the owner's switch
          break;
        }
        path.push_back(out);
        at = c.dst.index;
      }
      if (!ok || path.empty()) continue;
      const std::int32_t vl = layering.place_path(path);
      if (vl < 0)
        throw std::runtime_error(
            "DFSSSP: paths exceed the virtual-lane budget");
      result.vls.set(src, dlid, static_cast<std::int8_t>(vl));
    }
  }
  result.num_vls_used = layering.layers_used();
}

RouteResult DfssspEngine::compute(const topo::Topology& topo,
                                  const LidSpace& lids) {
  SsspEngine base;
  RouteResult res = base.compute(topo, lids);
  assign_vls(topo, lids, res.tables, max_vls_, res);
  return res;
}

}  // namespace hxsim::routing
