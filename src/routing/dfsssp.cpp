#include "routing/dfsssp.hpp"

#include <stdexcept>

#include "exec/exec.hpp"
#include "routing/cdg.hpp"

namespace hxsim::routing {

namespace {

/// All (source switch, path) pairs of one destination LID, flattened:
/// path j for source srcs[j] is chans[offs[j]] .. chans[offs[j+1]-1].
struct DlidPaths {
  std::vector<std::int32_t> chans;
  std::vector<std::int32_t> offs{0};
  std::vector<topo::SwitchId> srcs;
};

}  // namespace

void DfssspEngine::assign_vls(const topo::Topology& topo, const LidSpace& lids,
                              const ForwardingTables& tables,
                              std::int32_t max_vls, RouteResult& result,
                              std::int32_t threads,
                              obs::PhaseTimings* timings) {
  result.vls = VlMap(topo.num_switches(), lids.max_lid());
  VlLayering layering(topo.num_channels(), max_vls);
  obs::PhaseClock clock;
  if (timings != nullptr) clock.lap();

  // Phase 1 (parallel): walk every (source switch, destination LID) path
  // once, collecting the channel sequences per destination.  The tables
  // are read-only here and each index writes its own slot.  Terminal
  // channels cannot participate in dependency cycles and are skipped.
  const std::vector<Lid> all = lids.all_lids();
  std::vector<DlidPaths> per_dlid(all.size());

  exec::ThreadPool pool(threads);
  pool.parallel_for(
      static_cast<std::int64_t>(all.size()),
      [&](std::int64_t d, std::int32_t) {
        const Lid dlid = all[static_cast<std::size_t>(d)];
        const LidSpace::Owner owner = lids.owner(dlid);
        const topo::SwitchId dest_sw = topo.attach_switch(owner.node);
        DlidPaths& out = per_dlid[static_cast<std::size_t>(d)];
        for (topo::SwitchId src = 0; src < topo.num_switches(); ++src) {
          if (src == dest_sw) continue;
          const std::size_t mark = out.chans.size();
          topo::SwitchId at = src;
          bool ok = true;
          while (at != dest_sw) {
            const topo::ChannelId ch = tables.next(at, dlid);
            if (ch == topo::kInvalidChannel ||
                static_cast<std::int32_t>(out.chans.size() - mark) >
                    topo.num_switches()) {
              ok = false;
              break;
            }
            const topo::Channel& c = topo.channel(ch);
            if (!c.dst.is_switch()) {
              ok = false;  // reached a terminal that is not the owner's switch
              break;
            }
            out.chans.push_back(ch);
            at = c.dst.index;
          }
          if (!ok || out.chans.size() == mark) {
            out.chans.resize(mark);
            continue;
          }
          out.offs.push_back(static_cast<std::int32_t>(out.chans.size()));
          out.srcs.push_back(src);
        }
      });
  if (timings != nullptr) timings->add("vl_path_extraction", clock.lap());

  // Phase 2 (serial): greedy lane placement in (dlid, source) order --
  // exactly the order the sequential walk used, so the layering (and
  // therefore num_vls_used) is reproduced verbatim.
  for (std::size_t d = 0; d < per_dlid.size(); ++d) {
    const Lid dlid = all[d];
    const DlidPaths& paths = per_dlid[d];
    for (std::size_t j = 0; j < paths.srcs.size(); ++j) {
      const std::span<const std::int32_t> path(
          paths.chans.data() + paths.offs[j],
          static_cast<std::size_t>(paths.offs[j + 1] - paths.offs[j]));
      const std::int32_t vl = layering.place_path(path);
      if (vl < 0)
        throw std::runtime_error(
            "DFSSSP: paths exceed the virtual-lane budget");
      result.vls.set(paths.srcs[j], dlid, static_cast<std::int8_t>(vl));
    }
  }
  result.num_vls_used = layering.layers_used();
  if (timings != nullptr) timings->add("vl_placement", clock.lap());
}

RouteResult DfssspEngine::compute(const topo::Topology& topo,
                                  const LidSpace& lids) {
  SsspEngine base(threads_, batch_);
  base.set_timings(timings_);
  RouteResult res = base.compute(topo, lids);
  assign_vls(topo, lids, res.tables, max_vls_, res, threads_, timings_);
  return res;
}

RouteResult DfssspEngine::compute_tracked(const topo::Topology& topo,
                                          const LidSpace& lids) {
  if (!delta_base_) delta_base_ = std::make_unique<SsspEngine>(threads_, batch_);
  delta_base_->set_timings(timings_);
  RouteResult res = delta_base_->compute_tracked(topo, lids);
  assign_vls(topo, lids, res.tables, max_vls_, res, threads_, timings_);
  return res;
}

DeltaStats DfssspEngine::update_tracked(const topo::Topology& topo,
                                        const LidSpace& lids,
                                        const DeltaUpdate& update,
                                        RouteResult& io) {
  if (!delta_base_) delta_base_ = std::make_unique<SsspEngine>(threads_, batch_);
  delta_base_->set_timings(timings_);
  DeltaStats stats = delta_base_->update_tracked(topo, lids, update, io);
  // A full fallback rebuilt io from scratch (default VlMap), so the lanes
  // must be re-laid either way; an update that changed no LFT entry keeps
  // the previous stage's layering verbatim.
  if (stats.full_recompute || stats.columns_changed > 0)
    assign_vls(topo, lids, io.tables, max_vls_, io, threads_, timings_);
  return stats;
}

}  // namespace hxsim::routing
