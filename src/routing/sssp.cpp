#include "routing/sssp.hpp"

#include <algorithm>
#include <stdexcept>

#include "exec/exec.hpp"
#include "routing/spf.hpp"

namespace hxsim::routing {

RouteResult SsspEngine::compute(const topo::Topology& topo,
                                const LidSpace& lids) {
  if (batch_ < 1) throw std::invalid_argument("SsspEngine: batch must be >= 1");

  RouteResult res;
  res.tables = ForwardingTables(topo.num_switches(), lids.max_lid());
  res.num_vls_used = 1;

  // Channel weights accumulate the number of (source port, destination LID)
  // paths already routed through each channel.  Weights start at 1 so hop
  // count still dominates until load differentiates paths.  All increments
  // are integer-valued, so the doubles stay exact.
  std::vector<double> weight(static_cast<std::size_t>(topo.num_channels()),
                             1.0);

  const std::vector<Lid> all = lids.all_lids();
  const auto n = static_cast<std::int64_t>(all.size());
  const auto batch = static_cast<std::int64_t>(batch_);

  exec::ThreadPool pool(threads_);
  exec::ScratchArena<SpfScratch> scratch(pool);
  std::vector<SpfResult> trees(static_cast<std::size_t>(
      std::min<std::int64_t>(batch, n)));

  obs::PhaseClock clock;
  double spf_seconds = 0.0;
  double merge_seconds = 0.0;

  for (std::int64_t base = 0; base < n; base += batch) {
    const std::int64_t m = std::min(batch, n - base);
    if (timings_ != nullptr) clock.lap();
    // All trees of the batch see the same weight snapshot; each index
    // writes only its own SpfResult slot, so the merge below is
    // order-independent and the output thread-count-invariant.
    pool.parallel_for(m, [&](std::int64_t i, std::int32_t worker) {
      const Lid dlid = all[static_cast<std::size_t>(base + i)];
      const LidSpace::Owner owner = lids.owner(dlid);
      const topo::SwitchId dest_sw = topo.attach_switch(owner.node);
      spf_to(topo, dest_sw, weight, {}, scratch.local(worker),
             trees[static_cast<std::size_t>(i)]);
    });
    if (timings_ != nullptr) spf_seconds += clock.lap();

    // Serial merge in LID order: tables, then the weight update -- +#
    // terminals(s) on every channel of s's path, i.e. +1 per source port
    // whose traffic to dlid crosses the channel.
    for (std::int64_t i = 0; i < m; ++i) {
      const Lid dlid = all[static_cast<std::size_t>(base + i)];
      const LidSpace::Owner owner = lids.owner(dlid);
      const topo::SwitchId dest_sw = topo.attach_switch(owner.node);
      const SpfResult& tree = trees[static_cast<std::size_t>(i)];
      res.unreachable_entries +=
          apply_tree_to_tables(topo, tree, owner.node, dlid, res.tables);

      for (topo::SwitchId s = 0; s < topo.num_switches(); ++s) {
        if (s == dest_sw) continue;
        const double paths =
            static_cast<double>(topo.switch_terminals(s).size());
        if (paths == 0.0 || !tree.reachable(s)) continue;
        topo::SwitchId at = s;
        while (at != dest_sw) {
          const topo::ChannelId out =
              tree.out_channel[static_cast<std::size_t>(at)];
          weight[static_cast<std::size_t>(out)] += paths;
          at = topo.channel(out).dst.index;
        }
      }
    }
    if (timings_ != nullptr) merge_seconds += clock.lap();
  }
  if (timings_ != nullptr) {
    timings_->add("spf_trees", spf_seconds);
    timings_->add("table_merge", merge_seconds);
  }
  return res;
}

}  // namespace hxsim::routing
