#include "routing/sssp.hpp"

#include "routing/spf.hpp"

namespace hxsim::routing {

RouteResult SsspEngine::compute(const topo::Topology& topo,
                                const LidSpace& lids) {
  RouteResult res;
  res.tables = ForwardingTables(topo.num_switches(), lids.max_lid());
  res.num_vls_used = 1;

  // Channel weights accumulate the number of (source port, destination LID)
  // paths already routed through each channel.  Weights start at 1 so hop
  // count still dominates until load differentiates paths.
  std::vector<double> weight(static_cast<std::size_t>(topo.num_channels()),
                             1.0);

  for (const Lid dlid : lids.all_lids()) {
    const LidSpace::Owner owner = lids.owner(dlid);
    const topo::SwitchId dest_sw = topo.attach_switch(owner.node);
    const SpfResult tree = spf_to(topo, dest_sw, weight);
    res.unreachable_entries +=
        apply_tree_to_tables(topo, tree, owner.node, dlid, res.tables);

    // Edge update: +#terminals(s) on every channel of s's path, i.e. +1
    // per source port whose traffic to dlid crosses the channel.
    for (topo::SwitchId s = 0; s < topo.num_switches(); ++s) {
      if (s == dest_sw) continue;
      const double paths =
          static_cast<double>(topo.switch_terminals(s).size());
      if (paths == 0.0 || !tree.reachable(s)) continue;
      topo::SwitchId at = s;
      while (at != dest_sw) {
        const topo::ChannelId out =
            tree.out_channel[static_cast<std::size_t>(at)];
        weight[static_cast<std::size_t>(out)] += paths;
        at = topo.channel(out).dst.index;
      }
    }
  }
  return res;
}

}  // namespace hxsim::routing
