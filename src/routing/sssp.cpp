#include "routing/sssp.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "exec/exec.hpp"
#include "routing/spf.hpp"

namespace hxsim::routing {

namespace {

/// The weight contribution of one routed destination tree: +#terminals(s)
/// on every channel of s's path toward dest_sw, i.e. +1 per source port
/// whose traffic to the destination crosses the channel.  Shared by the
/// compute merge phase and the delta prefix replay (which re-derives the
/// weight evolution from cached trees without re-running any Dijkstra).
void add_tree_load(const topo::Topology& topo, const SpfResult& tree,
                   topo::SwitchId dest_sw, std::vector<double>& weight) {
  for (topo::SwitchId s = 0; s < topo.num_switches(); ++s) {
    if (s == dest_sw) continue;
    const double paths = static_cast<double>(topo.switch_terminals(s).size());
    if (paths == 0.0 || !tree.reachable(s)) continue;
    topo::SwitchId at = s;
    while (at != dest_sw) {
      const topo::ChannelId out =
          tree.out_channel[static_cast<std::size_t>(at)];
      weight[static_cast<std::size_t>(out)] += paths;
      at = topo.channel(out).dst.index;
    }
  }
}

}  // namespace

RouteResult SsspEngine::compute_impl(const topo::Topology& topo,
                                     const LidSpace& lids,
                                     TreeTrackState* track) {
  if (batch_ < 1) throw std::invalid_argument("SsspEngine: batch must be >= 1");

  RouteResult res;
  res.tables = ForwardingTables(topo.num_switches(), lids.max_lid());
  res.num_vls_used = 1;

  // Channel weights accumulate the number of (source port, destination LID)
  // paths already routed through each channel.  Weights start at 1 so hop
  // count still dominates until load differentiates paths.  All increments
  // are integer-valued, so the doubles stay exact.
  std::vector<double> weight(static_cast<std::size_t>(topo.num_channels()),
                             1.0);

  const std::vector<Lid> all = lids.all_lids();
  const auto n = static_cast<std::int64_t>(all.size());
  const auto batch = static_cast<std::int64_t>(batch_);

  exec::ThreadPool pool(threads_);
  exec::ScratchArena<SpfScratch> scratch(pool);
  std::vector<SpfResult> trees;
  if (track != nullptr) {
    track->valid = false;
    track->columns.resize(static_cast<std::size_t>(n));
  } else {
    trees.resize(static_cast<std::size_t>(std::min<std::int64_t>(batch, n)));
  }

  obs::PhaseClock clock;
  double spf_seconds = 0.0;
  double merge_seconds = 0.0;

  for (std::int64_t base = 0; base < n; base += batch) {
    const std::int64_t m = std::min(batch, n - base);
    if (timings_ != nullptr) clock.lap();
    // All trees of the batch see the same weight snapshot; each index
    // writes only its own SpfResult slot, so the merge below is
    // order-independent and the output thread-count-invariant.
    pool.parallel_for(m, [&](std::int64_t i, std::int32_t worker) {
      const Lid dlid = all[static_cast<std::size_t>(base + i)];
      const LidSpace::Owner owner = lids.owner(dlid);
      const topo::SwitchId dest_sw = topo.attach_switch(owner.node);
      if (track != nullptr) {
        TreeColumnState& col =
            track->columns[static_cast<std::size_t>(base + i)];
        col.dlid = dlid;
        spf_to(topo, dest_sw, weight, {}, scratch.local(worker), col.tree,
               &col.member);
      } else {
        spf_to(topo, dest_sw, weight, {}, scratch.local(worker),
               trees[static_cast<std::size_t>(i)]);
      }
    });
    if (timings_ != nullptr) spf_seconds += clock.lap();

    // Serial merge in LID order: tables, then the weight update.
    for (std::int64_t i = 0; i < m; ++i) {
      const Lid dlid = all[static_cast<std::size_t>(base + i)];
      const LidSpace::Owner owner = lids.owner(dlid);
      const topo::SwitchId dest_sw = topo.attach_switch(owner.node);
      const SpfResult& tree =
          track != nullptr
              ? track->columns[static_cast<std::size_t>(base + i)].tree
              : trees[static_cast<std::size_t>(i)];
      const std::int64_t unreachable =
          apply_tree_to_tables(topo, tree, owner.node, dlid, res.tables);
      res.unreachable_entries += unreachable;
      if (track != nullptr)
        track->columns[static_cast<std::size_t>(base + i)].unreachable =
            unreachable;
      add_tree_load(topo, tree, dest_sw, weight);
    }
    if (timings_ != nullptr) merge_seconds += clock.lap();
  }
  if (timings_ != nullptr) {
    timings_->add("spf_trees", spf_seconds);
    timings_->add("table_merge", merge_seconds);
  }
  if (track != nullptr) track->valid = true;
  return res;
}

RouteResult SsspEngine::compute(const topo::Topology& topo,
                                const LidSpace& lids) {
  return compute_impl(topo, lids, nullptr);
}

RouteResult SsspEngine::compute_tracked(const topo::Topology& topo,
                                        const LidSpace& lids) {
  return compute_impl(topo, lids, &track_);
}

DeltaStats SsspEngine::update_tracked(const topo::Topology& topo,
                                      const LidSpace& lids,
                                      const DeltaUpdate& update,
                                      RouteResult& io) {
  DeltaStats stats;
  if (!track_.valid || !update.enabled.empty()) {
    stats.full_recompute = true;
    io = compute_tracked(topo, lids);
    stats.columns_total = static_cast<std::int64_t>(track_.columns.size());
    stats.columns_recomputed = stats.columns_total;
    stats.columns_changed = stats.columns_total;
    return stats;
  }

  const auto n = static_cast<std::int64_t>(track_.columns.size());
  stats.columns_total = n;

  std::vector<char> col_dirty(static_cast<std::size_t>(n), 0);
  std::int64_t first = n;
  for (std::int64_t i = 0; i < n; ++i) {
    if (track_.columns[static_cast<std::size_t>(i)].member.intersects(
            update.disabled)) {
      col_dirty[static_cast<std::size_t>(i)] = 1;
      if (first == n) first = i;
    }
  }
  if (first == n) return stats;  // no tree used a disabled channel

  const auto batch = static_cast<std::int64_t>(batch_);
  const std::int64_t b0 = (first / batch) * batch;

  // Replay the weight evolution of the clean prefix [0, b0) from the
  // cached trees; they are provably what a full recompute would produce
  // there (membership-clean under unchanged incoming weights), so the
  // weight state at b0 matches the full run's snapshot exactly.
  std::vector<double> weight(static_cast<std::size_t>(topo.num_channels()),
                             1.0);
  auto dest_switch = [&](std::int64_t i) {
    const LidSpace::Owner owner =
        lids.owner(track_.columns[static_cast<std::size_t>(i)].dlid);
    return topo.attach_switch(owner.node);
  };
  for (std::int64_t i = 0; i < b0; ++i)
    add_tree_load(topo, track_.columns[static_cast<std::size_t>(i)].tree,
                  dest_switch(i), weight);

  exec::ThreadPool pool(threads_);
  exec::ScratchArena<SpfScratch> scratch(pool);
  const auto slots =
      static_cast<std::size_t>(std::min<std::int64_t>(batch, n - b0));
  std::vector<SpfResult> trees(slots);
  std::vector<ChannelBitmap> members(slots);
  std::vector<char> redo(slots, 0);

  for (std::int64_t base = b0; base < n; base += batch) {
    const std::int64_t m = std::min(batch, n - base);
    // The first touched batch still sees the tracked run's weight snapshot,
    // so its clean columns can be reused; every later batch's snapshot may
    // have diverged and is recomputed wholesale.
    for (std::int64_t i = 0; i < m; ++i)
      redo[static_cast<std::size_t>(i)] =
          base == b0 ? col_dirty[static_cast<std::size_t>(base + i)]
                     : char{1};
    pool.parallel_for(m, [&](std::int64_t i, std::int32_t worker) {
      if (!redo[static_cast<std::size_t>(i)]) return;
      spf_to(topo, dest_switch(base + i), weight, {}, scratch.local(worker),
             trees[static_cast<std::size_t>(i)],
             &members[static_cast<std::size_t>(i)]);
    });

    // Serial merge in LID order, mirroring compute_impl.
    for (std::int64_t i = 0; i < m; ++i) {
      TreeColumnState& col = track_.columns[static_cast<std::size_t>(base + i)];
      if (redo[static_cast<std::size_t>(i)]) {
        ++stats.columns_recomputed;
        SpfResult& tree = trees[static_cast<std::size_t>(i)];
        const bool changed = tree.out_channel != col.tree.out_channel;
        std::swap(col.tree, tree);
        std::swap(col.member, members[static_cast<std::size_t>(i)]);
        if (changed) {
          const LidSpace::Owner owner = lids.owner(col.dlid);
          col.unreachable = apply_tree_to_tables(topo, col.tree, owner.node,
                                                 col.dlid, io.tables);
          stats.dirty_lids.push_back(col.dlid);
          ++stats.columns_changed;
        }
      }
      add_tree_load(topo, col.tree, dest_switch(base + i), weight);
    }
  }
  io.unreachable_entries = track_.total_unreachable();
  return stats;
}

}  // namespace hxsim::routing
