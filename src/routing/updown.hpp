// Up*/Down* routing (Autonet [72 in the paper]) for arbitrary topologies.
//
// Switches are ranked by BFS depth from a root; a packet may only ascend
// (toward the root) and then descend, which makes any fabric deadlock-free
// on a single virtual lane at the price of concentrating traffic near the
// root.  Serves as the topology-agnostic deadlock-free baseline the paper
// mentions alongside DFSSSP/LASH/Nue.
//
// Paper cross-reference: Section 2.1's survey of deadlock-free options for
// the HyperX.  Up*/Down* needs no virtual lanes where DFSSSP spends them
// and PARX's Algorithm 1 spends LIDs (rules R1-R4, core/quadrant.hpp), but
// pays with root congestion -- visible in this repo as the lowest
// throughput column of bench/resilience_campaign and the engine matrix.
#pragma once

#include "routing/delta.hpp"
#include "routing/engine.hpp"

namespace hxsim::routing {

class UpDownEngine final : public RoutingEngine, public DeltaCapable {
 public:
  /// root < 0 selects the highest-degree switch (lowest id on ties).
  /// Destinations are independent (unit weights), so compute()
  /// parallelises over `threads` workers with bit-identical output;
  /// threads == 0 uses exec::default_threads().
  explicit UpDownEngine(topo::SwitchId root = -1, std::int32_t threads = 0)
      : root_(root), threads_(threads) {}

  [[nodiscard]] std::string name() const override { return "updown"; }
  [[nodiscard]] RouteResult compute(const topo::Topology& topo,
                                    const LidSpace& lids) override;

  // DeltaCapable.  Destinations are fully independent given the rank
  // vector, so updates go through the membership-bitmap fast path -- but
  // the ranks themselves depend on fabric connectivity (BFS from the
  // root), so any fault that changes a rank forces a full recompute.
  [[nodiscard]] RouteResult compute_tracked(const topo::Topology& topo,
                                            const LidSpace& lids) override;
  DeltaStats update_tracked(const topo::Topology& topo, const LidSpace& lids,
                            const DeltaUpdate& update,
                            RouteResult& io) override;
  void invalidate_tracking() noexcept override { track_.valid = false; }

  /// BFS ranks used by the last compute() (exposed for tests).
  [[nodiscard]] const std::vector<std::int32_t>& ranks() const noexcept {
    return ranks_;
  }

 private:
  [[nodiscard]] std::vector<std::int32_t> compute_ranks(
      const topo::Topology& topo) const;
  RouteResult compute_impl(const topo::Topology& topo, const LidSpace& lids,
                           TreeTrackState* track);

  topo::SwitchId root_;
  std::int32_t threads_;
  std::vector<std::int32_t> ranks_;
  // Tracked delta state: the columns of the last compute_tracked(), plus
  // the rank vector they were routed against.
  TreeTrackState track_;
  std::vector<std::int32_t> track_ranks_;
};

}  // namespace hxsim::routing
