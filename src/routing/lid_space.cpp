#include "routing/lid_space.hpp"

#include <stdexcept>

namespace hxsim::routing {

LidSpace LidSpace::consecutive(std::int32_t num_terminals, std::int32_t lmc) {
  if (lmc < 0 || lmc > 7)
    throw std::invalid_argument("LidSpace: lmc must be in [0, 7]");
  LidSpace s;
  s.lmc_ = lmc;
  s.base_.resize(static_cast<std::size_t>(num_terminals));
  const std::int32_t per = 1 << lmc;
  for (std::int32_t n = 0; n < num_terminals; ++n)
    s.base_[static_cast<std::size_t>(n)] = n * per;
  s.max_lid_ = num_terminals * per - 1;
  s.build_reverse();
  return s;
}

LidSpace LidSpace::grouped(std::span<const std::vector<topo::NodeId>> groups,
                           std::int32_t lmc, Lid group_stride) {
  if (lmc < 0 || lmc > 7)
    throw std::invalid_argument("LidSpace: lmc must be in [0, 7]");
  if (group_stride <= 0)
    throw std::invalid_argument("LidSpace: group_stride must be positive");
  LidSpace s;
  s.lmc_ = lmc;
  s.group_stride_ = group_stride;
  const std::int32_t per = 1 << lmc;

  std::int32_t num_terminals = 0;
  for (const auto& g : groups) num_terminals += static_cast<std::int32_t>(g.size());
  s.base_.assign(static_cast<std::size_t>(num_terminals), kInvalidLid);
  s.group_.assign(static_cast<std::size_t>(num_terminals), -1);

  s.max_lid_ = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (static_cast<Lid>(groups[g].size()) * per > group_stride)
      throw std::invalid_argument("LidSpace: group does not fit in stride");
    for (std::size_t i = 0; i < groups[g].size(); ++i) {
      const topo::NodeId n = groups[g][i];
      if (n < 0 || n >= num_terminals)
        throw std::out_of_range("LidSpace::grouped: node id out of range");
      auto& base = s.base_[static_cast<std::size_t>(n)];
      if (base != kInvalidLid)
        throw std::invalid_argument("LidSpace: node in two groups");
      base = static_cast<Lid>(g) * group_stride + static_cast<Lid>(i) * per;
      s.group_[static_cast<std::size_t>(n)] = static_cast<std::int32_t>(g);
      s.max_lid_ = std::max(s.max_lid_, base + per - 1);
    }
  }
  for (Lid base : s.base_)
    if (base == kInvalidLid)
      throw std::invalid_argument("LidSpace: node missing from groups");
  s.build_reverse();
  return s;
}

void LidSpace::build_reverse() {
  lid_owner_.assign(static_cast<std::size_t>(max_lid_) + 1, topo::kInvalidNode);
  const std::int32_t per = lids_per_terminal();
  for (std::int32_t n = 0; n < num_terminals(); ++n) {
    const Lid base = base_[static_cast<std::size_t>(n)];
    for (std::int32_t x = 0; x < per; ++x)
      lid_owner_[static_cast<std::size_t>(base + x)] = n;
  }
}

LidSpace::Owner LidSpace::owner(Lid lid) const {
  if (lid < 0 || lid > max_lid_) return {};
  const topo::NodeId n = lid_owner_[static_cast<std::size_t>(lid)];
  if (n == topo::kInvalidNode) return {};
  return Owner{n, lid - base_[static_cast<std::size_t>(n)]};
}

std::vector<Lid> LidSpace::all_lids() const {
  std::vector<Lid> lids;
  lids.reserve(base_.size() * static_cast<std::size_t>(lids_per_terminal()));
  for (Lid l = 0; l <= max_lid_; ++l)
    if (lid_owner_[static_cast<std::size_t>(l)] != topo::kInvalidNode)
      lids.push_back(l);
  return lids;
}

}  // namespace hxsim::routing
