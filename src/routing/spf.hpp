// Shortest-path-tree cores shared by the routing engines.
//
// Both functions compute a *destination-rooted* tree: for every switch s the
// result records the out-channel of s on its best path toward dest_sw.
// This is exactly the shape a destination-based LFT needs.
//
//  - spf_to(): weighted Dijkstra over the switch graph (OpenSM SSSP /
//    DFSSSP / PARX core).  Ties break on smaller channel id, so results are
//    deterministic.
//  - updown_spf_to(): two-phase Dijkstra restricted to Up*/Down*-legal paths
//    (ascend in rank first, then descend) used by the ftree and updown
//    engines; it stays loop- and deadlock-free even on faulty fabrics.
#pragma once

#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "topo/topology.hpp"

namespace hxsim::routing {

namespace detail {

/// Lexicographic path cost used by the SPF cores: InfiniBand static routing
/// is *minimal*, so the hop count dominates and the accumulated edge
/// weights only arbitrate among equal-hop alternatives.
struct PathCost {
  std::int32_t hops = 0;
  double weight = 0.0;

  friend bool operator<(const PathCost& a, const PathCost& b) {
    if (a.hops != b.hops) return a.hops < b.hops;
    return a.weight < b.weight;
  }
  friend bool operator==(const PathCost& a, const PathCost& b) {
    return a.hops == b.hops && a.weight == b.weight;
  }
};

struct HeapEntry {
  PathCost cost;
  std::int8_t state = 0;  // updown phase; always 0 for plain spf_to
  topo::SwitchId sw = 0;
};

}  // namespace detail

/// Reusable per-call buffers for spf_to()/updown_spf_to().  A scratch
/// object amortises all heap allocations of the per-destination Dijkstra
/// across the thousands of destinations a routing engine visits; each
/// worker thread owns one (see exec::ScratchArena).  Contents between
/// calls are unspecified.
struct SpfScratch {
  std::vector<detail::PathCost> cost0, cost1;
  std::vector<topo::ChannelId> parent0, parent1;
  std::vector<detail::HeapEntry> heap;
};

struct SpfResult {
  /// Per switch: the out-channel toward the destination, kInvalidChannel
  /// when unreachable (or for the destination switch itself).
  std::vector<topo::ChannelId> out_channel;
  /// Per switch: total path weight; +inf when unreachable.
  std::vector<double> dist;

  [[nodiscard]] bool reachable(topo::SwitchId sw) const {
    return dist[static_cast<std::size_t>(sw)] !=
           std::numeric_limits<double>::infinity();
  }
};

/// Extra per-channel admission test on top of the enabled flag; empty
/// function admits everything.
using ChannelFilter = std::function<bool(topo::ChannelId)>;

/// Weighted shortest paths from every switch to dest_sw.
/// channel_weight may be empty (all weights 1) or sized num_channels().
/// The scratch overload reuses both the scratch buffers and `out`'s
/// vectors, so a hot loop performs no allocations after warm-up.
void spf_to(const topo::Topology& topo, topo::SwitchId dest_sw,
            std::span<const double> channel_weight,
            const ChannelFilter& filter, SpfScratch& scratch, SpfResult& out);

[[nodiscard]] SpfResult spf_to(const topo::Topology& topo,
                               topo::SwitchId dest_sw,
                               std::span<const double> channel_weight = {},
                               const ChannelFilter& filter = {});

/// Up*/Down*-legal shortest paths from every switch to dest_sw.
/// `rank` is per switch; a forward hop u->v is "up" iff rank[v] < rank[u],
/// "down" iff rank[v] > rank[u] (equal ranks: up iff v < u).  A legal path
/// is up* down*.
void updown_spf_to(const topo::Topology& topo, topo::SwitchId dest_sw,
                   std::span<const std::int32_t> rank,
                   std::span<const double> channel_weight,
                   const ChannelFilter& filter, SpfScratch& scratch,
                   SpfResult& out);

[[nodiscard]] SpfResult updown_spf_to(const topo::Topology& topo,
                                      topo::SwitchId dest_sw,
                                      std::span<const std::int32_t> rank,
                                      std::span<const double> channel_weight = {},
                                      const ChannelFilter& filter = {});

}  // namespace hxsim::routing
