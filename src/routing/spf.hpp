// Shortest-path-tree cores shared by the routing engines.
//
// Both functions compute a *destination-rooted* tree: for every switch s the
// result records the out-channel of s on its best path toward dest_sw.
// This is exactly the shape a destination-based LFT needs.
//
//  - spf_to(): weighted Dijkstra over the switch graph (OpenSM SSSP /
//    DFSSSP / PARX core).  Ties break on smaller channel id, so results are
//    deterministic.
//  - updown_spf_to(): two-phase Dijkstra restricted to Up*/Down*-legal paths
//    (ascend in rank first, then descend) used by the ftree and updown
//    engines; it stays loop- and deadlock-free even on faulty fabrics.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "topo/topology.hpp"

namespace hxsim::routing {

namespace detail {

/// Lexicographic path cost used by the SPF cores: InfiniBand static routing
/// is *minimal*, so the hop count dominates and the accumulated edge
/// weights only arbitrate among equal-hop alternatives.
struct PathCost {
  std::int32_t hops = 0;
  double weight = 0.0;

  friend bool operator<(const PathCost& a, const PathCost& b) {
    if (a.hops != b.hops) return a.hops < b.hops;
    return a.weight < b.weight;
  }
  friend bool operator==(const PathCost& a, const PathCost& b) {
    return a.hops == b.hops && a.weight == b.weight;
  }
};

struct HeapEntry {
  PathCost cost;
  std::int8_t state = 0;  // updown phase; always 0 for plain spf_to
  topo::SwitchId sw = 0;
};

}  // namespace detail

/// Reusable per-call buffers for spf_to()/updown_spf_to().  A scratch
/// object amortises all heap allocations of the per-destination Dijkstra
/// across the thousands of destinations a routing engine visits; each
/// worker thread owns one (see exec::ScratchArena).  Contents between
/// calls are unspecified.
struct SpfScratch {
  std::vector<detail::PathCost> cost0, cost1;
  std::vector<topo::ChannelId> parent0, parent1;
  std::vector<detail::HeapEntry> heap;
};

struct SpfResult {
  /// Per switch: the out-channel toward the destination, kInvalidChannel
  /// when unreachable (or for the destination switch itself).
  std::vector<topo::ChannelId> out_channel;
  /// Per switch: total path weight; +inf when unreachable.
  std::vector<double> dist;

  [[nodiscard]] bool reachable(topo::SwitchId sw) const {
    return dist[static_cast<std::size_t>(sw)] !=
           std::numeric_limits<double>::infinity();
  }
};

/// Extra per-channel admission test on top of the enabled flag; empty
/// function admits everything.
using ChannelFilter = std::function<bool(topo::ChannelId)>;

/// Per-destination channel-membership set, recorded by the SPF cores for
/// the incremental rerouting layer (routing/delta.hpp).  Bit `ch` is set
/// iff the tree's final parent structure references directed channel `ch`;
/// disabling any channel *outside* the set provably leaves the tree
/// unchanged (removing unused edges cannot shorten a path, and the
/// min-channel-id tie-break never prefers an absent candidate), so a fault
/// stage only needs to recompute destinations whose bitmap intersects the
/// disabled set.  For updown_spf_to() the set is the union of *both*
/// internal parent arrays (all-down and up-segment states), because the
/// emitted out-channels depend on both chains.
class ChannelBitmap {
 public:
  /// Clears and (re)sizes for `num_channels` channels; reuses storage.
  void reset(std::int64_t num_channels) {
    words_.assign(static_cast<std::size_t>((num_channels + 63) / 64), 0);
  }
  void set(topo::ChannelId ch) {
    words_[static_cast<std::size_t>(ch) >> 6] |=
        std::uint64_t{1} << (static_cast<std::uint32_t>(ch) & 63u);
  }
  [[nodiscard]] bool test(topo::ChannelId ch) const {
    return (words_[static_cast<std::size_t>(ch) >> 6] >>
            (static_cast<std::uint32_t>(ch) & 63u)) &
           1u;
  }
  /// True iff any of `chans` is a member.
  [[nodiscard]] bool intersects(std::span<const topo::ChannelId> chans) const {
    for (const topo::ChannelId ch : chans)
      if (test(ch)) return true;
    return false;
  }
  [[nodiscard]] bool empty() const noexcept { return words_.empty(); }

 private:
  std::vector<std::uint64_t> words_;
};

/// Weighted shortest paths from every switch to dest_sw.
/// channel_weight may be empty (all weights 1) or sized num_channels().
/// The scratch overload reuses both the scratch buffers and `out`'s
/// vectors, so a hot loop performs no allocations after warm-up.
/// `membership`, when given, receives the tree's channel set (here: the
/// final out-channels -- see ChannelBitmap).
void spf_to(const topo::Topology& topo, topo::SwitchId dest_sw,
            std::span<const double> channel_weight,
            const ChannelFilter& filter, SpfScratch& scratch, SpfResult& out,
            ChannelBitmap* membership = nullptr);

[[nodiscard]] SpfResult spf_to(const topo::Topology& topo,
                               topo::SwitchId dest_sw,
                               std::span<const double> channel_weight = {},
                               const ChannelFilter& filter = {});

/// Up*/Down*-legal shortest paths from every switch to dest_sw.
/// `rank` is per switch; a forward hop u->v is "up" iff rank[v] < rank[u],
/// "down" iff rank[v] > rank[u] (equal ranks: up iff v < u).  A legal path
/// is up* down*.  `membership`, when given, receives the union of both
/// phases' parent channels (see ChannelBitmap).
void updown_spf_to(const topo::Topology& topo, topo::SwitchId dest_sw,
                   std::span<const std::int32_t> rank,
                   std::span<const double> channel_weight,
                   const ChannelFilter& filter, SpfScratch& scratch,
                   SpfResult& out, ChannelBitmap* membership = nullptr);

[[nodiscard]] SpfResult updown_spf_to(const topo::Topology& topo,
                                      topo::SwitchId dest_sw,
                                      std::span<const std::int32_t> rank,
                                      std::span<const double> channel_weight = {},
                                      const ChannelFilter& filter = {});

}  // namespace hxsim::routing
