// DFSSSP: deadlock-free SSSP routing (Domke, Hoefler, Nagel [17]).
//
// Runs the SSSP balancing pass, then distributes the resulting paths over
// virtual lanes such that each lane's channel dependency graph is acyclic.
// The paper uses DFSSSP as the default HyperX routing (3 VLs suffice on the
// 12x8) and as the base algorithm PARX modifies.
//
// Paper cross-reference: Sections 2.1 and 3.2; PARX (Section 3.2.3,
// Algorithm 1) reuses assign_vls() below after routing each quadrant's
// pruned fabric per rules R1-R4 (core/quadrant.hpp), which is why PARX
// tables always verify acyclic in routing/verify.hpp's fabric audit.
// DFSSSP's VL budget is the failure mode the resilience campaign probes:
// heavy degradation can push the layering past max_vls (a thrown
// std::runtime_error, recorded as an engine-failed sample).
#pragma once

#include <memory>

#include "routing/delta.hpp"
#include "routing/engine.hpp"
#include "routing/sssp.hpp"

namespace hxsim::routing {

class DfssspEngine final : public RoutingEngine, public DeltaCapable {
 public:
  /// max_vls: hardware virtual-lane budget (paper: 8 on QDR InfiniBand).
  /// threads == 0 uses exec::default_threads(); the SSSP batch size is
  /// forwarded so results stay bit-identical across thread counts.
  explicit DfssspEngine(std::int32_t max_vls = 8, std::int32_t threads = 0,
                        std::int32_t batch = SsspEngine::kDefaultBatch)
      : max_vls_(max_vls), threads_(threads), batch_(batch) {}

  [[nodiscard]] std::string name() const override { return "dfsssp"; }
  [[nodiscard]] RouteResult compute(const topo::Topology& topo,
                                    const LidSpace& lids) override;

  // DeltaCapable.  The per-destination phase delegates to a persistent
  // tracked SsspEngine (suffix recompute, see sssp.hpp); the VL placement
  // is inherently global but cheap, so it simply re-runs over the patched
  // tables whenever any LFT column changed -- and is skipped entirely when
  // the update left the tables untouched (identical tables => identical
  // layering).  Plain compute() uses a throwaway base engine and never
  // disturbs the tracked state.
  [[nodiscard]] RouteResult compute_tracked(const topo::Topology& topo,
                                            const LidSpace& lids) override;
  DeltaStats update_tracked(const topo::Topology& topo, const LidSpace& lids,
                            const DeltaUpdate& update,
                            RouteResult& io) override;
  void invalidate_tracking() noexcept override {
    if (delta_base_) delta_base_->invalidate_tracking();
  }

  /// Attaches a phase-timer sink (not owned; nullptr detaches): compute()
  /// accumulates the SSSP phases ("spf_trees", "table_merge") plus the VL
  /// phases ("vl_path_extraction", "vl_placement").  Observational only.
  void set_timings(obs::PhaseTimings* timings) noexcept {
    timings_ = timings;
  }

  /// Assigns virtual lanes for every (source switch, dlid) path of an
  /// existing table set; shared with the PARX engine.  Throws
  /// std::runtime_error if the paths cannot be layered within max_vls.
  /// Path extraction runs on `threads` workers; the greedy VL placement
  /// itself stays serial in (dlid, source) order, so the layering is
  /// identical to the historical single-threaded walk.  `timings`, when
  /// given, receives the two VL phase wall-times.
  static void assign_vls(const topo::Topology& topo, const LidSpace& lids,
                         const ForwardingTables& tables, std::int32_t max_vls,
                         RouteResult& result, std::int32_t threads = 0,
                         obs::PhaseTimings* timings = nullptr);

 private:
  std::int32_t max_vls_;
  std::int32_t threads_;
  std::int32_t batch_;
  obs::PhaseTimings* timings_ = nullptr;
  /// Holds the tracked SSSP tree state across fault stages.
  std::unique_ptr<SsspEngine> delta_base_;
};

}  // namespace hxsim::routing
