// DFSSSP: deadlock-free SSSP routing (Domke, Hoefler, Nagel [17]).
//
// Runs the SSSP balancing pass, then distributes the resulting paths over
// virtual lanes such that each lane's channel dependency graph is acyclic.
// The paper uses DFSSSP as the default HyperX routing (3 VLs suffice on the
// 12x8) and as the base algorithm PARX modifies.
#pragma once

#include "routing/engine.hpp"
#include "routing/sssp.hpp"

namespace hxsim::routing {

class DfssspEngine final : public RoutingEngine {
 public:
  /// max_vls: hardware virtual-lane budget (paper: 8 on QDR InfiniBand).
  explicit DfssspEngine(std::int32_t max_vls = 8) : max_vls_(max_vls) {}

  [[nodiscard]] std::string name() const override { return "dfsssp"; }
  [[nodiscard]] RouteResult compute(const topo::Topology& topo,
                                    const LidSpace& lids) override;

  /// Assigns virtual lanes for every (source switch, dlid) path of an
  /// existing table set; shared with the PARX engine.  Throws
  /// std::runtime_error if the paths cannot be layered within max_vls.
  static void assign_vls(const topo::Topology& topo, const LidSpace& lids,
                         const ForwardingTables& tables, std::int32_t max_vls,
                         RouteResult& result);

 private:
  std::int32_t max_vls_;
};

}  // namespace hxsim::routing
