// OpenSM-style "ftree" routing for k-ary n-trees.
//
// Deterministic destination-based tree routing: every destination LID is
// assigned a root (spread across the top level by dlid modulo the level
// width, the D-mod-K idea of Zahavi [85]); traffic ascends toward that root
// and descends along the unique digit-fixing down path.  On faulty fabrics
// the engine degrades gracefully because paths are found with an
// Up*/Down*-restricted shortest-path search in which the canonical
// (root-matching) up channels are merely *preferred* by a small weight
// bonus; any legal up/down detour remains available.
//
// ftree paths never create channel-dependency cycles, so one virtual lane
// suffices.
//
// Paper cross-reference: ftree is the fat-tree plane's production routing
// (Section 2.3; the 3-level full-bisection tree of Table 2) and the
// baseline every HyperX result is normalised against (Figures 4-7).  It is
// tree-only by construction -- on the HyperX lattice the quadrant rules
// R1-R4 of PARX's Algorithm 1 (core/quadrant.hpp, Section 3.2.3) play the
// role the up/down digit-fixing plays here: both prune the next-hop set per
// destination LID to keep paths short and deadlock-free.
#pragma once

#include "routing/delta.hpp"
#include "routing/engine.hpp"
#include "topo/fat_tree.hpp"

namespace hxsim::routing {

class FtreeEngine final : public RoutingEngine, public DeltaCapable {
 public:
  /// The tree must outlive the engine.  Destinations are routed fully
  /// independently (per-destination weights), so compute() parallelises
  /// over `threads` workers with bit-identical output at any count;
  /// threads == 0 uses exec::default_threads().
  explicit FtreeEngine(const topo::FatTree& tree, std::int32_t threads = 0)
      : tree_(&tree), threads_(threads) {}

  [[nodiscard]] std::string name() const override { return "ftree"; }
  [[nodiscard]] RouteResult compute(const topo::Topology& topo,
                                    const LidSpace& lids) override;

  // DeltaCapable.  Ranks and per-destination weights derive from the
  // static tree structure (levels, digits), never from fault state, so
  // every update goes through the per-column membership fast path.
  [[nodiscard]] RouteResult compute_tracked(const topo::Topology& topo,
                                            const LidSpace& lids) override;
  DeltaStats update_tracked(const topo::Topology& topo, const LidSpace& lids,
                            const DeltaUpdate& update,
                            RouteResult& io) override;
  void invalidate_tracking() noexcept override { track_.valid = false; }

 private:
  RouteResult compute_impl(const topo::Topology& topo, const LidSpace& lids,
                           TreeTrackState* track);

  const topo::FatTree* tree_;
  std::int32_t threads_;
  TreeTrackState track_;
};

}  // namespace hxsim::routing
