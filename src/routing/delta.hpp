// Incremental delta-SPF rerouting (the fault-stage fast path).
//
// The resilience campaign's operational loop is "fail k cables, reroute,
// measure, repeat" -- but a stage that kills 5 cables out of ~2500 leaves
// the vast majority of destination trees untouched.  This layer makes the
// reroute incremental while staying *bit-identical* to a full recompute:
//
//  - Every tracked engine records, per destination-LID column, the SPF tree
//    it shipped plus a ChannelBitmap of the channels the tree's parent
//    structure referenced (routing/spf.hpp).  A column is dirty for a fault
//    stage iff its bitmap intersects the newly disabled channels; clean
//    columns are provably unchanged (removing unused edges cannot improve a
//    path, and the deterministic min-channel-id tie-break never switches to
//    an absent candidate), so only dirty columns re-run Dijkstra and only
//    their LFT columns are patched in place.
//  - Engines whose weights evolve across destinations (SSSP, DFSSSP's base
//    pass, PARX) additionally replay the weight contribution of the clean
//    prefix from the cached trees and recompute from the first dirty
//    column's batch onward -- the weight landscape may have diverged there,
//    so everything after is re-run; the saving is the clean prefix plus the
//    clean columns of the first dirty batch.
//  - Inherently global passes (DFSSSP/PARX virtual-lane placement) re-run
//    over the patched tables whenever any column changed; they are cheap
//    relative to the per-destination Dijkstras.
//  - Channel *re-enabling* (FaultSchedule::revert) is not coverable by
//    membership tracking -- a restored edge can improve any tree -- so any
//    update naming re-enabled channels falls back to a full recompute.
//
// DeltaRouter wraps any RoutingEngine: capable engines (detected via the
// DeltaCapable mixin) go through the incremental path, everything else
// falls back to compute().  With HXSIM_VERIFY_DELTA=1 in the environment
// every incremental update is additionally checked bit-identical against a
// fresh full compute (std::logic_error on mismatch) -- the CI smoke runs
// the reroute bench in this mode.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "routing/engine.hpp"
#include "routing/spf.hpp"

namespace hxsim::routing {

/// One fault stage's channel-state changes, as *directed* channel ids
/// (both directions of a failed cable; topo::FaultReport::disabled_channels
/// has exactly this shape).
struct DeltaUpdate {
  std::vector<topo::ChannelId> disabled;
  /// Re-enabled channels.  Non-empty forces a full recompute (see above).
  std::vector<topo::ChannelId> enabled;
};

/// Work accounting of one incremental update.
struct DeltaStats {
  /// Destination-LID columns the engine routes.
  std::int64_t columns_total = 0;
  /// Columns whose Dijkstra was re-run (the SPF work actually done).
  std::int64_t columns_recomputed = 0;
  /// Columns whose LFT entries actually changed (<= columns_recomputed:
  /// post-divergence re-runs often reproduce the cached tree).
  std::int64_t columns_changed = 0;
  /// True when the engine fell back to a full recompute (not tracked yet,
  /// re-enabled channels, or a structural change like new Up*/Down* ranks).
  bool full_recompute = false;
  /// dlids of the changed columns, ascending in the engine's column order;
  /// empty when full_recompute (treat every column as changed then).
  std::vector<Lid> dirty_lids;

  /// Fraction of destination trees re-run through Dijkstra: the *work*
  /// the strategy spent.  Near 1.0 for the weight-evolving engines when
  /// the first dirty column is early (everything after it must re-run).
  [[nodiscard]] double recompute_fraction() const {
    return columns_total > 0 ? static_cast<double>(columns_recomputed) /
                                   static_cast<double>(columns_total)
                             : 0.0;
  }
  /// Fraction of destination trees the stage actually dirtied (LFT column
  /// changed): the machine- and strategy-independent measure of how much
  /// routing state a fault touches, and the bench's honest metric on a
  /// single-core container where wall-clock gains are modest.
  [[nodiscard]] double dirty_fraction() const {
    return columns_total > 0 ? static_cast<double>(columns_changed) /
                                   static_cast<double>(columns_total)
                             : 0.0;
  }
  /// No LFT entry changed: consumers may reuse anything derived from the
  /// previous tables (paths, flow rates, VL maps) verbatim.
  [[nodiscard]] bool tables_unchanged() const {
    return !full_recompute && columns_changed == 0;
  }
};

/// Mixin for engines that can patch their previous RouteResult in place.
/// Contract: compute_tracked() behaves exactly like compute() but snapshots
/// per-column delta state; update_tracked() then patches `io` (the result
/// the tracked state describes) to what compute() would return on the
/// changed topology -- bit-identical, asserted by DeltaRouter's verify
/// mode.  Plain compute() never touches the tracked state, so verify-mode
/// recomputes are safe; callers that mutate the topology behind the
/// engine's back must route the change through update_tracked() or call
/// invalidate_tracking().
class DeltaCapable {
 public:
  virtual ~DeltaCapable() = default;
  [[nodiscard]] virtual RouteResult compute_tracked(const topo::Topology& topo,
                                                    const LidSpace& lids) = 0;
  virtual DeltaStats update_tracked(const topo::Topology& topo,
                                    const LidSpace& lids,
                                    const DeltaUpdate& update,
                                    RouteResult& io) = 0;
  /// Drops the tracked state; the next update_tracked() recomputes fully.
  virtual void invalidate_tracking() noexcept = 0;
};

/// Per-destination-column snapshot a tracked engine keeps.
struct TreeColumnState {
  Lid dlid = 0;
  SpfResult tree;
  ChannelBitmap member;
  /// Switches with no route in this column (summed into
  /// RouteResult::unreachable_entries when patching).
  std::int64_t unreachable = 0;
};

struct TreeTrackState {
  bool valid = false;
  /// In the engine's column (merge) order.
  std::vector<TreeColumnState> columns;

  [[nodiscard]] std::int64_t total_unreachable() const {
    std::int64_t n = 0;
    for (const TreeColumnState& c : columns) n += c.unreachable;
    return n;
  }
};

namespace delta_detail {

/// Recomputes one column's tree + membership (worker indexes per-thread
/// scratch owned by the engine's closure).
using ColumnRecompute = std::function<void(
    const TreeColumnState& col, std::int32_t worker, SpfResult& tree,
    ChannelBitmap& member)>;

/// The shared delta driver for engines whose destinations are independent
/// (updown, ftree): scans memberships against `update.disabled`, re-runs
/// the dirty columns in parallel (exec::ThreadPool), then patches changed
/// LFT columns serially in ascending column order.  Caller guarantees the
/// track state is valid and `update.enabled` is empty.
DeltaStats update_independent_columns(const topo::Topology& topo,
                                      const LidSpace& lids,
                                      const DeltaUpdate& update,
                                      RouteResult& io, TreeTrackState& track,
                                      std::int32_t threads,
                                      const ColumnRecompute& recompute);

}  // namespace delta_detail

/// Wraps an engine for the fail/reroute/measure loop.  reroute_full()
/// (re)establishes the baseline; reroute() applies one stage's DeltaUpdate
/// incrementally when the engine is DeltaCapable and falls back to a full
/// compute otherwise.  The owned RouteResult is patched in place, so
/// references from result() stay valid across stages.
class DeltaRouter {
 public:
  /// Reads HXSIM_VERIFY_DELTA from the environment once (any value but
  /// "0" enables verify mode).  The engine is not owned.
  explicit DeltaRouter(RoutingEngine& engine);

  [[nodiscard]] bool incremental() const noexcept { return delta_ != nullptr; }
  [[nodiscard]] bool verifying() const noexcept { return verify_; }
  [[nodiscard]] bool has_result() const noexcept { return has_; }
  [[nodiscard]] const RouteResult& result() const;
  [[nodiscard]] RoutingEngine& engine() const noexcept { return *engine_; }

  /// Full (re)compute; tracked when the engine is capable.
  const RouteResult& reroute_full(const topo::Topology& topo,
                                  const LidSpace& lids);

  /// Incremental update after `update`'s channels changed state on `topo`.
  /// Falls back to reroute_full() when no baseline exists or the engine is
  /// not capable; in verify mode additionally asserts bit-identity against
  /// engine().compute().  On exception the tracked state is invalidated
  /// (the next reroute recomputes fully) and the exception rethrown.
  const RouteResult& reroute(const topo::Topology& topo, const LidSpace& lids,
                             const DeltaUpdate& update,
                             DeltaStats* stats = nullptr);

  /// Drops baseline + tracked state (e.g. after an engine failure left the
  /// patched tables half-written).
  void invalidate() noexcept;

 private:
  RoutingEngine* engine_;
  DeltaCapable* delta_;
  bool verify_ = false;
  bool has_ = false;
  RouteResult result_;
};

}  // namespace hxsim::routing
