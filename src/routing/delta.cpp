#include "routing/delta.hpp"

#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "exec/exec.hpp"

namespace hxsim::routing {

namespace delta_detail {

DeltaStats update_independent_columns(const topo::Topology& topo,
                                      const LidSpace& lids,
                                      const DeltaUpdate& update,
                                      RouteResult& io, TreeTrackState& track,
                                      std::int32_t threads,
                                      const ColumnRecompute& recompute) {
  DeltaStats stats;
  stats.columns_total = static_cast<std::int64_t>(track.columns.size());

  std::vector<std::size_t> dirty;
  for (std::size_t i = 0; i < track.columns.size(); ++i)
    if (track.columns[i].member.intersects(update.disabled)) dirty.push_back(i);
  stats.columns_recomputed = static_cast<std::int64_t>(dirty.size());
  if (dirty.empty()) return stats;

  // Parallel phase: per-index slots only (determinism invariant).
  std::vector<SpfResult> trees(dirty.size());
  std::vector<ChannelBitmap> members(dirty.size());
  exec::ThreadPool pool(threads);
  pool.parallel_for(static_cast<std::int64_t>(dirty.size()),
                    [&](std::int64_t j, std::int32_t worker) {
                      const auto k = static_cast<std::size_t>(j);
                      recompute(track.columns[dirty[k]], worker, trees[k],
                                members[k]);
                    });

  // Serial patch in ascending column (== LID) order.
  for (std::size_t k = 0; k < dirty.size(); ++k) {
    TreeColumnState& col = track.columns[dirty[k]];
    const bool changed = trees[k].out_channel != col.tree.out_channel;
    col.tree = std::move(trees[k]);
    col.member = std::move(members[k]);
    if (!changed) continue;
    const LidSpace::Owner owner = lids.owner(col.dlid);
    col.unreachable =
        apply_tree_to_tables(topo, col.tree, owner.node, col.dlid, io.tables);
    stats.dirty_lids.push_back(col.dlid);
    ++stats.columns_changed;
  }
  io.unreachable_entries = track.total_unreachable();
  return stats;
}

}  // namespace delta_detail

DeltaRouter::DeltaRouter(RoutingEngine& engine)
    : engine_(&engine), delta_(dynamic_cast<DeltaCapable*>(&engine)) {
  const char* env = std::getenv("HXSIM_VERIFY_DELTA");
  verify_ = env != nullptr && env[0] != '\0' &&
            !(env[0] == '0' && env[1] == '\0');
}

const RouteResult& DeltaRouter::result() const {
  if (!has_) throw std::logic_error("DeltaRouter::result: no reroute yet");
  return result_;
}

const RouteResult& DeltaRouter::reroute_full(const topo::Topology& topo,
                                             const LidSpace& lids) {
  has_ = false;  // stays false if the engine throws mid-compute
  result_ = delta_ != nullptr ? delta_->compute_tracked(topo, lids)
                              : engine_->compute(topo, lids);
  has_ = true;
  return result_;
}

const RouteResult& DeltaRouter::reroute(const topo::Topology& topo,
                                        const LidSpace& lids,
                                        const DeltaUpdate& update,
                                        DeltaStats* stats) {
  DeltaStats s;
  if (delta_ == nullptr || !has_) {
    s.full_recompute = true;
    reroute_full(topo, lids);
    s.columns_total = static_cast<std::int64_t>(lids.all_lids().size());
    s.columns_recomputed = s.columns_total;
    s.columns_changed = s.columns_total;
  } else {
    has_ = false;  // the patch below may leave result_ torn on throw
    try {
      s = delta_->update_tracked(topo, lids, update, result_);
    } catch (...) {
      delta_->invalidate_tracking();
      throw;
    }
    has_ = true;
    if (verify_ && !s.full_recompute) {
      // Full recomputes *are* the reference; everything else is checked
      // bit-identical against one.  compute() leaves tracking untouched.
      const RouteResult full = engine_->compute(topo, lids);
      if (!(full == result_)) {
        delta_->invalidate_tracking();
        has_ = false;
        throw std::logic_error(
            "HXSIM_VERIFY_DELTA: incremental tables for engine '" +
            engine_->name() + "' differ from a full recompute");
      }
    }
  }
  if (stats != nullptr) *stats = std::move(s);
  return result_;
}

void DeltaRouter::invalidate() noexcept {
  has_ = false;
  if (delta_ != nullptr) delta_->invalidate_tracking();
}

}  // namespace hxsim::routing
