// Post-routing verification on (possibly degraded) fabrics.
//
// After fault injection an engine's compute() is re-run; these entry points
// answer the two questions an operator asks of the rerouted fabric:
//
//  - verify_deadlock_freedom(): rebuild the per-virtual-lane channel
//    dependency graphs from the *forwarding tables as deployed* and check
//    each layer acyclic (Kahn's algorithm via routing::acyclic).  This is
//    independent of whatever CDG the engine maintained internally -- it
//    verifies the shipped tables, the way a fabric audit would.
//  - route_census(): walk every (source terminal, destination LID) path,
//    counting lost pairs (the paper's footnote-7 "lost LIDs"), lost
//    individual LID paths, and switch-hop statistics for path-length
//    inflation tracking.
//
// reroute_and_verify() bundles recompute + both checks: the campaign
// driver's per-stage entry point.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "routing/engine.hpp"

namespace hxsim::routing {

struct CdgReport {
  /// True iff every used virtual lane's dependency graph is acyclic.
  bool acyclic = true;
  std::int32_t num_vls = 1;
  /// Dependency edges found per virtual lane (deduplicated).
  std::vector<std::int64_t> edges_per_vl;
  /// Lowest VL whose CDG contains a cycle; -1 when acyclic.
  std::int8_t first_cyclic_vl = -1;
};

/// Rebuilds the per-VL CDGs from `route`'s tables over all (source
/// terminal, destination LID) paths and batch-checks each layer.
[[nodiscard]] CdgReport verify_deadlock_freedom(const topo::Topology& topo,
                                                const LidSpace& lids,
                                                const RouteResult& route);

struct PathCensus {
  /// Ordered (src, dst) terminal pairs considered (src != dst).
  std::int64_t pairs = 0;
  std::int64_t routable_pairs = 0;
  /// Pairs no LID of the destination can reach: footnote 7's lost LIDs.
  std::int64_t lost_pairs = 0;
  /// Individual (src, destination LID) paths considered / lost.  On multi-
  /// LID spaces a pair can lose some LIDs yet stay routable via others.
  std::int64_t lid_paths = 0;
  std::int64_t lost_lid_paths = 0;
  /// Switch-hop statistics over each routable pair's shortest surviving
  /// LID path.
  std::int64_t total_switch_hops = 0;
  std::int32_t max_switch_hops = 0;
  /// Blackhole columns: LFT entries that forward onto a *disabled* channel.
  /// A freshly computed or correctly patched table has zero -- any entry
  /// pointing at a dead channel silently eats table-routed traffic (the
  /// stale-table hazard the online fault layer simulates).  Counted over
  /// the full LFT, independent of the terminal mask.
  std::int64_t blackhole_entries = 0;

  [[nodiscard]] double reachability() const {
    return pairs > 0 ? static_cast<double>(routable_pairs) /
                           static_cast<double>(pairs)
                     : 1.0;
  }
  [[nodiscard]] double mean_switch_hops() const {
    return routable_pairs > 0 ? static_cast<double>(total_switch_hops) /
                                    static_cast<double>(routable_pairs)
                              : 0.0;
  }
};

/// All-pairs path walk over the tables.  Parallelised over source
/// terminals (threads == 0: exec::default_threads()); the census is a sum
/// of per-source integer counts, so the result is identical at any thread
/// count.
[[nodiscard]] PathCensus route_census(const topo::Topology& topo,
                                      const LidSpace& lids,
                                      const ForwardingTables& tables,
                                      std::int32_t threads = 0);

/// Census restricted to a terminal subset: pairs are counted only when
/// both endpoints have a non-zero mask entry (empty mask = all terminals).
/// The degraded-fabric form -- terminals on dead switches are excluded, so
/// "no lost pairs" asserts exactly the connectivity the fabric still owes.
[[nodiscard]] PathCensus route_census(const topo::Topology& topo,
                                      const LidSpace& lids,
                                      const ForwardingTables& tables,
                                      std::span<const char> terminals,
                                      std::int32_t threads = 0);

struct RouteAudit {
  CdgReport cdg;
  PathCensus census;
};

/// Audits an existing RouteResult (deadlock freedom + path census) without
/// recomputing or copying it -- the incremental campaign path, where the
/// result lives inside a routing::DeltaRouter and is patched in place.
[[nodiscard]] RouteAudit audit_route(const topo::Topology& topo,
                                     const LidSpace& lids,
                                     const RouteResult& route,
                                     std::int32_t threads = 0);

struct RerouteOutcome {
  RouteResult route;
  CdgReport cdg;
  PathCensus census;
};

/// The degraded-fabric reroute entry point: recomputes the engine on the
/// current (possibly faulted) topology, then audits the result.  Throws if
/// the shipped tables contain blackhole columns (census.blackhole_entries
/// != 0): a freshly computed table must never forward onto a dead channel.
[[nodiscard]] RerouteOutcome reroute_and_verify(RoutingEngine& engine,
                                                const topo::Topology& topo,
                                                const LidSpace& lids,
                                                std::int32_t threads = 0);

}  // namespace hxsim::routing
