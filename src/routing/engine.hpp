// Routing-engine interface.
//
// An engine turns (topology, LID space) into forwarding tables plus a
// virtual-lane map, mirroring what an OpenSM routing engine produces for an
// InfiniBand fabric.  Engines are constructed with whatever topology
// metadata they need (the ftree engine needs the tree structure, PARX needs
// the HyperX lattice); compute() may be called repeatedly, e.g. after fault
// injection or with a new demand profile.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "routing/forwarding.hpp"
#include "routing/lid_space.hpp"
#include "topo/topology.hpp"

namespace hxsim::routing {

struct RouteResult {
  ForwardingTables tables;
  VlMap vls;
  /// Highest virtual lane used + 1 (1 when no VL layering was needed).
  std::int32_t num_vls_used = 1;
  /// (switch, dlid) entries for which no route exists.  Non-zero values do
  /// not necessarily affect terminals: e.g. on a faulty fat-tree a *root*
  /// can lose its only legal down path to a leaf while every terminal
  /// still routes around that root.  With PARX's link pruning terminal
  /// paths themselves can be lost on faulty fabrics (paper footnote 7);
  /// the MPI layer then falls back to another LID.
  std::int64_t unreachable_entries = 0;

  /// Field-wise equality; used to assert that parallel engine runs are
  /// bit-identical to the 1-thread run.
  [[nodiscard]] bool operator==(const RouteResult&) const = default;
};

class RoutingEngine {
 public:
  virtual ~RoutingEngine() = default;
  RoutingEngine() = default;
  RoutingEngine(const RoutingEngine&) = delete;
  RoutingEngine& operator=(const RoutingEngine&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual RouteResult compute(const topo::Topology& topo,
                                            const LidSpace& lids) = 0;
};

/// Fills LFT entries for every switch from a destination-rooted SPF tree.
/// Shared by the Dijkstra-based engines.  Returns the number of switches
/// with no route to the destination.
std::int64_t apply_tree_to_tables(const topo::Topology& topo,
                                  const struct SpfResult& tree,
                                  topo::NodeId dest_node, Lid dlid,
                                  ForwardingTables& tables);

}  // namespace hxsim::routing
