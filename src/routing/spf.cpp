#include "routing/spf.hpp"

#include <algorithm>

namespace hxsim::routing {

namespace {

using detail::HeapEntry;
using detail::PathCost;

constexpr double kInf = std::numeric_limits<double>::infinity();

// See the PathCost comment in the header: hop count dominates, weights
// arbitrate among equal-hop alternatives (OpenSM SSSP/DFSSSP semantics; the
// paper relies on this: "available static routing for IB will only
// calculate routes along the minimal paths", Section 3.2.1).
constexpr PathCost kUnreached{std::numeric_limits<std::int32_t>::max(), kInf};

double weight_of(std::span<const double> w, topo::ChannelId ch) {
  return w.empty() ? 1.0 : w[static_cast<std::size_t>(ch)];
}

bool admitted(const topo::Topology& topo, const ChannelFilter& filter,
              topo::ChannelId ch) {
  if (!topo.channel(ch).enabled) return false;
  return !filter || filter(ch);
}

// Min-heap on cost only; equal-cost pop order is unspecified, which is safe
// because the relaxation below resolves ties by channel id, making the
// final tree independent of pop order (every switch relaxes its neighbours
// at its final cost at least once).
struct HeapLater {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    return b.cost < a.cost;
  }
};

void heap_push(std::vector<HeapEntry>& heap, HeapEntry e) {
  heap.push_back(e);
  std::push_heap(heap.begin(), heap.end(), HeapLater{});
}

HeapEntry heap_pop(std::vector<HeapEntry>& heap) {
  std::pop_heap(heap.begin(), heap.end(), HeapLater{});
  const HeapEntry e = heap.back();
  heap.pop_back();
  return e;
}

}  // namespace

void spf_to(const topo::Topology& topo, topo::SwitchId dest_sw,
            std::span<const double> channel_weight,
            const ChannelFilter& filter, SpfScratch& scratch, SpfResult& out,
            ChannelBitmap* membership) {
  const auto n = static_cast<std::size_t>(topo.num_switches());
  auto& cost = scratch.cost0;
  auto& heap = scratch.heap;
  cost.assign(n, kUnreached);
  heap.clear();
  out.out_channel.assign(n, topo::kInvalidChannel);
  out.dist.assign(n, kInf);

  cost[static_cast<std::size_t>(dest_sw)] = PathCost{0, 0.0};
  heap_push(heap, HeapEntry{PathCost{0, 0.0}, 0, dest_sw});

  while (!heap.empty()) {
    const auto [c, state, u] = heap_pop(heap);
    (void)state;
    if (cost[static_cast<std::size_t>(u)] < c) continue;  // stale
    // Relax the *reverse* of each out-channel of u: the forward channel
    // v -> u extends v's path toward the destination.
    for (topo::ChannelId out_ch : topo.switch_out(u)) {
      const topo::Channel& oc = topo.channel(out_ch);
      if (!oc.dst.is_switch()) continue;
      const topo::ChannelId r = oc.reverse;  // v -> u
      if (!admitted(topo, filter, r)) continue;
      const auto v = static_cast<std::size_t>(oc.dst.index);
      const PathCost nc{c.hops + 1, c.weight + weight_of(channel_weight, r)};
      if (nc < cost[v] ||
          (nc == cost[v] && out.out_channel[v] != topo::kInvalidChannel &&
           r < out.out_channel[v])) {
        const bool improved = nc < cost[v];
        cost[v] = nc;
        out.out_channel[v] = r;
        if (improved) heap_push(heap, HeapEntry{nc, 0, oc.dst.index});
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v)
    if (!(cost[v] == kUnreached)) out.dist[v] = static_cast<double>(cost[v].hops);

  if (membership != nullptr) {
    // Membership == the final parent channels: removing any non-parent
    // edge cannot improve a cost, and the min-channel-id tie-break only
    // ever switches to a *present* smaller candidate, so the tree is
    // provably unchanged unless one of these channels goes down.
    membership->reset(topo.num_channels());
    for (std::size_t v = 0; v < n; ++v)
      if (out.out_channel[v] != topo::kInvalidChannel)
        membership->set(out.out_channel[v]);
  }
}

SpfResult spf_to(const topo::Topology& topo, topo::SwitchId dest_sw,
                 std::span<const double> channel_weight,
                 const ChannelFilter& filter) {
  SpfScratch scratch;
  SpfResult res;
  spf_to(topo, dest_sw, channel_weight, filter, scratch, res);
  return res;
}

void updown_spf_to(const topo::Topology& topo, topo::SwitchId dest_sw,
                   std::span<const std::int32_t> rank,
                   std::span<const double> channel_weight,
                   const ChannelFilter& filter, SpfScratch& scratch,
                   SpfResult& out, ChannelBitmap* membership) {
  const auto n = static_cast<std::size_t>(topo.num_switches());
  // State 0: still inside the forward-down segment (walking backward from
  // the destination); state 1: inside the forward-up segment.
  std::vector<PathCost>* cost[2] = {&scratch.cost0, &scratch.cost1};
  std::vector<topo::ChannelId>* parent[2] = {&scratch.parent0,
                                             &scratch.parent1};
  for (int s = 0; s < 2; ++s) {
    cost[s]->assign(n, kUnreached);
    parent[s]->assign(n, topo::kInvalidChannel);
  }
  auto& heap = scratch.heap;
  heap.clear();

  // Forward hop v->u is "up" iff it moves toward the roots.
  auto forward_is_up = [&](topo::SwitchId v, topo::SwitchId u) {
    const auto rv = rank[static_cast<std::size_t>(v)];
    const auto ru = rank[static_cast<std::size_t>(u)];
    if (ru != rv) return ru < rv;
    return u < v;  // deterministic orientation for equal ranks
  };

  (*cost[0])[static_cast<std::size_t>(dest_sw)] = PathCost{0, 0.0};
  heap_push(heap, HeapEntry{PathCost{0, 0.0}, 0, dest_sw});

  while (!heap.empty()) {
    const auto [c, state, u] = heap_pop(heap);
    if ((*cost[state])[static_cast<std::size_t>(u)] < c) continue;
    for (topo::ChannelId out_ch : topo.switch_out(u)) {
      const topo::Channel& oc = topo.channel(out_ch);
      if (!oc.dst.is_switch()) continue;
      const topo::ChannelId r = oc.reverse;  // forward channel v -> u
      if (!admitted(topo, filter, r)) continue;
      const topo::SwitchId v = oc.dst.index;
      const bool up_hop = forward_is_up(v, u);
      std::int8_t next_state;
      if (up_hop) {
        next_state = 1;  // entering (or continuing) the forward-up segment
      } else {
        if (state != 0) continue;  // a down hop after up hops is illegal
        next_state = 0;
      }
      const auto vi = static_cast<std::size_t>(v);
      const PathCost nc{c.hops + 1, c.weight + weight_of(channel_weight, r)};
      auto& dvec = *cost[next_state];
      auto& pvec = *parent[next_state];
      if (nc < dvec[vi] ||
          (nc == dvec[vi] && pvec[vi] != topo::kInvalidChannel &&
           r < pvec[vi])) {
        const bool improved = nc < dvec[vi];
        dvec[vi] = nc;
        pvec[vi] = r;
        if (improved) heap_push(heap, HeapEntry{nc, next_state, v});
      }
    }
  }

  out.out_channel.assign(n, topo::kInvalidChannel);
  out.dist.assign(n, kInf);
  out.dist[static_cast<std::size_t>(dest_sw)] = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    if (static_cast<topo::SwitchId>(v) == dest_sw) continue;
    // Table-consistency rule: a switch that *can* reach the destination
    // going only down must store that all-down path, even when an
    // up-then-down path would be shorter.  Destination-based forwarding
    // composes hop by hop: a predecessor that descends into this switch
    // assumed an all-down suffix, and an up-turn here would create a
    // down-up sequence -- illegal and (as the CDG test shows on irregular
    // fabrics) a potential deadlock cycle.  Prefixing an up hop to *any*
    // stored path is always legal, so state-1 switches may reference
    // either kind of successor.
    const std::int8_t best = !((*cost[0])[v] == kUnreached) ? 0 : 1;
    if ((*cost[best])[v] == kUnreached) continue;
    out.dist[v] = static_cast<double>((*cost[best])[v].hops);
    out.out_channel[v] = (*parent[best])[v];
  }

  if (membership != nullptr) {
    // Both phases' parents matter: the emitted out-channel of a state-1
    // switch sits on a chain built from state-0 *and* state-1 parents, so
    // losing an internal state-1 edge can re-route a column whose visible
    // out-channels never touched it.
    membership->reset(topo.num_channels());
    for (int s = 0; s < 2; ++s)
      for (std::size_t v = 0; v < n; ++v)
        if ((*parent[s])[v] != topo::kInvalidChannel)
          membership->set((*parent[s])[v]);
  }
}

SpfResult updown_spf_to(const topo::Topology& topo, topo::SwitchId dest_sw,
                        std::span<const std::int32_t> rank,
                        std::span<const double> channel_weight,
                        const ChannelFilter& filter) {
  SpfScratch scratch;
  SpfResult res;
  updown_spf_to(topo, dest_sw, rank, channel_weight, filter, scratch, res);
  return res;
}

}  // namespace hxsim::routing
