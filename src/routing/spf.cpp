#include "routing/spf.hpp"

#include <queue>
#include <tuple>

namespace hxsim::routing {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double weight_of(std::span<const double> w, topo::ChannelId ch) {
  return w.empty() ? 1.0 : w[static_cast<std::size_t>(ch)];
}

bool admitted(const topo::Topology& topo, const ChannelFilter& filter,
              topo::ChannelId ch) {
  if (!topo.channel(ch).enabled) return false;
  return !filter || filter(ch);
}

/// Lexicographic path cost: InfiniBand static routing is *minimal* -- the
/// hop count dominates, and the accumulated edge weights only arbitrate
/// among equal-hop alternatives (OpenSM SSSP/DFSSSP semantics; the paper
/// relies on this: "available static routing for IB will only calculate
/// routes along the minimal paths", Section 3.2.1).
struct Cost {
  std::int32_t hops = 0;
  double weight = 0.0;

  friend bool operator<(const Cost& a, const Cost& b) {
    if (a.hops != b.hops) return a.hops < b.hops;
    return a.weight < b.weight;
  }
  friend bool operator==(const Cost& a, const Cost& b) {
    return a.hops == b.hops && a.weight == b.weight;
  }
  friend bool operator>(const Cost& a, const Cost& b) { return b < a; }
};

constexpr Cost kUnreached{std::numeric_limits<std::int32_t>::max(), kInf};

}  // namespace

SpfResult spf_to(const topo::Topology& topo, topo::SwitchId dest_sw,
                 std::span<const double> channel_weight,
                 const ChannelFilter& filter) {
  const auto n = static_cast<std::size_t>(topo.num_switches());
  std::vector<Cost> cost(n, kUnreached);
  SpfResult res;
  res.out_channel.assign(n, topo::kInvalidChannel);
  res.dist.assign(n, kInf);

  using Entry = std::pair<Cost, topo::SwitchId>;
  auto later = [](const Entry& a, const Entry& b) { return b.first < a.first; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(later)> pq(later);
  cost[static_cast<std::size_t>(dest_sw)] = Cost{0, 0.0};
  pq.emplace(Cost{0, 0.0}, dest_sw);

  while (!pq.empty()) {
    const auto [c, u] = pq.top();
    pq.pop();
    if (cost[static_cast<std::size_t>(u)] < c) continue;  // stale
    // Relax the *reverse* of each out-channel of u: the forward channel
    // v -> u extends v's path toward the destination.
    for (topo::ChannelId out : topo.switch_out(u)) {
      const topo::Channel& oc = topo.channel(out);
      if (!oc.dst.is_switch()) continue;
      const topo::ChannelId r = oc.reverse;  // v -> u
      if (!admitted(topo, filter, r)) continue;
      const auto v = static_cast<std::size_t>(oc.dst.index);
      const Cost nc{c.hops + 1, c.weight + weight_of(channel_weight, r)};
      if (nc < cost[v] ||
          (nc == cost[v] && res.out_channel[v] != topo::kInvalidChannel &&
           r < res.out_channel[v])) {
        const bool improved = nc < cost[v];
        cost[v] = nc;
        res.out_channel[v] = r;
        if (improved) pq.emplace(nc, oc.dst.index);
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v)
    if (!(cost[v] == kUnreached)) res.dist[v] = static_cast<double>(cost[v].hops);
  return res;
}

SpfResult updown_spf_to(const topo::Topology& topo, topo::SwitchId dest_sw,
                        std::span<const std::int32_t> rank,
                        std::span<const double> channel_weight,
                        const ChannelFilter& filter) {
  const auto n = static_cast<std::size_t>(topo.num_switches());
  // State 0: still inside the forward-down segment (walking backward from
  // the destination); state 1: inside the forward-up segment.
  std::vector<Cost> cost[2] = {std::vector<Cost>(n, kUnreached),
                               std::vector<Cost>(n, kUnreached)};
  std::vector<topo::ChannelId> parent[2] = {
      std::vector<topo::ChannelId>(n, topo::kInvalidChannel),
      std::vector<topo::ChannelId>(n, topo::kInvalidChannel)};

  // Forward hop v->u is "up" iff it moves toward the roots.
  auto forward_is_up = [&](topo::SwitchId v, topo::SwitchId u) {
    const auto rv = rank[static_cast<std::size_t>(v)];
    const auto ru = rank[static_cast<std::size_t>(u)];
    if (ru != rv) return ru < rv;
    return u < v;  // deterministic orientation for equal ranks
  };

  using Entry = std::tuple<Cost, std::int8_t, topo::SwitchId>;
  auto later = [](const Entry& a, const Entry& b) {
    return std::get<0>(b) < std::get<0>(a);
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(later)> pq(later);
  cost[0][static_cast<std::size_t>(dest_sw)] = Cost{0, 0.0};
  pq.emplace(Cost{0, 0.0}, std::int8_t{0}, dest_sw);

  while (!pq.empty()) {
    const auto [c, state, u] = pq.top();
    pq.pop();
    if (cost[state][static_cast<std::size_t>(u)] < c) continue;
    for (topo::ChannelId out : topo.switch_out(u)) {
      const topo::Channel& oc = topo.channel(out);
      if (!oc.dst.is_switch()) continue;
      const topo::ChannelId r = oc.reverse;  // forward channel v -> u
      if (!admitted(topo, filter, r)) continue;
      const topo::SwitchId v = oc.dst.index;
      const bool up_hop = forward_is_up(v, u);
      std::int8_t next_state;
      if (up_hop) {
        next_state = 1;  // entering (or continuing) the forward-up segment
      } else {
        if (state != 0) continue;  // a down hop after up hops is illegal
        next_state = 0;
      }
      const auto vi = static_cast<std::size_t>(v);
      const Cost nc{c.hops + 1, c.weight + weight_of(channel_weight, r)};
      auto& dvec = cost[next_state];
      auto& pvec = parent[next_state];
      if (nc < dvec[vi] ||
          (nc == dvec[vi] && pvec[vi] != topo::kInvalidChannel &&
           r < pvec[vi])) {
        const bool improved = nc < dvec[vi];
        dvec[vi] = nc;
        pvec[vi] = r;
        if (improved) pq.emplace(nc, next_state, v);
      }
    }
  }

  SpfResult res;
  res.out_channel.assign(n, topo::kInvalidChannel);
  res.dist.assign(n, kInf);
  res.dist[static_cast<std::size_t>(dest_sw)] = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    if (static_cast<topo::SwitchId>(v) == dest_sw) continue;
    // Table-consistency rule: a switch that *can* reach the destination
    // going only down must store that all-down path, even when an
    // up-then-down path would be shorter.  Destination-based forwarding
    // composes hop by hop: a predecessor that descends into this switch
    // assumed an all-down suffix, and an up-turn here would create a
    // down-up sequence -- illegal and (as the CDG test shows on irregular
    // fabrics) a potential deadlock cycle.  Prefixing an up hop to *any*
    // stored path is always legal, so state-1 switches may reference
    // either kind of successor.
    const std::int8_t best = !(cost[0][v] == kUnreached) ? 0 : 1;
    if (cost[best][v] == kUnreached) continue;
    res.dist[v] = static_cast<double>(cost[best][v].hops);
    res.out_channel[v] = parent[best][v];
  }
  return res;
}

}  // namespace hxsim::routing
