#include "routing/cdg.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace hxsim::routing {

IncrementalDag::IncrementalDag(std::int32_t num_nodes)
    : n_(num_nodes),
      out_(static_cast<std::size_t>(num_nodes)),
      in_(static_cast<std::size_t>(num_nodes)),
      ord_(static_cast<std::size_t>(num_nodes)),
      node_at_(static_cast<std::size_t>(num_nodes)),
      mark_(static_cast<std::size_t>(num_nodes), 0) {
  std::iota(ord_.begin(), ord_.end(), 0);
  std::iota(node_at_.begin(), node_at_.end(), 0);
}

bool IncrementalDag::has_edge(std::int32_t u, std::int32_t v) const {
  return edge_set_.contains(key(u, v));
}

bool IncrementalDag::dfs_forward(std::int32_t v, std::int32_t ub,
                                 std::vector<std::int32_t>& visited) {
  // Iterative DFS; nodes beyond position ub cannot participate in a cycle
  // with the new edge.  Reaching position ub itself means reaching u.
  std::vector<std::int32_t> stack{v};
  mark_[static_cast<std::size_t>(v)] = 1;
  visited.push_back(v);
  bool found = false;
  while (!stack.empty()) {
    const std::int32_t w = stack.back();
    stack.pop_back();
    for (std::int32_t next : out_[static_cast<std::size_t>(w)]) {
      const std::int32_t pos = ord_[static_cast<std::size_t>(next)];
      if (pos == ub) {
        found = true;  // cycle: u reachable from v
        continue;
      }
      if (pos > ub || mark_[static_cast<std::size_t>(next)]) continue;
      mark_[static_cast<std::size_t>(next)] = 1;
      visited.push_back(next);
      stack.push_back(next);
    }
  }
  return found;
}

void IncrementalDag::dfs_backward(std::int32_t u, std::int32_t lb,
                                  std::vector<std::int32_t>& visited) {
  std::vector<std::int32_t> stack{u};
  mark_[static_cast<std::size_t>(u)] = 1;
  visited.push_back(u);
  while (!stack.empty()) {
    const std::int32_t w = stack.back();
    stack.pop_back();
    for (std::int32_t prev : in_[static_cast<std::size_t>(w)]) {
      const std::int32_t pos = ord_[static_cast<std::size_t>(prev)];
      if (pos < lb || mark_[static_cast<std::size_t>(prev)]) continue;
      mark_[static_cast<std::size_t>(prev)] = 1;
      visited.push_back(prev);
      stack.push_back(prev);
    }
  }
}

void IncrementalDag::reorder(std::vector<std::int32_t>& delta_b,
                             std::vector<std::int32_t>& delta_f) {
  auto by_position = [this](std::int32_t a, std::int32_t b) {
    return ord_[static_cast<std::size_t>(a)] < ord_[static_cast<std::size_t>(b)];
  };
  std::sort(delta_b.begin(), delta_b.end(), by_position);
  std::sort(delta_f.begin(), delta_f.end(), by_position);

  std::vector<std::int32_t> pool;
  pool.reserve(delta_b.size() + delta_f.size());
  for (std::int32_t node : delta_b)
    pool.push_back(ord_[static_cast<std::size_t>(node)]);
  for (std::int32_t node : delta_f)
    pool.push_back(ord_[static_cast<std::size_t>(node)]);
  std::sort(pool.begin(), pool.end());

  std::size_t slot = 0;
  auto place = [&](std::int32_t node) {
    const std::int32_t pos = pool[slot++];
    ord_[static_cast<std::size_t>(node)] = pos;
    node_at_[static_cast<std::size_t>(pos)] = node;
  };
  for (std::int32_t node : delta_b) place(node);
  for (std::int32_t node : delta_f) place(node);
}

bool IncrementalDag::add_edge(std::int32_t u, std::int32_t v) {
  if (u < 0 || u >= n_ || v < 0 || v >= n_)
    throw std::out_of_range("IncrementalDag::add_edge: node out of range");
  if (u == v) return false;  // a self-loop is a cycle
  if (has_edge(u, v)) return true;

  const std::int32_t lb = ord_[static_cast<std::size_t>(v)];
  const std::int32_t ub = ord_[static_cast<std::size_t>(u)];
  if (lb > ub) {
    // Order already consistent; plain insertion.
    edge_set_.insert(key(u, v));
    out_[static_cast<std::size_t>(u)].push_back(v);
    in_[static_cast<std::size_t>(v)].push_back(u);
    return true;
  }

  // Pearce-Kelly: discover the affected region [lb, ub].
  std::vector<std::int32_t> delta_f;
  const bool cycle = dfs_forward(v, ub, delta_f);
  if (cycle) {
    for (std::int32_t node : delta_f) mark_[static_cast<std::size_t>(node)] = 0;
    return false;
  }
  std::vector<std::int32_t> delta_b;
  dfs_backward(u, lb, delta_b);
  reorder(delta_b, delta_f);
  for (std::int32_t node : delta_f) mark_[static_cast<std::size_t>(node)] = 0;
  for (std::int32_t node : delta_b) mark_[static_cast<std::size_t>(node)] = 0;

  edge_set_.insert(key(u, v));
  out_[static_cast<std::size_t>(u)].push_back(v);
  in_[static_cast<std::size_t>(v)].push_back(u);
  return true;
}

void IncrementalDag::remove_edge(std::int32_t u, std::int32_t v) {
  const auto it = edge_set_.find(key(u, v));
  if (it == edge_set_.end()) return;
  edge_set_.erase(it);
  auto& outs = out_[static_cast<std::size_t>(u)];
  outs.erase(std::find(outs.begin(), outs.end(), v));
  auto& ins = in_[static_cast<std::size_t>(v)];
  ins.erase(std::find(ins.begin(), ins.end(), u));
}

VlLayering::VlLayering(std::int32_t num_channels, std::int32_t max_layers) {
  if (max_layers < 1)
    throw std::invalid_argument("VlLayering: need at least one layer");
  layers_.reserve(static_cast<std::size_t>(max_layers));
  for (std::int32_t i = 0; i < max_layers; ++i)
    layers_.emplace_back(num_channels);
}

std::int32_t VlLayering::place_path(
    std::span<const std::int32_t> channel_path) {
  if (channel_path.size() < 2) {
    // No switch-to-switch dependency; any layer works, use the first.
    layers_used_ = std::max(layers_used_, 1);
    return 0;
  }
  for (std::int32_t layer = 0; layer < max_layers(); ++layer) {
    IncrementalDag& dag = layers_[static_cast<std::size_t>(layer)];
    std::vector<std::pair<std::int32_t, std::int32_t>> added;
    bool ok = true;
    for (std::size_t i = 0; i + 1 < channel_path.size(); ++i) {
      const std::int32_t a = channel_path[i];
      const std::int32_t b = channel_path[i + 1];
      if (dag.has_edge(a, b)) continue;
      if (!dag.add_edge(a, b)) {
        ok = false;
        break;
      }
      added.emplace_back(a, b);
    }
    if (ok) {
      layers_used_ = std::max(layers_used_, layer + 1);
      return layer;
    }
    for (auto [a, b] : added) dag.remove_edge(a, b);
  }
  return -1;
}

bool acyclic(std::int32_t num_nodes,
             std::span<const std::pair<std::int32_t, std::int32_t>> edges) {
  std::vector<std::vector<std::int32_t>> out(
      static_cast<std::size_t>(num_nodes));
  std::vector<std::int32_t> indegree(static_cast<std::size_t>(num_nodes), 0);
  for (const auto& [u, v] : edges) {
    out[static_cast<std::size_t>(u)].push_back(v);
    ++indegree[static_cast<std::size_t>(v)];
  }
  std::vector<std::int32_t> ready;
  for (std::int32_t i = 0; i < num_nodes; ++i)
    if (indegree[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
  std::int64_t processed = 0;
  while (!ready.empty()) {
    const std::int32_t u = ready.back();
    ready.pop_back();
    ++processed;
    for (std::int32_t v : out[static_cast<std::size_t>(u)])
      if (--indegree[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
  }
  return processed == num_nodes;
}

}  // namespace hxsim::routing
