// Linear forwarding tables (LFT) and path extraction.
//
// InfiniBand switches forward by destination LID only: every switch holds a
// table dlid -> out-port.  We key the entry by the *out-channel* id, which
// identifies the port unambiguously and is what the simulators consume.
// A VlMap carries the per-path virtual-lane (service-level) assignment the
// deadlock-free engines compute alongside the LFTs.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/lid_space.hpp"
#include "topo/topology.hpp"

namespace hxsim::routing {

class ForwardingTables {
 public:
  ForwardingTables() = default;
  ForwardingTables(std::int32_t num_switches, Lid max_lid);

  void set(topo::SwitchId sw, Lid dlid, topo::ChannelId out);

  /// Out-channel at `sw` for `dlid`; kInvalidChannel if no route.
  [[nodiscard]] topo::ChannelId next(topo::SwitchId sw, Lid dlid) const {
    return table_[index(sw, dlid)];
  }

  [[nodiscard]] std::int32_t num_switches() const noexcept { return switches_; }
  [[nodiscard]] Lid max_lid() const noexcept { return max_lid_; }

  struct Path {
    bool ok = false;
    /// terminal-up, switch-switch..., switch-terminal channels in order.
    /// Empty (with ok) when src is the destination terminal itself.
    std::vector<topo::ChannelId> channels;

    /// Number of switch-to-switch hops.
    [[nodiscard]] std::int32_t switch_hops() const noexcept {
      return channels.size() >= 2
                 ? static_cast<std::int32_t>(channels.size()) - 2
                 : 0;
    }
  };

  /// Walks the tables from `src`'s switch to the owner of `dlid`.
  /// ok == false on: unassigned dlid, missing entry, disabled channel,
  /// or a forwarding loop (more hops than switches).
  [[nodiscard]] Path path(const topo::Topology& topo, const LidSpace& lids,
                          topo::NodeId src, Lid dlid) const;

  /// True if path() would succeed (cheaper: no vector is built).
  [[nodiscard]] bool reachable(const topo::Topology& topo,
                               const LidSpace& lids, topo::NodeId src,
                               Lid dlid) const;

  /// Entry-wise equality (the determinism tests compare 1-thread vs
  /// N-thread engine output).
  [[nodiscard]] bool operator==(const ForwardingTables&) const = default;

 private:
  [[nodiscard]] std::size_t index(topo::SwitchId sw, Lid dlid) const {
    return static_cast<std::size_t>(sw) *
               (static_cast<std::size_t>(max_lid_) + 1) +
           static_cast<std::size_t>(dlid);
  }

  std::int32_t switches_ = 0;
  Lid max_lid_ = kInvalidLid;
  std::vector<topo::ChannelId> table_;
};

/// Virtual-lane assignment per (source switch, destination LID).
class VlMap {
 public:
  VlMap() = default;
  VlMap(std::int32_t num_switches, Lid max_lid);

  void set(topo::SwitchId sw, Lid dlid, std::int8_t vl);
  [[nodiscard]] std::int8_t vl(topo::SwitchId sw, Lid dlid) const {
    if (table_.empty()) return 0;
    return table_[static_cast<std::size_t>(sw) *
                      (static_cast<std::size_t>(max_lid_) + 1) +
                  static_cast<std::size_t>(dlid)];
  }
  [[nodiscard]] std::int8_t max_vl() const noexcept { return max_vl_; }

  [[nodiscard]] bool operator==(const VlMap&) const = default;

 private:
  Lid max_lid_ = kInvalidLid;
  std::int8_t max_vl_ = 0;
  std::vector<std::int8_t> table_;
};

}  // namespace hxsim::routing
