// Online-fault resilience campaign: fault mid-run, measure the transient.
//
// The offline campaign (workloads/resilience.hpp) answers "how good is the
// fabric after the reroute"; this one answers the operator's harder
// question: how much traffic dies *between* the fault and the repaired
// tables reaching every switch, and how much of it end-host retry wins
// back.  One seeded link-fault stage is planned, timed mid-run, and the
// packet engine replays the same message set through a ladder of arms:
//
//   baseline        intact fabric, epoch-0 tables only
//   static-reroute  repaired tables installed from t = 0 (the envelope an
//                   offline reroute would achieve) plus the timed faults
//   delay sweep     epoch 0 -> epoch 1 with a per-switch propagation delay
//                   after the fault instant, retry off and retry on
//   adaptive        path-less DAL/PARX escape routing through the faults
//
// Every arm runs on both PktSim engines and the two Results are compared
// field-for-field: the typed/reference bitwise-identity contract extends
// to drops, retries, epochs and statuses.  The campaign also proves the
// off switch (an inert PktOnlineConfig leaves static-path runs
// bit-identical to online = nullptr) and the run_batch thread-count
// invariance of the retry jitter stream.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/pkt_trace.hpp"
#include "routing/engine.hpp"
#include "routing/lid_space.hpp"
#include "sim/pktsim.hpp"
#include "topo/topology.hpp"

namespace hxsim::workloads {

/// One arm's outcome (the typed engine's numbers; `engines_identical`
/// certifies the reference engine produced the identical Result).
struct OnlineResilienceRow {
  std::string arm;
  /// Per-switch install delay of the repaired tables after the fault [s];
  /// 0 for arms outside the sweep.
  double propagation_delay = 0.0;
  bool faulted = false;
  bool retry = false;
  bool adaptive = false;
  bool engines_identical = false;
  bool deadlock = false;
  double makespan = 0.0;  // last delivered completion (end_time if none)
  std::int64_t messages = 0;
  std::int64_t messages_delivered = 0;
  std::int64_t messages_abandoned = 0;
  std::int64_t packets_total = 0;
  std::int64_t packets_delivered = 0;
  std::int64_t packets_dropped = 0;
  /// Indexed by obs::PktDropCause.
  std::array<std::int64_t, obs::kNumPktDropCauses> dropped_by_cause{};
  std::int64_t retries = 0;
  /// Delivered fraction of offered bytes (a message counts only when its
  /// final attempt fully arrived).
  double delivered_fraction = 0.0;
  /// delivered_fraction normalised by the baseline arm's: the campaign's
  /// goodput-retention metric.
  double retention = 0.0;
  /// Extra time the transient cost: makespan minus the baseline's, >= 0.
  double recovery_time = 0.0;
};

struct OnlineResilienceReport {
  std::vector<OnlineResilienceRow> rows;
  /// Blackhole columns of the freshly computed epochs (reroute_and_verify
  /// throws unless both are zero; recorded for the bench JSON).
  std::int64_t blackhole_columns_epoch0 = 0;
  std::int64_t blackhole_columns_epoch1 = 0;
  std::int32_t cables_failed = 0;
  /// Off-switch contract: static-path runs with an *inert* attached
  /// PktOnlineConfig are bitwise identical to online = nullptr.
  bool nofault_identical = false;
  /// Every arm's typed and reference Results were field-for-field equal.
  bool all_engines_identical = false;
  /// run_batch at 1 worker and at options.threads workers agreed bitwise
  /// on the retry-on faulted arm.
  bool threads_identical = false;
  /// min over sweep delays of (retention with retry - retention without):
  /// the claims-registry contract that retransmission never loses goodput.
  double retry_retention_gain = 0.0;
};

struct OnlineResilienceOptions {
  /// Cables cut by the single timed fault stage (seeded draw).
  std::int32_t links_failed = 6;
  std::uint64_t fault_seed = 1;
  /// Simulation time the cables die [s]; placed mid-injection-window.
  double fault_time = 10e-6;
  /// Per-switch install delays swept for the repaired epoch [s].
  std::vector<double> propagation_delays = {0.0, 5e-6, 20e-6, 50e-6};
  std::int32_t messages = 96;
  std::int64_t bytes = 8 * 1024;
  /// Inject times are spread evenly over [0, inject_window).
  double inject_window = 20e-6;
  std::uint64_t traffic_seed = 1;
  /// Retry model of the retry-on arms (`enabled` is set per arm).
  sim::PktRetryConfig retry{/*enabled=*/false, /*timeout=*/50e-6,
                            /*backoff_base=*/5e-6, /*jitter=*/0.5,
                            /*max_retries=*/6, /*seed=*/1};
  std::int32_t num_vls = 8;
  std::int32_t ttl_hops = 64;
  /// Worker count of the run_batch thread-identity check (compared
  /// against 1 worker) and of the reroutes.
  std::int32_t threads = 0;
  std::size_t max_events = SIZE_MAX;
};

/// Runs the campaign on `topo` with `engine` computing both epochs (the
/// fabric is faulted only inside a ScheduleRevertGuard scope and returned
/// intact).  `adaptive`, when non-null, adds the adaptive-escape arm.
/// Throws if either epoch ships blackhole columns (reroute_and_verify) or
/// the fault stage disabled nothing.
[[nodiscard]] OnlineResilienceReport run_online_resilience_campaign(
    topo::Topology& topo, routing::RoutingEngine& engine,
    const routing::LidSpace& lids, const sim::AdaptiveRouter* adaptive,
    const OnlineResilienceOptions& options = {});

}  // namespace hxsim::workloads
