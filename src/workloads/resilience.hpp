// Degraded-fabric resilience campaign driver.
//
// The question the paper's testbed raises but never answers at scale
// (its fabrics were *already* degraded, Section 2.3 / footnote 7): how much
// routability and bandwidth does each routing engine lose as the fabric
// fails underneath it, and do its tables stay deadlock-free?
//
// run_resilience_campaign() executes the operational loop "fail, reroute,
// measure" end to end: it plans a seeded FaultSchedule, and at every stage
// (stage 0 = intact baseline) re-runs each engine on the degraded fabric,
// audits the shipped tables (CDG acyclicity per VL, all-pairs path census)
// and measures delivered throughput on synthetic traffic with the max-min
// flow solver.  Lost pairs count as zero throughput: the metric is
// "fraction of attempted injection bandwidth delivered", so losing nodes
// cannot masquerade as a faster fabric.  All randomness is seeded and all
// parallel pieces (route computation, census, solve_batch) are
// deterministic at any thread count, so a campaign is replayable
// bit-for-bit.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "obs/resilience.hpp"
#include "routing/engine.hpp"
#include "sim/flowsim.hpp"
#include "sim/link_model.hpp"
#include "topo/fault_injector.hpp"

namespace hxsim::workloads {

/// Traffic the retention metric is measured on.
enum class ResilienceTraffic : std::int8_t {
  kUniformRandom,  // random permutations (one flow per non-fixed point)
  kMpiGraphShift,  // mpiGraph-style shifts i -> (i + r) mod N
  kEbbBisection,   // random bisections, paired across the cut (eBB-style)
};

[[nodiscard]] const char* to_string(ResilienceTraffic traffic);

/// One engine entered into the campaign.  The engine is re-run via
/// compute() at every stage (not owned; must outlive the campaign).
struct ResilienceEngine {
  std::string name;
  routing::RoutingEngine* engine = nullptr;
  routing::LidSpace lids;
};

struct ResilienceOptions {
  topo::FaultSchedule::Options schedule;
  ResilienceTraffic traffic = ResilienceTraffic::kUniformRandom;
  /// Traffic rounds averaged per stage (permutations / shifts / bisections).
  std::int32_t traffic_samples = 8;
  std::uint64_t traffic_seed = 1;
  std::int32_t threads = 0;  // 0: exec::default_threads()
  sim::LinkModel link = {};
  /// Max-min core behind the per-stage warm-start solves (solve_active on
  /// persistent flow sets).  Both engines are bit-identical, so this only
  /// trades solve time; kReference is the oracle arm.
  sim::FlowSim::SolverEngine solver = sim::FlowSim::SolverEngine::kIndexed;
};

/// Plans `options.schedule` on `topo`, appends `extra_stages` (e.g. plane
/// faults from hyperx_plane_fault) after the planned ones, and runs the
/// stage x engine campaign.  `topo` is mutated stage by stage and fully
/// restored (every scheduled cable re-enabled) before returning, so the
/// fabric object the engines reference ends up intact.
///
/// An engine that throws at some stage (e.g. PARX exceeding its VL budget
/// on a heavily degraded fabric) is recorded as a failed sample (zero
/// reachability/throughput, retention envelope drops to 0) and the
/// campaign continues.
[[nodiscard]] obs::DegradationSeries run_resilience_campaign(
    topo::Topology& topo, const std::string& fabric_name,
    std::span<ResilienceEngine> engines, const ResilienceOptions& options,
    std::span<const topo::FaultStage> extra_stages = {});

}  // namespace hxsim::workloads
