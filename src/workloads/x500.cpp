#include "workloads/x500.hpp"

#include <stdexcept>

namespace hxsim::workloads {

double gflops(const AppWorkload& app, double kernel_seconds) {
  if (kernel_seconds <= 0.0)
    throw std::invalid_argument("gflops: non-positive runtime");
  return app.total_flops / kernel_seconds / 1e9;
}

double gteps(const AppWorkload& app, double kernel_seconds) {
  if (kernel_seconds <= 0.0)
    throw std::invalid_argument("gteps: non-positive runtime");
  return app.total_edges / kernel_seconds / 1e9;
}

}  // namespace hxsim::workloads
