#include "workloads/mpigraph.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/units.hpp"

namespace hxsim::workloads {

stats::Heatmap mpigraph(const mpi::Cluster& cluster,
                        const mpi::Placement& placement,
                        std::int32_t nodes_used,
                        const MpiGraphOptions& options) {
  if (nodes_used < 2 || nodes_used > placement.num_ranks())
    throw std::invalid_argument("mpigraph: bad node count");

  stats::Heatmap map(static_cast<std::size_t>(nodes_used),
                     static_cast<std::size_t>(nodes_used),
                     cluster.topo().name() + " mpiGraph " +
                         std::to_string(nodes_used) + " nodes");

  stats::Rng rng(options.seed);
  sim::FlowSim flows(cluster.topo(), cluster.link());

  // Shift rounds are independent once their flow paths are fixed, so the
  // rounds of a block are solved concurrently.  Path generation stays
  // strictly in shift order (route_message consumes the RNG), so the
  // heatmap is identical to the sequential run at any thread count; the
  // block bound keeps at most kBlock rounds of flows in memory.
  constexpr std::int32_t kBlock = 32;
  std::vector<std::vector<sim::Flow>> rounds;
  for (std::int32_t block = 1; block < nodes_used; block += kBlock) {
    const std::int32_t end = std::min(block + kBlock, nodes_used);
    rounds.clear();
    for (std::int32_t shift = block; shift < end; ++shift) {
      std::vector<sim::Flow> round;
      round.reserve(static_cast<std::size_t>(nodes_used));
      for (std::int32_t i = 0; i < nodes_used; ++i) {
        const topo::NodeId src = placement.node_of(i);
        const topo::NodeId dst = placement.node_of((i + shift) % nodes_used);
        auto msg = cluster.route_message(src, dst, options.bytes, rng);
        if (!msg)
          throw std::runtime_error("mpigraph: unroutable node pair");
        round.push_back(sim::Flow{std::move(msg->path), options.bytes});
      }
      rounds.push_back(std::move(round));
    }
    const auto rates = flows.solve_batch(rounds);
    for (std::int32_t shift = block; shift < end; ++shift) {
      const auto& rate = rates[static_cast<std::size_t>(shift - block)];
      for (std::int32_t i = 0; i < nodes_used; ++i) {
        const std::int32_t j = (i + shift) % nodes_used;
        // Streaming bandwidth of the pair == its steady fair share.
        map.set(static_cast<std::size_t>(j), static_cast<std::size_t>(i),
                rate[static_cast<std::size_t>(i)] /
                    static_cast<double>(stats::kGiB));
      }
    }
  }
  return map;
}

}  // namespace hxsim::workloads
