#include "workloads/mpigraph.hpp"

#include <stdexcept>

#include "stats/units.hpp"

namespace hxsim::workloads {

stats::Heatmap mpigraph(const mpi::Cluster& cluster,
                        const mpi::Placement& placement,
                        std::int32_t nodes_used,
                        const MpiGraphOptions& options) {
  if (nodes_used < 2 || nodes_used > placement.num_ranks())
    throw std::invalid_argument("mpigraph: bad node count");

  stats::Heatmap map(static_cast<std::size_t>(nodes_used),
                     static_cast<std::size_t>(nodes_used),
                     cluster.topo().name() + " mpiGraph " +
                         std::to_string(nodes_used) + " nodes");

  stats::Rng rng(options.seed);
  sim::FlowSim flows(cluster.topo(), cluster.link());

  for (std::int32_t shift = 1; shift < nodes_used; ++shift) {
    std::vector<sim::Flow> round;
    round.reserve(static_cast<std::size_t>(nodes_used));
    for (std::int32_t i = 0; i < nodes_used; ++i) {
      const topo::NodeId src = placement.node_of(i);
      const topo::NodeId dst = placement.node_of((i + shift) % nodes_used);
      auto msg = cluster.route_message(src, dst, options.bytes, rng);
      if (!msg)
        throw std::runtime_error("mpigraph: unroutable node pair");
      round.push_back(sim::Flow{std::move(msg->path), options.bytes});
    }
    const std::vector<double> rate = flows.fair_rates(round);
    for (std::int32_t i = 0; i < nodes_used; ++i) {
      const std::int32_t j = (i + shift) % nodes_used;
      // Streaming bandwidth of the pair == its steady fair share.
      map.set(static_cast<std::size_t>(j), static_cast<std::size_t>(i),
              rate[static_cast<std::size_t>(i)] /
                  static_cast<double>(stats::kGiB));
    }
  }
  return map;
}

}  // namespace hxsim::workloads
