#include "workloads/apps.hpp"

#include <cmath>
#include <stdexcept>

#include "mpi/collectives.hpp"
#include "stats/units.hpp"

namespace hxsim::workloads {

namespace col = mpi::collectives;
using stats::kKiB;
using stats::kMiB;

const char* to_string(AppId id) {
  switch (id) {
    case AppId::kAmg:
      return "AMG";
    case AppId::kComd:
      return "CoMD";
    case AppId::kMinife:
      return "MiFE";
    case AppId::kSwfft:
      return "FFT";
    case AppId::kFfvc:
      return "FFVC";
    case AppId::kMvmc:
      return "mVMC";
    case AppId::kNtchem:
      return "NTCh";
    case AppId::kMilc:
      return "MILC";
    case AppId::kQbox:
      return "Qbox";
    case AppId::kHpl:
      return "HPL";
    case AppId::kHpcg:
      return "HPCG";
    case AppId::kGraph500:
      return "GraD";
    case AppId::kMultiPingPong:
      return "MuPP";
    case AppId::kEmDl:
      return "EmDL";
  }
  return "?";
}

std::vector<AppId> proxy_apps() {
  return {AppId::kAmg,  AppId::kComd,   AppId::kFfvc,
          AppId::kMilc, AppId::kMinife, AppId::kMvmc,
          AppId::kNtchem, AppId::kQbox, AppId::kSwfft};
}

std::vector<AppId> x500_apps() {
  return {AppId::kHpl, AppId::kHpcg, AppId::kGraph500};
}

std::vector<AppId> capacity_apps() {
  return {AppId::kAmg,    AppId::kComd,     AppId::kFfvc,  AppId::kGraph500,
          AppId::kHpcg,   AppId::kHpl,      AppId::kMilc,  AppId::kMinife,
          AppId::kMvmc,   AppId::kNtchem,   AppId::kQbox,  AppId::kSwfft,
          AppId::kMultiPingPong, AppId::kEmDl};
}

// --- grid helpers -----------------------------------------------------------

namespace {

std::vector<std::int32_t> balanced_factors(std::int32_t n,
                                           std::int32_t parts) {
  // Greedy: repeatedly peel off the divisor closest to the ideal root.
  std::vector<std::int32_t> dims;
  std::int32_t rest = n;
  for (std::int32_t p = parts; p > 1; --p) {
    const auto ideal = static_cast<std::int32_t>(std::round(
        std::pow(static_cast<double>(rest), 1.0 / static_cast<double>(p))));
    std::int32_t best = 1;
    for (std::int32_t d = 1;
         d <= ideal || best == 1; ++d) {
      if (d > rest) break;
      if (rest % d == 0) best = d;
    }
    dims.push_back(best);
    rest /= best;
  }
  dims.push_back(rest);
  std::sort(dims.begin(), dims.end());
  return dims;
}

/// Periodic halo on an arbitrary-rank grid: for each dimension and
/// direction one round of neighbour messages.
mpi::Schedule halo_grid(std::span<const std::int32_t> dims,
                        std::int64_t face_bytes) {
  std::int32_t n = 1;
  for (std::int32_t d : dims) n *= d;
  mpi::Schedule s;
  std::vector<std::int32_t> stride(dims.size(), 1);
  for (std::size_t d = 1; d < dims.size(); ++d)
    stride[d] = stride[d - 1] * dims[d - 1];

  for (std::size_t d = 0; d < dims.size(); ++d) {
    if (dims[d] == 1) continue;  // degenerate dimension: neighbour is self
    for (const std::int32_t dir : {+1, -1}) {
      mpi::Round round;
      round.reserve(static_cast<std::size_t>(n));
      for (std::int32_t r = 0; r < n; ++r) {
        const std::int32_t coord = (r / stride[d]) % dims[d];
        const std::int32_t next = (coord + dir + dims[d]) % dims[d];
        const std::int32_t peer = r + (next - coord) * stride[d];
        round.push_back(mpi::RankMsg{r, peer, face_bytes});
      }
      s.push_back(std::move(round));
    }
  }
  return s;
}

}  // namespace

std::array<std::int32_t, 3> dims3(std::int32_t n) {
  const auto f = balanced_factors(n, 3);
  return {f[0], f[1], f[2]};
}

std::array<std::int32_t, 2> dims2(std::int32_t n) {
  const auto f = balanced_factors(n, 2);
  return {f[0], f[1]};
}

mpi::Schedule halo3d(std::int32_t nranks, std::int64_t face_bytes) {
  const auto d = dims3(nranks);
  return halo_grid(d, face_bytes);
}

mpi::Schedule halo4d(std::int32_t nranks, std::int64_t face_bytes) {
  const auto f = balanced_factors(nranks, 4);
  return halo_grid(f, face_bytes);
}

mpi::Schedule grouped_alltoall(std::int32_t nranks, std::int32_t group,
                               std::int64_t bytes_per_pair) {
  if (group < 1 || nranks % group != 0)
    throw std::invalid_argument("grouped_alltoall: group must divide n");
  mpi::Schedule s;
  for (std::int32_t r = 1; r < group; ++r) {
    mpi::Round round;
    round.reserve(static_cast<std::size_t>(nranks));
    for (std::int32_t i = 0; i < nranks; ++i) {
      const std::int32_t base = (i / group) * group;
      const std::int32_t local = i - base;
      round.push_back(mpi::RankMsg{i, base + (local + r) % group,
                                   bytes_per_pair});
    }
    s.push_back(std::move(round));
  }
  return s;
}

void append_schedule(mpi::Schedule& head, const mpi::Schedule& tail) {
  head.insert(head.end(), tail.begin(), tail.end());
}

// --- application skeletons --------------------------------------------------

namespace {

/// AMG: hypre problem 1, 256^3 cube, 27-point stencil.  One V-cycle per
/// iteration: halo exchanges shrink by 4x per level, one 8-byte Allreduce
/// (convergence check) per level.
AppWorkload make_amg(std::int32_t n) {
  AppWorkload app;
  app.name = "AMG";
  constexpr std::int32_t kLevels = 6;
  std::int64_t face = 256LL * 256 * 8;  // finest-level face
  for (std::int32_t level = 0; level < kLevels; ++level) {
    append_schedule(app.iteration_comm, halo3d(n, face));
    append_schedule(app.iteration_comm,
                    col::allreduce_recursive_doubling(n, 8));
    face = std::max<std::int64_t>(face / 4, 64);
  }
  app.compute_per_iteration = 24.0;
  app.iterations = 25;  // ~600 s kernel
  return app;
}

/// CoMD: 64^3 atoms per process, Sendrecv halos in 3 dimensions plus a
/// small Allreduce (energy) and Bcast per step.
AppWorkload make_comd(std::int32_t n) {
  AppWorkload app;
  app.name = "CoMD";
  const std::int64_t face = 64LL * 64 * 64;  // boundary atoms x ~16 B
  app.iteration_comm = halo3d(n, face);
  append_schedule(app.iteration_comm, col::allreduce_recursive_doubling(n, 8));
  append_schedule(app.iteration_comm, col::bcast_binomial(n, 8));
  app.compute_per_iteration = 4.0;
  app.iterations = 100;  // ~400 s kernel
  return app;
}

/// MiniFE: 100^3-per-process implicit FE; each CG iteration is one SpMV
/// halo plus two dot-product Allreduces.
AppWorkload make_minife(std::int32_t n) {
  AppWorkload app;
  app.name = "MiFE";
  const std::int64_t face = 100LL * 100 * 8;
  app.iteration_comm = halo3d(n, face);
  append_schedule(app.iteration_comm, col::allreduce_recursive_doubling(n, 8));
  append_schedule(app.iteration_comm, col::allreduce_recursive_doubling(n, 8));
  app.compute_per_iteration = 1.5;
  app.iterations = 200;  // ~300 s kernel
  return app;
}

/// SWFFT: 3-D FFT with pencil decomposition; each repetition performs three
/// transposes = sub-communicator all-to-alls over the 2-D process grid.
/// Weak-scaled ~128^3 x 8 B per process.
AppWorkload make_swfft(std::int32_t n) {
  AppWorkload app;
  app.name = "FFT";
  app.power_of_two_scaling = true;
  const auto [a, b] = dims2(n);
  // HACC-scale pencils: 256^3 x 8 B per process moves (nearly) the whole
  // local volume through every transpose, which is what makes SWFFT the
  // paper's most network-bound proxy at scale.
  const std::int64_t local_bytes = 256LL * 256 * 256 * 8;
  if (a > 1)
    append_schedule(app.iteration_comm,
                    grouped_alltoall(n, a, local_bytes / a));
  if (b > 1)
    append_schedule(app.iteration_comm,
                    grouped_alltoall(n, b, local_bytes / b));
  if (a > 1)
    append_schedule(app.iteration_comm,
                    grouped_alltoall(n, a, local_bytes / a));
  app.compute_per_iteration = 2.2;
  app.iterations = 16;  // 16 repetitions (paper input)
  return app;
}

/// FFVC: incompressible Navier-Stokes, 128^3 cuboid (reduced to 64^3 above
/// 64 nodes to fit the walltime limit -- the paper's weak* adjustment).
AppWorkload make_ffvc(std::int32_t n) {
  AppWorkload app;
  app.name = "FFVC";
  app.power_of_two_scaling = true;
  const bool reduced = n > 64;
  const std::int64_t edge = reduced ? 64 : 128;
  const std::int64_t face = edge * edge * 8;
  app.iteration_comm = halo3d(n, face);
  append_schedule(app.iteration_comm, col::allreduce_recursive_doubling(n, 8));
  append_schedule(app.iteration_comm, col::reduce_binomial(n, 8));
  append_schedule(app.iteration_comm, col::gather_binomial(n, 64));
  app.compute_per_iteration = reduced ? 1.4 : 11.0;
  app.iterations = 60;  // ~660 s full / ~85 s reduced
  return app;
}

/// mVMC: variational Monte Carlo (job_middle).  Parameter optimisation is
/// Allreduce-heavy with periodic Scatter/Bcast of configurations.
AppWorkload make_mvmc(std::int32_t n) {
  AppWorkload app;
  app.name = "mVMC";
  for (std::int32_t i = 0; i < 4; ++i)
    append_schedule(app.iteration_comm,
                    col::allreduce_ring(n, 2 * kMiB));
  append_schedule(app.iteration_comm, col::scatter_binomial(n, 64 * kKiB));
  append_schedule(app.iteration_comm, col::bcast_binomial(n, 8 * kKiB));
  app.compute_per_iteration = 13.0;
  app.iterations = 50;  // ~650 s kernel
  return app;
}

/// NTChem (taxol, strong scaling): MP2 energy; total work fixed, per-rank
/// data shrinks as 1/n.  Alltoall of integral blocks plus Allreduces.
AppWorkload make_ntchem(std::int32_t n) {
  AppWorkload app;
  app.name = "NTCh";
  const std::int64_t total = 2LL * 1024 * kMiB;  // integral volume
  const std::int64_t per_pair =
      std::max<std::int64_t>(total / (static_cast<std::int64_t>(n) * n), 64);
  app.iteration_comm = col::alltoall_pairwise(n, per_pair);
  append_schedule(app.iteration_comm, col::allreduce_ring(n, kMiB));
  append_schedule(app.iteration_comm, col::bcast_binomial(n, kMiB));
  app.compute_per_iteration = 700.0 / static_cast<double>(n) / 10.0 * 7.0;
  app.iterations = 10;  // strong: ~490 s at 7 nodes, seconds at 672
  return app;
}

/// MILC: SU(3) lattice QCD on a 4-D grid (benchmark_n8 weak-scaled):
/// 8 halo directions plus frequent small CG Allreduces.
AppWorkload make_milc(std::int32_t n) {
  AppWorkload app;
  app.name = "MILC";
  app.power_of_two_scaling = true;
  const std::int64_t face = 8LL * 8 * 8 * 72;  // 8^3 sites x SU(3) matrices
  app.iteration_comm = halo4d(n, face);
  append_schedule(app.iteration_comm, col::allreduce_recursive_doubling(n, 8));
  append_schedule(app.iteration_comm, col::allreduce_recursive_doubling(n, 8));
  app.compute_per_iteration = 2.8;
  app.iterations = 150;  // ~420 s kernel
  return app;
}

/// qb@ll (gold, weak*): DFT first-principles MD; row/column transposes of
/// the process grid plus heavy Bcast/Allreduce.  672-node runs use the
/// halved (16-atom) input.
AppWorkload make_qbox(std::int32_t n) {
  AppWorkload app;
  app.name = "Qbox";
  const bool reduced = n >= 672;
  const std::int64_t scale = reduced ? 2 : 1;
  const auto [a, b] = dims2(n);
  // Plane-wave DFT transposes the (GB-scale) wavefunction array across the
  // process grid several times per SCF step -- qb@ll is the proxy where
  // the paper's HyperX loses most at scale (Fig. 6h: -0.44..-0.85).
  const std::int64_t local_bytes = 384LL * kMiB / scale;
  for (std::int32_t pass = 0; pass < 4; ++pass) {
    if (a > 1)
      append_schedule(app.iteration_comm,
                      grouped_alltoall(n, a, local_bytes / (4 * a)));
    if (b > 1)
      append_schedule(app.iteration_comm,
                      grouped_alltoall(n, b, local_bytes / (4 * b)));
  }
  append_schedule(app.iteration_comm,
                  col::allreduce_ring(n, 4 * kMiB / scale));
  append_schedule(app.iteration_comm,
                  col::bcast_binomial(n, 2 * kMiB / scale));
  app.compute_per_iteration = reduced ? 6.0 : 12.0;
  app.iterations = 25;  // ~300 s of compute before comm
  return app;
}

/// HPL (weak*): ~1 GiB of matrix per process (0.25 GiB from 224 nodes on).
/// Each panel step broadcasts the panel along the process row and swaps
/// rows along the column.
AppWorkload make_hpl(std::int32_t n) {
  AppWorkload app;
  app.name = "HPL";
  const bool reduced = n >= 224;
  const double mem_per_rank =
      (reduced ? 0.25 : 1.0) * static_cast<double>(stats::kGiB);
  const double n_local = std::sqrt(mem_per_rank / 8.0);
  const double n_global = n_local * std::sqrt(static_cast<double>(n));
  app.total_flops = (2.0 / 3.0) * n_global * n_global * n_global;

  const auto [p, q] = dims2(n);
  constexpr std::int32_t kSteps = 32;  // coarse panel steps
  // Panel broadcast + row swaps + U forwarding move roughly an order of
  // magnitude more than the bare panel per step.
  const auto panel_bytes =
      static_cast<std::int64_t>(n_global / kSteps * 128.0 * 8.0 * 16.0);
  mpi::Schedule step;
  // Panel bcast along rows (communicators of size q) as a grouped ring,
  // row swaps along columns as a grouped exchange.
  if (q > 1) step = grouped_alltoall(n, q, panel_bytes / q);
  if (p > 1) append_schedule(step, grouped_alltoall(n, p, panel_bytes / p));
  app.iteration_comm = std::move(step);
  app.iterations = kSteps;
  // Effective ~18 Gflop/s per node on the solver (Westmere, CPU-only).
  app.compute_per_iteration =
      app.total_flops / (18e9 * static_cast<double>(n)) /
      static_cast<double>(kSteps);
  return app;
}

/// HPCG: 192^3 local domain; halo + two dot-product Allreduces per CG
/// iteration, occasional small Alltoall (multigrid setup).
AppWorkload make_hpcg(std::int32_t n) {
  AppWorkload app;
  app.name = "HPCG";
  const std::int64_t face = 192LL * 192 * 8;
  app.iteration_comm = halo3d(n, face);
  append_schedule(app.iteration_comm, col::allreduce_recursive_doubling(n, 8));
  append_schedule(app.iteration_comm, col::allreduce_recursive_doubling(n, 8));
  app.compute_per_iteration = 6.0;
  app.iterations = 50;
  // ~3 Gflop/s per node sustained (memory bound).
  app.total_flops = 3e9 * static_cast<double>(n) *
                    app.compute_per_iteration *
                    static_cast<double>(app.iterations);
  return app;
}

/// Graph500: 16 BFS iterations on ~1 GiB of graph per process; each BFS
/// level is a frontier alltoall plus an Allreduce termination check.
AppWorkload make_graph500(std::int32_t n) {
  AppWorkload app;
  app.name = "GraD";
  app.power_of_two_scaling = true;
  constexpr std::int32_t kLevels = 8;
  const std::int64_t frontier_bytes = 64LL * kMiB / kLevels;
  const std::int64_t per_pair =
      std::max<std::int64_t>(frontier_bytes / n, 16);
  for (std::int32_t level = 0; level < kLevels; ++level) {
    append_schedule(app.iteration_comm, col::alltoall_pairwise(n, per_pair));
    append_schedule(app.iteration_comm,
                    col::allreduce_recursive_doubling(n, 8));
  }
  app.compute_per_iteration = 1.2;
  app.iterations = 16;  // 16 BFS roots
  // ~2^26 edges traversed per process and BFS.
  app.total_edges = static_cast<double>(n) * 67108864.0 * 16.0;
  return app;
}

/// IMB Multi-PingPong (capacity mix): dense pairwise ping-pong across the
/// allocation halves.
AppWorkload make_mupp(std::int32_t n) {
  AppWorkload app;
  app.name = "MuPP";
  // One iteration = one message-size block of the IMB sweep; the large
  // sizes dominate the volume (~8 GB per pair per full run).
  app.iteration_comm = col::multi_pingpong(n, 2 * kMiB, 85);
  app.compute_per_iteration = 0.0;
  app.iterations = 23;
  return app;
}

/// EmDL: IMB Allreduce alternating with a 0.1 s compute phase (usleep) to
/// mimic deep-learning training (paper footnote 12).
AppWorkload make_emdl(std::int32_t n) {
  AppWorkload app;
  app.name = "EmDL";
  app.iteration_comm = col::allreduce_ring(n, 64 * kMiB);
  app.compute_per_iteration = 0.1;
  app.iterations = 900;  // ~3 min per run, as in the paper's mix
  return app;
}

}  // namespace

AppWorkload make_app(AppId id, std::int32_t nranks) {
  if (nranks < 1) throw std::invalid_argument("make_app: nranks must be >= 1");
  switch (id) {
    case AppId::kAmg:
      return make_amg(nranks);
    case AppId::kComd:
      return make_comd(nranks);
    case AppId::kMinife:
      return make_minife(nranks);
    case AppId::kSwfft:
      return make_swfft(nranks);
    case AppId::kFfvc:
      return make_ffvc(nranks);
    case AppId::kMvmc:
      return make_mvmc(nranks);
    case AppId::kNtchem:
      return make_ntchem(nranks);
    case AppId::kMilc:
      return make_milc(nranks);
    case AppId::kQbox:
      return make_qbox(nranks);
    case AppId::kHpl:
      return make_hpl(nranks);
    case AppId::kHpcg:
      return make_hpcg(nranks);
    case AppId::kGraph500:
      return make_graph500(nranks);
    case AppId::kMultiPingPong:
      return make_mupp(nranks);
    case AppId::kEmDl:
      return make_emdl(nranks);
  }
  throw std::invalid_argument("make_app: bad id");
}

double run_workload(const AppWorkload& app, mpi::Transport& transport) {
  // The schedule repeats identically each iteration; simulate one and
  // scale (placement and routing are fixed within a run).
  const double comm = app.iteration_comm.empty()
                          ? 0.0
                          : transport.execute(app.iteration_comm);
  return static_cast<double>(app.iterations) *
         (app.compute_per_iteration + comm);
}

}  // namespace hxsim::workloads
