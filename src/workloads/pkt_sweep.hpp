// Packet-level replication sweeps.
//
// The paper's congestion-sensitive claims (mpiGraph hotspots, eBB
// bisection, adaptive vs static routing) rest on packet-granularity runs,
// and the studies this repo follows up on (FatPaths, fault-tolerant HyperX
// routing) get their statistical weight from *many* such runs: traffic
// pattern x seed x routing arm.  run_pkt_sweep() is that harness: it
// builds a seeded message set per replication and fans all replications
// across PktSim::run_batch, one warm engine per worker.  Results are
// bit-identical to a serial loop at any thread count; every replication is
// reproducible from (arm, pattern, seed) alone.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "routing/engine.hpp"
#include "routing/lid_space.hpp"
#include "sim/pktsim.hpp"
#include "topo/topology.hpp"

namespace hxsim::workloads {

/// Synthetic traffic families of the sweep.
enum class PktPattern : std::int8_t {
  kUniformRandom,  // random src -> dst pairs (self-sends redrawn)
  kShift,          // mpiGraph-style: every node i sends to (i + shift) % N
  kHotspot,        // `messages` random senders target one drawn hotspot
};

[[nodiscard]] const char* to_string(PktPattern pattern);

/// PktPatternSpec::messages sentinel: the pattern's natural count (256 for
/// kUniformRandom/kHotspot, the terminal count N for kShift).
inline constexpr std::int32_t kAutoMessages = -1;

struct PktPatternSpec {
  PktPattern pattern = PktPattern::kUniformRandom;
  /// Message count.  kAutoMessages resolves per pattern; an explicit value
  /// must be positive, and for kShift must equal the terminal count N (the
  /// pattern is one send per terminal by construction) --
  /// build_pkt_messages throws on a count the pattern cannot honor rather
  /// than silently emitting a different one.
  std::int32_t messages = kAutoMessages;
  /// kShift only: the shift distance r in dst = (src + r) mod N.
  std::int32_t shift = 1;
  std::int64_t bytes = 64 * 1024;  // per message
};

/// One routing arm of the sweep: either static tables (route + lids) or a
/// per-hop adaptive router.  Exactly one of the two must be set.  Adaptive
/// routers must be replicable() -- run_batch enforces it.
struct PktRoutingArm {
  std::string name;
  const routing::RouteResult* route = nullptr;
  const routing::LidSpace* lids = nullptr;
  const sim::AdaptiveRouter* adaptive = nullptr;
};

/// One replication's summary, in deterministic (arm, pattern, seed) order.
struct PktReplicationResult {
  std::string arm;
  PktPattern pattern = PktPattern::kUniformRandom;
  std::uint64_t seed = 0;
  bool deadlock = false;
  /// The replication hit PktSweepOptions::max_events before completing:
  /// the run is incomplete but NOT deadlocked.  Mutually exclusive with
  /// `deadlock`.
  bool truncated = false;
  double end_time = 0.0;
  /// Mean message completion time (NaN when nothing completed).
  double mean_completion = 0.0;
  std::int64_t packets_delivered = 0;
  std::int64_t packets_total = 0;
  std::int64_t events_executed = 0;
};

struct PktSweepOptions {
  /// Engine configuration; `trace` must stay null (run_batch would reject
  /// a shared sink) and `adaptive` is overwritten per arm.
  sim::PktSimConfig config;
  std::int32_t seeds = 4;    // replications per arm x pattern, seed 1..seeds
  std::int32_t threads = 0;  // 0: exec::default_threads()
  std::size_t max_events = SIZE_MAX;
};

/// The seeded message set of one replication (deterministic in its
/// arguments; the sweep itself is built from these).
[[nodiscard]] std::vector<sim::PktMessage> build_pkt_messages(
    const topo::Topology& topo, const PktRoutingArm& arm,
    const PktPatternSpec& spec, std::uint64_t seed);

/// Runs every (arm, pattern, seed) replication, parallel across
/// options.threads workers, results bit-identical at any thread count.
[[nodiscard]] std::vector<PktReplicationResult> run_pkt_sweep(
    const topo::Topology& topo, std::span<const PktRoutingArm> arms,
    std::span<const PktPatternSpec> patterns,
    const PktSweepOptions& options = {});

}  // namespace hxsim::workloads
