#include "workloads/online_resilience.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <span>
#include <stdexcept>
#include <utility>

#include "routing/verify.hpp"
#include "sim/online.hpp"
#include "stats/rng.hpp"
#include "topo/fault_injector.hpp"

namespace hxsim::workloads {

namespace {

/// Bitwise double equality (NaN-safe: two NaNs of the same payload match),
/// the comparison the typed/reference identity contract is stated in.
bool bits_equal(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Field-for-field Result equality over every online-era field.  The
/// deadlock report is covered by the flag: arms are expected deadlock-free
/// and a report differing under an equal flag would mean unequal queues,
/// which the completion/drop fields already expose.
bool results_equal(const sim::PktSim::Result& a,
                   const sim::PktSim::Result& b) {
  if (a.completion.size() != b.completion.size()) return false;
  for (std::size_t i = 0; i < a.completion.size(); ++i)
    if (!bits_equal(a.completion[i], b.completion[i])) return false;
  return a.deadlock == b.deadlock && a.truncated == b.truncated &&
         bits_equal(a.end_time, b.end_time) &&
         a.packets_delivered == b.packets_delivered &&
         a.packets_total == b.packets_total &&
         a.events_executed == b.events_executed &&
         a.packets_dropped == b.packets_dropped &&
         a.dropped_by_cause == b.dropped_by_cause &&
         a.retries == b.retries &&
         a.messages_abandoned == b.messages_abandoned &&
         a.message_status == b.message_status;
}

/// Seeded path-less message set: uniform random pairs (self-sends
/// redrawn), inject times spread evenly over the window.
std::vector<sim::PktMessage> build_messages(
    const topo::Topology& topo, const OnlineResilienceOptions& options,
    std::uint64_t seed) {
  stats::Rng rng(seed);
  const auto n = static_cast<std::uint64_t>(topo.num_terminals());
  const double spacing =
      options.inject_window / static_cast<double>(options.messages);
  std::vector<sim::PktMessage> messages;
  messages.reserve(static_cast<std::size_t>(options.messages));
  for (std::int32_t i = 0; i < options.messages; ++i) {
    sim::PktMessage m;
    m.src = static_cast<topo::NodeId>(rng.next_below(n));
    do {
      m.dst = static_cast<topo::NodeId>(rng.next_below(n));
    } while (m.dst == m.src);
    m.bytes = options.bytes;
    m.inject_time = spacing * static_cast<double>(i);
    messages.push_back(std::move(m));
  }
  return messages;
}

struct ArmOutcome {
  sim::PktSim::Result result;
  bool engines_identical = false;
};

/// Runs one arm on both engines and certifies their bitwise agreement.
ArmOutcome run_arm(const topo::Topology& topo,
                   std::span<const sim::PktMessage> messages,
                   const sim::PktOnlineConfig* online,
                   const sim::AdaptiveRouter* adaptive,
                   const OnlineResilienceOptions& options) {
  sim::PktSimConfig config;
  config.num_vls = options.num_vls;
  config.adaptive = adaptive;
  config.online = online;
  config.engine = sim::PktSimConfig::Engine::kTyped;
  sim::PktSim typed(topo, config);
  ArmOutcome out;
  out.result = typed.run(messages, options.max_events);
  config.engine = sim::PktSimConfig::Engine::kReference;
  sim::PktSim reference(topo, config);
  out.engines_identical =
      results_equal(out.result, reference.run(messages, options.max_events));
  return out;
}

OnlineResilienceRow make_row(std::string arm,
                             std::span<const sim::PktMessage> messages,
                             const ArmOutcome& out, double delay, bool faulted,
                             bool retry, bool adaptive) {
  const sim::PktSim::Result& r = out.result;
  OnlineResilienceRow row;
  row.arm = std::move(arm);
  row.propagation_delay = delay;
  row.faulted = faulted;
  row.retry = retry;
  row.adaptive = adaptive;
  row.engines_identical = out.engines_identical;
  row.deadlock = r.deadlock;
  row.messages = static_cast<std::int64_t>(messages.size());
  row.packets_total = r.packets_total;
  row.packets_delivered = r.packets_delivered;
  row.packets_dropped = r.packets_dropped;
  row.dropped_by_cause = r.dropped_by_cause;
  row.retries = r.retries;
  row.messages_abandoned = r.messages_abandoned;

  std::int64_t offered_bytes = 0;
  std::int64_t delivered_bytes = 0;
  double last = 0.0;
  for (std::size_t m = 0; m < messages.size(); ++m) {
    offered_bytes += messages[m].bytes;
    const bool delivered =
        r.message_status.empty()
            ? !std::isnan(r.completion[m])
            : r.message_status[m] == sim::PktMessageStatus::kDelivered;
    if (!delivered) continue;
    ++row.messages_delivered;
    delivered_bytes += messages[m].bytes;
    last = std::max(last, r.completion[m]);
  }
  row.makespan = row.messages_delivered > 0 ? last : r.end_time;
  row.delivered_fraction =
      offered_bytes > 0 ? static_cast<double>(delivered_bytes) /
                              static_cast<double>(offered_bytes)
                        : 1.0;
  return row;
}

}  // namespace

OnlineResilienceReport run_online_resilience_campaign(
    topo::Topology& topo, routing::RoutingEngine& engine,
    const routing::LidSpace& lids, const sim::AdaptiveRouter* adaptive,
    const OnlineResilienceOptions& options) {
  if (options.messages < 1)
    throw std::invalid_argument("online campaign: need at least one message");
  if (!(options.inject_window > 0.0))
    throw std::invalid_argument("online campaign: inject_window must be > 0");
  if (options.propagation_delays.empty())
    throw std::invalid_argument(
        "online campaign: need at least one propagation delay");

  OnlineResilienceReport report;

  // Epoch 0: the intact fabric's tables.  reroute_and_verify throws on any
  // blackhole column, so the recorded counts double as proof they were 0.
  const routing::RerouteOutcome e0 =
      routing::reroute_and_verify(engine, topo, lids, options.threads);
  report.blackhole_columns_epoch0 = e0.census.blackhole_entries;

  // One seeded link-fault stage, timed mid-run.
  topo::FaultSchedule::Options fault_options;
  fault_options.stages = 1;
  fault_options.links_per_stage = options.links_failed;
  fault_options.seed = options.fault_seed;
  topo::FaultSchedule schedule = topo::FaultSchedule::plan(topo, fault_options);
  schedule.set_stage_time(0, options.fault_time);
  const std::vector<sim::PktTimedFault> feed = sim::timed_faults(topo, schedule);
  if (feed.empty())
    throw std::runtime_error("online campaign: fault stage disabled nothing");

  // Epoch 1: the repaired tables, computed on the faulted fabric inside a
  // revert guard -- however reroute_and_verify exits (including its
  // blackhole-column throw), the shared fabric is restored intact before
  // any packet run sees it.
  routing::RerouteOutcome e1;
  {
    const topo::ScheduleRevertGuard revert_guard(topo, schedule);
    const topo::FaultReport applied = schedule.apply_stage(topo, 0);
    report.cables_failed =
        static_cast<std::int32_t>(applied.disabled_links.size());
    e1 = routing::reroute_and_verify(engine, topo, lids, options.threads);
  }
  report.blackhole_columns_epoch1 = e1.census.blackhole_entries;

  const std::vector<sim::PktMessage> messages =
      build_messages(topo, options, options.traffic_seed);

  // Off-switch contract: the same traffic pinned to its epoch-0 static
  // paths runs bit-identically with an *inert* attached config and with
  // online = nullptr.
  {
    std::vector<sim::PktMessage> static_messages = messages;
    for (sim::PktMessage& m : static_messages) {
      auto path = e0.route.tables.path(topo, lids, m.src, lids.base_lid(m.dst));
      if (!path.ok)
        throw std::runtime_error("online campaign: intact fabric lost a path");
      m.path = std::move(path.channels);
      m.vl = e0.route.vls.vl(topo.attach_switch(m.src), lids.base_lid(m.dst));
    }
    const sim::PktOnlineConfig inert;  // active() == false
    const ArmOutcome with_inert =
        run_arm(topo, static_messages, &inert, nullptr, options);
    const ArmOutcome without =
        run_arm(topo, static_messages, nullptr, nullptr, options);
    report.nofault_identical = with_inert.engines_identical &&
                               without.engines_identical &&
                               results_equal(with_inert.result, without.result);
  }

  sim::PktRoutingEpoch epoch0;
  epoch0.tables = &e0.route.tables;
  epoch0.vls = &e0.route.vls;
  sim::PktRoutingEpoch epoch1_from_start;
  epoch1_from_start.tables = &e1.route.tables;
  epoch1_from_start.vls = &e1.route.vls;

  bool engines_ok = true;
  const auto run_row = [&](std::string name, const sim::PktOnlineConfig& cfg,
                           const sim::AdaptiveRouter* arm_adaptive,
                           double delay, bool faulted,
                           bool retry) -> OnlineResilienceRow& {
    const ArmOutcome out =
        run_arm(topo, messages, &cfg, arm_adaptive, options);
    engines_ok &= out.engines_identical;
    report.rows.push_back(make_row(std::move(name), messages, out, delay,
                                   faulted, retry, arm_adaptive != nullptr));
    return report.rows.back();
  };

  // Baseline: intact fabric, epoch-0 tables, no faults.
  sim::PktOnlineConfig baseline_cfg;
  baseline_cfg.epochs = {epoch0};
  baseline_cfg.lids = &lids;
  baseline_cfg.ttl_hops = options.ttl_hops;
  const OnlineResilienceRow baseline =
      run_row("baseline", baseline_cfg, nullptr, 0.0, false, false);
  const double baseline_fraction = baseline.delivered_fraction;
  const double baseline_makespan = baseline.makespan;

  // Static-reroute envelope: the repaired tables installed from t = 0.
  // Epoch 1 never forwards onto a cut cable, so only packets physically on
  // a dying wire can be lost -- the best any offline reroute could do.
  sim::PktOnlineConfig envelope_cfg;
  envelope_cfg.faults = feed;
  envelope_cfg.epochs = {epoch1_from_start};
  envelope_cfg.lids = &lids;
  envelope_cfg.ttl_hops = options.ttl_hops;
  run_row("static-reroute", envelope_cfg, nullptr, 0.0, true, false);

  // Propagation-delay sweep: epoch 0 everywhere, epoch 1 installed
  // per-switch at fault_time + delay; with and without end-host retry.
  const auto nsw = static_cast<std::size_t>(topo.num_switches());
  std::vector<sim::PktOnlineConfig> sweep_cfgs;  // stable addresses for runs
  sweep_cfgs.reserve(options.propagation_delays.size() * 2);
  report.retry_retention_gain = 1.0;
  for (const double delay : options.propagation_delays) {
    sim::PktRoutingEpoch epoch1 = epoch1_from_start;
    epoch1.install_time.assign(nsw, options.fault_time + delay);
    sim::PktOnlineConfig cfg;
    cfg.faults = feed;
    cfg.epochs = {epoch0, epoch1};
    cfg.lids = &lids;
    cfg.ttl_hops = options.ttl_hops;
    sweep_cfgs.push_back(cfg);
    const OnlineResilienceRow off = run_row(
        "delay-sweep", sweep_cfgs.back(), nullptr, delay, true, false);
    const double off_fraction = off.delivered_fraction;
    cfg.retry = options.retry;
    cfg.retry.enabled = true;
    sweep_cfgs.push_back(std::move(cfg));
    const OnlineResilienceRow on = run_row(
        "delay-sweep", sweep_cfgs.back(), nullptr, delay, true, true);
    const double gain = (baseline_fraction > 0.0
                             ? (on.delivered_fraction - off_fraction) /
                                   baseline_fraction
                             : 0.0);
    report.retry_retention_gain =
        std::min(report.retry_retention_gain, gain);
  }

  // Adaptive escape: per-hop DAL/PARX routing through the same faults.
  sim::PktOnlineConfig adaptive_cfg;
  if (adaptive != nullptr) {
    adaptive_cfg.faults = feed;
    adaptive_cfg.retry = options.retry;
    adaptive_cfg.retry.enabled = true;
    run_row("adaptive-escape", adaptive_cfg, adaptive, 0.0, true, true);
  }

  // Normalise the goodput-retention column against the baseline arm.
  for (OnlineResilienceRow& row : report.rows) {
    row.retention = baseline_fraction > 0.0
                        ? row.delivered_fraction / baseline_fraction
                        : 0.0;
    row.recovery_time = std::max(0.0, row.makespan - baseline_makespan);
  }
  report.all_engines_identical = engines_ok;

  // Thread-count invariance of the retry jitter stream: the hardest sweep
  // arm (longest stale window, retry on) replayed through run_batch at one
  // worker and at options.threads workers must agree bitwise.
  {
    const sim::PktOnlineConfig& cfg = sweep_cfgs.back();
    sim::PktSimConfig config;
    config.num_vls = options.num_vls;
    config.online = &cfg;
    std::vector<std::vector<sim::PktMessage>> replications;
    for (std::uint64_t r = 0; r < 4; ++r)
      replications.push_back(
          build_messages(topo, options, options.traffic_seed + 1 + r));
    sim::PktSim sim(topo, config);
    const auto serial = sim.run_batch(replications, 1, {}, options.max_events);
    const auto fanned = sim.run_batch(
        replications, options.threads > 0 ? options.threads : 4, {},
        options.max_events);
    report.threads_identical = serial.size() == fanned.size();
    for (std::size_t i = 0; report.threads_identical && i < serial.size(); ++i)
      report.threads_identical = results_equal(serial[i], fanned[i]);
  }

  return report;
}

}  // namespace hxsim::workloads
