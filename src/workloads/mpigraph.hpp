// mpiGraph: the all-pairs streaming-bandwidth heatmap of Figure 1.
//
// mpiGraph shifts through r = 1..N-1; in shift r every node i streams to
// node (i + r) mod N concurrently, and the observed per-pair bandwidth
// fills cell (receiver, sender) of the matrix.  Congestion between the
// concurrent streams -- e.g. seven flows on one HyperX cable under minimal
// routing -- is what the heatmap makes visible.
#pragma once

#include <cstdint>

#include "mpi/cluster.hpp"
#include "stats/heatmap.hpp"

namespace hxsim::workloads {

struct MpiGraphOptions {
  std::int64_t bytes = 1 * 1024 * 1024;  // per-stream message size
  std::uint64_t seed = 1;
};

/// Heatmap of observed bandwidth [GiB/s], cell (receiver, sender);
/// diagonal cells stay 0.  Uses the first `nodes_used` ranks of the
/// placement.
[[nodiscard]] stats::Heatmap mpigraph(const mpi::Cluster& cluster,
                                      const mpi::Placement& placement,
                                      std::int32_t nodes_used,
                                      const MpiGraphOptions& options = {});

}  // namespace hxsim::workloads
