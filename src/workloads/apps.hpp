// Communication skeletons of the paper's application benchmarks (§4.2/4.3).
//
// Each skeleton reproduces the MPI traffic *pattern* of one benchmark --
// stencil halos, FFT transposes, ring allreduces, BFS exchanges -- with the
// per-process working-set sizes the paper configures, paired with a
// compute-time model so that solver runtimes land in the Figure 6 bands.
// The network comparison the paper makes depends on the pattern and volume,
// not on the arithmetic, so this substitution preserves the relevant
// behaviour (see DESIGN.md).
//
// Scaling follows Table 2: weak scaling for most, strong for NTChem, and
// the paper's weak* input reductions for FFVC (> 64 nodes), qb@ll
// (672 nodes) and HPL (>= 224 nodes).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mpi/cluster.hpp"

namespace hxsim::workloads {

enum class AppId : std::int8_t {
  kAmg,
  kComd,
  kMinife,
  kSwfft,
  kFfvc,
  kMvmc,
  kNtchem,
  kMilc,
  kQbox,
  kHpl,
  kHpcg,
  kGraph500,
  kMultiPingPong,  // IMB Multi-PingPong (capacity mix only)
  kEmDl,           // modified IMB Allreduce mimicking deep learning
};

[[nodiscard]] const char* to_string(AppId id);

/// Figure 6a-6i proxy applications, in the paper's plot order.
[[nodiscard]] std::vector<AppId> proxy_apps();
/// Figure 6j-6l x500 benchmarks.
[[nodiscard]] std::vector<AppId> x500_apps();
/// Figure 7 capacity mix (14 applications).
[[nodiscard]] std::vector<AppId> capacity_apps();

/// Paper walltime limit per benchmark invocation (15 min); runs exceeding
/// it are reported as missing data points.
inline constexpr double kWalltimeLimit = 900.0;

struct AppWorkload {
  std::string name;
  /// One solver iteration's communication.
  mpi::Schedule iteration_comm;
  /// Seconds of computation per iteration (per rank, overlapping ranks).
  double compute_per_iteration = 0.0;
  std::int32_t iterations = 1;
  /// Total useful flops of the whole run (HPL/HPCG metric; 0 otherwise).
  double total_flops = 0.0;
  /// Total traversed edges over all BFS iterations (Graph500; 0 otherwise).
  double total_edges = 0.0;
  /// True if the benchmark scales in powers of two (paper: 4, 8, ..., 512).
  bool power_of_two_scaling = false;
};

/// Builds the skeleton for `nranks` ranks (one rank per node, as in the
/// paper's execution model).
[[nodiscard]] AppWorkload make_app(AppId id, std::int32_t nranks);

/// Kernel runtime [s]: iterations x (compute + simulated communication).
[[nodiscard]] double run_workload(const AppWorkload& app,
                                  mpi::Transport& transport);

/// Near-cubic 3-D factorisation of n (a*b*c == n, a <= b <= c).
[[nodiscard]] std::array<std::int32_t, 3> dims3(std::int32_t n);
/// Near-square 2-D factorisation of n (a*b == n, a <= b).
[[nodiscard]] std::array<std::int32_t, 2> dims2(std::int32_t n);

/// Periodic halo exchange on an n-rank 3-D grid: 6 rounds (one per
/// direction), every rank sending `face_bytes` to its neighbour.
[[nodiscard]] mpi::Schedule halo3d(std::int32_t nranks,
                                   std::int64_t face_bytes);
/// Periodic halo exchange on a 4-D grid: 8 rounds (MILC's pattern).
[[nodiscard]] mpi::Schedule halo4d(std::int32_t nranks,
                                   std::int64_t face_bytes);

/// Pairwise-exchange alltoall within consecutive groups of `group` ranks
/// (the sub-communicator transposes of SWFFT/Qbox); group must divide n.
[[nodiscard]] mpi::Schedule grouped_alltoall(std::int32_t nranks,
                                             std::int32_t group,
                                             std::int64_t bytes_per_pair);

/// Appends `tail`'s rounds to `head`.
void append_schedule(mpi::Schedule& head, const mpi::Schedule& tail);

}  // namespace hxsim::workloads
