// Netgauge's effective bisection bandwidth (eBB) benchmark (paper §4.1,
// Figure 5c).
//
// eBB samples random bisections of the allocated nodes: each sample splits
// the nodes into two random halves, matches them into pairs across the cut,
// and streams 1 MiB per pair concurrently; the sample's metric is the mean
// per-pair bandwidth.  The paper executes 1,000 such bisections and plots
// whiskers over the sample distribution.
#pragma once

#include <cstdint>
#include <vector>

#include "mpi/cluster.hpp"
#include "stats/summary.hpp"

namespace hxsim::workloads {

struct EbbOptions {
  std::int32_t samples = 1000;
  std::int64_t bytes = 1 * 1024 * 1024;
  std::uint64_t seed = 1;
};

struct EbbResult {
  /// Mean per-pair bandwidth [GiB/s] of each sampled bisection.
  std::vector<double> sample_means;

  [[nodiscard]] stats::Summary summary() const {
    return stats::summarize(sample_means);
  }
};

/// Runs eBB on the first `nodes_used` ranks of the placement
/// (must be even).
[[nodiscard]] EbbResult effective_bisection_bandwidth(
    const mpi::Cluster& cluster, const mpi::Placement& placement,
    std::int32_t nodes_used, const EbbOptions& options = {});

}  // namespace hxsim::workloads
