#include "workloads/imb.hpp"

#include <stdexcept>

namespace hxsim::workloads {

namespace col = mpi::collectives;

const char* to_string(ImbOp op) {
  switch (op) {
    case ImbOp::kBarrier:
      return "Barrier";
    case ImbOp::kBcast:
      return "Bcast";
    case ImbOp::kGather:
      return "Gather";
    case ImbOp::kScatter:
      return "Scatter";
    case ImbOp::kReduce:
      return "Reduce";
    case ImbOp::kAllreduce:
      return "Allreduce";
    case ImbOp::kAlltoall:
      return "Alltoall";
  }
  return "?";
}

std::vector<ImbOp> imb_figure4_ops() {
  return {ImbOp::kBcast,  ImbOp::kGather,    ImbOp::kScatter,
          ImbOp::kReduce, ImbOp::kAllreduce, ImbOp::kAlltoall};
}

mpi::Schedule imb_schedule(ImbOp op, std::int32_t nranks, std::int64_t bytes) {
  switch (op) {
    case ImbOp::kBarrier:
      return col::barrier_dissemination(nranks);
    case ImbOp::kBcast:
      return col::bcast_binomial(nranks, bytes);
    case ImbOp::kGather:
      return col::gather_binomial(nranks, bytes);
    case ImbOp::kScatter:
      return col::scatter_binomial(nranks, bytes);
    case ImbOp::kReduce:
      return col::reduce_binomial(nranks, bytes);
    case ImbOp::kAllreduce:
      return bytes <= kAllreduceRingThreshold
                 ? col::allreduce_recursive_doubling(nranks, bytes)
                 : col::allreduce_ring(nranks, bytes);
    case ImbOp::kAlltoall:
      return col::alltoall_pairwise(nranks, bytes);
  }
  throw std::invalid_argument("imb_schedule: bad op");
}

std::vector<std::int64_t> imb_message_sizes(ImbOp op) {
  if (op == ImbOp::kBarrier) return {0};
  const std::int64_t first =
      (op == ImbOp::kReduce || op == ImbOp::kAllreduce) ? 4 : 1;
  std::vector<std::int64_t> sizes;
  for (std::int64_t b = first; b <= 4 * 1024 * 1024; b *= 2) sizes.push_back(b);
  return sizes;
}

std::vector<std::int32_t> capability_node_counts(bool power_of_two,
                                                 std::int32_t max_nodes) {
  std::vector<std::int32_t> counts;
  if (power_of_two) {
    for (std::int32_t n = 4; n <= max_nodes && n <= 512; n *= 2)
      counts.push_back(n);
  } else {
    for (std::int32_t n = 7; n < max_nodes; n *= 2) counts.push_back(n);
    counts.push_back(max_nodes);  // 7, 14, ..., 448, 672
  }
  return counts;
}

}  // namespace hxsim::workloads
