// The dual-plane supercomputer of the paper as one object: the 672-node
// 18-ary 3-tree plane, the 672-node 12x8 HyperX plane (both with the
// paper's missing-cable counts), routed by all four engines, plus the five
// (topology, routing, placement) combinations of Section 4.4.3:
//
//   1. Fat-Tree / ftree  / linear      (the Figure 4 baseline)
//   2. Fat-Tree / SSSP   / clustered
//   3. HyperX   / DFSSSP / linear
//   4. HyperX   / DFSSSP / random
//   5. HyperX   / PARX   / clustered
//
// Building the object computes all routings once (a few seconds for the
// 972-switch tree); benches share it across figures.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "core/demand.hpp"
#include "mpi/cluster.hpp"
#include "topo/fat_tree.hpp"
#include "topo/hyperx.hpp"

namespace hxsim::workloads {

struct SystemOptions {
  bool with_faults = true;
  /// Seed for the missing-cable sample.  The default keeps the cables of
  /// the first-row switches intact, as the paper's fabric did (the dense
  /// small-allocation phenomena of Figures 1/5c need them).
  std::uint64_t fault_seed = 1003;
  std::int32_t parx_max_vls = 8;
  /// Scaled-down system for quick runs: a 6x4 HyperX / 6-ary tree with
  /// 96 nodes instead of 672.
  bool small_scale = false;
};

class PaperSystem {
 public:
  explicit PaperSystem(SystemOptions options = {});

  struct Config {
    std::string name;              // e.g. "HyperX / PARX / clustered"
    const mpi::Cluster* cluster = nullptr;
    mpi::PlacementKind placement = mpi::PlacementKind::kLinear;
  };

  static constexpr std::size_t kNumConfigs = 5;

  /// The five evaluation combinations; [0] is the paper's baseline.
  [[nodiscard]] const std::array<Config, kNumConfigs>& configs() const {
    return configs_;
  }
  [[nodiscard]] const Config& baseline() const { return configs_[0]; }

  [[nodiscard]] std::int32_t num_nodes() const {
    return hx_->topo().num_terminals();
  }

  [[nodiscard]] const topo::FatTree& fat_tree() const { return *ft_; }
  [[nodiscard]] const topo::HyperX& hyperx() const { return *hx_; }

  [[nodiscard]] const mpi::Cluster& ft_ftree() const { return *ft_ftree_; }
  [[nodiscard]] const mpi::Cluster& ft_sssp() const { return *ft_sssp_; }
  [[nodiscard]] const mpi::Cluster& hx_dfsssp() const { return *hx_dfsssp_; }
  [[nodiscard]] const mpi::Cluster& hx_parx() const { return *hx_parx_; }

  /// The SAR-style interface (Section 4.4.3): re-route the PARX plane for
  /// a concrete communication-demand matrix.  Returns a fresh cluster on
  /// the same HyperX plane.
  [[nodiscard]] mpi::Cluster make_parx_cluster(
      const core::DemandMatrix& demands) const;

 private:
  SystemOptions options_;
  std::unique_ptr<topo::FatTree> ft_;
  std::unique_ptr<topo::HyperX> hx_;
  std::unique_ptr<mpi::Cluster> ft_ftree_;
  std::unique_ptr<mpi::Cluster> ft_sssp_;
  std::unique_ptr<mpi::Cluster> hx_dfsssp_;
  std::unique_ptr<mpi::Cluster> hx_parx_;
  std::array<Config, kNumConfigs> configs_;
};

}  // namespace hxsim::workloads
