#include "workloads/resilience.hpp"

#include <algorithm>
#include <exception>
#include <utility>
#include <vector>

#include "exec/exec.hpp"
#include "routing/delta.hpp"
#include "routing/verify.hpp"
#include "sim/flowsim.hpp"
#include "stats/rng.hpp"

namespace hxsim::workloads {

namespace {

using topo::NodeId;

std::vector<std::pair<NodeId, NodeId>> make_pairs(ResilienceTraffic traffic,
                                                  std::int32_t n,
                                                  std::int32_t round,
                                                  stats::Rng& rng) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  switch (traffic) {
    case ResilienceTraffic::kUniformRandom: {
      const std::vector<std::int32_t> perm = rng.permutation(n);
      for (NodeId i = 0; i < n; ++i)
        if (perm[static_cast<std::size_t>(i)] != i)
          pairs.emplace_back(i, perm[static_cast<std::size_t>(i)]);
      break;
    }
    case ResilienceTraffic::kMpiGraphShift: {
      const std::int32_t r = 1 + (round % std::max(1, n - 1));
      for (NodeId i = 0; i < n; ++i) pairs.emplace_back(i, (i + r) % n);
      break;
    }
    case ResilienceTraffic::kEbbBisection: {
      const std::vector<std::int32_t> perm = rng.permutation(n);
      const std::int32_t half = n / 2;
      for (std::int32_t i = 0; i < half; ++i)
        pairs.emplace_back(perm[static_cast<std::size_t>(i)],
                           perm[static_cast<std::size_t>(i + half)]);
      break;
    }
  }
  return pairs;
}

/// Shortest surviving LID path of a pair; !ok when every LID is lost.
routing::ForwardingTables::Path best_lid_path(
    const topo::Topology& topo, const routing::LidSpace& lids,
    const routing::ForwardingTables& tables, NodeId src, NodeId dst) {
  routing::ForwardingTables::Path best;
  for (std::int32_t x = 0; x < lids.lids_per_terminal(); ++x) {
    auto path = tables.path(topo, lids, src, lids.lid(dst, x));
    if (!path.ok) continue;
    if (!best.ok || path.switch_hops() < best.switch_hops())
      best = std::move(path);
  }
  return best;
}

/// One traffic sample's flow set, kept alive across fault stages.  Slot f
/// corresponds to attempted pair f of the sample: a routable pair holds
/// its current best path, a lost pair parks as an inactive slot (empty
/// channels, rate 0) so it re-enters cheaply if a later reroute restores
/// its destination column.
struct TrafficSet {
  std::vector<sim::Flow> flows;
  std::vector<char> active;
  std::vector<double> rates;
};

/// Per-engine cross-stage state: the incremental router owning the patched
/// RouteResult, plus the cached traffic sets derived from its tables.
struct EngineState {
  routing::DeltaRouter router;
  std::vector<TrafficSet> sets;
  bool traffic_valid = false;

  explicit EngineState(routing::RoutingEngine& engine) : router(engine) {}
};

/// Delivered fraction of injection bandwidth: mean over *attempted* pairs
/// of (max-min rate / line rate), lost pairs contributing zero.
///
/// Incremental across stages: a pair is re-pathed only when the reroute
/// reported its destination's LFT columns dirty (stats->dirty_lids), or
/// when its cached active path crosses a channel this stage disabled --
/// unchanged columns provably walk to the identical path.  A sample set
/// whose pairs all survived untouched keeps last stage's rates verbatim
/// (rates are a pure function of paths and static capacities); changed
/// sets re-solve in place via FlowSim::solve_active, whose rates over the
/// active subset are bit-identical to a fresh compacted solve_batch --
/// so the campaign's numbers match the historical full rebuild exactly.
double delivered_throughput(
    const topo::Topology& topo, const routing::LidSpace& lids,
    const routing::ForwardingTables& tables, const ResilienceOptions& options,
    const std::vector<std::vector<std::pair<NodeId, NodeId>>>& sample_pairs,
    std::int64_t attempted, EngineState& state,
    const routing::DeltaStats* stats, std::span<const char> chan_down,
    const sim::FlowSim& flowsim, exec::ThreadPool& pool,
    exec::ScratchArena<sim::FlowSim::SolveScratch>& arena) {
  if (attempted == 0) return 0.0;
  const bool full =
      !state.traffic_valid || stats == nullptr || stats->full_recompute;

  std::vector<char> dst_dirty;
  if (!full) {
    dst_dirty.assign(static_cast<std::size_t>(topo.num_terminals()), 0);
    for (const routing::Lid lid : stats->dirty_lids)
      dst_dirty[static_cast<std::size_t>(lids.owner(lid).node)] = 1;
  }

  if (state.sets.size() != sample_pairs.size())
    state.sets.assign(sample_pairs.size(), {});

  std::vector<std::size_t> resolve;
  for (std::size_t s = 0; s < sample_pairs.size(); ++s) {
    const auto& pairs = sample_pairs[s];
    TrafficSet& set = state.sets[s];
    bool changed = false;
    if (set.flows.size() != pairs.size()) {
      set.flows.assign(pairs.size(), {});
      set.active.assign(pairs.size(), 0);
      set.rates.assign(pairs.size(), 0.0);
      changed = true;
    }
    for (std::size_t f = 0; f < pairs.size(); ++f) {
      const auto [src, dst] = pairs[f];
      bool repath = full || dst_dirty[static_cast<std::size_t>(dst)];
      if (!repath && set.active[f]) {
        for (const topo::ChannelId ch : set.flows[f].channels) {
          if (chan_down[static_cast<std::size_t>(ch)]) {
            repath = true;
            break;
          }
        }
      }
      if (!repath) continue;
      auto path = best_lid_path(topo, lids, tables, src, dst);
      const char now_ok = path.ok ? 1 : 0;
      if (now_ok != set.active[f] ||
          (now_ok && path.channels != set.flows[f].channels)) {
        set.active[f] = now_ok;
        set.flows[f].channels = now_ok ? std::move(path.channels)
                                       : std::vector<topo::ChannelId>{};
        set.flows[f].bytes = 1;
        changed = true;
      }
    }
    if (changed) resolve.push_back(s);
  }

  // Re-solve only the changed sets, concurrently with per-worker scratch;
  // each index writes its own set's rates, so the result is thread-count
  // invariant like solve_batch.
  pool.parallel_for(
      static_cast<std::int64_t>(resolve.size()),
      [&](std::int64_t j, std::int32_t worker) {
        TrafficSet& set = state.sets[resolve[static_cast<std::size_t>(j)]];
        std::fill(set.rates.begin(), set.rates.end(), 0.0);
        flowsim.solve_active(set.flows, set.active, set.rates,
                             arena.local(worker));
      });
  state.traffic_valid = true;

  double delivered = 0.0;
  for (const TrafficSet& set : state.sets)
    for (std::size_t f = 0; f < set.flows.size(); ++f)
      if (set.active[f])
        delivered +=
            std::min(set.rates[f], options.link.bandwidth) /
            options.link.bandwidth;
  return delivered / static_cast<double>(attempted);
}

}  // namespace

const char* to_string(ResilienceTraffic traffic) {
  switch (traffic) {
    case ResilienceTraffic::kUniformRandom:
      return "uniform-random";
    case ResilienceTraffic::kMpiGraphShift:
      return "mpigraph-shift";
    case ResilienceTraffic::kEbbBisection:
      return "ebb-bisection";
  }
  return "?";
}

obs::DegradationSeries run_resilience_campaign(
    topo::Topology& topo, const std::string& fabric_name,
    std::span<ResilienceEngine> engines, const ResilienceOptions& options,
    std::span<const topo::FaultStage> extra_stages) {
  topo::FaultSchedule schedule =
      topo::FaultSchedule::plan(topo, options.schedule);
  for (const topo::FaultStage& stage : extra_stages)
    schedule.append_stage(stage);
  // The shared fabric is restored however this function exits: a throw
  // outside the per-engine catch below (apply_stage, the flow solver, an
  // allocation failure) must not leak a faulted topology to later callers.
  const topo::ScheduleRevertGuard revert_guard(topo, schedule);

  // Traffic pairs are a pure function of (traffic kind, seed, terminal
  // count, sample index) -- identical for every stage and engine -- so
  // draw them once, consuming the RNG stream exactly as the historical
  // per-stage rebuild did.
  stats::Rng rng(options.traffic_seed);
  const std::int32_t n = topo.num_terminals();
  std::vector<std::vector<std::pair<NodeId, NodeId>>> sample_pairs;
  sample_pairs.reserve(static_cast<std::size_t>(options.traffic_samples));
  std::int64_t attempted = 0;
  for (std::int32_t s = 0; s < options.traffic_samples; ++s) {
    sample_pairs.push_back(make_pairs(options.traffic, n, s, rng));
    attempted += static_cast<std::int64_t>(sample_pairs.back().size());
  }

  obs::DegradationSeries series;
  const std::size_t num_engines = engines.size();
  std::vector<double> intact_throughput(num_engines, 0.0);
  std::vector<double> intact_hops(num_engines, 0.0);
  std::vector<double> retention(num_engines, 1.0);
  std::int32_t cables_failed = 0;
  std::int32_t switches_failed = 0;

  std::vector<EngineState> states;
  states.reserve(num_engines);
  for (const ResilienceEngine& re : engines) states.emplace_back(*re.engine);

  const sim::FlowSim flowsim(topo, options.link, options.solver);
  exec::ThreadPool pool(options.threads);
  exec::ScratchArena<sim::FlowSim::SolveScratch> arena(pool);
  std::vector<char> chan_down(static_cast<std::size_t>(topo.num_channels()),
                              0);

  // Stage 0 measures the intact fabric; stage s > 0 applies schedule
  // stage s-1 first ("fail k, reroute, fail k more").
  for (std::int32_t stage = 0; stage <= schedule.num_stages(); ++stage) {
    routing::DeltaUpdate update;
    if (stage > 0) {
      topo::FaultReport report = schedule.apply_stage(topo, stage - 1);
      // Both failure tallies come from the *applied* report: events the
      // planner kept but that disabled nothing new (overlapping appended
      // stages) count in neither, so samples never double-count damage.
      cables_failed += static_cast<std::int32_t>(report.disabled_links.size());
      switches_failed += report.switches_failed;
      update.disabled = std::move(report.disabled_channels);
      std::fill(chan_down.begin(), chan_down.end(), 0);
      for (const topo::ChannelId ch : update.disabled)
        chan_down[static_cast<std::size_t>(ch)] = 1;
    }
    for (std::size_t e = 0; e < num_engines; ++e) {
      const ResilienceEngine& re = engines[e];
      EngineState& st = states[e];
      obs::DegradationSample sample;
      sample.fabric = fabric_name;
      sample.engine = re.name;
      sample.stage = stage;
      sample.cables_failed = cables_failed;
      sample.switches_failed = switches_failed;
      try {
        routing::DeltaStats dstats;
        const routing::DeltaStats* stats = nullptr;
        const routing::RouteResult* route;
        if (stage == 0) {
          route = &st.router.reroute_full(topo, re.lids);
        } else {
          route = &st.router.reroute(topo, re.lids, update, &dstats);
          stats = &dstats;
        }
        const routing::RouteAudit audit =
            routing::audit_route(topo, re.lids, *route, options.threads);
        sample.reachability = audit.census.reachability();
        sample.lost_pairs = audit.census.lost_pairs;
        sample.lost_lid_paths = audit.census.lost_lid_paths;
        sample.mean_switch_hops = audit.census.mean_switch_hops();
        sample.blackhole_columns = audit.census.blackhole_entries;
        sample.cdg_acyclic = audit.cdg.acyclic;
        sample.vls_used = route->num_vls_used;
        sample.throughput = delivered_throughput(
            topo, re.lids, route->tables, options, sample_pairs, attempted,
            st, stats, chan_down, flowsim, pool, arena);
      } catch (const std::exception&) {
        // e.g. PARX exceeding its VL budget on a heavily degraded fabric:
        // the engine cannot route this fabric at all.  Its incremental
        // state may be torn mid-patch, so both the router and the cached
        // traffic are invalidated; the next stage recomputes from scratch.
        st.router.invalidate();
        st.traffic_valid = false;
        sample.engine_failed = true;
        sample.reachability = 0.0;
        sample.cdg_acyclic = false;
        sample.vls_used = 0;
      }
      if (stage == 0) {
        intact_throughput[e] = sample.throughput;
        intact_hops[e] = sample.mean_switch_hops;
        sample.retention = sample.engine_failed ? 0.0 : 1.0;
        retention[e] = sample.retention;
      } else {
        const double normalised =
            intact_throughput[e] > 0.0
                ? sample.throughput / intact_throughput[e]
                : 0.0;
        retention[e] = std::min(retention[e], normalised);
        sample.retention = retention[e];
      }
      sample.hop_inflation = intact_hops[e] > 0.0
                                 ? sample.mean_switch_hops / intact_hops[e]
                                 : 1.0;
      series.add(std::move(sample));
    }
  }

  return series;  // revert_guard restores the fabric
}

}  // namespace hxsim::workloads
