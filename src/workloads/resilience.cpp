#include "workloads/resilience.hpp"

#include <algorithm>
#include <exception>
#include <utility>
#include <vector>

#include "routing/verify.hpp"
#include "sim/flowsim.hpp"
#include "stats/rng.hpp"

namespace hxsim::workloads {

namespace {

using topo::NodeId;

std::vector<std::pair<NodeId, NodeId>> make_pairs(ResilienceTraffic traffic,
                                                  std::int32_t n,
                                                  std::int32_t round,
                                                  stats::Rng& rng) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  switch (traffic) {
    case ResilienceTraffic::kUniformRandom: {
      const std::vector<std::int32_t> perm = rng.permutation(n);
      for (NodeId i = 0; i < n; ++i)
        if (perm[static_cast<std::size_t>(i)] != i)
          pairs.emplace_back(i, perm[static_cast<std::size_t>(i)]);
      break;
    }
    case ResilienceTraffic::kMpiGraphShift: {
      const std::int32_t r = 1 + (round % std::max(1, n - 1));
      for (NodeId i = 0; i < n; ++i) pairs.emplace_back(i, (i + r) % n);
      break;
    }
    case ResilienceTraffic::kEbbBisection: {
      const std::vector<std::int32_t> perm = rng.permutation(n);
      const std::int32_t half = n / 2;
      for (std::int32_t i = 0; i < half; ++i)
        pairs.emplace_back(perm[static_cast<std::size_t>(i)],
                           perm[static_cast<std::size_t>(i + half)]);
      break;
    }
  }
  return pairs;
}

/// Shortest surviving LID path of a pair; !ok when every LID is lost.
routing::ForwardingTables::Path best_lid_path(
    const topo::Topology& topo, const routing::LidSpace& lids,
    const routing::ForwardingTables& tables, NodeId src, NodeId dst) {
  routing::ForwardingTables::Path best;
  for (std::int32_t x = 0; x < lids.lids_per_terminal(); ++x) {
    auto path = tables.path(topo, lids, src, lids.lid(dst, x));
    if (!path.ok) continue;
    if (!best.ok || path.switch_hops() < best.switch_hops())
      best = std::move(path);
  }
  return best;
}

/// Delivered fraction of injection bandwidth over `traffic_samples` rounds:
/// mean over *attempted* pairs of (max-min rate / line rate), lost pairs
/// contributing zero.  Solved concurrently via solve_batch (thread-count
/// invariant); the traffic RNG stream is consumed serially beforehand.
double delivered_throughput(const topo::Topology& topo,
                            const routing::LidSpace& lids,
                            const routing::ForwardingTables& tables,
                            const ResilienceOptions& options) {
  stats::Rng rng(options.traffic_seed);
  const std::int32_t n = topo.num_terminals();
  std::vector<std::vector<sim::Flow>> sets;
  sets.reserve(static_cast<std::size_t>(options.traffic_samples));
  std::int64_t attempted = 0;
  for (std::int32_t s = 0; s < options.traffic_samples; ++s) {
    const auto pairs = make_pairs(options.traffic, n, s, rng);
    std::vector<sim::Flow> flows;
    flows.reserve(pairs.size());
    for (const auto& [src, dst] : pairs) {
      ++attempted;
      auto path = best_lid_path(topo, lids, tables, src, dst);
      if (!path.ok) continue;  // lost pair: delivers nothing
      flows.push_back(sim::Flow{std::move(path.channels), 1});
    }
    sets.push_back(std::move(flows));
  }
  if (attempted == 0) return 0.0;

  const sim::FlowSim flowsim(topo, options.link);
  const auto rates = flowsim.solve_batch(sets, options.threads);
  double delivered = 0.0;
  for (const auto& set : rates)
    for (const double r : set)
      delivered += std::min(r, options.link.bandwidth) / options.link.bandwidth;
  return delivered / static_cast<double>(attempted);
}

std::int32_t count_kind(const topo::FaultStage& stage, topo::FaultKind kind) {
  std::int32_t n = 0;
  for (const topo::FaultEvent& ev : stage.events)
    if (ev.kind == kind) ++n;
  return n;
}

}  // namespace

const char* to_string(ResilienceTraffic traffic) {
  switch (traffic) {
    case ResilienceTraffic::kUniformRandom:
      return "uniform-random";
    case ResilienceTraffic::kMpiGraphShift:
      return "mpigraph-shift";
    case ResilienceTraffic::kEbbBisection:
      return "ebb-bisection";
  }
  return "?";
}

obs::DegradationSeries run_resilience_campaign(
    topo::Topology& topo, const std::string& fabric_name,
    std::span<ResilienceEngine> engines, const ResilienceOptions& options,
    std::span<const topo::FaultStage> extra_stages) {
  topo::FaultSchedule schedule =
      topo::FaultSchedule::plan(topo, options.schedule);
  for (const topo::FaultStage& stage : extra_stages)
    schedule.append_stage(stage);

  obs::DegradationSeries series;
  const std::size_t num_engines = engines.size();
  std::vector<double> intact_throughput(num_engines, 0.0);
  std::vector<double> intact_hops(num_engines, 0.0);
  std::vector<double> retention(num_engines, 1.0);
  std::int32_t cables_failed = 0;
  std::int32_t switches_failed = 0;

  // Stage 0 measures the intact fabric; stage s > 0 applies schedule
  // stage s-1 first ("fail k, reroute, fail k more").
  for (std::int32_t stage = 0; stage <= schedule.num_stages(); ++stage) {
    if (stage > 0) {
      const topo::FaultReport report = schedule.apply_stage(topo, stage - 1);
      cables_failed += static_cast<std::int32_t>(report.disabled_links.size());
      switches_failed +=
          count_kind(schedule.stage(stage - 1), topo::FaultKind::kSwitch);
    }
    for (std::size_t e = 0; e < num_engines; ++e) {
      ResilienceEngine& re = engines[e];
      obs::DegradationSample sample;
      sample.fabric = fabric_name;
      sample.engine = re.name;
      sample.stage = stage;
      sample.cables_failed = cables_failed;
      sample.switches_failed = switches_failed;
      try {
        const routing::RerouteOutcome outcome = routing::reroute_and_verify(
            *re.engine, topo, re.lids, options.threads);
        sample.reachability = outcome.census.reachability();
        sample.lost_pairs = outcome.census.lost_pairs;
        sample.lost_lid_paths = outcome.census.lost_lid_paths;
        sample.mean_switch_hops = outcome.census.mean_switch_hops();
        sample.cdg_acyclic = outcome.cdg.acyclic;
        sample.vls_used = outcome.route.num_vls_used;
        sample.throughput = delivered_throughput(topo, re.lids,
                                                 outcome.route.tables, options);
      } catch (const std::exception&) {
        // e.g. PARX exceeding its VL budget on a heavily degraded fabric:
        // the engine cannot route this fabric at all.
        sample.engine_failed = true;
        sample.reachability = 0.0;
        sample.cdg_acyclic = false;
        sample.vls_used = 0;
      }
      if (stage == 0) {
        intact_throughput[e] = sample.throughput;
        intact_hops[e] = sample.mean_switch_hops;
        sample.retention = sample.engine_failed ? 0.0 : 1.0;
        retention[e] = sample.retention;
      } else {
        const double normalised =
            intact_throughput[e] > 0.0
                ? sample.throughput / intact_throughput[e]
                : 0.0;
        retention[e] = std::min(retention[e], normalised);
        sample.retention = retention[e];
      }
      sample.hop_inflation = intact_hops[e] > 0.0
                                 ? sample.mean_switch_hops / intact_hops[e]
                                 : 1.0;
      series.add(std::move(sample));
    }
  }

  schedule.revert(topo);
  return series;
}

}  // namespace hxsim::workloads
