#include "workloads/capacity.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

namespace hxsim::workloads {

std::int32_t CapacityResult::total() const {
  std::int32_t sum = 0;
  for (std::int32_t r : runs_completed) sum += r;
  return sum;
}

std::vector<CapacityJob> paper_capacity_mix(std::span<const topo::NodeId> pool,
                                            mpi::PlacementKind kind,
                                            stats::Rng& rng) {
  // 9 x 56 + 5 x 32 = 664 nodes (the paper's 98.8 % occupancy of 672).
  const std::vector<AppId> apps = capacity_apps();
  auto nodes_for = [](AppId id) {
    switch (id) {
      case AppId::kFfvc:
      case AppId::kMvmc:
      case AppId::kNtchem:
      case AppId::kQbox:
      case AppId::kEmDl:
        return 32;
      default:
        return 56;
    }
  };

  std::vector<CapacityJob> jobs;
  std::size_t offset = 0;
  for (AppId id : apps) {
    const auto count = static_cast<std::size_t>(nodes_for(id));
    if (offset + count > pool.size())
      throw std::invalid_argument("paper_capacity_mix: pool too small");
    const std::span<const topo::NodeId> slice = pool.subspan(offset, count);
    offset += count;
    jobs.push_back(CapacityJob{
        id, mpi::Placement::make(kind, static_cast<std::int32_t>(count),
                                 slice, rng)});
  }
  return jobs;
}

namespace {

struct JobState {
  std::string name;
  double compute_per_run = 0.0;
  /// Aggregated run communication: routed flows with per-run byte volume.
  std::vector<sim::Flow> run_flows;

  enum class Phase : std::int8_t { kCompute, kComm } phase = Phase::kCompute;
  double compute_left = 0.0;
  std::vector<double> bytes_left;  // per flow, comm phase
  std::int32_t runs_completed = 0;
};

/// Aggregates a schedule into one flow per communicating node pair.
std::vector<sim::Flow> aggregate_run_flows(const mpi::Cluster& cluster,
                                           const CapacityJob& job,
                                           const AppWorkload& app,
                                           stats::Rng& rng) {
  std::map<std::pair<topo::NodeId, topo::NodeId>, std::int64_t> volume;
  for (const mpi::Round& round : app.iteration_comm) {
    for (const mpi::RankMsg& m : round) {
      const topo::NodeId src = job.placement.node_of(m.src_rank);
      const topo::NodeId dst = job.placement.node_of(m.dst_rank);
      if (src == dst || m.bytes == 0) continue;
      volume[{src, dst}] += m.bytes;
    }
  }
  std::vector<sim::Flow> flows;
  flows.reserve(volume.size());
  for (const auto& [pair, bytes_per_iter] : volume) {
    const std::int64_t bytes = bytes_per_iter * app.iterations;
    auto msg = cluster.route_message(pair.first, pair.second, bytes, rng);
    if (!msg) throw std::runtime_error("capacity: unroutable job pair");
    flows.push_back(sim::Flow{std::move(msg->path), bytes});
  }
  return flows;
}

void start_run(JobState& job, double launch_overhead) {
  job.phase = JobState::Phase::kCompute;
  job.compute_left = launch_overhead + job.compute_per_run;
}

void start_comm(JobState& job) {
  job.phase = JobState::Phase::kComm;
  job.bytes_left.assign(job.run_flows.size(), 0.0);
  for (std::size_t f = 0; f < job.run_flows.size(); ++f)
    job.bytes_left[f] = static_cast<double>(job.run_flows[f].bytes);
}

}  // namespace

CapacityResult run_capacity(const mpi::Cluster& cluster,
                            std::span<const CapacityJob> jobs,
                            const CapacityOptions& options) {
  stats::Rng rng(options.seed);
  sim::FlowSim flowsim(cluster.topo(), cluster.link());

  std::vector<JobState> states;
  states.reserve(jobs.size());
  for (const CapacityJob& job : jobs) {
    const AppWorkload app = make_app(job.app, job.placement.num_ranks());
    JobState st;
    st.name = app.name;
    st.compute_per_run = app.compute_per_iteration *
                         static_cast<double>(app.iterations);
    st.run_flows = aggregate_run_flows(cluster, job, app, rng);
    start_run(st, options.launch_overhead);
    states.push_back(std::move(st));
  }

  double now = 0.0;
  while (now < options.duration) {
    // Global fair rates over every communicating job's flows.
    std::vector<sim::Flow> active;
    std::vector<std::pair<std::size_t, std::size_t>> owner;  // (job, flow)
    for (std::size_t j = 0; j < states.size(); ++j) {
      if (states[j].phase != JobState::Phase::kComm) continue;
      for (std::size_t f = 0; f < states[j].run_flows.size(); ++f) {
        if (states[j].bytes_left[f] <= 0.0) continue;
        active.push_back(states[j].run_flows[f]);
        owner.emplace_back(j, f);
      }
    }
    std::vector<double> rate;
    if (!active.empty()) rate = flowsim.fair_rates(active);

    // Next phase transition across all jobs.
    std::vector<double> job_eta(states.size(),
                                std::numeric_limits<double>::infinity());
    for (std::size_t j = 0; j < states.size(); ++j) {
      if (states[j].phase == JobState::Phase::kCompute)
        job_eta[j] = states[j].compute_left;
      else if (states[j].run_flows.empty())
        job_eta[j] = 0.0;  // no fabric traffic: comm is instantaneous
      else
        job_eta[j] = 0.0;  // grows below from the slowest flow
    }
    for (std::size_t i = 0; i < active.size(); ++i) {
      const auto [j, f] = owner[i];
      if (rate[i] <= 0.0)
        throw std::runtime_error("capacity: starved flow");
      job_eta[j] = std::max(job_eta[j], states[j].bytes_left[f] / rate[i]);
    }

    double dt = options.duration - now;
    for (double eta : job_eta) dt = std::min(dt, eta);
    dt = std::max(dt, 0.0);

    // Advance.
    for (std::size_t i = 0; i < active.size(); ++i) {
      const auto [j, f] = owner[i];
      states[j].bytes_left[f] =
          std::max(0.0, states[j].bytes_left[f] - rate[i] * dt);
    }
    now += dt;
    if (now >= options.duration) break;

    for (std::size_t j = 0; j < states.size(); ++j) {
      JobState& st = states[j];
      if (st.phase == JobState::Phase::kCompute) {
        st.compute_left -= dt;
        if (st.compute_left <= 1e-9) start_comm(st);
      } else if (job_eta[j] <= dt + 1e-12) {
        ++st.runs_completed;
        start_run(st, options.launch_overhead);
      }
    }
  }

  CapacityResult result;
  for (const JobState& st : states) {
    result.app_names.push_back(st.name);
    result.runs_completed.push_back(st.runs_completed);
  }
  return result;
}

}  // namespace hxsim::workloads
