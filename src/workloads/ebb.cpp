#include "workloads/ebb.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/units.hpp"

namespace hxsim::workloads {

EbbResult effective_bisection_bandwidth(const mpi::Cluster& cluster,
                                        const mpi::Placement& placement,
                                        std::int32_t nodes_used,
                                        const EbbOptions& options) {
  if (nodes_used < 2 || nodes_used % 2 != 0 ||
      nodes_used > placement.num_ranks())
    throw std::invalid_argument("ebb: node count must be even and placed");

  stats::Rng rng(options.seed);
  sim::FlowSim flows(cluster.topo(), cluster.link());
  EbbResult result;
  result.sample_means.reserve(static_cast<std::size_t>(options.samples));

  const std::int32_t half = nodes_used / 2;

  // Permutation samples are independent once routed; solve blocks of them
  // concurrently.  Permutations and paths are generated strictly in sample
  // order (both consume the RNG), so the sample means are identical to the
  // sequential run at any thread count.
  constexpr std::int32_t kBlock = 32;
  std::vector<std::vector<sim::Flow>> rounds;
  for (std::int32_t block = 0; block < options.samples; block += kBlock) {
    const std::int32_t end = std::min(block + kBlock, options.samples);
    rounds.clear();
    for (std::int32_t s = block; s < end; ++s) {
      const std::vector<std::int32_t> perm = rng.permutation(nodes_used);
      // Pair perm[i] <-> perm[i + half]; both directions stream
      // concurrently (Netgauge uses Isend/Irecv full-duplex pairs).
      std::vector<sim::Flow> round;
      round.reserve(static_cast<std::size_t>(nodes_used));
      for (std::int32_t i = 0; i < half; ++i) {
        const topo::NodeId a =
            placement.node_of(perm[static_cast<std::size_t>(i)]);
        const topo::NodeId b =
            placement.node_of(perm[static_cast<std::size_t>(i + half)]);
        for (const auto& [src, dst] : {std::pair{a, b}, std::pair{b, a}}) {
          auto msg = cluster.route_message(src, dst, options.bytes, rng);
          if (!msg) throw std::runtime_error("ebb: unroutable pair");
          round.push_back(sim::Flow{std::move(msg->path), options.bytes});
        }
      }
      rounds.push_back(std::move(round));
    }
    for (const auto& rate : flows.solve_batch(rounds)) {
      double mean = 0.0;
      for (double r : rate) mean += r;
      mean /= static_cast<double>(rate.size());
      result.sample_means.push_back(mean / static_cast<double>(stats::kGiB));
    }
  }
  return result;
}

}  // namespace hxsim::workloads
