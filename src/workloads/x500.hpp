// x500 benchmark metrics (paper §4.3, Figures 6j-6l).
//
// HPL and HPCG report floating-point operations per second; Graph500
// reports traversed edges per second (TEPS).  The skeletons carry their
// total useful work, so the metric is work / measured kernel time.
#pragma once

#include "workloads/apps.hpp"

namespace hxsim::workloads {

/// HPL / HPCG compute performance [Gflop/s].
[[nodiscard]] double gflops(const AppWorkload& app, double kernel_seconds);

/// Graph500 traversal speed [GTEPS] (edges per second over all BFSs).
[[nodiscard]] double gteps(const AppWorkload& app, double kernel_seconds);

}  // namespace hxsim::workloads
