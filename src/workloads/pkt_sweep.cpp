#include "workloads/pkt_sweep.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "stats/rng.hpp"

namespace hxsim::workloads {

const char* to_string(PktPattern pattern) {
  switch (pattern) {
    case PktPattern::kUniformRandom: return "uniform_random";
    case PktPattern::kShift: return "shift";
    case PktPattern::kHotspot: return "hotspot";
  }
  return "?";
}

namespace {

/// src -> dst message routed per the arm: a static arm resolves the path
/// and VL from its tables; an adaptive arm leaves the path empty (the
/// engine routes per hop).
sim::PktMessage make_message(const topo::Topology& topo,
                             const PktRoutingArm& arm, topo::NodeId src,
                             topo::NodeId dst, std::int64_t bytes,
                             double inject_time) {
  sim::PktMessage m;
  m.src = src;
  m.dst = dst;
  m.bytes = bytes;
  m.inject_time = inject_time;
  if (arm.route != nullptr) {
    auto path = arm.route->tables.path(topo, *arm.lids, src,
                                       arm.lids->base_lid(dst));
    m.path = std::move(path.channels);
    m.vl = arm.route->vls.vl(topo.attach_switch(src),
                             arm.lids->base_lid(dst));
  }
  return m;
}

}  // namespace

std::vector<sim::PktMessage> build_pkt_messages(const topo::Topology& topo,
                                                const PktRoutingArm& arm,
                                                const PktPatternSpec& spec,
                                                std::uint64_t seed) {
  if ((arm.route != nullptr) == (arm.adaptive != nullptr))
    throw std::invalid_argument(
        "pkt_sweep: arm must set exactly one of route/adaptive");
  if (arm.route != nullptr && arm.lids == nullptr)
    throw std::invalid_argument("pkt_sweep: static arm needs lids");

  const auto n = static_cast<std::uint64_t>(topo.num_terminals());

  // Resolve the message count up front so an unsatisfiable spec throws
  // instead of silently emitting a different count than requested (kShift
  // used to ignore spec.messages entirely).
  std::int32_t messages = spec.messages;
  if (messages == kAutoMessages)
    messages = spec.pattern == PktPattern::kShift
                   ? static_cast<std::int32_t>(n)
                   : 256;
  if (messages <= 0)
    throw std::invalid_argument("pkt_sweep: messages must be positive");
  if (spec.pattern == PktPattern::kShift &&
      messages != static_cast<std::int32_t>(n))
    throw std::invalid_argument(
        "pkt_sweep: kShift sends exactly one message per terminal (" +
        std::to_string(n) + "); leave messages = kAutoMessages or set it "
        "to the terminal count");
  // Jittered injection de-synchronises the senders a little, as real NICs
  // are; the window is tiny next to any serialization time.
  stats::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<sim::PktMessage> msgs;

  switch (spec.pattern) {
    case PktPattern::kUniformRandom:
      msgs.reserve(static_cast<std::size_t>(messages));
      while (static_cast<std::int32_t>(msgs.size()) < messages) {
        const auto src = static_cast<topo::NodeId>(rng.next_below(n));
        const auto dst = static_cast<topo::NodeId>(rng.next_below(n));
        if (src == dst) continue;
        msgs.push_back(make_message(topo, arm, src, dst, spec.bytes,
                                    rng.uniform() * 1e-6));
      }
      break;
    case PktPattern::kShift: {
      msgs.reserve(n);
      const auto r = static_cast<std::uint64_t>(spec.shift) % n;
      if (r == 0)
        throw std::invalid_argument("pkt_sweep: shift must be nonzero mod N");
      for (std::uint64_t i = 0; i < n; ++i)
        msgs.push_back(make_message(topo, arm,
                                    static_cast<topo::NodeId>(i),
                                    static_cast<topo::NodeId>((i + r) % n),
                                    spec.bytes, rng.uniform() * 1e-6));
      break;
    }
    case PktPattern::kHotspot: {
      const auto hot = static_cast<topo::NodeId>(rng.next_below(n));
      msgs.reserve(static_cast<std::size_t>(messages));
      while (static_cast<std::int32_t>(msgs.size()) < messages) {
        const auto src = static_cast<topo::NodeId>(rng.next_below(n));
        if (src == hot) continue;
        msgs.push_back(make_message(topo, arm, src, hot, spec.bytes,
                                    rng.uniform() * 1e-6));
      }
      break;
    }
  }
  return msgs;
}

std::vector<PktReplicationResult> run_pkt_sweep(
    const topo::Topology& topo, std::span<const PktRoutingArm> arms,
    std::span<const PktPatternSpec> patterns,
    const PktSweepOptions& options) {
  if (options.config.trace != nullptr)
    throw std::invalid_argument(
        "pkt_sweep: config.trace must be null (shared sinks race)");
  if (options.seeds < 1)
    throw std::invalid_argument("pkt_sweep: need at least one seed");

  std::vector<PktReplicationResult> out;
  for (const PktRoutingArm& arm : arms) {
    // One simulator (and per-worker scratch pool) per arm; all of the
    // arm's (pattern, seed) replications fan through one run_batch call.
    sim::PktSimConfig cfg = options.config;
    cfg.adaptive = arm.adaptive;
    sim::PktSim sim(topo, cfg);

    std::vector<std::vector<sim::PktMessage>> sets;
    sets.reserve(patterns.size() *
                 static_cast<std::size_t>(options.seeds));
    for (const PktPatternSpec& spec : patterns)
      for (std::int32_t s = 1; s <= options.seeds; ++s)
        sets.push_back(build_pkt_messages(topo, arm, spec,
                                          static_cast<std::uint64_t>(s)));

    const std::vector<sim::PktSim::Result> results =
        sim.run_batch(sets, options.threads, {}, options.max_events);

    std::size_t i = 0;
    for (const PktPatternSpec& spec : patterns) {
      for (std::int32_t s = 1; s <= options.seeds; ++s, ++i) {
        const sim::PktSim::Result& r = results[i];
        PktReplicationResult rep;
        rep.arm = arm.name;
        rep.pattern = spec.pattern;
        rep.seed = static_cast<std::uint64_t>(s);
        rep.deadlock = r.deadlock;
        rep.truncated = r.truncated;
        rep.end_time = r.end_time;
        rep.packets_delivered = r.packets_delivered;
        rep.packets_total = r.packets_total;
        rep.events_executed = r.events_executed;
        double sum = 0.0;
        std::int64_t done = 0;
        for (const double t : r.completion)
          if (!std::isnan(t)) {
            sum += t;
            ++done;
          }
        rep.mean_completion =
            done > 0 ? sum / static_cast<double>(done)
                     : std::numeric_limits<double>::quiet_NaN();
        out.push_back(std::move(rep));
      }
    }
  }
  return out;
}

}  // namespace hxsim::workloads
