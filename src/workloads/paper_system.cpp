#include "workloads/paper_system.hpp"

#include "core/parx.hpp"
#include "core/quadrant.hpp"
#include "routing/dfsssp.hpp"
#include "routing/ftree.hpp"
#include "topo/fault_injector.hpp"

namespace hxsim::workloads {

namespace {

topo::FatTreeParams tree_params(bool small_scale) {
  if (!small_scale) return topo::paper_fat_tree_params();
  topo::FatTreeParams p;
  p.arity = 6;
  p.levels = 3;
  p.leaf_terminals = 4;
  p.populated_leaves = 24;  // 96 nodes
  p.name = "fat-tree-6ary3-small";
  return p;
}

topo::HyperXParams hyperx_params(bool small_scale) {
  if (!small_scale) return topo::paper_hyperx_params();
  topo::HyperXParams p;
  p.dims = {6, 4};
  p.terminals_per_switch = 4;  // 96 nodes
  p.name = "hyperx-6x4-small";
  return p;
}

}  // namespace

PaperSystem::PaperSystem(SystemOptions options) : options_(options) {
  ft_ = std::make_unique<topo::FatTree>(tree_params(options.small_scale));
  hx_ = std::make_unique<topo::HyperX>(hyperx_params(options.small_scale));
  if (options.with_faults) {
    const std::int32_t scale = options.small_scale ? 8 : 1;
    topo::inject_link_faults(ft_->topo(),
                             topo::kPaperFatTreeMissingLinks / scale,
                             options.fault_seed);
    topo::inject_link_faults(hx_->topo(),
                             topo::kPaperHyperXMissingLinks / scale,
                             options.fault_seed);
  }

  {
    routing::LidSpace lids =
        routing::LidSpace::consecutive(ft_->topo().num_terminals(), 0);
    routing::FtreeEngine engine(*ft_);
    ft_ftree_ = std::make_unique<mpi::Cluster>(
        ft_->topo(), lids, engine.compute(ft_->topo(), lids),
        mpi::make_ob1());
  }
  {
    routing::LidSpace lids =
        routing::LidSpace::consecutive(ft_->topo().num_terminals(), 0);
    // The paper runs plain SSSP on the tree; up/down legality (and thus
    // deadlock freedom) is inherent there because SSSP's minimal paths on
    // a tree never bounce, so one VL suffices -- we still route via the
    // deadlock-free variant for uniformity.
    routing::DfssspEngine engine(8);
    ft_sssp_ = std::make_unique<mpi::Cluster>(
        ft_->topo(), lids, engine.compute(ft_->topo(), lids),
        mpi::make_ob1());
  }
  {
    routing::LidSpace lids =
        routing::LidSpace::consecutive(hx_->topo().num_terminals(), 0);
    routing::DfssspEngine engine(8);
    hx_dfsssp_ = std::make_unique<mpi::Cluster>(
        hx_->topo(), lids, engine.compute(hx_->topo(), lids),
        mpi::make_ob1());
  }
  {
    routing::LidSpace lids = core::make_parx_lid_space(*hx_);
    core::ParxOptions parx_opts;
    parx_opts.max_vls = options.parx_max_vls;
    core::ParxEngine engine(*hx_, core::DemandMatrix{}, parx_opts);
    hx_parx_ = std::make_unique<mpi::Cluster>(
        hx_->topo(), lids, engine.compute(hx_->topo(), lids),
        mpi::make_bfo());
  }

  configs_ = {
      Config{"Fat-Tree / ftree / linear", ft_ftree_.get(),
             mpi::PlacementKind::kLinear},
      Config{"Fat-Tree / SSSP / clustered", ft_sssp_.get(),
             mpi::PlacementKind::kClustered},
      Config{"HyperX / DFSSSP / linear", hx_dfsssp_.get(),
             mpi::PlacementKind::kLinear},
      Config{"HyperX / DFSSSP / random", hx_dfsssp_.get(),
             mpi::PlacementKind::kRandom},
      Config{"HyperX / PARX / clustered", hx_parx_.get(),
             mpi::PlacementKind::kClustered},
  };
}

mpi::Cluster PaperSystem::make_parx_cluster(
    const core::DemandMatrix& demands) const {
  routing::LidSpace lids = core::make_parx_lid_space(*hx_);
  core::ParxOptions parx_opts;
  parx_opts.max_vls = options_.parx_max_vls;
  core::ParxEngine engine(*hx_, demands, parx_opts);
  return mpi::Cluster(hx_->topo(), lids, engine.compute(hx_->topo(), lids),
                      mpi::make_bfo());
}

}  // namespace hxsim::workloads
