// Capacity / system-throughput evaluation (paper §4.4.2 and §5.3, Fig. 7).
//
// Fourteen applications run concurrently on dedicated 32/56-node
// allocations for three hours; the metric is the number of completed runs
// per application.  Jobs interfere only through the shared fabric, which is
// exactly what the fluid co-simulation models: every job alternates between
// a compute phase and a communication phase whose flows share the network
// with all concurrently communicating jobs under max-min fairness.  Rates
// are re-evaluated at every job phase transition.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mpi/cluster.hpp"
#include "workloads/apps.hpp"

namespace hxsim::workloads {

struct CapacityJob {
  AppId app = AppId::kAmg;
  mpi::Placement placement;  // the job's node allocation (rank order)
};

struct CapacityOptions {
  double duration = 3.0 * 3600.0;  // the paper's 3 h window
  /// Per-run launch overhead (mpirun + setup) [s].
  double launch_overhead = 10.0;
  std::uint64_t seed = 1;
};

struct CapacityResult {
  std::vector<std::string> app_names;
  std::vector<std::int32_t> runs_completed;

  [[nodiscard]] std::int32_t total() const;
};

/// Builds the paper's 14-job mix: every app from capacity_apps() on
/// consecutive slices of `pool` (32 nodes each, 56 for CoMD and
/// Multi-PingPong as in the paper's 664-node occupancy), placed per `kind`.
[[nodiscard]] std::vector<CapacityJob> paper_capacity_mix(
    std::span<const topo::NodeId> pool, mpi::PlacementKind kind,
    stats::Rng& rng);

/// Runs the co-simulation.
[[nodiscard]] CapacityResult run_capacity(const mpi::Cluster& cluster,
                                          std::span<const CapacityJob> jobs,
                                          const CapacityOptions& options = {});

}  // namespace hxsim::workloads
