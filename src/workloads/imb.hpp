// Intel MPI Benchmarks (IMB) single-mode MPI-1 collectives (paper §4.1).
//
// Maps each IMB operation to the algorithm Open MPI 1.10's tuned component
// would pick: binomial trees for rooted collectives, recursive doubling for
// small Allreduce and ring for large, pairwise exchange for Alltoall.
// imb_message_sizes() reproduces the power-of-two sweeps on the Figure 4/5
// axes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpi/collectives.hpp"

namespace hxsim::workloads {

enum class ImbOp : std::int8_t {
  kBarrier,
  kBcast,
  kGather,
  kScatter,
  kReduce,
  kAllreduce,
  kAlltoall,
};

[[nodiscard]] const char* to_string(ImbOp op);

/// All Figure 4 operations (everything except Barrier).
[[nodiscard]] std::vector<ImbOp> imb_figure4_ops();

/// Open MPI 1.10 switches Allreduce from recursive doubling to ring at
/// large sizes; we use this threshold.
inline constexpr std::int64_t kAllreduceRingThreshold = 64 * 1024;

/// The schedule IMB's measurement loop executes once per repetition.
[[nodiscard]] mpi::Schedule imb_schedule(ImbOp op, std::int32_t nranks,
                                         std::int64_t bytes);

/// Message-size sweep of the paper's Figure 4 plots: 1 B ... 4 MiB for
/// most operations, 4 B ... 4 MiB for (All)Reduce, {0} for Barrier.
[[nodiscard]] std::vector<std::int64_t> imb_message_sizes(ImbOp op);

/// Node-count sweep of the capability runs: 7, 14, ..., 672 switch-aligned
/// or 4, 8, ..., 512 power-of-two (paper §4.4.1).
[[nodiscard]] std::vector<std::int32_t> capability_node_counts(
    bool power_of_two, std::int32_t max_nodes);

}  // namespace hxsim::workloads
