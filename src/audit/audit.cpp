#include "audit/audit.hpp"

#include <sstream>

namespace hxsim::audit {

namespace {

const OracleEntry* find_oracle(const std::string& name) {
  for (const OracleEntry& o : all_oracles())
    if (name == o.name) return &o;
  return nullptr;
}

}  // namespace

AuditOutcome run_audit(const AuditOptions& options) {
  AuditOutcome outcome;
  const auto log = [&](const std::string& line) {
    if (options.log) options.log(line);
  };

  for (std::int32_t i = 0; i < options.num_seeds; ++i) {
    const std::uint64_t seed = options.first_seed + static_cast<std::uint64_t>(i);
    const Scenario scenario = generate_scenario(seed, options.bounds);
    const ScenarioVerdict verdict = run_all_oracles(scenario);
    ++outcome.scenarios;
    outcome.oracle_runs += verdict.oracles_run;
    {
      std::ostringstream os;
      os << "seed " << seed << " [" << to_string(scenario.kind) << "/"
         << scenario.engine << "] "
         << (verdict.pass ? "ok" : "FAIL: " + verdict.oracle);
      log(os.str());
    }
    if (verdict.pass) continue;

    outcome.failed = true;
    outcome.failing_seed = seed;
    outcome.oracle = verdict.oracle;
    outcome.detail = verdict.detail;

    Scenario minimal = scenario;
    if (options.shrink_failures) {
      const OracleEntry* oracle = find_oracle(verdict.oracle);
      const auto still_fails = [&](const Scenario& candidate) {
        return oracle != nullptr && !run_oracle(*oracle, candidate).pass;
      };
      const ShrinkOutcome shrunk =
          shrink(scenario, still_fails, options.max_shrink_attempts);
      minimal = shrunk.scenario;
      outcome.shrink_steps = shrunk.steps;
      if (oracle != nullptr) {
        // Re-run on the minimal scenario so the reported detail matches
        // the repro the user will actually replay.
        const OracleResult r = run_oracle(*oracle, minimal);
        if (!r.pass) outcome.detail = r.detail;
      }
      std::ostringstream os;
      os << "shrink: " << shrunk.steps << " reductions in "
         << shrunk.attempts << " attempts";
      log(os.str());
    }

    outcome.repro = to_repro(minimal);
    if (!options.repro_path.empty()) {
      write_repro(options.repro_path, minimal);
      outcome.repro_file = options.repro_path;
    }
    return outcome;
  }
  return outcome;
}

ScenarioVerdict replay_repro(const std::string& path) {
  return run_all_oracles(read_repro(path));
}

}  // namespace hxsim::audit
