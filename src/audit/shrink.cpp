#include "audit/shrink.hpp"

#include <algorithm>

namespace hxsim::audit {

namespace {

/// Keeps `c` as a candidate iff it is structurally valid.  Reductions are
/// generated blind (e.g. arity-1 may stop dividing the taper); validation
/// is the single source of truth on what is buildable.
void push_if_valid(std::vector<Scenario>& out, Scenario c) {
  try {
    validate_scenario(c);
  } catch (const std::exception&) {
    return;
  }
  out.push_back(std::move(c));
}

void hyperx_candidates(const Scenario& s, std::vector<Scenario>& out) {
  const std::vector<std::int32_t>& dims = s.hyperx.dims;
  const bool parx = s.engine == "parx";  // needs exactly 2 even dims

  // Drop the last dimension entirely.
  if (!parx && dims.size() > 1) {
    Scenario c = s;
    c.hyperx.dims.pop_back();
    push_if_valid(out, std::move(c));
  }
  // Shrink the largest dimension (by 2 for PARX to stay even).
  if (!dims.empty()) {
    const std::size_t widest = static_cast<std::size_t>(
        std::max_element(dims.begin(), dims.end()) - dims.begin());
    const std::int32_t step = parx ? 2 : 1;
    if (dims[widest] - step >= 2) {
      Scenario c = s;
      c.hyperx.dims[widest] -= step;
      push_if_valid(out, std::move(c));
    }
  }
  if (s.hyperx.terminals_per_switch > 1) {
    Scenario c = s;
    --c.hyperx.terminals_per_switch;
    push_if_valid(out, std::move(c));
  }
}

void fat_tree_candidates(const Scenario& s, std::vector<Scenario>& out) {
  if (s.fat_tree.levels > 2) {
    Scenario c = s;
    --c.fat_tree.levels;
    if (c.fat_tree.populated_leaves > 0) c.fat_tree.populated_leaves = -1;
    push_if_valid(out, std::move(c));
  }
  if (s.fat_tree.arity > 2) {
    Scenario c = s;
    --c.fat_tree.arity;
    // The taper must divide the arity; fall back to no taper if the
    // reduced arity breaks that.
    if (c.fat_tree.taper > 1 && c.fat_tree.arity % c.fat_tree.taper != 0)
      c.fat_tree.taper = 1;
    c.fat_tree.leaf_terminals =
        std::min(c.fat_tree.leaf_terminals, c.fat_tree.arity);
    if (c.fat_tree.populated_leaves > 0) c.fat_tree.populated_leaves = -1;
    push_if_valid(out, std::move(c));
  }
  if (s.fat_tree.taper > 1) {
    Scenario c = s;
    c.fat_tree.taper = 1;
    push_if_valid(out, std::move(c));
  }
  if (s.fat_tree.populated_leaves > 1) {
    Scenario c = s;
    --c.fat_tree.populated_leaves;
    push_if_valid(out, std::move(c));
  }
  if (s.fat_tree.leaf_terminals > 1) {
    Scenario c = s;
    --c.fat_tree.leaf_terminals;
    push_if_valid(out, std::move(c));
  }
}

}  // namespace

std::vector<Scenario> shrink_candidates(const Scenario& s) {
  std::vector<Scenario> out;

  // Structural shrinks first: a smaller fabric or fewer fault stages
  // shrinks every downstream artifact (tables, censuses, traces) at once.
  if (s.kind == TopoKind::kHyperX) {
    hyperx_candidates(s, out);
  } else {
    fat_tree_candidates(s, out);
  }

  if (s.faults.stages > 0) {
    Scenario c = s;
    --c.faults.stages;
    if (c.faults.stages == 0) {
      c.faults.links_per_stage = 0;
      c.faults.switches_per_stage = 0;
    }
    push_if_valid(out, std::move(c));
  }
  if (s.faults.switches_per_stage > 0) {
    Scenario c = s;
    --c.faults.switches_per_stage;
    if (c.faults.switches_per_stage == 0 && c.faults.links_per_stage == 0)
      c.faults.links_per_stage = 1;
    push_if_valid(out, std::move(c));
  }
  if (s.faults.links_per_stage > 1) {
    Scenario c = s;
    --c.faults.links_per_stage;
    push_if_valid(out, std::move(c));
  }

  // Load shrinks.
  if (s.traffic.messages != workloads::kAutoMessages &&
      s.traffic.messages > 1) {
    Scenario c = s;
    c.traffic.messages = s.traffic.messages / 2;
    push_if_valid(out, std::move(c));
  }
  if (s.traffic.bytes > 256) {
    Scenario c = s;
    c.traffic.bytes = std::max<std::int64_t>(256, s.traffic.bytes / 2);
    push_if_valid(out, std::move(c));
  }
  if (s.flow_pairs > 1) {
    Scenario c = s;
    c.flow_pairs = s.flow_pairs / 2;
    push_if_valid(out, std::move(c));
  }
  return out;
}

ShrinkOutcome shrink(const Scenario& failing,
                     const std::function<bool(const Scenario&)>& still_fails,
                     std::int32_t max_attempts) {
  ShrinkOutcome outcome;
  outcome.scenario = failing;
  bool progressed = true;
  while (progressed && outcome.attempts < max_attempts) {
    progressed = false;
    for (Scenario& candidate : shrink_candidates(outcome.scenario)) {
      if (outcome.attempts >= max_attempts) break;
      ++outcome.attempts;
      if (still_fails(candidate)) {
        outcome.scenario = std::move(candidate);
        ++outcome.steps;
        progressed = true;
        break;  // restart from the reduced scenario
      }
    }
  }
  return outcome;
}

}  // namespace hxsim::audit
