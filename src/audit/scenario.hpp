// Fuzz-audit scenarios: seeded random (fabric, engine, faults, traffic)
// tuples and their deterministic repro format.
//
// The repo holds three pairs of independently-implemented pipelines to
// bit-identity (typed vs reference PktSim, DeltaRouter vs full recompute,
// warm vs cold flow solves), but hand-picked paper fabrics exercise only a
// sliver of the input space -- exactly how the seed's latent bugs (per-VL
// occupancy misattribution, truncation conflated with deadlock) survived.
// A Scenario is one randomly drawn point of that space: a HyperX lattice
// or (tapered, possibly part-populated) fat-tree within size bounds, a
// routing engine valid for that fabric, a multi-stage FaultSchedule, and
// a seeded traffic set.  Everything is deterministic in the scenario
// seed, so any oracle failure replays from a few key-value lines (the
// repro format below) -- no fabric dumps, no RNG state capture.
//
// Repro format (version-tagged, one `key value` pair per line, `#`
// comments ignored):
//
//   hxsim-fuzz-repro v1
//   kind hyperx
//   dims 4,3
//   terminals_per_switch 2
//   engine dfsssp
//   fault_stages 2
//   ...
//
// write_repro()/read_repro() round-trip a Scenario through that text;
// `bench/fuzz_audit --repro <file>` replays it against every oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "routing/engine.hpp"
#include "routing/lid_space.hpp"
#include "topo/fat_tree.hpp"
#include "topo/fault_injector.hpp"
#include "topo/hyperx.hpp"
#include "workloads/pkt_sweep.hpp"

namespace hxsim::audit {

enum class TopoKind : std::int8_t { kHyperX, kFatTree };

[[nodiscard]] const char* to_string(TopoKind kind);

/// Size ceilings for generated scenarios.  Small on purpose: oracle cost
/// is superlinear in fabric size (route census is O(n^2) pairs), and bug
/// density per CPU-second is highest on many small fabrics, not few big
/// ones.
struct ScenarioBounds {
  std::int32_t max_switches = 48;
  std::int32_t max_terminals = 96;
  std::int32_t max_fault_stages = 3;
  std::int32_t max_messages = 48;
};

/// One generated test case.  Plain data, fully deterministic to rebuild:
/// equality (and the repro format) covers every field that influences an
/// oracle verdict.
struct Scenario {
  TopoKind kind = TopoKind::kHyperX;
  topo::HyperXParams hyperx;    // used when kind == kHyperX
  topo::FatTreeParams fat_tree; // used when kind == kFatTree
  /// Routing engine name: ftree | updown | sssp | dfsssp | parx.
  /// ftree is fat-tree-only; parx requires a 2-D even-dims HyperX.
  std::string engine = "updown";
  topo::FaultSchedule::Options faults{.stages = 0,
                                      .links_per_stage = 0,
                                      .switches_per_stage = 0,
                                      .seed = 1,
                                      .keep_connected = true};
  workloads::PktPatternSpec traffic;
  std::uint64_t traffic_seed = 1;
  /// Random routable pairs fed to the flow-solve invariant oracle.
  std::int32_t flow_pairs = 8;

  friend bool operator==(const Scenario&, const Scenario&);
};

/// Draws a scenario from the seed, within the bounds.  Deterministic:
/// the same (seed, bounds) always yields the same scenario, so an audit
/// sweep over seeds 1..N is exactly reproducible.
[[nodiscard]] Scenario generate_scenario(std::uint64_t seed,
                                         const ScenarioBounds& bounds = {});

/// Throws std::invalid_argument naming the first structural problem
/// (engine/fabric mismatch, empty dims, taper not dividing arity, ...).
/// Shrink candidates are filtered through this before being tried.
void validate_scenario(const Scenario& scenario);

/// The built form of a scenario: the owning topology wrapper, the LID
/// space the engine expects (PARX: quadrant-grouped LMC=2; everyone else:
/// consecutive LMC=0), and the planned fault schedule (not yet applied).
struct Fabric {
  std::unique_ptr<topo::HyperX> hyperx;
  std::unique_ptr<topo::FatTree> fat_tree;
  std::optional<routing::LidSpace> lids;
  topo::FaultSchedule faults;

  [[nodiscard]] topo::Topology& topo() {
    return hyperx ? hyperx->topo() : fat_tree->topo();
  }
  [[nodiscard]] const topo::Topology& topo() const {
    return hyperx ? hyperx->topo() : fat_tree->topo();
  }
};

/// Validates, builds the fabric, and plans the fault schedule.
[[nodiscard]] Fabric build_fabric(const Scenario& scenario);

/// Fresh engine instance for the scenario's `engine` on this fabric --
/// one per call, so differential oracles can compare two independent
/// computations of the same tables.
[[nodiscard]] std::unique_ptr<routing::RoutingEngine> make_engine(
    const Scenario& scenario, const Fabric& fabric);

/// The scenario's traffic spec normalised for a fabric of `num_terminals`:
/// the shift distance is folded into [1, N-1] so it stays nonzero mod N on
/// any fabric a shrink step may produce.  Deterministic in its arguments.
[[nodiscard]] workloads::PktPatternSpec effective_traffic(
    const Scenario& scenario, std::int32_t num_terminals);

/// Scenario <-> repro text (see the header comment for the format).
[[nodiscard]] std::string to_repro(const Scenario& scenario);
[[nodiscard]] Scenario parse_repro(const std::string& text);
void write_repro(const std::string& path, const Scenario& scenario);
[[nodiscard]] Scenario read_repro(const std::string& path);

}  // namespace hxsim::audit
