// Greedy scenario shrinking: when an oracle fails, minimise the scenario
// while the failure still reproduces, so the repro a human debugs is a
// 2x2 lattice with one fault stage instead of a 6x4x3 with three.
//
// shrink() is classic delta-debugging greed: generate one-step reductions
// (drop a dimension, halve the message count, remove a fault stage, ...),
// keep the first reduction on which `still_fails` returns true, repeat
// from there until no reduction reproduces or the attempt budget runs
// out.  Termination is structural -- every candidate strictly reduces a
// positive integral size measure -- and determinism follows from the
// candidate order being fixed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "audit/scenario.hpp"

namespace hxsim::audit {

/// All one-step reductions of `s` that pass validate_scenario(), in a
/// fixed preference order (structural shrinks -- fabric dims, fault
/// stages -- before load shrinks -- messages, bytes, flow pairs).
[[nodiscard]] std::vector<Scenario> shrink_candidates(const Scenario& s);

struct ShrinkOutcome {
  Scenario scenario;          // smallest still-failing scenario found
  std::int32_t steps = 0;     // accepted reductions
  std::int32_t attempts = 0;  // predicate evaluations spent
};

/// Greedily minimises `failing` under `still_fails` (which must return
/// true for `failing` itself; shrink() does not re-check it).  Each
/// predicate call typically replays every oracle, so `max_attempts`
/// bounds total shrink cost.
[[nodiscard]] ShrinkOutcome shrink(
    const Scenario& failing,
    const std::function<bool(const Scenario&)>& still_fails,
    std::int32_t max_attempts = 200);

}  // namespace hxsim::audit
