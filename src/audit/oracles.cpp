#include "audit/oracles.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "routing/delta.hpp"
#include "sim/adaptive.hpp"
#include "stats/rng.hpp"

namespace hxsim::audit {

OracleResult oracle_fail(std::string detail) {
  return OracleResult{false, std::move(detail)};
}

namespace {

/// An engine refusing a hostile fabric *deterministically* (DFSSSP
/// exhausting its VL budget, PARX rejecting a shape) is a legal outcome,
/// not a bug; oracles skip instead of failing.  The skip is recorded in
/// the detail so a suspiciously quiet audit is diagnosable.
struct ComputedRoute {
  std::optional<routing::RouteResult> route;
  std::string refusal;
};

ComputedRoute try_compute(const Scenario& s, const Fabric& f) {
  ComputedRoute c;
  try {
    c.route = make_engine(s, f)->compute(f.topo(), *f.lids);
  } catch (const std::exception& e) {
    c.refusal = e.what();
  }
  return c;
}

OracleResult skip(const std::string& why) {
  OracleResult r;
  r.detail = "skipped: " + why;
  return r;
}

std::vector<sim::PktMessage> scenario_messages(
    const Scenario& s, const Fabric& f, const routing::RouteResult* route,
    const sim::AdaptiveRouter* adaptive, const char* arm_name) {
  workloads::PktRoutingArm arm;
  arm.name = arm_name;
  arm.route = route;
  arm.lids = route != nullptr ? &*f.lids : nullptr;
  arm.adaptive = adaptive;
  return workloads::build_pkt_messages(
      f.topo(), arm, effective_traffic(s, f.topo().num_terminals()),
      s.traffic_seed);
}

/// Terminal alive mask from the per-switch alive mask.
std::vector<char> terminal_mask(const topo::Topology& topo,
                                std::span<const char> sw_alive) {
  std::vector<char> mask(static_cast<std::size_t>(topo.num_terminals()), 1);
  for (topo::NodeId t = 0; t < topo.num_terminals(); ++t)
    mask[static_cast<std::size_t>(t)] =
        sw_alive[static_cast<std::size_t>(topo.attach_switch(t))];
  return mask;
}

}  // namespace

// --- granular checks -------------------------------------------------------

OracleResult check_pkt_results_equal(const sim::PktSim::Result& a,
                                     const sim::PktSim::Result& b) {
  if (a.completion.size() != b.completion.size())
    return oracle_fail("completion vector sizes differ");
  if (!a.completion.empty() &&
      std::memcmp(a.completion.data(), b.completion.data(),
                  a.completion.size() * sizeof(double)) != 0)
    return oracle_fail("completion times differ bitwise");
  if (a.deadlock != b.deadlock) return oracle_fail("deadlock flags differ");
  if (a.truncated != b.truncated) return oracle_fail("truncated flags differ");
  if (std::memcmp(&a.end_time, &b.end_time, sizeof(double)) != 0)
    return oracle_fail("end times differ bitwise");
  if (a.packets_delivered != b.packets_delivered)
    return oracle_fail("packets_delivered differ");
  if (a.packets_total != b.packets_total)
    return oracle_fail("packets_total differ");
  if (a.events_executed != b.events_executed)
    return oracle_fail("events_executed differ");
  if (a.packets_dropped != b.packets_dropped)
    return oracle_fail("packets_dropped differ");
  if (a.dropped_by_cause != b.dropped_by_cause)
    return oracle_fail("per-cause drop counters differ");
  if (a.retries != b.retries) return oracle_fail("retry counters differ");
  if (a.messages_abandoned != b.messages_abandoned)
    return oracle_fail("messages_abandoned differ");
  if (a.message_status != b.message_status)
    return oracle_fail("message statuses differ");
  return oracle_pass();
}

OracleResult check_pkt_conservation(std::span<const sim::PktMessage> messages,
                                    const sim::PktSim::Result& r) {
  if (r.completion.size() != messages.size())
    return oracle_fail("one completion entry per message expected");
  if (r.deadlock && r.truncated)
    return oracle_fail("deadlock and truncated are mutually exclusive");
  if (r.packets_delivered < 0 || r.packets_total < 0)
    return oracle_fail("negative packet counters");
  if (r.packets_delivered > r.packets_total)
    return oracle_fail("delivered more packets than injected");
  if (r.packets_dropped < 0 || r.retries < 0 || r.messages_abandoned < 0)
    return oracle_fail("negative online counters");
  std::int64_t by_cause = 0;
  for (const std::int64_t n : r.dropped_by_cause) {
    if (n < 0) return oracle_fail("negative per-cause drop counter");
    by_cause += n;
  }
  if (by_cause != r.packets_dropped)
    return oracle_fail("per-cause drop counters do not sum to "
                       "packets_dropped");
  const bool clean = !r.deadlock && !r.truncated;
  if (clean &&
      r.packets_delivered + r.packets_dropped != r.packets_total) {
    std::ostringstream os;
    os << "clean run lost packets: delivered " << r.packets_delivered
       << " + dropped " << r.packets_dropped << " of " << r.packets_total;
    return oracle_fail(os.str());
  }
  std::int64_t incomplete = 0;
  for (const double t : r.completion)
    if (std::isnan(t)) ++incomplete;
  if (clean && r.packets_dropped == 0 && incomplete != 0)
    return oracle_fail("clean dropless run left messages incomplete");
  if (r.packets_delivered == r.packets_total && r.packets_dropped == 0 &&
      incomplete != 0 && !r.truncated)
    return oracle_fail(
        "all packets delivered yet messages remain incomplete");
  if (!r.message_status.empty()) {
    if (r.message_status.size() != messages.size())
      return oracle_fail("one message_status entry per message expected");
    std::int64_t abandoned = 0;
    for (std::size_t m = 0; m < messages.size(); ++m) {
      const bool done = !std::isnan(r.completion[m]);
      const bool marked =
          r.message_status[m] == sim::PktMessageStatus::kDelivered;
      if (done != marked)
        return oracle_fail("message_status disagrees with completion time");
      if (r.message_status[m] == sim::PktMessageStatus::kAbandoned)
        ++abandoned;
    }
    if (abandoned != r.messages_abandoned)
      return oracle_fail("kAbandoned statuses do not match "
                         "messages_abandoned");
  }
  return oracle_pass();
}

OracleResult check_online_quiesced_equivalent(const sim::PktSim::Result& quiesced,
                                              const sim::PktSim::Result& base,
                                              std::int64_t extra_events,
                                              double last_fault_time) {
  sim::PktSim::Result credited = base;
  credited.events_executed += extra_events;
  if (last_fault_time > credited.end_time)
    credited.end_time = last_fault_time;
  if (credited.message_status.empty() && !quiesced.message_status.empty()) {
    // The base ran without an active online config; the quiesced run's
    // statuses must then simply restate its completion vector before the
    // field drops out of the bitwise comparison.
    if (quiesced.message_status.size() != quiesced.completion.size())
      return oracle_fail(
          "quiesced run: one message_status entry per message expected");
    for (std::size_t m = 0; m < quiesced.message_status.size(); ++m) {
      const bool done = !std::isnan(quiesced.completion[m]);
      const bool marked =
          quiesced.message_status[m] == sim::PktMessageStatus::kDelivered;
      if (done != marked)
        return oracle_fail(
            "quiesced run: message_status disagrees with completion time");
    }
    credited.message_status = quiesced.message_status;
  }
  OracleResult check = check_pkt_results_equal(quiesced, credited);
  if (!check.pass)
    check.detail = "post-quiesce fault feed changed the run: " + check.detail;
  return check;
}

OracleResult check_pkt_batches_equal(std::span<const sim::PktSim::Result> a,
                                     std::span<const sim::PktSim::Result> b) {
  if (a.size() != b.size())
    return oracle_fail("batch sizes differ");
  for (std::size_t i = 0; i < a.size(); ++i) {
    OracleResult check = check_pkt_results_equal(a[i], b[i]);
    if (!check.pass) {
      std::ostringstream os;
      os << "replication " << i << ": " << check.detail;
      return oracle_fail(os.str());
    }
  }
  return oracle_pass();
}

OracleResult check_trace_consistency(const topo::Topology& topo,
                                     const sim::PktSimConfig& config,
                                     const sim::PktSim::Result& r,
                                     const obs::PktTrace& trace) {
  if (trace.num_channels() != topo.num_channels())
    return oracle_fail("trace channel count does not match the topology");
  std::int64_t ejected = 0;
  for (topo::NodeId t = 0; t < topo.num_terminals(); ++t)
    ejected += trace.channel_packets(topo.terminal_down(t));
  if (ejected != r.packets_delivered) {
    std::ostringstream os;
    os << "terminal-down crossings (" << ejected
       << ") != packets_delivered (" << r.packets_delivered << ")";
    return oracle_fail(os.str());
  }
  const bool clean = !r.deadlock && !r.truncated;
  for (topo::ChannelId ch = 0; ch < topo.num_channels(); ++ch) {
    for (std::int8_t vl = 0; vl < config.num_vls; ++vl) {
      const obs::ChannelVlCounters& c = trace.at(ch, vl);
      if (c.packets < 0 || c.bytes < 0 || c.arb_skips < 0 ||
          c.credit_stall_s < 0.0 || c.peak_queue < 0 ||
          c.queue_depth_time < 0.0)
        return oracle_fail("negative trace counter");
      if (clean && c.final_credits >= 0 &&
          c.final_credits != config.vc_buffer_packets) {
        std::ostringstream os;
        os << "clean run left channel " << ch << " vl " << int(vl)
           << " holding credits (" << c.final_credits << "/"
           << config.vc_buffer_packets << ")";
        return oracle_fail(os.str());
      }
    }
  }
  return oracle_pass();
}

OracleResult check_route_results_equal(const routing::RouteResult& a,
                                       const routing::RouteResult& b,
                                       const std::string& context) {
  if (a == b) return oracle_pass();
  std::string why = "route results differ";
  if (!(a.tables == b.tables)) why = "forwarding tables differ";
  else if (!(a.vls == b.vls)) why = "VL maps differ";
  else if (a.num_vls_used != b.num_vls_used) why = "num_vls_used differ";
  else if (a.unreachable_entries != b.unreachable_entries)
    why = "unreachable_entries differ";
  return oracle_fail(context + ": " + why);
}

OracleResult check_shipped_tables(const topo::Topology& topo,
                                  const routing::LidSpace& lids,
                                  const routing::RouteResult& route,
                                  const TableExpectations& expect) {
  if (expect.require_acyclic) {
    const routing::CdgReport cdg =
        routing::verify_deadlock_freedom(topo, lids, route);
    if (!cdg.acyclic) {
      std::ostringstream os;
      os << "channel dependency cycle on VL " << int(cdg.first_cyclic_vl);
      return oracle_fail(os.str());
    }
  }

  const routing::PathCensus census =
      routing::route_census(topo, lids, route.tables, expect.terminals);
  std::int64_t alive = 0;
  if (expect.terminals.empty()) {
    alive = topo.num_terminals();
  } else {
    for (const char a : expect.terminals) alive += a ? 1 : 0;
  }
  if (census.pairs != alive * (alive - 1)) {
    std::ostringstream os;
    os << "census walked " << census.pairs << " pairs, expected "
       << alive * (alive - 1);
    return oracle_fail(os.str());
  }
  if (census.routable_pairs + census.lost_pairs != census.pairs)
    return oracle_fail("routable + lost pairs != pairs walked");
  if (census.lost_lid_paths > census.lid_paths)
    return oracle_fail("more LID paths lost than walked");
  if (route.unreachable_entries == 0 && census.lost_lid_paths != 0) {
    std::ostringstream os;
    os << "tables claim full reachability yet " << census.lost_lid_paths
       << " LID paths are lost (loop or malformed entry)";
    return oracle_fail(os.str());
  }
  if (expect.require_no_lost_pairs && census.lost_pairs != 0) {
    std::ostringstream os;
    os << census.lost_pairs << " alive terminal pairs lost while the "
       << "surviving switch graph is connected";
    return oracle_fail(os.str());
  }
  return oracle_pass();
}

OracleResult check_flow_invariants(const sim::FlowSim& fs,
                                   std::span<const sim::Flow> flows,
                                   std::span<const double> rates) {
  if (rates.size() != flows.size())
    return oracle_fail("one rate per flow expected");
  constexpr double kEps = 1e-6;

  // Per-channel load and per-channel fastest flow.
  std::unordered_map<topo::ChannelId, double> load;
  std::unordered_map<topo::ChannelId, double> max_rate;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const double r = rates[i];
    if (std::isnan(r) || r < 0.0) return oracle_fail("NaN or negative rate");
    if (flows[i].channels.empty()) {
      if (!std::isinf(r))
        return oracle_fail("zero-hop flow must complete at injection (+inf)");
      continue;
    }
    if (std::isinf(r))
      return oracle_fail("flow crossing channels got an infinite rate");
    for (const topo::ChannelId ch : flows[i].channels) {
      load[ch] += r;
      double& m = max_rate[ch];
      if (r > m) m = r;
    }
  }

  for (const auto& [ch, sum] : load) {
    const double cap = fs.capacity(ch);
    if (sum > cap * (1.0 + kEps)) {
      std::ostringstream os;
      os << "channel " << ch << " oversubscribed: " << sum << " > capacity "
         << cap;
      return oracle_fail(os.str());
    }
  }

  // Max-min optimality: every flow is bottlenecked by some saturated
  // channel on its path where it is (one of) the fastest -- otherwise its
  // rate could be raised without lowering a slower flow's, contradicting
  // max-min fairness.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].channels.empty()) continue;
    const double r = rates[i];
    bool bottlenecked = false;
    for (const topo::ChannelId ch : flows[i].channels) {
      const double cap = fs.capacity(ch);
      if (load[ch] < cap * (1.0 - kEps)) continue;  // not saturated
      if (r >= max_rate[ch] * (1.0 - kEps)) {
        bottlenecked = true;
        break;
      }
    }
    if (!bottlenecked) {
      std::ostringstream os;
      os << "flow " << i << " (rate " << r
         << ") has no bottleneck: no saturated channel on its path caps it";
      return oracle_fail(os.str());
    }
  }
  return oracle_pass();
}

OracleResult check_flowsim_engines_identical(
    std::span<const double> reference_rates,
    std::span<const double> indexed_rates,
    const obs::FlowSolveRecord& reference_record,
    const obs::FlowSolveRecord& indexed_record) {
  if (reference_rates.size() != indexed_rates.size())
    return oracle_fail("rate vector sizes differ");
  // Bitwise, not ==: the contract is that the indexed engine replays the
  // reference's exact FP operation order, so even -0.0 vs 0.0 or
  // differently-rounded last bits are divergences.
  for (std::size_t i = 0; i < reference_rates.size(); ++i) {
    if (std::memcmp(&reference_rates[i], &indexed_rates[i],
                    sizeof(double)) != 0) {
      std::ostringstream os;
      os.precision(17);
      os << "rate[" << i << "] diverges: reference " << reference_rates[i]
         << " vs indexed " << indexed_rates[i];
      return oracle_fail(os.str());
    }
  }
  if (reference_record.active_flows != indexed_record.active_flows)
    return oracle_fail("FlowSolveRecord.active_flows differs");
  if (reference_record.levels.size() != indexed_record.levels.size())
    return oracle_fail("FlowSolveRecord.levels length differs");
  for (std::size_t i = 0; i < reference_record.levels.size(); ++i) {
    if (std::memcmp(&reference_record.levels[i], &indexed_record.levels[i],
                    sizeof(double)) != 0) {
      std::ostringstream os;
      os.precision(17);
      os << "FlowSolveRecord.levels[" << i << "] diverges: reference "
         << reference_record.levels[i] << " vs indexed "
         << indexed_record.levels[i];
      return oracle_fail(os.str());
    }
  }
  if (reference_record.freezes_per_level != indexed_record.freezes_per_level)
    return oracle_fail("FlowSolveRecord.freezes_per_level differs");
  if (reference_record.saturated != indexed_record.saturated)
    return oracle_fail(
        "FlowSolveRecord.saturated differs (set or first-saturation order)");
  return oracle_pass();
}

OracleResult check_flow_levels_monotone(const obs::FlowSolveRecord& record) {
  for (std::size_t i = 0; i < record.levels.size(); ++i) {
    const double level = record.levels[i];
    if (std::isnan(level) || level < 0.0) {
      std::ostringstream os;
      os << "level " << i << " is NaN or negative (" << level << ")";
      return oracle_fail(os.str());
    }
    if (i > 0 && level < record.levels[i - 1]) {
      std::ostringstream os;
      os.precision(17);
      os << "fill level descended at step " << i << ": "
         << record.levels[i - 1] << " -> " << level;
      return oracle_fail(os.str());
    }
  }
  return oracle_pass();
}

// --- scenario oracles ------------------------------------------------------

namespace {

OracleResult oracle_pktsim_identity(const Scenario& s) {
  const Fabric f = build_fabric(s);
  const ComputedRoute computed = try_compute(s, f);
  if (!computed.route) return skip("engine refused: " + computed.refusal);

  struct Arm {
    const char* name;
    std::vector<sim::PktMessage> msgs;
    const sim::AdaptiveRouter* adaptive;
  };
  std::vector<Arm> arms;
  arms.push_back({"static",
                  scenario_messages(s, f, &*computed.route, nullptr,
                                    "static"),
                  nullptr});
  std::optional<sim::DalRouter> dal;
  std::optional<sim::ValiantRouter> valiant;
  if (f.hyperx) {
    dal.emplace(*f.hyperx);
    valiant.emplace(*f.hyperx, s.traffic_seed);
    arms.push_back({"dal", scenario_messages(s, f, nullptr, &*dal, "dal"),
                    &*dal});
    arms.push_back({"valiant",
                    scenario_messages(s, f, nullptr, &*valiant, "valiant"),
                    &*valiant});
  }

  for (const Arm& arm : arms) {
    sim::PktSimConfig cfg;
    cfg.adaptive = arm.adaptive;
    cfg.engine = sim::PktSimConfig::Engine::kTyped;
    sim::PktSim typed(f.topo(), cfg);
    cfg.engine = sim::PktSimConfig::Engine::kReference;
    sim::PktSim reference(f.topo(), cfg);
    const auto rt = typed.run(arm.msgs);
    const auto rr = reference.run(arm.msgs);
    OracleResult check = check_pkt_results_equal(rt, rr);
    if (!check.pass) {
      check.detail = std::string(arm.name) +
                     " arm: typed vs reference: " + check.detail;
      return check;
    }
  }
  return oracle_pass();
}

OracleResult oracle_pkt_conservation(const Scenario& s) {
  const Fabric f = build_fabric(s);
  const ComputedRoute computed = try_compute(s, f);
  if (!computed.route) return skip("engine refused: " + computed.refusal);
  const auto msgs =
      scenario_messages(s, f, &*computed.route, nullptr, "static");

  sim::PktSimConfig cfg;
  sim::PktSim plain(f.topo(), cfg);
  const auto r = plain.run(msgs);

  obs::PktTrace trace;
  sim::PktSimConfig traced_cfg = cfg;
  traced_cfg.trace = &trace;
  sim::PktSim traced(f.topo(), traced_cfg);
  const auto r_traced = traced.run(msgs);

  OracleResult check = check_pkt_results_equal(r, r_traced);
  if (!check.pass) {
    check.detail = "trace on/off not bit-identical: " + check.detail;
    return check;
  }
  check = check_pkt_conservation(msgs, r);
  if (!check.pass) return check;
  check = check_trace_consistency(f.topo(), cfg, r_traced, trace);
  if (!check.pass) return check;

  // Truncation probe: stopping the same run halfway through its event
  // count must report truncated (never deadlock) and still conserve.
  if (r.events_executed >= 2 && !r.deadlock) {
    const auto half = plain.run(
        msgs, static_cast<std::size_t>(r.events_executed / 2));
    if (!half.truncated)
      return oracle_fail("halved event budget did not report truncated");
    if (half.deadlock)
      return oracle_fail("truncated run misreported as deadlock");
    check = check_pkt_conservation(msgs, half);
    if (!check.pass) {
      check.detail = "truncated run: " + check.detail;
      return check;
    }
  }
  return oracle_pass();
}

bool replication_equal(const workloads::PktReplicationResult& a,
                       const workloads::PktReplicationResult& b) {
  return a.arm == b.arm && a.pattern == b.pattern && a.seed == b.seed &&
         a.deadlock == b.deadlock && a.truncated == b.truncated &&
         std::memcmp(&a.end_time, &b.end_time, sizeof(double)) == 0 &&
         std::memcmp(&a.mean_completion, &b.mean_completion,
                     sizeof(double)) == 0 &&
         a.packets_delivered == b.packets_delivered &&
         a.packets_total == b.packets_total &&
         a.events_executed == b.events_executed;
}

OracleResult oracle_sweep_determinism(const Scenario& s) {
  const Fabric f = build_fabric(s);
  const ComputedRoute computed = try_compute(s, f);
  if (!computed.route) return skip("engine refused: " + computed.refusal);

  std::vector<workloads::PktRoutingArm> arms;
  arms.push_back({"static", &*computed.route, &*f.lids, nullptr});
  std::optional<sim::DalRouter> dal;
  std::optional<sim::ValiantRouter> valiant;
  if (f.hyperx) {
    dal.emplace(*f.hyperx);
    valiant.emplace(*f.hyperx, s.traffic_seed);
    arms.push_back({"dal", nullptr, nullptr, &*dal});
    arms.push_back({"valiant", nullptr, nullptr, &*valiant});
  }
  const std::vector<workloads::PktPatternSpec> patterns{
      effective_traffic(s, f.topo().num_terminals())};

  workloads::PktSweepOptions opt;
  opt.seeds = 3;
  opt.threads = 1;
  const auto serial = workloads::run_pkt_sweep(f.topo(), arms, patterns, opt);
  opt.threads = 4;
  const auto parallel =
      workloads::run_pkt_sweep(f.topo(), arms, patterns, opt);
  if (serial.size() != parallel.size())
    return oracle_fail("sweep sizes differ across thread counts");
  for (std::size_t i = 0; i < serial.size(); ++i)
    if (!replication_equal(serial[i], parallel[i])) {
      std::ostringstream os;
      os << "replication " << i << " (arm " << serial[i].arm << ", seed "
         << serial[i].seed << ") differs between 1 and 4 threads";
      return oracle_fail(os.str());
    }
  return oracle_pass();
}

OracleResult oracle_online_fault(const Scenario& s) {
  const Fabric f = build_fabric(s);
  const ComputedRoute computed = try_compute(s, f);
  if (!computed.route) return skip("engine refused: " + computed.refusal);
  const auto msgs =
      scenario_messages(s, f, &*computed.route, nullptr, "static");

  // A victim channel set: the first routed message's path (guaranteed
  // in-range for this fabric).
  const sim::PktMessage* victim = nullptr;
  for (const sim::PktMessage& m : msgs)
    if (!m.path.empty()) {
      victim = &m;
      break;
    }
  if (victim == nullptr) return skip("no routed messages to fault");

  sim::PktSimConfig cfg;
  cfg.engine = sim::PktSimConfig::Engine::kTyped;
  sim::PktSim typed_base(f.topo(), cfg);
  const auto base = typed_base.run(msgs);
  if (base.deadlock || base.truncated)
    return skip("base run did not quiesce");

  // 1. Faults strictly after quiesce are inert modulo their own events.
  sim::PktOnlineConfig after;
  after.faults.push_back({base.end_time + 1.0, victim->path});
  sim::PktSimConfig after_cfg = cfg;
  after_cfg.online = &after;
  sim::PktSim typed_after(f.topo(), after_cfg);
  after_cfg.engine = sim::PktSimConfig::Engine::kReference;
  sim::PktSim reference_after(f.topo(), after_cfg);
  const auto quiesced = typed_after.run(msgs);
  OracleResult check = check_pkt_results_equal(quiesced,
                                               reference_after.run(msgs));
  if (!check.pass) {
    check.detail = "post-quiesce feed: typed vs reference: " + check.detail;
    return check;
  }
  check = check_online_quiesced_equivalent(
      quiesced, base, static_cast<std::int64_t>(after.faults.size()),
      after.faults.back().time);
  if (!check.pass) return check;

  // 2. Mid-run faults with retry on: typed/reference identity, run_batch
  // thread-count invariance, and conservation with drops.
  sim::PktOnlineConfig mid;
  mid.faults.push_back({base.end_time * 0.5, victim->path});
  mid.retry.enabled = true;
  mid.retry.timeout = base.end_time;
  mid.retry.backoff_base = base.end_time * 0.25;
  mid.retry.jitter = 0.5;
  mid.retry.max_retries = 2;
  mid.retry.seed = s.traffic_seed | 1;
  const std::vector<std::vector<sim::PktMessage>> replications(3, msgs);

  sim::PktSimConfig mid_cfg = cfg;
  mid_cfg.online = &mid;
  sim::PktSim typed_mid(f.topo(), mid_cfg);
  const auto serial = typed_mid.run_batch(replications, /*threads=*/1);
  const auto parallel = typed_mid.run_batch(replications, /*threads=*/4);
  check = check_pkt_batches_equal(serial, parallel);
  if (!check.pass) {
    check.detail = "mid-run fault + retry, 1 vs 4 threads: " + check.detail;
    return check;
  }
  mid_cfg.engine = sim::PktSimConfig::Engine::kReference;
  sim::PktSim reference_mid(f.topo(), mid_cfg);
  check = check_pkt_batches_equal(serial,
                                  reference_mid.run_batch(replications, 1));
  if (!check.pass) {
    check.detail =
        "mid-run fault + retry: typed vs reference: " + check.detail;
    return check;
  }
  for (std::size_t i = 0; i < serial.size(); ++i) {
    check = check_pkt_conservation(replications[i], serial[i]);
    if (!check.pass) {
      std::ostringstream os;
      os << "mid-run fault + retry, replication " << i << ": "
         << check.detail;
      return oracle_fail(os.str());
    }
  }
  return oracle_pass();
}

OracleResult oracle_delta_identity(const Scenario& s) {
  Fabric f = build_fabric(s);
  const auto engine = make_engine(s, f);
  routing::DeltaRouter delta(*engine);
  try {
    (void)delta.reroute_full(f.topo(), *f.lids);
  } catch (const std::exception& e) {
    return skip(std::string("engine refused: ") + e.what());
  }
  {
    const ComputedRoute fresh = try_compute(s, f);
    if (!fresh.route)
      return oracle_fail(
          "baseline: tracked compute succeeded but a fresh compute threw: " +
          fresh.refusal);
    const OracleResult check = check_route_results_equal(
        delta.result(), *fresh.route, "baseline");
    if (!check.pass) return check;
  }

  std::vector<topo::ChannelId> all_disabled;
  for (std::int32_t i = 0; i < f.faults.num_stages(); ++i) {
    const topo::FaultReport report = f.faults.apply_stage(f.topo(), i);
    all_disabled.insert(all_disabled.end(),
                        report.disabled_channels.begin(),
                        report.disabled_channels.end());
    routing::DeltaUpdate update;
    update.disabled = report.disabled_channels;

    std::string delta_err;
    bool delta_threw = false;
    try {
      (void)delta.reroute(f.topo(), *f.lids, update);
    } catch (const std::exception& e) {
      delta_threw = true;
      delta_err = e.what();
    }
    const ComputedRoute fresh = try_compute(s, f);
    const bool fresh_threw = !fresh.route.has_value();
    if (delta_threw != fresh_threw) {
      std::ostringstream os;
      os << "stage " << i << ": delta "
         << (delta_threw ? "threw (" + delta_err + ")" : "succeeded")
         << " but fresh compute "
         << (fresh_threw ? "threw (" + fresh.refusal + ")" : "succeeded");
      return oracle_fail(os.str());
    }
    if (delta_threw) continue;  // deterministic refusal on both sides
    std::ostringstream ctx;
    ctx << "stage " << i;
    const OracleResult check = check_route_results_equal(
        delta.result(), *fresh.route, ctx.str());
    if (!check.pass) return check;
  }

  if (!all_disabled.empty()) {
    // Revert: a re-enable update must take the full-recompute fallback
    // and land bit-identical to a fresh compute on the restored fabric.
    f.faults.revert(f.topo());
    routing::DeltaUpdate update;
    update.enabled = all_disabled;
    std::string delta_err;
    bool delta_threw = false;
    try {
      (void)delta.reroute(f.topo(), *f.lids, update);
    } catch (const std::exception& e) {
      delta_threw = true;
      delta_err = e.what();
    }
    const ComputedRoute fresh = try_compute(s, f);
    if (delta_threw != !fresh.route.has_value())
      return oracle_fail("revert: delta and fresh compute disagree on "
                         "whether the fabric routes (" +
                         delta_err + fresh.refusal + ")");
    if (!delta_threw) {
      const OracleResult check = check_route_results_equal(
          delta.result(), *fresh.route, "revert");
      if (!check.pass) return check;
    }
  }
  return oracle_pass();
}

OracleResult oracle_table_audit(const Scenario& s) {
  Fabric f = build_fabric(s);
  std::vector<char> sw_alive(
      static_cast<std::size_t>(f.topo().num_switches()), 1);

  const auto audit_now = [&](const std::string& label,
                             bool faulted) -> OracleResult {
    const ComputedRoute computed = try_compute(s, f);
    if (!computed.route) return oracle_pass();  // deterministic refusal
    TableExpectations expect;
    // SSSP ships shortest paths with no VL layering: not deadlock-free by
    // design (that is DFSSSP's job), so acyclicity is not its contract.
    expect.require_acyclic = s.engine != "sssp";
    const std::vector<char> terminals = terminal_mask(f.topo(), sw_alive);
    expect.terminals = terminals;
    // Connectivity contract: shortest-path engines and Up*/Down* route
    // every pair of a connected fabric.  ftree's legal up/down paths and
    // PARX's pruned LID routes may legally lose pairs on a *faulted*
    // fabric (paper footnote 7), so they are only held to zero loss
    // pristine.
    const bool engine_guarantees =
        s.engine == "updown" || s.engine == "sssp" || s.engine == "dfsssp";
    expect.require_no_lost_pairs =
        !faulted || (engine_guarantees &&
                     f.topo().switches_connected(sw_alive));
    OracleResult check =
        check_shipped_tables(f.topo(), *f.lids, *computed.route, expect);
    if (!check.pass) check.detail = label + ": " + check.detail;
    return check;
  };

  OracleResult check = audit_now("pristine", /*faulted=*/false);
  if (!check.pass) return check;
  for (std::int32_t i = 0; i < f.faults.num_stages(); ++i) {
    (void)f.faults.apply_stage(f.topo(), i);
    for (const topo::FaultEvent& ev : f.faults.stage(i).events)
      if (ev.kind == topo::FaultKind::kSwitch)
        sw_alive[static_cast<std::size_t>(ev.victim)] = 0;
    std::ostringstream label;
    label << "stage " << i;
    check = audit_now(label.str(), /*faulted=*/true);
    if (!check.pass) return check;
  }
  return oracle_pass();
}

OracleResult oracle_flow_invariants(const Scenario& s) {
  Fabric f = build_fabric(s);
  const sim::FlowSim fs(f.topo());

  const auto solve_and_check =
      [&](const routing::RouteResult& route, std::uint64_t seed,
          const std::string& label) -> OracleResult {
    stats::Rng rng(seed);
    const auto n = static_cast<std::uint64_t>(f.topo().num_terminals());
    std::vector<sim::Flow> flows;
    for (std::int32_t attempts = 0;
         static_cast<std::int32_t>(flows.size()) < s.flow_pairs &&
         attempts < s.flow_pairs * 10;
         ++attempts) {
      const auto src = static_cast<topo::NodeId>(rng.next_below(n));
      const auto dst = static_cast<topo::NodeId>(rng.next_below(n));
      if (src == dst) continue;
      auto path = route.tables.path(f.topo(), *f.lids, src,
                                    f.lids->base_lid(dst));
      if (!path.ok) continue;  // lost pair (faulted fabric): skip
      sim::Flow flow;
      flow.channels = std::move(path.channels);
      flow.bytes = s.traffic.bytes;
      flows.push_back(std::move(flow));
    }
    if (flows.empty()) return oracle_pass();  // nothing routable to solve
    const std::vector<double> rates = fs.fair_rates(flows);
    OracleResult check = check_flow_invariants(fs, flows, rates);
    if (!check.pass) check.detail = label + ": " + check.detail;
    return check;
  };

  const ComputedRoute pristine = try_compute(s, f);
  if (!pristine.route) return skip("engine refused: " + pristine.refusal);
  OracleResult check =
      solve_and_check(*pristine.route, s.traffic_seed, "pristine");
  if (!check.pass) return check;

  if (f.faults.num_stages() > 0) {
    (void)f.faults.apply_all(f.topo());
    const ComputedRoute faulted = try_compute(s, f);
    if (faulted.route) {
      check = solve_and_check(*faulted.route, s.traffic_seed ^ 0xf10eu,
                              "faulted");
      if (!check.pass) return check;
    }
  }
  return oracle_pass();
}

OracleResult oracle_flowsim_engine_identity(const Scenario& s) {
  Fabric f = build_fabric(s);
  const sim::FlowSim reference(f.topo(), {},
                               sim::FlowSim::SolverEngine::kReference);
  const sim::FlowSim indexed(f.topo(), {},
                             sim::FlowSim::SolverEngine::kIndexed);

  const auto solve_and_compare =
      [&](const routing::RouteResult& route, std::uint64_t seed,
          const std::string& label) -> OracleResult {
    stats::Rng rng(seed);
    const auto n = static_cast<std::uint64_t>(f.topo().num_terminals());
    std::vector<sim::Flow> flows;
    for (std::int32_t attempts = 0;
         static_cast<std::int32_t>(flows.size()) < s.flow_pairs &&
         attempts < s.flow_pairs * 10;
         ++attempts) {
      const auto src = static_cast<topo::NodeId>(rng.next_below(n));
      const auto dst = static_cast<topo::NodeId>(rng.next_below(n));
      if (src == dst) continue;
      auto path = route.tables.path(f.topo(), *f.lids, src,
                                    f.lids->base_lid(dst));
      if (!path.ok) continue;  // lost pair (faulted fabric): skip
      sim::Flow flow;
      flow.channels = std::move(path.channels);
      flow.bytes = s.traffic.bytes;
      flows.push_back(std::move(flow));
    }
    if (flows.empty()) return oracle_pass();  // nothing routable to solve

    obs::FlowSolveTrace reference_trace;
    obs::FlowSolveTrace indexed_trace;
    const std::vector<double> reference_rates =
        reference.fair_rates(flows, &reference_trace);
    const std::vector<double> indexed_rates =
        indexed.fair_rates(flows, &indexed_trace);
    OracleResult check = check_flowsim_engines_identical(
        reference_rates, indexed_rates, reference_trace.solves.at(0),
        indexed_trace.solves.at(0));
    if (check.pass)
      check = check_flow_levels_monotone(indexed_trace.solves.at(0));
    if (!check.pass) check.detail = label + ": " + check.detail;
    return check;
  };

  const ComputedRoute pristine = try_compute(s, f);
  if (!pristine.route) return skip("engine refused: " + pristine.refusal);
  OracleResult check =
      solve_and_compare(*pristine.route, s.traffic_seed, "pristine");
  if (!check.pass) return check;

  if (f.faults.num_stages() > 0) {
    (void)f.faults.apply_all(f.topo());
    const ComputedRoute faulted = try_compute(s, f);
    if (faulted.route) {
      check = solve_and_compare(*faulted.route, s.traffic_seed ^ 0x1dedu,
                                "faulted");
      if (!check.pass) return check;
    }
  }
  return oracle_pass();
}

constexpr OracleEntry kOracles[] = {
    {"pktsim_identity", oracle_pktsim_identity},
    {"pkt_conservation", oracle_pkt_conservation},
    {"sweep_determinism", oracle_sweep_determinism},
    {"online_fault", oracle_online_fault},
    {"delta_identity", oracle_delta_identity},
    {"table_audit", oracle_table_audit},
    {"flow_invariants", oracle_flow_invariants},
    {"flowsim_engine_identity", oracle_flowsim_engine_identity},
};

}  // namespace

std::span<const OracleEntry> all_oracles() { return kOracles; }

OracleResult run_oracle(const OracleEntry& oracle, const Scenario& scenario) {
  try {
    return oracle.fn(scenario);
  } catch (const std::exception& e) {
    return oracle_fail(std::string("unhandled exception: ") + e.what());
  }
}

ScenarioVerdict run_all_oracles(const Scenario& scenario) {
  ScenarioVerdict verdict;
  for (const OracleEntry& oracle : all_oracles()) {
    const OracleResult r = run_oracle(oracle, scenario);
    ++verdict.oracles_run;
    if (!r.pass) {
      verdict.pass = false;
      verdict.oracle = oracle.name;
      verdict.detail = r.detail;
      return verdict;
    }
  }
  return verdict;
}

}  // namespace hxsim::audit
