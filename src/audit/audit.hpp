// The fuzz-audit driver: sweep seeds -> generate -> run every oracle ->
// on the first failure, shrink and write a deterministic repro file.
//
// Everything is deterministic in (first_seed, num_seeds, bounds): a CI
// smoke run and a developer replaying the same range see the same
// scenarios, the same verdicts, and -- on failure -- the same shrunk
// repro, byte for byte.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "audit/oracles.hpp"
#include "audit/scenario.hpp"
#include "audit/shrink.hpp"

namespace hxsim::audit {

struct AuditOptions {
  std::uint64_t first_seed = 1;
  std::int32_t num_seeds = 50;
  ScenarioBounds bounds;
  /// Minimise the failing scenario before writing the repro.
  bool shrink_failures = true;
  std::int32_t max_shrink_attempts = 200;
  /// Where the shrunk repro is written on failure; empty disables the
  /// file (the repro text is still returned in the outcome).
  std::string repro_path = "fuzz_repro.txt";
  /// Per-seed progress sink (optional; e.g. [](auto& s){ std::cerr << s; }).
  std::function<void(const std::string&)> log;
};

struct AuditOutcome {
  std::int32_t scenarios = 0;    // scenarios fully audited (incl. failing)
  std::int64_t oracle_runs = 0;  // oracle executions across all scenarios
  bool failed = false;
  // Populated on failure:
  std::uint64_t failing_seed = 0;
  std::string oracle;        // first failing oracle name
  std::string detail;        // its failure detail (post-shrink)
  std::string repro;         // repro text of the shrunk scenario
  std::string repro_file;    // path written, empty if disabled
  std::int32_t shrink_steps = 0;
};

/// Audits seeds [first_seed, first_seed + num_seeds); stops at the first
/// scenario any oracle rejects, shrinks it (re-running the failing oracle
/// as the predicate), and writes the repro.
[[nodiscard]] AuditOutcome run_audit(const AuditOptions& options = {});

/// Replays a repro file against every oracle.  Returns the verdict; the
/// scenario parsed from the file is re-validated first (throws on a
/// malformed file).
[[nodiscard]] ScenarioVerdict replay_repro(const std::string& path);

}  // namespace hxsim::audit
