#include "audit/scenario.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/parx.hpp"
#include "core/quadrant.hpp"
#include "routing/dfsssp.hpp"
#include "routing/ftree.hpp"
#include "routing/sssp.hpp"
#include "routing/updown.hpp"
#include "stats/rng.hpp"

namespace hxsim::audit {

const char* to_string(TopoKind kind) {
  switch (kind) {
    case TopoKind::kHyperX: return "hyperx";
    case TopoKind::kFatTree: return "fat_tree";
  }
  return "?";
}

namespace {

[[noreturn]] void bad(const std::string& why) {
  throw std::invalid_argument("audit scenario: " + why);
}

workloads::PktPattern pattern_from(const std::string& s) {
  if (s == "uniform_random") return workloads::PktPattern::kUniformRandom;
  if (s == "shift") return workloads::PktPattern::kShift;
  if (s == "hotspot") return workloads::PktPattern::kHotspot;
  bad("unknown traffic pattern '" + s + "'");
}

TopoKind kind_from(const std::string& s) {
  if (s == "hyperx") return TopoKind::kHyperX;
  if (s == "fat_tree") return TopoKind::kFatTree;
  bad("unknown topology kind '" + s + "'");
}

bool engine_valid_for(const Scenario& s) {
  const bool hx = s.kind == TopoKind::kHyperX;
  if (s.engine == "ftree") return !hx;
  if (s.engine == "updown" || s.engine == "sssp" || s.engine == "dfsssp")
    return true;
  if (s.engine == "parx")
    return hx && s.hyperx.dims.size() == 2 && s.hyperx.dims[0] % 2 == 0 &&
           s.hyperx.dims[1] % 2 == 0;
  return false;
}

}  // namespace

bool operator==(const Scenario& a, const Scenario& b) {
  // The repro text covers every oracle-relevant field, so it doubles as
  // the canonical equality form (params structs carry no operator==).
  return to_repro(a) == to_repro(b);
}

Scenario generate_scenario(std::uint64_t seed, const ScenarioBounds& bounds) {
  stats::Rng rng(seed);
  Scenario s;
  s.kind = rng.next_below(2) == 0 ? TopoKind::kHyperX : TopoKind::kFatTree;

  if (s.kind == TopoKind::kHyperX) {
    static constexpr const char* kEngines[] = {"updown", "sssp", "dfsssp",
                                               "parx"};
    s.engine = kEngines[rng.next_below(4)];
    s.hyperx = topo::random_hyperx_params(rng, bounds.max_switches,
                                          bounds.max_terminals,
                                          /*even_dims=*/s.engine == "parx");
  } else {
    static constexpr const char* kEngines[] = {"ftree", "updown", "sssp",
                                               "dfsssp"};
    s.engine = kEngines[rng.next_below(4)];
    s.fat_tree = topo::random_fat_tree_params(rng, bounds.max_switches,
                                              bounds.max_terminals);
  }

  s.faults.stages = static_cast<std::int32_t>(
      rng.next_below(static_cast<std::uint64_t>(bounds.max_fault_stages + 1)));
  s.faults.links_per_stage = 1 + static_cast<std::int32_t>(rng.next_below(2));
  s.faults.switches_per_stage = static_cast<std::int32_t>(rng.next_below(2));
  s.faults.seed = 1 + rng.next_below(1u << 16);
  s.faults.keep_connected = rng.next_below(5) != 0;  // 80 %
  if (s.faults.stages == 0) {
    s.faults.links_per_stage = 0;
    s.faults.switches_per_stage = 0;
  }

  const std::uint64_t pat = rng.next_below(3);
  s.traffic.pattern = pat == 0   ? workloads::PktPattern::kUniformRandom
                      : pat == 1 ? workloads::PktPattern::kShift
                                 : workloads::PktPattern::kHotspot;
  s.traffic.messages =
      s.traffic.pattern == workloads::PktPattern::kShift
          ? workloads::kAutoMessages
          : 8 + static_cast<std::int32_t>(rng.next_below(
                    static_cast<std::uint64_t>(bounds.max_messages - 7)));
  s.traffic.shift = 1 + static_cast<std::int32_t>(rng.next_below(3));
  s.traffic.bytes = 256LL << rng.next_below(7);  // 256 B .. 16 KiB
  s.traffic_seed = 1 + rng.next_below(1u << 16);
  s.flow_pairs = 4 + static_cast<std::int32_t>(rng.next_below(29));
  return s;
}

void validate_scenario(const Scenario& s) {
  if (s.kind == TopoKind::kHyperX) {
    if (s.hyperx.dims.empty()) bad("hyperx needs at least one dimension");
    std::int64_t switches = 1;
    for (const std::int32_t d : s.hyperx.dims) {
      if (d < 2) bad("hyperx dimension size must be >= 2");
      switches *= d;
    }
    if (s.hyperx.terminals_per_switch < 1)
      bad("hyperx needs at least one terminal per switch");
    if (switches * s.hyperx.terminals_per_switch < 2)
      bad("fabric needs at least two terminals");
  } else {
    const auto& ft = s.fat_tree;
    if (ft.arity < 2) bad("fat-tree arity must be >= 2");
    if (ft.levels < 2 || ft.levels > 3) bad("fat-tree levels must be 2 or 3");
    if (ft.leaf_terminals < 1 || ft.leaf_terminals > ft.arity)
      bad("fat-tree leaf_terminals must be in [1, arity]");
    if (ft.taper < 1 || ft.arity % ft.taper != 0)
      bad("fat-tree taper must divide the arity");
    std::int32_t leaves = 1;
    for (std::int32_t i = 0; i + 1 < ft.levels; ++i) leaves *= ft.arity;
    if (ft.populated_leaves == 0 || ft.populated_leaves > leaves)
      bad("fat-tree populated_leaves must be -1 or in [1, leaves]");
    const std::int32_t populated =
        ft.populated_leaves < 0 ? leaves : ft.populated_leaves;
    if (populated * ft.leaf_terminals < 2)
      bad("fabric needs at least two terminals");
  }
  if (!engine_valid_for(s))
    bad("engine '" + s.engine + "' is not valid for this fabric (ftree is "
        "fat-tree-only; parx needs a 2-D even-dims hyperx)");
  if (s.faults.stages < 0) bad("negative fault stages");
  if (s.faults.links_per_stage < 0 || s.faults.switches_per_stage < 0)
    bad("negative per-stage fault counts");
  if (s.traffic.messages != workloads::kAutoMessages &&
      s.traffic.messages < 1)
    bad("traffic messages must be positive or kAutoMessages");
  if (s.traffic.pattern == workloads::PktPattern::kShift &&
      s.traffic.messages != workloads::kAutoMessages)
    bad("shift traffic must leave messages = kAutoMessages (the pattern "
        "sends one message per terminal)");
  if (s.traffic.shift == 0) bad("shift distance must be nonzero");
  if (s.traffic.bytes < 1) bad("traffic bytes must be positive");
  if (s.flow_pairs < 1) bad("flow_pairs must be positive");
}

Fabric build_fabric(const Scenario& s) {
  validate_scenario(s);
  Fabric f;
  if (s.kind == TopoKind::kHyperX) {
    f.hyperx = std::make_unique<topo::HyperX>(s.hyperx);
  } else {
    f.fat_tree = std::make_unique<topo::FatTree>(s.fat_tree);
  }
  f.lids = s.engine == "parx"
               ? core::make_parx_lid_space(*f.hyperx)
               : routing::LidSpace::consecutive(f.topo().num_terminals(), 0);
  if (s.faults.stages > 0)
    f.faults = topo::FaultSchedule::plan(f.topo(), s.faults);
  return f;
}

std::unique_ptr<routing::RoutingEngine> make_engine(const Scenario& s,
                                                    const Fabric& f) {
  if (s.engine == "ftree")
    return std::make_unique<routing::FtreeEngine>(*f.fat_tree);
  if (s.engine == "updown") return std::make_unique<routing::UpDownEngine>();
  if (s.engine == "sssp") return std::make_unique<routing::SsspEngine>();
  if (s.engine == "dfsssp") return std::make_unique<routing::DfssspEngine>();
  if (s.engine == "parx") return std::make_unique<core::ParxEngine>(*f.hyperx);
  bad("unknown engine '" + s.engine + "'");
}

workloads::PktPatternSpec effective_traffic(const Scenario& s,
                                            std::int32_t num_terminals) {
  workloads::PktPatternSpec spec = s.traffic;
  if (spec.pattern == workloads::PktPattern::kShift && num_terminals > 1)
    spec.shift = 1 + (spec.shift - 1) % (num_terminals - 1);
  return spec;
}

std::string to_repro(const Scenario& s) {
  std::ostringstream out;
  out << "hxsim-fuzz-repro v1\n";
  out << "kind " << to_string(s.kind) << "\n";
  if (s.kind == TopoKind::kHyperX) {
    out << "dims ";
    for (std::size_t i = 0; i < s.hyperx.dims.size(); ++i)
      out << (i ? "," : "") << s.hyperx.dims[i];
    out << "\n";
    out << "terminals_per_switch " << s.hyperx.terminals_per_switch << "\n";
  } else {
    out << "arity " << s.fat_tree.arity << "\n";
    out << "levels " << s.fat_tree.levels << "\n";
    out << "leaf_terminals " << s.fat_tree.leaf_terminals << "\n";
    out << "populated_leaves " << s.fat_tree.populated_leaves << "\n";
    out << "taper " << s.fat_tree.taper << "\n";
  }
  out << "engine " << s.engine << "\n";
  out << "fault_stages " << s.faults.stages << "\n";
  out << "links_per_stage " << s.faults.links_per_stage << "\n";
  out << "switches_per_stage " << s.faults.switches_per_stage << "\n";
  out << "fault_seed " << s.faults.seed << "\n";
  out << "keep_connected " << (s.faults.keep_connected ? 1 : 0) << "\n";
  out << "pattern " << to_string(s.traffic.pattern) << "\n";
  out << "messages " << s.traffic.messages << "\n";
  out << "shift " << s.traffic.shift << "\n";
  out << "bytes " << s.traffic.bytes << "\n";
  out << "traffic_seed " << s.traffic_seed << "\n";
  out << "flow_pairs " << s.flow_pairs << "\n";
  return out.str();
}

Scenario parse_repro(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  if (!std::getline(in, header) || header != "hxsim-fuzz-repro v1")
    bad("repro must start with 'hxsim-fuzz-repro v1'");

  Scenario s;
  s.hyperx.dims.clear();
  s.hyperx.name = "fuzz-hyperx";
  s.fat_tree.name = "fuzz-fat-tree";
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key, value;
    if (!(ls >> key >> value)) bad("malformed repro line '" + line + "'");
    try {
      if (key == "kind") {
        s.kind = kind_from(value);
      } else if (key == "dims") {
        std::istringstream ds(value);
        std::string tok;
        while (std::getline(ds, tok, ','))
          s.hyperx.dims.push_back(std::stoi(tok));
      } else if (key == "terminals_per_switch") {
        s.hyperx.terminals_per_switch = std::stoi(value);
      } else if (key == "arity") {
        s.fat_tree.arity = std::stoi(value);
      } else if (key == "levels") {
        s.fat_tree.levels = std::stoi(value);
      } else if (key == "leaf_terminals") {
        s.fat_tree.leaf_terminals = std::stoi(value);
      } else if (key == "populated_leaves") {
        s.fat_tree.populated_leaves = std::stoi(value);
      } else if (key == "taper") {
        s.fat_tree.taper = std::stoi(value);
      } else if (key == "engine") {
        s.engine = value;
      } else if (key == "fault_stages") {
        s.faults.stages = std::stoi(value);
      } else if (key == "links_per_stage") {
        s.faults.links_per_stage = std::stoi(value);
      } else if (key == "switches_per_stage") {
        s.faults.switches_per_stage = std::stoi(value);
      } else if (key == "fault_seed") {
        s.faults.seed = std::stoull(value);
      } else if (key == "keep_connected") {
        s.faults.keep_connected = value != "0";
      } else if (key == "pattern") {
        s.traffic.pattern = pattern_from(value);
      } else if (key == "messages") {
        s.traffic.messages = std::stoi(value);
      } else if (key == "shift") {
        s.traffic.shift = std::stoi(value);
      } else if (key == "bytes") {
        s.traffic.bytes = std::stoll(value);
      } else if (key == "traffic_seed") {
        s.traffic_seed = std::stoull(value);
      } else if (key == "flow_pairs") {
        s.flow_pairs = std::stoi(value);
      } else {
        bad("unknown repro key '" + key + "'");
      }
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      bad("unparsable value for '" + key + "': '" + value + "'");
    }
  }
  if (s.kind == TopoKind::kHyperX && s.hyperx.dims.empty())
    bad("hyperx repro is missing its dims line");
  validate_scenario(s);
  return s;
}

void write_repro(const std::string& path, const Scenario& scenario) {
  std::ofstream out(path);
  if (!out) bad("cannot open repro file '" + path + "' for writing");
  out << to_repro(scenario);
  if (!out.flush()) bad("failed writing repro file '" + path + "'");
}

Scenario read_repro(const std::string& path) {
  std::ifstream in(path);
  if (!in) bad("cannot open repro file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse_repro(text.str());
}

}  // namespace hxsim::audit
