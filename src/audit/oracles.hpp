// Invariant oracles of the fuzz-audit subsystem.
//
// Two layers:
//
//  - Granular checks (check_*): pure predicates over results the caller
//    already computed.  They exist separately so tests can prove each one
//    *fails* on deliberately corrupted input -- an oracle that cannot fail
//    verifies nothing.
//  - Scenario oracles (all_oracles()): build a Scenario's fabric and drive
//    a whole pipeline pair through it, asserting the repo's standing
//    bit-identity and conservation contracts:
//      pktsim_identity   typed vs reference engine, bit for bit
//      pkt_conservation  delivered+undelivered == total, trace on/off
//                        identical + consistent, truncation =/= deadlock
//      sweep_determinism run_pkt_sweep at 1 vs 4 threads (static + DAL +
//                        Valiant arms)
//      online_fault      timed faults after quiesce change nothing but the
//                        fault events; mid-run faults with retry hold the
//                        typed/reference identity and run_batch
//                        thread-count invariance, drops conserved
//      delta_identity    DeltaRouter vs fresh full recompute, per fault
//                        stage and through the revert/re-enable fallback
//      table_audit       verify_deadlock_freedom + route_census on the
//                        shipped tables, per fault stage, scoped to each
//                        engine's actual guarantee (sssp is not
//                        deadlock-free; ftree/parx may legally lose pairs
//                        on faulted fabrics -- see the .cpp)
//      flow_invariants   max-min feasibility (sum rates <= capacity) and
//                        bottleneck optimality for every unfrozen flow
//      flowsim_engine_identity
//                        kIndexed vs kReference max-min core: rates and
//                        FlowSolveRecord bit for bit, levels monotone,
//                        pristine and faulted fabrics alike
//
// Oracles treat a *deterministic* engine refusal (e.g. DFSSSP exhausting
// its VL budget on a hostile fabric) as a skip, not a failure; anything
// else escaping an oracle is caught by run_oracle and reported as one.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "audit/scenario.hpp"
#include "routing/verify.hpp"
#include "sim/flowsim.hpp"
#include "sim/pktsim.hpp"

namespace hxsim::audit {

struct OracleResult {
  bool pass = true;
  /// Failure (or skip) explanation; empty on a plain pass.
  std::string detail;
};

[[nodiscard]] inline OracleResult oracle_pass() { return {}; }
[[nodiscard]] OracleResult oracle_fail(std::string detail);

// --- granular checks -------------------------------------------------------

/// Bitwise PktSim result equality (completion vector, flags, counters).
[[nodiscard]] OracleResult check_pkt_results_equal(
    const sim::PktSim::Result& a, const sim::PktSim::Result& b);

/// Packet conservation: delivered + dropped segments == total on a clean
/// run (a clean *dropless* run delivered everything and left no message
/// incomplete), per-cause drop counters sum to packets_dropped, deadlock
/// and truncated are mutually exclusive, and message_status (when the
/// online layer sized it) agrees with the completion vector.
[[nodiscard]] OracleResult check_pkt_conservation(
    std::span<const sim::PktMessage> messages, const sim::PktSim::Result& r);

/// Quiesced-fault equivalence: a timed-fault feed firing strictly after
/// the base run quiesced must change nothing but execute the fault events
/// themselves.  Equality is bitwise after crediting `base` with
/// `extra_events` (one per fault feed entry) and with the clock advance to
/// `last_fault_time` (the feed's latest timestamp: processing the fault
/// event legitimately moves end_time there); drop/retry accounting must
/// be EQUAL between the two runs, not zero, so the predicate also serves
/// shifted-feed comparisons on already-degraded traffic.
[[nodiscard]] OracleResult check_online_quiesced_equivalent(
    const sim::PktSim::Result& quiesced, const sim::PktSim::Result& base,
    std::int64_t extra_events, double last_fault_time);

/// Bitwise equality of two run_batch result vectors (the thread-count
/// invariance contract: every replication field-for-field identical).
[[nodiscard]] OracleResult check_pkt_batches_equal(
    std::span<const sim::PktSim::Result> a,
    std::span<const sim::PktSim::Result> b);

/// PktTrace counters consistent with the result: terminal-down crossings
/// sum to packets_delivered, no negative counters, and on a clean run
/// every credit-budgeted channel got all its credits back.
[[nodiscard]] OracleResult check_trace_consistency(
    const topo::Topology& topo, const sim::PktSimConfig& config,
    const sim::PktSim::Result& r, const obs::PktTrace& trace);

/// Field-wise RouteResult equality (the DeltaRouter bit-identity check).
[[nodiscard]] OracleResult check_route_results_equal(
    const routing::RouteResult& a, const routing::RouteResult& b,
    const std::string& context);

/// What a scenario's engine guarantees on the current fabric state.
struct TableExpectations {
  /// The per-VL channel dependency graphs must all be acyclic.
  bool require_acyclic = true;
  /// No (alive src, alive dst) pair may be lost.
  bool require_no_lost_pairs = true;
  /// Terminal alive mask (empty: all terminals).
  std::span<const char> terminals;
};

/// verify_deadlock_freedom + route_census on shipped tables, plus census
/// self-consistency (pair arithmetic) that holds for every engine.
[[nodiscard]] OracleResult check_shipped_tables(
    const topo::Topology& topo, const routing::LidSpace& lids,
    const routing::RouteResult& route, const TableExpectations& expect);

/// Max-min invariants for a solved flow set: per-channel sum of rates
/// within capacity (relative eps), and every finite-rate flow bottlenecked
/// by at least one saturated channel on its path where no co-flow gets
/// more than it does.
[[nodiscard]] OracleResult check_flow_invariants(
    const sim::FlowSim& fs, std::span<const sim::Flow> flows,
    std::span<const double> rates);

/// Indexed-vs-reference flow-solver identity: rates bitwise equal and
/// every FlowSolveRecord field (active_flows, levels, freezes_per_level,
/// saturated order) identical -- the standing SolverEngine contract.
[[nodiscard]] OracleResult check_flowsim_engines_identical(
    std::span<const double> reference_rates,
    std::span<const double> indexed_rates,
    const obs::FlowSolveRecord& reference_record,
    const obs::FlowSolveRecord& indexed_record);

/// Progressive-filling levels must be nondecreasing within one solve: the
/// common fill level only ever rises, so a descending step means the
/// solver (or a record mutation) broke the filling order.
[[nodiscard]] OracleResult check_flow_levels_monotone(
    const obs::FlowSolveRecord& record);

// --- scenario oracles ------------------------------------------------------

struct OracleEntry {
  const char* name;
  OracleResult (*fn)(const Scenario&);
};

/// The registry, in execution order.
[[nodiscard]] std::span<const OracleEntry> all_oracles();

/// Runs one oracle, converting any escaped exception into a failure.
[[nodiscard]] OracleResult run_oracle(const OracleEntry& oracle,
                                      const Scenario& scenario);

/// Verdict of a full oracle pass over one scenario.
struct ScenarioVerdict {
  bool pass = true;
  std::string oracle;  // first failing oracle name
  std::string detail;
  std::int32_t oracles_run = 0;
};

[[nodiscard]] ScenarioVerdict run_all_oracles(const Scenario& scenario);

}  // namespace hxsim::audit
