#include "obs/pkt_trace.hpp"

#include <string>

#include "obs/metrics.hpp"

namespace hxsim::obs {

std::string_view to_string(PktDropCause cause) noexcept {
  switch (cause) {
    case PktDropCause::kInFlight: return "in_flight";
    case PktDropCause::kBlackhole: return "blackhole";
    case PktDropCause::kTtl: return "ttl";
    case PktDropCause::kSuperseded: return "superseded";
  }
  return "unknown";
}

void PktTrace::reset(std::int32_t num_channels, std::int32_t num_vls) {
  num_channels_ = num_channels;
  num_vls_ = num_vls;
  drops_.fill(0);
  retries_ = 0;
  abandoned_ = 0;
  const std::size_t n = static_cast<std::size_t>(num_channels) *
                        static_cast<std::size_t>(num_vls);
  counters_.assign(n, ChannelVlCounters{});
  blocked_since_.assign(n, -1.0);
  depth_since_.assign(n, 0.0);
  depth_.assign(n, 0);
}

void PktTrace::finalize(double end_time) {
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (blocked_since_[i] >= 0.0) {
      counters_[i].credit_stall_s += end_time - blocked_since_[i];
      blocked_since_[i] = -1.0;
    }
    counters_[i].queue_depth_time += depth_[i] * (end_time - depth_since_[i]);
    depth_since_[i] = end_time;
  }
}

std::int64_t PktTrace::channel_packets(topo::ChannelId ch) const {
  std::int64_t sum = 0;
  for (std::int8_t vl = 0; vl < num_vls_; ++vl) sum += at(ch, vl).packets;
  return sum;
}

double PktTrace::channel_credit_stall(topo::ChannelId ch) const {
  double sum = 0.0;
  for (std::int8_t vl = 0; vl < num_vls_; ++vl)
    sum += at(ch, vl).credit_stall_s;
  return sum;
}

void PktTrace::publish(MetricRegistry& registry, const topo::Topology& topo,
                       std::string_view table_name) const {
  MetricRegistry::Table& table = registry.table(
      table_name,
      {"channel", "vl", "src_switch", "dst_switch", "switch_link", "packets",
       "bytes", "credit_stall_s", "arb_skips", "peak_queue",
       "queue_depth_time"});
  std::int64_t total_packets = 0;
  std::int64_t total_bytes = 0;
  double total_stall = 0.0;
  for (topo::ChannelId ch = 0; ch < num_channels_; ++ch) {
    const topo::Channel& c = topo.channel(ch);
    for (std::int8_t vl = 0; vl < num_vls_; ++vl) {
      const ChannelVlCounters& n = at(ch, vl);
      if (n.packets == 0 && n.arb_skips == 0 && n.credit_stall_s == 0.0 &&
          n.queue_depth_time == 0.0)
        continue;  // idle (ch, vl): keep the export sparse
      total_packets += n.packets;
      total_bytes += n.bytes;
      total_stall += n.credit_stall_s;
      table.add_row({static_cast<double>(ch), static_cast<double>(vl),
                     c.src.is_switch() ? static_cast<double>(c.src.index) : -1.0,
                     c.dst.is_switch() ? static_cast<double>(c.dst.index) : -1.0,
                     topo.is_switch_channel(ch) ? 1.0 : 0.0,
                     static_cast<double>(n.packets),
                     static_cast<double>(n.bytes), n.credit_stall_s,
                     static_cast<double>(n.arb_skips),
                     static_cast<double>(n.peak_queue), n.queue_depth_time});
    }
  }
  registry.set("pkt_total_packets", static_cast<double>(total_packets));
  registry.set("pkt_total_bytes", static_cast<double>(total_bytes));
  registry.set("pkt_total_credit_stall_s", total_stall);
  for (std::int32_t c = 0; c < kNumPktDropCauses; ++c) {
    const PktDropCause cause = static_cast<PktDropCause>(c);
    registry.set(std::string("pkt_drops_") + std::string(to_string(cause)),
                 static_cast<double>(drops(cause)));
  }
  registry.set("pkt_retries", static_cast<double>(retries_));
  registry.set("pkt_abandoned", static_cast<double>(abandoned_));
}

}  // namespace hxsim::obs
