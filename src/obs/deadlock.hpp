// Deadlock post-mortem: from "the event queue drained with packets still
// buffered" to the *actual* circular credit wait.
//
// Section 3.2 of the paper defines routing deadlock through cyclic channel
// dependencies (criterion (4)); the packet simulator reproduces the wedge
// but used to report only a bare `deadlock = true`.  This module turns the
// simulator's final state into evidence: every buffered packet contributes
// a wait edge -- it *holds* a slot in one channel x VL input buffer and
// *wants* a credit of another -- and a cycle in the resource graph over
// (channel, VL) buffers is the deadlock, printable switch by switch.
//
// The analysis runs only after a deadlock is detected, so it costs nothing
// on healthy runs and may allocate freely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace hxsim::obs {

/// One blocked packet: it occupies the downstream input buffer of
/// (held, held_vl) -- kInvalidChannel if it never left its injection
/// queue -- and cannot proceed because (wanted, wanted_vl) has no credit.
struct CreditWaitEdge {
  std::int32_t packet = -1;   // simulator packet index
  std::int32_t message = -1;  // index into the run's message span
  topo::ChannelId held = topo::kInvalidChannel;
  std::int8_t held_vl = 0;
  topo::ChannelId wanted = topo::kInvalidChannel;
  std::int8_t wanted_vl = 0;

  friend bool operator==(const CreditWaitEdge&,
                         const CreditWaitEdge&) = default;
};

struct DeadlockReport {
  /// Every packet left buffered when the event queue drained.
  std::vector<CreditWaitEdge> blocked;
  /// One circular wait extracted from `blocked`, in following order:
  /// cycle[i].wanted is cycle[i+1]'s held resource (wrapping around).
  /// Empty when no deadlock occurred -- and, defensively, when the blocked
  /// packets form no cycle (which would indicate a simulator bug, since a
  /// drained queue with buffered packets implies a circular wait).
  std::vector<CreditWaitEdge> cycle;

  [[nodiscard]] bool has_cycle() const noexcept { return !cycle.empty(); }

  /// Human-readable rendering; with a topology, channels are expanded to
  /// "s3->s7"-style endpoints.
  [[nodiscard]] std::string to_string(
      const topo::Topology* topo = nullptr) const;
};

/// Builds the report: keeps `blocked` verbatim and extracts one cycle from
/// the wait-for graph whose nodes are (channel, vl) buffer resources and
/// whose edges are the blocked packets that hold one resource while
/// wanting another.  `num_vls` is the simulator's VL count (resource key
/// stride).
[[nodiscard]] DeadlockReport build_deadlock_report(
    std::vector<CreditWaitEdge> blocked, std::int32_t num_vls);

}  // namespace hxsim::obs
