#include "obs/deadlock.hpp"

#include <cstdio>
#include <map>

namespace hxsim::obs {

namespace {

std::string endpoint_name(const topo::Endpoint& e) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%s%d", e.is_switch() ? "s" : "t", e.index);
  return buf;
}

std::string resource_name(const topo::Topology* topo, topo::ChannelId ch,
                          std::int8_t vl) {
  char buf[64];
  if (topo != nullptr && ch != topo::kInvalidChannel) {
    const topo::Channel& c = topo->channel(ch);
    std::snprintf(buf, sizeof buf, "ch%d %s->%s VL%d", ch,
                  endpoint_name(c.src).c_str(), endpoint_name(c.dst).c_str(),
                  vl);
  } else {
    std::snprintf(buf, sizeof buf, "ch%d VL%d", ch, vl);
  }
  return buf;
}

}  // namespace

std::string DeadlockReport::to_string(const topo::Topology* topo) const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof line,
                "deadlock post-mortem: %zu packet(s) buffered, circular "
                "credit wait over %zu buffer(s)\n",
                blocked.size(), cycle.size());
  out += line;
  for (const CreditWaitEdge& e : cycle) {
    std::snprintf(line, sizeof line,
                  "  packet %d (msg %d) holds [%s] -> waits for credit on "
                  "[%s]\n",
                  e.packet, e.message,
                  resource_name(topo, e.held, e.held_vl).c_str(),
                  resource_name(topo, e.wanted, e.wanted_vl).c_str());
    out += line;
  }
  if (cycle.empty())
    out += "  (no circular wait found among the blocked packets)\n";
  return out;
}

DeadlockReport build_deadlock_report(std::vector<CreditWaitEdge> blocked,
                                     std::int32_t num_vls) {
  DeadlockReport report;
  report.blocked = std::move(blocked);

  const auto key = [num_vls](topo::ChannelId ch, std::int8_t vl) {
    return static_cast<std::int64_t>(ch) * num_vls + vl;
  };

  // Wait-for graph over (channel, VL) buffer resources: an edge per
  // blocked packet from the resource it holds to the one it wants.
  // Packets still in their injection queue hold nothing and cannot be part
  // of a cycle.  std::map keeps the traversal order (and so the reported
  // cycle) deterministic.
  std::map<std::int64_t, std::vector<std::size_t>> holders;
  for (std::size_t i = 0; i < report.blocked.size(); ++i) {
    const CreditWaitEdge& e = report.blocked[i];
    if (e.held != topo::kInvalidChannel)
      holders[key(e.held, e.held_vl)].push_back(i);
  }

  std::map<std::int64_t, int> color;  // absent/0: white, 1: gray, 2: black
  struct Frame {
    std::int64_t res;
    std::size_t next = 0;        // next holder edge to try
    std::size_t edge_taken = 0;  // edge leading to the frame above
  };
  for (const auto& [start, start_edges] : holders) {
    (void)start_edges;
    if (color[start] != 0) continue;
    std::vector<Frame> stack{Frame{start}};
    color[start] = 1;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const std::vector<std::size_t>& out_edges = holders[f.res];
      if (f.next >= out_edges.size()) {
        color[f.res] = 2;
        stack.pop_back();
        continue;
      }
      const std::size_t ei = out_edges[f.next++];
      const CreditWaitEdge& e = report.blocked[ei];
      const std::int64_t target = key(e.wanted, e.wanted_vl);
      if (holders.find(target) == holders.end())
        continue;  // nobody holds the wanted buffer: chain ends here
      const int c = color[target];
      if (c == 2) continue;
      if (c == 1) {
        // Back edge: the gray frames from `target` up, plus this edge,
        // are the circular wait.
        std::size_t pos = 0;
        while (stack[pos].res != target) ++pos;
        for (std::size_t s = pos; s + 1 < stack.size(); ++s)
          report.cycle.push_back(report.blocked[stack[s].edge_taken]);
        report.cycle.push_back(e);
        return report;
      }
      f.edge_taken = ei;  // set before push_back invalidates `f`
      color[target] = 1;
      stack.push_back(Frame{target});
    }
  }
  return report;
}

}  // namespace hxsim::obs
