#include "obs/resilience.hpp"

#include <map>
#include <utility>

namespace hxsim::obs {

void DegradationSeries::add(DegradationSample sample) {
  samples_.push_back(std::move(sample));
}

bool DegradationSeries::retention_monotone() const {
  std::map<std::pair<std::string, std::string>, double> last;
  for (const DegradationSample& s : samples_) {
    const auto key = std::make_pair(s.fabric, s.engine);
    const auto it = last.find(key);
    if (it != last.end() && s.retention > it->second + 1e-12) return false;
    last[key] = s.retention;
  }
  return true;
}

bool DegradationSeries::all_acyclic(std::string_view engine) const {
  for (const DegradationSample& s : samples_)
    if (s.engine == engine && !s.cdg_acyclic) return false;
  return true;
}

void DegradationSeries::publish(MetricRegistry& registry) const {
  for (const DegradationSample& s : samples_) {
    const std::string name = "resilience_" + s.fabric + "_" + s.engine;
    MetricRegistry::Table& table = registry.table(
        name, {"stage", "cables_failed", "switches_failed", "reachability",
               "lost_pairs", "mean_switch_hops", "hop_inflation",
               "throughput", "retention", "cdg_acyclic", "vls_used",
               "blackhole_columns", "lost_in_flight", "blackholed", "retries",
               "abandoned"});
    table.add_row({static_cast<double>(s.stage),
                   static_cast<double>(s.cables_failed),
                   static_cast<double>(s.switches_failed), s.reachability,
                   static_cast<double>(s.lost_pairs), s.mean_switch_hops,
                   s.hop_inflation, s.throughput, s.retention,
                   s.cdg_acyclic ? 1.0 : 0.0,
                   static_cast<double>(s.vls_used),
                   static_cast<double>(s.blackhole_columns),
                   static_cast<double>(s.packets_lost_in_flight),
                   static_cast<double>(s.packets_blackholed),
                   static_cast<double>(s.retries),
                   static_cast<double>(s.messages_abandoned)});
    // Overwritten by later stages of the same group: the scalar ends up
    // holding the final (worst) envelope value.
    registry.set(name + "_final_retention", s.retention);
  }
}

}  // namespace hxsim::obs
