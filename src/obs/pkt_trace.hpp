// Per-channel x virtual-lane counters for the packet simulator -- the
// simulator analogue of the InfiniBand port counters the paper's fabric
// debugging relies on (PortXmitData/PortXmitPkts for traffic volume,
// PortXmitWait for credit starvation).
//
// A PktTrace is attached through PktSimConfig::trace and is strictly
// observational: PktSim reads its own state and bumps counters here, but no
// simulation decision ever looks at the trace, so results are bit-identical
// with tracing on or off (asserted in tests/sim_test.cpp).  All storage is
// preallocated in reset() -- called once by the simulator before injection
// -- so the per-event cost is a few array writes and no allocation.
//
// Counter semantics (per directed channel, per VL):
//  - packets/bytes:    segments that *started crossing* the channel, the
//                      PortXmitData analogue;
//  - credit_stall_s:   total time the VL had a packet queued while the
//                      downstream input buffer had no free slot -- the
//                      PortXmitWait analogue; Figure 1's dark inter-switch
//                      blocks are exactly where this concentrates;
//  - arb_skips:        round-robin arbitration passes that skipped this VL
//                      because it was credit-blocked (a cheap integer proxy
//                      for head-of-line blocking frequency);
//  - peak_queue/queue_depth_time: maximum and time-integrated occupancy of
//                      the VL's waiting queue (divide the integral by the
//                      run's end_time for the time-weighted mean depth);
//  - final_credits:    downstream credits at the end of the run; after a
//                      fully drained run this must equal vc_buffer_packets
//                      (credit-leak canary), after a deadlock it exposes
//                      the exhausted buffers.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "topo/topology.hpp"

namespace hxsim::obs {

class MetricRegistry;

/// Why the online-fault layer (sim/online.hpp) dropped a packet.  Causes are
/// mutually exclusive and charged exactly once per dropped segment.
enum class PktDropCause : std::int8_t {
  /// The packet was on the wire when its channel died at the fault instant.
  kInFlight = 0,
  /// No usable next hop: a stale table forwarded onto a dead channel, a
  /// static path crossed one, or no adaptive escape candidate was alive.
  kBlackhole = 1,
  /// Table-routed hop budget exceeded (transient loop between epochs).
  kTtl = 2,
  /// A stale-attempt or abandoned-message segment reached the terminal
  /// after the end host had already retransmitted or given up.
  kSuperseded = 3,
};

inline constexpr std::int32_t kNumPktDropCauses = 4;

[[nodiscard]] std::string_view to_string(PktDropCause cause) noexcept;

struct ChannelVlCounters {
  std::int64_t packets = 0;
  std::int64_t bytes = 0;
  double credit_stall_s = 0.0;
  std::int64_t arb_skips = 0;
  std::int32_t peak_queue = 0;
  double queue_depth_time = 0.0;  // integral of depth over time [pkt*s]
  std::int32_t final_credits = -1;  // -1: channel has no credit budget
};

class PktTrace {
 public:
  /// Sizes (and zeroes) the counter store; PktSim calls this at the start
  /// of every run() so a trace object can be reused across runs.
  void reset(std::int32_t num_channels, std::int32_t num_vls);

  [[nodiscard]] std::int32_t num_channels() const noexcept {
    return num_channels_;
  }
  [[nodiscard]] std::int32_t num_vls() const noexcept { return num_vls_; }

  [[nodiscard]] ChannelVlCounters& at(topo::ChannelId ch, std::int8_t vl) {
    return counters_[index(ch, vl)];
  }
  [[nodiscard]] const ChannelVlCounters& at(topo::ChannelId ch,
                                            std::int8_t vl) const {
    return counters_[index(ch, vl)];
  }

  // --- hooks PktSim drives (hot path: branch-free array updates) ---------

  void on_cross(topo::ChannelId ch, std::int8_t vl, std::int32_t bytes) {
    ChannelVlCounters& c = counters_[index(ch, vl)];
    ++c.packets;
    c.bytes += bytes;
  }

  void on_arb_skip(topo::ChannelId ch, std::int8_t vl) {
    ++counters_[index(ch, vl)].arb_skips;
  }

  void on_queue_depth(topo::ChannelId ch, std::int8_t vl,
                      std::int32_t depth, double now) {
    const std::size_t i = index(ch, vl);
    ChannelVlCounters& c = counters_[i];
    c.queue_depth_time += depth_[i] * (now - depth_since_[i]);
    depth_[i] = depth;
    depth_since_[i] = now;
    if (depth > c.peak_queue) c.peak_queue = depth;
  }

  /// Tracks the credit-stall window: `blocked` is "a packet is queued on
  /// this VL and the downstream buffer has zero credits".  Transitions
  /// open/close the window; repeated same-state calls are no-ops.
  void on_blocked(topo::ChannelId ch, std::int8_t vl, bool blocked,
                  double now) {
    const std::size_t i = index(ch, vl);
    if (blocked) {
      if (blocked_since_[i] < 0.0) blocked_since_[i] = now;
    } else if (blocked_since_[i] >= 0.0) {
      counters_[i].credit_stall_s += now - blocked_since_[i];
      blocked_since_[i] = -1.0;
    }
  }

  void set_final_credits(topo::ChannelId ch, std::int8_t vl,
                         std::int32_t credits) {
    counters_[index(ch, vl)].final_credits = credits;
  }

  // --- online-fault hooks (sim/online.hpp); scalar, not per-channel ------

  void on_drop(PktDropCause cause) {
    ++drops_[static_cast<std::size_t>(cause)];
  }
  void on_retry() { ++retries_; }
  void on_abandon() { ++abandoned_; }

  [[nodiscard]] std::int64_t drops(PktDropCause cause) const noexcept {
    return drops_[static_cast<std::size_t>(cause)];
  }
  [[nodiscard]] std::int64_t total_drops() const noexcept {
    std::int64_t sum = 0;
    for (const std::int64_t d : drops_) sum += d;
    return sum;
  }
  [[nodiscard]] std::int64_t retries() const noexcept { return retries_; }
  [[nodiscard]] std::int64_t abandoned() const noexcept { return abandoned_; }

  /// Closes every open stall window and depth integral at `end_time`.
  void finalize(double end_time);

  /// Per-channel sums over VLs (convenience for hotspot analysis).
  [[nodiscard]] std::int64_t channel_packets(topo::ChannelId ch) const;
  [[nodiscard]] double channel_credit_stall(topo::ChannelId ch) const;

  /// Flattens the non-idle (ch, vl) rows into `registry` as table
  /// "pkt_channels" with endpoint metadata from `topo`, plus summary
  /// scalars (total packets/bytes/stall).
  void publish(MetricRegistry& registry, const topo::Topology& topo,
               std::string_view table_name = "pkt_channels") const;

 private:
  [[nodiscard]] std::size_t index(topo::ChannelId ch, std::int8_t vl) const {
    return static_cast<std::size_t>(ch) * static_cast<std::size_t>(num_vls_) +
           static_cast<std::size_t>(vl);
  }

  std::int32_t num_channels_ = 0;
  std::int32_t num_vls_ = 0;
  std::array<std::int64_t, kNumPktDropCauses> drops_{};
  std::int64_t retries_ = 0;
  std::int64_t abandoned_ = 0;
  std::vector<ChannelVlCounters> counters_;
  // Transient accounting state, parallel to counters_.
  std::vector<double> blocked_since_;  // -1: no open stall window
  std::vector<double> depth_since_;
  std::vector<std::int32_t> depth_;
};

}  // namespace hxsim::obs
