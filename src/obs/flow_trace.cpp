#include "obs/flow_trace.hpp"

#include <numeric>

#include "obs/metrics.hpp"

namespace hxsim::obs {

void FlowSolveTrace::publish(MetricRegistry& registry,
                             std::string_view table_name) const {
  MetricRegistry::Table& table = registry.table(
      table_name,
      {"solve", "active_flows", "levels", "flows_frozen", "saturated_channels",
       "first_level", "last_level"});
  std::int64_t total_levels = 0;
  for (std::size_t s = 0; s < solves.size(); ++s) {
    const FlowSolveRecord& r = solves[s];
    total_levels += r.num_levels();
    const std::int64_t frozen = std::accumulate(
        r.freezes_per_level.begin(), r.freezes_per_level.end(),
        static_cast<std::int64_t>(0));
    table.add_row({static_cast<double>(s),
                   static_cast<double>(r.active_flows),
                   static_cast<double>(r.num_levels()),
                   static_cast<double>(frozen),
                   static_cast<double>(r.saturated.size()),
                   r.levels.empty() ? 0.0 : r.levels.front(),
                   r.levels.empty() ? 0.0 : r.levels.back()});
  }
  registry.set("flow_solver_solves", static_cast<double>(solves.size()));
  registry.set("flow_solver_levels", static_cast<double>(total_levels));
}

}  // namespace hxsim::obs
