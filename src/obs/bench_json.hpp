// Machine-readable perf record shared by the bench binaries: every bench
// that times phases appends {name, metrics} entries and writes one
// BENCH_<bench>.json so the perf trajectory of the hot paths is tracked
// in-repo from PR to PR.
//
// The same entries publish into the report/ result schema (one long-form
// ResultTable of phase x metric x value rows), so a pipeline experiment
// can fold a bench's perf phases into its ResultSet without a second
// bookkeeping path.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "report/result.hpp"

namespace hxsim::obs {

class BenchJson {
 public:
  explicit BenchJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void add(const std::string& phase,
           const std::vector<std::pair<std::string, double>>& metrics) {
    entries_.push_back({phase, metrics});
  }

  [[nodiscard]] const std::string& bench_name() const { return bench_name_; }

  /// Writes BENCH_<bench>.json into `dir` (default: working directory).
  void write(const std::string& dir = ".") const;

  /// Appends the recorded phases to `rs` as one long-form table
  /// (phase, metric, value), values formatted with the store's stable
  /// metric formatting.
  void publish(report::ResultSet& rs,
               std::string_view table_id = "phases") const;

 private:
  struct Entry {
    std::string phase;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::string bench_name_;
  std::vector<Entry> entries_;
};

}  // namespace hxsim::obs
