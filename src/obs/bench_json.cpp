#include "obs/bench_json.hpp"

#include <cstdio>

namespace hxsim::obs {

void BenchJson::write(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + bench_name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"phases\": [\n",
               bench_name_.c_str());
  for (std::size_t e = 0; e < entries_.size(); ++e) {
    std::fprintf(f, "    {\"name\": \"%s\"", entries_[e].phase.c_str());
    for (const auto& [key, value] : entries_[e].metrics)
      std::fprintf(f, ", \"%s\": %.6g", key.c_str(), value);
    std::fprintf(f, "}%s\n", e + 1 < entries_.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

void BenchJson::publish(report::ResultSet& rs,
                        std::string_view table_id) const {
  report::ResultTable table;
  table.id = std::string(table_id);
  table.columns = {"phase", "metric", "value"};
  for (const Entry& entry : entries_)
    for (const auto& [key, value] : entry.metrics)
      table.add_row({entry.phase, key, report::format_metric(value)});
  rs.tables.push_back(std::move(table));
}

}  // namespace hxsim::obs
