// Phase timing: a wall-clock stopwatch plus a named accumulator.
//
// PhaseClock started life in bench/bench_common.hpp (PR 1); it moved here
// so library code -- the routing engines, the simulators -- can time its
// own phases without depending on the bench layer.  PhaseTimings is the
// sink: engines that are handed one accumulate seconds under stable phase
// names ("spf_trees", "vl_placement", ...), and the bench/export layer
// publishes the entries.  Timing is observational only: whether a
// PhaseTimings is attached never changes what an engine computes.
#pragma once

#include <chrono>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hxsim::obs {

/// Wall-clock stopwatch for per-phase timing.
class PhaseClock {
 public:
  PhaseClock() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds since construction or the last lap() call.
  double lap() {
    const auto now = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Named wall-time accumulator.  Entries keep insertion order so reports
/// read in execution order; repeated add() calls on one name accumulate
/// (e.g. a phase inside a per-batch loop).
class PhaseTimings {
 public:
  void add(std::string_view phase, double seconds) {
    for (auto& [name, total] : entries_) {
      if (name == phase) {
        total += seconds;
        return;
      }
    }
    entries_.emplace_back(std::string(phase), seconds);
  }

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& entries()
      const noexcept {
    return entries_;
  }

  [[nodiscard]] double total() const noexcept {
    double s = 0.0;
    for (const auto& [name, t] : entries_) s += t;
    return s;
  }

  void clear() { entries_.clear(); }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

}  // namespace hxsim::obs
