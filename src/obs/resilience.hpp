// Degradation metrics of the resilience campaign.
//
// A campaign produces one DegradationSample per (fabric, engine, fault
// stage): how much of the fabric is gone, what the rerouted engine still
// reaches, how far paths inflated, how much throughput the traffic retains,
// and whether the shipped tables are still deadlock-free.  The series is
// plain data; publish() exports it through MetricRegistry (one table per
// fabric x engine plus headline scalars), the same JSON/CSV surface every
// other counter in the repo uses.
//
// Two throughput columns, on purpose:
//  - `throughput`: delivered fraction of injection bandwidth measured at
//    this stage (raw; may wiggle upward when a reroute happens to spread
//    load better).
//  - `retention`: the non-increasing envelope min(throughput / intact
//    throughput) over all stages so far -- the operator-facing "capacity
//    we can still guarantee after k failures" curve.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace hxsim::obs {

struct DegradationSample {
  std::string fabric;   // e.g. "hyperx-12x8"
  std::string engine;   // e.g. "dfsssp"
  std::int32_t stage = 0;  // 0 = intact fabric
  // Cumulative damage at this stage.
  std::int32_t cables_failed = 0;
  std::int32_t switches_failed = 0;
  // Routability (route_census over all ordered terminal pairs).
  double reachability = 1.0;
  std::int64_t lost_pairs = 0;
  std::int64_t lost_lid_paths = 0;
  // Path-length inflation vs the intact fabric's mean.
  double mean_switch_hops = 0.0;
  double hop_inflation = 1.0;
  // Throughput (see header comment).
  double throughput = 0.0;
  double retention = 1.0;
  // Deadlock audit of the shipped tables.
  bool cdg_acyclic = true;
  std::int32_t vls_used = 1;
  /// LFT entries forwarding onto a disabled channel (route_census); must be
  /// zero after every reroute stage -- a non-zero value is a shipped
  /// blackhole.
  std::int64_t blackhole_columns = 0;
  // Online (mid-run) fault variant: filled by the online_resilience
  // campaign, zero for the static between-runs campaign.
  std::int64_t packets_lost_in_flight = 0;
  std::int64_t packets_blackholed = 0;
  std::int64_t retries = 0;
  std::int64_t messages_abandoned = 0;
  /// True when the engine failed outright at this stage (threw); all
  /// metrics above are zeroed.
  bool engine_failed = false;
};

class DegradationSeries {
 public:
  void add(DegradationSample sample);

  [[nodiscard]] const std::vector<DegradationSample>& samples() const noexcept {
    return samples_;
  }

  /// True iff, for every (fabric, engine), `retention` never increases in
  /// insertion (= stage) order.  The campaign's acceptance property.
  [[nodiscard]] bool retention_monotone() const;

  /// True iff every sample of `engine` (any fabric) has an acyclic CDG.
  [[nodiscard]] bool all_acyclic(std::string_view engine) const;

  /// Exports one table "resilience_<fabric>_<engine>" per group (columns:
  /// stage, cables_failed, switches_failed, reachability, lost_pairs,
  /// mean_switch_hops, hop_inflation, throughput, retention, cdg_acyclic,
  /// vls_used, blackhole_columns, lost_in_flight, blackholed, retries,
  /// abandoned) plus "<table>_final_retention" scalars.
  void publish(MetricRegistry& registry) const;

 private:
  std::vector<DegradationSample> samples_;
};

}  // namespace hxsim::obs
