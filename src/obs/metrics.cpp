#include "obs/metrics.hpp"

#include <cstdio>
#include <stdexcept>

#include "stats/csv.hpp"

namespace hxsim::obs {

namespace {

/// %.17g round-trips doubles exactly and stays compact for integers.
std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// JSON string escaping for the metric names we mint (no control chars
/// expected, but quotes and backslashes are handled).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void MetricRegistry::Table::add_row(std::vector<double> cells) {
  if (cells.size() != columns.size())
    throw std::invalid_argument("MetricRegistry: row width != column count");
  rows.push_back(std::move(cells));
}

void MetricRegistry::set(std::string_view name, double value) {
  for (auto& [n, v] : scalars_) {
    if (n == name) {
      v = value;
      return;
    }
  }
  scalars_.emplace_back(std::string(name), value);
}

void MetricRegistry::add(std::string_view name, double delta) {
  for (auto& [n, v] : scalars_) {
    if (n == name) {
      v += delta;
      return;
    }
  }
  scalars_.emplace_back(std::string(name), delta);
}

MetricRegistry::Table& MetricRegistry::table(std::string_view name,
                                             std::vector<std::string> columns) {
  for (Table& t : tables_) {
    if (t.name == name) {
      if (t.columns != columns)
        throw std::invalid_argument("MetricRegistry: table '" + t.name +
                                    "' re-requested with different columns");
      return t;
    }
  }
  tables_.push_back(Table{std::string(name), std::move(columns), {}});
  return tables_.back();
}

void MetricRegistry::add_timings(std::string_view prefix,
                                 const PhaseTimings& timings) {
  for (const auto& [phase, seconds] : timings.entries())
    set(std::string(prefix) + phase + "_s", seconds);
}

std::string MetricRegistry::to_json() const {
  std::string out = "{\n  \"scalars\": {";
  for (std::size_t i = 0; i < scalars_.size(); ++i) {
    out += i ? ",\n    " : "\n    ";
    out += "\"" + json_escape(scalars_[i].first) +
           "\": " + format_double(scalars_[i].second);
  }
  out += scalars_.empty() ? "},\n" : "\n  },\n";
  out += "  \"tables\": {";
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    const Table& tab = tables_[t];
    out += t ? ",\n    " : "\n    ";
    out += "\"" + json_escape(tab.name) + "\": {\"columns\": [";
    for (std::size_t c = 0; c < tab.columns.size(); ++c) {
      if (c) out += ", ";
      out += "\"" + json_escape(tab.columns[c]) + "\"";
    }
    out += "], \"rows\": [";
    for (std::size_t r = 0; r < tab.rows.size(); ++r) {
      out += r ? ",\n      [" : "\n      [";
      for (std::size_t c = 0; c < tab.rows[r].size(); ++c) {
        if (c) out += ", ";
        out += format_double(tab.rows[r][c]);
      }
      out += "]";
    }
    out += tab.rows.empty() ? "]}" : "\n    ]}";
  }
  out += tables_.empty() ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void MetricRegistry::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f)
    throw std::runtime_error("MetricRegistry: cannot write " + path);
  const std::string json = to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

std::vector<std::string> MetricRegistry::write_csv(
    const std::string& prefix) const {
  std::vector<std::string> paths;
  for (const Table& tab : tables_) {
    const std::string path = prefix + "_" + tab.name + ".csv";
    stats::CsvWriter writer(path, tab.columns);
    std::vector<std::string> cells(tab.columns.size());
    for (const auto& row : tab.rows) {
      for (std::size_t c = 0; c < row.size(); ++c)
        cells[c] = format_double(row[c]);
      writer.add_row(cells);
    }
    writer.close();
    paths.push_back(path);
  }
  return paths;
}

}  // namespace hxsim::obs
