// Solver metrics for the max-min flow simulator.
//
// Each progressive-filling solve reports how it converged: the rate levels
// at which flows froze, how many froze per level, and which channels
// saturated.  The saturated set is the flow-level view of the Figure 1
// hotspot -- the shared HyperX cable carrying 7 streams is the first
// channel to saturate, at 1/7th of line rate -- and the level count tracks
// solver cost across the completion-event loop.
//
// A trace is passed per call (FlowSim::fair_rates / completion_times), so
// the const solver stays safe to run concurrently from solve_batch, which
// does not trace.  Tracing never changes the computed rates.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "topo/topology.hpp"

namespace hxsim::obs {

class MetricRegistry;

/// One progressive-filling solve.
struct FlowSolveRecord {
  std::int32_t active_flows = 0;  // flows participating (self-sends excluded)
  /// Common fill level at each freezing iteration [bytes/s], ascending.
  std::vector<double> levels;
  /// Flows frozen at each level (parallel to `levels`).
  std::vector<std::int32_t> freezes_per_level;
  /// Channels that saturated, in first-saturation order (each listed once).
  std::vector<topo::ChannelId> saturated;

  [[nodiscard]] std::int32_t num_levels() const noexcept {
    return static_cast<std::int32_t>(levels.size());
  }
};

struct FlowSolveTrace {
  /// One record per solve; completion_times() appends one per
  /// reallocation round, fair_rates() exactly one.
  std::vector<FlowSolveRecord> solves;

  void clear() { solves.clear(); }

  /// Flattens into `registry`: table "flow_solves" (one row per solve:
  /// levels, freezes, saturated-channel count) and summary scalars.
  void publish(MetricRegistry& registry,
               std::string_view table_name = "flow_solves") const;
};

}  // namespace hxsim::obs
