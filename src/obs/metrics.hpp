// MetricRegistry: the export surface of the observability layer.
//
// Counters accumulate inside the simulators (PktTrace, FlowSolveTrace) and
// engines (PhaseTimings); at the end of a run they are *published* into a
// MetricRegistry -- named scalars plus named tables -- which knows how to
// serialise itself as JSON (one file, everything) or CSV (one file per
// table, plot-ready).  The registry is deliberately dumb: insertion-ordered
// names, double-valued cells, no aggregation.  The analogue in production
// fabrics is the perfquery dump of an IB port counter sweep: a flat,
// machine-readable snapshot taken after the experiment, never on the hot
// path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/phase_clock.hpp"

namespace hxsim::obs {

class MetricRegistry {
 public:
  /// Rectangular, double-valued table (e.g. one row per channel x VL).
  struct Table {
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<double>> rows;

    void add_row(std::vector<double> cells);
  };

  /// Sets (or overwrites) a named scalar.
  void set(std::string_view name, double value);

  /// Adds to a named scalar, creating it at 0.
  void add(std::string_view name, double delta);

  /// Creates (or returns the existing) table.  Re-requesting an existing
  /// name with a different column set throws std::invalid_argument.
  Table& table(std::string_view name, std::vector<std::string> columns);

  /// Publishes every phase of `timings` as "<prefix><phase>_s" scalars.
  void add_timings(std::string_view prefix, const PhaseTimings& timings);

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& scalars()
      const noexcept {
    return scalars_;
  }
  [[nodiscard]] const std::vector<Table>& tables() const noexcept {
    return tables_;
  }

  /// The whole registry as a JSON object: {"scalars": {...}, "tables":
  /// {name: {"columns": [...], "rows": [[...], ...]}}}.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`.  Throws std::runtime_error on I/O error.
  void write_json(const std::string& path) const;

  /// Writes each table as `<prefix>_<table>.csv`; returns the paths.
  std::vector<std::string> write_csv(const std::string& prefix) const;

 private:
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<Table> tables_;
};

}  // namespace hxsim::obs
