#include "topo/hyperx.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hxsim::topo {

HyperXParams paper_hyperx_params() {
  HyperXParams p;
  p.dims = {12, 8};
  p.terminals_per_switch = 7;
  p.name = "hyperx-12x8";
  return p;
}

HyperXParams small_hyperx_params() {
  HyperXParams p;
  p.dims = {4, 4};
  p.terminals_per_switch = 2;
  p.name = "hyperx-4x4";
  return p;
}

HyperXParams random_hyperx_params(stats::Rng& rng,
                                  std::int32_t max_switches,
                                  std::int32_t max_terminals,
                                  bool even_dims) {
  if (max_switches < 4 || max_terminals < 2)
    throw std::invalid_argument(
        "random_hyperx_params: bounds leave no valid shape");
  HyperXParams p;
  p.dims.clear();
  const std::int32_t want_dims =
      even_dims ? 2 : 1 + static_cast<std::int32_t>(rng.next_below(3));
  std::int32_t product = 1;
  for (std::int32_t d = 0; d < want_dims; ++d) {
    // Keep room for the remaining dimensions (each needs size >= 2).
    std::int32_t cap = max_switches / product;
    for (std::int32_t rest = d + 1; rest < want_dims; ++rest) cap /= 2;
    if (cap < 2) break;
    std::int32_t lo = 2;
    std::int32_t hi = std::min<std::int32_t>(cap, 6);
    std::int32_t size =
        lo + static_cast<std::int32_t>(
                 rng.next_below(static_cast<std::uint64_t>(hi - lo + 1)));
    if (even_dims) size &= ~1;  // round down to even (>= 2 by bounds)
    p.dims.push_back(size);
    product *= size;
  }
  if (p.dims.empty() || (even_dims && p.dims.size() != 2)) {
    p.dims = {2, 2};
    product = 4;
  }
  const std::int32_t t_cap = std::max<std::int32_t>(
      1, std::min<std::int32_t>(4, max_terminals / product));
  p.terminals_per_switch =
      1 + static_cast<std::int32_t>(
              rng.next_below(static_cast<std::uint64_t>(t_cap)));
  // At least two terminals total, or there is no traffic to generate.
  if (product * p.terminals_per_switch < 2) p.terminals_per_switch = 2;
  p.name = "fuzz-hyperx";
  return p;
}

HyperX::HyperX(const HyperXParams& params)
    : params_(params), topo_(params.name) {
  if (params_.dims.empty())
    throw std::invalid_argument("HyperX: need at least one dimension");
  for (std::int32_t d : params_.dims)
    if (d < 2) throw std::invalid_argument("HyperX: dimension size must be >= 2");
  if (params_.terminals_per_switch < 0)
    throw std::invalid_argument("HyperX: negative terminals_per_switch");

  std::int64_t total = 1;
  for (std::int32_t d : params_.dims) total *= d;
  const auto num_switches = static_cast<std::int32_t>(total);

  const auto ndims = static_cast<std::int32_t>(params_.dims.size());
  coords_.reserve(static_cast<std::size_t>(num_switches));
  std::vector<std::int32_t> c(static_cast<std::size_t>(ndims), 0);
  for (std::int32_t s = 0; s < num_switches; ++s) {
    topo_.add_switch();
    coords_.push_back(c);
    // Increment mixed-radix counter, dimension 0 fastest.
    for (std::int32_t d = 0; d < ndims; ++d) {
      auto& digit = c[static_cast<std::size_t>(d)];
      if (++digit < params_.dims[static_cast<std::size_t>(d)]) break;
      digit = 0;
    }
  }

  dim_channels_.assign(static_cast<std::size_t>(num_switches), {});
  for (std::int32_t s = 0; s < num_switches; ++s) {
    auto& per_dim = dim_channels_[static_cast<std::size_t>(s)];
    per_dim.resize(static_cast<std::size_t>(ndims));
    for (std::int32_t d = 0; d < ndims; ++d)
      per_dim[static_cast<std::size_t>(d)].assign(
          static_cast<std::size_t>(params_.dims[static_cast<std::size_t>(d)]),
          kInvalidChannel);
  }

  // Fully connect each lattice row: for every switch and dimension,
  // connect to all switches with a *greater* coordinate in that dimension
  // (so each cable is created exactly once).
  for (std::int32_t s = 0; s < num_switches; ++s) {
    for (std::int32_t d = 0; d < ndims; ++d) {
      const std::int32_t own = coord(s, d);
      std::vector<std::int32_t> other(coords_[static_cast<std::size_t>(s)]);
      for (std::int32_t v = own + 1;
           v < params_.dims[static_cast<std::size_t>(d)]; ++v) {
        other[static_cast<std::size_t>(d)] = v;
        const SwitchId peer = switch_at(other);
        auto [fwd, rev] = topo_.connect(s, peer);
        dim_channels_[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)]
                     [static_cast<std::size_t>(v)] = fwd;
        dim_channels_[static_cast<std::size_t>(peer)]
                     [static_cast<std::size_t>(d)]
                     [static_cast<std::size_t>(own)] = rev;
      }
    }
  }

  for (std::int32_t s = 0; s < num_switches; ++s)
    for (std::int32_t t = 0; t < params_.terminals_per_switch; ++t)
      topo_.add_terminal(s);
}

SwitchId HyperX::switch_at(std::span<const std::int32_t> coord) const {
  if (coord.size() != params_.dims.size())
    throw std::invalid_argument("HyperX::switch_at: wrong coordinate rank");
  std::int64_t idx = 0;
  std::int64_t stride = 1;
  for (std::size_t d = 0; d < coord.size(); ++d) {
    if (coord[d] < 0 || coord[d] >= params_.dims[d])
      throw std::out_of_range("HyperX::switch_at: coordinate out of range");
    idx += coord[d] * stride;
    stride *= params_.dims[d];
  }
  return static_cast<SwitchId>(idx);
}

double HyperX::bisection_ratio() const {
  if (params_.terminals_per_switch == 0) return 0.0;
  const auto ndims = static_cast<std::int32_t>(params_.dims.size());
  std::int64_t switches = 1;
  for (std::int32_t d : params_.dims) switches *= d;

  double best = std::numeric_limits<double>::infinity();
  for (std::int32_t d = 0; d < ndims; ++d) {
    const std::int64_t size = params_.dims[static_cast<std::size_t>(d)];
    const std::int64_t lo = size / 2;
    const std::int64_t hi = size - lo;
    const std::int64_t rows = switches / size;
    const double cut_links = static_cast<double>(lo * hi * rows);
    const double half_terminals =
        static_cast<double>(std::min(lo, hi) * rows *
                            params_.terminals_per_switch);
    best = std::min(best, cut_links / half_terminals);
  }
  return best;
}

}  // namespace hxsim::topo
