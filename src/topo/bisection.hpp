// Bisection bandwidth analysis.
//
// Exact bisection (minimum balanced cut) is NP-hard in general, so this
// header offers two tools:
//  - exact_bisection_links(): brute-force over balanced switch bipartitions,
//    feasible for ~<= 20 switches; used by tests against the analytic
//    builder formulas.
//  - terminal_bisection_ratio(): cut capacity relative to the terminal
//    injection bandwidth of the smaller half, given an explicit cut.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "topo/topology.hpp"

namespace hxsim::topo {

/// Number of enabled switch-to-switch cables crossing the given bipartition
/// (side[sw] in {0, 1}).
[[nodiscard]] std::int64_t cut_links(const Topology& topo,
                                     std::span<const std::int8_t> side);

/// Exhaustive minimum over balanced bipartitions (|halves| differ by <= 1).
/// Throws std::invalid_argument for more than 24 switches.
[[nodiscard]] std::int64_t exact_bisection_links(const Topology& topo);

/// cut bandwidth / injection bandwidth of the smaller half's terminals,
/// assuming unit capacity per cable and per terminal link.
[[nodiscard]] double terminal_bisection_ratio(
    const Topology& topo, std::span<const std::int8_t> side);

}  // namespace hxsim::topo
