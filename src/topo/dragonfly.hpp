// Dragonfly builder (Kim et al., the paper's reference [41]).
//
// The paper's introduction positions the HyperX against the "flies" --
// Dragonfly, Dragonfly+, Slimfly -- as the competing low-diameter designs.
// This builder constructs the classic 1-D Dragonfly: groups of `a`
// fully-connected switches, `p` terminals per switch, `h` global ports per
// switch; the a*h global links of each group are spread over the other
// groups as evenly as possible (the balanced case g = a*h + 1 gives
// exactly one link per group pair).
//
// The reproduction ships a configuration matched to the paper's machine:
// p = 7, a = 8, h = 2, g = 12 -- 96 switches and 672 nodes, the same
// counts as the 12x8 HyperX, enabling a like-for-like comparison
// (`bench/topology_comparison`).
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace hxsim::topo {

struct DragonflyParams {
  std::int32_t terminals_per_switch = 2;  // p
  std::int32_t switches_per_group = 4;    // a
  std::int32_t global_ports = 1;          // h (per switch)
  std::int32_t groups = 5;                // g <= a*h + 1
  std::string name = "dragonfly";
};

/// 672-node configuration matched to the paper's machine:
/// p=7, a=8, h=2, g=12 (96 switches).
[[nodiscard]] DragonflyParams paper_matched_dragonfly_params();

class Dragonfly {
 public:
  explicit Dragonfly(const DragonflyParams& params);

  [[nodiscard]] const Topology& topo() const noexcept { return topo_; }
  [[nodiscard]] Topology& topo() noexcept { return topo_; }
  [[nodiscard]] const DragonflyParams& params() const noexcept {
    return params_;
  }

  [[nodiscard]] std::int32_t num_groups() const noexcept {
    return params_.groups;
  }
  [[nodiscard]] std::int32_t group_of(SwitchId sw) const {
    return sw / params_.switches_per_group;
  }
  [[nodiscard]] SwitchId switch_in_group(std::int32_t group,
                                         std::int32_t index) const {
    return group * params_.switches_per_group + index;
  }

  /// Number of global cables between two distinct groups (>= 1 when the
  /// slot distribution covers every pair).
  [[nodiscard]] std::int32_t global_links_between(std::int32_t group_a,
                                                  std::int32_t group_b) const;

 private:
  DragonflyParams params_;
  Topology topo_;
  std::vector<std::int32_t> pair_links_;  // g x g matrix of global cables

  [[nodiscard]] std::size_t pair_index(std::int32_t a, std::int32_t b) const {
    return static_cast<std::size_t>(a) *
               static_cast<std::size_t>(params_.groups) +
           static_cast<std::size_t>(b);
  }
};

}  // namespace hxsim::topo
