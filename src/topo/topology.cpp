#include "topo/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace hxsim::topo {

SwitchId Topology::add_switch() {
  const auto id = static_cast<SwitchId>(switch_out_.size());
  switch_out_.emplace_back();
  switch_terminals_.emplace_back();
  return id;
}

ChannelId Topology::add_channel(Endpoint src, Endpoint dst) {
  const auto id = static_cast<ChannelId>(channels_.size());
  channels_.push_back(Channel{id, src, dst, kInvalidChannel, true});
  if (src.is_switch())
    switch_out_[static_cast<std::size_t>(src.index)].push_back(id);
  return id;
}

NodeId Topology::add_terminal(SwitchId sw) {
  if (sw < 0 || sw >= num_switches())
    throw std::out_of_range("Topology::add_terminal: bad switch id");
  const auto n = static_cast<NodeId>(terminal_up_.size());
  const ChannelId up = add_channel(terminal_endpoint(n), switch_endpoint(sw));
  const ChannelId down = add_channel(switch_endpoint(sw), terminal_endpoint(n));
  channels_[static_cast<std::size_t>(up)].reverse = down;
  channels_[static_cast<std::size_t>(down)].reverse = up;
  terminal_up_.push_back(up);
  terminal_down_.push_back(down);
  attach_.push_back(sw);
  switch_terminals_[static_cast<std::size_t>(sw)].push_back(n);
  return n;
}

std::pair<ChannelId, ChannelId> Topology::connect(SwitchId a, SwitchId b) {
  if (a < 0 || a >= num_switches() || b < 0 || b >= num_switches())
    throw std::out_of_range("Topology::connect: bad switch id");
  if (a == b) throw std::invalid_argument("Topology::connect: self-loop");
  const ChannelId ab = add_channel(switch_endpoint(a), switch_endpoint(b));
  const ChannelId ba = add_channel(switch_endpoint(b), switch_endpoint(a));
  channels_[static_cast<std::size_t>(ab)].reverse = ba;
  channels_[static_cast<std::size_t>(ba)].reverse = ab;
  return {ab, ba};
}

void Topology::disable_link(ChannelId ch) {
  Channel& c = channels_.at(static_cast<std::size_t>(ch));
  c.enabled = false;
  channels_[static_cast<std::size_t>(c.reverse)].enabled = false;
}

void Topology::enable_link(ChannelId ch) {
  Channel& c = channels_.at(static_cast<std::size_t>(ch));
  c.enabled = true;
  channels_[static_cast<std::size_t>(c.reverse)].enabled = true;
}

std::int64_t Topology::num_switch_links(bool enabled_only) const {
  std::int64_t directed = 0;
  for (const Channel& c : channels_) {
    if (!is_switch_channel(c.id)) continue;
    if (enabled_only && !c.enabled) continue;
    ++directed;
  }
  return directed / 2;
}

std::vector<SwitchId> Topology::switch_neighbors(SwitchId sw) const {
  std::vector<SwitchId> out;
  for (ChannelId ch : switch_out(sw)) {
    const Channel& c = channel(ch);
    if (!c.enabled || !c.dst.is_switch()) continue;
    out.push_back(c.dst.index);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Topology::switches_connected() const {
  const std::vector<char> alive(static_cast<std::size_t>(num_switches()), 1);
  return switches_connected(alive);
}

bool Topology::switches_connected(std::span<const char> alive) const {
  std::int32_t num_alive = 0;
  SwitchId start = kInvalidSwitch;
  for (SwitchId sw = 0; sw < num_switches(); ++sw) {
    if (!alive[static_cast<std::size_t>(sw)]) continue;
    if (start == kInvalidSwitch) start = sw;
    ++num_alive;
  }
  if (num_alive <= 1) return true;
  std::vector<char> seen(static_cast<std::size_t>(num_switches()), 0);
  std::vector<SwitchId> stack{start};
  seen[static_cast<std::size_t>(start)] = 1;
  std::int32_t visited = 1;
  while (!stack.empty()) {
    const SwitchId sw = stack.back();
    stack.pop_back();
    for (ChannelId ch : switch_out(sw)) {
      const Channel& c = channel(ch);
      if (!c.enabled || !c.dst.is_switch()) continue;
      const auto next = static_cast<std::size_t>(c.dst.index);
      if (!alive[next] || seen[next]) continue;
      seen[next] = 1;
      ++visited;
      stack.push_back(c.dst.index);
    }
  }
  return visited == num_alive;
}

std::string Topology::to_dot() const {
  std::string dot = "graph \"" + name_ + "\" {\n";
  for (SwitchId s = 0; s < num_switches(); ++s)
    dot += "  s" + std::to_string(s) + " [shape=box];\n";
  for (NodeId n = 0; n < num_terminals(); ++n)
    dot += "  t" + std::to_string(n) + " [shape=point];\n";
  for (const Channel& c : channels_) {
    // Emit each cable once, from its lower-id direction.
    if (c.id > c.reverse) continue;
    std::string style = c.enabled ? "" : " [style=dashed]";
    auto label = [](Endpoint e) {
      return (e.is_switch() ? "s" : "t") + std::to_string(e.index);
    };
    dot += "  " + label(c.src) + " -- " + label(c.dst) + style + ";\n";
  }
  dot += "}\n";
  return dot;
}

}  // namespace hxsim::topo
