// Seeded link-fault injection (paper Section 2.3).
//
// The rewired system had 15 of 684 HyperX AOCs and 197 of 2662 fat-tree
// links missing.  inject_link_faults reproduces that by disabling a random
// sample of switch-to-switch cables while (optionally) guaranteeing that
// the switch graph stays connected, as the paper's degraded-but-operational
// fabrics did.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/topology.hpp"

namespace hxsim::topo {

struct FaultReport {
  /// Forward channel id of every disabled cable.
  std::vector<ChannelId> disabled_links;
  /// Candidates skipped because disabling them would disconnect switches.
  std::int32_t skipped_for_connectivity = 0;
};

/// Disables `count` randomly chosen enabled switch-to-switch cables.
/// With keep_connected the sample avoids cuts that disconnect the switch
/// graph; if fewer than `count` safe candidates exist, fewer are disabled.
FaultReport inject_link_faults(Topology& topo, std::int32_t count,
                               std::uint64_t seed, bool keep_connected = true);

/// Paper fault counts.
inline constexpr std::int32_t kPaperHyperXMissingLinks = 15;
inline constexpr std::int32_t kPaperFatTreeMissingLinks = 197;

}  // namespace hxsim::topo
