// Resilience subsystem: deterministic, seedable fault schedules
// (paper Section 2.3 and footnote 7).
//
// The paper's testbed was a *degraded* machine: 15 of 684 HyperX AOCs and
// 197 of 2662 fat-tree links were broken, and PARX's pruned LID routes lost
// additional LID pairs on the faulty fabric ("lost LIDs", footnote 7).
// This header models that reality as data:
//
//  - FaultEvent: one failure -- a cable (kLink), a whole switch and all of
//    its inter-switch cables (kSwitch), or a pre-computed cable group such
//    as one HyperX dimension plane (kPlane, hyperx_plane_fault()).
//  - FaultStage: the events of one degradation round.  Campaigns model the
//    operational "fail k, reroute, fail k more" sequence as one stage per
//    round.
//  - FaultSchedule: an ordered list of stages *planned up front* against a
//    scratch copy of the fabric.  Planning is fully deterministic in the
//    seed (and independent of the exec-layer thread count: all RNG draws
//    are serial), so a campaign can be replayed bit-identically, and
//    apply_stage()/revert() replay or undo it on the real topology.
//
// inject_link_faults() survives as the one-stage convenience wrapper; for
// a given (count, seed) it disables exactly the cables it always has.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace hxsim::topo {

class HyperX;

enum class FaultKind : std::uint8_t { kLink, kSwitch, kPlane };

/// One failure.  `cables` lists the forward channel id of every cable the
/// event disables (exactly one for kLink; a switch's whole inter-switch
/// cabling for kSwitch; the planner-supplied group for kPlane).
struct FaultEvent {
  FaultKind kind = FaultKind::kLink;
  /// kLink: the cable's forward channel id.  kSwitch: the switch id.
  /// kPlane: dim * kPlaneVictimStride + coord (see hyperx_plane_fault).
  std::int32_t victim = -1;
  std::vector<ChannelId> cables;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

inline constexpr std::int32_t kPlaneVictimStride = 10000;

/// One degradation round of a schedule.
struct FaultStage {
  std::vector<FaultEvent> events;
  /// Candidates the planner rejected because applying them would have
  /// disconnected the surviving switch graph (keep_connected mode).
  std::int32_t skipped_for_connectivity = 0;
  /// Optional simulation timestamp [s].  Negative (the default) marks an
  /// untimed stage: damage applied *between* runs, the classic campaign
  /// model.  A non-negative value stamps the stage for the packet engine's
  /// online fault feed (sim/online.hpp timed_faults()): the cables die
  /// mid-run at this instant.  Untouched by plan(); set by the caller.
  double at_time = -1.0;

  /// Cables disabled by this stage (union over events).
  [[nodiscard]] std::int64_t num_cables() const;

  friend bool operator==(const FaultStage&, const FaultStage&) = default;
};

struct FaultReport {
  /// Forward channel id of every disabled cable, in disable order.
  std::vector<ChannelId> disabled_links;
  /// *Both* directions of every disabled cable, in disable order -- the
  /// shape the incremental rerouting layer consumes (routing/delta.hpp
  /// tracks directed channel memberships), so a report plugs straight into
  /// a DeltaUpdate without re-deriving reverse ids.
  std::vector<ChannelId> disabled_channels;
  /// Switch events that newly disabled at least one cable.  Events whose
  /// cables were all already down (overlapping appended stages, replays)
  /// do not count, mirroring how disabled_links only lists new damage.
  std::int32_t switches_failed = 0;
  /// Candidates skipped because disabling them would disconnect switches.
  std::int32_t skipped_for_connectivity = 0;
};

class FaultSchedule {
 public:
  struct Options {
    /// Degradation rounds ("fail, reroute, fail again").
    std::int32_t stages = 1;
    /// Random cable failures per stage.
    std::int32_t links_per_stage = 0;
    /// Random whole-switch failures per stage (all inter-switch cables of
    /// the victim go down; its terminals stay cabled and become the lost
    /// LIDs of footnote 7).
    std::int32_t switches_per_stage = 0;
    std::uint64_t seed = 1;
    /// Reject candidates that would disconnect the *surviving* switches
    /// (failed switches are expected casualties, everyone else must still
    /// reach everyone else), like the paper's degraded-but-operational
    /// fabrics.
    bool keep_connected = true;
  };

  FaultSchedule() = default;

  /// Plans a schedule against a scratch copy of `topo`: victims are drawn
  /// from one seeded shuffle per fault kind and consumed stage by stage,
  /// each stage seeing the damage of all earlier ones.  Deterministic in
  /// (topology, options); never mutates `topo`.
  [[nodiscard]] static FaultSchedule plan(const Topology& topo,
                                          const Options& options);

  /// Appends a hand-built stage (e.g. a plane fault).  No connectivity
  /// filtering is applied to appended stages.
  void append_stage(FaultStage stage);

  /// Stamps stage `i` with a simulation timestamp for the online fault
  /// feed (see FaultStage::at_time).
  void set_stage_time(std::int32_t i, double at_time) {
    stages_[static_cast<std::size_t>(i)].at_time = at_time;
  }

  [[nodiscard]] std::int32_t num_stages() const noexcept {
    return static_cast<std::int32_t>(stages_.size());
  }
  [[nodiscard]] const FaultStage& stage(std::int32_t i) const {
    return stages_[static_cast<std::size_t>(i)];
  }
  /// Cables disabled by the whole schedule.
  [[nodiscard]] std::int64_t total_cables() const;

  /// Replays stage `i` onto `topo` (which must be the fabric the schedule
  /// was planned for, in its stage-(i-1) state -- stages assume the damage
  /// of their predecessors).  Returns the cables newly disabled.
  FaultReport apply_stage(Topology& topo, std::int32_t i) const;
  /// Applies stages [0, last] in order; [0, num_stages()) for apply_all.
  FaultReport apply_through(Topology& topo, std::int32_t last) const;
  FaultReport apply_all(Topology& topo) const;

  /// Re-enables every cable named anywhere in the schedule, restoring the
  /// fabric the plan started from.
  void revert(Topology& topo) const;

  /// Human-readable stage/event listing (operator debugging).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<FaultStage> stages_;
};

/// RAII fabric restore: re-enables every cable of `schedule` on scope exit,
/// whether the scope is left normally or by exception.  Campaigns that
/// share a fabric across engines (workloads/resilience.cpp) wrap their
/// apply/reroute/solve block in one of these so an engine throw mid-stage
/// can no longer leave the fabric faulted for subsequent callers.
class ScheduleRevertGuard {
 public:
  ScheduleRevertGuard(Topology& topo, const FaultSchedule& schedule) noexcept
      : topo_(&topo), schedule_(&schedule) {}
  ~ScheduleRevertGuard() {
    if (schedule_ != nullptr) schedule_->revert(*topo_);
  }
  ScheduleRevertGuard(const ScheduleRevertGuard&) = delete;
  ScheduleRevertGuard& operator=(const ScheduleRevertGuard&) = delete;

  /// Releases the guard without reverting (the caller takes ownership of
  /// the faulted state).
  void dismiss() noexcept { schedule_ = nullptr; }

 private:
  Topology* topo_;
  const FaultSchedule* schedule_;
};

/// Disables `count` randomly chosen enabled switch-to-switch cables.
/// With keep_connected the sample avoids cuts that disconnect the switch
/// graph; if fewer than `count` safe candidates exist, fewer are disabled.
/// Equivalent to planning and applying a one-stage link-only FaultSchedule
/// with the same seed.
FaultReport inject_link_faults(Topology& topo, std::int32_t count,
                               std::uint64_t seed, bool keep_connected = true);

/// A whole-plane failure on a HyperX: every dimension-`dim` cable incident
/// to a switch whose coordinate in `dim` equals `coord` (e.g. one lattice
/// column losing its entire row cabling -- a cut AOC bundle or cable tray).
/// In 3+ dimensions traffic detours through the surviving dimensions; in
/// 2-D the affected column has no other route out, so the fault isolates
/// it and its terminals become footnote-7 lost LIDs.  The event's victim
/// encodes dim * kPlaneVictimStride + coord.
[[nodiscard]] FaultEvent hyperx_plane_fault(const HyperX& hx, std::int32_t dim,
                                            std::int32_t coord);

/// Paper fault counts.
inline constexpr std::int32_t kPaperHyperXMissingLinks = 15;
inline constexpr std::int32_t kPaperFatTreeMissingLinks = 197;

}  // namespace hxsim::topo
