#include "topo/fault_injector.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/rng.hpp"
#include "topo/hyperx.hpp"

namespace hxsim::topo {

std::int64_t FaultStage::num_cables() const {
  std::int64_t n = 0;
  for (const FaultEvent& e : events)
    n += static_cast<std::int64_t>(e.cables.size());
  return n;
}

FaultSchedule FaultSchedule::plan(const Topology& topo,
                                  const Options& options) {
  FaultSchedule sched;
  if (options.stages <= 0) return sched;

  // Plan against a private copy so the caller's fabric is untouched; the
  // scratch accumulates damage so stage k sees stages [0, k).
  Topology scratch = topo;
  std::vector<char> alive(static_cast<std::size_t>(topo.num_switches()), 1);

  // Legacy candidate order: enabled inter-switch cables by ascending
  // forward channel id, then one seeded shuffle.  The link shuffle is the
  // first RNG draw so that a link-only single-stage plan picks exactly the
  // cables inject_link_faults always has for the same seed.
  std::vector<ChannelId> link_candidates;
  for (ChannelId ch = 0; ch < scratch.num_channels(); ++ch) {
    const Channel& c = scratch.channel(ch);
    if (!c.enabled || !scratch.is_switch_channel(ch)) continue;
    if (ch > c.reverse) continue;  // one entry per cable
    link_candidates.push_back(ch);
  }
  std::vector<SwitchId> switch_candidates(
      static_cast<std::size_t>(scratch.num_switches()));
  for (SwitchId sw = 0; sw < scratch.num_switches(); ++sw)
    switch_candidates[static_cast<std::size_t>(sw)] = sw;

  stats::Rng rng(options.seed);
  rng.shuffle(link_candidates);
  rng.shuffle(switch_candidates);

  std::size_t li = 0;
  std::size_t si = 0;
  for (std::int32_t s = 0; s < options.stages; ++s) {
    FaultStage stage;

    // Switch failures first: a dead switch takes its cabling with it, so
    // the stage's random link faults always hit still-live cables.
    std::int32_t switches_done = 0;
    while (switches_done < options.switches_per_stage &&
           si < switch_candidates.size()) {
      const SwitchId sw = switch_candidates[si++];
      if (!alive[static_cast<std::size_t>(sw)]) continue;
      FaultEvent ev{FaultKind::kSwitch, sw, {}};
      for (ChannelId ch : scratch.switch_out(sw)) {
        const Channel& c = scratch.channel(ch);
        if (!c.enabled || !c.dst.is_switch()) continue;
        ev.cables.push_back(std::min(ch, c.reverse));
      }
      alive[static_cast<std::size_t>(sw)] = 0;
      for (ChannelId ch : ev.cables) scratch.disable_link(ch);
      if (options.keep_connected && !scratch.switches_connected(alive)) {
        for (ChannelId ch : ev.cables) scratch.enable_link(ch);
        alive[static_cast<std::size_t>(sw)] = 1;
        ++stage.skipped_for_connectivity;
        continue;
      }
      stage.events.push_back(std::move(ev));
      ++switches_done;
    }

    std::int32_t links_done = 0;
    while (links_done < options.links_per_stage &&
           li < link_candidates.size()) {
      const ChannelId ch = link_candidates[li++];
      if (!scratch.channel(ch).enabled) continue;  // died with a switch
      scratch.disable_link(ch);
      if (options.keep_connected && !scratch.switches_connected(alive)) {
        scratch.enable_link(ch);
        ++stage.skipped_for_connectivity;
        continue;
      }
      stage.events.push_back(FaultEvent{FaultKind::kLink, ch, {ch}});
      ++links_done;
    }

    sched.append_stage(std::move(stage));
  }
  return sched;
}

void FaultSchedule::append_stage(FaultStage stage) {
  stages_.push_back(std::move(stage));
}

std::int64_t FaultSchedule::total_cables() const {
  std::int64_t n = 0;
  for (const FaultStage& s : stages_) n += s.num_cables();
  return n;
}

FaultReport FaultSchedule::apply_stage(Topology& topo, std::int32_t i) const {
  const FaultStage& s = stage(i);
  FaultReport report;
  report.skipped_for_connectivity = s.skipped_for_connectivity;
  for (const FaultEvent& ev : s.events) {
    bool any_new = false;
    for (const ChannelId ch : ev.cables) {
      if (!topo.channel(ch).enabled) continue;  // appended stages may overlap
      topo.disable_link(ch);
      report.disabled_links.push_back(ch);
      report.disabled_channels.push_back(ch);
      report.disabled_channels.push_back(topo.channel(ch).reverse);
      any_new = true;
    }
    if (ev.kind == FaultKind::kSwitch && any_new) ++report.switches_failed;
  }
  return report;
}

FaultReport FaultSchedule::apply_through(Topology& topo,
                                         std::int32_t last) const {
  FaultReport report;
  for (std::int32_t i = 0; i <= last; ++i) {
    FaultReport r = apply_stage(topo, i);
    report.disabled_links.insert(report.disabled_links.end(),
                                 r.disabled_links.begin(),
                                 r.disabled_links.end());
    report.disabled_channels.insert(report.disabled_channels.end(),
                                    r.disabled_channels.begin(),
                                    r.disabled_channels.end());
    report.switches_failed += r.switches_failed;
    report.skipped_for_connectivity += r.skipped_for_connectivity;
  }
  return report;
}

FaultReport FaultSchedule::apply_all(Topology& topo) const {
  return apply_through(topo, num_stages() - 1);
}

void FaultSchedule::revert(Topology& topo) const {
  for (const FaultStage& s : stages_)
    for (const FaultEvent& ev : s.events)
      for (const ChannelId ch : ev.cables) topo.enable_link(ch);
}

std::string FaultSchedule::to_string() const {
  std::string out;
  for (std::int32_t i = 0; i < num_stages(); ++i) {
    const FaultStage& s = stage(i);
    out += "stage " + std::to_string(i) + " (" +
           std::to_string(s.num_cables()) + " cables";
    if (s.skipped_for_connectivity > 0)
      out += ", " + std::to_string(s.skipped_for_connectivity) +
             " skipped for connectivity";
    out += "):\n";
    for (const FaultEvent& ev : s.events) {
      switch (ev.kind) {
        case FaultKind::kLink:
          out += "  link ch" + std::to_string(ev.victim) + "\n";
          break;
        case FaultKind::kSwitch:
          out += "  switch s" + std::to_string(ev.victim) + " (" +
                 std::to_string(ev.cables.size()) + " cables)\n";
          break;
        case FaultKind::kPlane:
          out += "  plane dim " +
                 std::to_string(ev.victim / kPlaneVictimStride) + " coord " +
                 std::to_string(ev.victim % kPlaneVictimStride) + " (" +
                 std::to_string(ev.cables.size()) + " cables)\n";
          break;
      }
    }
  }
  return out;
}

FaultReport inject_link_faults(Topology& topo, std::int32_t count,
                               std::uint64_t seed, bool keep_connected) {
  if (count <= 0) return {};
  FaultSchedule::Options options;
  options.stages = 1;
  options.links_per_stage = count;
  options.seed = seed;
  options.keep_connected = keep_connected;
  return FaultSchedule::plan(topo, options).apply_stage(topo, 0);
}

FaultEvent hyperx_plane_fault(const HyperX& hx, std::int32_t dim,
                              std::int32_t coord) {
  if (dim < 0 || dim >= hx.num_dims())
    throw std::out_of_range("hyperx_plane_fault: bad dimension");
  if (coord < 0 || coord >= hx.dim_size(dim))
    throw std::out_of_range("hyperx_plane_fault: bad coordinate");
  const Topology& topo = hx.topo();
  FaultEvent ev{FaultKind::kPlane, dim * kPlaneVictimStride + coord, {}};
  for (SwitchId sw = 0; sw < topo.num_switches(); ++sw) {
    if (hx.coord(sw, dim) != coord) continue;
    for (std::int32_t value = 0; value < hx.dim_size(dim); ++value) {
      const ChannelId ch = hx.dim_channel(sw, dim, value);
      if (ch == kInvalidChannel) continue;
      const Channel& c = topo.channel(ch);
      // The far endpoint has a different `dim` coordinate, so each plane
      // cable is seen exactly once (from its in-plane side).
      ev.cables.push_back(std::min(ch, c.reverse));
    }
  }
  return ev;
}

}  // namespace hxsim::topo
