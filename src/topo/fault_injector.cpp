#include "topo/fault_injector.hpp"

#include "stats/rng.hpp"

namespace hxsim::topo {

FaultReport inject_link_faults(Topology& topo, std::int32_t count,
                               std::uint64_t seed, bool keep_connected) {
  FaultReport report;
  if (count <= 0) return report;

  std::vector<ChannelId> candidates;
  for (ChannelId ch = 0; ch < topo.num_channels(); ++ch) {
    const Channel& c = topo.channel(ch);
    if (!c.enabled || !topo.is_switch_channel(ch)) continue;
    if (ch > c.reverse) continue;  // one entry per cable
    candidates.push_back(ch);
  }

  stats::Rng rng(seed);
  rng.shuffle(candidates);

  for (ChannelId ch : candidates) {
    if (static_cast<std::int32_t>(report.disabled_links.size()) >= count) break;
    topo.disable_link(ch);
    if (keep_connected && !topo.switches_connected()) {
      topo.enable_link(ch);
      ++report.skipped_for_connectivity;
      continue;
    }
    report.disabled_links.push_back(ch);
  }
  return report;
}

}  // namespace hxsim::topo
