#include "topo/bisection.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hxsim::topo {

std::int64_t cut_links(const Topology& topo,
                       std::span<const std::int8_t> side) {
  if (static_cast<std::int32_t>(side.size()) != topo.num_switches())
    throw std::invalid_argument("cut_links: side size mismatch");
  std::int64_t crossing = 0;
  for (ChannelId ch = 0; ch < topo.num_channels(); ++ch) {
    const Channel& c = topo.channel(ch);
    if (!c.enabled || !topo.is_switch_channel(ch) || ch > c.reverse) continue;
    if (side[static_cast<std::size_t>(c.src.index)] !=
        side[static_cast<std::size_t>(c.dst.index)])
      ++crossing;
  }
  return crossing;
}

std::int64_t exact_bisection_links(const Topology& topo) {
  const std::int32_t n = topo.num_switches();
  if (n > 24)
    throw std::invalid_argument("exact_bisection_links: too many switches");
  if (n < 2) return 0;

  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int8_t> side(static_cast<std::size_t>(n));
  const std::uint64_t limit = 1ULL << (n - 1);  // fix switch 0 on side 0
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    std::int32_t ones = 0;
    for (std::int32_t i = 1; i < n; ++i) {
      const auto bit = static_cast<std::int8_t>((mask >> (i - 1)) & 1U);
      side[static_cast<std::size_t>(i)] = bit;
      ones += bit;
    }
    side[0] = 0;
    if (std::abs((n - ones) - ones) > 1) continue;  // not balanced
    best = std::min(best, cut_links(topo, side));
  }
  return best;
}

double terminal_bisection_ratio(const Topology& topo,
                                std::span<const std::int8_t> side) {
  const std::int64_t crossing = cut_links(topo, side);
  std::int64_t terminals[2] = {0, 0};
  for (NodeId t = 0; t < topo.num_terminals(); ++t) {
    const SwitchId sw = topo.attach_switch(t);
    ++terminals[side[static_cast<std::size_t>(sw)]];
  }
  const std::int64_t smaller = std::min(terminals[0], terminals[1]);
  if (smaller == 0) return 0.0;
  return static_cast<double>(crossing) / static_cast<double>(smaller);
}

}  // namespace hxsim::topo
