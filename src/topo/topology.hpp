// Interconnection-network topology graph.
//
// A Topology is a bipartite-ish graph of switches and terminals (compute
// nodes).  Every physical cable is represented as a *pair* of directed
// channels, one per direction, because routing tables, congestion, and
// channel-dependency analysis are all per-direction concepts.  Channels can
// be disabled to model the paper's broken/missing AOC cables without
// renumbering anything.
//
// The class is a value type (Core Guidelines C.10/C.11): builders construct
// one, fault injectors mutate the enable flags, and routing engines only
// read it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace hxsim::topo {

using SwitchId = std::int32_t;
using NodeId = std::int32_t;     // terminal / compute node
using ChannelId = std::int32_t;  // directed edge

inline constexpr SwitchId kInvalidSwitch = -1;
inline constexpr NodeId kInvalidNode = -1;
inline constexpr ChannelId kInvalidChannel = -1;

/// One side of a directed channel.
struct Endpoint {
  enum class Kind : std::uint8_t { kSwitch, kTerminal };
  Kind kind = Kind::kSwitch;
  std::int32_t index = -1;

  [[nodiscard]] bool is_switch() const noexcept { return kind == Kind::kSwitch; }
  [[nodiscard]] bool is_terminal() const noexcept {
    return kind == Kind::kTerminal;
  }
  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

[[nodiscard]] constexpr Endpoint switch_endpoint(SwitchId s) noexcept {
  return Endpoint{Endpoint::Kind::kSwitch, s};
}
[[nodiscard]] constexpr Endpoint terminal_endpoint(NodeId n) noexcept {
  return Endpoint{Endpoint::Kind::kTerminal, n};
}

/// Directed channel.  `reverse` is the channel of the same cable in the
/// opposite direction; the pair is created and disabled together.
struct Channel {
  ChannelId id = kInvalidChannel;
  Endpoint src;
  Endpoint dst;
  ChannelId reverse = kInvalidChannel;
  bool enabled = true;
};

class Topology {
 public:
  Topology() = default;
  explicit Topology(std::string name) : name_(std::move(name)) {}

  // --- construction -------------------------------------------------------

  SwitchId add_switch();

  /// Adds a terminal attached to `sw` via a bidirectional link.
  NodeId add_terminal(SwitchId sw);

  /// Adds a bidirectional switch-to-switch cable; returns the two directed
  /// channel ids (a->b, b->a).  Parallel cables between the same switch
  /// pair are allowed.
  std::pair<ChannelId, ChannelId> connect(SwitchId a, SwitchId b);

  /// Disables a cable in both directions.  Idempotent.
  void disable_link(ChannelId ch);

  /// Re-enables a cable in both directions.  Idempotent.
  void enable_link(ChannelId ch);

  // --- queries ------------------------------------------------------------

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] std::int32_t num_switches() const noexcept {
    return static_cast<std::int32_t>(switch_out_.size());
  }
  [[nodiscard]] std::int32_t num_terminals() const noexcept {
    return static_cast<std::int32_t>(terminal_up_.size());
  }
  [[nodiscard]] std::int32_t num_channels() const noexcept {
    return static_cast<std::int32_t>(channels_.size());
  }

  [[nodiscard]] const Channel& channel(ChannelId ch) const {
    return channels_[static_cast<std::size_t>(ch)];
  }

  /// All channels leaving a switch (enabled or not; callers filter).
  /// Includes switch->terminal channels.
  [[nodiscard]] std::span<const ChannelId> switch_out(SwitchId sw) const {
    return switch_out_[static_cast<std::size_t>(sw)];
  }

  /// Terminal's injection channel (terminal -> switch).
  [[nodiscard]] ChannelId terminal_up(NodeId n) const {
    return terminal_up_[static_cast<std::size_t>(n)];
  }
  /// Terminal's ejection channel (switch -> terminal).
  [[nodiscard]] ChannelId terminal_down(NodeId n) const {
    return terminal_down_[static_cast<std::size_t>(n)];
  }
  /// Switch the terminal is cabled to.
  [[nodiscard]] SwitchId attach_switch(NodeId n) const {
    return attach_[static_cast<std::size_t>(n)];
  }
  /// Terminals cabled to a switch, in attachment order.
  [[nodiscard]] std::span<const NodeId> switch_terminals(SwitchId sw) const {
    return switch_terminals_[static_cast<std::size_t>(sw)];
  }

  /// True if the channel connects two switches (not a terminal link).
  [[nodiscard]] bool is_switch_channel(ChannelId ch) const {
    const Channel& c = channel(ch);
    return c.src.is_switch() && c.dst.is_switch();
  }

  /// Count of *cables* (channel pairs) between switches, enabled only.
  [[nodiscard]] std::int64_t num_switch_links(bool enabled_only = true) const;

  /// Enabled switch-neighbours reachable in one hop (deduplicated).
  [[nodiscard]] std::vector<SwitchId> switch_neighbors(SwitchId sw) const;

  /// True if every switch can reach every other over enabled channels.
  [[nodiscard]] bool switches_connected() const;

  /// True if every switch with alive[sw] != 0 can reach every other alive
  /// switch over enabled channels through alive switches only.  Used by the
  /// fault scheduler: failed switches are expected casualties, the
  /// survivors must stay mutually connected.
  [[nodiscard]] bool switches_connected(std::span<const char> alive) const;

  /// Graphviz DOT dump (switches as boxes, terminals as points).
  [[nodiscard]] std::string to_dot() const;

 private:
  ChannelId add_channel(Endpoint src, Endpoint dst);

  std::string name_;
  std::vector<Channel> channels_;
  std::vector<std::vector<ChannelId>> switch_out_;
  std::vector<std::vector<NodeId>> switch_terminals_;
  std::vector<ChannelId> terminal_up_;
  std::vector<ChannelId> terminal_down_;
  std::vector<SwitchId> attach_;
};

}  // namespace hxsim::topo
