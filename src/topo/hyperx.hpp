// HyperX builder (Ahn et al. [3 in the paper]).
//
// An n-dimensional HyperX places switches on an integer lattice
// S_1 x ... x S_n and fully connects every "row": two switches are cabled
// iff their coordinates differ in exactly one dimension.  Each switch hosts
// T terminals.  The paper's network is the 2-D 12x8 with T = 7
// (Section 2.3, 96 switches, 672 nodes, 57.1 % bisection).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "stats/rng.hpp"
#include "topo/topology.hpp"

namespace hxsim::topo {

struct HyperXParams {
  std::vector<std::int32_t> dims = {4, 4};  // S_k per dimension
  std::int32_t terminals_per_switch = 2;    // T
  std::string name = "hyperx";
};

/// Paper configuration: 12x8, 7 nodes per switch (672 nodes).
[[nodiscard]] HyperXParams paper_hyperx_params();

/// Figure 2b configuration: 4x4 with 2 nodes per switch (32 nodes).
[[nodiscard]] HyperXParams small_hyperx_params();

/// Random valid lattice shape within the bounds, for the fuzz-audit
/// scenario generator: 1-3 dimensions of size >= 2 whose product stays
/// <= max_switches, and >= 1 terminal per switch with the fabric total
/// <= max_terminals.  Deterministic in the rng state.  `even_dims` forces
/// exactly two even-sized dimensions (the PARX precondition).
[[nodiscard]] HyperXParams random_hyperx_params(stats::Rng& rng,
                                                std::int32_t max_switches,
                                                std::int32_t max_terminals,
                                                bool even_dims = false);

class HyperX {
 public:
  explicit HyperX(const HyperXParams& params);

  [[nodiscard]] const Topology& topo() const noexcept { return topo_; }
  [[nodiscard]] Topology& topo() noexcept { return topo_; }
  [[nodiscard]] const HyperXParams& params() const noexcept { return params_; }

  [[nodiscard]] std::int32_t num_dims() const noexcept {
    return static_cast<std::int32_t>(params_.dims.size());
  }
  [[nodiscard]] std::int32_t dim_size(std::int32_t d) const {
    return params_.dims[static_cast<std::size_t>(d)];
  }

  /// Coordinate of a switch in dimension d.
  [[nodiscard]] std::int32_t coord(SwitchId sw, std::int32_t d) const {
    return coords_[static_cast<std::size_t>(sw)][static_cast<std::size_t>(d)];
  }
  [[nodiscard]] std::span<const std::int32_t> coords(SwitchId sw) const {
    return coords_[static_cast<std::size_t>(sw)];
  }

  /// Switch at the given coordinate vector (size == num_dims()).
  [[nodiscard]] SwitchId switch_at(std::span<const std::int32_t> coord) const;

  /// Channel from `sw` along dimension d to the switch with coordinate
  /// `value` in that dimension; kInvalidChannel when value == coord(sw, d).
  [[nodiscard]] ChannelId dim_channel(SwitchId sw, std::int32_t d,
                                      std::int32_t value) const {
    return dim_channels_[static_cast<std::size_t>(sw)]
                        [static_cast<std::size_t>(d)]
                        [static_cast<std::size_t>(value)];
  }

  /// Offered bisection bandwidth ratio: min over dimensions of the cut
  /// crossing the lattice bisector, relative to terminal injection
  /// bandwidth of one half (1.0 = full bisection).  12x8 with T = 7 gives
  /// 4/7 = 0.571, the paper's 57.1 %.
  [[nodiscard]] double bisection_ratio() const;

 private:
  HyperXParams params_;
  Topology topo_;
  std::vector<std::vector<std::int32_t>> coords_;
  std::vector<std::vector<std::vector<ChannelId>>> dim_channels_;
};

}  // namespace hxsim::topo
