#include "topo/fat_tree.hpp"

#include <stdexcept>

namespace hxsim::topo {

FatTreeParams paper_fat_tree_params() {
  FatTreeParams p;
  p.arity = 18;
  p.levels = 3;
  p.leaf_terminals = 14;
  p.populated_leaves = 48;  // 24 racks x 2 edge switches per plane
  p.name = "fat-tree-18ary3";
  return p;
}

FatTreeParams small_fat_tree_params() {
  FatTreeParams p;
  p.arity = 4;
  p.levels = 2;
  p.leaf_terminals = 4;
  p.populated_leaves = -1;
  p.name = "fat-tree-4ary2";
  return p;
}

FatTreeParams random_fat_tree_params(stats::Rng& rng,
                                     std::int32_t max_switches,
                                     std::int32_t max_terminals) {
  if (max_switches < 4 || max_terminals < 2)
    throw std::invalid_argument(
        "random_fat_tree_params: bounds leave no valid shape");
  FatTreeParams p;
  p.levels = 2 + static_cast<std::int32_t>(rng.next_below(2));
  // Largest arity whose k-ary n-tree (n * k^(n-1) switches) fits.
  auto switches_of = [](std::int32_t k, std::int32_t n) {
    std::int64_t s = n;
    for (std::int32_t i = 0; i + 1 < n; ++i) s *= k;
    return s;
  };
  std::int32_t max_arity = 0;
  for (std::int32_t k = 2; k <= 8; ++k)
    if (switches_of(k, p.levels) <= max_switches) max_arity = k;
  if (max_arity < 2) {
    p.levels = 2;
    max_arity = std::min<std::int32_t>(8, max_switches / 2);
  }
  p.arity = 2 + static_cast<std::int32_t>(rng.next_below(
                    static_cast<std::uint64_t>(max_arity - 1)));
  // Taper 2 (the paper's 2:1 oversubscription) half the time it divides.
  p.taper = (p.arity % 2 == 0 && rng.next_below(2) == 0) ? 2 : 1;

  std::int32_t leaves = 1;
  for (std::int32_t i = 0; i + 1 < p.levels; ++i) leaves *= p.arity;
  const std::int32_t lt_cap = std::max<std::int32_t>(
      1, std::min<std::int32_t>(p.arity, max_terminals / leaves));
  p.leaf_terminals = 1 + static_cast<std::int32_t>(rng.next_below(
                             static_cast<std::uint64_t>(lt_cap)));
  // A quarter of the shapes use the paper's part-populated situation.
  p.populated_leaves =
      rng.next_below(4) == 0
          ? 1 + static_cast<std::int32_t>(rng.next_below(
                    static_cast<std::uint64_t>(leaves)))
          : -1;
  // At least two terminals total, or there is no traffic to generate.
  const std::int32_t populated =
      p.populated_leaves < 0 ? leaves : p.populated_leaves;
  if (populated * p.leaf_terminals < 2)
    p.leaf_terminals = std::min<std::int32_t>(2, p.arity);
  p.name = "fuzz-fat-tree";
  return p;
}

FatTree::FatTree(const FatTreeParams& params)
    : params_(params), topo_(params.name) {
  const std::int32_t k = params_.arity;
  const std::int32_t n = params_.levels;
  if (k < 2) throw std::invalid_argument("FatTree: arity must be >= 2");
  if (n < 2) throw std::invalid_argument("FatTree: levels must be >= 2");
  if (params_.leaf_terminals < 1 || params_.leaf_terminals > k)
    throw std::invalid_argument("FatTree: leaf_terminals must be in [1, k]");
  if (params_.taper < 1 || k % params_.taper != 0)
    throw std::invalid_argument("FatTree: taper must divide the arity");

  pow_.resize(static_cast<std::size_t>(n));
  pow_[0] = 1;
  for (std::int32_t i = 1; i < n; ++i) pow_[static_cast<std::size_t>(i)] =
      pow_[static_cast<std::size_t>(i - 1)] * k;
  per_level_ = pow_[static_cast<std::size_t>(n - 1)];

  if (params_.populated_leaves < 0) params_.populated_leaves = per_level_;
  if (params_.populated_leaves > per_level_)
    throw std::invalid_argument("FatTree: populated_leaves exceeds leaves");

  const std::int32_t total_switches = n * per_level_;
  for (std::int32_t s = 0; s < total_switches; ++s) topo_.add_switch();
  up_.assign(static_cast<std::size_t>(total_switches), {});
  down_.assign(static_cast<std::size_t>(total_switches), {});

  // Cables: iterate parents at level l (1..n-1); a parent with word w'
  // connects down to the k children obtained by replacing digit l-1 of w'.
  // The leaf taper keeps only the level-1 parents with digit 0 below this
  // bound; upper levels stay fully connected.
  const std::int32_t leaf_parent_bound = k / params_.taper;
  for (std::int32_t l = 1; l < n; ++l) {
    for (std::int32_t w = 0; w < per_level_; ++w) {
      const SwitchId parent = switch_id(l, w);
      if (l == 1 && digit(w, 0) >= leaf_parent_bound) {
        down_[static_cast<std::size_t>(parent)].assign(
            static_cast<std::size_t>(k), kInvalidChannel);
        continue;  // tapered away: this level-1 switch has no children
      }
      down_[static_cast<std::size_t>(parent)].assign(
          static_cast<std::size_t>(k), kInvalidChannel);
      for (std::int32_t u = 0; u < k; ++u) {
        const std::int32_t child_word = with_digit(w, l - 1, u);
        const SwitchId child = switch_id(l - 1, child_word);
        auto [child_to_parent, parent_to_child] = topo_.connect(child, parent);
        auto& child_up = up_[static_cast<std::size_t>(child)];
        if (child_up.empty())
          child_up.assign(static_cast<std::size_t>(k), kInvalidChannel);
        // The child's up-ports are indexed by the parent's digit l-1.
        child_up[static_cast<std::size_t>(digit(w, l - 1))] = child_to_parent;
        down_[static_cast<std::size_t>(parent)][static_cast<std::size_t>(u)] =
            parent_to_child;
      }
    }
  }

  for (std::int32_t leaf = 0; leaf < params_.populated_leaves; ++leaf) {
    for (std::int32_t t = 0; t < params_.leaf_terminals; ++t)
      topo_.add_terminal(switch_id(0, leaf));
  }
}

std::int32_t FatTree::digit(std::int32_t word, std::int32_t pos) const {
  return (word / pow_[static_cast<std::size_t>(pos)]) % params_.arity;
}

std::int32_t FatTree::with_digit(std::int32_t word, std::int32_t pos,
                                 std::int32_t value) const {
  const std::int32_t p = pow_[static_cast<std::size_t>(pos)];
  const std::int32_t old = digit(word, pos);
  return word + (value - old) * p;
}

bool FatTree::in_subtree(SwitchId sw, NodeId n) const {
  const std::int32_t l = level_of(sw);
  const std::int32_t w = word_of(sw);
  const std::int32_t leaf_word = word_of(leaf_of(n));
  for (std::int32_t pos = l; pos < params_.levels - 1; ++pos) {
    if (digit(w, pos) != digit(leaf_word, pos)) return false;
  }
  return true;
}

}  // namespace hxsim::topo
