// k-ary n-tree (folded Clos / fat-tree) builder.
//
// Implements the construction of Petrini & Vanneschi [66 in the paper]:
// n levels of k^(n-1) switches each; a switch is identified by
// (level l, word w) with w in [k]^(n-1); switches (l, w) and (l+1, w') are
// cabled iff w and w' agree on every digit except digit l.  Level 0 is the
// leaf level; each leaf hosts `leaf_terminals` compute nodes
// (undersubscription, paper Section 2.1/2.3, is leaf_terminals < k).
//
// `populated_leaves` models the paper's situation where the rewired system
// uses only part of the original tree (48 rack edge switches out of 324):
// terminals are attached to the first `populated_leaves` leaf switches only,
// while the full switching fabric remains in place.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "stats/rng.hpp"
#include "topo/topology.hpp"

namespace hxsim::topo {

struct FatTreeParams {
  std::int32_t arity = 4;            // k: up/down ports per switch side
  std::int32_t levels = 2;           // n: switch levels
  std::int32_t leaf_terminals = 4;   // nodes per populated leaf (<= arity)
  std::int32_t populated_leaves = -1;  // -1: all k^(n-1) leaves host nodes
  /// Leaf-level oversubscription (paper Section 2.1): a taper of t keeps
  /// only the parents with digit-0 < k/t, i.e. each leaf has k/t uplinks
  /// for its leaf_terminals nodes.  taper = 1 is the full folded Clos;
  /// taper = 2 is the "2-to-1 oversubscription [that] cuts the network
  /// cost by more than 50%".  Must divide arity.
  std::int32_t taper = 1;
  std::string name = "fat-tree";
};

/// Paper configuration: 18-ary 3-tree, 48 populated leaves x 14 nodes
/// = 672 terminals (Section 2.3).
[[nodiscard]] FatTreeParams paper_fat_tree_params();

/// Figure 2a configuration: 4-ary 2-tree with 16 nodes.
[[nodiscard]] FatTreeParams small_fat_tree_params();

/// Random valid 2/3-level (possibly tapered, possibly part-populated)
/// shape within the bounds, for the fuzz-audit scenario generator:
/// levels * arity^(levels-1) switches <= max_switches, total terminals
/// >= 2 and bounded by max_terminals (up to the >= 2 floor), taper drawn
/// from the divisors of the arity.  Deterministic in the rng state.
[[nodiscard]] FatTreeParams random_fat_tree_params(stats::Rng& rng,
                                                   std::int32_t max_switches,
                                                   std::int32_t max_terminals);

class FatTree {
 public:
  explicit FatTree(const FatTreeParams& params);

  [[nodiscard]] const Topology& topo() const noexcept { return topo_; }
  [[nodiscard]] Topology& topo() noexcept { return topo_; }
  [[nodiscard]] const FatTreeParams& params() const noexcept { return params_; }

  [[nodiscard]] std::int32_t arity() const noexcept { return params_.arity; }
  [[nodiscard]] std::int32_t levels() const noexcept { return params_.levels; }
  /// Switches per level = arity^(levels-1).
  [[nodiscard]] std::int32_t switches_per_level() const noexcept {
    return per_level_;
  }

  [[nodiscard]] std::int32_t level_of(SwitchId sw) const {
    return sw / per_level_;
  }
  /// Word value (mixed-radix base-k digits) of a switch within its level.
  [[nodiscard]] std::int32_t word_of(SwitchId sw) const {
    return sw % per_level_;
  }
  [[nodiscard]] SwitchId switch_id(std::int32_t level,
                                   std::int32_t word) const {
    return level * per_level_ + word;
  }

  /// digit `pos` of a word value.
  [[nodiscard]] std::int32_t digit(std::int32_t word, std::int32_t pos) const;
  /// word value with digit `pos` replaced by `value`.
  [[nodiscard]] std::int32_t with_digit(std::int32_t word, std::int32_t pos,
                                        std::int32_t value) const;

  /// Channel from `sw` (level l < levels-1) up to the level-(l+1) switch
  /// whose digit l equals `value`; kInvalidChannel for uplinks removed by
  /// the leaf taper.
  [[nodiscard]] ChannelId up_channel(SwitchId sw, std::int32_t value) const {
    return up_[static_cast<std::size_t>(sw)][static_cast<std::size_t>(value)];
  }
  /// Channel from `sw` (level l > 0) down to the level-(l-1) switch whose
  /// digit l-1 equals `value`.
  [[nodiscard]] ChannelId down_channel(SwitchId sw, std::int32_t value) const {
    return down_[static_cast<std::size_t>(sw)][static_cast<std::size_t>(value)];
  }

  /// Leaf switch hosting terminal n.
  [[nodiscard]] SwitchId leaf_of(NodeId n) const {
    return topo_.attach_switch(n);
  }
  /// True if terminal `n` is in the subtree of switch `sw`:
  /// its leaf word agrees with sw's word on digits >= level(sw).
  [[nodiscard]] bool in_subtree(SwitchId sw, NodeId n) const;

 private:
  FatTreeParams params_;
  Topology topo_;
  std::int32_t per_level_ = 0;
  std::vector<std::int32_t> pow_;  // arity^i, i in [0, levels-1]
  std::vector<std::vector<ChannelId>> up_;
  std::vector<std::vector<ChannelId>> down_;
};

}  // namespace hxsim::topo
