#include "topo/dragonfly.hpp"

#include <stdexcept>

namespace hxsim::topo {

DragonflyParams paper_matched_dragonfly_params() {
  DragonflyParams p;
  p.terminals_per_switch = 7;
  p.switches_per_group = 8;
  p.global_ports = 2;
  p.groups = 12;
  p.name = "dragonfly-7-8-2-12";
  return p;
}

Dragonfly::Dragonfly(const DragonflyParams& params)
    : params_(params), topo_(params.name) {
  const std::int32_t p = params_.terminals_per_switch;
  const std::int32_t a = params_.switches_per_group;
  const std::int32_t h = params_.global_ports;
  const std::int32_t g = params_.groups;
  if (p < 0 || a < 1 || h < 1 || g < 2)
    throw std::invalid_argument("Dragonfly: bad parameters");
  if (g > a * h + 1)
    throw std::invalid_argument(
        "Dragonfly: groups exceed a*h+1 (not enough global slots to reach "
        "every group)");

  for (std::int32_t s = 0; s < g * a; ++s) topo_.add_switch();

  // Intra-group: every group is a clique.
  for (std::int32_t grp = 0; grp < g; ++grp)
    for (std::int32_t i = 0; i < a; ++i)
      for (std::int32_t j = i + 1; j < a; ++j)
        topo_.connect(switch_in_group(grp, i), switch_in_group(grp, j));

  // Global links: each group owns a*h slots; distribute them over the
  // other groups as evenly as possible, sweeping the pair distances so the
  // balanced case (g == a*h + 1) yields exactly one link per pair.
  pair_links_.assign(static_cast<std::size_t>(g) * g, 0);
  std::vector<std::int32_t> slots_used(static_cast<std::size_t>(g), 0);
  const std::int32_t slots = a * h;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::int32_t d = 1; d <= g / 2; ++d) {
      // Distance-d pairs: g of them (including wrap-around), except g/2 for
      // the diametral distance of an even ring.
      const std::int32_t count = (2 * d == g) ? g / 2 : g;
      for (std::int32_t i = 0; i < count; ++i) {
        const std::int32_t j = (i + d) % g;
        auto& used_i = slots_used[static_cast<std::size_t>(i)];
        auto& used_j = slots_used[static_cast<std::size_t>(j)];
        if (used_i >= slots || used_j >= slots) continue;
        // Slot -> (switch, port): consecutive assignment.
        const SwitchId si = switch_in_group(i, used_i % a);
        const SwitchId sj = switch_in_group(j, used_j % a);
        topo_.connect(si, sj);
        ++used_i;
        ++used_j;
        ++pair_links_[pair_index(i, j)];
        ++pair_links_[pair_index(j, i)];
        progress = true;
      }
    }
  }

  for (std::int32_t s = 0; s < g * a; ++s)
    for (std::int32_t t = 0; t < p; ++t) topo_.add_terminal(s);
}

std::int32_t Dragonfly::global_links_between(std::int32_t group_a,
                                             std::int32_t group_b) const {
  if (group_a < 0 || group_a >= params_.groups || group_b < 0 ||
      group_b >= params_.groups)
    throw std::out_of_range("Dragonfly::global_links_between");
  return pair_links_[pair_index(group_a, group_b)];
}

}  // namespace hxsim::topo
