// Point-to-point messaging layer (PML) model (paper Section 3.2.4).
//
// Open MPI's default ob1 PML uses one LID (the primary path).  The paper
// switches to the bfo PML -- the only layer supporting concurrent
// multi-LID addressing -- and patches it to pick the LID from Table 1.
// bfo is markedly less tuned than ob1: the paper measures a 2.8x-6.9x
// Barrier slowdown, which we model as a larger per-message software
// overhead.  The overheads below are calibrated so that a dissemination
// barrier lands in the paper's latency band on both PMLs.
#pragma once

#include <cstdint>
#include <string>

namespace hxsim::mpi {

enum class PmlKind : std::int8_t {
  kOb1,  // single-path default
  kBfo,  // multi-LID, Table-1 aware (PARX configurations)
};

struct PmlConfig {
  PmlKind kind = PmlKind::kOb1;
  /// Per-message CPU/software cost at the sender [s].
  double per_message_overhead = 1.1e-6;
  /// Additional per-byte host-side cost (pinning, copies) [s/byte].
  double per_byte_overhead = 2.0e-11;

  [[nodiscard]] std::string name() const {
    return kind == PmlKind::kOb1 ? "ob1" : "bfo";
  }
};

/// Tuned default layer.
[[nodiscard]] PmlConfig make_ob1();

/// Multi-path layer: ~4x the software overhead of ob1 (inside the paper's
/// observed 2.8x-6.9x band).
[[nodiscard]] PmlConfig make_bfo();

}  // namespace hxsim::mpi
