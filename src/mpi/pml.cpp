#include "mpi/pml.hpp"

namespace hxsim::mpi {

PmlConfig make_ob1() {
  PmlConfig cfg;
  cfg.kind = PmlKind::kOb1;
  cfg.per_message_overhead = 1.1e-6;
  cfg.per_byte_overhead = 2.0e-11;
  return cfg;
}

PmlConfig make_bfo() {
  PmlConfig cfg;
  cfg.kind = PmlKind::kBfo;
  cfg.per_message_overhead = 4.4e-6;
  cfg.per_byte_overhead = 2.6e-11;
  return cfg;
}

}  // namespace hxsim::mpi
