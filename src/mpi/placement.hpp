// MPI rank-to-node placements (paper Sections 3.1 and 4.4.3).
//
// Three allocation schemes are compared by the paper:
//  - linear: rank i on node i of the pool (common scheduler behaviour;
//    isolates small jobs, minimises latency);
//  - clustered: strides drawn from a geometric distribution with p = 0.8,
//    emulating fragmentation of a production machine;
//  - random: the paper's bottleneck-mitigation strategy for static-routed
//    HyperX (Section 3.1).
//
// A placement maps ranks onto a *pool* of candidate nodes (the whole
// machine for capability runs, a job's allocation for capacity runs).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/rng.hpp"
#include "topo/topology.hpp"

namespace hxsim::mpi {

enum class PlacementKind : std::int8_t { kLinear, kClustered, kRandom };

[[nodiscard]] const char* to_string(PlacementKind kind);

class Placement {
 public:
  Placement() = default;

  /// rank i -> pool[i].
  [[nodiscard]] static Placement linear(std::int32_t nranks,
                                        std::span<const topo::NodeId> pool);

  /// Geometric strides through the pool (p = success probability of the
  /// stride draw; the paper uses 0.8).  Walks the pool modulo its size,
  /// skipping already-assigned slots.
  [[nodiscard]] static Placement clustered(std::int32_t nranks,
                                           std::span<const topo::NodeId> pool,
                                           stats::Rng& rng, double p = 0.8);

  /// Uniformly random distinct nodes in random order.
  [[nodiscard]] static Placement random(std::int32_t nranks,
                                        std::span<const topo::NodeId> pool,
                                        stats::Rng& rng);

  /// Dispatch on kind.
  [[nodiscard]] static Placement make(PlacementKind kind, std::int32_t nranks,
                                      std::span<const topo::NodeId> pool,
                                      stats::Rng& rng);

  /// Convenience pool = {0, ..., num_nodes-1}.
  [[nodiscard]] static std::vector<topo::NodeId> whole_machine(
      std::int32_t num_nodes);

  [[nodiscard]] std::int32_t num_ranks() const noexcept {
    return static_cast<std::int32_t>(nodes_.size());
  }
  [[nodiscard]] topo::NodeId node_of(std::int32_t rank) const {
    return nodes_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] std::span<const topo::NodeId> nodes() const noexcept {
    return nodes_;
  }

 private:
  explicit Placement(std::vector<topo::NodeId> nodes)
      : nodes_(std::move(nodes)) {}

  std::vector<topo::NodeId> nodes_;
};

}  // namespace hxsim::mpi
