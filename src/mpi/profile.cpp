#include "mpi/profile.hpp"

#include <stdexcept>

namespace hxsim::mpi {

CommProfile::CommProfile(std::int32_t nranks)
    : nranks_(nranks),
      cells_(static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks),
             0) {}

void CommProfile::record(std::int32_t src_rank, std::int32_t dst_rank,
                         std::int64_t bytes) {
  if (src_rank < 0 || src_rank >= nranks_ || dst_rank < 0 ||
      dst_rank >= nranks_)
    throw std::out_of_range("CommProfile::record: rank out of range");
  if (bytes < 0) throw std::invalid_argument("CommProfile: negative bytes");
  cells_[index(src_rank, dst_rank)] += bytes;
}

std::int64_t CommProfile::total_bytes() const {
  std::int64_t sum = 0;
  for (std::int64_t b : cells_) sum += b;
  return sum;
}

core::DemandMatrix CommProfile::to_demands(const Placement& placement,
                                           std::int32_t num_nodes) const {
  if (placement.num_ranks() != nranks_)
    throw std::invalid_argument("CommProfile::to_demands: rank mismatch");
  std::vector<std::int64_t> node_bytes(
      static_cast<std::size_t>(num_nodes) * static_cast<std::size_t>(num_nodes),
      0);
  for (std::int32_t s = 0; s < nranks_; ++s) {
    const topo::NodeId sn = placement.node_of(s);
    for (std::int32_t d = 0; d < nranks_; ++d) {
      const std::int64_t b = cells_[index(s, d)];
      if (b == 0) continue;
      const topo::NodeId dn = placement.node_of(d);
      if (sn == dn) continue;  // intra-node traffic never enters the fabric
      node_bytes[static_cast<std::size_t>(sn) *
                     static_cast<std::size_t>(num_nodes) +
                 static_cast<std::size_t>(dn)] += b;
    }
  }
  return core::DemandMatrix::from_bytes(num_nodes, node_bytes);
}

}  // namespace hxsim::mpi
