#include "mpi/collectives.hpp"

#include <algorithm>
#include <stdexcept>

namespace hxsim::mpi::collectives {

namespace {

void check_n(std::int32_t n) {
  if (n < 1) throw std::invalid_argument("collective: n must be >= 1");
}

std::int32_t ceil_log2(std::int32_t n) {
  std::int32_t k = 0;
  while ((std::int32_t{1} << k) < n) ++k;
  return k;
}

std::int32_t floor_pow2(std::int32_t n) {
  std::int32_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

/// Virtual rank helpers so any root works with root-0 algorithms.
std::int32_t from_vrank(std::int32_t v, std::int32_t root, std::int32_t n) {
  return (v + root) % n;
}

}  // namespace

Schedule barrier_dissemination(std::int32_t n) {
  check_n(n);
  Schedule s;
  for (std::int32_t k = 0; (std::int32_t{1} << k) < n; ++k) {
    Round round;
    const std::int32_t dist = std::int32_t{1} << k;
    for (std::int32_t i = 0; i < n; ++i)
      round.push_back(RankMsg{i, (i + dist) % n, 0});
    s.push_back(std::move(round));
  }
  return s;
}

Schedule bcast_binomial(std::int32_t n, std::int64_t bytes,
                        std::int32_t root) {
  check_n(n);
  Schedule s;
  for (std::int32_t t = 0; t < ceil_log2(n); ++t) {
    Round round;
    const std::int32_t dist = std::int32_t{1} << t;
    for (std::int32_t v = 0; v < dist && v + dist < n; ++v)
      round.push_back(RankMsg{from_vrank(v, root, n),
                              from_vrank(v + dist, root, n), bytes});
    s.push_back(std::move(round));
  }
  return s;
}

Schedule reduce_binomial(std::int32_t n, std::int64_t bytes,
                         std::int32_t root) {
  check_n(n);
  Schedule s;
  for (std::int32_t t = 0; t < ceil_log2(n); ++t) {
    Round round;
    const std::int32_t dist = std::int32_t{1} << t;
    for (std::int32_t v = dist; v < n; v += 2 * dist)
      round.push_back(RankMsg{from_vrank(v, root, n),
                              from_vrank(v - dist, root, n), bytes});
    s.push_back(std::move(round));
  }
  return s;
}

Schedule gather_binomial(std::int32_t n, std::int64_t bytes,
                         std::int32_t root) {
  check_n(n);
  Schedule s;
  for (std::int32_t t = 0; t < ceil_log2(n); ++t) {
    Round round;
    const std::int32_t dist = std::int32_t{1} << t;
    for (std::int32_t v = dist; v < n; v += 2 * dist) {
      // v forwards every block it has accumulated so far: its own subtree,
      // clipped at the communicator end.
      const std::int32_t blocks = std::min(dist, n - v);
      round.push_back(RankMsg{from_vrank(v, root, n),
                              from_vrank(v - dist, root, n),
                              bytes * blocks});
    }
    s.push_back(std::move(round));
  }
  return s;
}

Schedule gather_linear(std::int32_t n, std::int64_t bytes, std::int32_t root) {
  check_n(n);
  Schedule s;
  Round round;
  for (std::int32_t i = 0; i < n; ++i)
    if (i != root) round.push_back(RankMsg{i, root, bytes});
  if (!round.empty()) s.push_back(std::move(round));
  return s;
}

Schedule scatter_binomial(std::int32_t n, std::int64_t bytes,
                          std::int32_t root) {
  check_n(n);
  Schedule s;
  for (std::int32_t t = ceil_log2(n) - 1; t >= 0; --t) {
    Round round;
    const std::int32_t dist = std::int32_t{1} << t;
    for (std::int32_t v = 0; v < n; v += 2 * dist) {
      if (v + dist >= n) continue;
      const std::int32_t blocks = std::min(dist, n - (v + dist));
      round.push_back(RankMsg{from_vrank(v, root, n),
                              from_vrank(v + dist, root, n),
                              bytes * blocks});
    }
    s.push_back(std::move(round));
  }
  return s;
}

Schedule scatter_linear(std::int32_t n, std::int64_t bytes,
                        std::int32_t root) {
  check_n(n);
  Schedule s;
  Round round;
  for (std::int32_t i = 0; i < n; ++i)
    if (i != root) round.push_back(RankMsg{root, i, bytes});
  if (!round.empty()) s.push_back(std::move(round));
  return s;
}

Schedule allreduce_recursive_doubling(std::int32_t n, std::int64_t bytes) {
  check_n(n);
  Schedule s;
  if (n == 1) return s;
  const std::int32_t p2 = floor_pow2(n);
  const std::int32_t rem = n - p2;

  // Pre-step: fold the remainder in.  Ranks < 2*rem pair up; evens hand
  // their data to odds, odds act in the power-of-two phase.
  if (rem > 0) {
    Round round;
    for (std::int32_t v = 0; v < 2 * rem; v += 2)
      round.push_back(RankMsg{v, v + 1, bytes});
    s.push_back(std::move(round));
  }

  // Active rank v' in [0, p2): maps to odd ranks of the folded prefix then
  // the tail.
  auto active = [&](std::int32_t vp) {
    return vp < rem ? 2 * vp + 1 : vp + rem;
  };
  for (std::int32_t t = 0; (std::int32_t{1} << t) < p2; ++t) {
    Round round;
    const std::int32_t mask = std::int32_t{1} << t;
    for (std::int32_t vp = 0; vp < p2; ++vp) {
      const std::int32_t peer = vp ^ mask;
      round.push_back(RankMsg{active(vp), active(peer), bytes});
    }
    s.push_back(std::move(round));
  }

  // Post-step: odds return the result to their evens.
  if (rem > 0) {
    Round round;
    for (std::int32_t v = 0; v < 2 * rem; v += 2)
      round.push_back(RankMsg{v + 1, v, bytes});
    s.push_back(std::move(round));
  }
  return s;
}

Schedule allreduce_ring(std::int32_t n, std::int64_t bytes) {
  check_n(n);
  Schedule s;
  if (n == 1) return s;
  const std::int64_t chunk = (bytes + n - 1) / n;
  // Reduce-scatter then allgather, each n-1 neighbour rounds.
  for (std::int32_t phase = 0; phase < 2; ++phase) {
    for (std::int32_t r = 0; r < n - 1; ++r) {
      Round round;
      for (std::int32_t i = 0; i < n; ++i)
        round.push_back(RankMsg{i, (i + 1) % n, chunk});
      s.push_back(std::move(round));
    }
  }
  return s;
}

Schedule allgather_ring(std::int32_t n, std::int64_t bytes) {
  check_n(n);
  Schedule s;
  for (std::int32_t r = 0; r < n - 1; ++r) {
    Round round;
    for (std::int32_t i = 0; i < n; ++i)
      round.push_back(RankMsg{i, (i + 1) % n, bytes});
    s.push_back(std::move(round));
  }
  return s;
}

Schedule alltoall_pairwise(std::int32_t n, std::int64_t bytes) {
  check_n(n);
  Schedule s;
  for (std::int32_t r = 1; r < n; ++r) {
    Round round;
    for (std::int32_t i = 0; i < n; ++i)
      round.push_back(RankMsg{i, (i + r) % n, bytes});
    s.push_back(std::move(round));
  }
  return s;
}

Schedule pingpong(std::int64_t bytes, std::int32_t repeats) {
  Schedule s;
  for (std::int32_t r = 0; r < repeats; ++r) {
    s.push_back(Round{RankMsg{0, 1, bytes}});
    s.push_back(Round{RankMsg{1, 0, bytes}});
  }
  return s;
}

Schedule multi_pingpong(std::int32_t n, std::int64_t bytes,
                        std::int32_t repeats) {
  check_n(n);
  Schedule s;
  const std::int32_t half = n / 2;
  if (half == 0) return s;
  for (std::int32_t r = 0; r < repeats; ++r) {
    Round ping;
    Round pong;
    for (std::int32_t i = 0; i < half; ++i) {
      ping.push_back(RankMsg{i, i + half, bytes});
      pong.push_back(RankMsg{i + half, i, bytes});
    }
    s.push_back(std::move(ping));
    s.push_back(std::move(pong));
  }
  return s;
}

}  // namespace hxsim::mpi::collectives
