#include "mpi/cluster.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "core/lid_choice.hpp"
#include "core/quadrant.hpp"

namespace hxsim::mpi {

Cluster::Cluster(const topo::Topology& topo, routing::LidSpace lids,
                 routing::RouteResult route, PmlConfig pml,
                 sim::LinkModel link)
    : topo_(&topo),
      lids_(std::move(lids)),
      route_(std::move(route)),
      pml_(pml),
      link_(link) {
  // Table-1 selection is meaningful exactly when the paper's setup is in
  // place: multi-path PML + quadrant-grouped LMC=2 LID policy.
  parx_selection_ = pml_.kind == PmlKind::kBfo &&
                    lids_.group_stride() > 0 &&
                    lids_.lmc() == core::kParxLmc;
}

routing::Lid Cluster::select_dlid(topo::NodeId src, topo::NodeId dst,
                                  std::int64_t bytes, stats::Rng& rng) const {
  auto reachable = [&](routing::Lid lid) {
    return route_.tables.reachable(*topo_, lids_, src, lid);
  };

  if (!parx_selection_) {
    const routing::Lid base = lids_.base_lid(dst);
    if (reachable(base)) return base;
    for (std::int32_t x = 1; x < lids_.lids_per_terminal(); ++x)
      if (reachable(lids_.lid(dst, x))) return lids_.lid(dst, x);
    return routing::kInvalidLid;
  }

  // The bfo layer recovers quadrants from LID values (paper footnote 9:
  // q = lid / 1000) and applies Table 1.
  const std::int32_t src_q = lids_.group_of_lid(lids_.base_lid(src));
  const std::int32_t dst_q = lids_.group_of_lid(lids_.base_lid(dst));
  const core::MsgClass cls = core::classify_message(bytes);
  const core::LidChoice choice = core::parx_lid_options(src_q, dst_q, cls);

  // Random pick among the listed alternatives, then reachability fallback
  // over the remaining listed ones, then over all LIDs.
  const std::int8_t first =
      choice.count == 2
          ? choice.options[static_cast<std::size_t>(rng.next_below(2))]
          : choice.options[0];
  if (reachable(lids_.lid(dst, first))) return lids_.lid(dst, first);
  for (std::int8_t i = 0; i < choice.count; ++i) {
    const std::int8_t x = choice.options[static_cast<std::size_t>(i)];
    if (x != first && reachable(lids_.lid(dst, x))) return lids_.lid(dst, x);
  }
  for (std::int32_t x = 0; x < lids_.lids_per_terminal(); ++x)
    if (reachable(lids_.lid(dst, x))) return lids_.lid(dst, x);
  return routing::kInvalidLid;
}

std::optional<sim::NetMessage> Cluster::route_message(topo::NodeId src,
                                                      topo::NodeId dst,
                                                      std::int64_t bytes,
                                                      stats::Rng& rng) const {
  sim::NetMessage msg;
  msg.src = src;
  msg.dst = dst;
  msg.bytes = bytes;
  if (src == dst) return msg;  // loopback: no fabric involvement

  const routing::Lid dlid = select_dlid(src, dst, bytes, rng);
  if (dlid == routing::kInvalidLid) return std::nullopt;
  routing::ForwardingTables::Path path =
      route_.tables.path(*topo_, lids_, src, dlid);
  if (!path.ok) return std::nullopt;
  msg.path = std::move(path.channels);
  msg.vl = route_.vls.vl(topo_->attach_switch(src), dlid);
  return msg;
}

Transport::Transport(const Cluster& cluster, Placement placement,
                     std::uint64_t seed)
    : cluster_(&cluster),
      placement_(std::move(placement)),
      rng_(seed),
      flows_(cluster.topo(), cluster.link()) {}

double Transport::round_time(const Round& round) {
  const PmlConfig& pml = cluster_->pml();
  const sim::LinkModel& link = cluster_->link();

  // Route all messages; count per-endpoint concurrency for the software
  // serialization offsets.
  std::vector<sim::NetMessage> msgs;
  msgs.reserve(round.size());
  std::vector<double> offset(round.size(), 0.0);
  std::unordered_map<std::int32_t, std::int32_t> src_count;
  std::unordered_map<std::int32_t, std::int32_t> dst_count;
  for (std::size_t i = 0; i < round.size(); ++i) {
    const RankMsg& rm = round[i];
    const topo::NodeId sn = placement_.node_of(rm.src_rank);
    const topo::NodeId dn = placement_.node_of(rm.dst_rank);
    auto routed = cluster_->route_message(sn, dn, rm.bytes, rng_);
    if (!routed)
      throw std::runtime_error("Transport: unroutable message in round");
    const std::int32_t si = src_count[rm.src_rank]++;
    const std::int32_t di = dst_count[rm.dst_rank]++;
    offset[i] = static_cast<double>(std::max(si, di)) *
                pml.per_message_overhead;
    msgs.push_back(std::move(*routed));
  }

  // Fixed-rate network share for this round.
  std::vector<sim::Flow> flows;
  flows.reserve(msgs.size());
  for (const sim::NetMessage& m : msgs)
    flows.push_back(sim::Flow{m.path, m.bytes});
  const std::vector<double> rate = flows_.fair_rates(flows);

  double time = 0.0;
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    const sim::NetMessage& m = msgs[i];
    double t = offset[i] + pml.per_message_overhead +
               static_cast<double>(m.bytes) * pml.per_byte_overhead;
    t += static_cast<double>(m.path.size()) * link.hop_latency;
    if (m.bytes > 0 && !m.path.empty())
      t += static_cast<double>(m.bytes) / rate[i];
    time = std::max(time, t);
  }
  return time;
}

std::vector<double> Transport::execute_rounds(const Schedule& schedule) {
  std::vector<double> times;
  times.reserve(schedule.size());
  for (const Round& round : schedule) {
    if (round.empty()) {
      times.push_back(0.0);
      continue;
    }
    times.push_back(round_time(round));
  }
  return times;
}

double Transport::execute(const Schedule& schedule) {
  double total = 0.0;
  for (double t : execute_rounds(schedule)) total += t;
  return total;
}

void Transport::accumulate(const Schedule& schedule, CommProfile& profile) {
  for (const Round& round : schedule)
    for (const RankMsg& m : round)
      if (m.src_rank != m.dst_rank) profile.record(m.src_rank, m.dst_rank, m.bytes);
}

}  // namespace hxsim::mpi
