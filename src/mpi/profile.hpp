// Communication profiles (paper Section 3.2.2).
//
// The paper records per-rank-pair byte counts with a low-level IB profiler;
// the profile is rank-based and therefore "immune to changes in MPI rank
// placement, topology, and IB routing" (footnote 6).  The SAR-style
// interface then combines a profile with a concrete placement into the
// node-based demand matrix PARX ingests before job start.
#pragma once

#include <cstdint>
#include <vector>

#include "core/demand.hpp"
#include "mpi/placement.hpp"

namespace hxsim::mpi {

class CommProfile {
 public:
  CommProfile() = default;
  explicit CommProfile(std::int32_t nranks);

  [[nodiscard]] std::int32_t num_ranks() const noexcept { return nranks_; }
  [[nodiscard]] bool empty() const noexcept { return nranks_ == 0; }

  void record(std::int32_t src_rank, std::int32_t dst_rank,
              std::int64_t bytes);

  [[nodiscard]] std::int64_t bytes(std::int32_t src_rank,
                                   std::int32_t dst_rank) const {
    return cells_[index(src_rank, dst_rank)];
  }

  [[nodiscard]] std::int64_t total_bytes() const;

  /// The job-submission/OpenSM interface: resolve ranks to nodes through
  /// the placement and normalise to the 0..255 demand range.
  [[nodiscard]] core::DemandMatrix to_demands(const Placement& placement,
                                              std::int32_t num_nodes) const;

 private:
  [[nodiscard]] std::size_t index(std::int32_t s, std::int32_t d) const {
    return static_cast<std::size_t>(s) * static_cast<std::size_t>(nranks_) +
           static_cast<std::size_t>(d);
  }

  std::int32_t nranks_ = 0;
  std::vector<std::int64_t> cells_;
};

}  // namespace hxsim::mpi
