#include "mpi/placement.hpp"

#include <numeric>
#include <stdexcept>

namespace hxsim::mpi {

const char* to_string(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kLinear:
      return "linear";
    case PlacementKind::kClustered:
      return "clustered";
    case PlacementKind::kRandom:
      return "random";
  }
  return "?";
}

namespace {

void check(std::int32_t nranks, std::span<const topo::NodeId> pool) {
  if (nranks < 1) throw std::invalid_argument("Placement: nranks must be >= 1");
  if (static_cast<std::size_t>(nranks) > pool.size())
    throw std::invalid_argument("Placement: pool smaller than rank count");
}

}  // namespace

Placement Placement::linear(std::int32_t nranks,
                            std::span<const topo::NodeId> pool) {
  check(nranks, pool);
  return Placement(std::vector<topo::NodeId>(
      pool.begin(), pool.begin() + nranks));
}

Placement Placement::clustered(std::int32_t nranks,
                               std::span<const topo::NodeId> pool,
                               stats::Rng& rng, double p) {
  check(nranks, pool);
  const auto size = static_cast<std::int64_t>(pool.size());
  std::vector<char> taken(pool.size(), 0);
  std::vector<topo::NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(nranks));

  std::int64_t pos = 0;
  taken[0] = 1;
  nodes.push_back(pool[0]);
  for (std::int32_t r = 1; r < nranks; ++r) {
    const std::int64_t stride = 1 + rng.geometric(p);
    pos = (pos + stride) % size;
    while (taken[static_cast<std::size_t>(pos)]) pos = (pos + 1) % size;
    taken[static_cast<std::size_t>(pos)] = 1;
    nodes.push_back(pool[static_cast<std::size_t>(pos)]);
  }
  return Placement(std::move(nodes));
}

Placement Placement::random(std::int32_t nranks,
                            std::span<const topo::NodeId> pool,
                            stats::Rng& rng) {
  check(nranks, pool);
  std::vector<topo::NodeId> shuffled(pool.begin(), pool.end());
  rng.shuffle(shuffled);
  shuffled.resize(static_cast<std::size_t>(nranks));
  return Placement(std::move(shuffled));
}

Placement Placement::make(PlacementKind kind, std::int32_t nranks,
                          std::span<const topo::NodeId> pool,
                          stats::Rng& rng) {
  switch (kind) {
    case PlacementKind::kLinear:
      return linear(nranks, pool);
    case PlacementKind::kClustered:
      return clustered(nranks, pool, rng);
    case PlacementKind::kRandom:
      return random(nranks, pool, rng);
  }
  throw std::invalid_argument("Placement::make: bad kind");
}

std::vector<topo::NodeId> Placement::whole_machine(std::int32_t num_nodes) {
  std::vector<topo::NodeId> pool(static_cast<std::size_t>(num_nodes));
  std::iota(pool.begin(), pool.end(), 0);
  return pool;
}

}  // namespace hxsim::mpi
