// Cluster = topology + routing + LID space + PML: one "machine plane".
// Transport = cluster + placement: executes MPI-level communication
// schedules and reports wall time.
//
// Execution model (documented in DESIGN.md):
//  - a Schedule is a list of rounds; messages within a round start
//    concurrently, rounds are separated by dependency barriers (this is how
//    binomial trees, dissemination barriers, ring steps etc. behave);
//  - per-message software cost: PML overhead, serialized per endpoint (the
//    k-th concurrent message of a rank starts k overheads late);
//  - network cost: max-min fair share of the routed path's channels
//    (fixed-rate round model) plus per-hop latency;
//  - PARX/bfo picks the destination LID per Table 1 and message size, with
//    reachability fallback across the four LIDs (faulty fabrics).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mpi/placement.hpp"
#include "mpi/pml.hpp"
#include "mpi/profile.hpp"
#include "routing/engine.hpp"
#include "sim/flowsim.hpp"
#include "sim/network_model.hpp"
#include "stats/rng.hpp"

namespace hxsim::mpi {

/// One MPI point-to-point message between ranks.
struct RankMsg {
  std::int32_t src_rank = -1;
  std::int32_t dst_rank = -1;
  std::int64_t bytes = 0;
};

/// Messages that start concurrently.
using Round = std::vector<RankMsg>;
/// Dependency-ordered rounds.
using Schedule = std::vector<Round>;

class Cluster {
 public:
  /// The topology must outlive the cluster; routing results are owned.
  Cluster(const topo::Topology& topo, routing::LidSpace lids,
          routing::RouteResult route, PmlConfig pml,
          sim::LinkModel link = {});

  [[nodiscard]] const topo::Topology& topo() const noexcept { return *topo_; }
  [[nodiscard]] const routing::LidSpace& lids() const noexcept { return lids_; }
  [[nodiscard]] const routing::RouteResult& route() const noexcept {
    return route_;
  }
  [[nodiscard]] const PmlConfig& pml() const noexcept { return pml_; }
  [[nodiscard]] const sim::LinkModel& link() const noexcept { return link_; }
  [[nodiscard]] std::int32_t num_nodes() const noexcept {
    return topo_->num_terminals();
  }

  /// Destination LID for a (src, dst, size) message: Table 1 on bfo with a
  /// quadrant-grouped LMC=2 space, LID0 otherwise.  Falls back across the
  /// node's LIDs when the preferred one is unreachable; kInvalidLid if no
  /// LID routes.
  [[nodiscard]] routing::Lid select_dlid(topo::NodeId src, topo::NodeId dst,
                                         std::int64_t bytes,
                                         stats::Rng& rng) const;

  /// Fully routed network message (empty path for src == dst);
  /// std::nullopt when unroutable.
  [[nodiscard]] std::optional<sim::NetMessage> route_message(
      topo::NodeId src, topo::NodeId dst, std::int64_t bytes,
      stats::Rng& rng) const;

 private:
  const topo::Topology* topo_;
  routing::LidSpace lids_;
  routing::RouteResult route_;
  PmlConfig pml_;
  sim::LinkModel link_;
  bool parx_selection_ = false;
};

class Transport {
 public:
  /// The cluster must outlive the transport.
  Transport(const Cluster& cluster, Placement placement, std::uint64_t seed);

  [[nodiscard]] const Placement& placement() const noexcept {
    return placement_;
  }

  /// Executes the schedule; returns total time [s].
  /// Throws std::runtime_error if any message is unroutable.
  [[nodiscard]] double execute(const Schedule& schedule);

  /// Per-round completion times (diagnostics / tests).
  [[nodiscard]] std::vector<double> execute_rounds(const Schedule& schedule);

  /// Records the schedule's rank-pair byte counts (the IB-profiler stand-in;
  /// no simulation involved).
  static void accumulate(const Schedule& schedule, CommProfile& profile);

 private:
  [[nodiscard]] double round_time(const Round& round);

  const Cluster* cluster_;
  Placement placement_;
  stats::Rng rng_;
  sim::FlowSim flows_;
};

}  // namespace hxsim::mpi
