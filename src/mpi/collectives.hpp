// MPI collective communication algorithms as message schedules.
//
// Each builder returns the round-structured point-to-point decomposition of
// a collective, mirroring the algorithms of Open MPI 1.10's tuned component
// (the paper's MPI).  Schedules are pure data: the same schedule runs on
// any cluster/placement, and can be accumulated into a CommProfile -- which
// is exactly why the paper's profiles are placement- and topology-immune.
//
// Conventions: `bytes` is the per-rank payload of the operation (the IMB
// message size); rounds are dependency barriers; rank counts need not be
// powers of two.
#pragma once

#include <cstdint>

#include "mpi/cluster.hpp"

namespace hxsim::mpi::collectives {

/// Dissemination barrier: ceil(log2 n) rounds of zero-byte messages,
/// rank i -> (i + 2^k) mod n.
[[nodiscard]] Schedule barrier_dissemination(std::int32_t n);

/// Binomial-tree broadcast from `root`.
[[nodiscard]] Schedule bcast_binomial(std::int32_t n, std::int64_t bytes,
                                      std::int32_t root = 0);

/// Binomial-tree reduction to `root` (full-size messages per edge).
[[nodiscard]] Schedule reduce_binomial(std::int32_t n, std::int64_t bytes,
                                       std::int32_t root = 0);

/// Binomial gather to `root`: subtree blocks aggregate toward the root, so
/// late rounds carry multiples of `bytes`.
[[nodiscard]] Schedule gather_binomial(std::int32_t n, std::int64_t bytes,
                                       std::int32_t root = 0);

/// Linear gather: every rank sends its block to the root in one round
/// (Open MPI's basic algorithm; an n-to-1 incast).
[[nodiscard]] Schedule gather_linear(std::int32_t n, std::int64_t bytes,
                                     std::int32_t root = 0);

/// Binomial scatter from `root` (reverse of gather_binomial).
[[nodiscard]] Schedule scatter_binomial(std::int32_t n, std::int64_t bytes,
                                        std::int32_t root = 0);

/// Linear scatter: root sends each rank its block in one round.
[[nodiscard]] Schedule scatter_linear(std::int32_t n, std::int64_t bytes,
                                      std::int32_t root = 0);

/// Recursive-doubling allreduce with the MPICH pre/post remainder steps
/// for non-power-of-two rank counts.
[[nodiscard]] Schedule allreduce_recursive_doubling(std::int32_t n,
                                                    std::int64_t bytes);

/// Ring allreduce (reduce-scatter + allgather), 2(n-1) rounds of
/// ceil(bytes/n) chunks -- Baidu's DeepBench algorithm.
[[nodiscard]] Schedule allreduce_ring(std::int32_t n, std::int64_t bytes);

/// Ring allgather: n-1 rounds forwarding `bytes` blocks to (i+1) mod n.
[[nodiscard]] Schedule allgather_ring(std::int32_t n, std::int64_t bytes);

/// Pairwise-exchange alltoall: n-1 rounds, rank i -> (i + r) mod n.
[[nodiscard]] Schedule alltoall_pairwise(std::int32_t n, std::int64_t bytes);

/// Two-rank ping-pong (2 rounds x `repeats`).
[[nodiscard]] Schedule pingpong(std::int64_t bytes, std::int32_t repeats = 1);

/// IMB Multi-PingPong: n/2 concurrent pairs (i, i + n/2).
[[nodiscard]] Schedule multi_pingpong(std::int32_t n, std::int64_t bytes,
                                      std::int32_t repeats = 1);

}  // namespace hxsim::mpi::collectives
