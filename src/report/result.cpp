#include "report/result.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hxsim::report {

namespace {

constexpr std::string_view kSchema = "hxsim-repro v1";

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 passes through verbatim
        }
    }
  }
  out.push_back('"');
}

/// Recursive-descent parser for exactly the dialect to_json() emits.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ResultStore parse_store() {
    expect('{');
    ResultStore store;
    bool first = true;
    while (!try_consume('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "schema") {
        if (parse_string() != kSchema)
          fail("unsupported schema (expected 'hxsim-repro v1')");
      } else if (key == "mode") {
        const std::string mode = parse_string();
        if (mode == "full") store.mode = RunMode::kFull;
        else if (mode == "quick") store.mode = RunMode::kQuick;
        else fail("mode must be 'full' or 'quick'");
      } else if (key == "seed") {
        store.seed = static_cast<std::uint64_t>(parse_number());
      } else if (key == "experiments") {
        expect('[');
        while (!try_consume(']')) {
          if (!store.experiments.empty()) expect(',');
          store.experiments.push_back(parse_experiment());
        }
      } else {
        fail("unknown store key '" + key + "'");
      }
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after store object");
    return store;
  }

 private:
  ResultSet parse_experiment() {
    expect('{');
    ResultSet rs;
    bool first = true;
    while (!try_consume('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "id") rs.id = parse_string();
      else if (key == "title") rs.title = parse_string();
      else if (key == "paper_ref") rs.paper_ref = parse_string();
      else if (key == "metrics") {
        expect('{');
        bool m_first = true;
        while (!try_consume('}')) {
          if (!m_first) expect(',');
          m_first = false;
          const std::string name = parse_string();
          expect(':');
          rs.metrics.emplace_back(name, parse_number());
        }
      } else if (key == "tables") {
        expect('[');
        while (!try_consume(']')) {
          if (!rs.tables.empty()) expect(',');
          rs.tables.push_back(parse_table());
        }
      } else {
        fail("unknown experiment key '" + key + "'");
      }
    }
    if (rs.id.empty()) fail("experiment without id");
    return rs;
  }

  ResultTable parse_table() {
    expect('{');
    ResultTable t;
    bool first = true;
    while (!try_consume('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "id") t.id = parse_string();
      else if (key == "columns") t.columns = parse_string_array();
      else if (key == "rows") {
        expect('[');
        while (!try_consume(']')) {
          if (!t.rows.empty()) expect(',');
          t.rows.push_back(parse_string_array());
        }
      } else {
        fail("unknown table key '" + key + "'");
      }
    }
    for (const auto& row : t.rows)
      if (row.size() != t.columns.size())
        fail("table '" + t.id + "' row width != column count");
    return t;
  }

  std::vector<std::string> parse_string_array() {
    expect('[');
    std::vector<std::string> out;
    while (!try_consume(']')) {
      if (!out.empty()) expect(',');
      out.push_back(parse_string());
    }
    return out;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          if (code > 0x7f) fail("\\u escape above 0x7f not supported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("unsupported escape");
      }
    }
    fail("unterminated string");
    return out;  // unreachable
  }

  double parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected number");
    const std::string token(text_.substr(start, pos_ - start));
    try {
      std::size_t used = 0;
      const double v = std::stod(token, &used);
      if (used != token.size()) fail("malformed number '" + token + "'");
      return v;
    } catch (const std::logic_error&) {
      fail("malformed number '" + token + "'");
    }
    return 0.0;  // unreachable
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("REPRO.json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

void ResultTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns.size())
    throw std::invalid_argument("table '" + id + "': row has " +
                                std::to_string(cells.size()) + " cells, " +
                                std::to_string(columns.size()) + " columns");
  rows.push_back(std::move(cells));
}

void ResultSet::set(std::string_view name, double value) {
  for (auto& [n, v] : metrics)
    if (n == name) {
      v = value;
      return;
    }
  metrics.emplace_back(std::string(name), value);
}

const double* ResultSet::find(std::string_view name) const {
  for (const auto& [n, v] : metrics)
    if (n == name) return &v;
  return nullptr;
}

ResultTable& ResultSet::table(std::string_view table_id,
                              std::vector<std::string> columns) {
  for (auto& t : tables)
    if (t.id == table_id) {
      if (t.columns != columns)
        throw std::invalid_argument("table '" + std::string(table_id) +
                                    "' re-requested with different columns");
      return t;
    }
  tables.push_back(ResultTable{std::string(table_id), std::move(columns), {}});
  return tables.back();
}

std::string_view to_string(RunMode mode) {
  return mode == RunMode::kQuick ? "quick" : "full";
}

const ResultSet* ResultStore::find(std::string_view id) const {
  for (const auto& rs : experiments)
    if (rs.id == id) return &rs;
  return nullptr;
}

const double* ResultStore::metric(std::string_view experiment,
                                  std::string_view name) const {
  const ResultSet* rs = find(experiment);
  return rs ? rs->find(name) : nullptr;
}

std::string format_metric(double value) {
  if (!std::isfinite(value)) return value > 0 ? "inf" : (value < 0 ? "-inf" : "nan");
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  return buf;
}

std::string ResultStore::to_json() const {
  std::string out;
  out += "{\n  \"schema\": ";
  append_escaped(out, kSchema);
  out += ",\n  \"mode\": ";
  append_escaped(out, to_string(mode));
  out += ",\n  \"seed\": " + std::to_string(seed);
  out += ",\n  \"experiments\": [";
  for (std::size_t e = 0; e < experiments.size(); ++e) {
    const ResultSet& rs = experiments[e];
    out += e ? ",\n    {" : "\n    {";
    out += "\n      \"id\": ";
    append_escaped(out, rs.id);
    out += ",\n      \"title\": ";
    append_escaped(out, rs.title);
    out += ",\n      \"paper_ref\": ";
    append_escaped(out, rs.paper_ref);
    out += ",\n      \"metrics\": {";
    for (std::size_t m = 0; m < rs.metrics.size(); ++m) {
      out += m ? ",\n        " : "\n        ";
      append_escaped(out, rs.metrics[m].first);
      out += ": " + format_metric(rs.metrics[m].second);
    }
    out += rs.metrics.empty() ? "}" : "\n      }";
    out += ",\n      \"tables\": [";
    for (std::size_t t = 0; t < rs.tables.size(); ++t) {
      const ResultTable& tab = rs.tables[t];
      out += t ? ",\n        {" : "\n        {";
      out += "\"id\": ";
      append_escaped(out, tab.id);
      out += ",\n         \"columns\": [";
      for (std::size_t c = 0; c < tab.columns.size(); ++c) {
        if (c) out += ", ";
        append_escaped(out, tab.columns[c]);
      }
      out += "],\n         \"rows\": [";
      for (std::size_t r = 0; r < tab.rows.size(); ++r) {
        out += r ? ",\n           [" : "\n           [";
        for (std::size_t c = 0; c < tab.rows[r].size(); ++c) {
          if (c) out += ", ";
          append_escaped(out, tab.rows[r][c]);
        }
        out += "]";
      }
      out += tab.rows.empty() ? "]" : "\n         ]";
      out += "}";
    }
    out += rs.tables.empty() ? "]" : "\n      ]";
    out += "\n    }";
  }
  out += experiments.empty() ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

void ResultStore::write_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot write " + path);
  f << to_json();
  if (!f.good()) throw std::runtime_error("write failed: " + path);
}

ResultStore ResultStore::parse_json(std::string_view text) {
  return Parser(text).parse_store();
}

ResultStore ResultStore::read_json(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot read " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_json(ss.str());
}

}  // namespace hxsim::report
