// Machine-checked claims: the paper's (and the repo's) quantitative
// statements as tolerance-banded assertions over ResultStore metrics.
//
// Claims live in committed TSV tables under claims/ (one claim per line,
// tab-separated, '#' comments), so the expectations are data, reviewed in
// diffs, not prose.  bench/repro_pipeline loads them, evaluates every
// claim applicable to the run mode against the freshly measured store,
// and exits non-zero listing each violation as
//   measured <metric> = x, expected <direction> <expected> (band b).
//
// Direction semantics (band >= 0 in every case):
//   ge      measured >= expected - band   (at least, with slack)
//   le      measured <= expected + band   (at most, with slack)
//   within  |measured - expected| <= band (two-sided)
//
// Scope gates which run modes a claim binds in: `both` claims must hold
// for quick and full runs (scale-invariant directions and ratios),
// `full`/`quick` claims bind only to stores of that mode (absolute
// paper-scale numbers vs. CI-sized expectations).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "report/result.hpp"

namespace hxsim::report {

enum class Direction : std::uint8_t { kAtLeast, kAtMost, kWithin };
enum class Scope : std::uint8_t { kBoth, kFull, kQuick };

[[nodiscard]] std::string_view to_string(Direction direction);
[[nodiscard]] std::string_view to_string(Scope scope);

struct Claim {
  std::string id;          // unique, e.g. "fig1_parx_recovers_bandwidth"
  std::string experiment;  // registry id the metric belongs to
  std::string metric;      // ResultSet metric name
  Direction direction = Direction::kWithin;
  double expected = 0.0;
  double band = 0.0;       // non-negative tolerance
  Scope scope = Scope::kBoth;
  std::string paper_ref;   // section/figure the expectation comes from
  std::string note;        // free text (no tabs)
};

/// True iff `measured` satisfies the claim's band.
[[nodiscard]] bool claim_holds(const Claim& claim, double measured);

/// True iff the claim binds to a store of `mode`.
[[nodiscard]] bool claim_applies(const Claim& claim, RunMode mode);

struct Violation {
  Claim claim;
  double measured = 0.0;
  bool metric_missing = false;  // experiment or metric absent from store

  /// One line: claim id, metric, measured vs expected band, paper ref.
  [[nodiscard]] std::string message() const;
};

/// Parses claim lines.  Fields are tab-separated:
///   id  experiment  metric  direction  expected  band  scope  paper_ref  note
/// (note optional).  Blank lines and lines starting with '#' are skipped.
/// Throws std::runtime_error naming the offending line.
[[nodiscard]] std::vector<Claim> parse_claims(std::string_view text);

/// Inverse of parse_claims: one TSV line per claim, round-trip stable.
[[nodiscard]] std::string format_claims(const std::vector<Claim>& claims);

/// Loads and concatenates every *.tsv under `dir` (sorted by filename).
/// Throws std::runtime_error if the directory is missing, empty of .tsv
/// files, or any file fails to parse; duplicate claim ids across files
/// are an error too.
[[nodiscard]] std::vector<Claim> load_claims_dir(const std::string& dir);

/// Evaluates every claim applicable to store.mode; a claim whose
/// experiment or metric is absent from the store is itself a violation
/// (registry drift is exactly what this engine exists to catch).
[[nodiscard]] std::vector<Violation> check_claims(
    const std::vector<Claim>& claims, const ResultStore& store);

}  // namespace hxsim::report
