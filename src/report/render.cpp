#include "report/render.hpp"

#include <stdexcept>

namespace hxsim::report {

namespace {

constexpr std::string_view kBegin = "<!-- report:begin ";
constexpr std::string_view kBeginClose = " -->";
constexpr std::string_view kEnd = "<!-- report:end -->";

std::string escape_cell(std::string_view cell) {
  std::string out;
  out.reserve(cell.size());
  for (const char c : cell) {
    if (c == '|' || c == '*' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string render_markdown_table(const ResultTable& table) {
  std::string out;
  out += "|";
  for (const std::string& col : table.columns)
    out += " " + escape_cell(col) + " |";
  out += "\n|";
  for (std::size_t c = 0; c < table.columns.size(); ++c) out += "---|";
  out += "\n";
  for (const auto& row : table.rows) {
    out += "|";
    for (const std::string& cell : row) out += " " + escape_cell(cell) + " |";
    out += "\n";
  }
  return out;
}

std::string render_experiments_md(std::string_view markdown,
                                  const ResultStore& store,
                                  RenderStats* stats) {
  std::string out;
  out.reserve(markdown.size());
  std::size_t pos = 0;
  RenderStats local;
  while (true) {
    const std::size_t begin = markdown.find(kBegin, pos);
    if (begin == std::string_view::npos) {
      // A stray end marker outside any block is drift worth rejecting.
      if (markdown.find(kEnd, pos) != std::string_view::npos)
        throw std::runtime_error(
            "report:end marker without a matching report:begin");
      out += markdown.substr(pos);
      break;
    }
    const std::size_t id_start = begin + kBegin.size();
    const std::size_t id_end = markdown.find(kBeginClose, id_start);
    if (id_end == std::string_view::npos)
      throw std::runtime_error("unterminated report:begin marker");
    const std::string block_id(markdown.substr(id_start, id_end - id_start));
    const std::size_t dot = block_id.find('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 == block_id.size() ||
        block_id.find_first_of(" \t\n") != std::string::npos)
      throw std::runtime_error("malformed report block id '" + block_id +
                               "' (want <experiment>.<table>)");
    const std::size_t content_start = id_end + kBeginClose.size();
    const std::size_t end = markdown.find(kEnd, content_start);
    if (end == std::string_view::npos)
      throw std::runtime_error("report block '" + block_id +
                               "' has no report:end marker");
    if (const std::size_t nested = markdown.find(kBegin, content_start);
        nested != std::string_view::npos && nested < end)
      throw std::runtime_error("nested report:begin inside block '" +
                               block_id + "'");

    const std::string experiment_id = block_id.substr(0, dot);
    const std::string table_id = block_id.substr(dot + 1);
    const ResultSet* rs = store.find(experiment_id);
    if (rs == nullptr)
      throw std::runtime_error("block '" + block_id + "': experiment '" +
                               experiment_id +
                               "' is not in the result store");
    const ResultTable* table = nullptr;
    for (const auto& t : rs->tables)
      if (t.id == table_id) table = &t;
    if (table == nullptr)
      throw std::runtime_error("block '" + block_id + "': experiment '" +
                               experiment_id + "' has no table '" + table_id +
                               "'");

    const std::string_view old_content =
        markdown.substr(content_start, end - content_start);
    const std::string new_content =
        "\n" + render_markdown_table(*table);
    ++local.blocks;
    if (old_content != new_content) ++local.changed;

    out += markdown.substr(pos, content_start - pos);
    out += new_content;
    out += kEnd;
    pos = end + kEnd.size();
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace hxsim::report
