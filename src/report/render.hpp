// EXPERIMENTS.md renderer: the per-figure result tables of the document
// are generated from a ResultStore instead of typed by hand, so the doc
// is provably in sync with the code and the committed REPRO.json.
//
// A generated block is delimited by HTML-comment markers:
//
//   <!-- report:begin fig1_mpigraph.planes -->
//   | plane | mean GiB/s | ... |     <- regenerated, never hand-edited
//   <!-- report:end -->
//
// where `fig1_mpigraph` is an experiment id and `planes` one of its
// ResultTable ids.  render_experiments_md() replaces the content of every
// block with the markdown rendering of the referenced table and leaves
// all other bytes untouched.  Rendering is deterministic, so a second
// render of its own output is byte-identical (idempotence is tested).
#pragma once

#include <string>
#include <string_view>

#include "report/result.hpp"

namespace hxsim::report {

struct RenderStats {
  int blocks = 0;    // markers found and regenerated
  int changed = 0;   // blocks whose content differed from the input
};

/// Renders one ResultTable as a GitHub-flavoured markdown pipe table
/// (cells escape '|', '*' and '\').
[[nodiscard]] std::string render_markdown_table(const ResultTable& table);

/// Regenerates every marked block of `markdown` from `store`.  Throws
/// std::runtime_error on an unterminated block, a nested begin, a
/// malformed block id, or a block whose experiment/table is absent from
/// the store (that absence *is* the doc drifting from the code).
[[nodiscard]] std::string render_experiments_md(std::string_view markdown,
                                                const ResultStore& store,
                                                RenderStats* stats = nullptr);

}  // namespace hxsim::report
