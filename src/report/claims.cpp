#include "report/claims.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace hxsim::report {

namespace {

std::vector<std::string> split_tabs(std::string_view line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.emplace_back(line.substr(start));
      return fields;
    }
    fields.emplace_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

Direction parse_direction(const std::string& s, int line_no) {
  if (s == "ge") return Direction::kAtLeast;
  if (s == "le") return Direction::kAtMost;
  if (s == "within") return Direction::kWithin;
  throw std::runtime_error("claims line " + std::to_string(line_no) +
                           ": direction must be ge|le|within, got '" + s +
                           "'");
}

Scope parse_scope(const std::string& s, int line_no) {
  if (s == "both") return Scope::kBoth;
  if (s == "full") return Scope::kFull;
  if (s == "quick") return Scope::kQuick;
  throw std::runtime_error("claims line " + std::to_string(line_no) +
                           ": scope must be both|full|quick, got '" + s +
                           "'");
}

double parse_double(const std::string& s, const char* what, int line_no) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size() || !std::isfinite(v))
      throw std::invalid_argument(s);
    return v;
  } catch (const std::logic_error&) {
    throw std::runtime_error("claims line " + std::to_string(line_no) +
                             ": malformed " + what + " '" + s + "'");
  }
}

}  // namespace

std::string_view to_string(Direction direction) {
  switch (direction) {
    case Direction::kAtLeast: return "ge";
    case Direction::kAtMost: return "le";
    case Direction::kWithin: return "within";
  }
  return "?";
}

std::string_view to_string(Scope scope) {
  switch (scope) {
    case Scope::kBoth: return "both";
    case Scope::kFull: return "full";
    case Scope::kQuick: return "quick";
  }
  return "?";
}

bool claim_holds(const Claim& claim, double measured) {
  if (!std::isfinite(measured)) return false;
  switch (claim.direction) {
    case Direction::kAtLeast: return measured >= claim.expected - claim.band;
    case Direction::kAtMost: return measured <= claim.expected + claim.band;
    case Direction::kWithin:
      return std::abs(measured - claim.expected) <= claim.band;
  }
  return false;
}

bool claim_applies(const Claim& claim, RunMode mode) {
  switch (claim.scope) {
    case Scope::kBoth: return true;
    case Scope::kFull: return mode == RunMode::kFull;
    case Scope::kQuick: return mode == RunMode::kQuick;
  }
  return false;
}

std::string Violation::message() const {
  std::string out = claim.id + ": ";
  if (metric_missing) {
    out += "metric " + claim.experiment + "." + claim.metric +
           " is missing from the result store (registry drift?)";
  } else {
    out += "measured " + claim.experiment + "." + claim.metric + " = " +
           format_metric(measured) + ", expected " +
           std::string(to_string(claim.direction)) + " " +
           format_metric(claim.expected) + " (band " +
           format_metric(claim.band) + ")";
  }
  if (!claim.paper_ref.empty()) out += " [" + claim.paper_ref + "]";
  return out;
}

std::vector<Claim> parse_claims(std::string_view text) {
  std::vector<Claim> claims;
  int line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') {
      if (end == text.size()) break;
      continue;
    }
    const std::vector<std::string> f = split_tabs(line);
    if (f.size() < 8 || f.size() > 9)
      throw std::runtime_error(
          "claims line " + std::to_string(line_no) + ": expected 8-9 "
          "tab-separated fields (id experiment metric direction expected "
          "band scope paper_ref [note]), got " + std::to_string(f.size()));
    Claim c;
    c.id = f[0];
    c.experiment = f[1];
    c.metric = f[2];
    c.direction = parse_direction(f[3], line_no);
    c.expected = parse_double(f[4], "expected", line_no);
    c.band = parse_double(f[5], "band", line_no);
    c.scope = parse_scope(f[6], line_no);
    c.paper_ref = f[7];
    if (f.size() == 9) c.note = f[8];
    if (c.id.empty() || c.experiment.empty() || c.metric.empty())
      throw std::runtime_error("claims line " + std::to_string(line_no) +
                               ": id/experiment/metric must be non-empty");
    if (c.band < 0.0)
      throw std::runtime_error("claims line " + std::to_string(line_no) +
                               ": band must be non-negative");
    claims.push_back(std::move(c));
    if (end == text.size()) break;
  }
  return claims;
}

std::string format_claims(const std::vector<Claim>& claims) {
  std::string out;
  for (const Claim& c : claims) {
    out += c.id + "\t" + c.experiment + "\t" + c.metric + "\t" +
           std::string(to_string(c.direction)) + "\t" +
           format_metric(c.expected) + "\t" + format_metric(c.band) + "\t" +
           std::string(to_string(c.scope)) + "\t" + c.paper_ref;
    if (!c.note.empty()) out += "\t" + c.note;
    out += "\n";
  }
  return out;
}

std::vector<Claim> load_claims_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir))
    throw std::runtime_error("claims directory not found: " + dir);
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.is_regular_file() && entry.path().extension() == ".tsv")
      files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  if (files.empty())
    throw std::runtime_error("no .tsv claim tables under " + dir);

  std::vector<Claim> claims;
  std::set<std::string> seen;
  for (const fs::path& path : files) {
    std::ifstream f(path, std::ios::binary);
    if (!f) throw std::runtime_error("cannot read " + path.string());
    std::ostringstream ss;
    ss << f.rdbuf();
    std::vector<Claim> parsed;
    try {
      parsed = parse_claims(ss.str());
    } catch (const std::runtime_error& e) {
      throw std::runtime_error(path.string() + ": " + e.what());
    }
    for (Claim& c : parsed) {
      if (!seen.insert(c.id).second)
        throw std::runtime_error("duplicate claim id '" + c.id + "' in " +
                                 path.string());
      claims.push_back(std::move(c));
    }
  }
  return claims;
}

std::vector<Violation> check_claims(const std::vector<Claim>& claims,
                                    const ResultStore& store) {
  std::vector<Violation> violations;
  for (const Claim& claim : claims) {
    if (!claim_applies(claim, store.mode)) continue;
    const double* measured = store.metric(claim.experiment, claim.metric);
    if (measured == nullptr) {
      violations.push_back(Violation{claim, 0.0, /*metric_missing=*/true});
    } else if (!claim_holds(claim, *measured)) {
      violations.push_back(Violation{claim, *measured, false});
    }
  }
  return violations;
}

}  // namespace hxsim::report
