#include "report/experiment.hpp"

#include <stdexcept>

namespace hxsim::report {

void Registry::add(Experiment experiment) {
  if (experiment.id.empty())
    throw std::invalid_argument("experiment with empty id");
  if (!experiment.run)
    throw std::invalid_argument("experiment '" + experiment.id +
                                "' has no run function");
  if (find(experiment.id) != nullptr)
    throw std::invalid_argument("duplicate experiment id '" + experiment.id +
                                "'");
  experiments_.push_back(std::move(experiment));
}

const Experiment* Registry::find(std::string_view id) const {
  for (const auto& e : experiments_)
    if (e.id == id) return &e;
  return nullptr;
}

ResultSet Registry::run(const Experiment& experiment,
                        const Options& options) const {
  ResultSet rs = experiment.run(options);
  rs.id = experiment.id;
  rs.title = experiment.title;
  rs.paper_ref = experiment.paper_ref;
  return rs;
}

}  // namespace hxsim::report
