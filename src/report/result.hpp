// The shared result schema of the reproduction pipeline.
//
// Every registered experiment (see experiment.hpp) returns a ResultSet:
// named scalar metrics (the machine-checked surface -- claims.hpp asserts
// tolerance bands against them) plus pre-formatted string tables (the
// human-readable surface -- render.hpp splices them into EXPERIMENTS.md).
// A ResultStore bundles one pipeline run of many experiments and
// serialises to/from REPRO.json, the committed result store that keeps
// code, claims and docs provably in sync.
//
// The JSON dialect is the subset this writer emits (objects, arrays,
// strings, finite numbers); parse_json() accepts exactly that subset and
// round-trips bit-stable: same store -> same bytes -> same store.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hxsim::report {

/// Rectangular table of pre-formatted cells, ready for markdown.
struct ResultTable {
  std::string id;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  /// Throws std::invalid_argument if the cell count != column count.
  void add_row(std::vector<std::string> cells);
};

/// One experiment's structured output.
struct ResultSet {
  std::string id;         // registry id == bench binary name
  std::string title;      // one line, e.g. "Fig. 1 mpiGraph heatmaps"
  std::string paper_ref;  // e.g. "Fig. 1", "SS2.2"

  std::vector<std::pair<std::string, double>> metrics;
  std::vector<ResultTable> tables;

  /// Sets (or overwrites) a named scalar metric.
  void set(std::string_view name, double value);

  /// nullptr when absent.
  [[nodiscard]] const double* find(std::string_view name) const;

  /// Creates (or returns the existing) table.  Re-requesting an existing
  /// id with different columns throws std::invalid_argument.
  ResultTable& table(std::string_view id, std::vector<std::string> columns);
};

enum class RunMode : std::uint8_t { kFull, kQuick };

[[nodiscard]] std::string_view to_string(RunMode mode);

/// One pipeline run: every experiment's ResultSet plus the run context.
struct ResultStore {
  RunMode mode = RunMode::kFull;
  std::uint64_t seed = 1;
  std::vector<ResultSet> experiments;

  [[nodiscard]] const ResultSet* find(std::string_view id) const;

  /// nullptr when the experiment or the metric is absent.
  [[nodiscard]] const double* metric(std::string_view experiment,
                                     std::string_view name) const;

  [[nodiscard]] std::string to_json() const;
  void write_json(const std::string& path) const;  // throws on I/O error

  /// Inverse of to_json().  Throws std::runtime_error with a position on
  /// malformed input or a schema mismatch.
  static ResultStore parse_json(std::string_view text);
  static ResultStore read_json(const std::string& path);
};

/// Shared number formatting: shortest %.10g form, stable across runs for
/// identical doubles (REPRO.json and claims reports both use it).
[[nodiscard]] std::string format_metric(double value);

}  // namespace hxsim::report
