// Experiment registry: the paper's figures and studies as enumerable,
// programmatically runnable units.
//
// A registered Experiment is the *core* of one bench binary: the bench's
// main() becomes a thin wrapper that runs its experiment with parsed
// options, and bench/repro_pipeline can run the whole registry in one
// process, collect every ResultSet into a ResultStore (REPRO.json), check
// the committed claims/ tables against it (claims.hpp) and regenerate the
// EXPERIMENTS.md result tables (render.hpp).
//
// Experiments print their human-readable report to stdout exactly as the
// standalone benches always did; the ResultSet is the machine-readable
// subset of the same run.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "report/result.hpp"

namespace hxsim::report {

/// The option surface every bench binary already exposes (bench_common's
/// BenchArgs, decoupled from the CLI so experiments are library-callable).
struct Options {
  bool quick = false;
  std::uint64_t seed = 1;
  std::int32_t reps = 3;
  std::int32_t threads = 0;  // 0: hardware_concurrency
  std::optional<std::string> csv_path;
  std::optional<std::string> trace_path;
};

struct Experiment {
  std::string id;         // == the bench binary name, e.g. "fig1_mpigraph"
  std::string title;      // one-line purpose
  std::string paper_ref;  // figure/table/section reproduced
  std::function<ResultSet(const Options&)> run;
};

class Registry {
 public:
  /// Throws std::invalid_argument on a duplicate or empty id.
  void add(Experiment experiment);

  [[nodiscard]] const Experiment* find(std::string_view id) const;
  [[nodiscard]] const std::vector<Experiment>& experiments() const noexcept {
    return experiments_;
  }

  /// Runs `experiment` and stamps id/title/paper_ref into the ResultSet
  /// (so individual run() bodies cannot drift from their registration).
  [[nodiscard]] ResultSet run(const Experiment& experiment,
                              const Options& options) const;

 private:
  std::vector<Experiment> experiments_;
};

}  // namespace hxsim::report
