// Whisker-plot summary statistics.
//
// The paper reports min / max / median / 25th / 75th percentile over ten runs
// per configuration (Figures 5 and 6).  Summary computes exactly those, plus
// mean, using the linear-interpolation quantile definition (type 7, the
// gnuplot/numpy default the paper's plots were produced with).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace hxsim::stats {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
  double mean = 0.0;

  /// "min=.. q25=.. med=.. q75=.. max=.." with the given precision.
  [[nodiscard]] std::string to_string(int decimals = 3) const;
};

/// Summarise a sample; returns a zeroed Summary for an empty input.
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Linear-interpolation quantile of a sample, q in [0, 1].
/// Returns 0 for an empty sample.
[[nodiscard]] double quantile(std::span<const double> values, double q);

}  // namespace hxsim::stats
