// Plain-text table rendering for bench output.
//
// Every bench prints the same rows/series the paper reports; TextTable keeps
// that output aligned and diffable.  Cells are strings so callers pick their
// own numeric formatting (format_fixed, format_gain, ...).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hxsim::stats {

class TextTable {
 public:
  /// Column headers define the table width; rows are padded/truncated to it.
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// The data rows (cells as added, before padding/truncation).
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

  /// Render with a header separator; columns sized to the widest cell.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hxsim::stats
