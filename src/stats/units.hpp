// Byte / time unit helpers and human-readable formatting.
//
// Simulated time is carried as double seconds everywhere; bytes as
// std::int64_t.  These helpers centralise the unit constants used by the
// paper (GiB/s bandwidths, microsecond latencies, KiB/MiB message sizes) so
// that benches and the simulator agree on conversions.
#pragma once

#include <cstdint>
#include <string>

namespace hxsim::stats {

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * kKiB;
inline constexpr std::int64_t kGiB = 1024 * kMiB;

inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;
inline constexpr double kNano = 1e-9;

/// Seconds -> microseconds.
[[nodiscard]] constexpr double to_us(double seconds) noexcept {
  return seconds / kMicro;
}

/// Bytes over seconds -> GiB/s; returns 0 for non-positive durations.
[[nodiscard]] constexpr double gib_per_s(std::int64_t bytes,
                                         double seconds) noexcept {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bytes) / static_cast<double>(kGiB) / seconds;
}

/// Bytes over seconds -> MiB/s; returns 0 for non-positive durations.
[[nodiscard]] constexpr double mib_per_s(std::int64_t bytes,
                                         double seconds) noexcept {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bytes) / static_cast<double>(kMiB) / seconds;
}

/// "1B", "4KiB", "2MiB", "1GiB" -- exact power-of-two labels used on the
/// paper's message-size axes; falls back to the raw byte count otherwise.
[[nodiscard]] std::string format_bytes(std::int64_t bytes);

/// "12.3us", "4.56ms", "7.8s" depending on magnitude.
[[nodiscard]] std::string format_time(double seconds);

/// Fixed-precision helper ("%.*f") without the iostream dance.
[[nodiscard]] std::string format_fixed(double value, int decimals);

}  // namespace hxsim::stats
