#include "stats/csv.hpp"

#include <stdexcept>

namespace hxsim::stats {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path, std::ios::trunc), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_line(header);
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (char ch : field) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_line(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (closed_) throw std::runtime_error("CsvWriter: writer is closed");
  if (cells.size() != columns_)
    throw std::runtime_error("CsvWriter: row width mismatch");
  write_line(cells);
}

void CsvWriter::close() {
  if (closed_) return;
  out_.flush();
  out_.close();
  closed_ = true;
}

}  // namespace hxsim::stats
