#include "stats/gain.hpp"

#include <cmath>

#include "stats/units.hpp"

namespace hxsim::stats {

double relative_gain(double baseline, double candidate, Direction direction) {
  const bool base_failed = !std::isfinite(baseline) || baseline <= 0.0;
  const bool cand_failed = !std::isfinite(candidate) || candidate <= 0.0;
  // For lower-is-better a failed run behaves like infinite time; for
  // higher-is-better like zero throughput.  Either way the comparison
  // degenerates to +/-Inf exactly as in the paper's Figure 4/5 annotations.
  if (base_failed && cand_failed) return 0.0;
  if (direction == Direction::kLowerIsBetter) {
    if (cand_failed) return -std::numeric_limits<double>::infinity();
    if (base_failed) return std::numeric_limits<double>::infinity();
    return baseline / candidate - 1.0;
  }
  if (cand_failed) return -std::numeric_limits<double>::infinity();
  if (base_failed) return std::numeric_limits<double>::infinity();
  return candidate / baseline - 1.0;
}

std::string format_gain(double gain, int decimals) {
  if (std::isinf(gain)) return gain > 0 ? "+Inf" : "-Inf";
  if (std::isnan(gain)) return "n/a";
  const std::string body = format_fixed(std::fabs(gain), decimals);
  return (gain < 0 ? "-" : "+") + body;
}

}  // namespace hxsim::stats
