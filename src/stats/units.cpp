#include "stats/units.hpp"

#include <cmath>
#include <cstdio>

namespace hxsim::stats {

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_bytes(std::int64_t bytes) {
  if (bytes >= kGiB && bytes % kGiB == 0)
    return std::to_string(bytes / kGiB) + "GiB";
  if (bytes >= kMiB && bytes % kMiB == 0)
    return std::to_string(bytes / kMiB) + "MiB";
  if (bytes >= kKiB && bytes % kKiB == 0)
    return std::to_string(bytes / kKiB) + "KiB";
  return std::to_string(bytes) + "B";
}

std::string format_time(double seconds) {
  const double mag = std::fabs(seconds);
  if (mag < 1e-3) return format_fixed(seconds / kMicro, 2) + "us";
  if (mag < 1.0) return format_fixed(seconds / kMilli, 2) + "ms";
  return format_fixed(seconds, 2) + "s";
}

}  // namespace hxsim::stats
