#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/units.hpp"

namespace hxsim::stats {

namespace {

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double quantile(std::span<const double> values, double q) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.q25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.q75 = quantile_sorted(sorted, 0.75);
  s.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
           static_cast<double>(sorted.size());
  return s;
}

std::string Summary::to_string(int decimals) const {
  return "min=" + format_fixed(min, decimals) +
         " q25=" + format_fixed(q25, decimals) +
         " med=" + format_fixed(median, decimals) +
         " q75=" + format_fixed(q75, decimals) +
         " max=" + format_fixed(max, decimals);
}

}  // namespace hxsim::stats
