// Minimal CSV writer for bench data export.
//
// Benches print human tables to stdout and, when given an output path, also
// dump machine-readable CSV so plots can be regenerated.  Quoting follows
// RFC 4180: fields containing comma, quote, or newline are quoted and inner
// quotes doubled.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace hxsim::stats {

class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);

  /// Flushes and closes; further add_row calls throw.
  void close();

  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  void write_line(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t columns_;
  bool closed_ = false;
};

}  // namespace hxsim::stats
