#include "stats/rng.hpp"

#include <cmath>
#include <numeric>

namespace hxsim::stats {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t split_mix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = split_mix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded sampling with rejection to keep
  // the result exactly uniform.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::int64_t Rng::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return std::numeric_limits<std::int64_t>::max();
  // Inverse transform sampling: floor(log(U) / log(1-p)).
  const double u = 1.0 - uniform();  // u in (0, 1]
  return static_cast<std::int64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

Rng Rng::fork() noexcept {
  std::uint64_t child_seed = next();
  return Rng{child_seed};
}

std::vector<std::int32_t> Rng::permutation(std::int32_t n) {
  std::vector<std::int32_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  shuffle(perm);
  return perm;
}

}  // namespace hxsim::stats
