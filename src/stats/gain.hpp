// Relative performance gain as defined by the paper (after Hoefler & Belli).
//
// Figure 4 annotates every cell with the gain of a configuration over the
// "Fat-Tree / ftree / linear" baseline.  For lower-is-better metrics
// (latency, runtime) a positive gain means the candidate is faster; for
// higher-is-better metrics (throughput, flop/s) a positive gain means the
// candidate achieves more.  Infinities encode the paper's "+Inf"/"-Inf"
// cells where one side failed to complete within limits.
#pragma once

#include <limits>
#include <string>

namespace hxsim::stats {

enum class Direction {
  kLowerIsBetter,   // latency, runtime
  kHigherIsBetter,  // bandwidth, flop/s, TEPS
};

/// Relative gain of `candidate` over `baseline`.
///
/// lower-is-better : gain = baseline/candidate - 1
/// higher-is-better: gain = candidate/baseline - 1
/// so +0.10 always reads "candidate is 10 % better", matching the signs
/// printed in the paper's Figure 4 cells.
[[nodiscard]] double relative_gain(double baseline, double candidate,
                                   Direction direction);

/// Format like the paper's cells: "+0.12", "-0.45", "+Inf", "-Inf".
[[nodiscard]] std::string format_gain(double gain, int decimals = 2);

/// The value used when a run failed/timed out (paper: missing boxes).
inline constexpr double kFailed = std::numeric_limits<double>::infinity();

}  // namespace hxsim::stats
