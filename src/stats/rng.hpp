// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic element of the reproduction (fault injection, clustered /
// random placements, arbitration tie-breaks, workload sampling) draws from a
// seeded Rng so that a bench invoked twice prints identical rows.  The
// generator is xoshiro256**, seeded through SplitMix64 so that small seed
// integers (0, 1, 2, ...) still give well-distributed streams.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace hxsim::stats {

/// Counter-based seed expander (SplitMix64).  Used internally by Rng and
/// useful on its own for deriving independent child seeds.
[[nodiscard]] std::uint64_t split_mix64(std::uint64_t& state) noexcept;

/// xoshiro256** engine with convenience sampling helpers.
///
/// Satisfies UniformRandomBitGenerator so it can also feed <random>
/// distributions, but the members below are preferred: they are stable
/// across standard-library implementations, which <random> distributions
/// are not.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Geometric distribution: number of failures before the first success,
  /// success probability p in (0, 1].  Matches the paper's clustered
  /// placement stride draw (p = 0.8).
  std::int64_t geometric(double p) noexcept;

  /// Fork a statistically independent child generator.  Children derived
  /// from the same parent state in the same order are reproducible.
  [[nodiscard]] Rng fork() noexcept;

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// A uniformly random permutation of {0, ..., n-1}.
  [[nodiscard]] std::vector<std::int32_t> permutation(std::int32_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace hxsim::stats
