#include "stats/heatmap.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/units.hpp"

namespace hxsim::stats {

namespace {
constexpr char kRamp[] = " .:-=+*#%@";
constexpr std::size_t kRampLevels = sizeof(kRamp) - 2;  // top index
}  // namespace

Heatmap::Heatmap(std::size_t rows, std::size_t cols, std::string title)
    : rows_(rows), cols_(cols), title_(std::move(title)),
      cells_(rows * cols, 0.0) {}

void Heatmap::set(std::size_t row, std::size_t col, double value) {
  if (row >= rows_ || col >= cols_)
    throw std::out_of_range("Heatmap::set: cell out of range");
  cells_[row * cols_ + col] = value;
}

double Heatmap::at(std::size_t row, std::size_t col) const {
  if (row >= rows_ || col >= cols_)
    throw std::out_of_range("Heatmap::at: cell out of range");
  return cells_[row * cols_ + col];
}

double Heatmap::mean() const {
  if (cells_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : cells_) sum += v;
  return sum / static_cast<double>(cells_.size());
}

double Heatmap::mean_off_diagonal() const {
  if (rows_ <= 1 || cols_ <= 1) return 0.0;
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (r == c) continue;
      sum += cells_[r * cols_ + c];
      ++n;
    }
  }
  return n != 0 ? sum / static_cast<double>(n) : 0.0;
}

double Heatmap::max_value() const {
  return cells_.empty() ? 0.0 : *std::max_element(cells_.begin(), cells_.end());
}

double Heatmap::min_value() const {
  return cells_.empty() ? 0.0 : *std::min_element(cells_.begin(), cells_.end());
}

std::string Heatmap::to_string(double scale_max) const {
  const double top = scale_max > 0.0 ? scale_max : max_value();
  std::string out = title_ + "\n";
  for (std::size_t r = 0; r < rows_; ++r) {
    std::string line;
    for (std::size_t c = 0; c < cols_; ++c) {
      const double v = cells_[r * cols_ + c];
      std::size_t level = 0;
      if (top > 0.0 && v > 0.0) {
        level = static_cast<std::size_t>(
            (v / top) * static_cast<double>(kRampLevels) + 0.5);
        level = std::min(level, kRampLevels);
      }
      line += kRamp[level];
    }
    out += line + "\n";
  }
  out += "mean=" + format_fixed(mean(), 3) +
         " mean(offdiag)=" + format_fixed(mean_off_diagonal(), 3) +
         " max=" + format_fixed(max_value(), 3) + "\n";
  return out;
}

}  // namespace hxsim::stats
