// ASCII heatmap rendering (Figure 1 style sender x receiver bandwidth maps).
//
// A Heatmap is a dense row-major matrix of doubles with labelled axes.  The
// renderer bins values into a shade ramp and prints a compact grid plus the
// matrix average, which is the number the paper quotes per heatmap
// (2.26 / 0.84 / 1.39 GiB/s for Figure 1).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hxsim::stats {

class Heatmap {
 public:
  Heatmap(std::size_t rows, std::size_t cols, std::string title);

  void set(std::size_t row, std::size_t col, double value);
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }

  /// Mean over all cells (the paper's "average observable bandwidth").
  [[nodiscard]] double mean() const;

  /// Mean over off-diagonal cells only (mpiGraph excludes self-traffic).
  [[nodiscard]] double mean_off_diagonal() const;

  [[nodiscard]] double max_value() const;
  [[nodiscard]] double min_value() const;

  /// Render with shade ramp " .:-=+*#%@" scaled to [0, scale_max]
  /// (scale_max <= 0 autoscales to the matrix maximum).
  [[nodiscard]] std::string to_string(double scale_max = 0.0) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::string title_;
  std::vector<double> cells_;
};

}  // namespace hxsim::stats
