// Quickstart: the smallest end-to-end tour of the library.
//
//   1. build the Figure 2b 4x4 HyperX;
//   2. route it with deadlock-free DFSSSP;
//   3. assemble a cluster and run an MPI Allreduce on it;
//   4. inspect a routed path.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "mpi/cluster.hpp"
#include "mpi/collectives.hpp"
#include "routing/dfsssp.hpp"
#include "stats/units.hpp"
#include "topo/hyperx.hpp"

int main() {
  using namespace hxsim;

  // 1. Topology: 4x4 HyperX, 2 compute nodes per switch (32 nodes).
  const topo::HyperX hx(topo::small_hyperx_params());
  std::printf("topology: %s, %d switches, %d nodes, %lld cables\n",
              hx.topo().name().c_str(), hx.topo().num_switches(),
              hx.topo().num_terminals(),
              static_cast<long long>(hx.topo().num_switch_links()));
  std::printf("bisection ratio: %.3f\n", hx.bisection_ratio());

  // 2. Routing: every node gets one LID; DFSSSP computes balanced minimal
  //    paths and layers them onto virtual lanes for deadlock freedom.
  routing::LidSpace lids =
      routing::LidSpace::consecutive(hx.topo().num_terminals(), 0);
  routing::DfssspEngine engine(/*max_vls=*/8);
  routing::RouteResult route = engine.compute(hx.topo(), lids);
  std::printf("routing: %s, %d virtual lane(s)\n", engine.name().c_str(),
              route.num_vls_used);

  // 3. Cluster + transport: run a 32-rank Allreduce of 1 MiB.
  const mpi::Cluster cluster(hx.topo(), lids, std::move(route),
                             mpi::make_ob1());
  const mpi::Placement placement = mpi::Placement::linear(
      32, mpi::Placement::whole_machine(cluster.num_nodes()));
  mpi::Transport transport(cluster, placement, /*seed=*/1);

  const auto schedule =
      mpi::collectives::allreduce_ring(32, 1024 * 1024);
  const double t = transport.execute(schedule);
  std::printf("Allreduce(1MiB, 32 ranks) = %s simulated\n",
              stats::format_time(t).c_str());

  // 4. Look at one routed path.
  stats::Rng rng(1);
  const auto msg = cluster.route_message(0, 31, 4096, rng);
  std::printf("path node0 -> node31: %zu channels, %zu switch hops, VL %d\n",
              msg->path.size(), msg->path.size() - 2,
              static_cast<int>(msg->vl));
  return 0;
}
