// Deadlock post-mortem on the Section 3.2 triangle, with counters.
//
// Runs the same wedge as deadlock_demo (three two-hop ring flows on one
// virtual lane, one-packet buffers) with an obs::PktTrace attached, then
// renders what the bare `deadlock = true` of the old simulator hid:
//  - the actual circular credit wait, packet by packet ("who holds which
//    channel x VL buffer waiting on whom");
//  - the per-channel counters at the instant of the wedge -- exhausted
//    final_credits on the inter-switch cables, credit-stall time (the
//    PortXmitWait analogue) concentrated on the cycle.
// A second run with the DFSSSP-style dateline lane drains and shows every
// credit restored -- the credit-leak canary the tests assert.
#include <cstdio>

#include "obs/pkt_trace.hpp"
#include "sim/pktsim.hpp"
#include "topo/topology.hpp"

int main() {
  using namespace hxsim;

  // The triangle: switches A, B, C; one node each; three forward cables.
  topo::Topology tri("triangle");
  const topo::SwitchId A = tri.add_switch();
  const topo::SwitchId B = tri.add_switch();
  const topo::SwitchId C = tri.add_switch();
  const topo::NodeId nodes[3] = {tri.add_terminal(A), tri.add_terminal(B),
                                 tri.add_terminal(C)};
  topo::ChannelId fwd[3];  // A->B, B->C, C->A
  {
    auto [ab, ba] = tri.connect(A, B);
    auto [bc, cb] = tri.connect(B, C);
    auto [ca, ac] = tri.connect(C, A);
    (void)ba; (void)cb; (void)ac;
    fwd[0] = ab;
    fwd[1] = bc;
    fwd[2] = ca;
  }

  // node i -> switch i -> switch i+1 -> switch i+2 -> node i+2.
  auto ring_message = [&](int i, std::int8_t vl) {
    sim::PktMessage m;
    m.src = nodes[i];
    m.dst = nodes[(i + 2) % 3];
    m.bytes = 32 * 2048;
    m.vl = vl;
    m.path = {tri.terminal_up(nodes[i]), fwd[i], fwd[(i + 1) % 3],
              tri.terminal_down(nodes[(i + 2) % 3])};
    return m;
  };

  obs::PktTrace trace;
  sim::PktSimConfig cfg;
  cfg.vc_buffer_packets = 1;
  cfg.trace = &trace;
  sim::PktSim pktsim(tri, cfg);

  std::printf("Run 1: all traffic on VL0 -- the wedge, post-mortemed\n");
  {
    std::vector<sim::PktMessage> msgs;
    for (int rep = 0; rep < 4; ++rep)
      for (int i = 0; i < 3; ++i) msgs.push_back(ring_message(i, 0));
    const auto result = pktsim.run(msgs);
    std::printf("  delivered %lld / %lld packets, deadlock=%s\n",
                static_cast<long long>(result.packets_delivered),
                static_cast<long long>(result.packets_total),
                result.deadlock ? "yes" : "no");
    std::printf("%s", result.deadlock_report.to_string(&tri).c_str());

    std::printf("  counters on the inter-switch cables at the wedge:\n");
    for (int i = 0; i < 3; ++i) {
      const obs::ChannelVlCounters& c = trace.at(fwd[i], 0);
      std::printf(
          "    ch%-2d VL0: crossed %lld pkts, stalled %.3g s, queue peak %d, "
          "final credits %d / %d\n",
          fwd[i], static_cast<long long>(c.packets), c.credit_stall_s,
          c.peak_queue, c.final_credits, cfg.vc_buffer_packets);
    }
  }

  std::printf("Run 2: dateline flow on VL1 -- drains, credits restored\n");
  {
    std::vector<sim::PktMessage> msgs;
    for (int rep = 0; rep < 4; ++rep)
      for (int i = 0; i < 3; ++i)
        msgs.push_back(ring_message(i, i == 2 ? 1 : 0));
    const auto result = pktsim.run(msgs);
    std::printf("  delivered %lld / %lld packets, deadlock=%s\n",
                static_cast<long long>(result.packets_delivered),
                static_cast<long long>(result.packets_total),
                result.deadlock ? "yes" : "no");
    bool leak = false;
    for (int i = 0; i < 3; ++i)
      for (std::int8_t vl = 0; vl < 2; ++vl)
        if (trace.at(fwd[i], vl).final_credits != cfg.vc_buffer_packets)
          leak = true;
    std::printf("  all inter-switch credits back at %d: %s\n",
                cfg.vc_buffer_packets, leak ? "NO (credit leak!)" : "yes");
  }
  return 0;
}
