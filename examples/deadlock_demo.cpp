// The Section 3.2 thought experiment, live:
//
//   "Assume a triangle of switches A, B, and C with one node per switch;
//    A's node can send traffic to C's via B, but at the same time B's node
//    cannot send traffic to C's via A, because packets would get stuck."
//
// Part 1 routes the triangle non-minimally on one virtual lane and watches
// the packet simulator wedge (circular credit wait).  Part 2 applies the
// VL layering DFSSSP/PARX use and the same traffic drains.  Part 3 shows
// the CDG analysis that predicts both outcomes.
#include <cstdio>

#include "routing/cdg.hpp"
#include "sim/pktsim.hpp"
#include "topo/topology.hpp"

int main() {
  using namespace hxsim;

  // The triangle: switches A, B, C; one node each; three cables.
  topo::Topology tri("triangle");
  const topo::SwitchId A = tri.add_switch();
  const topo::SwitchId B = tri.add_switch();
  const topo::SwitchId C = tri.add_switch();
  const topo::NodeId nodes[3] = {tri.add_terminal(A), tri.add_terminal(B),
                                 tri.add_terminal(C)};
  topo::ChannelId fwd[3];  // A->B, B->C, C->A
  {
    auto [ab, unused1] = tri.connect(A, B);
    auto [bc, unused2] = tri.connect(B, C);
    auto [ca, unused3] = tri.connect(C, A);
    (void)unused1; (void)unused2; (void)unused3;
    fwd[0] = ab;
    fwd[1] = bc;
    fwd[2] = ca;
  }

  // Every node sends two-hop (non-minimal!) traffic around the ring:
  // node i -> switch i -> switch i+1 -> switch i+2 -> node i+2.
  auto ring_message = [&](int i, std::int8_t vl) {
    sim::PktMessage m;
    m.src = nodes[i];
    m.dst = nodes[(i + 2) % 3];
    m.bytes = 32 * 2048;
    m.vl = vl;
    m.path = {tri.terminal_up(nodes[i]), fwd[i], fwd[(i + 1) % 3],
              tri.terminal_down(nodes[(i + 2) % 3])};
    return m;
  };

  sim::PktSimConfig cfg;
  cfg.vc_buffer_packets = 1;  // tight buffers, like a real switch under load
  sim::PktSim pktsim(tri, cfg);

  std::printf("Part 1: all traffic on VL0\n");
  {
    std::vector<sim::PktMessage> msgs;
    for (int rep = 0; rep < 4; ++rep)
      for (int i = 0; i < 3; ++i) msgs.push_back(ring_message(i, 0));
    const auto result = pktsim.run(msgs);
    std::printf("  delivered %lld / %lld packets -> %s\n",
                static_cast<long long>(result.packets_delivered),
                static_cast<long long>(result.packets_total),
                result.deadlock ? "DEADLOCK (circular credit wait)" : "ok");
  }

  std::printf("Part 2: the dateline flow (starting at C) escapes to VL1\n");
  {
    std::vector<sim::PktMessage> msgs;
    for (int rep = 0; rep < 4; ++rep)
      for (int i = 0; i < 3; ++i)
        msgs.push_back(ring_message(i, i == 2 ? 1 : 0));
    const auto result = pktsim.run(msgs);
    std::printf("  delivered %lld / %lld packets -> %s\n",
                static_cast<long long>(result.packets_delivered),
                static_cast<long long>(result.packets_total),
                result.deadlock ? "DEADLOCK" : "all drained");
  }

  std::printf("Part 3: the channel dependency graph saw it coming\n");
  {
    // Dependencies of the three two-hop paths: fwd0->fwd1, fwd1->fwd2,
    // fwd2->fwd0 -- a cycle.
    const std::vector<std::pair<std::int32_t, std::int32_t>> deps{
        {fwd[0], fwd[1]}, {fwd[1], fwd[2]}, {fwd[2], fwd[0]}};
    std::printf("  one VL:  CDG acyclic? %s\n",
                routing::acyclic(tri.num_channels(), deps) ? "yes" : "NO");
    routing::VlLayering layering(tri.num_channels(), 8);
    std::int32_t max_vl = 0;
    for (int i = 0; i < 3; ++i) {
      const std::vector<std::int32_t> path{fwd[i], fwd[(i + 1) % 3]};
      max_vl = std::max(max_vl, layering.place_path(path));
    }
    std::printf("  VL layering (as in DFSSSP/PARX) resolves it with %d "
                "lanes\n", layering.layers_used());
  }
  return 0;
}
