// mpiGraph heatmap on a topology/routing of your choice -- a command-line
// front-end to the Figure 1 experiment.
//
// usage: mpigraph_heatmap [fattree|hyperx] [ftree|sssp|dfsssp|parx]
//                         [nodes] [linear|clustered|random]
// e.g.:  ./build/examples/mpigraph_heatmap hyperx parx 28 linear
#include <cstdio>
#include <cstring>
#include <string>

#include "core/parx.hpp"
#include "core/quadrant.hpp"
#include "mpi/cluster.hpp"
#include "routing/dfsssp.hpp"
#include "routing/ftree.hpp"
#include "routing/sssp.hpp"
#include "topo/fat_tree.hpp"
#include "topo/hyperx.hpp"
#include "workloads/mpigraph.hpp"

int main(int argc, char** argv) {
  using namespace hxsim;
  const std::string topo_arg = argc > 1 ? argv[1] : "hyperx";
  const std::string routing_arg = argc > 2 ? argv[2] : "dfsssp";
  const std::int32_t nodes = argc > 3 ? std::atoi(argv[3]) : 28;
  const std::string place_arg = argc > 4 ? argv[4] : "linear";

  std::unique_ptr<topo::FatTree> ft;
  std::unique_ptr<topo::HyperX> hx;
  const topo::Topology* topology = nullptr;
  if (topo_arg == "fattree") {
    ft = std::make_unique<topo::FatTree>(topo::paper_fat_tree_params());
    topology = &ft->topo();
  } else if (topo_arg == "hyperx") {
    hx = std::make_unique<topo::HyperX>(topo::paper_hyperx_params());
    topology = &hx->topo();
  } else {
    std::fprintf(stderr, "unknown topology '%s'\n", topo_arg.c_str());
    return 2;
  }

  routing::LidSpace lids =
      routing::LidSpace::consecutive(topology->num_terminals(), 0);
  routing::RouteResult route;
  mpi::PmlConfig pml = mpi::make_ob1();
  if (routing_arg == "ftree") {
    if (!ft) {
      std::fprintf(stderr, "ftree routing needs the fattree topology\n");
      return 2;
    }
    routing::FtreeEngine engine(*ft);
    route = engine.compute(*topology, lids);
  } else if (routing_arg == "sssp") {
    routing::SsspEngine engine;
    route = engine.compute(*topology, lids);
  } else if (routing_arg == "dfsssp") {
    routing::DfssspEngine engine(8);
    route = engine.compute(*topology, lids);
  } else if (routing_arg == "parx") {
    if (!hx) {
      std::fprintf(stderr, "parx routing needs the hyperx topology\n");
      return 2;
    }
    lids = core::make_parx_lid_space(*hx);
    core::ParxEngine engine(*hx);
    route = engine.compute(*topology, lids);
    pml = mpi::make_bfo();
  } else {
    std::fprintf(stderr, "unknown routing '%s'\n", routing_arg.c_str());
    return 2;
  }
  std::printf("%s / %s: %d VL(s)\n", topo_arg.c_str(), routing_arg.c_str(),
              route.num_vls_used);

  const mpi::Cluster cluster(*topology, std::move(lids), std::move(route),
                             pml);
  stats::Rng rng(42);
  const auto pool = mpi::Placement::whole_machine(cluster.num_nodes());
  mpi::Placement placement = mpi::Placement::linear(nodes, pool);
  if (place_arg == "clustered")
    placement = mpi::Placement::clustered(nodes, pool, rng);
  else if (place_arg == "random")
    placement = mpi::Placement::random(nodes, pool, rng);

  const stats::Heatmap map = workloads::mpigraph(cluster, placement, nodes);
  std::printf("%s", map.to_string(3.0).c_str());
  return 0;
}
