// Multi-application capacity scheduling on a shared fabric -- a small
// Figure 7: four applications on dedicated allocations of a 12x8 HyperX
// compete for network bandwidth over a simulated hour; the fluid
// co-scheduler counts completed runs per job.
//
// usage: capacity_scheduler [linear|clustered|random] [hours]
#include <cstdio>
#include <string>

#include "mpi/cluster.hpp"
#include "routing/dfsssp.hpp"
#include "stats/table.hpp"
#include "topo/hyperx.hpp"
#include "workloads/capacity.hpp"

int main(int argc, char** argv) {
  using namespace hxsim;
  const std::string place_arg = argc > 1 ? argv[1] : "linear";
  const double hours = argc > 2 ? std::atof(argv[2]) : 1.0;

  const topo::HyperX hx(topo::paper_hyperx_params());
  routing::LidSpace lids =
      routing::LidSpace::consecutive(hx.topo().num_terminals(), 0);
  routing::DfssspEngine engine(8);
  const mpi::Cluster cluster(hx.topo(), lids,
                             engine.compute(hx.topo(), lids),
                             mpi::make_ob1());

  mpi::PlacementKind kind = mpi::PlacementKind::kLinear;
  if (place_arg == "clustered") kind = mpi::PlacementKind::kClustered;
  if (place_arg == "random") kind = mpi::PlacementKind::kRandom;

  // Four jobs with contrasting communication characters.
  stats::Rng rng(1);
  const auto pool = mpi::Placement::whole_machine(cluster.num_nodes());
  struct JobSpec {
    workloads::AppId app;
    std::int32_t nodes;
  } specs[] = {
      {workloads::AppId::kComd, 56},     // halo-bound
      {workloads::AppId::kNtchem, 32},   // alltoall-heavy
      {workloads::AppId::kEmDl, 32},     // large ring allreduce
      {workloads::AppId::kGraph500, 56}, // irregular exchanges
  };
  std::vector<workloads::CapacityJob> jobs;
  std::size_t offset = 0;
  for (const JobSpec& spec : specs) {
    const auto slice =
        std::span(pool).subspan(offset, static_cast<std::size_t>(spec.nodes));
    offset += static_cast<std::size_t>(spec.nodes);
    jobs.push_back(workloads::CapacityJob{
        spec.app, mpi::Placement::make(kind, spec.nodes, slice, rng)});
  }

  workloads::CapacityOptions opts;
  opts.duration = hours * 3600.0;
  const workloads::CapacityResult result =
      workloads::run_capacity(cluster, jobs, opts);

  std::printf("capacity window: %.1f h, placement: %s\n\n", hours,
              place_arg.c_str());
  stats::TextTable table({"app", "nodes", "runs completed"});
  for (std::size_t j = 0; j < jobs.size(); ++j)
    table.add_row({result.app_names[j],
                   std::to_string(jobs[j].placement.num_ranks()),
                   std::to_string(result.runs_completed[j])});
  table.add_row({"TOTAL", "176", std::to_string(result.total())});
  std::printf("%s", table.to_string().c_str());
  return 0;
}
