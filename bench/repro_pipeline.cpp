// One-command reproduction pipeline.
//
//   ./repro_pipeline [--quick] [--only id,id,...] [--seed n] [--reps n]
//                    [--threads n] [--out path] [--from path]
//                    [--claims dir] [--no-claims] [--baseline path]
//                    [--no-baseline] [--render] [--md path] [--list]
//
// Runs every registered experiment (bench/experiments/) in one process,
// folds the ResultSets into a ResultStore written as REPRO.json, then
// evaluates the committed claims/ tables against the measured metrics and
// exits non-zero listing every violation (measured vs expected band).
// With --render the EXPERIMENTS.md generated blocks are regenerated from
// the result store -- from the committed full-scale baseline in --quick
// mode (CI-sized runs must not rewrite paper-scale tables), from the
// store just measured otherwise.
//
// --quick additionally re-checks the full-scope claims against the
// committed baseline REPRO.json, so CI catches a stale baseline or a
// claims/ edit that the committed numbers no longer satisfy.
// --from skips the measurement and loads an existing store instead
// (claims + render on committed results, seconds instead of minutes).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <exception>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/experiments.hpp"
#include "report/claims.hpp"
#include "report/render.hpp"

#ifndef HXSIM_SOURCE_DIR
#define HXSIM_SOURCE_DIR "."
#endif

namespace {

using namespace hxsim;

struct PipelineArgs {
  report::Options options;
  std::vector<std::string> only;
  std::string out_path;
  std::string from_path;
  std::string claims_dir = HXSIM_SOURCE_DIR "/claims";
  std::string baseline_path = HXSIM_SOURCE_DIR "/REPRO.json";
  std::string md_path = HXSIM_SOURCE_DIR "/EXPERIMENTS.md";
  bool check_claims = true;
  bool check_baseline = true;
  bool render = false;
  bool list = false;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --quick         CI-sized topologies and repetition counts\n"
      "  --only id,...   run only these experiments (claims restricted "
      "to them)\n"
      "  --seed n        base RNG seed (default 1)\n"
      "  --reps n        repetitions per measurement (default 3)\n"
      "  --threads n     worker threads (default: hardware)\n"
      "  --out path      result store to write (default: REPRO.json in "
      "the source tree for full runs, REPRO.quick.json here for --quick)\n"
      "  --from path     skip measuring; load this store instead\n"
      "  --claims dir    claims tables (default: <source>/claims)\n"
      "  --no-claims     skip the claims check\n"
      "  --baseline path committed full-scale store checked in --quick "
      "mode (default: <source>/REPRO.json)\n"
      "  --no-baseline   skip the baseline check in --quick mode\n"
      "  --render        regenerate the EXPERIMENTS.md generated blocks\n"
      "  --md path       markdown file to render (default: "
      "<source>/EXPERIMENTS.md)\n"
      "  --list          list registered experiments and exit\n",
      argv0);
}

bool parse_args(int argc, char** argv, PipelineArgs& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0],
                     a.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--quick") {
      args.options.quick = true;
    } else if (a == "--only") {
      const char* v = value();
      if (!v) return false;
      std::stringstream ss{std::string(v)};
      std::string id;
      while (std::getline(ss, id, ','))
        if (!id.empty()) args.only.push_back(id);
    } else if (a == "--seed") {
      const char* v = value();
      if (!v) return false;
      args.options.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--reps") {
      const char* v = value();
      if (!v) return false;
      args.options.reps = static_cast<std::int32_t>(std::atoi(v));
    } else if (a == "--threads") {
      const char* v = value();
      if (!v) return false;
      args.options.threads = static_cast<std::int32_t>(std::atoi(v));
    } else if (a == "--out") {
      const char* v = value();
      if (!v) return false;
      args.out_path = v;
    } else if (a == "--from") {
      const char* v = value();
      if (!v) return false;
      args.from_path = v;
    } else if (a == "--claims") {
      const char* v = value();
      if (!v) return false;
      args.claims_dir = v;
    } else if (a == "--no-claims") {
      args.check_claims = false;
    } else if (a == "--baseline") {
      const char* v = value();
      if (!v) return false;
      args.baseline_path = v;
    } else if (a == "--no-baseline") {
      args.check_baseline = false;
    } else if (a == "--render") {
      args.render = true;
    } else if (a == "--md") {
      const char* v = value();
      if (!v) return false;
      args.md_path = v;
    } else if (a == "--list") {
      args.list = true;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown option %s (try --help)\n", argv[0],
                   a.c_str());
      return false;
    }
  }
  if (args.out_path.empty())
    args.out_path = args.options.quick ? "REPRO.quick.json"
                                       : HXSIM_SOURCE_DIR "/REPRO.json";
  return true;
}

bool selected(const PipelineArgs& args, const std::string& id) {
  if (args.only.empty()) return true;
  for (const std::string& o : args.only)
    if (o == id) return true;
  return false;
}

/// Claims whose experiment was not part of a --only run must not fire as
/// missing-metric violations; restrict the table to the run set.
std::vector<report::Claim> restrict_claims(
    const std::vector<report::Claim>& claims,
    const report::ResultStore& store) {
  std::vector<report::Claim> kept;
  for (const report::Claim& claim : claims)
    if (store.find(claim.experiment) != nullptr) kept.push_back(claim);
  return kept;
}

}  // namespace

int main(int argc, char** argv) {
  PipelineArgs args;
  if (!parse_args(argc, argv, args)) return 2;

  report::Registry& registry = bench::global_registry();
  if (args.list) {
    for (const report::Experiment& e : registry.experiments())
      std::printf("%-28s %-16s %s\n", e.id.c_str(), e.paper_ref.c_str(),
                  e.title.c_str());
    return 0;
  }
  for (const std::string& id : args.only)
    if (registry.find(id) == nullptr) {
      std::fprintf(stderr, "%s: unknown experiment '%s' (--list shows all)\n",
                   argv[0], id.c_str());
      return 2;
    }

  // --- measure (or load) --------------------------------------------------
  report::ResultStore store;
  bool run_failed = false;
  if (!args.from_path.empty()) {
    try {
      store = report::ResultStore::read_json(args.from_path);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "%s: cannot load %s: %s\n", argv[0],
                   args.from_path.c_str(), ex.what());
      return 1;
    }
    std::printf("loaded %zu experiments (%s mode) from %s\n",
                store.experiments.size(),
                std::string(report::to_string(store.mode)).c_str(),
                args.from_path.c_str());
  } else {
    store.mode =
        args.options.quick ? report::RunMode::kQuick : report::RunMode::kFull;
    store.seed = args.options.seed;
    std::size_t total = 0;
    for (const report::Experiment& e : registry.experiments())
      if (selected(args, e.id)) ++total;
    std::size_t index = 0;
    for (const report::Experiment& e : registry.experiments()) {
      if (!selected(args, e.id)) continue;
      ++index;
      std::printf("### [%zu/%zu] %s (%s)\n", index, total, e.id.c_str(),
                  e.paper_ref.c_str());
      std::fflush(stdout);
      const auto t0 = std::chrono::steady_clock::now();
      try {
        store.experiments.push_back(registry.run(e, args.options));
      } catch (const std::exception& ex) {
        run_failed = true;
        std::fprintf(stderr, "FAILED: %s: %s\n", e.id.c_str(), ex.what());
      }
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      std::printf("### %s done in %.1f s\n\n", e.id.c_str(), secs);
      std::fflush(stdout);
    }
    try {
      store.write_json(args.out_path);
      std::printf("wrote %s (%zu experiments, %s mode)\n",
                  args.out_path.c_str(), store.experiments.size(),
                  std::string(report::to_string(store.mode)).c_str());
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "%s: cannot write %s: %s\n", argv[0],
                   args.out_path.c_str(), ex.what());
      return 1;
    }
  }

  // --- claims -------------------------------------------------------------
  std::size_t violations_total = 0;
  if (args.check_claims) {
    std::vector<report::Claim> claims;
    try {
      claims = report::load_claims_dir(args.claims_dir);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "%s: claims: %s\n", argv[0], ex.what());
      return 1;
    }
    const bool partial = !args.only.empty();
    std::vector<report::Claim> bound =
        partial ? restrict_claims(claims, store) : claims;
    std::size_t applicable = 0;
    for (const report::Claim& c : bound)
      if (report::claim_applies(c, store.mode)) ++applicable;
    const std::vector<report::Violation> violations =
        report::check_claims(bound, store);
    std::printf("\nclaims: %zu loaded, %zu bound to this %s run, %zu "
                "violated\n",
                claims.size(), applicable,
                std::string(report::to_string(store.mode)).c_str(),
                violations.size());
    for (const report::Violation& v : violations)
      std::printf("VIOLATED: %s\n", v.message().c_str());
    violations_total += violations.size();

    // Quick runs cannot evaluate paper-scale claims; hold the committed
    // full-scale baseline to them instead, so CI still gates every claim.
    if (store.mode == report::RunMode::kQuick && args.check_baseline &&
        args.from_path.empty()) {
      try {
        const report::ResultStore baseline =
            report::ResultStore::read_json(args.baseline_path);
        if (baseline.mode != report::RunMode::kFull)
          throw std::runtime_error("baseline store is not a full-mode run");
        std::vector<report::Claim> full_bound =
            partial ? restrict_claims(claims, baseline) : claims;
        std::size_t full_applicable = 0;
        for (const report::Claim& c : full_bound)
          if (report::claim_applies(c, baseline.mode)) ++full_applicable;
        const std::vector<report::Violation> base_violations =
            report::check_claims(full_bound, baseline);
        std::printf("baseline %s: %zu claims bound, %zu violated\n",
                    args.baseline_path.c_str(), full_applicable,
                    base_violations.size());
        for (const report::Violation& v : base_violations)
          std::printf("VIOLATED (baseline): %s\n", v.message().c_str());
        violations_total += base_violations.size();
      } catch (const std::exception& ex) {
        std::fprintf(stderr, "%s: baseline: %s\n", argv[0], ex.what());
        return 1;
      }
    }
  }

  // --- render -------------------------------------------------------------
  if (args.render) {
    // Quick stores hold CI-sized numbers; the committed doc tables are
    // paper-scale, so render from the committed baseline in quick mode.
    const report::ResultStore* source = &store;
    report::ResultStore baseline;
    if (store.mode == report::RunMode::kQuick) {
      try {
        baseline = report::ResultStore::read_json(args.baseline_path);
      } catch (const std::exception& ex) {
        std::fprintf(stderr, "%s: render: cannot load baseline %s: %s\n",
                     argv[0], args.baseline_path.c_str(), ex.what());
        return 1;
      }
      source = &baseline;
    }
    std::string markdown;
    {
      std::ifstream in(args.md_path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "%s: render: cannot read %s\n", argv[0],
                     args.md_path.c_str());
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      markdown = buf.str();
    }
    report::RenderStats stats;
    std::string rendered;
    try {
      rendered = report::render_experiments_md(markdown, *source, &stats);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "%s: render: %s\n", argv[0], ex.what());
      return 1;
    }
    if (rendered != markdown) {
      std::ofstream outf(args.md_path, std::ios::binary | std::ios::trunc);
      if (!outf) {
        std::fprintf(stderr, "%s: render: cannot write %s\n", argv[0],
                     args.md_path.c_str());
        return 1;
      }
      outf << rendered;
    }
    std::printf("render: %d blocks, %d changed (%s)\n", stats.blocks,
                stats.changed, args.md_path.c_str());
  }

  if (run_failed) {
    std::fprintf(stderr, "\nFAIL: one or more experiments failed to run\n");
    return 1;
  }
  if (violations_total > 0) {
    std::fprintf(stderr, "\nFAIL: %zu claim(s) violated\n", violations_total);
    return 1;
  }
  std::printf("\nOK: all bound claims hold\n");
  return 0;
}
