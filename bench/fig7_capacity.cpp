// Figure 7: capacity / system-throughput evaluation.
// Thin wrapper: the measurement core lives in
// experiments/exp_fig7_capacity.cpp as a registered report::Experiment; this
// binary keeps the historical CLI and stdout.
#include "experiments/experiments.hpp"

int main(int argc, char** argv) {
  return hxsim::bench::run_experiment_main("fig7_capacity", argc, argv);
}
