// Figure 7: capacity / system-throughput evaluation.  Fourteen
// applications run concurrently on dedicated 32/56-node allocations
// (664 of 672 nodes, 98.8 % occupancy) for a simulated 3-hour window;
// the metric is completed runs per application and the total, compared
// across the five combinations.  Paper headline: HyperX/DFSSSP/linear
// finishes 12.7 % more jobs than the Fat-Tree baseline.
#include <cstdio>

#include "bench_common.hpp"
#include "stats/gain.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "workloads/capacity.hpp"

int main(int argc, char** argv) {
  using namespace hxsim;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const workloads::PaperSystem system(args.system_options());

  workloads::CapacityOptions cap_opts;
  cap_opts.duration = args.quick ? 1800.0 : 3.0 * 3600.0;
  cap_opts.seed = args.seed;

  std::printf("== Fig. 7 capacity runs: 14 concurrent applications, "
              "%.1f h window ==\n\n", cap_opts.duration / 3600.0);

  bench::CsvSink csv(args, {"config", "app", "runs_completed"});
  std::vector<std::string> app_names;
  std::vector<std::vector<std::int32_t>> per_config_runs;
  std::int32_t baseline_total = 0;

  for (std::size_t cfg = 0; cfg < system.configs().size(); ++cfg) {
    const auto& config = system.configs()[cfg];
    stats::Rng rng(args.seed + cfg);
    const auto pool =
        mpi::Placement::whole_machine(system.num_nodes());
    const auto jobs =
        workloads::paper_capacity_mix(pool, config.placement, rng);
    const workloads::CapacityResult result =
        workloads::run_capacity(*config.cluster, jobs, cap_opts);

    if (cfg == 0) {
      app_names = result.app_names;
      baseline_total = result.total();
    }
    per_config_runs.push_back(result.runs_completed);
    for (std::size_t j = 0; j < result.app_names.size(); ++j)
      csv.add_row({config.name, result.app_names[j],
                   std::to_string(result.runs_completed[j])});
  }

  std::vector<std::string> header{"app"};
  for (const auto& config : system.configs()) header.push_back(config.name);
  stats::TextTable table(header);
  for (std::size_t j = 0; j < app_names.size(); ++j) {
    std::vector<std::string> row{app_names[j]};
    for (const auto& runs : per_config_runs)
      row.push_back(std::to_string(runs[j]));
    table.add_row(row);
  }
  std::vector<std::string> totals{"TOTAL"};
  for (const auto& runs : per_config_runs) {
    std::int32_t sum = 0;
    for (std::int32_t r : runs) sum += r;
    totals.push_back(std::to_string(sum) + " (" +
                     stats::format_gain(stats::relative_gain(
                         static_cast<double>(baseline_total),
                         static_cast<double>(sum),
                         stats::Direction::kHigherIsBetter)) +
                     ")");
  }
  table.add_row(totals);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("(paper: HyperX/DFSSSP/linear completed +12.7%% runs over the "
              "baseline; random placement hurt MILC)\n");
  return 0;
}
