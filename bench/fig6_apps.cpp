// Figure 6a-6i: solver-kernel runtime of the nine proxy applications.
// Thin wrapper: the measurement core lives in
// experiments/exp_fig6_apps.cpp as a registered report::Experiment; this
// binary keeps the historical CLI and stdout.
#include "experiments/experiments.hpp"

int main(int argc, char** argv) {
  return hxsim::bench::run_experiment_main("fig6_apps", argc, argv);
}
