// Repo-level experiment: the incremental-reroute contract, as claims.
// A seeded cable-attrition schedule runs on both paper planes; every
// stage is rerouted from scratch and through routing::DeltaRouter.  The
// machine-checked surface: delta tables bit-identical to the full
// recompute, and an aggregate dirty-tree fraction strictly below 1.0
// (incrementality saved work) -- the same gates bench/reroute_scaling
// enforces, here bound to committed claims.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "experiments/experiments.hpp"
#include "routing/delta.hpp"
#include "routing/dfsssp.hpp"
#include "routing/ftree.hpp"
#include "routing/updown.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "topo/fat_tree.hpp"
#include "topo/fault_injector.hpp"
#include "topo/hyperx.hpp"

namespace hxsim::bench {

namespace {

topo::FatTreeParams tree_params(bool quick) {
  if (!quick) return topo::paper_fat_tree_params();
  topo::FatTreeParams p;
  p.arity = 6;
  p.levels = 3;
  p.leaf_terminals = 4;
  p.populated_leaves = 24;  // 96 nodes
  p.name = "fat-tree-6ary3-small";
  return p;
}

topo::HyperXParams hyperx_params(bool quick) {
  if (!quick) return topo::paper_hyperx_params();
  topo::HyperXParams p;
  p.dims = {6, 4};
  p.terminals_per_switch = 4;  // 96 nodes
  p.name = "hyperx-6x4-small";
  return p;
}

struct PlaneResult {
  double dirty = 1.0;       // aggregate changed-tree fraction
  double recompute = 1.0;   // aggregate Dijkstra fraction
  bool identical = true;
};

PlaneResult run_engine(topo::Topology& topo, routing::RoutingEngine& engine,
                       const routing::LidSpace& lids,
                       const topo::FaultSchedule::Options& opt) {
  topo::FaultSchedule schedule = topo::FaultSchedule::plan(topo, opt);
  routing::DeltaRouter router(engine);
  PlaneResult out;
  std::int64_t changed = 0;
  std::int64_t recomputed = 0;
  std::int64_t total = 0;
  for (std::int32_t stage = 0; stage <= schedule.num_stages(); ++stage) {
    routing::DeltaUpdate update;
    if (stage > 0) {
      topo::FaultReport report = schedule.apply_stage(topo, stage - 1);
      update.disabled = std::move(report.disabled_channels);
    }
    const routing::RouteResult full = engine.compute(topo, lids);
    routing::DeltaStats stats;
    const routing::RouteResult& delta =
        stage == 0 ? router.reroute_full(topo, lids)
                   : router.reroute(topo, lids, update, &stats);
    if (!(delta == full)) out.identical = false;
    if (stage > 0) {
      changed += stats.full_recompute ? stats.columns_total
                                      : stats.columns_changed;
      recomputed += stats.columns_recomputed;
      total += stats.columns_total;
    }
  }
  schedule.revert(topo);
  if (total > 0) {
    out.dirty = static_cast<double>(changed) / static_cast<double>(total);
    out.recompute =
        static_cast<double>(recomputed) / static_cast<double>(total);
  }
  return out;
}

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  report::ResultSet rs;
  topo::FatTree ft(tree_params(args.quick));
  topo::HyperX hx(hyperx_params(args.quick));

  topo::FaultSchedule::Options opt;
  opt.stages = args.quick ? 3 : 5;
  opt.links_per_stage = args.quick ? 2 : 3;
  opt.switches_per_stage = 0;  // cable attrition
  opt.seed = args.seed;

  std::printf("== Incremental reroute savings (%d stages x %d cables) "
              "==\n\n", opt.stages, opt.links_per_stage);
  stats::TextTable table({"fabric / engine", "agg dirty frac",
                          "agg recompute frac", "delta == full"});
  report::ResultTable& out =
      rs.table("dirty", {"fabric / engine", "agg dirty frac",
                         "agg recompute frac", "delta == full"});

  struct Arm {
    const char* key;
    const char* label;
    topo::Topology& topo;
    routing::RoutingEngine& engine;
    routing::LidSpace lids;
  };
  routing::FtreeEngine ftree(ft);
  routing::UpDownEngine updown;
  routing::DfssspEngine dfsssp(8);
  const routing::LidSpace ft_lids =
      routing::LidSpace::consecutive(ft.topo().num_terminals(), 0);
  const routing::LidSpace hx_lids =
      routing::LidSpace::consecutive(hx.topo().num_terminals(), 0);
  std::vector<Arm> arms;
  arms.push_back({"ftree", "fat-tree / ftree", ft.topo(), ftree, ft_lids});
  arms.push_back({"updown", "fat-tree / updown", ft.topo(), updown, ft_lids});
  arms.push_back(
      {"hx_dfsssp", "hyperx / dfsssp", hx.topo(), dfsssp, hx_lids});

  bool all_identical = true;
  for (Arm& arm : arms) {
    const PlaneResult r = run_engine(arm.topo, arm.engine, arm.lids, opt);
    all_identical = all_identical && r.identical;
    const std::vector<std::string> row{
        arm.label, stats::format_fixed(r.dirty, 4),
        stats::format_fixed(r.recompute, 4), r.identical ? "yes" : "NO"};
    table.add_row(row);
    out.add_row(row);
    rs.set(std::string(arm.key) + "_dirty_fraction", r.dirty);
    rs.set(std::string(arm.key) + "_recompute_fraction", r.recompute);
  }
  rs.set("delta_identical", all_identical ? 1.0 : 0.0);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("delta tables bit-identical to full recompute: %s\n",
              all_identical ? "yes" : "NO (BUG)");
  return rs;
}

}  // namespace

report::Experiment reroute_dirty_experiment() {
  return {"reroute_dirty",
          "Incremental reroute dirty fractions and delta identity",
          "repo (delta-SPF contract)", run};
}

}  // namespace hxsim::bench
