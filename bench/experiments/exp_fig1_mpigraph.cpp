// Figure 1 experiment: mpiGraph observable bandwidth for 28 nodes, three
// planes (Fat-Tree/ftree 2.26 GiB/s, HyperX/DFSSSP 0.84 GiB/s, HyperX/
// PARX 1.39 GiB/s in the paper).  Prints the heatmaps and fills the
// `planes` table plus per-plane mean metrics the claims bind to.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "experiments/experiments.hpp"
#include "routing/dfsssp.hpp"
#include "sim/flowsim.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "workloads/mpigraph.hpp"

namespace hxsim::bench {

namespace {

struct Plane {
  const char* label;
  const char* key;  // metric prefix, e.g. "ft_ftree"
  const mpi::Cluster* cluster;
};

/// Observability export of the congested plane: peak per-channel
/// utilisation across all mpiGraph shifts, flow-solver metrics of every
/// shift, and the DFSSSP routing phase timers.
void export_trace(const BenchArgs& args,
                  const workloads::PaperSystem& system,
                  const mpi::Placement& placement, std::int32_t nodes,
                  std::int64_t bytes) {
  const mpi::Cluster& hx = system.hx_dfsssp();
  obs::MetricRegistry reg;

  sim::FlowSim flows(hx.topo(), hx.link());
  obs::FlowSolveTrace ftrace;
  std::vector<double> peak(static_cast<std::size_t>(hx.topo().num_channels()),
                           0.0);
  stats::Rng rng(args.seed);
  for (std::int32_t shift = 1; shift < nodes; ++shift) {
    std::vector<sim::Flow> round;
    round.reserve(static_cast<std::size_t>(nodes));
    for (std::int32_t i = 0; i < nodes; ++i) {
      const topo::NodeId src = placement.node_of(i);
      const topo::NodeId dst = placement.node_of((i + shift) % nodes);
      auto msg = hx.route_message(src, dst, bytes, rng);
      if (!msg) continue;
      round.push_back(sim::Flow{std::move(msg->path), bytes});
    }
    const std::vector<double> util = flows.channel_utilisation(round, &ftrace);
    for (std::size_t ch = 0; ch < util.size(); ++ch)
      peak[ch] = std::max(peak[ch], util[ch]);
  }
  ftrace.publish(reg, "flow_solves");

  auto& table = reg.table("hx_channel_util", {"channel", "src_switch",
                                              "dst_switch", "switch_link",
                                              "peak_util"});
  for (topo::ChannelId ch = 0; ch < hx.topo().num_channels(); ++ch) {
    const std::size_t c = static_cast<std::size_t>(ch);
    if (peak[c] <= 0.0) continue;
    const topo::Channel& chan = hx.topo().channel(ch);
    table.add_row(
        {static_cast<double>(ch),
         chan.src.is_switch() ? static_cast<double>(chan.src.index) : -1.0,
         chan.dst.is_switch() ? static_cast<double>(chan.dst.index) : -1.0,
         hx.topo().is_switch_channel(ch) ? 1.0 : 0.0, peak[c]});
  }

  obs::PhaseTimings timings;
  routing::DfssspEngine engine;
  engine.set_timings(&timings);
  const routing::RouteResult rr = engine.compute(hx.topo(), hx.lids());
  reg.add_timings("dfsssp_", timings);
  reg.set("dfsssp_num_vls_used", static_cast<double>(rr.num_vls_used));

  write_trace(args, reg);
}

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  const workloads::PaperSystem& system = shared_system(args.quick);
  const std::int32_t nodes = args.quick ? 16 : 28;
  report::ResultSet rs;

  std::printf("== Figure 1: mpiGraph bandwidth heatmaps (%d nodes, linear "
              "placement) ==\n\n",
              nodes);

  const Plane planes[] = {
      {"Fat-Tree with ftree routing", "ft_ftree", &system.ft_ftree()},
      {"HyperX with DFSSSP routing", "hx_dfsssp", &system.hx_dfsssp()},
      {"HyperX with PARX routing", "hx_parx", &system.hx_parx()},
  };

  const mpi::Placement placement =
      mpi::Placement::linear(nodes,
                             mpi::Placement::whole_machine(system.num_nodes()));
  const double scale_max =
      system.ft_ftree().link().bandwidth / static_cast<double>(stats::kGiB);

  stats::TextTable table({"plane", "mean GiB/s (off-diag)", "min", "max",
                          "paper"});
  report::ResultTable& out = rs.table("planes", {"plane",
                                                 "mean GiB/s (off-diag)",
                                                 "min", "max",
                                                 "paper GiB/s"});
  const char* paper_values[] = {"2.26", "0.84", "1.39"};
  CsvSink csv(args, {"plane", "sender", "receiver", "gib_per_s"});

  int idx = 0;
  double means[3] = {0.0, 0.0, 0.0};
  for (const Plane& plane : planes) {
    workloads::MpiGraphOptions opts;
    opts.seed = args.seed;
    const stats::Heatmap map =
        workloads::mpigraph(*plane.cluster, placement, nodes, opts);
    std::printf("%s\n%s\n", plane.label, map.to_string(scale_max).c_str());
    const double mean = map.mean_off_diagonal();
    means[idx] = mean;
    table.add_row({plane.label, stats::format_fixed(mean, 2),
                   stats::format_fixed(map.min_value(), 2),
                   stats::format_fixed(map.max_value(), 2),
                   paper_values[idx]});
    out.add_row({plane.label, stats::format_fixed(mean, 2),
                 stats::format_fixed(map.min_value(), 2),
                 stats::format_fixed(map.max_value(), 2),
                 paper_values[idx]});
    rs.set(std::string(plane.key) + "_mean_gibs", mean);
    ++idx;
    for (std::size_t r = 0; r < map.rows(); ++r)
      for (std::size_t c = 0; c < map.cols(); ++c)
        csv.add_row({plane.label, std::to_string(c), std::to_string(r),
                     stats::format_fixed(map.at(r, c), 4)});
  }
  std::printf("%s", table.to_string().c_str());
  // The figure's headline: PARX recovers bandwidth DFSSSP loses to the
  // shared-cable hotspot.
  rs.set("parx_gain_over_dfsssp", means[2] / means[1]);

  if (args.trace_path) {
    workloads::MpiGraphOptions opts;
    export_trace(args, system, placement, nodes, opts.bytes);
  }
  return rs;
}

}  // namespace

report::Experiment fig1_mpigraph_experiment() {
  return {"fig1_mpigraph",
          "mpiGraph bandwidth heatmaps across the three planes",
          "Fig. 1", run};
}

}  // namespace hxsim::bench
