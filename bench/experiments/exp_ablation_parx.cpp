// Ablation experiment of the PARX design choices (DESIGN.md): link
// pruning on/off, demand-weighted edge updates on/off, LMC multipathing
// vs plain DFSSSP, on the degraded dense-allocation HyperX.
#include <cstdio>

#include "core/parx.hpp"
#include "core/quadrant.hpp"
#include "experiments/experiments.hpp"
#include "mpi/collectives.hpp"
#include "routing/dfsssp.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "topo/fault_injector.hpp"
#include "workloads/imb.hpp"
#include "workloads/mpigraph.hpp"

namespace hxsim::bench {

namespace {

struct Variant {
  std::string name;
  std::string key;  // metric prefix
  mpi::Cluster cluster;
};

double alltoall_time(const mpi::Cluster& cluster, std::int32_t n,
                     std::uint64_t seed) {
  const mpi::Placement p =
      mpi::Placement::linear(n, mpi::Placement::whole_machine(
                                    cluster.num_nodes()));
  mpi::Transport t(cluster, p, seed);
  return t.execute(mpi::collectives::alltoall_pairwise(n, 512 * 1024));
}

double mpigraph_mean(const mpi::Cluster& cluster, std::int32_t n,
                     std::uint64_t seed) {
  const mpi::Placement p =
      mpi::Placement::linear(n, mpi::Placement::whole_machine(
                                    cluster.num_nodes()));
  workloads::MpiGraphOptions opts;
  opts.seed = seed;
  return workloads::mpigraph(cluster, p, n, opts).mean_off_diagonal();
}

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  report::ResultSet rs;
  topo::HyperX hx(args.quick
                      ? topo::HyperXParams{{6, 4}, 4, "hyperx-6x4"}
                      : topo::paper_hyperx_params());
  // Same degraded fabric as before, expressed as a one-stage fault schedule
  // (a link-only single stage is bit-identical to the legacy injector).
  topo::FaultSchedule::Options faults;
  faults.links_per_stage = args.quick ? 2 : 15;
  faults.seed = 1003;
  topo::FaultSchedule::plan(hx.topo(), faults).apply_all(hx.topo());

  // A synthetic all-pairs demand over the dense allocation (mpiGraph-like).
  const std::int32_t dense = args.quick ? 16 : 28;
  core::DemandMatrix demands(hx.topo().num_terminals());
  for (topo::NodeId s = 0; s < dense; ++s)
    for (topo::NodeId d = 0; d < dense; ++d)
      if (s != d) demands.set(s, d, 255);

  std::vector<Variant> variants;
  {
    routing::LidSpace lids =
        routing::LidSpace::consecutive(hx.topo().num_terminals(), 0);
    routing::DfssspEngine engine(8);
    variants.push_back(Variant{"DFSSSP (no LMC, minimal)", "dfsssp",
                               mpi::Cluster(hx.topo(), lids,
                                            engine.compute(hx.topo(), lids),
                                            mpi::make_ob1())});
  }
  auto add_parx = [&](const std::string& name, const std::string& key,
                      core::ParxOptions opts, const core::DemandMatrix& dm) {
    routing::LidSpace lids = core::make_parx_lid_space(hx);
    core::ParxEngine engine(hx, dm, opts);
    variants.push_back(Variant{name, key,
                               mpi::Cluster(hx.topo(), lids,
                                            engine.compute(hx.topo(), lids),
                                            mpi::make_bfo())});
  };
  add_parx("PARX full (pruning + demand)", "parx_full", core::ParxOptions{},
           demands);
  {
    core::ParxOptions opts;
    opts.use_demand_weights = false;
    add_parx("PARX w/o demand weights", "parx_nodemand", opts,
             core::DemandMatrix(hx.topo().num_terminals()));
  }
  {
    core::ParxOptions opts;
    opts.use_link_pruning = false;
    add_parx("PARX w/o link pruning (minimal LIDs)", "parx_noprune", opts,
             demands);
  }

  std::printf("== PARX ablation (dense %d-node allocation) ==\n\n", dense);
  stats::TextTable table({"variant", "VLs", "mpiGraph mean GiB/s",
                          "14-node Alltoall 512KiB [ms]"});
  report::ResultTable& out =
      rs.table("variants", {"variant", "VLs", "mpiGraph mean GiB/s",
                            "14-node Alltoall 512KiB [ms]"});
  for (const Variant& v : variants) {
    const double mean = mpigraph_mean(v.cluster, dense, args.seed);
    const double a2a =
        alltoall_time(v.cluster, std::min(dense, 14), args.seed) * 1e3;
    const std::vector<std::string> row{
        v.name, std::to_string(v.cluster.route().num_vls_used),
        stats::format_fixed(mean, 2), stats::format_fixed(a2a, 2)};
    table.add_row(row);
    out.add_row(row);
    rs.set(v.key + "_mpigraph_gibs", mean);
    rs.set(v.key + "_alltoall_ms", a2a);
  }
  std::printf("%s", table.to_string().c_str());
  // The two design-choice ratios the reading spells out.
  const double full = *rs.find("parx_full_mpigraph_gibs");
  rs.set("pruning_gain", full / *rs.find("parx_noprune_mpigraph_gibs"));
  rs.set("demand_gain", full / *rs.find("parx_nodemand_mpigraph_gibs"));
  rs.set("parx_over_dfsssp", full / *rs.find("dfsssp_mpigraph_gibs"));
  std::printf("\nReading: pruning buys the bandwidth (row 2 vs 4); demand "
              "weights refine it further (row 2 vs 3); plain DFSSSP (row 1) "
              "shows the shared-cable collapse PARX exists to fix.\n");
  return rs;
}

}  // namespace

report::Experiment ablation_parx_experiment() {
  return {"ablation_parx",
          "PARX design-choice ablation on the degraded HyperX",
          "DESIGN.md / SS3.2", run};
}

}  // namespace hxsim::bench
