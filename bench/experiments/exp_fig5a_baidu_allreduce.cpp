// Figure 5a experiment: Baidu DeepBench ring allreduce, average latency
// per array length (4-byte floats, 0 ... 512 Mi elements), relative gain
// over the Fat-Tree/ftree/linear baseline for the other four combinations.
#include <cstdio>
#include <map>

#include "experiments/experiments.hpp"
#include "mpi/collectives.hpp"
#include "stats/gain.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "workloads/imb.hpp"

namespace hxsim::bench {

namespace {

/// The x-axis of Figure 5a (array lengths in floats).
std::vector<std::int64_t> array_lengths(bool quick) {
  std::vector<std::int64_t> lengths{0,       32,       256,      1024,
                                    4096,    16384,    65536,    262144,
                                    1048576, 8388608,  67108864, 536870912};
  if (quick) lengths.resize(6);
  return lengths;
}

/// Metric key per non-baseline config index (fixed PaperSystem order).
const char* config_key(std::size_t cfg) {
  switch (cfg) {
    case 1: return "ft_sssp_clustered";
    case 2: return "hx_dfsssp_linear";
    case 3: return "hx_dfsssp_random";
    case 4: return "hx_parx_clustered";
  }
  return "baseline";
}

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  report::ResultSet rs;
  const workloads::PaperSystem& system = shared_system(args.quick);
  const std::int32_t machine = system.num_nodes();

  std::vector<std::int32_t> node_counts =
      workloads::capability_node_counts(false, machine);
  if (args.quick) node_counts.assign({7, 14, 28});
  const auto lengths = array_lengths(args.quick);

  CsvSink csv(args, {"config", "nodes", "array_len", "tavg_s",
                     "gain_vs_baseline"});

  std::map<std::tuple<std::size_t, std::int32_t, std::int64_t>, double> best;
  for (std::size_t cfg = 0; cfg < system.configs().size(); ++cfg) {
    const auto& config = system.configs()[cfg];
    const std::int32_t reps = reps_for(config, args);
    for (const std::int32_t n : node_counts) {
      for (std::int32_t rep = 0; rep < reps; ++rep) {
        const mpi::Placement placement =
            place(config, n, machine, args.seed + 131 * rep);
        mpi::Transport transport(*config.cluster, placement, args.seed + rep);
        for (const std::int64_t len : lengths) {
          const double t = transport.execute(
              mpi::collectives::allreduce_ring(n, len * 4));
          auto [it, inserted] = best.try_emplace({cfg, n, len}, t);
          if (!inserted && t < it->second) it->second = t;
        }
      }
    }
  }

  // The figure's asymptote: gain at the largest array on the largest
  // allocation, per combination.
  const std::int32_t n_top = node_counts.back();
  const std::int64_t len_top = lengths.back();
  report::ResultTable& largest =
      rs.table("largest", {"configuration",
                           "gain @ largest array, full allocation"});

  for (std::size_t cfg = 1; cfg < system.configs().size(); ++cfg) {
    const auto& config = system.configs()[cfg];
    std::printf("== Fig. 5a Baidu ring allreduce: %s (gain vs %s) ==\n",
                config.name.c_str(), system.baseline().name.c_str());
    std::vector<std::string> header{"array len"};
    for (const std::int32_t n : node_counts)
      header.push_back(std::to_string(n));
    stats::TextTable table(header);
    for (const std::int64_t len : lengths) {
      std::vector<std::string> row{std::to_string(len)};
      for (const std::int32_t n : node_counts) {
        const double base = best.at({std::size_t{0}, n, len});
        const double cand = best.at({cfg, n, len});
        const double gain = stats::relative_gain(
            base, cand, stats::Direction::kLowerIsBetter);
        row.push_back(stats::format_gain(gain));
        csv.add_row({config.name, std::to_string(n), std::to_string(len),
                     stats::format_fixed(cand, 6), stats::format_gain(gain)});
      }
      table.add_row(row);
    }
    std::printf("%s\n", table.to_string().c_str());

    const double top_gain = stats::relative_gain(
        best.at({std::size_t{0}, n_top, len_top}),
        best.at({cfg, n_top, len_top}), stats::Direction::kLowerIsBetter);
    largest.add_row({config.name, stats::format_gain(top_gain)});
    rs.set(std::string(config_key(cfg)) + "_gain_largest", top_gain);
  }
  return rs;
}

}  // namespace

report::Experiment fig5a_baidu_allreduce_experiment() {
  return {"fig5a_baidu_allreduce",
          "Baidu DeepBench ring-allreduce gains over the baseline",
          "Fig. 5a", run};
}

}  // namespace hxsim::bench
