// Registry of the paper-figure experiments (bench/experiments/exp_*.cpp).
//
// Each figure/table bench's measurement core lives here as a registered
// report::Experiment; the bench binary itself is a thin main() that runs
// its experiment through run_experiment_main(), and bench/repro_pipeline
// runs all of them in one process, folds the ResultSets into REPRO.json,
// checks the committed claims/ tables and regenerates EXPERIMENTS.md.
//
// Experiments print the same human-readable stdout the standalone benches
// always did *and* fill a structured ResultSet (metrics the claims bind
// to, tables the renderer embeds in the docs).
#pragma once

#include "bench_common.hpp"
#include "report/experiment.hpp"

namespace hxsim::bench {

/// BenchArgs view of the pipeline options, so extracted bench bodies keep
/// their `args.*` spelling and the bench:: helpers (place, reps_for,
/// CsvSink, write_trace) unchanged.  Applies Options.threads to the exec
/// layer, exactly as BenchArgs::parse does.
[[nodiscard]] BenchArgs to_bench_args(const report::Options& options);

/// Inverse adapter for the thin bench mains.
[[nodiscard]] report::Options to_options(const BenchArgs& args);

/// One lazily built PaperSystem per scale, shared by every experiment in
/// the process (building the 972-switch tree's routings costs seconds;
/// the pipeline would otherwise pay it 10+ times).
[[nodiscard]] const workloads::PaperSystem& shared_system(bool small_scale);

// One factory per experiment; ids equal the bench binary names.
report::Experiment fig1_mpigraph_experiment();
report::Experiment table1_rules_experiment();
report::Experiment fig4_collectives_experiment();
report::Experiment fig5a_baidu_allreduce_experiment();
report::Experiment fig5b_barrier_experiment();
report::Experiment fig5c_ebb_experiment();
report::Experiment fig6_apps_experiment();
report::Experiment fig6_x500_experiment();
report::Experiment fig7_capacity_experiment();
report::Experiment threshold_calibration_experiment();
report::Experiment topology_properties_experiment();
report::Experiment ablation_parx_experiment();
report::Experiment adaptive_routing_experiment();
report::Experiment uniform_random_throughput_experiment();
report::Experiment topology_comparison_experiment();
report::Experiment taper_study_experiment();
// Repo-level experiments (claims about this implementation, not the
// paper): incremental-reroute savings, typed packet-engine speedup and
// indexed flow-solver speedup.
report::Experiment reroute_dirty_experiment();
report::Experiment pktsim_speedup_experiment();
report::Experiment flowsim_speedup_experiment();
report::Experiment online_resilience_experiment();

/// Registers every experiment above.
void register_all_experiments(report::Registry& registry);

/// Process-wide registry, populated once on first use.
[[nodiscard]] report::Registry& global_registry();

/// Thin-main entry point: parses the standard bench CLI, runs `id` from
/// the global registry (stdout output unchanged from the pre-registry
/// binaries), discards the ResultSet.  Returns the process exit code.
int run_experiment_main(const char* id, int argc, char** argv);

}  // namespace hxsim::bench
