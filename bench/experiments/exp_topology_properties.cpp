// Section 2 experiment: switch/terminal/cable counts of both planes, the
// HyperX bisection ratio (paper: 57.1 %), the missing-cable degradation,
// and routed path-length statistics per engine.
#include <cstdio>

#include "experiments/experiments.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "workloads/paper_system.hpp"

namespace hxsim::bench {

namespace {

stats::Summary path_lengths(const mpi::Cluster& cluster, std::uint64_t seed,
                            std::int32_t samples, std::int64_t bytes = 1024) {
  stats::Rng rng(seed);
  std::vector<double> hops;
  const std::int32_t n = cluster.num_nodes();
  for (std::int32_t i = 0; i < samples; ++i) {
    const auto src = static_cast<topo::NodeId>(rng.next_below(n));
    const auto dst = static_cast<topo::NodeId>(rng.next_below(n));
    if (src == dst) continue;
    const auto msg = cluster.route_message(src, dst, bytes, rng);
    if (msg)
      hops.push_back(static_cast<double>(msg->path.size()) - 2.0);
  }
  return stats::summarize(hops);
}

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  const workloads::PaperSystem& system = shared_system(args.quick);
  const auto& ft = system.fat_tree();
  const auto& hx = system.hyperx();
  report::ResultSet rs;

  std::printf("== Topology properties (Section 2) ==\n\n");
  stats::TextTable t({"property", "Fat-Tree", "HyperX", "paper"});
  t.add_row({"switches", std::to_string(ft.topo().num_switches()),
             std::to_string(hx.topo().num_switches()),
             "972 (3x324) / 96"});
  t.add_row({"terminals", std::to_string(ft.topo().num_terminals()),
             std::to_string(hx.topo().num_terminals()), "672 / 672"});
  t.add_row({"cables (enabled)",
             std::to_string(ft.topo().num_switch_links()),
             std::to_string(hx.topo().num_switch_links()),
             "-197 / -15 missing"});
  t.add_row({"cables (total)",
             std::to_string(ft.topo().num_switch_links(false)),
             std::to_string(hx.topo().num_switch_links(false)),
             "11664 / 864"});
  t.add_row({"bisection ratio", "1.00 (undersubscribed)",
             stats::format_fixed(hx.bisection_ratio(), 4), "full / 0.571"});
  t.add_row({"connected",
             ft.topo().switches_connected() ? "yes" : "NO",
             hx.topo().switches_connected() ? "yes" : "NO", "yes / yes"});
  std::printf("%s\n", t.to_string().c_str());

  rs.set("ft_switches", ft.topo().num_switches());
  rs.set("hx_switches", hx.topo().num_switches());
  rs.set("ft_terminals", ft.topo().num_terminals());
  rs.set("hx_terminals", hx.topo().num_terminals());
  rs.set("ft_cables_total", ft.topo().num_switch_links(false));
  rs.set("hx_cables_total", hx.topo().num_switch_links(false));
  rs.set("ft_cables_enabled", ft.topo().num_switch_links());
  rs.set("hx_cables_enabled", hx.topo().num_switch_links());
  rs.set("hx_bisection_ratio", hx.bisection_ratio());
  rs.set("ft_connected", ft.topo().switches_connected() ? 1.0 : 0.0);
  rs.set("hx_connected", hx.topo().switches_connected() ? 1.0 : 0.0);

  report::ResultTable& props =
      rs.table("properties", {"property", "Fat-Tree", "HyperX", "paper"});
  for (const auto& row : t.rows()) props.add_row(row);

  std::printf("Routed switch-hop statistics (1000 random pairs):\n");
  stats::TextTable p({"plane/routing", "min", "median", "max", "VLs"});
  report::ResultTable& hops =
      rs.table("hops", {"plane/routing", "min", "median", "max", "VLs"});
  struct Row {
    const char* name;
    const char* key;
    const mpi::Cluster* cluster;
    std::int64_t bytes;
  } rows[] = {
      {"Fat-Tree / ftree", "ft_ftree", &system.ft_ftree(), 1024},
      {"Fat-Tree / SSSP", "ft_sssp", &system.ft_sssp(), 1024},
      {"HyperX / DFSSSP", "hx_dfsssp", &system.hx_dfsssp(), 1024},
      {"HyperX / PARX (small msgs)", "hx_parx_small", &system.hx_parx(), 256},
      {"HyperX / PARX (large msgs)", "hx_parx_large", &system.hx_parx(),
       1 << 20},
  };
  for (const Row& row : rows) {
    const stats::Summary s =
        path_lengths(*row.cluster, args.seed, 1000, row.bytes);
    const std::int32_t vls = row.cluster->route().num_vls_used;
    p.add_row({row.name, stats::format_fixed(s.min, 0),
               stats::format_fixed(s.median, 0),
               stats::format_fixed(s.max, 0), std::to_string(vls)});
    hops.add_row({row.name, stats::format_fixed(s.min, 0),
                  stats::format_fixed(s.median, 0),
                  stats::format_fixed(s.max, 0), std::to_string(vls)});
    rs.set(std::string(row.key) + "_median_hops", s.median);
    rs.set(std::string(row.key) + "_vls", vls);
  }
  std::printf("%s", p.to_string().c_str());
  std::printf(
      "\n(paper: DFSSSP needs 3 VLs on the 12x8, PARX 5-8; our greedy\n"
      " Pearce-Kelly layering packs the same path sets into fewer lanes,\n"
      " which only helps -- fewer lanes than the QDR budget of 8)\n");
  return rs;
}

}  // namespace

report::Experiment topology_properties_experiment() {
  return {"topology_properties",
          "Plane counts, bisection ratio and routed path lengths",
          "SS2", run};
}

}  // namespace hxsim::bench
