// Repo-level experiment: the online fault layer, as claims.  One timed
// cable-fault stage on the HyperX/DFSSSP fabric, the repaired tables
// installed per switch after each sweep delay; the metrics the committed
// claims bind to are the off-switch bit-identity (an inert PktOnlineConfig
// changes nothing) and the retry retention gain (end-host retransmission
// never loses delivered goodput against the same transient).
#include <cstdio>
#include <string>
#include <vector>

#include "experiments/experiments.hpp"
#include "routing/dfsssp.hpp"
#include "sim/adaptive.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "topo/hyperx.hpp"
#include "workloads/online_resilience.hpp"

namespace hxsim::bench {

namespace {

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  report::ResultSet rs;

  topo::HyperXParams params;
  if (args.quick) {
    params.dims = {6, 4};
    params.terminals_per_switch = 4;  // 96 nodes
    params.name = "hyperx-6x4-small";
  } else {
    params = topo::paper_hyperx_params();
  }
  topo::HyperX hx(params);
  routing::LidSpace lids =
      routing::LidSpace::consecutive(hx.topo().num_terminals(), 0);
  routing::DfssspEngine dfsssp(8);
  const sim::DalRouter dal(hx);

  workloads::OnlineResilienceOptions opt;
  opt.links_failed = args.quick ? 4 : 8;
  opt.fault_seed = args.seed;
  opt.traffic_seed = args.seed;
  opt.messages = args.quick ? 64 : 192;
  opt.propagation_delays =
      args.quick ? std::vector<double>{0.0, 10e-6, 50e-6}
                 : std::vector<double>{0.0, 5e-6, 20e-6, 50e-6};
  opt.threads = args.threads;

  std::printf("== Online faults, %s / dfsssp: %d cables die at t = %.1f us "
              "==\n\n",
              hx.topo().name().c_str(), opt.links_failed,
              opt.fault_time * 1e6);

  const workloads::OnlineResilienceReport report =
      workloads::run_online_resilience_campaign(hx.topo(), dfsssp, lids, &dal,
                                                opt);

  const std::vector<std::string> header{
      "arm", "delay [us]", "retry", "delivered", "in-flight", "blackhole",
      "ttl", "retries", "retention", "recovery [us]"};
  stats::TextTable table(header);
  report::ResultTable& out = rs.table("retention", header);
  for (const auto& row : report.rows) {
    const std::vector<std::string> cells{
        row.arm,
        stats::format_fixed(row.propagation_delay * 1e6, 1),
        row.retry ? "on" : "off",
        std::to_string(row.messages_delivered) + "/" +
            std::to_string(row.messages),
        std::to_string(row.dropped_by_cause[static_cast<std::size_t>(
            obs::PktDropCause::kInFlight)]),
        std::to_string(row.dropped_by_cause[static_cast<std::size_t>(
            obs::PktDropCause::kBlackhole)]),
        std::to_string(row.dropped_by_cause[static_cast<std::size_t>(
            obs::PktDropCause::kTtl)]),
        std::to_string(row.retries),
        stats::format_fixed(row.retention, 3),
        stats::format_fixed(row.recovery_time * 1e6, 1)};
    table.add_row(cells);
    out.add_row(cells);
  }
  std::printf("%s\n", table.to_string().c_str());

  const bool contracts_hold =
      report.all_engines_identical && report.threads_identical &&
      report.blackhole_columns_epoch0 == 0 &&
      report.blackhole_columns_epoch1 == 0;
  rs.set("nofault_identical", report.nofault_identical ? 1.0 : 0.0);
  rs.set("engines_identical", contracts_hold ? 1.0 : 0.0);
  rs.set("retry_retention_gain", report.retry_retention_gain);
  rs.set("cables_failed", static_cast<double>(report.cables_failed));

  std::printf("inert online config bit-identical: %s\n",
              report.nofault_identical ? "yes" : "NO (BUG)");
  std::printf("typed == reference / thread-invariant / no blackhole "
              "columns: %s\n",
              contracts_hold ? "yes" : "NO (BUG)");
  std::printf("retry retention gain (min over delays): %+.3f\n",
              report.retry_retention_gain);
  return rs;
}

}  // namespace

report::Experiment online_resilience_experiment() {
  return {"online_resilience",
          "Mid-run link faults: stale-table transient, epoch propagation "
          "and end-host retry",
          "repo (online-fault contract)", run};
}

}  // namespace hxsim::bench
