// Repo-level experiment: the typed packet-engine rewrite, as claims.
// Reference vs typed engine on the shift workloads of both fabrics plus
// the congested hotspot regime the rewrite targets; every typed result
// must be bitwise identical to the reference, and the committed claims
// gate the single-thread speedup staying at or above parity.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "experiments/experiments.hpp"
#include "routing/dfsssp.hpp"
#include "routing/ftree.hpp"
#include "sim/pktsim.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "topo/fat_tree.hpp"
#include "topo/hyperx.hpp"
#include "workloads/pkt_sweep.hpp"

namespace hxsim::bench {

namespace {

/// Bitwise result equality (NaN-safe); the check-mode comparator.
bool results_equal(const sim::PktSim::Result& a,
                   const sim::PktSim::Result& b) {
  if (a.completion.size() != b.completion.size()) return false;
  if (!a.completion.empty() &&
      std::memcmp(a.completion.data(), b.completion.data(),
                  a.completion.size() * sizeof(double)) != 0)
    return false;
  return a.deadlock == b.deadlock && a.truncated == b.truncated &&
         std::memcmp(&a.end_time, &b.end_time, sizeof(double)) == 0 &&
         a.packets_delivered == b.packets_delivered &&
         a.packets_total == b.packets_total &&
         a.packets_dropped == b.packets_dropped &&
         a.dropped_by_cause == b.dropped_by_cause &&
         a.retries == b.retries &&
         a.messages_abandoned == b.messages_abandoned &&
         a.message_status == b.message_status &&
         a.events_executed == b.events_executed;
}

struct EngineTiming {
  double seconds = 0.0;
  double events_per_sec = 0.0;
  sim::PktSim::Result result;
};

EngineTiming time_engine(const topo::Topology& topo,
                         const sim::PktSimConfig& base,
                         sim::PktSimConfig::Engine engine,
                         const std::vector<sim::PktMessage>& msgs,
                         std::int32_t reps) {
  sim::PktSimConfig cfg = base;
  cfg.engine = engine;
  sim::PktSim simulator(topo, cfg);
  (void)simulator.run(msgs);  // warm-up: sizes scratch, touches pages
  EngineTiming t;
  PhaseClock clock;
  for (std::int32_t r = 0; r < reps; ++r) t.result = simulator.run(msgs);
  t.seconds = clock.lap() / reps;
  if (t.seconds > 0.0)
    t.events_per_sec =
        static_cast<double>(t.result.events_executed) / t.seconds;
  return t;
}

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  report::ResultSet rs;
  const std::int32_t reps = args.quick ? 2 : std::max(args.reps, 1);

  const topo::HyperX hx(args.quick ? topo::small_hyperx_params()
                                   : topo::paper_hyperx_params());
  const auto hx_lids =
      routing::LidSpace::consecutive(hx.topo().num_terminals(), 0);
  routing::DfssspEngine dfsssp(8);
  const auto hx_route = dfsssp.compute(hx.topo(), hx_lids);

  const topo::FatTree ft(args.quick ? topo::small_fat_tree_params()
                                    : topo::paper_fat_tree_params());
  const auto ft_lids =
      routing::LidSpace::consecutive(ft.topo().num_terminals(), 0);
  routing::FtreeEngine ftree(ft);
  const auto ft_route = ftree.compute(ft.topo(), ft_lids);

  const std::int64_t bytes = args.quick ? 16 * 1024 : 64 * 1024;
  const workloads::PktRoutingArm hx_static{"dfsssp", &hx_route, &hx_lids,
                                           nullptr};
  const workloads::PktRoutingArm ft_static{"ftree", &ft_route, &ft_lids,
                                           nullptr};

  workloads::PktPatternSpec shift;
  shift.pattern = workloads::PktPattern::kShift;
  shift.shift = 1;
  shift.bytes = bytes;
  workloads::PktPatternSpec hotspot;
  hotspot.pattern = workloads::PktPattern::kHotspot;
  hotspot.messages = args.quick ? 64 : 256;
  hotspot.bytes = bytes;

  struct Phase {
    const char* key;
    const char* label;
    const topo::Topology& topo;
    const workloads::PktRoutingArm& arm;
    const workloads::PktPatternSpec& spec;
  };
  const std::vector<Phase> phases{
      {"hx_shift", "hyperx dfsssp shift", hx.topo(), hx_static, shift},
      {"ft_shift", "ftree shift", ft.topo(), ft_static, shift},
      {"hx_hotspot", "hyperx dfsssp hotspot", hx.topo(), hx_static,
       hotspot},
  };

  std::printf("== Typed vs reference packet engine (single thread, %d reps) "
              "==\n\n", reps);
  stats::TextTable table({"workload", "events", "ref Mev/s", "typed Mev/s",
                          "speedup", "bit-identical"});
  report::ResultTable& out =
      rs.table("speedup", {"workload", "events", "ref Mev/s", "typed Mev/s",
                           "speedup", "bit-identical"});
  const sim::PktSimConfig cfg;
  bool all_identical = true;
  double min_speedup = 0.0;
  for (const Phase& phase : phases) {
    const auto msgs =
        build_pkt_messages(phase.topo, phase.arm, phase.spec, args.seed);
    const EngineTiming ref = time_engine(
        phase.topo, cfg, sim::PktSimConfig::Engine::kReference, msgs, reps);
    const EngineTiming typed = time_engine(
        phase.topo, cfg, sim::PktSimConfig::Engine::kTyped, msgs, reps);
    const bool identical = results_equal(ref.result, typed.result) &&
                           !ref.result.deadlock && !ref.result.truncated;
    all_identical = all_identical && identical;
    const double speedup =
        typed.seconds > 0.0 ? ref.seconds / typed.seconds : 0.0;
    min_speedup = min_speedup > 0.0 ? std::min(min_speedup, speedup)
                                    : speedup;
    const std::vector<std::string> row{
        phase.label,
        std::to_string(typed.result.events_executed),
        stats::format_fixed(ref.events_per_sec / 1e6, 2),
        stats::format_fixed(typed.events_per_sec / 1e6, 2),
        stats::format_fixed(speedup, 2) + "x",
        identical ? "yes" : "NO"};
    table.add_row(row);
    out.add_row(row);
    rs.set(std::string(phase.key) + "_speedup", speedup);
    rs.set(std::string(phase.key) + "_typed_events_per_sec",
           typed.events_per_sec);
  }
  rs.set("typed_min_speedup", min_speedup);
  rs.set("typed_identical", all_identical ? 1.0 : 0.0);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("typed engine bit-identical to reference: %s\n",
              all_identical ? "yes" : "NO (BUG)");
  return rs;
}

}  // namespace

report::Experiment pktsim_speedup_experiment() {
  return {"pktsim_speedup",
          "Typed packet engine speedup and bitwise identity vs reference",
          "repo (typed-engine contract)", run};
}

}  // namespace hxsim::bench
