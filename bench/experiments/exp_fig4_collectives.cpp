// Figure 4 experiment: IMB collective latency, relative gain of each
// (topology, routing, placement) combination over the Fat-Tree baseline,
// for Bcast, Gather, Scatter, Reduce, Allreduce and Alltoall over node
// counts 7..672 and message sizes 1 B..4 MiB.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>

#include "experiments/experiments.hpp"
#include "stats/gain.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "workloads/apps.hpp"
#include "workloads/imb.hpp"

namespace hxsim::bench {

namespace {

using workloads::ImbOp;

/// Mimics the paper's missing Alltoall boxes: full-system Alltoall with
/// multi-MiB payloads blew the 15-minute walltime there; simulating it here
/// is merely slow, so we skip the same corner.
bool skipped(ImbOp op, std::int32_t nodes, std::int64_t bytes) {
  return op == ImbOp::kAlltoall && nodes >= 448 && bytes > 1024 * 1024;
}

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  report::ResultSet rs;
  const workloads::PaperSystem& system = shared_system(args.quick);
  const std::int32_t machine = system.num_nodes();

  std::vector<std::int32_t> node_counts =
      workloads::capability_node_counts(false, machine);
  if (args.quick)
    node_counts.assign({7, 14, 28});

  CsvSink csv(args, {"op", "config", "nodes", "bytes", "tmin_us",
                     "gain_vs_baseline"});

  // The dense-allocation corner the figure is famous for: the HyperX/
  // DFSSSP/linear (config index 2) Alltoall column at 14 nodes.
  constexpr std::size_t kHxLinear = 2;
  report::ResultTable& a2a14 =
      rs.table("alltoall14", {"msg size", "HX/DFSSSP/linear gain @ 14"});
  double a2a_min = std::numeric_limits<double>::infinity();
  double a2a_max = -std::numeric_limits<double>::infinity();
  double bcast_flat = 0.0;
  double reduce_flat = 0.0;

  for (const ImbOp op : workloads::imb_figure4_ops()) {
    std::vector<std::int64_t> sizes = workloads::imb_message_sizes(op);
    if (args.quick) {
      std::vector<std::int64_t> trimmed;
      for (std::size_t i = 0; i < sizes.size(); i += 4)
        trimmed.push_back(sizes[i]);
      sizes = std::move(trimmed);
    }

    // tmin per (config, nodes, size); best over reps, as the paper reports.
    std::map<std::tuple<std::size_t, std::int32_t, std::int64_t>, double>
        tmin;
    for (std::size_t cfg = 0; cfg < system.configs().size(); ++cfg) {
      const auto& config = system.configs()[cfg];
      const std::int32_t reps = reps_for(config, args);
      for (const std::int32_t n : node_counts) {
        for (std::int32_t rep = 0; rep < reps; ++rep) {
          const mpi::Placement placement = place(
              config, n, machine, args.seed + 97 * rep);
          mpi::Transport transport(*config.cluster, placement,
                                   args.seed + rep);
          for (const std::int64_t bytes : sizes) {
            if (skipped(op, n, bytes)) continue;
            const double t = transport.execute(
                workloads::imb_schedule(op, n, bytes));
            auto [it, inserted] =
                tmin.try_emplace({cfg, n, bytes}, t);
            if (!inserted && t < it->second) it->second = t;
          }
        }
      }
    }

    for (std::size_t cfg = 1; cfg < system.configs().size(); ++cfg) {
      const auto& config = system.configs()[cfg];
      std::printf("== Fig. 4 %s: %s (gain vs %s) ==\n",
                  workloads::to_string(op), config.name.c_str(),
                  system.baseline().name.c_str());
      std::vector<std::string> header{"msg size"};
      for (const std::int32_t n : node_counts)
        header.push_back(std::to_string(n));
      stats::TextTable table(header);
      for (const std::int64_t bytes : sizes) {
        std::vector<std::string> row{stats::format_bytes(bytes)};
        for (const std::int32_t n : node_counts) {
          if (skipped(op, n, bytes)) {
            row.push_back(".");
            continue;
          }
          const double base = tmin.at({std::size_t{0}, n, bytes});
          const double cand = tmin.at({cfg, n, bytes});
          const double gain = stats::relative_gain(
              base, cand, stats::Direction::kLowerIsBetter);
          row.push_back(stats::format_gain(gain));
          csv.add_row({workloads::to_string(op), config.name,
                       std::to_string(n), std::to_string(bytes),
                       stats::format_fixed(stats::to_us(cand), 3),
                       stats::format_gain(gain)});
          if (cfg == kHxLinear && std::isfinite(gain)) {
            if (op == ImbOp::kAlltoall && n == 14) {
              a2a14.add_row({stats::format_bytes(bytes),
                             stats::format_gain(gain)});
              a2a_min = std::min(a2a_min, gain);
              a2a_max = std::max(a2a_max, gain);
            }
            if (op == ImbOp::kBcast)
              bcast_flat = std::max(bcast_flat, std::abs(gain));
            if (op == ImbOp::kReduce)
              reduce_flat = std::max(reduce_flat, std::abs(gain));
          }
        }
        table.add_row(row);
      }
      std::printf("%s\n", table.to_string().c_str());
    }
  }
  if (std::isfinite(a2a_min)) {
    rs.set("alltoall_hx_linear_14n_min_gain", a2a_min);
    rs.set("alltoall_hx_linear_14n_max_gain", a2a_max);
  }
  rs.set("bcast_hx_linear_max_abs_gain", bcast_flat);
  rs.set("reduce_hx_linear_max_abs_gain", reduce_flat);
  return rs;
}

}  // namespace

report::Experiment fig4_collectives_experiment() {
  return {"fig4_collectives",
          "IMB collective gain matrices over the five combinations",
          "Fig. 4", run};
}

}  // namespace hxsim::bench
