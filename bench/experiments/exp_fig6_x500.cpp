// Figure 6j-6l experiment: the x500 benchmarks -- HPL and HPCG compute
// performance [Gflop/s] and Graph500 traversal speed [GTEPS] -- per node
// count and combination (higher is better).
#include <algorithm>
#include <cstdio>

#include "experiments/experiments.hpp"
#include "stats/gain.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "workloads/apps.hpp"
#include "workloads/imb.hpp"
#include "workloads/x500.hpp"

namespace hxsim::bench {

namespace {

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  report::ResultSet rs;
  const workloads::PaperSystem& system = shared_system(args.quick);
  const std::int32_t machine = system.num_nodes();

  CsvSink csv(args, {"bench", "config", "nodes", "metric",
                     "gain_vs_baseline"});
  report::ResultTable& out =
      rs.table("x500", {"benchmark", "nodes", "baseline",
                        "max spread across configs"});

  for (const workloads::AppId id : workloads::x500_apps()) {
    const workloads::AppWorkload probe = workloads::make_app(id, 4);
    const bool is_graph = id == workloads::AppId::kGraph500;
    std::vector<std::int32_t> node_counts = workloads::capability_node_counts(
        probe.power_of_two_scaling, machine);
    if (args.quick) node_counts.resize(std::min<std::size_t>(
        node_counts.size(), 3));

    std::printf("== Fig. 6 %s [%s] (higher is better) ==\n",
                probe.name.c_str(), is_graph ? "GTEPS" : "Gflop/s");
    std::vector<std::string> header{"config"};
    for (const std::int32_t n : node_counts)
      header.push_back(std::to_string(n));
    stats::TextTable table(header);

    // Per node count: baseline metric and the config spread (max/min - 1
    // over all five combinations; the paper finds the x500 codes
    // compute-bound, so the spread stays within a few percent).
    std::vector<double> col_min(node_counts.size(), 0.0);
    std::vector<double> col_max(node_counts.size(), 0.0);
    std::vector<double> baseline_best;
    for (std::size_t cfg = 0; cfg < system.configs().size(); ++cfg) {
      const auto& config = system.configs()[cfg];
      const std::int32_t reps = reps_for(config, args);
      std::vector<std::string> row{config.name};
      for (std::size_t ni = 0; ni < node_counts.size(); ++ni) {
        const std::int32_t n = node_counts[ni];
        const workloads::AppWorkload app = workloads::make_app(id, n);
        double best_metric = 0.0;
        for (std::int32_t rep = 0; rep < reps; ++rep) {
          const mpi::Placement placement =
              place(config, n, machine, args.seed + 307 * rep);
          mpi::Transport transport(*config.cluster, placement,
                                   args.seed + rep);
          const double t = workloads::run_workload(app, transport);
          if (t > workloads::kWalltimeLimit) continue;
          const double metric =
              is_graph ? workloads::gteps(app, t) : workloads::gflops(app, t);
          best_metric = std::max(best_metric, metric);
        }
        if (cfg == 0) baseline_best.push_back(best_metric);
        if (best_metric > 0.0) {
          col_min[ni] = col_min[ni] > 0.0 ? std::min(col_min[ni], best_metric)
                                          : best_metric;
          col_max[ni] = std::max(col_max[ni], best_metric);
        }
        const double gain = stats::relative_gain(
            baseline_best[ni], best_metric,
            stats::Direction::kHigherIsBetter);
        row.push_back(best_metric == 0.0
                          ? "miss"
                          : stats::format_fixed(best_metric, 1) + " (" +
                                stats::format_gain(gain) + ")");
        csv.add_row({probe.name, config.name, std::to_string(n),
                     stats::format_fixed(best_metric, 3),
                     stats::format_gain(gain)});
      }
      table.add_row(row);
    }
    std::printf("%s\n", table.to_string().c_str());

    const std::size_t top = node_counts.size() - 1;
    const double top_spread =
        col_min[top] > 0.0 ? col_max[top] / col_min[top] - 1.0 : 0.0;
    out.add_row({probe.name, std::to_string(node_counts[top]),
                 stats::format_fixed(baseline_best[top], 1) +
                     (is_graph ? " GTEPS" : " Gflop/s"),
                 stats::format_fixed(top_spread * 100.0, 1) + "%"});
    std::string key = is_graph ? "graph500" : (id == workloads::AppId::kHpl
                                                   ? "hpl" : "hpcg");
    rs.set(key + "_top_metric", baseline_best[top]);
    rs.set(key + "_top_spread", top_spread);
  }
  return rs;
}

}  // namespace

report::Experiment fig6_x500_experiment() {
  return {"fig6_x500",
          "HPL/HPCG Gflops and Graph500 GTEPS over the combinations",
          "Fig. 6j-6l", run};
}

}  // namespace hxsim::bench
