// Figure 5c experiment: Netgauge effective bisection bandwidth -- random
// bisections with 1 MiB streams, whiskers over the sample distribution,
// per node count and combination.  The paper's headline: PARX nearly
// doubles the 14-node dense-allocation eBB and wins 2-6 % in the mid
// range, but loses at full scale where global detours add congestion.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "experiments/experiments.hpp"
#include "stats/gain.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "workloads/ebb.hpp"
#include "workloads/imb.hpp"

namespace hxsim::bench {

namespace {

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  report::ResultSet rs;
  const workloads::PaperSystem& system = shared_system(args.quick);
  const std::int32_t machine = system.num_nodes();

  // The figure mixes both capability sequences (4, 8, 14, 16, 28, ...).
  std::vector<std::int32_t> node_counts;
  {
    const auto a = workloads::capability_node_counts(false, machine);
    const auto b = workloads::capability_node_counts(true, machine);
    node_counts.insert(node_counts.end(), a.begin(), a.end());
    node_counts.insert(node_counts.end(), b.begin(), b.end());
    std::sort(node_counts.begin(), node_counts.end());
    node_counts.erase(
        std::unique(node_counts.begin(), node_counts.end()),
        node_counts.end());
  }
  if (args.quick) node_counts.assign({8, 14, 16, 28});

  workloads::EbbOptions ebb_opts;
  ebb_opts.samples = args.quick ? 50 : 250;  // paper: 1000 (slow but exact)
  ebb_opts.seed = args.seed;

  CsvSink csv(args, {"config", "nodes", "median_gibs", "min", "max",
                     "gain_vs_baseline"});

  std::printf("== Fig. 5c effective bisection bandwidth [GiB/s per pair], "
              "%d random bisections ==\n\n", ebb_opts.samples);

  // medians[cfg] and counts align row-by-row across configs (the same
  // even-count filter applies everywhere).
  std::vector<std::int32_t> even_counts;
  std::vector<std::vector<double>> medians(system.configs().size());
  std::vector<double> baseline_median;
  for (std::size_t cfg = 0; cfg < system.configs().size(); ++cfg) {
    const auto& config = system.configs()[cfg];
    std::printf("%s\n", config.name.c_str());
    stats::TextTable table({"nodes", "min", "q25", "median", "q75", "max",
                            "gain vs baseline"});
    std::size_t row_idx = 0;
    for (const std::int32_t n : node_counts) {
      if (n % 2 != 0 && n != 7) continue;  // eBB needs even node counts
      const std::int32_t even_n = n - (n % 2);
      const mpi::Placement placement =
          place(config, even_n, machine, args.seed);
      const workloads::EbbResult result =
          workloads::effective_bisection_bandwidth(*config.cluster, placement,
                                                   even_n, ebb_opts);
      const stats::Summary s = result.summary();
      if (cfg == 0) {
        baseline_median.push_back(s.median);
        even_counts.push_back(even_n);
      }
      medians[cfg].push_back(s.median);
      const double base = baseline_median[row_idx++];
      const double gain = stats::relative_gain(
          base, s.median, stats::Direction::kHigherIsBetter);
      table.add_row({std::to_string(even_n), stats::format_fixed(s.min, 2),
                     stats::format_fixed(s.q25, 2),
                     stats::format_fixed(s.median, 2),
                     stats::format_fixed(s.q75, 2),
                     stats::format_fixed(s.max, 2),
                     stats::format_gain(gain)});
      csv.add_row({config.name, std::to_string(even_n),
                   stats::format_fixed(s.median, 4),
                   stats::format_fixed(s.min, 4),
                   stats::format_fixed(s.max, 4), stats::format_gain(gain)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  // The figure's observations, machine-checked.  Row index of the 14-node
  // allocation and the full system:
  auto row_of = [&](std::int32_t n) -> std::int32_t {
    for (std::size_t i = 0; i < even_counts.size(); ++i)
      if (even_counts[i] == n) return static_cast<std::int32_t>(i);
    return -1;
  };
  auto gain_at = [&](std::size_t cfg, std::size_t row) {
    return stats::relative_gain(baseline_median[row], medians[cfg][row],
                                stats::Direction::kHigherIsBetter);
  };
  const std::int32_t r14 = row_of(14);
  const std::size_t last = even_counts.size() - 1;
  report::ResultTable& out =
      rs.table("observations", {"observation", "paper", "measured"});
  if (r14 >= 0) {
    const double dip = gain_at(2, static_cast<std::size_t>(r14));
    const double ratio = medians[4][static_cast<std::size_t>(r14)] /
                         medians[2][static_cast<std::size_t>(r14)];
    rs.set("hx_linear_14n_gain", dip);
    rs.set("parx_over_dfsssp_14n", ratio);
    out.add_row({"HX/DFSSSP/linear dip at 14 nodes", "large negative",
                 stats::format_gain(dip)});
    out.add_row({"PARX recovers the 14-node eBB (x over DFSSSP)", "~1.9x",
                 stats::format_fixed(ratio, 2) + "x"});
  }
  // Mid-range random placement (28 <= n < full system).
  double mid_min = std::numeric_limits<double>::infinity();
  double mid_max = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < even_counts.size(); ++i) {
    if (even_counts[i] < 28 || i == last) continue;
    const double g = gain_at(3, i);
    mid_min = std::min(mid_min, g);
    mid_max = std::max(mid_max, g);
  }
  if (std::isfinite(mid_min)) {
    rs.set("hx_random_midrange_min_gain", mid_min);
    rs.set("hx_random_midrange_max_gain", mid_max);
    out.add_row({"HX/DFSSSP/random mid-range gain", "+0.02 .. +0.06",
                 stats::format_gain(mid_min) + " .. " +
                     stats::format_gain(mid_max)});
  }
  const double full_gain = gain_at(4, last);
  rs.set("parx_fullsystem_gain", full_gain);
  out.add_row({"PARX at full system (global detours congest)", "negative",
               stats::format_gain(full_gain)});
  rs.set("ft_ebb_smallest_gibs", baseline_median.front());
  rs.set("ft_ebb_largest_gibs", baseline_median.back());
  out.add_row({"Fat-tree eBB, smallest -> largest allocation",
               "slow decline",
               stats::format_fixed(baseline_median.front(), 2) + " -> " +
                   stats::format_fixed(baseline_median.back(), 2) +
                   " GiB/s"});
  return rs;
}

}  // namespace

report::Experiment fig5c_ebb_experiment() {
  return {"fig5c_ebb",
          "Effective bisection bandwidth whiskers per combination",
          "Fig. 5c", run};
}

}  // namespace hxsim::bench
