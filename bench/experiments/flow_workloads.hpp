// Shared flow-set builders for the flow-solver benches
// (bench/flowsim_scaling.cpp and experiments/exp_flowsim_speedup.cpp):
// both paper fabrics routed by their paper engines, with the three
// traffic shapes the campaign layer solves -- uniform random
// permutations, mpiGraph shifts and eBB bisections -- plus a merged
// multi-permutation overlay, the congested many-filling-round regime the
// indexed solver targets.
#pragma once

#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "routing/dfsssp.hpp"
#include "routing/ftree.hpp"
#include "sim/flowsim.hpp"
#include "stats/rng.hpp"
#include "topo/fat_tree.hpp"
#include "topo/hyperx.hpp"

namespace hxsim::bench {

struct FlowFabric {
  std::string name;
  std::unique_ptr<topo::HyperX> hx;
  std::unique_ptr<topo::FatTree> ft;
  const topo::Topology* topo = nullptr;
  routing::LidSpace lids = routing::LidSpace::consecutive(1, 0);
  routing::RouteResult route;
};

inline FlowFabric flow_hyperx_fabric(bool quick) {
  FlowFabric f;
  f.name = "hyperx+dfsssp";
  f.hx = std::make_unique<topo::HyperX>(quick ? topo::small_hyperx_params()
                                              : topo::paper_hyperx_params());
  f.topo = &f.hx->topo();
  f.lids = routing::LidSpace::consecutive(f.topo->num_terminals(), 0);
  f.route = routing::DfssspEngine(8).compute(*f.topo, f.lids);
  return f;
}

inline FlowFabric flow_fat_tree_fabric(bool quick) {
  FlowFabric f;
  f.name = "ftree";
  f.ft = std::make_unique<topo::FatTree>(quick ? topo::small_fat_tree_params()
                                               : topo::paper_fat_tree_params());
  f.topo = &f.ft->topo();
  f.lids = routing::LidSpace::consecutive(f.topo->num_terminals(), 0);
  f.route = routing::FtreeEngine(*f.ft).compute(*f.topo, f.lids);
  return f;
}

inline sim::Flow routed_flow(const FlowFabric& f, topo::NodeId src,
                             topo::NodeId dst) {
  auto path = f.route.tables.path(*f.topo, f.lids, src, f.lids.base_lid(dst));
  return sim::Flow{std::move(path.channels), 1 << 20};
}

/// One uniform-random permutation (fixed points dropped).
inline std::vector<sim::Flow> uniform_flow_set(const FlowFabric& f,
                                               stats::Rng& rng) {
  const auto n = f.topo->num_terminals();
  const std::vector<std::int32_t> perm = rng.permutation(n);
  std::vector<sim::Flow> flows;
  for (topo::NodeId src = 0; src < n; ++src) {
    const auto dst =
        static_cast<topo::NodeId>(perm[static_cast<std::size_t>(src)]);
    if (dst != src) flows.push_back(routed_flow(f, src, dst));
  }
  return flows;
}

/// mpiGraph shift r: every node i streams to (i + r) mod N.
inline std::vector<sim::Flow> shift_flow_set(const FlowFabric& f,
                                             std::int32_t r) {
  const auto n = f.topo->num_terminals();
  std::vector<sim::Flow> flows;
  for (topo::NodeId src = 0; src < n; ++src)
    flows.push_back(routed_flow(f, src, static_cast<topo::NodeId>(
                                            (src + r) % n)));
  return flows;
}

/// eBB bisection: random halves paired across the cut, both directions.
inline std::vector<sim::Flow> ebb_flow_set(const FlowFabric& f,
                                           stats::Rng& rng) {
  const auto n = f.topo->num_terminals();
  std::vector<std::int32_t> nodes(static_cast<std::size_t>(n));
  std::iota(nodes.begin(), nodes.end(), 0);
  rng.shuffle(nodes);
  std::vector<sim::Flow> flows;
  for (std::int32_t i = 0; i < n / 2; ++i) {
    const auto a =
        static_cast<topo::NodeId>(nodes[static_cast<std::size_t>(i)]);
    const auto b =
        static_cast<topo::NodeId>(nodes[static_cast<std::size_t>(i + n / 2)]);
    flows.push_back(routed_flow(f, a, b));
    flows.push_back(routed_flow(f, b, a));
  }
  return flows;
}

/// `overlays` permutations overlaid into ONE flow set: heterogeneous
/// channel sharing drives the filling through many distinct levels, the
/// regime where the reference's per-round full rescan is most expensive.
inline std::vector<sim::Flow> merged_permutations_set(const FlowFabric& f,
                                                      stats::Rng& rng,
                                                      std::int32_t overlays) {
  std::vector<sim::Flow> flows;
  for (std::int32_t o = 0; o < overlays; ++o) {
    std::vector<sim::Flow> one = uniform_flow_set(f, rng);
    for (auto& flow : one) flows.push_back(std::move(flow));
  }
  return flows;
}

}  // namespace hxsim::bench
