// Figure 7 experiment: capacity / system-throughput evaluation.
// Fourteen applications run concurrently on dedicated 32/56-node
// allocations (664 of 672 nodes, 98.8 % occupancy) for a simulated
// 3-hour window; the metric is completed runs per application and the
// total across the five combinations.
#include <cstdio>
#include <span>
#include <vector>

#include "experiments/experiments.hpp"
#include "stats/gain.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "workloads/apps.hpp"
#include "workloads/capacity.hpp"

namespace hxsim::bench {

namespace {

/// The paper's 664-node mix needs the full machine; the 96-node quick
/// system gets the same 14 apps on 6-node slices (84 nodes, same shape).
std::vector<workloads::CapacityJob> capacity_mix(
    std::span<const topo::NodeId> pool, mpi::PlacementKind kind,
    stats::Rng& rng, bool quick) {
  if (!quick) return workloads::paper_capacity_mix(pool, kind, rng);
  std::vector<workloads::CapacityJob> jobs;
  std::size_t offset = 0;
  constexpr std::size_t kQuickNodes = 6;
  for (const workloads::AppId id : workloads::capacity_apps()) {
    const std::span<const topo::NodeId> slice =
        pool.subspan(offset, kQuickNodes);
    offset += kQuickNodes;
    jobs.push_back(workloads::CapacityJob{
        id, mpi::Placement::make(kind, static_cast<std::int32_t>(kQuickNodes),
                                 slice, rng)});
  }
  return jobs;
}

/// Metric key per config index (fixed PaperSystem order).
const char* config_key(std::size_t cfg) {
  switch (cfg) {
    case 0: return "ft_ftree_linear";
    case 1: return "ft_sssp_clustered";
    case 2: return "hx_dfsssp_linear";
    case 3: return "hx_dfsssp_random";
    case 4: return "hx_parx_clustered";
  }
  return "?";
}

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  report::ResultSet rs;
  const workloads::PaperSystem& system = shared_system(args.quick);

  workloads::CapacityOptions cap_opts;
  cap_opts.duration = args.quick ? 1800.0 : 3.0 * 3600.0;
  cap_opts.seed = args.seed;

  std::printf("== Fig. 7 capacity runs: 14 concurrent applications, "
              "%.1f h window ==\n\n", cap_opts.duration / 3600.0);

  CsvSink csv(args, {"config", "app", "runs_completed"});
  std::vector<std::string> app_names;
  std::vector<std::vector<std::int32_t>> per_config_runs;
  std::int32_t baseline_total = 0;

  for (std::size_t cfg = 0; cfg < system.configs().size(); ++cfg) {
    const auto& config = system.configs()[cfg];
    stats::Rng rng(args.seed + cfg);
    const auto pool =
        mpi::Placement::whole_machine(system.num_nodes());
    const auto jobs =
        capacity_mix(pool, config.placement, rng, args.quick);
    const workloads::CapacityResult result =
        workloads::run_capacity(*config.cluster, jobs, cap_opts);

    if (cfg == 0) {
      app_names = result.app_names;
      baseline_total = result.total();
    }
    per_config_runs.push_back(result.runs_completed);
    for (std::size_t j = 0; j < result.app_names.size(); ++j)
      csv.add_row({config.name, result.app_names[j],
                   std::to_string(result.runs_completed[j])});
  }

  std::vector<std::string> header{"app"};
  for (const auto& config : system.configs()) header.push_back(config.name);
  stats::TextTable table(header);
  for (std::size_t j = 0; j < app_names.size(); ++j) {
    std::vector<std::string> row{app_names[j]};
    for (const auto& runs : per_config_runs)
      row.push_back(std::to_string(runs[j]));
    table.add_row(row);
  }
  std::vector<std::string> totals{"TOTAL"};
  report::ResultTable& out =
      rs.table("totals", {"configuration", "completed runs",
                          "gain vs baseline"});
  // How many apps complete identical run counts across all five planes
  // (the compute-bound rows of the figure).
  std::int32_t identical = 0;
  for (std::size_t j = 0; j < app_names.size(); ++j) {
    bool same = true;
    for (const auto& runs : per_config_runs)
      same = same && runs[j] == per_config_runs[0][j];
    if (same) ++identical;
  }
  for (std::size_t cfg = 0; cfg < per_config_runs.size(); ++cfg) {
    std::int32_t sum = 0;
    for (std::int32_t r : per_config_runs[cfg]) sum += r;
    const double gain = stats::relative_gain(
        static_cast<double>(baseline_total), static_cast<double>(sum),
        stats::Direction::kHigherIsBetter);
    totals.push_back(std::to_string(sum) + " (" + stats::format_gain(gain) +
                     ")");
    out.add_row({system.configs()[cfg].name, std::to_string(sum),
                 stats::format_gain(gain)});
    rs.set(std::string("total_") + config_key(cfg), sum);
    // MuPP is the communication-bound tail the figure highlights.
    for (std::size_t j = 0; j < app_names.size(); ++j)
      if (app_names[j] == "MuPP")
        rs.set(std::string("mupp_") + config_key(cfg),
               per_config_runs[cfg][j]);
  }
  rs.set("apps_identical_runs", identical);
  table.add_row(totals);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("(paper: HyperX/DFSSSP/linear completed +12.7%% runs over the "
              "baseline; random placement hurt MILC)\n");
  return rs;
}

}  // namespace

report::Experiment fig7_capacity_experiment() {
  return {"fig7_capacity",
          "Capacity-mix completed runs across the five combinations",
          "Fig. 7", run};
}

}  // namespace hxsim::bench
