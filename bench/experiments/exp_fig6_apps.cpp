// Figure 6a-6i experiment: solver-kernel runtime of the nine proxy
// applications, whiskers over repetitions, per node count and combination
// (lower is better).  Runs exceeding the paper's 15-minute walltime are
// reported as missing, exactly as in the paper's plots.  The PARX
// combination follows the paper's full SAR procedure (Section 4.4.3).
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>

#include "experiments/experiments.hpp"
#include "stats/gain.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "workloads/apps.hpp"
#include "workloads/imb.hpp"
#include "workloads/paper_system.hpp"

namespace hxsim::bench {

namespace {

/// Kernel runtime of one run; +Inf when the walltime limit is exceeded.
double one_run(const mpi::Cluster& cluster, const mpi::Placement& placement,
               const workloads::AppWorkload& app, std::uint64_t seed) {
  mpi::Transport transport(cluster, placement, seed);
  const double t = workloads::run_workload(app, transport);
  return t > workloads::kWalltimeLimit ? stats::kFailed : t;
}

/// The halo/stencil-dominated apps the paper finds topology-insensitive.
bool halo_dominated(workloads::AppId id) {
  using workloads::AppId;
  return id == AppId::kAmg || id == AppId::kComd || id == AppId::kMinife ||
         id == AppId::kFfvc || id == AppId::kMvmc || id == AppId::kMilc;
}

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  report::ResultSet rs;
  const workloads::PaperSystem& system = shared_system(args.quick);
  const std::int32_t machine = system.num_nodes();

  CsvSink csv(args, {"app", "config", "nodes", "best_runtime_s",
                     "gain_vs_baseline"});
  report::ResultTable& spread =
      rs.table("spread", {"app", "min gain", "max gain",
                          "missing runs (walltime)"});
  double halo_flat = 0.0;

  for (const workloads::AppId id : workloads::proxy_apps()) {
    const workloads::AppWorkload probe = workloads::make_app(id, 4);
    std::vector<std::int32_t> node_counts = workloads::capability_node_counts(
        probe.power_of_two_scaling, machine);
    if (args.quick) node_counts.resize(std::min<std::size_t>(
        node_counts.size(), 3));

    std::printf("== Fig. 6 %s kernel runtime [s] (lower is better) ==\n",
                probe.name.c_str());
    std::vector<std::string> header{"config"};
    for (const std::int32_t n : node_counts)
      header.push_back(std::to_string(n));
    stats::TextTable table(header);

    double app_min_gain = std::numeric_limits<double>::infinity();
    double app_max_gain = -std::numeric_limits<double>::infinity();
    std::int32_t misses = 0;
    std::vector<double> baseline_best;
    for (std::size_t cfg = 0; cfg < system.configs().size(); ++cfg) {
      const auto& config = system.configs()[cfg];
      const bool is_parx = config.cluster == &system.hx_parx();
      const std::int32_t reps = reps_for(config, args);
      std::vector<std::string> row{config.name};
      for (std::size_t ni = 0; ni < node_counts.size(); ++ni) {
        const std::int32_t n = node_counts[ni];
        const workloads::AppWorkload app = workloads::make_app(id, n);
        // SAR-style pipeline for the PARX plane: record the profile,
        // resolve it to node demands via the first placement, re-route.
        // One re-route per (app, node count): the profile itself is
        // placement-oblivious (paper footnote 6), and a full-fabric PARX
        // recompute per repetition would dominate the bench's wall time.
        std::optional<mpi::Cluster> rerouted;
        if (is_parx) {
          mpi::CommProfile profile(n);
          mpi::Transport::accumulate(app.iteration_comm, profile);
          const mpi::Placement placement =
              place(config, n, machine, args.seed);
          rerouted = system.make_parx_cluster(
              profile.to_demands(placement, machine));
        }
        double best = stats::kFailed;
        for (std::int32_t rep = 0; rep < reps; ++rep) {
          const mpi::Placement placement =
              place(config, n, machine, args.seed + 211 * rep);
          const mpi::Cluster& plane =
              rerouted ? *rerouted : *config.cluster;
          best = std::min(best,
                          one_run(plane, placement, app, args.seed + rep));
        }
        if (cfg == 0) baseline_best.push_back(best);
        const double gain = stats::relative_gain(
            baseline_best[ni], best, stats::Direction::kLowerIsBetter);
        if (best == stats::kFailed) {
          ++misses;
        } else if (cfg > 0 && std::isfinite(gain)) {
          app_min_gain = std::min(app_min_gain, gain);
          app_max_gain = std::max(app_max_gain, gain);
          if (halo_dominated(id))
            halo_flat = std::max(halo_flat, std::abs(gain));
        }
        row.push_back(best == stats::kFailed
                          ? "miss"
                          : stats::format_fixed(best, 1) + " (" +
                                stats::format_gain(gain) + ")");
        csv.add_row({probe.name, config.name, std::to_string(n),
                     best == stats::kFailed ? "inf"
                                            : stats::format_fixed(best, 3),
                     stats::format_gain(gain)});
      }
      table.add_row(row);
    }
    std::printf("%s\n", table.to_string().c_str());
    if (std::isfinite(app_min_gain)) {
      spread.add_row({probe.name, stats::format_gain(app_min_gain),
                      stats::format_gain(app_max_gain),
                      std::to_string(misses)});
      // Metric key from the app name (short, stable: AMG -> amg).
      std::string key = probe.name;
      for (char& c : key) c = static_cast<char>(std::tolower(c));
      rs.set(key + "_min_gain", app_min_gain);
      rs.set(key + "_max_gain", app_max_gain);
    }
  }
  rs.set("halo_apps_max_abs_gain", halo_flat);
  return rs;
}

}  // namespace

report::Experiment fig6_apps_experiment() {
  return {"fig6_apps",
          "Proxy-application kernel runtimes over the five combinations",
          "Fig. 6a-6i", run};
}

}  // namespace hxsim::bench
