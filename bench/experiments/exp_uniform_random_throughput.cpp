// Section 2.2 experiment: saturation throughput per traffic matrix.
// Measures the design claims ("a HyperX with only 50% bisection can still
// provide ~100% throughput for uniform random traffic; worst-case traffic
// only achieves ~50%") on the un-degraded planes.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/quadrant.hpp"
#include "experiments/experiments.hpp"
#include "sim/flowsim.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "workloads/paper_system.hpp"

namespace hxsim::bench {

namespace {

struct Demand {
  topo::NodeId src;
  topo::NodeId dst;
  double weight;  // fraction of the source's unit injection
};

/// alpha = min over channels of capacity / load (capacity == 1 unit).
double saturation_throughput(const mpi::Cluster& cluster,
                             const std::vector<Demand>& demands,
                             std::uint64_t seed) {
  std::vector<double> load(
      static_cast<std::size_t>(cluster.topo().num_channels()), 0.0);
  stats::Rng rng(seed);
  for (const Demand& d : demands) {
    auto msg = cluster.route_message(d.src, d.dst, 1 << 20, rng);
    if (!msg) continue;
    for (topo::ChannelId ch : msg->path)
      load[static_cast<std::size_t>(ch)] += d.weight;
  }
  double worst = 0.0;
  for (double l : load) worst = std::max(worst, l);
  return worst > 0.0 ? std::min(1.0, 1.0 / worst) : 1.0;
}

/// Complementary metric: mean max-min fair rate (fraction of injection
/// bandwidth) -- less pessimistic than the worst-channel alpha, because
/// uncongested flows keep their full share.
double mean_fair_throughput(const mpi::Cluster& cluster,
                            const std::vector<Demand>& demands,
                            std::uint64_t seed) {
  sim::FlowSim flowsim(cluster.topo(), cluster.link());
  stats::Rng rng(seed);
  std::vector<sim::Flow> flows;
  for (const Demand& d : demands) {
    if (d.weight < 1.0) continue;  // per-flow metric: permutation rows only
    auto msg = cluster.route_message(d.src, d.dst, 1 << 20, rng);
    if (!msg) continue;
    flows.push_back(sim::Flow{std::move(msg->path), 1 << 20});
  }
  if (flows.empty()) return 0.0;
  const auto rates = flowsim.fair_rates(flows);
  double mean = 0.0;
  for (double r : rates) mean += r;
  return mean / static_cast<double>(rates.size()) / cluster.link().bandwidth;
}

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  report::ResultSet rs;
  // Not the shared system: this experiment measures the *design*, not the
  // degradation, so faults are off.
  workloads::SystemOptions opts = args.system_options();
  opts.with_faults = false;
  const workloads::PaperSystem system(opts);
  const std::int32_t n = system.num_nodes();
  const auto& hx = system.hyperx();
  stats::Rng rng(args.seed);

  auto uniform = [&] {
    std::vector<Demand> demands;
    demands.reserve(static_cast<std::size_t>(n) * (n - 1));
    const double w = 1.0 / static_cast<double>(n - 1);
    for (topo::NodeId i = 0; i < n; ++i)
      for (topo::NodeId j = 0; j < n; ++j)
        if (i != j) demands.push_back(Demand{i, j, w});
    return demands;
  };
  auto permutation = [&] {
    std::vector<Demand> demands;
    const auto perm = rng.permutation(n);
    for (topo::NodeId i = 0; i < n; ++i)
      if (perm[static_cast<std::size_t>(i)] != i)
        demands.push_back(Demand{i, perm[static_cast<std::size_t>(i)], 1.0});
    return demands;
  };
  auto bisector = [&] {
    std::vector<topo::NodeId> top;
    std::vector<topo::NodeId> bottom;
    for (topo::NodeId i = 0; i < n; ++i) {
      const topo::SwitchId sw = hx.topo().attach_switch(i);
      (core::in_half(hx, sw, core::Half::kTop) ? top : bottom).push_back(i);
    }
    rng.shuffle(top);
    rng.shuffle(bottom);
    std::vector<Demand> demands;
    for (std::size_t i = 0; i < top.size() && i < bottom.size(); ++i) {
      demands.push_back(Demand{top[i], bottom[i], 1.0});
      demands.push_back(Demand{bottom[i], top[i], 1.0});
    }
    return demands;
  };

  std::printf("== Saturation throughput per traffic matrix (Section 2.2) "
              "==\n\n");
  std::printf("HyperX offered bisection: %.1f%% of injection bandwidth\n\n",
              hx.bisection_ratio() * 100.0);
  rs.set("hx_bisection_ratio", hx.bisection_ratio());

  stats::TextTable table({"traffic matrix", "FT alpha", "HX alpha",
                          "FT mean", "HX mean", "paper's expectation"});
  report::ResultTable& out =
      rs.table("matrix", {"traffic matrix", "FT alpha", "HX alpha",
                          "FT mean", "HX mean", "paper's expectation"});
  struct Row {
    const char* name;
    const char* key;
    std::vector<Demand> demands;
    const char* expect;
  };
  std::vector<Row> rows;
  rows.push_back({"uniform (design point)", "uniform", uniform(),
                  "HyperX ~1.0 despite 57% bisection"});
  rows.push_back({"random permutation", "perm", permutation(),
                  "mean high; worst channel collides [30]"});
  rows.push_back({"bisector adversarial", "bisector", bisector(),
                  "HX mean capped near its 0.57 cut"});
  for (Row& row : rows) {
    const double ft_a =
        saturation_throughput(system.ft_ftree(), row.demands, args.seed);
    const double hx_a =
        saturation_throughput(system.hx_dfsssp(), row.demands, args.seed);
    const double ft_m =
        mean_fair_throughput(system.ft_ftree(), row.demands, args.seed);
    const double hx_m =
        mean_fair_throughput(system.hx_dfsssp(), row.demands, args.seed);
    auto fmt = [](double v) {
      return v > 0.0 ? stats::format_fixed(v, 2) : std::string("-");
    };
    table.add_row({row.name, fmt(ft_a), fmt(hx_a), fmt(ft_m), fmt(hx_m),
                   row.expect});
    out.add_row({row.name, fmt(ft_a), fmt(hx_a), fmt(ft_m), fmt(hx_m),
                 row.expect});
    rs.set(std::string(row.key) + "_ft_alpha", ft_a);
    rs.set(std::string(row.key) + "_hx_alpha", hx_a);
    if (ft_m > 0.0) rs.set(std::string(row.key) + "_ft_mean", ft_m);
    if (hx_m > 0.0) rs.set(std::string(row.key) + "_hx_mean", hx_m);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(Static routing keeps permutations below the adaptive "
              "ideal -- Hoefler et al.'s 'multistage switches are not "
              "crossbars' effect, which the paper cites as [30].)\n");
  return rs;
}

}  // namespace

report::Experiment uniform_random_throughput_experiment() {
  return {"uniform_random_throughput",
          "Saturation throughput per traffic matrix on both planes",
          "SS2.2", run};
}

}  // namespace hxsim::bench
