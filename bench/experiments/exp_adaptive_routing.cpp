// Future-work experiment the paper could not run: adaptive routing on the
// HyperX (Section 2.3 / footnote 3).  Compares static DFSSSP, static
// PARX, minimal-adaptive, VAL and DAL on the packet simulator, on the
// shared-cable hotspot and the 28-node half-shift permutation.
#include <cmath>
#include <cstdio>

#include "core/lid_choice.hpp"
#include "core/parx.hpp"
#include "core/quadrant.hpp"
#include "experiments/experiments.hpp"
#include "routing/dfsssp.hpp"
#include "sim/adaptive.hpp"
#include "sim/pktsim.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "topo/hyperx.hpp"

namespace hxsim::bench {

namespace {

double worst_completion(const sim::PktSim::Result& r) {
  double worst = 0.0;
  for (double t : r.completion)
    if (!std::isnan(t)) worst = std::max(worst, t);
  return worst;
}

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  report::ResultSet rs;
  const topo::HyperX hx(topo::paper_hyperx_params());
  const std::int64_t bytes = args.quick ? 64 * 1024 : 512 * 1024;

  // Static planes.
  routing::LidSpace dlids =
      routing::LidSpace::consecutive(hx.topo().num_terminals(), 0);
  routing::DfssspEngine dfsssp(8);
  const routing::RouteResult dfsssp_route = dfsssp.compute(hx.topo(), dlids);
  routing::LidSpace plids = core::make_parx_lid_space(hx);
  core::ParxEngine parx(hx);
  const routing::RouteResult parx_route = parx.compute(hx.topo(), plids);

  // Adaptive routers.
  const sim::DalRouter dal(hx);
  const sim::DalRouter minimal_adaptive = sim::make_minimal_adaptive(hx);
  const sim::ValiantRouter valiant(hx, args.seed);

  // Scenario traffic as (src, dst) pairs.
  struct Scenario {
    std::string name;
    std::string key;  // metric suffix: hotspot / shift
    std::vector<std::pair<topo::NodeId, topo::NodeId>> pairs;
  };
  std::vector<Scenario> scenarios;
  {
    Scenario hotspot{"(a) 7 streams, adjacent switches", "hotspot", {}};
    for (std::int32_t i = 0; i < 7; ++i)
      hotspot.pairs.emplace_back(hx.topo().switch_terminals(0)[i],
                                 hx.topo().switch_terminals(1)[i]);
    scenarios.push_back(std::move(hotspot));

    Scenario shift{"(b) 28-node half-shift permutation", "shift", {}};
    for (std::int32_t i = 0; i < 28; ++i)
      shift.pairs.emplace_back(i, (i + 14) % 28);
    scenarios.push_back(std::move(shift));
  }

  auto static_messages = [&](const Scenario& sc,
                             const routing::LidSpace& lids,
                             const routing::RouteResult& route,
                             bool parx_selection) {
    stats::Rng rng(args.seed);
    std::vector<sim::PktMessage> msgs;
    for (const auto& [src, dst] : sc.pairs) {
      routing::Lid dlid = lids.base_lid(dst);
      if (parx_selection) {
        const auto src_q = lids.group_of_lid(lids.base_lid(src));
        const auto dst_q = lids.group_of_lid(lids.base_lid(dst));
        dlid = lids.lid(dst, core::pick_parx_lid(
                                 src_q, dst_q,
                                 core::classify_message(bytes), rng));
      }
      auto path = route.tables.path(hx.topo(), lids, src, dlid);
      sim::PktMessage m;
      m.src = src;
      m.dst = dst;
      m.bytes = bytes;
      m.path = std::move(path.channels);
      m.vl = route.vls.vl(hx.topo().attach_switch(src), dlid);
      msgs.push_back(std::move(m));
    }
    return msgs;
  };
  auto adaptive_messages = [&](const Scenario& sc) {
    std::vector<sim::PktMessage> msgs;
    for (const auto& [src, dst] : sc.pairs) {
      sim::PktMessage m;
      m.src = src;
      m.dst = dst;
      m.bytes = bytes;
      msgs.push_back(std::move(m));
    }
    return msgs;
  };

  std::printf("== Adaptive vs. static routing on the 12x8 HyperX "
              "(PktSim, %s per stream) ==\n\n",
              stats::format_bytes(bytes).c_str());
  report::ResultTable& out =
      rs.table("speedups", {"scenario", "routing", "slowest stream [ms]",
                            "vs DFSSSP"});
  for (const Scenario& sc : scenarios) {
    std::printf("%s\n", sc.name.c_str());
    stats::TextTable table({"routing", "slowest stream [ms]",
                            "vs DFSSSP"});
    double base = 0.0;
    struct Run {
      const char* name;
      const char* key;
      double time;
    };
    std::vector<Run> runs;
    {
      sim::PktSim pkt(hx.topo(), sim::PktSimConfig{});
      runs.push_back({"static DFSSSP (minimal)", "dfsssp",
                      worst_completion(pkt.run(
                          static_messages(sc, dlids, dfsssp_route, false)))});
      base = runs.back().time;
    }
    {
      sim::PktSim pkt(hx.topo(), sim::PktSimConfig{});
      runs.push_back({"static PARX (Table 1)", "parx",
                      worst_completion(pkt.run(
                          static_messages(sc, plids, parx_route, true)))});
    }
    {
      sim::PktSimConfig cfg;
      cfg.adaptive = &minimal_adaptive;
      sim::PktSim pkt(hx.topo(), cfg);
      runs.push_back({"minimal-adaptive", "min_adaptive",
                      worst_completion(pkt.run(adaptive_messages(sc)))});
    }
    {
      sim::PktSimConfig cfg;
      cfg.adaptive = &valiant;
      sim::PktSim pkt(hx.topo(), cfg);
      runs.push_back({"VAL (random intermediate)", "val",
                      worst_completion(pkt.run(adaptive_messages(sc)))});
    }
    {
      sim::PktSimConfig cfg;
      cfg.adaptive = &dal;
      sim::PktSim pkt(hx.topo(), cfg);
      runs.push_back({"DAL (adaptive, 1 deroute/dim)", "dal",
                      worst_completion(pkt.run(adaptive_messages(sc)))});
    }
    for (const Run& run : runs) {
      const double speedup = base / run.time;
      table.add_row({run.name, stats::format_fixed(run.time * 1e3, 2),
                     stats::format_fixed(speedup, 2) + "x"});
      out.add_row({sc.name, run.name,
                   stats::format_fixed(run.time * 1e3, 2),
                   stats::format_fixed(speedup, 2) + "x"});
      rs.set(std::string(run.key) + "_speedup_" + sc.key, speedup);
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf("Reading: DAL recovers the shared-cable bandwidth without any "
              "routing tables or LMC tricks -- the paper's conclusion that "
              "adaptive routing obsoletes the PARX prototype.\n");
  return rs;
}

}  // namespace

report::Experiment adaptive_routing_experiment() {
  return {"adaptive_routing",
          "Static vs adaptive routing (DFSSSP/PARX/min-adaptive/VAL/DAL)",
          "SS2.3 / footnote 3", run};
}

}  // namespace hxsim::bench
