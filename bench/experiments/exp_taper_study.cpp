// Section 2.1 experiment: the fat-tree cost/throughput trade.  Sweeps the
// leaf taper of the paper's 18-ary 3-tree and reports leaf-stage cable
// counts and the uniform-traffic saturation throughput ("a 2-to-1
// oversubscription cuts the network cost by more than 50% however reduces
// the uniform random throughput to 50%").
#include <cstdio>

#include "experiments/experiments.hpp"
#include "routing/ftree.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "topo/fat_tree.hpp"

namespace hxsim::bench {

namespace {

double uniform_saturation(const mpi::Cluster& cluster, std::uint64_t seed) {
  const std::int32_t n = cluster.num_nodes();
  std::vector<double> load(
      static_cast<std::size_t>(cluster.topo().num_channels()), 0.0);
  stats::Rng rng(seed);
  const double w = 1.0 / static_cast<double>(n - 1);
  for (topo::NodeId i = 0; i < n; ++i)
    for (topo::NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const auto msg = cluster.route_message(i, j, 1 << 20, rng);
      if (!msg) continue;
      for (topo::ChannelId ch : msg->path)
        load[static_cast<std::size_t>(ch)] += w;
    }
  double worst = 0.0;
  for (double l : load) worst = std::max(worst, l);
  return worst > 0.0 ? std::min(1.0, 1.0 / worst) : 1.0;
}

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  report::ResultSet rs;

  std::printf("== Fat-tree leaf taper study (Section 2.1) ==\n\n");
  stats::TextTable table({"taper", "leaf uplink cables", "uniform alpha",
                          "expectation"});
  report::ResultTable& out =
      rs.table("taper", {"taper", "leaf uplink cables", "uniform alpha",
                         "expectation"});
  for (const std::int32_t taper : {1, 2, 3, 6}) {
    topo::FatTreeParams p = topo::paper_fat_tree_params();
    p.taper = taper;
    const topo::FatTree ft(p);
    routing::LidSpace lids =
        routing::LidSpace::consecutive(ft.topo().num_terminals(), 0);
    routing::FtreeEngine engine(ft);
    const mpi::Cluster cluster(ft.topo(), lids,
                               engine.compute(ft.topo(), lids),
                               mpi::make_ob1());
    // Leaf-stage cables = populated-leaf uplinks (arity/taper each).
    const std::int64_t leaf_cables =
        static_cast<std::int64_t>(p.populated_leaves) * (p.arity / taper);
    const double alpha = uniform_saturation(cluster, args.seed);
    std::string expect;
    if (taper == 1)
      expect = "full bisection: ~1.0";
    else
      expect = "~1/" + std::to_string(taper) +
               " (x" + std::to_string(taper) + " fewer leaf cables)";
    table.add_row({std::to_string(taper) + ":1",
                   std::to_string(leaf_cables),
                   stats::format_fixed(alpha, 2), expect});
    out.add_row({std::to_string(taper) + ":1", std::to_string(leaf_cables),
                 stats::format_fixed(alpha, 2), expect});
    rs.set("alpha_" + std::to_string(taper) + "to1", alpha);
    rs.set("leaf_cables_" + std::to_string(taper) + "to1",
           static_cast<double>(leaf_cables));
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(Paper Section 2.2: the 12x8 HyperX sits at 57.1%% offered "
              "bisection with uniform alpha ~0.8 under static minimal "
              "routing -- between the 1:1 and 2:1 trees at a fraction of "
              "either's cable count; that is the cost argument for the "
              "direct topology.)\n");
  return rs;
}

}  // namespace

report::Experiment taper_study_experiment() {
  return {"taper_study",
          "Fat-tree leaf-taper cost vs uniform throughput sweep",
          "SS2.1", run};
}

}  // namespace hxsim::bench
