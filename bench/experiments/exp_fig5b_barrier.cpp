// Figure 5b experiment: IMB Barrier latency whiskers per node count for
// all five combinations.  The headline result: the PARX configuration
// pays a constant-factor software penalty because the multi-LID bfo PML
// is far less tuned than ob1.
#include <algorithm>
#include <cstdio>
#include <limits>

#include "experiments/experiments.hpp"
#include "mpi/collectives.hpp"
#include "stats/gain.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "workloads/imb.hpp"

namespace hxsim::bench {

namespace {

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  report::ResultSet rs;
  const workloads::PaperSystem& system = shared_system(args.quick);
  const std::int32_t machine = system.num_nodes();

  std::vector<std::int32_t> node_counts =
      workloads::capability_node_counts(false, machine);
  if (args.quick) node_counts.assign({7, 14, 28});
  const std::int32_t runs = 10;  // the paper's ten repetitions

  CsvSink csv(args, {"config", "nodes", "run", "latency_us"});
  std::vector<std::vector<double>> best_per_config(system.configs().size());

  std::printf("== Fig. 5b IMB Barrier latency [us], whiskers over %d runs "
              "==\n\n", runs);
  for (std::size_t cfg = 0; cfg < system.configs().size(); ++cfg) {
    const auto& config = system.configs()[cfg];
    std::printf("%s\n", config.name.c_str());
    stats::TextTable table({"nodes", "min", "q25", "median", "q75", "max",
                            "gain vs baseline"});
    for (const std::int32_t n : node_counts) {
      std::vector<double> lat_us;
      for (std::int32_t run = 0; run < runs; ++run) {
        const mpi::Placement placement =
            place(config, n, machine, args.seed + 7919 * run);
        mpi::Transport transport(*config.cluster, placement, args.seed + run);
        const double t = transport.execute(
            mpi::collectives::barrier_dissemination(n));
        lat_us.push_back(stats::to_us(t));
        csv.add_row({config.name, std::to_string(n), std::to_string(run),
                     stats::format_fixed(stats::to_us(t), 3)});
      }
      const stats::Summary s = stats::summarize(lat_us);
      best_per_config[cfg].push_back(s.min);
      const double base = best_per_config[0][best_per_config[cfg].size() - 1];
      table.add_row({std::to_string(n), stats::format_fixed(s.min, 2),
                     stats::format_fixed(s.q25, 2),
                     stats::format_fixed(s.median, 2),
                     stats::format_fixed(s.q75, 2),
                     stats::format_fixed(s.max, 2),
                     stats::format_gain(stats::relative_gain(
                         base, s.min, stats::Direction::kLowerIsBetter))});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  // The headline: PARX/bfo (config 4) slowdown over the baseline, and
  // the spread of the four ob1 combinations, per node count.
  report::ResultTable& out =
      rs.table("penalty", {"nodes", "baseline min [us]", "PARX min [us]",
                           "PARX slowdown", "ob1 spread"});
  double slow_min = std::numeric_limits<double>::infinity();
  double slow_max = 0.0;
  double spread_max = 0.0;
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const double base = best_per_config[0][i];
    const double parx = best_per_config[4][i];
    const double slowdown = parx / base;
    slow_min = std::min(slow_min, slowdown);
    slow_max = std::max(slow_max, slowdown);
    double ob1_min = std::numeric_limits<double>::infinity();
    double ob1_max = 0.0;
    for (std::size_t cfg = 0; cfg < 4; ++cfg) {
      ob1_min = std::min(ob1_min, best_per_config[cfg][i]);
      ob1_max = std::max(ob1_max, best_per_config[cfg][i]);
    }
    const double spread = ob1_max / ob1_min - 1.0;
    spread_max = std::max(spread_max, spread);
    out.add_row({std::to_string(node_counts[i]),
                 stats::format_fixed(base, 2), stats::format_fixed(parx, 2),
                 stats::format_fixed(slowdown, 2) + "x",
                 stats::format_fixed(spread * 100.0, 1) + "%"});
  }
  rs.set("parx_slowdown_min", slow_min);
  rs.set("parx_slowdown_max", slow_max);
  rs.set("ob1_spread_max", spread_max);
  return rs;
}

}  // namespace

report::Experiment fig5b_barrier_experiment() {
  return {"fig5b_barrier",
          "IMB Barrier latency whiskers; the PARX software penalty",
          "Fig. 5b", run};
}

}  // namespace hxsim::bench
