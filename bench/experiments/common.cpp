#include <cstdio>
#include <exception>
#include <optional>

#include "experiments/experiments.hpp"

namespace hxsim::bench {

BenchArgs to_bench_args(const report::Options& options) {
  BenchArgs args;
  args.quick = options.quick;
  args.seed = options.seed;
  args.reps = options.reps;
  args.threads = options.threads;
  args.csv_path = options.csv_path;
  args.trace_path = options.trace_path;
  exec::set_default_threads(args.threads);
  return args;
}

report::Options to_options(const BenchArgs& args) {
  report::Options options;
  options.quick = args.quick;
  options.seed = args.seed;
  options.reps = args.reps;
  options.threads = args.threads;
  options.csv_path = args.csv_path;
  options.trace_path = args.trace_path;
  return options;
}

const workloads::PaperSystem& shared_system(bool small_scale) {
  static std::optional<workloads::PaperSystem> full;
  static std::optional<workloads::PaperSystem> small;
  std::optional<workloads::PaperSystem>& slot = small_scale ? small : full;
  if (!slot) {
    workloads::SystemOptions opts;
    opts.small_scale = small_scale;
    slot.emplace(opts);
  }
  return *slot;
}

void register_all_experiments(report::Registry& registry) {
  registry.add(fig1_mpigraph_experiment());
  registry.add(table1_rules_experiment());
  registry.add(fig4_collectives_experiment());
  registry.add(fig5a_baidu_allreduce_experiment());
  registry.add(fig5b_barrier_experiment());
  registry.add(fig5c_ebb_experiment());
  registry.add(fig6_apps_experiment());
  registry.add(fig6_x500_experiment());
  registry.add(fig7_capacity_experiment());
  registry.add(threshold_calibration_experiment());
  registry.add(topology_properties_experiment());
  registry.add(ablation_parx_experiment());
  registry.add(adaptive_routing_experiment());
  registry.add(uniform_random_throughput_experiment());
  registry.add(topology_comparison_experiment());
  registry.add(taper_study_experiment());
  registry.add(reroute_dirty_experiment());
  registry.add(pktsim_speedup_experiment());
  registry.add(flowsim_speedup_experiment());
  registry.add(online_resilience_experiment());
}

report::Registry& global_registry() {
  static report::Registry registry = [] {
    report::Registry r;
    register_all_experiments(r);
    return r;
  }();
  return registry;
}

int run_experiment_main(const char* id, int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const report::Experiment* experiment = global_registry().find(id);
  if (experiment == nullptr) {
    std::fprintf(stderr, "experiment '%s' is not registered\n", id);
    return 2;
  }
  try {
    (void)global_registry().run(*experiment, to_options(args));
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "%s failed: %s\n", id, ex.what());
    return 1;
  }
  return 0;
}

}  // namespace hxsim::bench
