// Table 1 experiment: the valid virtual destination LIDx per (source
// quadrant, destination quadrant, message class) from the implementation,
// the R1-R4 rule list, and the measured path-length consequence on the
// HyperX lattice (minimal for small, forced detour for large).
#include <cstdio>

#include "core/lid_choice.hpp"
#include "core/quadrant.hpp"
#include "experiments/experiments.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"

namespace hxsim::bench {

namespace {

std::string cell(std::int32_t s, std::int32_t d, core::MsgClass cls) {
  const core::LidChoice c = core::parx_lid_options(s, d, cls);
  std::string out = std::to_string(c.options[0]);
  if (c.count == 2) out += " | " + std::to_string(c.options[1]);
  return out;
}

/// Prints one class's 4x4 LID table; returns the total option count over
/// the 16 cells (the machine-checked shape of Table 1: small-class cells
/// offer two quadrant-local choices, large-class cells pin one detour).
std::int32_t print_table(core::MsgClass cls, const char* title) {
  std::printf("%s\n", title);
  stats::TextTable t({"s \\ d", "Q0", "Q1", "Q2", "Q3"});
  std::int32_t options_total = 0;
  for (std::int32_t s = 0; s < 4; ++s) {
    std::vector<std::string> row{"Q" + std::to_string(s)};
    for (std::int32_t d = 0; d < 4; ++d) {
      row.push_back(cell(s, d, cls));
      options_total += core::parx_lid_options(s, d, cls).count;
    }
    t.add_row(row);
  }
  std::printf("%s\n", t.to_string().c_str());
  return options_total;
}

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  report::ResultSet rs;
  std::printf("== Table 1: virtual destination LIDx selection ==\n\n");
  std::printf("Rules (Section 3.2.1):\n"
              "  R1: LID0 -> remove all links within the left half\n"
              "  R2: LID1 -> remove all links within the right half\n"
              "  R3: LID2 -> remove all links within the top half\n"
              "  R4: LID3 -> remove all links within the bottom half\n"
              "Threshold: small <= %lld bytes (Section 3.2.4)\n\n",
              static_cast<long long>(core::kParxSmallLargeThreshold));
  const std::int32_t small_options =
      print_table(core::MsgClass::kSmall, "(a) x for small messages");
  const std::int32_t large_options =
      print_table(core::MsgClass::kLarge, "(b) x for large messages");
  rs.set("small_lid_options_total", small_options);
  rs.set("large_lid_options_total", large_options);

  // Demonstrate the consequence on the real lattice: average switch hops
  // per class between two same-quadrant switches.
  const workloads::PaperSystem& system = shared_system(args.quick);
  const auto& hx = system.hyperx();
  const auto& cluster = system.hx_parx();
  stats::Rng rng(args.seed);

  double small_hops = 0.0;
  double large_hops = 0.0;
  std::int32_t pairs = 0;
  for (topo::NodeId src = 0; src < 14; ++src) {
    for (topo::NodeId dst = 0; dst < 14; ++dst) {
      if (hx.topo().attach_switch(src) == hx.topo().attach_switch(dst))
        continue;
      const auto s = cluster.route_message(src, dst, 256, rng);
      const auto l = cluster.route_message(src, dst, 1 << 20, rng);
      small_hops += s ? s->path.size() - 2.0 : 0.0;
      large_hops += l ? l->path.size() - 2.0 : 0.0;
      ++pairs;
    }
  }
  const double small_avg = small_hops / pairs;
  const double large_avg = large_hops / pairs;
  std::printf("Measured consequence (adjacent same-quadrant switches, %d "
              "pairs):\n  small-class avg switch hops: %.2f (minimal = 1)\n"
              "  large-class avg switch hops: %.2f (forced detour)\n",
              pairs, small_avg, large_avg);
  rs.set("small_avg_switch_hops", small_avg);
  rs.set("large_avg_switch_hops", large_avg);

  report::ResultTable& out =
      rs.table("consequence", {"message class", "avg switch hops",
                               "LID options over the 16 quadrant cells",
                               "paper"});
  out.add_row({"small (<= threshold)", stats::format_fixed(small_avg, 2),
               std::to_string(small_options), "minimal (1 hop adjacent)"});
  out.add_row({"large", stats::format_fixed(large_avg, 2),
               std::to_string(large_options), "forced detour"});
  return rs;
}

}  // namespace

report::Experiment table1_rules_experiment() {
  return {"table1_rules",
          "PARX virtual destination LID selection rules and consequences",
          "Table 1 / SS3.2.1", run};
}

}  // namespace hxsim::bench
