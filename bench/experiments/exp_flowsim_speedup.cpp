// Repo-level experiment: the indexed max-min flow solver, as claims.
// Reference vs indexed engine on the *congested* regime the indexed
// solver targets -- several permutations overlaid into one flow set, so
// the filling passes through hundreds of distinct levels and the
// reference's per-round full rescan dominates.  (On lightly congested
// sets with a handful of levels the rescan is cheap and the indexed
// engine's heap churn loses; bench/flowsim_scaling reports those phases
// for the honest trajectory, and the speedup claim is scoped to the full
// scale where the congested regime exists.)  Every indexed rate vector
// and FlowSolveRecord must be bitwise identical to the reference at any
// scale; the committed claims gate identity everywhere and the
// congested-regime single-thread speedup staying at or above parity
// (wall-clock; understated on a single-core CI container).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "experiments/experiments.hpp"
#include "experiments/flow_workloads.hpp"
#include "obs/flow_trace.hpp"
#include "sim/flowsim.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"

namespace hxsim::bench {

namespace {

bool rates_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool records_equal(const obs::FlowSolveRecord& a,
                   const obs::FlowSolveRecord& b) {
  return a.active_flows == b.active_flows &&
         a.levels.size() == b.levels.size() &&
         (a.levels.empty() ||
          std::memcmp(a.levels.data(), b.levels.data(),
                      a.levels.size() * sizeof(double)) == 0) &&
         a.freezes_per_level == b.freezes_per_level &&
         a.saturated == b.saturated;
}

struct EngineTiming {
  double seconds = 0.0;
  double freezes_per_sec = 0.0;
  std::vector<std::vector<double>> rates;
  obs::FlowSolveTrace trace;  // one traced solve per set (untimed)
};

EngineTiming time_engine(const topo::Topology& topo,
                         sim::FlowSim::SolverEngine engine,
                         const std::vector<std::vector<sim::Flow>>& sets,
                         std::int32_t reps) {
  const sim::FlowSim solver(topo, {}, engine);
  sim::FlowSim::SolveScratch scratch;
  EngineTiming t;
  std::int64_t freezes = 0;
  t.rates.resize(sets.size());
  std::vector<std::vector<char>> active(sets.size());
  for (std::size_t i = 0; i < sets.size(); ++i) {
    active[i].assign(sets[i].size(), 1);
    t.rates[i].assign(sets[i].size(), 0.0);
    solver.solve_active(sets[i], active[i], t.rates[i], scratch);  // warm-up
    freezes += static_cast<std::int64_t>(sets[i].size());
  }
  PhaseClock clock;
  for (std::int32_t r = 0; r < reps; ++r)
    for (std::size_t i = 0; i < sets.size(); ++i)
      solver.solve_active(sets[i], active[i], t.rates[i], scratch);
  t.seconds = clock.lap() / reps;
  if (t.seconds > 0.0)
    t.freezes_per_sec = static_cast<double>(freezes) / t.seconds;
  for (std::size_t i = 0; i < sets.size(); ++i)
    (void)solver.fair_rates(sets[i], &t.trace);
  return t;
}

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  report::ResultSet rs;
  const std::int32_t reps = args.quick ? 2 : std::max(args.reps, 3);

  const FlowFabric hx = flow_hyperx_fabric(args.quick);
  const FlowFabric ft = flow_fat_tree_fabric(args.quick);
  stats::Rng rng(args.seed);
  const std::int32_t samples = args.quick ? 2 : 4;

  struct Phase {
    const char* key;
    const char* label;
    const topo::Topology* topo;
    std::vector<std::vector<sim::Flow>> sets;
  };
  std::vector<Phase> phases;
  {
    Phase p{"hx_merged", "hyperx merged perms x8", hx.topo, {}};
    for (std::int32_t s = 0; s < samples / 2 + 1; ++s)
      p.sets.push_back(merged_permutations_set(hx, rng, 8));
    phases.push_back(std::move(p));
  }
  {
    Phase p{"hx_merged_ebb", "hyperx merged eBB x8", hx.topo, {}};
    std::vector<sim::Flow> merged;
    for (std::int32_t s = 0; s < 8; ++s) {
      std::vector<sim::Flow> one = ebb_flow_set(hx, rng);
      for (auto& flow : one) merged.push_back(std::move(flow));
    }
    p.sets.push_back(std::move(merged));
    phases.push_back(std::move(p));
  }
  {
    Phase p{"ft_merged", "ftree merged perms x8", ft.topo, {}};
    for (std::int32_t s = 0; s < samples / 2 + 1; ++s)
      p.sets.push_back(merged_permutations_set(ft, rng, 8));
    phases.push_back(std::move(p));
  }

  std::printf("== Indexed vs reference flow solver (single thread, %d reps) "
              "==\n\n", reps);
  stats::TextTable table({"workload", "flows", "ref Mfz/s", "indexed Mfz/s",
                          "speedup", "bit-identical"});
  report::ResultTable& out =
      rs.table("speedup", {"workload", "flows", "ref Mfz/s", "indexed Mfz/s",
                           "speedup", "bit-identical"});
  bool all_identical = true;
  double min_speedup = 0.0;
  for (const Phase& phase : phases) {
    const EngineTiming ref = time_engine(
        *phase.topo, sim::FlowSim::SolverEngine::kReference, phase.sets, reps);
    const EngineTiming idx = time_engine(
        *phase.topo, sim::FlowSim::SolverEngine::kIndexed, phase.sets, reps);
    bool identical = ref.trace.solves.size() == idx.trace.solves.size();
    std::int64_t flows = 0;
    for (std::size_t i = 0; i < phase.sets.size(); ++i) {
      flows += static_cast<std::int64_t>(phase.sets[i].size());
      identical = identical && rates_equal(ref.rates[i], idx.rates[i]);
    }
    for (std::size_t i = 0; identical && i < ref.trace.solves.size(); ++i)
      identical = records_equal(ref.trace.solves[i], idx.trace.solves[i]);
    all_identical = all_identical && identical;
    const double speedup =
        idx.seconds > 0.0 ? ref.seconds / idx.seconds : 0.0;
    min_speedup = min_speedup > 0.0 ? std::min(min_speedup, speedup)
                                    : speedup;
    const std::vector<std::string> row{
        phase.label,
        std::to_string(flows),
        stats::format_fixed(ref.freezes_per_sec / 1e6, 2),
        stats::format_fixed(idx.freezes_per_sec / 1e6, 2),
        stats::format_fixed(speedup, 2) + "x",
        identical ? "yes" : "NO"};
    table.add_row(row);
    out.add_row(row);
    rs.set(std::string(phase.key) + "_speedup", speedup);
    rs.set(std::string(phase.key) + "_indexed_freezes_per_sec",
           idx.freezes_per_sec);
  }
  rs.set("indexed_min_speedup", min_speedup);
  rs.set("indexed_identical", all_identical ? 1.0 : 0.0);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("indexed engine bit-identical to reference: %s\n",
              all_identical ? "yes" : "NO (BUG)");
  return rs;
}

}  // namespace

report::Experiment flowsim_speedup_experiment() {
  return {"flowsim_speedup",
          "Indexed flow-solver speedup and bitwise identity vs reference",
          "repo (flow-solver contract)", run};
}

}  // namespace hxsim::bench
