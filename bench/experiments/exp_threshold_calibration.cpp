// Section 3.2.4 calibration experiment: at which message size does
// congestion on the single cable between two HyperX switches start to
// dominate latency?  Multi-PingPong on the packet simulator, k = 1..7
// pairs per switch pair; the knee behind the paper's 512-byte threshold.
#include <cstdio>

#include "experiments/experiments.hpp"
#include "routing/dfsssp.hpp"
#include "sim/pktsim.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "topo/hyperx.hpp"

namespace hxsim::bench {

namespace {

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  (void)args;  // deterministic and cheap at paper scale; ignores --quick
  report::ResultSet rs;

  const topo::HyperX hx(topo::paper_hyperx_params());
  routing::LidSpace lids =
      routing::LidSpace::consecutive(hx.topo().num_terminals(), 0);
  routing::DfssspEngine engine(8);
  const routing::RouteResult route = engine.compute(hx.topo(), lids);

  sim::PktSimConfig cfg;
  sim::PktSim pktsim(hx.topo(), cfg);

  std::printf("== Small/large threshold calibration (PktSim, two adjacent "
              "12x8 switches) ==\n\n");
  std::vector<std::int64_t> sizes;
  for (std::int64_t b = 64; b <= 64 * 1024; b *= 2) sizes.push_back(b);

  std::vector<std::string> header{"msg size"};
  for (std::int32_t k = 1; k <= 7; ++k)
    header.push_back(std::to_string(k) + " pairs");
  stats::TextTable table(header);
  report::ResultTable& knee =
      rs.table("knee", {"msg size", "7-pair slowdown"});

  for (const std::int64_t bytes : sizes) {
    std::vector<std::string> row{stats::format_bytes(bytes)};
    double solo_latency = 0.0;
    double full_contention = 0.0;
    for (std::int32_t pairs = 1; pairs <= 7; ++pairs) {
      std::vector<sim::PktMessage> msgs;
      for (std::int32_t p = 0; p < pairs; ++p) {
        // Node p on switch 0 streams to node p on switch 1 (7 per switch).
        const topo::NodeId src = hx.topo().switch_terminals(0)[p];
        const topo::NodeId dst = hx.topo().switch_terminals(1)[p];
        const auto path = route.tables.path(hx.topo(), lids, src,
                                            lids.base_lid(dst));
        sim::PktMessage m;
        m.src = src;
        m.dst = dst;
        m.bytes = bytes;
        m.path = path.channels;
        msgs.push_back(std::move(m));
      }
      const auto result = pktsim.run(msgs);
      double worst = 0.0;
      for (double t : result.completion) worst = std::max(worst, t);
      if (pairs == 1) solo_latency = worst;
      full_contention = worst / solo_latency;
      row.push_back(stats::format_fixed(full_contention, 2) + "x");
    }
    table.add_row(row);
    knee.add_row({stats::format_bytes(bytes),
                  stats::format_fixed(full_contention, 2) + "x"});
    // Metric names stay byte-count keyed: slowdown_7p_512B etc.
    std::string size_key =
        bytes < 1024 ? std::to_string(bytes) + "B"
                     : std::to_string(bytes / 1024) + "KiB";
    rs.set("slowdown_7p_" + size_key, full_contention);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Reading: with 7 node pairs per switch the contention "
              "multiplier approaches 7x once messages no longer fit a single "
              "MTU; sub-512B messages stay within ~1x-2x, hence the paper's "
              "512-byte PARX threshold.\n");
  return rs;
}

}  // namespace

report::Experiment threshold_calibration_experiment() {
  return {"threshold_calibration",
          "Multi-PingPong knee behind the 512-byte PARX threshold",
          "SS3.2.4", run};
}

}  // namespace hxsim::bench
