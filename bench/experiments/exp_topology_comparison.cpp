// Topology-comparison experiment: fat-tree vs. HyperX vs. Dragonfly
// ("the various flies"), all at 672 nodes; hardware cost, routed path
// lengths, deadlock-freedom cost (VLs), and throughput under the uniform
// and adversarial-shift matrices.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "experiments/experiments.hpp"
#include "routing/dfsssp.hpp"
#include "routing/ftree.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fat_tree.hpp"
#include "topo/hyperx.hpp"

namespace hxsim::bench {

namespace {

struct Plane {
  std::string name;
  std::string key;  // metric prefix: ft / hx / df
  const topo::Topology* topology;
  std::unique_ptr<mpi::Cluster> cluster;
};

double saturation(const mpi::Cluster& cluster, bool adversarial,
                  std::uint64_t seed) {
  const std::int32_t n = cluster.num_nodes();
  std::vector<double> load(
      static_cast<std::size_t>(cluster.topo().num_channels()), 0.0);
  stats::Rng rng(seed);
  if (!adversarial) {
    const double w = 1.0 / static_cast<double>(n - 1);
    for (topo::NodeId i = 0; i < n; ++i)
      for (topo::NodeId j = 0; j < n; ++j) {
        if (i == j) continue;
        auto msg = cluster.route_message(i, j, 1 << 20, rng);
        if (!msg) continue;
        for (topo::ChannelId ch : msg->path)
          load[static_cast<std::size_t>(ch)] += w;
      }
  } else {
    // Worst-ish case for direct topologies: pair node i with the node
    // "half the machine away" (same linear shift for every plane).
    for (topo::NodeId i = 0; i < n; ++i) {
      auto msg = cluster.route_message(i, (i + n / 2) % n, 1 << 20, rng);
      if (!msg) continue;
      for (topo::ChannelId ch : msg->path)
        load[static_cast<std::size_t>(ch)] += 1.0;
    }
  }
  double worst = 0.0;
  for (double l : load) worst = std::max(worst, l);
  return worst > 0.0 ? std::min(1.0, 1.0 / worst) : 1.0;
}

stats::Summary hops(const mpi::Cluster& cluster, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<double> lengths;
  for (std::int32_t trial = 0; trial < 2000; ++trial) {
    const auto src = static_cast<topo::NodeId>(
        rng.next_below(static_cast<std::uint64_t>(cluster.num_nodes())));
    const auto dst = static_cast<topo::NodeId>(
        rng.next_below(static_cast<std::uint64_t>(cluster.num_nodes())));
    if (src == dst) continue;
    const auto msg = cluster.route_message(src, dst, 1024, rng);
    if (msg) lengths.push_back(static_cast<double>(msg->path.size()) - 2.0);
  }
  return stats::summarize(lengths);
}

report::ResultSet run(const report::Options& options) {
  const BenchArgs args = to_bench_args(options);
  report::ResultSet rs;

  const topo::FatTree ft(topo::paper_fat_tree_params());
  const topo::HyperX hx(topo::paper_hyperx_params());
  const topo::Dragonfly df(topo::paper_matched_dragonfly_params());

  std::vector<Plane> planes;
  {
    routing::LidSpace lids = routing::LidSpace::consecutive(672, 0);
    routing::FtreeEngine engine(ft);
    planes.push_back(Plane{"Fat-Tree 18-ary-3 / ftree", "ft", &ft.topo(),
                           std::make_unique<mpi::Cluster>(
                               ft.topo(), lids,
                               engine.compute(ft.topo(), lids),
                               mpi::make_ob1())});
  }
  for (const auto* direct :
       std::initializer_list<const topo::Topology*>{&hx.topo(), &df.topo()}) {
    routing::LidSpace lids = routing::LidSpace::consecutive(672, 0);
    routing::DfssspEngine engine(8);
    const bool is_hx = direct == &hx.topo();
    planes.push_back(Plane{is_hx ? "HyperX 12x8 / DFSSSP"
                                 : "Dragonfly 7-8-2-12 / DFSSSP",
                           is_hx ? "hx" : "df", direct,
                           std::make_unique<mpi::Cluster>(
                               *direct, lids,
                               engine.compute(*direct, lids),
                               mpi::make_ob1())});
  }

  std::printf("== 672-node topology comparison (paper intro: fat-tree vs. "
              "the low-diameter alternatives) ==\n\n");
  stats::TextTable table({"plane", "switches", "cables", "hops med/max",
                          "VLs", "uniform alpha", "shift alpha"});
  report::ResultTable& out =
      rs.table("planes", {"plane", "switches", "cables", "hops med/max",
                          "VLs", "uniform alpha", "shift alpha"});
  for (const Plane& plane : planes) {
    const stats::Summary h = hops(*plane.cluster, args.seed);
    const double uniform = saturation(*plane.cluster, false, args.seed);
    const double shift = saturation(*plane.cluster, true, args.seed);
    const std::vector<std::string> row{
        plane.name, std::to_string(plane.topology->num_switches()),
        std::to_string(plane.topology->num_switch_links()),
        stats::format_fixed(h.median, 0) + "/" +
            stats::format_fixed(h.max, 0),
        std::to_string(plane.cluster->route().num_vls_used),
        stats::format_fixed(uniform, 2), stats::format_fixed(shift, 2)};
    table.add_row(row);
    out.add_row(row);
    rs.set(plane.key + "_switches", plane.topology->num_switches());
    rs.set(plane.key + "_cables", plane.topology->num_switch_links());
    rs.set(plane.key + "_median_hops", h.median);
    rs.set(plane.key + "_uniform_alpha", uniform);
    rs.set(plane.key + "_shift_alpha", shift);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nReading: the direct topologies buy 1/10th the switches and ~1/10th "
      "the cables at the cost of adversarial-shift throughput under static "
      "minimal routing -- the trade the paper quantifies, and the reason "
      "both need adaptive routing (or PARX-style tricks) in production.\n");
  return rs;
}

}  // namespace

report::Experiment topology_comparison_experiment() {
  return {"topology_comparison",
          "Fat-tree vs HyperX vs Dragonfly at 672 nodes",
          "SS1-2", run};
}

}  // namespace hxsim::bench
