// Engine microbenchmarks (google-benchmark): wall-clock cost of the
// routing engines, the CDG machinery, and the two simulators -- the
// components whose performance limits reproduction turnaround.
#include <benchmark/benchmark.h>

#include "core/parx.hpp"
#include "core/quadrant.hpp"
#include "mpi/collectives.hpp"
#include "routing/cdg.hpp"
#include "routing/dfsssp.hpp"
#include "routing/ftree.hpp"
#include "routing/sssp.hpp"
#include "sim/flowsim.hpp"
#include "sim/pktsim.hpp"
#include "stats/rng.hpp"
#include "topo/fat_tree.hpp"
#include "topo/hyperx.hpp"

namespace {

using namespace hxsim;

void BM_FtreeRoutePaperTree(benchmark::State& state) {
  const topo::FatTree ft(topo::paper_fat_tree_params());
  const auto lids =
      routing::LidSpace::consecutive(ft.topo().num_terminals(), 0);
  for (auto _ : state) {
    routing::FtreeEngine engine(ft);
    benchmark::DoNotOptimize(engine.compute(ft.topo(), lids));
  }
}
BENCHMARK(BM_FtreeRoutePaperTree)->Unit(benchmark::kMillisecond);

void BM_SsspRoutePaperHyperX(benchmark::State& state) {
  const topo::HyperX hx(topo::paper_hyperx_params());
  const auto lids =
      routing::LidSpace::consecutive(hx.topo().num_terminals(), 0);
  for (auto _ : state) {
    routing::SsspEngine engine;
    benchmark::DoNotOptimize(engine.compute(hx.topo(), lids));
  }
}
BENCHMARK(BM_SsspRoutePaperHyperX)->Unit(benchmark::kMillisecond);

void BM_DfssspRoutePaperHyperX(benchmark::State& state) {
  const topo::HyperX hx(topo::paper_hyperx_params());
  const auto lids =
      routing::LidSpace::consecutive(hx.topo().num_terminals(), 0);
  for (auto _ : state) {
    routing::DfssspEngine engine(8);
    benchmark::DoNotOptimize(engine.compute(hx.topo(), lids));
  }
}
BENCHMARK(BM_DfssspRoutePaperHyperX)->Unit(benchmark::kMillisecond);

// Thread scaling of the full-fabric DFSSSP route compute (the acceptance
// path of the exec/ layer; exec_scaling writes the committed JSON record).
void BM_DfssspRouteThreads(benchmark::State& state) {
  const auto threads = static_cast<std::int32_t>(state.range(0));
  const topo::HyperX hx(topo::paper_hyperx_params());
  const auto lids =
      routing::LidSpace::consecutive(hx.topo().num_terminals(), 0);
  for (auto _ : state) {
    routing::DfssspEngine engine(8, threads);
    benchmark::DoNotOptimize(engine.compute(hx.topo(), lids));
  }
}
BENCHMARK(BM_DfssspRouteThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_FtreeRouteThreads(benchmark::State& state) {
  const auto threads = static_cast<std::int32_t>(state.range(0));
  const topo::FatTree ft(topo::paper_fat_tree_params());
  const auto lids =
      routing::LidSpace::consecutive(ft.topo().num_terminals(), 0);
  for (auto _ : state) {
    routing::FtreeEngine engine(ft, threads);
    benchmark::DoNotOptimize(engine.compute(ft.topo(), lids));
  }
}
BENCHMARK(BM_FtreeRouteThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ParxRoutePaperHyperX(benchmark::State& state) {
  const topo::HyperX hx(topo::paper_hyperx_params());
  const auto lids = core::make_parx_lid_space(hx);
  for (auto _ : state) {
    core::ParxEngine engine(hx);
    benchmark::DoNotOptimize(engine.compute(hx.topo(), lids));
  }
}
BENCHMARK(BM_ParxRoutePaperHyperX)->Unit(benchmark::kMillisecond);

void BM_FlowSimFairRates(benchmark::State& state) {
  const auto flows_count = static_cast<std::int32_t>(state.range(0));
  const topo::HyperX hx(topo::paper_hyperx_params());
  const auto lids =
      routing::LidSpace::consecutive(hx.topo().num_terminals(), 0);
  routing::DfssspEngine engine(8);
  const auto route = engine.compute(hx.topo(), lids);

  stats::Rng rng(1);
  std::vector<sim::Flow> flows;
  for (std::int32_t i = 0; i < flows_count; ++i) {
    const auto src = static_cast<topo::NodeId>(rng.next_below(672));
    const auto dst = static_cast<topo::NodeId>(rng.next_below(672));
    if (src == dst) continue;
    auto path = route.tables.path(hx.topo(), lids, src, lids.base_lid(dst));
    flows.push_back(sim::Flow{std::move(path.channels), 1 << 20});
  }
  const sim::FlowSim sim(hx.topo());
  for (auto _ : state) benchmark::DoNotOptimize(sim.fair_rates(flows));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(flows.size()));
}
BENCHMARK(BM_FlowSimFairRates)->Arg(64)->Arg(672)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_PktSimPermutation(benchmark::State& state) {
  const topo::HyperX hx(topo::paper_hyperx_params());
  const auto lids =
      routing::LidSpace::consecutive(hx.topo().num_terminals(), 0);
  routing::DfssspEngine engine(8);
  const auto route = engine.compute(hx.topo(), lids);

  std::vector<sim::PktMessage> msgs;
  const std::int32_t n = 64;
  for (std::int32_t i = 0; i < n; ++i) {
    const topo::NodeId src = i;
    const topo::NodeId dst = (i + 17) % n;
    auto path = route.tables.path(hx.topo(), lids, src, lids.base_lid(dst));
    sim::PktMessage m;
    m.src = src;
    m.dst = dst;
    m.bytes = 64 * 1024;
    m.path = std::move(path.channels);
    msgs.push_back(std::move(m));
  }
  sim::PktSim sim(hx.topo(), sim::PktSimConfig{});
  std::int64_t packets = 0;
  for (auto _ : state) {
    auto result = sim.run(msgs);
    packets += result.packets_delivered;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(packets);
}
BENCHMARK(BM_PktSimPermutation)->Unit(benchmark::kMillisecond);

void BM_IncrementalDagInsertions(benchmark::State& state) {
  const auto nodes = static_cast<std::int32_t>(state.range(0));
  stats::Rng rng(7);
  for (auto _ : state) {
    routing::IncrementalDag dag(nodes);
    for (std::int32_t i = 0; i < nodes * 4; ++i) {
      const auto u = static_cast<std::int32_t>(rng.next_below(nodes));
      const auto v = static_cast<std::int32_t>(rng.next_below(nodes));
      if (u != v) benchmark::DoNotOptimize(dag.add_edge(u, v));
    }
  }
  state.SetItemsProcessed(state.iterations() * nodes * 4);
}
BENCHMARK(BM_IncrementalDagInsertions)->Arg(256)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

void BM_TransportAlltoall672(benchmark::State& state) {
  const topo::HyperX hx(topo::paper_hyperx_params());
  const auto lids =
      routing::LidSpace::consecutive(hx.topo().num_terminals(), 0);
  routing::DfssspEngine engine(8);
  mpi::Cluster cluster(hx.topo(), lids, engine.compute(hx.topo(), lids),
                       mpi::make_ob1());
  const auto placement =
      mpi::Placement::linear(672, mpi::Placement::whole_machine(672));
  const auto schedule = mpi::collectives::alltoall_pairwise(672, 4096);
  for (auto _ : state) {
    mpi::Transport transport(cluster, placement, 1);
    benchmark::DoNotOptimize(transport.execute(schedule));
  }
}
BENCHMARK(BM_TransportAlltoall672)->Unit(benchmark::kMillisecond);

}  // namespace
