// Figure 6j-6l: HPL/HPCG Gflop/s and Graph500 GTEPS per combination.
// Thin wrapper: the measurement core lives in
// experiments/exp_fig6_x500.cpp as a registered report::Experiment; this
// binary keeps the historical CLI and stdout.
#include "experiments/experiments.hpp"

int main(int argc, char** argv) {
  return hxsim::bench::run_experiment_main("fig6_x500", argc, argv);
}
