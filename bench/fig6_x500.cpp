// Figure 6j-6l: the x500 benchmarks -- HPL and HPCG compute performance
// [Gflop/s] and Graph500 traversal speed [GTEPS] -- per node count and
// combination (higher is better).
#include <cstdio>

#include "bench_common.hpp"
#include "stats/gain.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "workloads/apps.hpp"
#include "workloads/imb.hpp"
#include "workloads/x500.hpp"

int main(int argc, char** argv) {
  using namespace hxsim;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const workloads::PaperSystem system(args.system_options());
  const std::int32_t machine = system.num_nodes();

  bench::CsvSink csv(args, {"bench", "config", "nodes", "metric",
                            "gain_vs_baseline"});

  for (const workloads::AppId id : workloads::x500_apps()) {
    const workloads::AppWorkload probe = workloads::make_app(id, 4);
    const bool is_graph = id == workloads::AppId::kGraph500;
    std::vector<std::int32_t> node_counts = workloads::capability_node_counts(
        probe.power_of_two_scaling, machine);
    if (args.quick) node_counts.resize(std::min<std::size_t>(
        node_counts.size(), 3));

    std::printf("== Fig. 6 %s [%s] (higher is better) ==\n",
                probe.name.c_str(), is_graph ? "GTEPS" : "Gflop/s");
    std::vector<std::string> header{"config"};
    for (const std::int32_t n : node_counts)
      header.push_back(std::to_string(n));
    stats::TextTable table(header);

    std::vector<double> baseline_best;
    for (std::size_t cfg = 0; cfg < system.configs().size(); ++cfg) {
      const auto& config = system.configs()[cfg];
      const std::int32_t reps = bench::reps_for(config, args);
      std::vector<std::string> row{config.name};
      for (std::size_t ni = 0; ni < node_counts.size(); ++ni) {
        const std::int32_t n = node_counts[ni];
        const workloads::AppWorkload app = workloads::make_app(id, n);
        double best_metric = 0.0;
        for (std::int32_t rep = 0; rep < reps; ++rep) {
          const mpi::Placement placement =
              bench::place(config, n, machine, args.seed + 307 * rep);
          mpi::Transport transport(*config.cluster, placement,
                                   args.seed + rep);
          const double t = workloads::run_workload(app, transport);
          if (t > workloads::kWalltimeLimit) continue;
          const double metric =
              is_graph ? workloads::gteps(app, t) : workloads::gflops(app, t);
          best_metric = std::max(best_metric, metric);
        }
        if (cfg == 0) baseline_best.push_back(best_metric);
        const double gain = stats::relative_gain(
            baseline_best[ni], best_metric,
            stats::Direction::kHigherIsBetter);
        row.push_back(best_metric == 0.0
                          ? "miss"
                          : stats::format_fixed(best_metric, 1) + " (" +
                                stats::format_gain(gain) + ")");
        csv.add_row({probe.name, config.name, std::to_string(n),
                     stats::format_fixed(best_metric, 3),
                     stats::format_gain(gain)});
      }
      table.add_row(row);
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
