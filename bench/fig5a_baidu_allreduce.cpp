// Figure 5a: Baidu DeepBench ring allreduce latency gains.
// Thin wrapper: the measurement core lives in
// experiments/exp_fig5a_baidu_allreduce.cpp as a registered report::Experiment; this
// binary keeps the historical CLI and stdout.
#include "experiments/experiments.hpp"

int main(int argc, char** argv) {
  return hxsim::bench::run_experiment_main("fig5a_baidu_allreduce", argc, argv);
}
