// Figure 5a: Baidu DeepBench ring allreduce, average latency per array
// length (4-byte floats, 0 ... 512 Mi elements), relative gain over the
// Fat-Tree/ftree/linear baseline for the other four combinations.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "mpi/collectives.hpp"
#include "stats/gain.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "workloads/imb.hpp"

namespace {

using namespace hxsim;

/// The x-axis of Figure 5a (array lengths in floats).
std::vector<std::int64_t> array_lengths(bool quick) {
  std::vector<std::int64_t> lengths{0,       32,       256,      1024,
                                    4096,    16384,    65536,    262144,
                                    1048576, 8388608,  67108864, 536870912};
  if (quick) lengths.resize(6);
  return lengths;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const workloads::PaperSystem system(args.system_options());
  const std::int32_t machine = system.num_nodes();

  std::vector<std::int32_t> node_counts =
      workloads::capability_node_counts(false, machine);
  if (args.quick) node_counts.assign({7, 14, 28});
  const auto lengths = array_lengths(args.quick);

  bench::CsvSink csv(args, {"config", "nodes", "array_len", "tavg_s",
                            "gain_vs_baseline"});

  std::map<std::tuple<std::size_t, std::int32_t, std::int64_t>, double> best;
  for (std::size_t cfg = 0; cfg < system.configs().size(); ++cfg) {
    const auto& config = system.configs()[cfg];
    const std::int32_t reps = bench::reps_for(config, args);
    for (const std::int32_t n : node_counts) {
      for (std::int32_t rep = 0; rep < reps; ++rep) {
        const mpi::Placement placement =
            bench::place(config, n, machine, args.seed + 131 * rep);
        mpi::Transport transport(*config.cluster, placement, args.seed + rep);
        for (const std::int64_t len : lengths) {
          const double t = transport.execute(
              mpi::collectives::allreduce_ring(n, len * 4));
          auto [it, inserted] = best.try_emplace({cfg, n, len}, t);
          if (!inserted && t < it->second) it->second = t;
        }
      }
    }
  }

  for (std::size_t cfg = 1; cfg < system.configs().size(); ++cfg) {
    const auto& config = system.configs()[cfg];
    std::printf("== Fig. 5a Baidu ring allreduce: %s (gain vs %s) ==\n",
                config.name.c_str(), system.baseline().name.c_str());
    std::vector<std::string> header{"array len"};
    for (const std::int32_t n : node_counts)
      header.push_back(std::to_string(n));
    stats::TextTable table(header);
    for (const std::int64_t len : lengths) {
      std::vector<std::string> row{std::to_string(len)};
      for (const std::int32_t n : node_counts) {
        const double base = best.at({std::size_t{0}, n, len});
        const double cand = best.at({cfg, n, len});
        const double gain = stats::relative_gain(
            base, cand, stats::Direction::kLowerIsBetter);
        row.push_back(stats::format_gain(gain));
        csv.add_row({config.name, std::to_string(n), std::to_string(len),
                     stats::format_fixed(cand, 6), stats::format_gain(gain)});
      }
      table.add_row(row);
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
