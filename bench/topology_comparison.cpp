// Fat-tree vs. HyperX vs. Dragonfly at 672 nodes.
// Thin wrapper: the measurement core lives in
// experiments/exp_topology_comparison.cpp as a registered report::Experiment; this
// binary keeps the historical CLI and stdout.
#include "experiments/experiments.hpp"

int main(int argc, char** argv) {
  return hxsim::bench::run_experiment_main("topology_comparison", argc, argv);
}
