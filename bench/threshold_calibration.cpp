// Section 3.2.4 calibration: congestion knee of the single-cable link.
// Thin wrapper: the measurement core lives in
// experiments/exp_threshold_calibration.cpp as a registered report::Experiment; this
// binary keeps the historical CLI and stdout.
#include "experiments/experiments.hpp"

int main(int argc, char** argv) {
  return hxsim::bench::run_experiment_main("threshold_calibration", argc, argv);
}
