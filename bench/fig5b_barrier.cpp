// Figure 5b: IMB Barrier latency whiskers per node count.
// Thin wrapper: the measurement core lives in
// experiments/exp_fig5b_barrier.cpp as a registered report::Experiment; this
// binary keeps the historical CLI and stdout.
#include "experiments/experiments.hpp"

int main(int argc, char** argv) {
  return hxsim::bench::run_experiment_main("fig5b_barrier", argc, argv);
}
