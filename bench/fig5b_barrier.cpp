// Figure 5b: IMB Barrier latency whiskers per node count for all five
// combinations.  The headline result: the PARX configuration pays a
// 2.8x-6.9x software penalty because the multi-LID bfo PML is far less
// tuned than ob1.
#include <cstdio>

#include "bench_common.hpp"
#include "mpi/collectives.hpp"
#include "stats/gain.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "workloads/imb.hpp"

int main(int argc, char** argv) {
  using namespace hxsim;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const workloads::PaperSystem system(args.system_options());
  const std::int32_t machine = system.num_nodes();

  std::vector<std::int32_t> node_counts =
      workloads::capability_node_counts(false, machine);
  if (args.quick) node_counts.assign({7, 14, 28});
  const std::int32_t runs = 10;  // the paper's ten repetitions

  bench::CsvSink csv(args, {"config", "nodes", "run", "latency_us"});
  std::vector<std::vector<double>> best_per_config(system.configs().size());

  std::printf("== Fig. 5b IMB Barrier latency [us], whiskers over %d runs "
              "==\n\n", runs);
  for (std::size_t cfg = 0; cfg < system.configs().size(); ++cfg) {
    const auto& config = system.configs()[cfg];
    std::printf("%s\n", config.name.c_str());
    stats::TextTable table({"nodes", "min", "q25", "median", "q75", "max",
                            "gain vs baseline"});
    for (const std::int32_t n : node_counts) {
      std::vector<double> lat_us;
      for (std::int32_t run = 0; run < runs; ++run) {
        const mpi::Placement placement =
            bench::place(config, n, machine, args.seed + 7919 * run);
        mpi::Transport transport(*config.cluster, placement, args.seed + run);
        const double t = transport.execute(
            mpi::collectives::barrier_dissemination(n));
        lat_us.push_back(stats::to_us(t));
        csv.add_row({config.name, std::to_string(n), std::to_string(run),
                     stats::format_fixed(stats::to_us(t), 3)});
      }
      const stats::Summary s = stats::summarize(lat_us);
      best_per_config[cfg].push_back(s.min);
      const double base = best_per_config[0][best_per_config[cfg].size() - 1];
      table.add_row({std::to_string(n), stats::format_fixed(s.min, 2),
                     stats::format_fixed(s.q25, 2),
                     stats::format_fixed(s.median, 2),
                     stats::format_fixed(s.q75, 2),
                     stats::format_fixed(s.max, 2),
                     stats::format_gain(stats::relative_gain(
                         base, s.min, stats::Direction::kLowerIsBetter))});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
