// Online fault injection campaign: cables die mid-run, the repaired LFTs
// propagate per switch after a configurable delay, and the packet engine
// measures what the transient costs -- delivered goodput by drop cause,
// end-host retries, and recovery time -- against the static-reroute
// envelope and a DAL adaptive-escape arm (HyperX/DFSSSP fabric).
//
// Output: the delivered-goodput retention table vs propagation delay and
// BENCH_online.json (one entry per arm plus the contract summary).  Exit
// status is non-zero unless every arm's typed and reference engine Results
// agree bitwise, the inert-config off switch is bit-identical, run_batch
// is thread-count invariant with retry on, and both epochs shipped zero
// blackhole columns -- the contracts this campaign exists to enforce.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "routing/dfsssp.hpp"
#include "sim/adaptive.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "topo/hyperx.hpp"
#include "workloads/online_resilience.hpp"

namespace {

using namespace hxsim;

topo::HyperXParams hyperx_params(bool quick) {
  if (!quick) return topo::paper_hyperx_params();
  topo::HyperXParams p;
  p.dims = {6, 4};
  p.terminals_per_switch = 4;  // 96 nodes
  p.name = "hyperx-6x4-small";
  return p;
}

std::string drop_label(obs::PktDropCause cause) {
  return std::string(obs::to_string(cause));
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const bool quick = args.quick;

  topo::HyperX hx(hyperx_params(quick));
  routing::LidSpace lids =
      routing::LidSpace::consecutive(hx.topo().num_terminals(), 0);
  routing::DfssspEngine dfsssp(8);
  const sim::DalRouter dal(hx);

  workloads::OnlineResilienceOptions opt;
  opt.links_failed = quick ? 4 : 8;
  opt.fault_seed = args.seed;
  opt.traffic_seed = args.seed;
  opt.messages = quick ? 64 : 192;
  opt.propagation_delays =
      quick ? std::vector<double>{0.0, 10e-6, 50e-6}
            : std::vector<double>{0.0, 5e-6, 20e-6, 50e-6};
  opt.threads = args.threads;

  std::printf("== %s / dfsssp: %d cables die at t = %.1f us, repaired "
              "tables install per switch after each sweep delay ==\n",
              hx.topo().name().c_str(), opt.links_failed,
              opt.fault_time * 1e6);

  const workloads::OnlineResilienceReport report =
      workloads::run_online_resilience_campaign(hx.topo(), dfsssp, lids, &dal,
                                                opt);

  stats::TextTable table({"arm", "delay [us]", "retry", "delivered",
                          "in-flight", "blackhole", "ttl", "superseded",
                          "retries", "abandoned", "retention",
                          "recovery [us]"});
  for (const auto& row : report.rows) {
    table.add_row(
        {row.arm, stats::format_fixed(row.propagation_delay * 1e6, 1),
         row.retry ? "on" : "off",
         std::to_string(row.messages_delivered) + "/" +
             std::to_string(row.messages),
         std::to_string(row.dropped_by_cause[static_cast<std::size_t>(
             obs::PktDropCause::kInFlight)]),
         std::to_string(row.dropped_by_cause[static_cast<std::size_t>(
             obs::PktDropCause::kBlackhole)]),
         std::to_string(row.dropped_by_cause[static_cast<std::size_t>(
             obs::PktDropCause::kTtl)]),
         std::to_string(row.dropped_by_cause[static_cast<std::size_t>(
             obs::PktDropCause::kSuperseded)]),
         std::to_string(row.retries), std::to_string(row.messages_abandoned),
         stats::format_fixed(row.retention, 3),
         stats::format_fixed(row.recovery_time * 1e6, 1)});
  }
  std::printf("%s", table.to_string().c_str());

  bench::BenchJson json("online");
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const auto& row = report.rows[i];
    std::vector<std::pair<std::string, double>> metrics = {
        {"propagation_delay", row.propagation_delay},
        {"retry", row.retry ? 1.0 : 0.0},
        {"adaptive", row.adaptive ? 1.0 : 0.0},
        {"engines_identical", row.engines_identical ? 1.0 : 0.0},
        {"deadlock", row.deadlock ? 1.0 : 0.0},
        {"messages_delivered", static_cast<double>(row.messages_delivered)},
        {"messages", static_cast<double>(row.messages)},
        {"messages_abandoned", static_cast<double>(row.messages_abandoned)},
        {"packets_dropped", static_cast<double>(row.packets_dropped)},
        {"retries", static_cast<double>(row.retries)},
        {"delivered_fraction", row.delivered_fraction},
        {"retention", row.retention},
        {"recovery_time", row.recovery_time},
        {"makespan", row.makespan},
    };
    for (std::size_t c = 0; c < obs::kNumPktDropCauses; ++c)
      metrics.emplace_back(
          std::string("drops_") +
              drop_label(static_cast<obs::PktDropCause>(c)),
          static_cast<double>(row.dropped_by_cause[c]));
    json.add(row.arm + "/delay" +
                 std::to_string(static_cast<long long>(
                     row.propagation_delay * 1e9)) +
                 "ns/retry-" + (row.retry ? "on" : "off") + "/" +
                 std::to_string(i),
             metrics);
  }
  json.add("contracts",
           {{"nofault_identical", report.nofault_identical ? 1.0 : 0.0},
            {"all_engines_identical",
             report.all_engines_identical ? 1.0 : 0.0},
            {"threads_identical", report.threads_identical ? 1.0 : 0.0},
            {"retry_retention_gain", report.retry_retention_gain},
            {"blackhole_columns_epoch0",
             static_cast<double>(report.blackhole_columns_epoch0)},
            {"blackhole_columns_epoch1",
             static_cast<double>(report.blackhole_columns_epoch1)},
            {"cables_failed", static_cast<double>(report.cables_failed)}});
  json.write();

  std::printf("\ntyped == reference on every arm: %s\n",
              report.all_engines_identical ? "yes" : "NO (BUG)");
  std::printf("inert online config bit-identical: %s\n",
              report.nofault_identical ? "yes" : "NO (BUG)");
  std::printf("run_batch thread-count invariant (retry on): %s\n",
              report.threads_identical ? "yes" : "NO (BUG)");
  std::printf("retry retention gain (min over delays): %+.3f\n",
              report.retry_retention_gain);
  std::printf("blackhole columns (epoch 0 / epoch 1): %lld / %lld\n",
              static_cast<long long>(report.blackhole_columns_epoch0),
              static_cast<long long>(report.blackhole_columns_epoch1));
  std::printf("\nReading: `retention` is delivered goodput relative to the "
              "no-fault baseline; `static-reroute` is the envelope an "
              "offline reroute would achieve; the delay sweep shows the "
              "stale-table window blackholing traffic until the repaired "
              "tables land, and how much of it end-host retry wins back.\n");

  const bool ok = report.all_engines_identical && report.nofault_identical &&
                  report.threads_identical &&
                  report.blackhole_columns_epoch0 == 0 &&
                  report.blackhole_columns_epoch1 == 0;
  return ok ? 0 : 1;
}
