// Section 2 numbers: plane properties, bisection ratio, path lengths.
// Thin wrapper: the measurement core lives in
// experiments/exp_topology_properties.cpp as a registered report::Experiment; this
// binary keeps the historical CLI and stdout.
#include "experiments/experiments.hpp"

int main(int argc, char** argv) {
  return hxsim::bench::run_experiment_main("topology_properties", argc, argv);
}
