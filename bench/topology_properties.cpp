// Section 2 numbers: switch/terminal/cable counts of both planes, the
// HyperX bisection ratio (paper: 57.1 %), the missing-cable degradation,
// and routed path-length statistics per engine.
#include <cstdio>

#include "bench_common.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "workloads/paper_system.hpp"

namespace {

using namespace hxsim;

stats::Summary path_lengths(const mpi::Cluster& cluster, std::uint64_t seed,
                            std::int32_t samples, std::int64_t bytes = 1024) {
  stats::Rng rng(seed);
  std::vector<double> hops;
  const std::int32_t n = cluster.num_nodes();
  for (std::int32_t i = 0; i < samples; ++i) {
    const auto src = static_cast<topo::NodeId>(rng.next_below(n));
    const auto dst = static_cast<topo::NodeId>(rng.next_below(n));
    if (src == dst) continue;
    const auto msg = cluster.route_message(src, dst, bytes, rng);
    if (msg)
      hops.push_back(static_cast<double>(msg->path.size()) - 2.0);
  }
  return stats::summarize(hops);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const workloads::PaperSystem system(args.system_options());
  const auto& ft = system.fat_tree();
  const auto& hx = system.hyperx();

  std::printf("== Topology properties (Section 2) ==\n\n");
  stats::TextTable t({"property", "Fat-Tree", "HyperX", "paper"});
  t.add_row({"switches", std::to_string(ft.topo().num_switches()),
             std::to_string(hx.topo().num_switches()),
             "972 (3x324) / 96"});
  t.add_row({"terminals", std::to_string(ft.topo().num_terminals()),
             std::to_string(hx.topo().num_terminals()), "672 / 672"});
  t.add_row({"cables (enabled)",
             std::to_string(ft.topo().num_switch_links()),
             std::to_string(hx.topo().num_switch_links()),
             "-197 / -15 missing"});
  t.add_row({"cables (total)",
             std::to_string(ft.topo().num_switch_links(false)),
             std::to_string(hx.topo().num_switch_links(false)),
             "11664 / 864"});
  t.add_row({"bisection ratio", "1.00 (undersubscribed)",
             stats::format_fixed(hx.bisection_ratio(), 4), "full / 0.571"});
  t.add_row({"connected",
             ft.topo().switches_connected() ? "yes" : "NO",
             hx.topo().switches_connected() ? "yes" : "NO", "yes / yes"});
  std::printf("%s\n", t.to_string().c_str());

  std::printf("Routed switch-hop statistics (1000 random pairs):\n");
  stats::TextTable p({"plane/routing", "min", "median", "max", "VLs"});
  struct Row {
    const char* name;
    const mpi::Cluster* cluster;
    std::int64_t bytes;
  } rows[] = {
      {"Fat-Tree / ftree", &system.ft_ftree(), 1024},
      {"Fat-Tree / SSSP", &system.ft_sssp(), 1024},
      {"HyperX / DFSSSP", &system.hx_dfsssp(), 1024},
      {"HyperX / PARX (small msgs)", &system.hx_parx(), 256},
      {"HyperX / PARX (large msgs)", &system.hx_parx(), 1 << 20},
  };
  for (const Row& row : rows) {
    const stats::Summary s =
        path_lengths(*row.cluster, args.seed, 1000, row.bytes);
    p.add_row({row.name, stats::format_fixed(s.min, 0),
               stats::format_fixed(s.median, 0),
               stats::format_fixed(s.max, 0),
               std::to_string(row.cluster->route().num_vls_used)});
  }
  std::printf("%s", p.to_string().c_str());
  std::printf(
      "\n(paper: DFSSSP needs 3 VLs on the 12x8, PARX 5-8; our greedy\n"
      " Pearce-Kelly layering packs the same path sets into fewer lanes,\n"
      " which only helps -- fewer lanes than the QDR budget of 8)\n");
  return 0;
}
