// Incremental rerouting microbenchmark (fault-stage pipelines).
//
// For both paper planes, a seeded multi-stage fault schedule is applied
// and every routing engine is rerouted twice per stage: once from scratch
// (engine.compute on the degraded fabric) and once through
// routing::DeltaRouter, which recomputes only the destination trees whose
// previous SPF tree used a channel the stage disabled.
//
// The schedule models the *operational* attrition cadence the incremental
// path exists for -- a few cables at a time, the way the paper's fabric
// accumulated its 197 cable faults over months -- plus the HyperX plane
// fault as the bulk-damage extreme.  (Whole-switch stages at paper scale
// disable ~70 channel directions at once; destination trees span the
// fabric, so such a stage genuinely dirties every tree and there is
// nothing for incrementality to save -- the resilience campaign still
// exercises that regime through the same DeltaRouter.)  The bench checks
// the two RouteResults are bit-identical at every stage -- the delta
// layer's contract -- and reports wall times plus two fractions: the
// dirty-tree fraction (LFT columns changed / total, the machine- and
// strategy-independent measure of how much routing state a fault stage
// touches) and the recompute fraction (Dijkstras re-run / total, the work
// the engine's delta strategy actually spent).
//
// Output: per-stage table, BENCH_reroute.json (per fabric x engine x
// stage, plus per-engine aggregates).  Exit status is non-zero if any
// delta table diverges from its full recompute or an engine's aggregate
// dirty fraction reaches 1.0 (incrementality never saved anything).
//
// Under HXSIM_VERIFY_DELTA=1 the DeltaRouter additionally self-checks
// every incremental update against a full recompute (CI smoke mode);
// delta timings then include that shadow compute and are not meaningful.
#include <chrono>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/parx.hpp"
#include "routing/delta.hpp"
#include "routing/dfsssp.hpp"
#include "routing/ftree.hpp"
#include "routing/sssp.hpp"
#include "routing/updown.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "topo/fat_tree.hpp"
#include "topo/fault_injector.hpp"
#include "topo/hyperx.hpp"

namespace {

using namespace hxsim;

topo::FatTreeParams tree_params(bool quick) {
  if (!quick) return topo::paper_fat_tree_params();
  topo::FatTreeParams p;
  p.arity = 6;
  p.levels = 3;
  p.leaf_terminals = 4;
  p.populated_leaves = 24;  // 96 nodes
  p.name = "fat-tree-6ary3-small";
  return p;
}

topo::HyperXParams hyperx_params(bool quick) {
  if (!quick) return topo::paper_hyperx_params();
  topo::HyperXParams p;
  p.dims = {6, 4};
  p.terminals_per_switch = 4;  // 96 nodes
  p.name = "hyperx-6x4-small";
  return p;
}

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct PlaneEngine {
  std::string name;
  routing::RoutingEngine* engine;
  routing::LidSpace lids;
};

struct BenchState {
  stats::TextTable table{{"fabric / engine", "stage", "full ms", "delta ms",
                          "speedup", "dirty frac", "recompute frac",
                          "changed"}};
  bench::BenchJson json{"reroute"};
  bool identical = true;
  bool incremental = true;
};

void run_plane(topo::Topology& topo, const std::string& fabric,
               std::vector<PlaneEngine>& engines,
               const topo::FaultSchedule::Options& schedule_opt,
               std::span<const topo::FaultStage> extra_stages,
               BenchState& out) {
  for (PlaneEngine& pe : engines) {
    topo::FaultSchedule schedule =
        topo::FaultSchedule::plan(topo, schedule_opt);
    for (const topo::FaultStage& stage : extra_stages)
      schedule.append_stage(stage);

    routing::DeltaRouter router(*pe.engine);
    const std::string tag = fabric + "/" + pe.name;
    std::int64_t recomputed_sum = 0;
    std::int64_t changed_sum = 0;
    std::int64_t total_sum = 0;
    double full_ms_sum = 0.0;
    double delta_ms_sum = 0.0;

    for (std::int32_t stage = 0; stage <= schedule.num_stages(); ++stage) {
      routing::DeltaUpdate update;
      if (stage > 0) {
        topo::FaultReport report = schedule.apply_stage(topo, stage - 1);
        update.disabled = std::move(report.disabled_channels);
      }
      try {
        const auto t_full = std::chrono::steady_clock::now();
        const routing::RouteResult full = pe.engine->compute(topo, pe.lids);
        const double full_ms = elapsed_ms(t_full);

        routing::DeltaStats stats;
        const auto t_delta = std::chrono::steady_clock::now();
        const routing::RouteResult& delta =
            stage == 0 ? router.reroute_full(topo, pe.lids)
                       : router.reroute(topo, pe.lids, update, &stats);
        const double delta_ms = elapsed_ms(t_delta);

        if (!(delta == full)) {
          out.identical = false;
          std::printf("MISMATCH: %s stage %d delta tables diverge from full "
                      "recompute\n",
                      tag.c_str(), stage);
        }
        const double dirty = stage == 0 ? 1.0 : stats.dirty_fraction();
        const double recomp = stage == 0 ? 1.0 : stats.recompute_fraction();
        if (stage > 0) {
          recomputed_sum += stats.columns_recomputed;
          changed_sum += stats.full_recompute ? stats.columns_total
                                              : stats.columns_changed;
          total_sum += stats.columns_total;
          full_ms_sum += full_ms;
          delta_ms_sum += delta_ms;
        }
        out.table.add_row(
            {tag, std::to_string(stage), stats::format_fixed(full_ms, 2),
             stats::format_fixed(delta_ms, 2),
             stats::format_fixed(delta_ms > 0.0 ? full_ms / delta_ms : 0.0, 2),
             stats::format_fixed(dirty, 4), stats::format_fixed(recomp, 4),
             std::to_string(stage == 0 ? 0 : stats.columns_changed)});
        out.json.add(
            tag + "/stage" + std::to_string(stage),
            {{"stage", static_cast<double>(stage)},
             {"full_ms", full_ms},
             {"delta_ms", delta_ms},
             {"dirty_fraction", dirty},
             {"recompute_fraction", recomp},
             {"columns_total",
              static_cast<double>(stage == 0 ? 0 : stats.columns_total)},
             {"columns_recomputed",
              static_cast<double>(stage == 0 ? 0 : stats.columns_recomputed)},
             {"columns_changed",
              static_cast<double>(stage == 0 ? 0 : stats.columns_changed)},
             {"full_recompute",
              stage > 0 && stats.full_recompute ? 1.0 : 0.0}});
      } catch (const std::exception& ex) {
        // Engine cannot route this degraded fabric (e.g. PARX out of VLs):
        // not a delta-layer defect; both paths fail alike.
        router.invalidate();
        out.table.add_row({tag, std::to_string(stage), "-", "-", "-",
                           "fail", "-", "-"});
        out.json.add(tag + "/stage" + std::to_string(stage) + "/failed",
                     {{"stage", static_cast<double>(stage)}});
        std::printf("note: %s stage %d failed to route: %s\n", tag.c_str(),
                    stage, ex.what());
      }
    }
    schedule.revert(topo);

    if (total_sum > 0) {
      const double dirty_agg =
          static_cast<double>(changed_sum) / static_cast<double>(total_sum);
      // Gate on the changed-tree aggregate: if the stages genuinely dirtied
      // every single destination tree of every stage, incrementality bought
      // nothing and the committed JSON should say so loudly.
      if (dirty_agg >= 1.0) {
        out.incremental = false;
        std::printf("NO SAVINGS: %s aggregate dirty fraction %.4f\n",
                    tag.c_str(), dirty_agg);
      }
      out.json.add(
          tag + "/aggregate",
          {{"dirty_fraction", dirty_agg},
           {"recompute_fraction", static_cast<double>(recomputed_sum) /
                                      static_cast<double>(total_sum)},
           {"full_ms", full_ms_sum},
           {"delta_ms", delta_ms_sum},
           {"speedup",
            delta_ms_sum > 0.0 ? full_ms_sum / delta_ms_sum : 0.0}});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const bool quick = args.quick;

  topo::FatTree ft(tree_params(quick));
  topo::HyperX hx(hyperx_params(quick));

  topo::FaultSchedule::Options schedule_opt;
  schedule_opt.stages = quick ? 3 : 5;
  schedule_opt.switches_per_stage = 0;  // cable attrition (see header)
  schedule_opt.seed = args.seed;

  BenchState state;

  // --- fat-tree plane ----------------------------------------------------
  {
    topo::FaultSchedule::Options ft_opt = schedule_opt;
    ft_opt.links_per_stage = quick ? 2 : 3;
    routing::LidSpace lids =
        routing::LidSpace::consecutive(ft.topo().num_terminals(), 0);
    routing::FtreeEngine ftree(ft);
    routing::UpDownEngine updown;
    routing::SsspEngine sssp;
    routing::DfssspEngine dfsssp(8);
    std::vector<PlaneEngine> engines;
    engines.push_back({"ftree", &ftree, lids});
    engines.push_back({"updown", &updown, lids});
    engines.push_back({"sssp", &sssp, lids});
    engines.push_back({"dfsssp", &dfsssp, lids});
    std::printf("== %s: %d stages x (%d links + %d switch) per stage ==\n",
                ft.topo().name().c_str(), ft_opt.stages,
                ft_opt.links_per_stage, ft_opt.switches_per_stage);
    run_plane(ft.topo(), ft.topo().name(), engines, ft_opt, {}, state);
  }

  // --- HyperX plane (plus the resilience campaign's plane fault) ---------
  {
    topo::FaultSchedule::Options hx_opt = schedule_opt;
    hx_opt.links_per_stage = quick ? 2 : 3;
    routing::LidSpace lids =
        routing::LidSpace::consecutive(hx.topo().num_terminals(), 0);
    routing::UpDownEngine updown;
    routing::SsspEngine sssp;
    routing::DfssspEngine dfsssp(8);
    routing::LidSpace parx_lids = core::make_parx_lid_space(hx);
    core::ParxEngine parx(hx);
    std::vector<PlaneEngine> engines;
    engines.push_back({"updown", &updown, lids});
    engines.push_back({"sssp", &sssp, lids});
    engines.push_back({"dfsssp", &dfsssp, lids});
    engines.push_back({"parx", &parx, parx_lids});
    std::vector<topo::FaultStage> extra(1);
    extra[0].events.push_back(topo::hyperx_plane_fault(hx, 0, 0));
    std::printf("\n== %s: %d stages x (%d links + %d switch), then plane "
                "fault dim 0 coord 0 ==\n",
                hx.topo().name().c_str(), hx_opt.stages,
                hx_opt.links_per_stage, hx_opt.switches_per_stage);
    run_plane(hx.topo(), hx.topo().name(), engines, hx_opt, extra, state);
  }

  std::printf("%s", state.table.to_string().c_str());
  state.json.write();

  std::printf("\ndelta tables bit-identical to full recompute: %s\n",
              state.identical ? "yes" : "NO (BUG)");
  std::printf("every engine saved work incrementally: %s\n",
              state.incremental ? "yes" : "NO (BUG)");
  std::printf("\nReading: `dirty frac` is columns changed / columns total "
              "-- the routing state the fault stage actually touched; "
              "`recompute frac` is the Dijkstra work the delta strategy "
              "spent (near 1.0 for the weight-evolving engines, whose "
              "columns downstream of the first dirty one must re-run); "
              "`speedup` is wall time of a from-scratch reroute over the "
              "incremental one (modest on few cores, the dirty fraction is "
              "the machine-independent signal).\n");
  return (state.identical && state.incremental) ? 0 : 1;
}
