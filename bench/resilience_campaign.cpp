// Degraded-fabric resilience campaign (ROADMAP north star; paper §2.3 and
// footnote 7 generalised): both paper planes are degraded in seeded stages
// -- random cable faults, whole-switch failures, and a final HyperX plane
// fault -- and after every stage each routing engine is re-run, its tables
// are audited (per-VL CDG acyclicity, all-pairs path census) and delivered
// throughput is measured on uniform-random traffic with the max-min flow
// solver.  Full mode additionally sweeps the HyperX/DFSSSP combination over
// the mpiGraph-shift and eBB-bisection patterns.
//
// Output: per-engine retention tables, BENCH_resilience.json (one entry
// per fabric x engine x stage), optional --trace export of the same series
// through the MetricRegistry.  Exit status is non-zero if any engine's
// retention envelope is non-monotone or DFSSSP's CDG ever goes cyclic --
// the two properties the campaign exists to guarantee.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/parx.hpp"
#include "core/quadrant.hpp"
#include "routing/dfsssp.hpp"
#include "routing/ftree.hpp"
#include "routing/sssp.hpp"
#include "routing/updown.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "topo/fat_tree.hpp"
#include "topo/fault_injector.hpp"
#include "topo/hyperx.hpp"
#include "workloads/resilience.hpp"

namespace {

using namespace hxsim;

topo::FatTreeParams tree_params(bool quick) {
  if (!quick) return topo::paper_fat_tree_params();
  topo::FatTreeParams p;
  p.arity = 6;
  p.levels = 3;
  p.leaf_terminals = 4;
  p.populated_leaves = 24;  // 96 nodes
  p.name = "fat-tree-6ary3-small";
  return p;
}

topo::HyperXParams hyperx_params(bool quick) {
  if (!quick) return topo::paper_hyperx_params();
  topo::HyperXParams p;
  p.dims = {6, 4};
  p.terminals_per_switch = 4;  // 96 nodes
  p.name = "hyperx-6x4-small";
  return p;
}

void print_series(const obs::DegradationSeries& series) {
  stats::TextTable table({"fabric / engine", "stage", "cables", "switches",
                          "reach", "hops", "inflation", "throughput",
                          "retention", "CDG", "VLs"});
  for (const auto& s : series.samples()) {
    table.add_row({s.fabric + " / " + s.engine, std::to_string(s.stage),
                   std::to_string(s.cables_failed),
                   std::to_string(s.switches_failed),
                   stats::format_fixed(s.reachability, 4),
                   stats::format_fixed(s.mean_switch_hops, 2),
                   stats::format_fixed(s.hop_inflation, 2),
                   stats::format_fixed(s.throughput, 3),
                   stats::format_fixed(s.retention, 3),
                   s.engine_failed ? "fail"
                                   : (s.cdg_acyclic ? "acyclic" : "CYCLE"),
                   std::to_string(s.vls_used)});
  }
  std::printf("%s", table.to_string().c_str());
}

void record_series(const obs::DegradationSeries& series,
                   bench::BenchJson& json) {
  for (const auto& s : series.samples()) {
    json.add(s.fabric + "/" + s.engine + "/stage" + std::to_string(s.stage),
             {{"stage", static_cast<double>(s.stage)},
              {"cables_failed", static_cast<double>(s.cables_failed)},
              {"switches_failed", static_cast<double>(s.switches_failed)},
              {"reachability", s.reachability},
              {"lost_pairs", static_cast<double>(s.lost_pairs)},
              {"mean_switch_hops", s.mean_switch_hops},
              {"hop_inflation", s.hop_inflation},
              {"throughput", s.throughput},
              {"retention", s.retention},
              {"cdg_acyclic", s.cdg_acyclic ? 1.0 : 0.0},
              {"vls_used", static_cast<double>(s.vls_used)}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const bool quick = args.quick;

  topo::FatTree ft(tree_params(quick));
  topo::HyperX hx(hyperx_params(quick));

  workloads::ResilienceOptions opt;
  opt.schedule.stages = quick ? 3 : 5;
  opt.schedule.switches_per_stage = 1;
  opt.schedule.seed = args.seed;
  opt.traffic_samples = quick ? 4 : 8;
  opt.traffic_seed = args.seed;
  opt.threads = args.threads;

  obs::MetricRegistry registry;
  bench::BenchJson json("resilience");
  bool monotone = true;
  bool dfsssp_safe = true;

  // --- fat-tree plane: the paper lost 197 of its 2662 tree links ---------
  {
    workloads::ResilienceOptions ft_opt = opt;
    ft_opt.schedule.links_per_stage = quick ? 4 : 40;  // ~paper scale overall
    routing::LidSpace lids =
        routing::LidSpace::consecutive(ft.topo().num_terminals(), 0);
    routing::FtreeEngine ftree(ft);
    routing::UpDownEngine updown;
    routing::SsspEngine sssp;
    routing::DfssspEngine dfsssp(8);
    std::vector<workloads::ResilienceEngine> engines;
    engines.push_back({"ftree", &ftree, lids});
    engines.push_back({"updown", &updown, lids});
    engines.push_back({"sssp", &sssp, lids});
    engines.push_back({"dfsssp", &dfsssp, lids});

    std::printf("== %s: %d stages x (%d links + %d switch) per stage ==\n",
                ft.topo().name().c_str(), ft_opt.schedule.stages,
                ft_opt.schedule.links_per_stage,
                ft_opt.schedule.switches_per_stage);
    const auto series = workloads::run_resilience_campaign(
        ft.topo(), ft.topo().name(), engines, ft_opt);
    print_series(series);
    series.publish(registry);
    record_series(series, json);
    monotone &= series.retention_monotone();
    dfsssp_safe &= series.all_acyclic("dfsssp");
  }

  // --- HyperX plane: random cables + switches, then a whole plane fault --
  {
    workloads::ResilienceOptions hx_opt = opt;
    hx_opt.schedule.links_per_stage = quick ? 2 : 5;  // 15 = paper count
    routing::LidSpace lids =
        routing::LidSpace::consecutive(hx.topo().num_terminals(), 0);
    routing::UpDownEngine updown;
    routing::SsspEngine sssp;
    routing::DfssspEngine dfsssp(8);
    routing::LidSpace parx_lids = core::make_parx_lid_space(hx);
    core::ParxEngine parx(hx);
    std::vector<workloads::ResilienceEngine> engines;
    engines.push_back({"updown", &updown, lids});
    engines.push_back({"sssp", &sssp, lids});
    engines.push_back({"dfsssp", &dfsssp, lids});
    engines.push_back({"parx", &parx, parx_lids});

    // Final stage: one lattice column loses its entire row cabling (a cut
    // AOC bundle).  In 2-D that isolates the column -- its terminals become
    // footnote-7 lost LIDs and reachability drops by ~1/S_1.
    std::vector<topo::FaultStage> extra(1);
    extra[0].events.push_back(topo::hyperx_plane_fault(hx, 0, 0));

    std::printf("\n== %s: %d stages x (%d links + %d switch), then plane "
                "fault dim 0 coord 0 ==\n",
                hx.topo().name().c_str(), hx_opt.schedule.stages,
                hx_opt.schedule.links_per_stage,
                hx_opt.schedule.switches_per_stage);
    const auto series = workloads::run_resilience_campaign(
        hx.topo(), hx.topo().name(), engines, hx_opt, extra);
    print_series(series);
    series.publish(registry);
    record_series(series, json);
    monotone &= series.retention_monotone();
    dfsssp_safe &= series.all_acyclic("dfsssp");
  }

  // --- full mode: HyperX/DFSSSP across all three traffic patterns --------
  if (!quick) {
    routing::LidSpace lids =
        routing::LidSpace::consecutive(hx.topo().num_terminals(), 0);
    for (const auto traffic : {workloads::ResilienceTraffic::kMpiGraphShift,
                               workloads::ResilienceTraffic::kEbbBisection}) {
      workloads::ResilienceOptions t_opt = opt;
      t_opt.schedule.links_per_stage = 5;
      t_opt.traffic = traffic;
      routing::DfssspEngine dfsssp(8);
      std::vector<workloads::ResilienceEngine> engines;
      engines.push_back(
          {std::string("dfsssp-") + workloads::to_string(traffic), &dfsssp,
           lids});
      std::printf("\n== %s traffic, HyperX/DFSSSP ==\n",
                  workloads::to_string(traffic));
      const auto series = workloads::run_resilience_campaign(
          hx.topo(), hx.topo().name(), engines, t_opt);
      print_series(series);
      series.publish(registry);
      record_series(series, json);
      monotone &= series.retention_monotone();
    }
  }

  json.write();
  bench::write_trace(args, registry);

  std::printf("\nretention envelopes monotone: %s\n",
              monotone ? "yes" : "NO (BUG)");
  std::printf("DFSSSP deadlock-free at every fault rate: %s\n",
              dfsssp_safe ? "yes" : "NO (BUG)");
  std::printf("\nReading: `retention` is the worst-so-far fraction of the "
              "intact fabric's delivered bandwidth (operator guarantee); "
              "`reach` < 1 is footnote 7's lost-LID effect; SSSP showing "
              "CYCLE on the HyperX is why DFSSSP exists.\n");
  return (monotone && dfsssp_safe) ? 0 : 1;
}
