// Figure 4: IMB collective latency gains over the baseline combination.
// Thin wrapper: the measurement core lives in
// experiments/exp_fig4_collectives.cpp as a registered report::Experiment; this
// binary keeps the historical CLI and stdout.
#include "experiments/experiments.hpp"

int main(int argc, char** argv) {
  return hxsim::bench::run_experiment_main("fig4_collectives", argc, argv);
}
