// Figure 4: IMB collective latency, relative performance gain of each
// (topology, routing, placement) combination over the Fat-Tree/ftree/linear
// baseline, for Bcast, Gather, Scatter, Reduce, Allreduce and Alltoall over
// node counts 7..672 and message sizes 1 B..4 MiB.
//
// Output: one gain matrix per (operation, configuration), rows = message
// sizes, columns = node counts, cells formatted like the paper ("+0.12",
// "-0.45", "+Inf").  "." marks combinations skipped for the paper's
// time/memory constraints (the missing Alltoall boxes).
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "stats/gain.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "workloads/apps.hpp"
#include "workloads/imb.hpp"

namespace {

using namespace hxsim;
using workloads::ImbOp;

/// Mimics the paper's missing Alltoall boxes: full-system Alltoall with
/// multi-MiB payloads blew the 15-minute walltime there; simulating it here
/// is merely slow, so we skip the same corner.
bool skipped(ImbOp op, std::int32_t nodes, std::int64_t bytes) {
  return op == ImbOp::kAlltoall && nodes >= 448 && bytes > 1024 * 1024;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const workloads::PaperSystem system(args.system_options());
  const std::int32_t machine = system.num_nodes();

  std::vector<std::int32_t> node_counts =
      workloads::capability_node_counts(false, machine);
  if (args.quick)
    node_counts.assign({7, 14, 28});

  bench::CsvSink csv(args, {"op", "config", "nodes", "bytes", "tmin_us",
                            "gain_vs_baseline"});

  for (const ImbOp op : workloads::imb_figure4_ops()) {
    std::vector<std::int64_t> sizes = workloads::imb_message_sizes(op);
    if (args.quick) {
      std::vector<std::int64_t> trimmed;
      for (std::size_t i = 0; i < sizes.size(); i += 4)
        trimmed.push_back(sizes[i]);
      sizes = std::move(trimmed);
    }

    // tmin per (config, nodes, size); best over reps, as the paper reports.
    std::map<std::tuple<std::size_t, std::int32_t, std::int64_t>, double>
        tmin;
    for (std::size_t cfg = 0; cfg < system.configs().size(); ++cfg) {
      const auto& config = system.configs()[cfg];
      const std::int32_t reps = bench::reps_for(config, args);
      for (const std::int32_t n : node_counts) {
        for (std::int32_t rep = 0; rep < reps; ++rep) {
          const mpi::Placement placement = bench::place(
              config, n, machine, args.seed + 97 * rep);
          mpi::Transport transport(*config.cluster, placement,
                                   args.seed + rep);
          for (const std::int64_t bytes : sizes) {
            if (skipped(op, n, bytes)) continue;
            const double t = transport.execute(
                workloads::imb_schedule(op, n, bytes));
            auto [it, inserted] =
                tmin.try_emplace({cfg, n, bytes}, t);
            if (!inserted && t < it->second) it->second = t;
          }
        }
      }
    }

    for (std::size_t cfg = 1; cfg < system.configs().size(); ++cfg) {
      const auto& config = system.configs()[cfg];
      std::printf("== Fig. 4 %s: %s (gain vs %s) ==\n",
                  workloads::to_string(op), config.name.c_str(),
                  system.baseline().name.c_str());
      std::vector<std::string> header{"msg size"};
      for (const std::int32_t n : node_counts)
        header.push_back(std::to_string(n));
      stats::TextTable table(header);
      for (const std::int64_t bytes : sizes) {
        std::vector<std::string> row{stats::format_bytes(bytes)};
        for (const std::int32_t n : node_counts) {
          if (skipped(op, n, bytes)) {
            row.push_back(".");
            continue;
          }
          const double base = tmin.at({std::size_t{0}, n, bytes});
          const double cand = tmin.at({cfg, n, bytes});
          const double gain = stats::relative_gain(
              base, cand, stats::Direction::kLowerIsBetter);
          row.push_back(stats::format_gain(gain));
          csv.add_row({workloads::to_string(op), config.name,
                       std::to_string(n), std::to_string(bytes),
                       stats::format_fixed(stats::to_us(cand), 3),
                       stats::format_gain(gain)});
        }
        table.add_row(row);
      }
      std::printf("%s\n", table.to_string().c_str());
    }
  }
  return 0;
}
