// Table 1: the valid virtual destination LIDx per (source quadrant,
// destination quadrant, message class), printed from the implementation,
// plus the R1-R4 rule list and the measured path-length consequences on
// the 12x8 HyperX (minimal for small, detoured for large).
#include <cstdio>

#include "bench_common.hpp"
#include "core/lid_choice.hpp"
#include "core/quadrant.hpp"
#include "stats/table.hpp"

namespace {

using namespace hxsim;

std::string cell(std::int32_t s, std::int32_t d, core::MsgClass cls) {
  const core::LidChoice c = core::parx_lid_options(s, d, cls);
  std::string out = std::to_string(c.options[0]);
  if (c.count == 2) out += " | " + std::to_string(c.options[1]);
  return out;
}

void print_table(core::MsgClass cls, const char* title) {
  std::printf("%s\n", title);
  stats::TextTable t({"s \\ d", "Q0", "Q1", "Q2", "Q3"});
  for (std::int32_t s = 0; s < 4; ++s) {
    std::vector<std::string> row{"Q" + std::to_string(s)};
    for (std::int32_t d = 0; d < 4; ++d) row.push_back(cell(s, d, cls));
    t.add_row(row);
  }
  std::printf("%s\n", t.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::printf("== Table 1: virtual destination LIDx selection ==\n\n");
  std::printf("Rules (Section 3.2.1):\n"
              "  R1: LID0 -> remove all links within the left half\n"
              "  R2: LID1 -> remove all links within the right half\n"
              "  R3: LID2 -> remove all links within the top half\n"
              "  R4: LID3 -> remove all links within the bottom half\n"
              "Threshold: small <= %lld bytes (Section 3.2.4)\n\n",
              static_cast<long long>(core::kParxSmallLargeThreshold));
  print_table(core::MsgClass::kSmall, "(a) x for small messages");
  print_table(core::MsgClass::kLarge, "(b) x for large messages");

  // Demonstrate the consequence on the real lattice: average switch hops
  // per class between two same-quadrant switches.
  workloads::SystemOptions opts = args.system_options();
  const workloads::PaperSystem system(opts);
  const auto& hx = system.hyperx();
  const auto& cluster = system.hx_parx();
  stats::Rng rng(args.seed);

  double small_hops = 0.0;
  double large_hops = 0.0;
  std::int32_t pairs = 0;
  for (topo::NodeId src = 0; src < 14; ++src) {
    for (topo::NodeId dst = 0; dst < 14; ++dst) {
      if (hx.topo().attach_switch(src) == hx.topo().attach_switch(dst))
        continue;
      const auto s = cluster.route_message(src, dst, 256, rng);
      const auto l = cluster.route_message(src, dst, 1 << 20, rng);
      small_hops += s ? s->path.size() - 2.0 : 0.0;
      large_hops += l ? l->path.size() - 2.0 : 0.0;
      ++pairs;
    }
  }
  std::printf("Measured consequence (adjacent same-quadrant switches, %d "
              "pairs):\n  small-class avg switch hops: %.2f (minimal = 1)\n"
              "  large-class avg switch hops: %.2f (forced detour)\n",
              pairs, small_hops / pairs, large_hops / pairs);
  return 0;
}
