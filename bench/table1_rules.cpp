// Table 1: valid virtual destination LIDx per quadrant pair and class.
// Thin wrapper: the measurement core lives in
// experiments/exp_table1_rules.cpp as a registered report::Experiment; this
// binary keeps the historical CLI and stdout.
#include "experiments/experiments.hpp"

int main(int argc, char** argv) {
  return hxsim::bench::run_experiment_main("table1_rules", argc, argv);
}
