// Figure 5c: Netgauge effective bisection bandwidth -- random bisections
// with 1 MiB streams, whiskers over the sample distribution, per node
// count and combination.  The paper's headline: PARX nearly doubles the
// 14-node dense-allocation eBB and wins 2-6 % in the mid range, but loses
// at full scale where global detours add congestion.
#include <cstdio>

#include "bench_common.hpp"
#include "stats/gain.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "stats/units.hpp"
#include "workloads/ebb.hpp"
#include "workloads/imb.hpp"

int main(int argc, char** argv) {
  using namespace hxsim;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const workloads::PaperSystem system(args.system_options());
  const std::int32_t machine = system.num_nodes();

  // The figure mixes both capability sequences (4, 8, 14, 16, 28, ...).
  std::vector<std::int32_t> node_counts;
  {
    const auto a = workloads::capability_node_counts(false, machine);
    const auto b = workloads::capability_node_counts(true, machine);
    node_counts.insert(node_counts.end(), a.begin(), a.end());
    node_counts.insert(node_counts.end(), b.begin(), b.end());
    std::sort(node_counts.begin(), node_counts.end());
    node_counts.erase(
        std::unique(node_counts.begin(), node_counts.end()),
        node_counts.end());
  }
  if (args.quick) node_counts.assign({8, 14, 16, 28});

  workloads::EbbOptions ebb_opts;
  ebb_opts.samples = args.quick ? 50 : 250;  // paper: 1000 (slow but exact)
  ebb_opts.seed = args.seed;

  bench::CsvSink csv(args,
                     {"config", "nodes", "median_gibs", "min", "max",
                      "gain_vs_baseline"});

  std::printf("== Fig. 5c effective bisection bandwidth [GiB/s per pair], "
              "%d random bisections ==\n\n", ebb_opts.samples);

  std::vector<double> baseline_median;
  for (std::size_t cfg = 0; cfg < system.configs().size(); ++cfg) {
    const auto& config = system.configs()[cfg];
    std::printf("%s\n", config.name.c_str());
    stats::TextTable table({"nodes", "min", "q25", "median", "q75", "max",
                            "gain vs baseline"});
    std::size_t row_idx = 0;
    for (const std::int32_t n : node_counts) {
      if (n % 2 != 0 && n != 7) continue;  // eBB needs even node counts
      const std::int32_t even_n = n - (n % 2);
      const mpi::Placement placement =
          bench::place(config, even_n, machine, args.seed);
      const workloads::EbbResult result =
          workloads::effective_bisection_bandwidth(*config.cluster, placement,
                                                   even_n, ebb_opts);
      const stats::Summary s = result.summary();
      if (cfg == 0) baseline_median.push_back(s.median);
      const double base = baseline_median[row_idx++];
      const double gain = stats::relative_gain(
          base, s.median, stats::Direction::kHigherIsBetter);
      table.add_row({std::to_string(even_n), stats::format_fixed(s.min, 2),
                     stats::format_fixed(s.q25, 2),
                     stats::format_fixed(s.median, 2),
                     stats::format_fixed(s.q75, 2),
                     stats::format_fixed(s.max, 2),
                     stats::format_gain(gain)});
      csv.add_row({config.name, std::to_string(even_n),
                   stats::format_fixed(s.median, 4),
                   stats::format_fixed(s.min, 4),
                   stats::format_fixed(s.max, 4), stats::format_gain(gain)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
