// Figure 5c: Netgauge effective bisection bandwidth whiskers.
// Thin wrapper: the measurement core lives in
// experiments/exp_fig5c_ebb.cpp as a registered report::Experiment; this
// binary keeps the historical CLI and stdout.
#include "experiments/experiments.hpp"

int main(int argc, char** argv) {
  return hxsim::bench::run_experiment_main("fig5c_ebb", argc, argv);
}
