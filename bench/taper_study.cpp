// Section 2.1's cost/throughput trade: fat-tree taper sweep.
// Thin wrapper: the measurement core lives in
// experiments/exp_taper_study.cpp as a registered report::Experiment; this
// binary keeps the historical CLI and stdout.
#include "experiments/experiments.hpp"

int main(int argc, char** argv) {
  return hxsim::bench::run_experiment_main("taper_study", argc, argv);
}
