// Future-work experiment: adaptive routing (min/VAL/DAL) on the HyperX.
// Thin wrapper: the measurement core lives in
// experiments/exp_adaptive_routing.cpp as a registered report::Experiment; this
// binary keeps the historical CLI and stdout.
#include "experiments/experiments.hpp"

int main(int argc, char** argv) {
  return hxsim::bench::run_experiment_main("adaptive_routing", argc, argv);
}
