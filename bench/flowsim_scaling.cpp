// Flow-solver throughput bench: indexed max-min engine vs the seed
// reference engine (single thread), plus batch scaling through
// FlowSim::solve_batch at 1..8 threads.
//
//   ./flowsim_scaling [--quick] [--threads n] [--reps n] [--seed n]
//
// Check mode is built in: every indexed-engine rate vector and
// FlowSolveRecord is verified bitwise against the reference engine, and
// every parallel batch against the 1-thread batch; any mismatch exits
// non-zero, so CI runs this binary as a correctness gate as well as a
// perf probe.  Results (freeze events/sec, old-vs-new speedup, batch
// speedups) are recorded in BENCH_flowsim.json (committed, tracking the
// perf trajectory per PR).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "experiments/flow_workloads.hpp"
#include "obs/flow_trace.hpp"
#include "sim/flowsim.hpp"

namespace {

using namespace hxsim;

/// Bitwise rate-vector equality (inf/NaN-safe); the check-mode comparator.
bool rates_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool records_equal(const obs::FlowSolveRecord& a,
                   const obs::FlowSolveRecord& b) {
  return a.active_flows == b.active_flows &&
         a.levels.size() == b.levels.size() &&
         (a.levels.empty() ||
          std::memcmp(a.levels.data(), b.levels.data(),
                      a.levels.size() * sizeof(double)) == 0) &&
         a.freezes_per_level == b.freezes_per_level &&
         a.saturated == b.saturated;
}

struct EngineTiming {
  double seconds = 0.0;
  double freezes_per_sec = 0.0;
  std::int64_t levels = 0;
  std::vector<std::vector<double>> rates;  // one vector per set
};

/// Times `reps` warm passes over all `sets` on one engine through the
/// solve_active fault-stage path (caller scratch, exactly as the
/// resilience campaign drives it); rates of the last pass are kept for
/// the identity check.
EngineTiming time_engine(const topo::Topology& topo,
                         sim::FlowSim::SolverEngine engine,
                         const std::vector<std::vector<sim::Flow>>& sets,
                         std::int32_t reps) {
  const sim::FlowSim solver(topo, {}, engine);
  sim::FlowSim::SolveScratch scratch;
  EngineTiming t;
  std::int64_t freezes = 0;
  t.rates.resize(sets.size());
  std::vector<std::vector<char>> active(sets.size());
  for (std::size_t i = 0; i < sets.size(); ++i) {
    active[i].assign(sets[i].size(), 1);
    t.rates[i].assign(sets[i].size(), 0.0);
    solver.solve_active(sets[i], active[i], t.rates[i], scratch);  // warm-up
    freezes += static_cast<std::int64_t>(sets[i].size());
  }
  bench::PhaseClock clock;
  for (std::int32_t r = 0; r < reps; ++r)
    for (std::size_t i = 0; i < sets.size(); ++i)
      solver.solve_active(sets[i], active[i], t.rates[i], scratch);
  t.seconds = clock.lap() / reps;
  if (t.seconds > 0.0)
    t.freezes_per_sec = static_cast<double>(freezes) / t.seconds;

  // Untimed traced solve per set: the record is part of the contract.
  obs::FlowSolveTrace trace;
  for (std::size_t i = 0; i < sets.size(); ++i)
    (void)solver.fair_rates(sets[i], &trace);
  for (const auto& solve : trace.solves)
    t.levels += static_cast<std::int64_t>(solve.levels.size());
  return t;
}

/// Old-vs-new single-thread comparison on one workload; exits non-zero on
/// any rate or record divergence.
void compare_engines(const char* phase, const topo::Topology& topo,
                     const std::vector<std::vector<sim::Flow>>& sets,
                     std::int32_t reps, obs::BenchJson& json) {
  const EngineTiming ref = time_engine(
      topo, sim::FlowSim::SolverEngine::kReference, sets, reps);
  const EngineTiming idx =
      time_engine(topo, sim::FlowSim::SolverEngine::kIndexed, sets, reps);
  std::int64_t flows = 0;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    flows += static_cast<std::int64_t>(sets[i].size());
    if (!rates_equal(ref.rates[i], idx.rates[i])) {
      std::fprintf(stderr, "%s: indexed engine differs from reference "
                   "(set %zu)!\n", phase, i);
      std::exit(1);
    }
  }
  // Traced records: re-solve set 0 on both engines and compare fields.
  {
    const sim::FlowSim reference(topo, {},
                                 sim::FlowSim::SolverEngine::kReference);
    const sim::FlowSim indexed(topo, {}, sim::FlowSim::SolverEngine::kIndexed);
    obs::FlowSolveTrace rt;
    obs::FlowSolveTrace it;
    (void)reference.fair_rates(sets[0], &rt);
    (void)indexed.fair_rates(sets[0], &it);
    if (!records_equal(rt.solves.at(0), it.solves.at(0))) {
      std::fprintf(stderr, "%s: FlowSolveRecord differs between engines!\n",
                   phase);
      std::exit(1);
    }
  }
  const double speedup = idx.seconds > 0.0 ? ref.seconds / idx.seconds : 0.0;
  std::printf(
      "%-24s flows=%-7lld levels=%-5lld old %8.2f Mfz/s | new %8.2f Mfz/s | "
      "speedup %.2fx\n",
      phase, static_cast<long long>(flows),
      static_cast<long long>(idx.levels), ref.freezes_per_sec / 1e6,
      idx.freezes_per_sec / 1e6, speedup);
  json.add(phase,
           {{"flows", static_cast<double>(flows)},
            {"levels", static_cast<double>(idx.levels)},
            {"old_freezes_per_sec", ref.freezes_per_sec},
            {"new_freezes_per_sec", idx.freezes_per_sec},
            {"speedup", speedup}});
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::int32_t reps = args.quick ? 2 : std::max(args.reps, 3);
  obs::BenchJson json("flowsim");
  json.add("machine", {{"hardware_threads",
                        static_cast<double>(exec::hardware_threads())}});

  const bench::FlowFabric hx = bench::flow_hyperx_fabric(args.quick);
  const bench::FlowFabric ft = bench::flow_fat_tree_fabric(args.quick);
  stats::Rng rng(args.seed);

  // --- phase 1: old vs new, single thread -------------------------------
  const std::int32_t samples = args.quick ? 2 : 4;
  {
    std::vector<std::vector<sim::Flow>> uniform;
    for (std::int32_t s = 0; s < samples; ++s)
      uniform.push_back(bench::uniform_flow_set(hx, rng));
    compare_engines("hyperx_uniform", *hx.topo, uniform, reps, json);

    std::vector<std::vector<sim::Flow>> shifts;
    for (const std::int32_t r : {1, 7, hx.topo->num_terminals() / 2})
      shifts.push_back(bench::shift_flow_set(hx, r));
    compare_engines("hyperx_shift", *hx.topo, shifts, reps, json);

    std::vector<std::vector<sim::Flow>> ebb;
    for (std::int32_t s = 0; s < samples; ++s)
      ebb.push_back(bench::ebb_flow_set(hx, rng));
    compare_engines("hyperx_ebb", *hx.topo, ebb, reps, json);

    // The congested regime the rewrite targets: several permutations
    // overlaid share channels unevenly, so the filling passes through
    // many levels and the reference rescans everything at each one.
    std::vector<std::vector<sim::Flow>> merged;
    merged.push_back(
        bench::merged_permutations_set(hx, rng, args.quick ? 4 : 8));
    compare_engines("hyperx_merged_perms", *hx.topo, merged, reps, json);

    std::vector<std::vector<sim::Flow>> ft_uniform;
    for (std::int32_t s = 0; s < samples; ++s)
      ft_uniform.push_back(bench::uniform_flow_set(ft, rng));
    compare_engines("ftree_uniform", *ft.topo, ft_uniform, reps, json);

    std::vector<std::vector<sim::Flow>> ft_merged;
    ft_merged.push_back(
        bench::merged_permutations_set(ft, rng, args.quick ? 4 : 8));
    compare_engines("ftree_merged_perms", *ft.topo, ft_merged, reps, json);
  }

  // --- phase 2: batch scaling through solve_batch -----------------------
  {
    std::vector<std::vector<sim::Flow>> sets;
    const std::int32_t batches = args.quick ? 8 : 16;
    for (std::int32_t s = 0; s < batches; ++s)
      sets.push_back(bench::uniform_flow_set(hx, rng));

    const sim::FlowSim solver(*hx.topo);
    const std::int32_t max_threads = std::min<std::int32_t>(
        8, args.threads > 0 ? args.threads : exec::hardware_threads());
    std::vector<std::vector<double>> reference;
    double base_seconds = 0.0;
    for (std::int32_t t = 1; t <= max_threads; t *= 2) {
      bench::PhaseClock clock;
      auto batch = solver.solve_batch(sets, t);
      const double seconds = clock.lap();
      if (t == 1) {
        base_seconds = seconds;
        reference = std::move(batch);
      } else {
        for (std::size_t i = 0; i < reference.size(); ++i)
          if (!rates_equal(reference[i], batch[i])) {
            std::fprintf(stderr,
                         "solve_batch: %d-thread set %zu differs from "
                         "1-thread!\n",
                         t, i);
            std::exit(1);
          }
      }
      const double speedup = seconds > 0.0 ? base_seconds / seconds : 0.0;
      std::printf("solve_batch_uniform      threads=%-2d  %8.1f ms  speedup "
                  "%.2fx\n",
                  t, seconds * 1e3, speedup);
      json.add("solve_batch_uniform",
               {{"threads", static_cast<double>(t)},
                {"sets", static_cast<double>(batches)},
                {"seconds", seconds},
                {"speedup", speedup}});
    }
  }

  json.write(".");
  std::printf("OK: indexed engine bit-identical to reference on all phases\n");
  return 0;
}
