// Thread-scaling bench for the exec/ layer: times full-fabric route
// computation (DFSSSP, ftree) and batched max-min flow solves at 1..N
// threads, asserts that every parallel run is bit-identical to the
// 1-thread run, and records the wall times + speedups in BENCH_exec.json
// (committed, so the perf trajectory is tracked from PR to PR).
//
//   ./exec_scaling [--quick] [--threads n] [--seed n]
//
// --threads caps the largest thread count tried (default: hardware).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "routing/dfsssp.hpp"
#include "routing/ftree.hpp"
#include "sim/flowsim.hpp"
#include "stats/rng.hpp"
#include "topo/fat_tree.hpp"
#include "topo/hyperx.hpp"

namespace {

using namespace hxsim;

std::vector<std::int32_t> thread_points(std::int32_t max_threads) {
  std::vector<std::int32_t> pts{1};
  for (std::int32_t t = 2; t < max_threads; t *= 2) pts.push_back(t);
  if (max_threads > 1) pts.push_back(max_threads);
  return pts;
}

/// Times `run(threads)` for every thread point; verifies results against
/// the 1-thread reference with `equal`; records phase entries.
template <typename Result, typename Run, typename Equal>
void sweep(const char* phase, const std::vector<std::int32_t>& points,
           std::int32_t reps, bench::BenchJson& json, const Run& run,
           const Equal& equal) {
  double base_seconds = 0.0;
  Result reference;
  for (const std::int32_t t : points) {
    bench::PhaseClock clock;
    Result result;
    for (std::int32_t r = 0; r < reps; ++r) result = run(t);
    const double seconds = clock.lap() / reps;
    if (t == 1) {
      base_seconds = seconds;
      reference = std::move(result);
    } else if (!equal(reference, result)) {
      std::fprintf(stderr, "%s: %d-thread result differs from 1-thread!\n",
                   phase, t);
      std::exit(1);
    }
    const double speedup = seconds > 0.0 ? base_seconds / seconds : 0.0;
    std::printf("%-28s threads=%-2d  %8.1f ms  speedup %.2fx\n", phase, t,
                seconds * 1e3, speedup);
    json.add(phase, {{"threads", static_cast<double>(t)},
                     {"seconds", seconds},
                     {"speedup", speedup}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::int32_t max_threads =
      args.threads > 0 ? args.threads : exec::hardware_threads();
  const auto points = thread_points(max_threads);
  const std::int32_t reps = args.quick ? 1 : std::max(args.reps, 1);
  bench::BenchJson json("exec");
  json.add("machine", {{"hardware_threads",
                        static_cast<double>(exec::hardware_threads())},
                       {"max_threads", static_cast<double>(max_threads)}});

  // --- full-fabric DFSSSP on the 12x8 HyperX (paper default routing) ----
  const topo::HyperX hx(args.quick ? topo::small_hyperx_params()
                                   : topo::paper_hyperx_params());
  const auto hx_lids =
      routing::LidSpace::consecutive(hx.topo().num_terminals(), 0);
  sweep<routing::RouteResult>(
      "dfsssp_hyperx_12x8", points, reps, json,
      [&](std::int32_t t) {
        routing::DfssspEngine engine(8, t);
        return engine.compute(hx.topo(), hx_lids);
      },
      [](const routing::RouteResult& a, const routing::RouteResult& b) {
        return a == b;
      });

  // --- full-fabric ftree on the 3-level fat-tree ------------------------
  const topo::FatTree ft(args.quick ? topo::small_fat_tree_params()
                                    : topo::paper_fat_tree_params());
  const auto ft_lids =
      routing::LidSpace::consecutive(ft.topo().num_terminals(), 0);
  sweep<routing::RouteResult>(
      "ftree_paper_tree", points, reps, json,
      [&](std::int32_t t) {
        routing::FtreeEngine engine(ft, t);
        return engine.compute(ft.topo(), ft_lids);
      },
      [](const routing::RouteResult& a, const routing::RouteResult& b) {
        return a == b;
      });

  // --- batched max-min solves (mpiGraph-style shift rounds) -------------
  routing::DfssspEngine engine(8, max_threads);
  const auto route = engine.compute(hx.topo(), hx_lids);
  const std::int32_t nodes = hx.topo().num_terminals();
  const std::int32_t rounds_count = args.quick ? 16 : 64;
  std::vector<std::vector<sim::Flow>> rounds;
  for (std::int32_t shift = 1; shift <= rounds_count; ++shift) {
    std::vector<sim::Flow> round;
    for (std::int32_t i = 0; i < nodes; ++i) {
      auto path = route.tables.path(
          hx.topo(), hx_lids, i, hx_lids.base_lid((i + shift) % nodes));
      round.push_back(sim::Flow{std::move(path.channels), 1 << 20});
    }
    rounds.push_back(std::move(round));
  }
  const sim::FlowSim sim(hx.topo());
  sweep<std::vector<std::vector<double>>>(
      "flowsim_batch_64rounds", points, reps, json,
      [&](std::int32_t t) { return sim.solve_batch(rounds, t); },
      [](const std::vector<std::vector<double>>& a,
         const std::vector<std::vector<double>>& b) { return a == b; });

  json.write(".");
  std::printf("all parallel results bit-identical to 1-thread runs\n");
  return 0;
}
