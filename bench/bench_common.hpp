// Shared helpers for the figure/table bench binaries.
//
// Every bench accepts:
//   --quick          scaled-down system and trimmed sweeps (CI-friendly)
//   --csv <path>     additionally dump machine-readable CSV
//   --trace <path>   export observability metrics (counters, solver
//                    metrics, phase timers) as <path> JSON plus per-table
//                    CSVs next to it; purely observational
//   --seed <n>       base seed for the stochastic elements
//   --reps <n>       repetitions for configurations with randomness
//   --threads <n>    worker threads for the exec/ layer (default: all
//                    hardware threads); results are identical at any count
// and prints the paper's rows/series to stdout.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "exec/exec.hpp"
#include "mpi/cluster.hpp"
#include "obs/bench_json.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_clock.hpp"
#include "stats/csv.hpp"
#include "workloads/paper_system.hpp"

namespace hxsim::bench {

struct BenchArgs {
  bool quick = false;
  std::optional<std::string> csv_path;
  std::optional<std::string> trace_path;
  std::uint64_t seed = 1;
  std::int32_t reps = 3;
  std::int32_t threads = 0;  // 0: hardware_concurrency

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", arg.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--quick") {
        args.quick = true;
      } else if (arg == "--csv") {
        args.csv_path = next();
      } else if (arg == "--trace") {
        args.trace_path = next();
      } else if (arg == "--seed") {
        args.seed = std::stoull(next());
      } else if (arg == "--reps") {
        args.reps = std::stoi(next());
      } else if (arg == "--threads") {
        args.threads = std::stoi(next());
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "usage: %s [--quick] [--csv file] [--trace file] [--seed n] "
            "[--reps n] [--threads n]\n",
            argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    // Engines and simulators resolve threads == 0 through this default,
    // so one flag configures the whole binary.
    exec::set_default_threads(args.threads);
    return args;
  }

  [[nodiscard]] workloads::SystemOptions system_options() const {
    workloads::SystemOptions opts;
    opts.small_scale = quick;
    return opts;
  }
};

/// Repetitions for a configuration: deterministic combinations need one.
[[nodiscard]] inline std::int32_t reps_for(
    const workloads::PaperSystem::Config& config, const BenchArgs& args) {
  const bool stochastic =
      config.placement != mpi::PlacementKind::kLinear ||
      config.cluster->pml().kind == mpi::PmlKind::kBfo;
  return stochastic ? args.reps : 1;
}

/// Placement of the first `nranks` ranks under a config's policy.
[[nodiscard]] inline mpi::Placement place(
    const workloads::PaperSystem::Config& config, std::int32_t nranks,
    std::int32_t machine_nodes, std::uint64_t seed) {
  stats::Rng rng(seed);
  const auto pool = mpi::Placement::whole_machine(machine_nodes);
  return mpi::Placement::make(config.placement, nranks, pool, rng);
}

/// Wall-clock stopwatch for per-phase timing (now shared with the routing
/// engines and simulators through the obs library).
using PhaseClock = obs::PhaseClock;

/// Writes a bench's metric registry when --trace was given: <path> JSON
/// plus one <stem>_<table>.csv per table (stem = path without extension).
inline void write_trace(const BenchArgs& args,
                        const obs::MetricRegistry& registry) {
  if (!args.trace_path) return;
  registry.write_json(*args.trace_path);
  std::string stem = *args.trace_path;
  if (const auto dot = stem.rfind('.');
      dot != std::string::npos && stem.find('/', dot) == std::string::npos)
    stem.resize(dot);
  registry.write_csv(stem);
  std::printf("wrote trace %s\n", args.trace_path->c_str());
}

/// Machine-readable perf record (BENCH_<bench>.json); lives in obs/ so
/// the phases share the report/ result schema (obs::BenchJson::publish).
using BenchJson = obs::BenchJson;

/// Optional CSV sink (no-op when --csv is absent).
class CsvSink {
 public:
  CsvSink(const BenchArgs& args, const std::vector<std::string>& header) {
    if (args.csv_path)
      writer_.emplace(*args.csv_path, header);
  }
  void add_row(const std::vector<std::string>& cells) {
    if (writer_) writer_->add_row(cells);
  }
  ~CsvSink() {
    if (writer_) writer_->close();
  }

 private:
  std::optional<stats::CsvWriter> writer_;
};

}  // namespace hxsim::bench
