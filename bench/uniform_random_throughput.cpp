// Section 2.2's design claims: throughput of the 50 % bisection HyperX.
// Thin wrapper: the measurement core lives in
// experiments/exp_uniform_random_throughput.cpp as a registered report::Experiment; this
// binary keeps the historical CLI and stdout.
#include "experiments/experiments.hpp"

int main(int argc, char** argv) {
  return hxsim::bench::run_experiment_main("uniform_random_throughput", argc, argv);
}
